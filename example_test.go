package rlc_test

import (
	"fmt"
	"os"
	"path/filepath"

	rlc "github.com/g-rpqs/rlc-go"
)

// Building an index and answering an RLC query.
func ExampleBuildIndex() {
	b := rlc.NewGraphBuilder(0, 0)
	b.AddEdge(0, 0, 1) // 0 -l0-> 1
	b.AddEdge(1, 1, 2) // 1 -l1-> 2
	b.AddEdge(2, 0, 3) // 2 -l0-> 3
	b.AddEdge(3, 1, 4) // 3 -l1-> 4
	g := b.Build()

	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		panic(err)
	}
	ok, _ := ix.Query(0, 4, rlc.Seq{0, 1})
	fmt.Println(ok)
	// Output: true
}

// Replaying the paper's Example 1 on the Figure 1 network.
func ExampleIndex_Query() {
	g := rlc.ExampleFig1()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 3})
	if err != nil {
		panic(err)
	}
	a14, _ := g.VertexByName("A14")
	a19, _ := g.VertexByName("A19")
	debits, _ := g.LabelByName("debits")
	credits, _ := g.LabelByName("credits")

	ok, _ := ix.Query(a14, a19, rlc.Seq{debits, credits})
	fmt.Println("Q1(A14, A19, (debits credits)+) =", ok)
	// Output: Q1(A14, A19, (debits credits)+) = true
}

// Kleene-star queries reduce to plus after the s == t check.
func ExampleIndex_QueryStar() {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		panic(err)
	}
	v6, _ := g.VertexByName("v6")
	ok, _ := ix.QueryStar(v6, v6, rlc.Seq{0}) // empty path accepted
	fmt.Println(ok)
	// Output: true
}

// Parsing constraints from text against a graph's label names.
func ExampleParseExpr() {
	g := rlc.ExampleFig1()
	e, err := rlc.ParseExpr("(knows worksFor)+", g)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(e.Segments), e.Segments[0].Plus)
	// Output: 1 true
}

// Answering many queries concurrently through the batch worker pool.
// Results come back in request order, one per query; per-query validation
// errors never fail the whole batch.
func ExampleIndex_QueryBatch() {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		panic(err)
	}
	queries := []rlc.BatchQuery{
		{S: 0, T: 4, L: rlc.Seq{0, 1}}, // (v1, v5, (l1 l2)+)
		{S: 2, T: 5, L: rlc.Seq{0}},    // (v3, v6, (l1)+)
		{S: 1, T: 0, L: rlc.Seq{1}},    // (v2, v1, (l2)+)
	}
	for i, res := range ix.QueryBatch(queries, 2 /* workers; 0 = GOMAXPROCS */) {
		if res.Err != nil {
			panic(res.Err)
		}
		fmt.Printf("query %d: %v\n", i, res.Reachable)
	}
	// Output:
	// query 0: true
	// query 1: true
	// query 2: false
}

// Extended queries (the Q4 shape) evaluate through the hybrid.
func ExampleNewHybridEvaluator() {
	g := rlc.ExampleFig1()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		panic(err)
	}
	h := rlc.NewHybridEvaluator(ix)

	knows, _ := g.LabelByName("knows")
	holds, _ := g.LabelByName("holds")
	p10, _ := g.VertexByName("P10")
	a14, _ := g.VertexByName("A14")
	ok, _ := h.Eval(p10, a14, rlc.ConcatPlusExpr(rlc.Seq{knows}, rlc.Seq{holds}))
	fmt.Println("knows+ holds+ from P10 to A14 =", ok)
	// Output: knows+ holds+ from P10 to A14 = true
}

// The minimum-repeat algebra at the heart of the index.
func ExampleMinimumRepeat() {
	fmt.Println(rlc.MinimumRepeat(rlc.Seq{0, 1, 0, 1}))
	fmt.Println(rlc.IsMinimumRepeat(rlc.Seq{0, 1}), rlc.IsMinimumRepeat(rlc.Seq{0, 0}))
	// Output:
	// (l0,l1)
	// true false
}

// Insert-only dynamic updates with exact answers.
func ExampleDeltaGraph() {
	g := rlc.GraphFromEdges(3, 2, []rlc.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := rlc.BuildDeltaGraph(g, rlc.DeltaOptions{IndexOptions: rlc.Options{K: 2}})
	if err != nil {
		panic(err)
	}
	before, _ := d.Query(0, 2, rlc.Seq{0, 1})
	if err := d.AddEdge(1, 1, 2); err != nil {
		panic(err)
	}
	after, _ := d.Query(0, 2, rlc.Seq{0, 1})
	fmt.Println(before, after)
	// Output: false true
}

// Snapshot bundles: freeze a built index (with its graph) into one
// self-contained file, reopen it zero-copy, and query — the production
// startup path of rlcserve -snapshot.
func ExampleOpenSnapshot() {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		panic(err)
	}
	path := filepath.Join(os.TempDir(), "fig2_example.rlcs")
	if err := rlc.SaveSnapshotFile(path, ix); err != nil {
		panic(err)
	}
	defer os.Remove(path)

	snap, err := rlc.OpenSnapshot(path)
	if err != nil {
		panic(err)
	}
	defer snap.Close()
	if err := snap.Verify(); err != nil { // full checksum + fingerprint pass
		panic(err)
	}
	v3, _ := snap.Graph().VertexByName("v3")
	v6, _ := snap.Graph().VertexByName("v6")
	ok, _ := snap.Index().Query(v3, v6, rlc.Seq{1, 0})
	fmt.Println("self-contained:", snap.Fingerprint().M == g.NumEdges(), "answer:", ok)
	// Output: self-contained: true answer: true
}

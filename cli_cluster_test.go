package rlc_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// servingProc is one binary under test that has reported its listen
// address; terminate shuts it down and asserts a clean drain.
type servingProc struct {
	name  string
	cmd   *exec.Cmd
	base  string
	outCh chan string
}

// startServing launches a binary that prints "serving on ADDR" and waits
// for that line, returning the process with its base URL.
func startServing(t *testing.T, name string, bin string, args ...string) *servingProc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", name, err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	addrCh := make(chan string, 1)
	outCh := make(chan string, 1)
	go func() {
		var all strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := stdout.Read(buf)
			all.Write(buf[:n])
			if m := addrRe.FindStringSubmatch(all.String()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if err != nil {
				outCh <- all.String()
				return
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &servingProc{name: name, cmd: cmd, base: "http://" + addr, outCh: outCh}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not report its listen address", name)
		return nil
	}
}

func (p *servingProc) terminate(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM %s: %v", p.name, err)
	}
	var out string
	select {
	case out = <-p.outCh:
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not close stdout after SIGTERM", p.name)
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- p.cmd.Wait() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("%s exited non-zero after SIGTERM: %v\n%s", p.name, err, out)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("%s did not exit after SIGTERM", p.name)
	}
	if !strings.Contains(out, "shut down cleanly") {
		t.Errorf("%s missing graceful-shutdown report:\n%s", p.name, out)
	}
}

type healthView struct {
	Role              string `json:"role"`
	Epoch             uint64 `json:"epoch"`
	JournalSeq        uint64 `json:"journal_seq"`
	BundleFingerprint string `json:"bundle_fingerprint"`
}

func getHealth(t *testing.T, base string) healthView {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz %s: %v", base, err)
	}
	defer resp.Body.Close()
	var h healthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatalf("healthz %s: %v", base, err)
	}
	return h
}

// TestCLICluster drives the replicated tier end to end through the real
// binaries: a leader, two followers, and a router on ephemeral ports; a
// write through the router is read back through its own pin token, a fold
// cuts both followers over to an identical bundle, and every process
// drains cleanly on SIGTERM.
func TestCLICluster(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI cluster test skipped in -short mode")
	}
	dir := t.TempDir()
	rlcgen := buildTool(t, dir, "rlcgen")
	rlccluster := buildTool(t, dir, "rlccluster")
	rlcrouter := buildTool(t, dir, "rlcrouter")

	graphFile := filepath.Join(dir, "fig2.graph")
	if out, err := exec.Command(rlcgen, "-model", "fig2", "-out", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("rlcgen fig2: %v\n%s", err, out)
	}

	leader := startServing(t, "leader", rlccluster,
		"-role", "leader", "-graph", graphFile, "-addr", "127.0.0.1:0")
	var followers []*servingProc
	for i := 0; i < 2; i++ {
		followers = append(followers, startServing(t, fmt.Sprintf("follower%d", i), rlccluster,
			"-role", "follower", "-graph", graphFile, "-leader", leader.base,
			"-poll-wait", "250ms", "-addr", "127.0.0.1:0"))
	}
	rtr := startServing(t, "router", rlcrouter,
		"-leader", leader.base,
		"-followers", followers[0].base+","+followers[1].base,
		"-health-interval", "50ms", "-addr", "127.0.0.1:0")

	// v6 has no outgoing edges in Fig. 2, so (v6, v4, l3+) is false until
	// the edge v6 -l3-> v4 is inserted.
	query := func(pin string) (bool, *http.Response) {
		req, err := http.NewRequest(http.MethodGet, rtr.base+"/query?s=v6&t=v4&l=l3", nil)
		if err != nil {
			t.Fatal(err)
		}
		if pin != "" {
			req.Header.Set("X-Rlc-Pin", pin)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("routed query: %v", err)
		}
		defer resp.Body.Close()
		var qr struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode query: %v", err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed query status %d", resp.StatusCode)
		}
		return qr.Reachable, resp
	}

	if got, _ := query(""); got {
		t.Fatal("(v6, v4, l3+) should be false before the insert")
	}

	// Write through the router; its response token pins the read.
	resp, err := http.Post(rtr.base+"/update", "application/json",
		strings.NewReader(`{"s":"v6","l":"l3","t":"v4"}`))
	if err != nil {
		t.Fatalf("routed update: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed update status %d", resp.StatusCode)
	}
	token := resp.Header.Get("X-Rlc-Pin")
	if token == "" {
		t.Fatal("routed update minted no pin token")
	}

	// Read-your-write: pinned at the write token, whichever replica serves.
	if got, qresp := query(token); !got {
		t.Fatalf("pinned read at %s missed the write (served by %s)",
			token, qresp.Header.Get("X-Rlc-Backend"))
	}

	// Fold on the leader; both followers must cut over to the identical
	// bundle (same epoch, sequence, and fingerprint as the leader).
	resp, err = http.Post(rtr.base+"/rebuild", "application/json", nil)
	if err != nil {
		t.Fatalf("routed rebuild: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed rebuild status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	want := getHealth(t, leader.base)
	if want.Epoch == 0 {
		t.Fatalf("leader still at epoch 0 after fold: %+v", want)
	}
	for _, f := range followers {
		for {
			got := getHealth(t, f.base)
			if got == (healthView{Role: "follower", Epoch: want.Epoch,
				JournalSeq: want.JournalSeq, BundleFingerprint: want.BundleFingerprint}) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never converged: follower %+v, leader %+v", f.name, got, want)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The write survived the cutover on every node.
	for _, p := range []*servingProc{leader, followers[0], followers[1]} {
		resp, err := http.Get(p.base + "/query?s=v6&t=v4&l=l3")
		if err != nil {
			t.Fatalf("%s query: %v", p.name, err)
		}
		var qr struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("%s decode: %v", p.name, err)
		}
		resp.Body.Close()
		if !qr.Reachable {
			t.Fatalf("%s lost the write across the cutover", p.name)
		}
	}

	// A follower must refuse direct client writes.
	resp, err = http.Post(followers[0].base+"/update", "application/json",
		strings.NewReader(`{"s":"v6","l":"l3","t":"v5"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("direct follower write answered %d, want 403", resp.StatusCode)
	}

	rtr.terminate(t)
	for _, f := range followers {
		f.terminate(t)
	}
	leader.terminate(t)
}

package rlc_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIBuildWorkers covers cmd/rlcbuild end to end: generate a graph,
// build its index sequentially and with the -buildworkers flag, verify the
// two index files are byte-identical (the determinism guarantee at the CLI
// surface), then round-trip through rlcquery and rlcinspect.
func TestCLIBuildWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build test skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"rlcgen", "rlcbuild", "rlcquery", "rlcinspect"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	graphFile := filepath.Join(dir, "g.graph")
	queryFile := filepath.Join(dir, "g.queries")
	seqIndex := filepath.Join(dir, "seq.rlc")
	parIndex := filepath.Join(dir, "par.rlc")

	run("rlcgen", "-model", "ba", "-n", "400", "-d", "3", "-labels", "4",
		"-seed", "9", "-out", graphFile, "-workload", queryFile, "-queries", "25", "-len", "2")

	// Sequential build (explicit workers=1).
	out := run("rlcbuild", "-graph", graphFile, "-k", "2", "-buildworkers", "1", "-out", seqIndex)
	if !strings.Contains(out, "(1 build workers)") {
		t.Errorf("rlcbuild sequential output unexpected: %s", out)
	}

	// Parallel build: same graph, 4 workers; the tool reports the
	// scheduling counters and the index file must match byte for byte.
	out = run("rlcbuild", "-graph", graphFile, "-k", "2", "-buildworkers", "4", "-out", parIndex)
	if !strings.Contains(out, "(4 build workers)") || !strings.Contains(out, "scheduling:") {
		t.Errorf("rlcbuild parallel output unexpected: %s", out)
	}
	seqBytes, err := os.ReadFile(seqIndex)
	if err != nil {
		t.Fatal(err)
	}
	parBytes, err := os.ReadFile(parIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, parBytes) {
		t.Fatalf("index built with -buildworkers 4 differs from sequential build (%d vs %d bytes)",
			len(parBytes), len(seqBytes))
	}

	// The default (-buildworkers 0 = GOMAXPROCS) must also match.
	defIndex := filepath.Join(dir, "def.rlc")
	run("rlcbuild", "-graph", graphFile, "-k", "2", "-out", defIndex)
	defBytes, err := os.ReadFile(defIndex)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, defBytes) {
		t.Fatal("index built with default -buildworkers differs from sequential build")
	}

	// Round-trip: the parallel-built index answers the generated workload
	// with full ground-truth agreement and inspects cleanly.
	out = run("rlcquery", "-graph", graphFile, "-queries", queryFile, "-method", "index", "-index", parIndex)
	if !strings.Contains(out, "50/50 match ground truth") {
		t.Errorf("rlcquery on parallel-built index: %s", out)
	}
	out = run("rlcinspect", "-graph", graphFile, "-index", parIndex, "-vertices", "0")
	if !strings.Contains(out, "entries:") {
		t.Errorf("rlcinspect on parallel-built index: %s", out)
	}
}

// TestCLIBuildWorkersRejected verifies rlcbuild fails cleanly on a negative
// worker count and writes nothing.
func TestCLIBuildWorkersRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rlcbuild")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rlcbuild").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	graphFile := filepath.Join(dir, "g.graph")
	if err := os.WriteFile(graphFile, []byte("0 1 0\n1 2 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	indexFile := filepath.Join(dir, "g.rlc")
	out, err := exec.Command(bin, "-graph", graphFile, "-buildworkers", "-3", "-out", indexFile).CombinedOutput()
	if err == nil {
		t.Fatalf("rlcbuild -buildworkers -3 succeeded, want failure; output: %s", out)
	}
	if !strings.Contains(string(out), "buildworkers") {
		t.Errorf("error message does not mention buildworkers: %s", out)
	}
	if _, err := os.Stat(indexFile); !os.IsNotExist(err) {
		t.Errorf("rlcbuild wrote an index despite the invalid flag")
	}
}

// Command rlcserve is a long-running HTTP/JSON query service over an RLC
// index: serve a snapshot bundle (memory-mapped, hot-reloadable), or load a
// graph (and an index, or build one on the fly), then answer single and
// batch reachability queries with a sharded LRU result cache in front of
// the index.
//
//	rlcserve -snapshot g.rlcs -addr :8080
//	rlcserve -graph g.graph -index g.rlc -addr :8080
//	rlcserve -graph g.graph -k 2 -buildworkers 0 -addr :8080
//	curl 'localhost:8080/query?s=0&t=4&l=(l0 l1)+'
//	curl -X POST localhost:8080/batch -d '{"queries":[{"s":0,"t":4,"l":"l0 l1"}]}'
//	curl localhost:8080/stats
//
// Endpoints: GET /query (single query, any expression the CLIs accept,
// including multi-segment ones like "a+ b+"), POST /batch (many L+ queries
// fanned over the concurrent batch worker pool), POST /reload (snapshot
// mode only: hot-swap the bundle), GET /stats (cache hit/miss/eviction
// counters, per-endpoint latency histograms, index and build statistics,
// serving generation), GET /healthz. SIGINT/SIGTERM trigger a graceful
// shutdown that drains in-flight requests.
//
// In snapshot mode, SIGHUP (or POST /reload) re-opens, verifies, and
// atomically swaps in the bundle at the -snapshot path with zero downtime:
// in-flight queries finish on the generation they started on; the old
// mapping is released once they drain. Rebuild with `rlcbuild -o`, rename
// into place, signal, done.
//
// With -mutable the server also takes writes:
//
//	rlcserve -graph g.graph -mutable -rebuild-threshold 1024 -rebuild-out g.rlcs
//	curl -X POST localhost:8080/update -d '{"s":0,"l":"l1","t":4}'
//	curl -X POST localhost:8080/update -d '{"edges":[{"s":1,"l":0,"t":2},{"s":2,"l":1,"t":3}]}'
//	curl -X POST localhost:8080/rebuild      # fold now (SIGUSR1 folds in background)
//
// Inserts append to a journal every query consults exactly — answers flip
// as soon as the update returns, no downtime, queries never block. When
// the journal passes -rebuild-threshold the server folds base + journal in
// the background, rebuilds the index with the deterministic parallel
// builder, writes a fresh v2 bundle to -rebuild-out (when set), and
// hot-swaps the new epoch in while writes continue. /stats and /healthz
// report the epoch and journal length. Deletions are rejected
// (deletions_unsupported); mutable servers also refuse POST /reload —
// their state evolves through folds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

const synopsis = "rlcserve — serve RLC reachability queries over HTTP with a result cache and hot-reloadable snapshots"

func main() {
	var (
		snapshotPath = flag.String("snapshot", "", "snapshot bundle (.rlcs) to serve; enables SIGHUP / POST /reload hot swaps")
		graphPath    = flag.String("graph", "", "input graph file (legacy two-file mode)")
		indexPath    = flag.String("index", "", "index file (built on the fly when omitted)")
		k            = flag.Int("k", 2, "recursive k when building on the fly")
		buildWorkers = flag.Int("buildworkers", 0, "construction workers when building on the fly (0 = GOMAXPROCS)")
		maxIndex     = flag.Int64("max-index-bytes", 0, "size budget when building on the fly: demote low-ranked vertices to may-reach filters so the index fits (0 = unlimited; answers stay exact)")
		addr         = flag.String("addr", ":8080", "listen address")
		cacheSize    = flag.Int("cache", rlc.DefaultCacheEntries, "result-cache capacity in entries (0 = disable)")
		cacheShards  = flag.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0 = 2*GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "batch-query worker goroutines (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 0, "largest accepted POST /batch request (0 = default)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		mutable      = flag.Bool("mutable", false, "accept edge inserts via POST /update, with background fold-and-rebuild epochs")
		rebuildThr   = flag.Int("rebuild-threshold", 0, "journal length that triggers a background fold (0 = default, negative = manual folds only)")
		rebuildOut   = flag.String("rebuild-out", "", "write each fold's v2 bundle here and serve it memory-mapped (empty = heap)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcserve: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if (*snapshotPath == "") == (*graphPath == "") {
		fatalf("exactly one of -snapshot or -graph is required")
	}
	if *buildWorkers < 0 {
		fatalf("-buildworkers must be >= 0 (0 = GOMAXPROCS), got %d", *buildWorkers)
	}

	// The cache flag speaks "0 = off"; the library speaks "negative = off"
	// so that its zero value serves with a default-sized cache.
	cacheEntries := *cacheSize
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	if !*mutable && (*rebuildThr != 0 || *rebuildOut != "") {
		fatalf("-rebuild-threshold and -rebuild-out require -mutable")
	}
	opts := rlc.ServerOptions{
		CacheEntries:     cacheEntries,
		CacheShards:      *cacheShards,
		BatchWorkers:     *workers,
		MaxBatch:         *maxBatch,
		Mutable:          *mutable,
		RebuildThreshold: *rebuildThr,
		RebuildPath:      *rebuildOut,
		RebuildWorkers:   *buildWorkers,
	}
	opts.OnRebuild = func(r rlc.RebuildResult) {
		if r.Err != nil {
			fmt.Fprintf(os.Stderr, "rlcserve: fold failed, still serving the previous epoch: %v\n", r.Err)
			return
		}
		where := "in-process"
		if r.Path != "" {
			where = r.Path
		}
		fmt.Printf("folded %d edges into epoch %d (%s, generation %d, %d carried over) in %v\n",
			r.Folded, r.Epoch, where, r.Generation, r.Journal, r.Duration.Round(time.Millisecond))
	}

	var srv *rlc.Server
	if *snapshotPath != "" {
		start := time.Now()
		snap, err := openVerified(*snapshotPath)
		if err != nil {
			fatalf("open snapshot: %v", err)
		}
		mode := "mmap"
		if !snap.Mapped() {
			mode = "heap"
		}
		fmt.Printf("snapshot %s opened in %v (%s, %.2f MB, fingerprint %v)\n",
			*snapshotPath, time.Since(start).Round(time.Microsecond), mode,
			float64(snap.SizeBytes())/(1024*1024), snap.Fingerprint())
		g := snap.Graph()
		fmt.Printf("graph: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())
		printIndexStats(snap.Index())
		if !*mutable {
			// Mutable servers evolve through folds; reloading an external
			// bundle would drop journal edges, so the source stays unset.
			opts.SnapshotSource = func() (*rlc.Snapshot, error) { return openVerified(*snapshotPath) }
		}
		srv = rlc.NewServerFromSnapshot(snap, opts)
	} else {
		g, err := rlc.LoadGraphFile(*graphPath)
		if err != nil {
			fatalf("load graph: %v", err)
		}
		fmt.Printf("graph: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())
		var ix *rlc.Index
		if *indexPath != "" {
			start := time.Now()
			ix, err = rlc.LoadIndexFile(*indexPath, g)
			if err != nil {
				fatalf("load index: %v", err)
			}
			fmt.Printf("index loaded from %s in %v\n", *indexPath, time.Since(start).Round(time.Millisecond))
		} else {
			start := time.Now()
			var st rlc.BuildStats
			ix, st, err = rlc.BuildIndexWithStats(g, rlc.Options{K: *k, BuildWorkers: *buildWorkers, MaxIndexBytes: *maxIndex})
			if err != nil {
				fatalf("build index: %v", err)
			}
			opts.BuildStats = &st
			fmt.Printf("index built in %v (%d build workers)\n", time.Since(start).Round(time.Millisecond), st.Workers)
		}
		printIndexStats(ix)
		srv = rlc.NewServer(ix, opts)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP = hot reload in snapshot mode (the classic daemon convention);
	// ignored otherwise so a stray signal cannot kill a legacy-mode server.
	// SIGUSR1 = background fold-and-rebuild in mutable mode.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *mutable {
				fmt.Println("SIGHUP ignored: mutable servers fold instead of reloading (SIGUSR1 / POST /rebuild)")
				continue
			}
			if *snapshotPath == "" {
				fmt.Println("SIGHUP ignored: not serving a snapshot bundle")
				continue
			}
			start := time.Now()
			gen, err := srv.Reload()
			if err != nil {
				fmt.Fprintf(os.Stderr, "rlcserve: reload failed, still serving the previous snapshot: %v\n", err)
				continue
			}
			fmt.Printf("reloaded %s in %v (generation %d)\n", *snapshotPath, time.Since(start).Round(time.Microsecond), gen)
		}
	}()
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	go func() {
		for range usr1 {
			if !*mutable {
				fmt.Println("SIGUSR1 ignored: server is not mutable")
				continue
			}
			if srv.TriggerRebuild() {
				fmt.Println("SIGUSR1: background fold-and-rebuild started")
			} else {
				fmt.Println("SIGUSR1 ignored: a fold is already running")
			}
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	endpoints := "/query /batch /reload /stats /healthz"
	if *mutable {
		endpoints = "/query /batch /update /rebuild /stats /healthz"
	}
	fmt.Printf("serving on %s (cache: %d entries; %s)\n", ln.Addr(), max(cacheEntries, 0), endpoints)

	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("signal received; draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	cs := srv.CacheStats()
	if err := srv.Close(); err != nil {
		fatalf("close snapshot: %v", err)
	}
	fmt.Printf("shut down cleanly; cache: %d hits, %d misses, %d coalesced, %d evictions (%.1f%% hit rate)\n",
		cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.HitRate()*100)
}

// openVerified opens a bundle and runs the full integrity pass — the only
// way bytes become a serving generation in this process.
func openVerified(path string) (*rlc.Snapshot, error) {
	snap, err := rlc.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	if err := snap.Verify(); err != nil {
		snap.Close()
		return nil, err
	}
	return snap, nil
}

func printIndexStats(ix *rlc.Index) {
	st := ix.Stats()
	fmt.Printf("index: k=%d, %d entries (%.2f MB), %d distinct MRs\n",
		st.K, st.Entries, float64(st.SizeBytes)/(1024*1024), st.DistinctMRs)
	if ix.Tiered() {
		fmt.Printf("tiers: budget %d B: %d exact vertices, %d filtered\n",
			st.Tiers.Budget, st.Tiers.RetainedVertices, st.Tiers.DemotedVertices)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcserve (-snapshot BUNDLE | -graph FILE) [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcserve: "+format+"\n", args...)
	os.Exit(1)
}

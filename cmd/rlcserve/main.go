// Command rlcserve is a long-running HTTP/JSON query service over an RLC
// index: load a graph (and an index, or build one on the fly), then answer
// single and batch reachability queries with a sharded LRU result cache in
// front of the index.
//
//	rlcserve -graph g.graph -index g.rlc -addr :8080
//	rlcserve -graph g.graph -k 2 -buildworkers 0 -addr :8080
//	curl 'localhost:8080/query?s=0&t=4&l=(l0 l1)+'
//	curl -X POST localhost:8080/batch -d '{"queries":[{"s":0,"t":4,"l":"l0 l1"}]}'
//	curl localhost:8080/stats
//
// Endpoints: GET /query (single query, any expression the CLIs accept,
// including multi-segment ones like "a+ b+"), POST /batch (many L+ queries
// fanned over the concurrent batch worker pool), GET /stats (cache hit/miss/
// eviction counters, per-endpoint latency histograms, index and build
// statistics), GET /healthz. SIGINT/SIGTERM trigger a graceful shutdown that
// drains in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

const synopsis = "rlcserve — serve RLC reachability queries over HTTP with a result cache"

func main() {
	var (
		graphPath    = flag.String("graph", "", "input graph file (required)")
		indexPath    = flag.String("index", "", "index file (built on the fly when omitted)")
		k            = flag.Int("k", 2, "recursive k when building on the fly")
		buildWorkers = flag.Int("buildworkers", 0, "construction workers when building on the fly (0 = GOMAXPROCS)")
		addr         = flag.String("addr", ":8080", "listen address")
		cacheSize    = flag.Int("cache", rlc.DefaultCacheEntries, "result-cache capacity in entries (0 = disable)")
		cacheShards  = flag.Int("cache-shards", 0, "cache shard count, rounded up to a power of two (0 = 2*GOMAXPROCS)")
		workers      = flag.Int("workers", 0, "batch-query worker goroutines (0 = GOMAXPROCS)")
		maxBatch     = flag.Int("max-batch", 0, "largest accepted POST /batch request (0 = default)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcserve: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *graphPath == "" {
		fatalf("missing -graph")
	}
	if *buildWorkers < 0 {
		fatalf("-buildworkers must be >= 0 (0 = GOMAXPROCS), got %d", *buildWorkers)
	}

	g, err := rlc.LoadGraphFile(*graphPath)
	if err != nil {
		fatalf("load graph: %v", err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())

	var (
		ix  *rlc.Index
		bst *rlc.BuildStats
	)
	if *indexPath != "" {
		start := time.Now()
		ix, err = rlc.LoadIndexFile(*indexPath, g)
		if err != nil {
			fatalf("load index: %v", err)
		}
		fmt.Printf("index loaded from %s in %v\n", *indexPath, time.Since(start).Round(time.Millisecond))
	} else {
		start := time.Now()
		var st rlc.BuildStats
		ix, st, err = rlc.BuildIndexWithStats(g, rlc.Options{K: *k, BuildWorkers: *buildWorkers})
		if err != nil {
			fatalf("build index: %v", err)
		}
		bst = &st
		fmt.Printf("index built in %v (%d build workers)\n", time.Since(start).Round(time.Millisecond), st.Workers)
	}
	st := ix.Stats()
	fmt.Printf("index: k=%d, %d entries (%.2f MB), %d distinct MRs\n",
		st.K, st.Entries, float64(st.SizeBytes)/(1024*1024), st.DistinctMRs)

	// The cache flag speaks "0 = off"; the library speaks "negative = off"
	// so that its zero value serves with a default-sized cache.
	cacheEntries := *cacheSize
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	srv := rlc.NewServer(ix, rlc.ServerOptions{
		CacheEntries: cacheEntries,
		CacheShards:  *cacheShards,
		BatchWorkers: *workers,
		MaxBatch:     *maxBatch,
		BuildStats:   bst,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	fmt.Printf("serving on %s (cache: %d entries; /query /batch /stats /healthz)\n", ln.Addr(), max(cacheEntries, 0))

	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("signal received; draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	cs := srv.CacheStats()
	fmt.Printf("shut down cleanly; cache: %d hits, %d misses, %d coalesced, %d evictions (%.1f%% hit rate)\n",
		cs.Hits, cs.Misses, cs.Coalesced, cs.Evictions, cs.HitRate()*100)
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcserve -graph FILE [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcserve: "+format+"\n", args...)
	os.Exit(1)
}

// Command rlcquery evaluates RLC (and extended) queries against a graph,
// with a choice of evaluation method.
//
//	rlcquery -graph g.graph -index g.rlc -s 14 -t 19 -expr "(debits credits)+"
//	rlcquery -graph g.graph -method bibfs -s 0 -t 5 -expr "(l0 l1)+"
//	rlcquery -graph g.graph -index g.rlc -queries g.queries
//	rlcquery -graph g.graph -index g.rlc -queries g.queries -batch -workers 8
//
// Methods: index (default; builds the index on the fly when -index is not
// given), hybrid (index + traversal, supports multi-segment expressions such
// as "a+ b+"), bfs, bibfs, dfs.
//
// With -queries, -batch switches the index method to the concurrent
// QueryBatch API: the whole workload is answered by -workers parallel
// workers (0 = GOMAXPROCS) instead of one query at a time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

const synopsis = "rlcquery — evaluate RLC (and extended) queries against a graph"

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		indexPath = flag.String("index", "", "index file (built on the fly when omitted)")
		k         = flag.Int("k", 2, "recursive k when building on the fly")
		method    = flag.String("method", "index", "index, hybrid, bfs, bibfs, or dfs")
		s         = flag.Int("s", -1, "source vertex id")
		t         = flag.Int("t", -1, "target vertex id")
		expr      = flag.String("expr", "", "path expression, e.g. \"(l0 l1)+\" or \"a+ b+\"")
		queries   = flag.String("queries", "", "workload file from rlcgen (one query per line)")
		batch     = flag.Bool("batch", false, "answer the -queries workload via the concurrent QueryBatch API (method index only)")
		workers   = flag.Int("workers", 0, "worker goroutines for -batch (0 = GOMAXPROCS)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcquery: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *graphPath == "" {
		fatalf("missing -graph")
	}
	g, err := rlc.LoadGraphFile(*graphPath)
	if err != nil {
		fatalf("load graph: %v", err)
	}

	var ix *rlc.Index
	if *method == "index" || *method == "hybrid" {
		if *indexPath != "" {
			ix, err = rlc.LoadIndexFile(*indexPath, g)
		} else {
			ix, err = rlc.BuildIndex(g, rlc.Options{K: *k})
		}
		if err != nil {
			fatalf("index: %v", err)
		}
	}

	switch {
	case *batch && *queries == "":
		fatalf("-batch needs -queries")
	case *batch && *method != "index":
		fatalf("-batch supports only -method index, got %q", *method)
	case *batch:
		if err := runBatchWorkload(ix, *queries, *workers); err != nil {
			fatalf("%v", err)
		}
	case *queries != "":
		if err := runWorkload(g, ix, *method, *queries); err != nil {
			fatalf("%v", err)
		}
	case *expr != "" && *s >= 0 && *t >= 0:
		ans, dur, err := runOne(g, ix, *method, rlc.Vertex(*s), rlc.Vertex(*t), *expr)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("(%d, %d, %s) = %v  [%s, %v]\n", *s, *t, *expr, ans, *method, dur)
	default:
		fatalf("need either -queries, or -s/-t/-expr")
	}
}

func runOne(g *rlc.Graph, ix *rlc.Index, method string, s, t rlc.Vertex, exprText string) (bool, time.Duration, error) {
	e, err := rlc.ParseExpr(exprText, g)
	if err != nil {
		return false, 0, err
	}
	start := time.Now()
	var ans bool
	switch method {
	case "index":
		if len(e.Segments) != 1 || !e.Segments[0].Plus {
			return false, 0, fmt.Errorf("method index needs a single L+ segment; use -method hybrid for %q", exprText)
		}
		ans, err = ix.Query(s, t, e.Segments[0].Labels)
	case "hybrid":
		ans, err = rlc.NewHybridEvaluator(ix).Eval(s, t, e)
	case "bfs", "bibfs", "dfs":
		if len(e.Segments) != 1 || !e.Segments[0].Plus {
			return false, 0, fmt.Errorf("method %s needs a single L+ segment", method)
		}
		switch method {
		case "bfs":
			ans, err = rlc.EvalBFS(g, s, t, e.Segments[0].Labels)
		case "bibfs":
			ans, err = rlc.EvalBiBFS(g, s, t, e.Segments[0].Labels)
		case "dfs":
			ans, err = rlc.EvalDFS(g, s, t, e.Segments[0].Labels)
		}
	default:
		return false, 0, fmt.Errorf("unknown method %q", method)
	}
	return ans, time.Since(start), err
}

func runWorkload(g *rlc.Graph, ix *rlc.Index, method, path string) error {
	wl, err := workload.LoadFile(path)
	if err != nil {
		return err
	}
	qs := wl.All()

	eval := func(q rlc.Query) (bool, error) {
		switch method {
		case "index":
			return ix.Query(q.S, q.T, q.L)
		case "bfs":
			return rlc.EvalBFS(g, q.S, q.T, q.L)
		case "bibfs":
			return rlc.EvalBiBFS(g, q.S, q.T, q.L)
		case "dfs":
			return rlc.EvalDFS(g, q.S, q.T, q.L)
		case "hybrid":
			return rlc.NewHybridEvaluator(ix).Eval(q.S, q.T, rlc.PlusExpr(q.L))
		default:
			return false, fmt.Errorf("unknown method %q", method)
		}
	}

	start := time.Now()
	correct := 0
	for _, q := range qs {
		got, err := eval(q)
		if err != nil {
			return err
		}
		if got == q.Expected {
			correct++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %v (%.1f µs/query) via %s; %d/%d match ground truth\n",
		len(qs), elapsed, float64(elapsed.Microseconds())/float64(len(qs)), method, correct, len(qs))
	if correct != len(qs) {
		return fmt.Errorf("%d queries disagree with ground truth", len(qs)-correct)
	}
	return nil
}

func runBatchWorkload(ix *rlc.Index, path string, workers int) error {
	wl, err := workload.LoadFile(path)
	if err != nil {
		return err
	}
	qs := wl.All()
	batch := make([]rlc.BatchQuery, len(qs))
	for i, q := range qs {
		batch[i] = rlc.BatchQuery{S: q.S, T: q.T, L: q.L}
	}
	// Report the worker count QueryBatch actually runs — small workloads
	// clamp below the requested parallelism.
	workers = rlc.EffectiveBatchWorkers(len(batch), workers)

	start := time.Now()
	results := ix.QueryBatch(batch, workers)
	elapsed := time.Since(start)

	correct := 0
	for i, res := range results {
		if res.Err != nil {
			return fmt.Errorf("query %d (%d, %d, %v): %w", i, qs[i].S, qs[i].T, qs[i].L, res.Err)
		}
		if res.Reachable == qs[i].Expected {
			correct++
		}
	}
	fmt.Printf("%d queries in %v (%.1f µs/query) via batch index, %d workers; %d/%d match ground truth\n",
		len(qs), elapsed, float64(elapsed.Microseconds())/float64(len(qs)), workers, correct, len(qs))
	if correct != len(qs) {
		return fmt.Errorf("%d queries disagree with ground truth", len(qs)-correct)
	}
	return nil
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcquery -graph FILE (-s N -t N -expr EXPR | -queries FILE) [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcquery: "+format+"\n", args...)
	os.Exit(1)
}

package main

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"io"
	"os"

	"github.com/g-rpqs/rlc-go/internal/analysis"
)

// vetConfig is the subset of the JSON configuration the go command writes
// for a -vettool driver (one file per package, passed as the sole argument).
type vetConfig struct {
	Compiler    string            // gc or gccgo
	Dir         string            // package directory
	ImportPath  string            // canonical import path
	GoFiles     []string          // absolute paths of the package's Go files
	ImportMap   map[string]string // import path as written -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	VetxOnly    bool              // only facts are wanted, no diagnostics
	VetxOutput  string            // where to write the (empty) facts file

	SucceedOnTypecheckFailure bool
}

// unitVet analyzes a single package under the `go vet -vettool` protocol:
// parse the .cfg, type-check the package against the build system's export
// data, run the analyzers, and always write the facts output file the go
// command expects.
func unitVet(analyzers []*analysis.Analyzer, cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: parse %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		// The suite passes no cross-package facts through vetx; an empty file
		// satisfies the protocol (and caches cleanly).
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	prog := analysis.NewProgram()
	prog.Unit = true
	imp := importer.ForCompiler(prog.Fset, compilerName(cfg.Compiler), func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	_, err = prog.LoadPackage(cfg.ImportPath, cfg.GoFiles, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		return 2
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// compilerName normalizes the cfg compiler for go/importer ("gc" unless the
// build is gccgo).
func compilerName(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}

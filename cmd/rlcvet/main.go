// Command rlcvet runs the repo's custom static-analysis suite: four
// analyzers that enforce invariants the compiler cannot — RCU pin/release
// pairing (pinrelease), zero-copy view lifetimes (viewescape), allocation-free
// hot paths (noalloc), and exhaustive sentinel-to-wire-code mapping (errcode).
//
//	rlcvet ./...
//	rlcvet -checks pinrelease,noalloc ./internal/server
//	rlcvet -list
//	go vet -vettool=$(which rlcvet) ./...
//
// Standalone mode (package patterns) loads and type-checks the whole module
// plus its dependency closure from source, giving every analyzer
// cross-package visibility of //rlc: annotations; this is the mode CI runs.
// Under `go vet -vettool` the build system drives rlcvet one package at a
// time with export data for dependencies, so cross-package annotation
// visibility is reduced to same-package facts.
//
// Exit status: 0 clean, 1 findings reported, 2 usage or load error.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/g-rpqs/rlc-go/internal/analysis"
)

const synopsis = "rlcvet — static analysis enforcing rlc-go's pin, zero-copy view, noalloc, and error-code invariants"

func main() {
	var (
		checks = flag.String("checks", "", "comma-separated analyzer subset to run (default: all)")
		list   = flag.Bool("list", false, "list the analyzers and exit")
		dir    = flag.String("C", ".", "directory to resolve package patterns from")
		vFlag  = flag.String("V", "", "version handshake for the go command (go vet passes -V=full)")
	)
	flag.Usage = usage

	// `go vet -vettool` probes the tool with a literal `-flags` argument
	// before anything else, expecting a JSON list of the tool's analyzer
	// flags so it can forward matching vet flags. rlcvet exposes none
	// through that channel (selection happens via -checks when run
	// standalone), so the answer is the empty list. Handled before
	// flag.Parse, which would reject the unregistered flag.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	flag.Parse()

	if *vFlag != "" {
		// `go vet -vettool` handshake: the build system demands
		// `rlcvet version devel ... buildID=<content hash>` and uses the
		// hash as the cache key, so vet results are invalidated exactly
		// when the analyzer binary itself changes.
		printVersion()
		return
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*checks)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n\n", err)
		usage()
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitVet(analyzers, args[0]))
	}
	os.Exit(standalone(analyzers, *dir, args))
}

// standalone loads the whole program from source and runs the suite.
func standalone(analyzers []*analysis.Analyzer, dir string, patterns []string) int {
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		return 2
	}
	diags, err := prog.Run(analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rlcvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -checks flag to the analyzer subset.
func selectAnalyzers(checks string) ([]*analysis.Analyzer, error) {
	if checks == "" {
		return analysis.All(), nil
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(checks, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := analysis.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no analyzers")
	}
	return out, nil
}

// printVersion answers the -V handshake with a content hash of the running
// executable, the same scheme x/tools' unitchecker uses.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		os.Exit(2)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rlcvet: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("rlcvet version devel buildID=%02x\n", sha256.Sum256(data))
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcvet [flags] [package patterns]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

// Command rlcbench reproduces the tables and figures of the paper's
// evaluation section (Table III, Table IV, Figures 3-7, Table V).
//
//	rlcbench -exp all                      # everything, default scale
//	rlcbench -exp table4 -scale 0.01       # larger replicas
//	rlcbench -exp fig3 -datasets AD,TW,WN  # subset of datasets
//	rlcbench -exp table5 -out results/     # write markdown files
//	rlcbench -exp serve -json BENCH.json   # machine-readable report (scripts/bench.sh)
//
// Scale guidance: the default (-scale 0.004, cap 20000 vertices) finishes
// in minutes on a laptop. The paper's absolute numbers used graphs up to
// 123M edges on a 128 GB server; what this harness reproduces is the shape:
// method orderings, growth trends, and order-of-magnitude gaps.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/g-rpqs/rlc-go/internal/bench"
)

const synopsis = "rlcbench — reproduce the paper's experimental tables and figures"

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (table3..5, fig3..7, ablation, batch, pbuild, serve, ingest) or \"all\"")
		scale    = flag.Float64("scale", 0, "dataset replica scale (0 = default)")
		maxV     = flag.Int("max-vertices", 0, "replica vertex cap (0 = default)")
		queries  = flag.Int("queries", 0, "queries per true/false set (0 = default)")
		seed     = flag.Int64("seed", 0, "random seed (0 = default)")
		dsets    = flag.String("datasets", "", "comma-separated dataset filter (empty = all)")
		synthV   = flag.Int("synth-vertices", 0, "fig5 synthetic |V| (0 = default)")
		out      = flag.String("out", "", "directory for markdown output (empty = stdout only)")
		etcLimit = flag.Duration("etc-limit", 0, "ETC construction budget (0 = default)")
		bworkers = flag.String("buildworkers", "", "comma-separated worker ladder for the pbuild experiment (empty = 1,2,4)")
		jsonOut  = flag.String("json", "", "write a machine-readable JSON report of the whole run to this file")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcbench: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}

	cfg := bench.Config{
		Scale:         *scale,
		MaxVertices:   *maxV,
		QueriesPerSet: *queries,
		Seed:          *seed,
		SynthVertices: *synthV,
		ETCTimeLimit:  *etcLimit,
	}
	if *dsets != "" {
		cfg.Datasets = strings.Split(*dsets, ",")
	}
	if *bworkers != "" {
		for _, tok := range strings.Split(*bworkers, ",") {
			w, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || w < 0 {
				fatalf("bad -buildworkers entry %q (want non-negative integers)", tok)
			}
			cfg.BuildWorkers = append(cfg.BuildWorkers, w)
		}
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	var exps []bench.Experiment
	if strings.EqualFold(*exp, "all") {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatalf("%v", err)
			}
			exps = append(exps, e)
		}
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatalf("mkdir %s: %v", *out, err)
		}
	}

	report := bench.NewReport()
	for _, e := range exps {
		fmt.Fprintf(os.Stderr, "=== %s: %s\n", e.ID, e.Title)
		start := time.Now()
		tables, err := e.Run(cfg)
		if err != nil {
			fatalf("%s: %v", e.ID, err)
		}
		elapsed := time.Since(start)
		fmt.Fprintf(os.Stderr, "=== %s finished in %v\n", e.ID, elapsed.Round(time.Millisecond))
		report.Add(e, tables, elapsed)
		for _, t := range tables {
			fmt.Println()
			if err := t.Render(os.Stdout); err != nil {
				fatalf("render: %v", err)
			}
			if *out != "" {
				path := filepath.Join(*out, t.ID+".md")
				if err := os.WriteFile(path, []byte(t.Markdown()), 0o644); err != nil {
					fatalf("write %s: %v", path, err)
				}
			}
		}
	}
	if *jsonOut != "" {
		if err := report.WriteFile(*jsonOut); err != nil {
			fatalf("write %s: %v", *jsonOut, err)
		}
		fmt.Fprintf(os.Stderr, "JSON report written to %s\n", *jsonOut)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcbench [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcbench: "+format+"\n", args...)
	os.Exit(1)
}

// Command rlcinspect prints the internals of an RLC index: summary
// statistics, entry and hub distributions (the skew behind the paper's
// Figure 5/6 discussion), and the decoded Lin/Lout sets of chosen vertices
// (the Table II view). Pointed at a v2 snapshot bundle it also dumps the
// bundle's section table — ids, offsets, lengths, checksums — and verifies
// every section.
//
//	rlcinspect -snapshot g.rlcs
//	rlcinspect -graph g.graph -index g.rlc
//	rlcinspect -graph g.graph -k 2 -vertices 0,3,5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/core"
)

const synopsis = "rlcinspect — print RLC index internals: stats, distributions, entry sets"

func main() {
	var (
		snapshotPath = flag.String("snapshot", "", "snapshot bundle (.rlcs); prints the section table and verifies checksums")
		graphPath    = flag.String("graph", "", "input graph file (required unless -snapshot)")
		indexPath    = flag.String("index", "", "index file (built on the fly when omitted)")
		k            = flag.Int("k", 2, "recursive k when building on the fly")
		vertices     = flag.String("vertices", "", "comma-separated vertex ids whose Lin/Lout to print")
		order        = flag.Bool("order", false, "print the full access order")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcinspect: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if (*snapshotPath == "") == (*graphPath == "") {
		fatalf("exactly one of -snapshot or -graph is required")
	}
	var (
		g   *rlc.Graph
		ix  *rlc.Index
		err error
	)
	if *snapshotPath != "" {
		snap, serr := rlc.OpenSnapshot(*snapshotPath)
		if serr != nil {
			fatalf("open snapshot: %v", serr)
		}
		defer snap.Close()
		dumpSections(snap)
		g, ix = snap.Graph(), snap.Index()
	} else {
		g, err = rlc.LoadGraphFile(*graphPath)
		if err != nil {
			fatalf("load graph: %v", err)
		}
		if *indexPath != "" {
			ix, err = rlc.LoadIndexFile(*indexPath, g)
		} else {
			ix, err = rlc.BuildIndex(g, rlc.Options{K: *k})
		}
		if err != nil {
			fatalf("index: %v", err)
		}
	}

	st := ix.Stats()
	fmt.Printf("index over %d vertices / %d edges, k = %d\n", st.Vertices, st.Edges, st.K)
	fmt.Printf("entries:      %d (%d in, %d out)\n", st.Entries, st.InEntries, st.OutEntries)
	fmt.Printf("distinct MRs: %d\n", st.DistinctMRs)
	fmt.Printf("size:         %.2f MB\n", float64(st.SizeBytes)/(1024*1024))
	if ix.Packed() {
		fmt.Printf("packed:       %.2f MB (%d groups, %d hash-consed sets, %d pool words, bit-parallel membership)\n",
			float64(st.Packed.SizeBytes)/(1024*1024), st.Packed.Groups, st.Packed.Sets, st.Packed.PoolWords)
	}
	if ix.Tiered() {
		ts := st.Tiers
		fmt.Printf("tiers:        budget %d B: %d exact vertices, %d filtered (%.2f MB filters, %d union sets, %d bloom bits per filter)\n",
			ts.Budget, ts.RetainedVertices, ts.DemotedVertices,
			float64(ts.FilterBytes)/(1024*1024), ts.UnionSets, ts.BloomBitsPerFilter)
	}

	printDist := func(name string, d core.Distribution) {
		fmt.Printf("%s: carriers=%d max=%d mean=%.1f p99=%d top1%%-share=%.1f%%\n",
			name, d.Count, d.Max, d.Mean, d.P99, d.TopShare*100)
	}
	fmt.Println()
	printDist("entry distribution (per vertex)", ix.EntryDistribution())
	printDist("hub distribution (per hub)    ", ix.HubDistribution())

	if *order {
		fmt.Println("\naccess order (IN-OUT strategy):")
		for i, v := range ix.AccessOrder() {
			fmt.Printf("  aid %d: %s\n", i+1, g.VertexName(v))
		}
	}

	if *vertices != "" {
		for _, tok := range strings.Split(*vertices, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || id < 0 || id >= g.NumVertices() {
				fatalf("bad vertex %q", tok)
			}
			v := rlc.Vertex(id)
			fmt.Printf("\n%s:\n", g.VertexName(v))
			fmt.Print("  Lin:  ")
			printEntries(g, ix.LinEntries(v))
			fmt.Print("  Lout: ")
			printEntries(g, ix.LoutEntries(v))
		}
	}
}

// sectionNames maps the RLC bundle's section ids to display names (ids are
// defined in internal/core's snapshot layout).
var sectionNames = map[uint32]string{
	1: "meta", 2: "graph-out-off", 3: "graph-out-dst", 4: "graph-out-lbl",
	5: "graph-in-off", 6: "graph-in-src", 7: "graph-in-lbl", 8: "dict",
	9: "order", 10: "entries", 11: "index-out-off", 12: "index-in-off",
	13: "vertex-names", 14: "label-names", 15: "packed-meta",
	16: "packed-groups", 17: "packed-out-off", 18: "packed-in-off",
	19: "packed-sets", 20: "packed-set-desc", 21: "tier-meta",
	22: "tier-union-out", 23: "tier-union-in", 24: "tier-sets",
	25: "tier-set-desc", 26: "tier-bloom",
}

// dumpSections prints the bundle's section table, checksumming each payload
// exactly once, then cross-checks the embedded graph fingerprint — together
// the same integrity pass as Snapshot.Verify, without re-reading the file.
func dumpSections(snap *rlc.Snapshot) {
	mode := "mmap"
	if !snap.Mapped() {
		mode = "heap"
	}
	fmt.Printf("snapshot %s: %.2f MB, %s, fingerprint %v\n",
		snap.Path(), float64(snap.SizeBytes())/(1024*1024), mode, snap.Fingerprint())
	fmt.Printf("%-4s %-14s %10s %12s %10s %s\n", "id", "section", "offset", "length", "crc32c", "verify")
	corrupt := false
	for _, sec := range snap.Sections() {
		name := sectionNames[sec.ID]
		if name == "" {
			name = "?"
		}
		status := "ok"
		if err := snap.VerifySection(sec.ID); err != nil {
			status = "CORRUPT"
			corrupt = true
		}
		fmt.Printf("%-4d %-14s %10d %12d   %08x %s\n", sec.ID, name, sec.Offset, sec.Length, sec.CRC, status)
	}
	if corrupt {
		fatalf("snapshot failed checksum verification (see table above)")
	}
	if got := snap.Graph().Fingerprint(); got != snap.Fingerprint() {
		fatalf("snapshot fingerprint mismatch: bundle records %v, embedded graph hashes to %v", snap.Fingerprint(), got)
	}
	if err := snap.Index().VerifyPacked(); err != nil {
		fatalf("packed sections diverge from the entry array: %v", err)
	}
	if err := snap.Index().VerifyTiers(); err != nil {
		fatalf("tier sections diverge from the entry array: %v", err)
	}
	fmt.Println("all sections verified")
	fmt.Println()
}

func printEntries(g *rlc.Graph, entries []rlc.EntryView) {
	if len(entries) == 0 {
		fmt.Println("-")
		return
	}
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("(%s, %s)", g.VertexName(e.Hub), e.MR.Format(g.LabelNames()))
	}
	fmt.Println(strings.Join(parts, " "))
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcinspect (-snapshot BUNDLE | -graph FILE) [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcinspect: "+format+"\n", args...)
	os.Exit(1)
}

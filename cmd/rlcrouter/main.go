// Command rlcrouter fronts a replicated RLC cluster with an epoch-pinned
// HTTP router: reads fan out over healthy followers, writes forward to
// the leader, and every response carries a consistency token that makes
// the whole tier read-monotone and read-your-writes for clients that
// echo it.
//
//	rlcrouter -leader http://10.0.0.1:8080 \
//	          -followers http://10.0.0.2:8081,http://10.0.0.3:8081 \
//	          -addr :8090
//	curl 'localhost:8090/query?s=0&t=4&l=l0+'            # response sets X-Rlc-Pin
//	curl -H 'X-Rlc-Pin: 3:1024' 'localhost:8090/query?…' # routed at-or-past the pin
//
// A background poller tracks each backend's /healthz (role, applied
// sequence, epoch); a request pinned at (epoch, seq) — via the X-Rlc-Pin
// header or pin= parameter — is only routed to replicas at or past seq,
// with the leader as the always-consistent fallback. Slow reads are
// hedged to a second eligible replica after -hedge-delay; writes are
// never hedged. GET /healthz reports the router's live view of every
// backend.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/g-rpqs/rlc-go/internal/router"
)

const synopsis = "rlcrouter — epoch-pinned router for a replicated RLC cluster: health-aware read fan-out, hedged tail latency, monotone consistency tokens"

func main() {
	var (
		leaderURL    = flag.String("leader", "", "leader base URL (required)")
		followerCSV  = flag.String("followers", "", "comma-separated follower base URLs")
		addr         = flag.String("addr", ":8090", "listen address")
		healthEvery  = flag.Duration("health-interval", 250*time.Millisecond, "backend /healthz poll interval")
		hedgeDelay   = flag.Duration("hedge-delay", 25*time.Millisecond, "read hedge delay (negative = never hedge)")
		drainTimeout = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcrouter: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *leaderURL == "" {
		fatalf("-leader is required")
	}
	var followers []string
	for _, u := range strings.Split(*followerCSV, ",") {
		if u = strings.TrimSpace(u); u != "" {
			followers = append(followers, u)
		}
	}

	rt := router.New(router.Options{
		LeaderURL:      *leaderURL,
		FollowerURLs:   followers,
		HealthInterval: *healthEvery,
		HedgeDelay:     *hedgeDelay,
	})
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Refresh(ctx)
	go rt.Run(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Printf("serving on %s (leader %s, %d followers)\n", ln.Addr(), *leaderURL, len(followers))

	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Println("draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	fmt.Println("shut down cleanly")
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcrouter -leader URL [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcrouter: "+format+"\n", args...)
	os.Exit(1)
}

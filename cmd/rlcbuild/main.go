// Command rlcbuild constructs an RLC index for a graph file and serializes
// it — preferably as a self-contained v2 snapshot bundle (-o), the format
// rlcserve memory-maps at startup and hot-swaps on reload; the legacy
// two-file v1 index format (-out) remains supported.
//
//	rlcbuild -graph g.graph -k 2 -o g.rlcs
//	rlcbuild -graph g.graph -k 2 -buildworkers 8 -out g.rlc
//
// It prints the indexing time and index statistics that Table IV reports.
// Construction is deterministic for every -buildworkers value: the written
// index bytes are identical whether the build ran sequentially or on all
// cores.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

const synopsis = "rlcbuild — build and serialize an RLC index for a graph file"

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (required)")
		k         = flag.Int("k", 2, "recursive k")
		out       = flag.String("out", "", "output v1 index file (graph not embedded)")
		bundle    = flag.String("o", "", "output v2 snapshot bundle (self-contained, mmap-served)")
		workers   = flag.Int("buildworkers", 0, "construction workers (0 = GOMAXPROCS, 1 = sequential)")
		packed    = flag.Bool("packed", true, "derive the bit-parallel packed MR-set form (bundles gain packed sections; false = scan-only baseline)")
		maxBytes  = flag.Int64("max-index-bytes", 0, "size budget for the index: keep exact entry lists for the top-ranked vertices that fit, demote the rest to may-reach filters (0 = unlimited; answers stay exact either way)")
		noPR1     = flag.Bool("no-pr1", false, "disable pruning rule PR1 (ablation)")
		noPR2     = flag.Bool("no-pr2", false, "disable pruning rule PR2 (ablation)")
		noPR3     = flag.Bool("no-pr3", false, "disable pruning rule PR3 (ablation)")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcbuild: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *graphPath == "" {
		fatalf("missing -graph")
	}
	if *out == "" && *bundle == "" {
		fatalf("missing output: -o bundle.rlcs (snapshot bundle) and/or -out index.rlc (v1 index)")
	}
	if *workers < 0 {
		fatalf("-buildworkers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *maxBytes < 0 {
		fatalf("-max-index-bytes must be >= 0 (0 = unlimited), got %d", *maxBytes)
	}
	if *maxBytes > 0 && *out != "" {
		fatalf("-max-index-bytes requires the v2 bundle output (-o): the v1 format (-out) cannot carry the filter tier")
	}

	g, err := rlc.LoadGraphFile(*graphPath)
	if err != nil {
		fatalf("load graph: %v", err)
	}
	fmt.Printf("graph: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())

	start := time.Now()
	ix, bst, err := rlc.BuildIndexWithStats(g, rlc.Options{
		K:             *k,
		BuildWorkers:  *workers,
		DisablePacked: !*packed,
		MaxIndexBytes: *maxBytes,
		DisablePR1:    *noPR1,
		DisablePR2:    *noPR2,
		DisablePR3:    *noPR3,
	})
	if err != nil {
		fatalf("build: %v", err)
	}
	elapsed := time.Since(start)

	st := ix.Stats()
	fmt.Printf("indexing time: %.3fs (%d build workers)\n", elapsed.Seconds(), bst.Workers)
	fmt.Printf("index size:    %.2f MB (%d entries: %d in, %d out; %d distinct MRs)\n",
		float64(st.SizeBytes)/(1024*1024), st.Entries, st.InEntries, st.OutEntries, st.DistinctMRs)
	if ix.Packed() {
		fmt.Printf("packed:        %.2f MB (%d groups, %d hash-consed sets, %d pool words)\n",
			float64(st.Packed.SizeBytes)/(1024*1024), st.Packed.Groups, st.Packed.Sets, st.Packed.PoolWords)
	}
	if *maxBytes > 0 && !ix.Tiered() {
		fmt.Printf("tiers:         budget %d B fits the whole index, nothing demoted\n", *maxBytes)
	}
	if ix.Tiered() {
		ts := st.Tiers
		fmt.Printf("tiers:         budget %d B: %d exact vertices, %d filtered (%.2f MB filters, %d union sets, %d bloom bits each)\n",
			ts.Budget, ts.RetainedVertices, ts.DemotedVertices,
			float64(ts.FilterBytes)/(1024*1024), ts.UnionSets, ts.BloomBitsPerFilter)
	}
	fmt.Printf("construction:  %d kernel searches, %d kernel-BFS nodes; %d inserts, pruned %d by PR1, %d by PR2\n",
		bst.KernelBFSRuns, bst.KernelBFSNodes, bst.Inserted, bst.PrunedPR1, bst.PrunedPR2)
	if bst.Workers > 1 {
		fmt.Printf("scheduling:    %d rounds, %d speculations (%d committed, %d re-run)\n",
			bst.Windows, bst.Speculated, bst.Committed, bst.Rerun)
	}

	if *out != "" {
		if err := ix.SaveFile(*out); err != nil {
			fatalf("save index: %v", err)
		}
		fmt.Printf("wrote %s (v1 index; serve it together with %s)\n", *out, *graphPath)
	}
	if *bundle != "" {
		if err := ix.SaveSnapshotFile(*bundle); err != nil {
			fatalf("save snapshot: %v", err)
		}
		// Re-open and verify what was just written: a bundle that fails its
		// own checksums should never leave the build step.
		snap, err := rlc.OpenSnapshot(*bundle)
		if err != nil {
			fatalf("reopen snapshot: %v", err)
		}
		if err := snap.Verify(); err != nil {
			snap.Close()
			fatalf("verify snapshot: %v", err)
		}
		snap.Close()
		fmt.Printf("wrote %s (self-contained snapshot bundle, verified; serve with rlcserve -snapshot)\n", *bundle)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcbuild -graph FILE (-o BUNDLE | -out FILE) [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcbuild: "+format+"\n", args...)
	os.Exit(1)
}

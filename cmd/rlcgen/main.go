// Command rlcgen generates the synthetic graphs and query workloads used by
// the paper's evaluation, plus the paper's two figure graphs.
//
//	rlcgen -model er -n 10000 -d 5 -labels 16 -seed 1 -out er.graph
//	rlcgen -model ba -n 10000 -d 5 -labels 16 -out ba.graph
//	rlcgen -model dataset -dataset WN -scale 0.01 -out wn.graph
//	rlcgen -model fig2 -out fig2.graph
//	rlcgen -model er -n 1000 -d 4 -labels 8 -out g.graph \
//	       -workload g.queries -queries 1000 -len 2
//
// The workload file has one query per line: "src dst l1,l2 expected".
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

const synopsis = "rlcgen — generate synthetic graphs and query workloads"

func main() {
	var (
		model     = flag.String("model", "er", "graph model: er, ba, dataset, fig1, or fig2")
		n         = flag.Int("n", 10000, "number of vertices (er, ba)")
		d         = flag.Int("d", 5, "average degree (er) / out-edges per vertex (ba)")
		labels    = flag.Int("labels", 8, "label-set size (er, ba)")
		seed      = flag.Int64("seed", 1, "random seed")
		dataset   = flag.String("dataset", "", "Table III dataset name (model=dataset)")
		scale     = flag.Float64("scale", 0.01, "replica scale (model=dataset)")
		out       = flag.String("out", "", "output graph file (required)")
		wout      = flag.String("workload", "", "also generate a workload to this file")
		queries   = flag.Int("queries", 1000, "queries per true/false set")
		concatLen = flag.Int("len", 2, "constraint concatenation length")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlcgen: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *out == "" {
		fatalf("missing -out")
	}

	g, err := generate(*model, *n, *d, *labels, *seed, *dataset, *scale)
	if err != nil {
		fatalf("%v", err)
	}
	if err := rlc.SaveGraphFile(*out, g); err != nil {
		fatalf("save graph: %v", err)
	}
	st := rlc.ComputeGraphStats(g)
	fmt.Printf("wrote %s: %d vertices, %d edges, %d labels, %d loops, %d triangles\n",
		*out, st.Vertices, st.Edges, st.Labels, st.Loops, st.Triangles)

	if *wout == "" {
		return
	}
	w, err := rlc.GenerateWorkload(g, rlc.WorkloadOptions{
		NumTrue: *queries, NumFalse: *queries, ConcatLen: *concatLen, Seed: *seed,
	})
	if err != nil {
		fatalf("workload: %v", err)
	}
	if err := workload.SaveFile(*wout, w); err != nil {
		fatalf("save workload: %v", err)
	}
	fmt.Printf("wrote %s: %d true + %d false queries (|L| = %d)\n", *wout, len(w.True), len(w.False), *concatLen)
}

func generate(model string, n, d, labels int, seed int64, dataset string, scale float64) (*rlc.Graph, error) {
	switch strings.ToLower(model) {
	case "er":
		return rlc.GenerateER(n, n*d, labels, seed)
	case "ba":
		return rlc.GenerateBA(n, d, labels, seed)
	case "dataset":
		ds, err := datasets.ByName(dataset)
		if err != nil {
			return nil, err
		}
		return ds.Replica(scale)
	case "fig1":
		return rlc.ExampleFig1(), nil
	case "fig2":
		return rlc.ExampleFig2(), nil
	default:
		return nil, fmt.Errorf("unknown model %q (want er, ba, dataset, fig1, fig2)", model)
	}
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlcgen -out FILE [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlcgen: "+format+"\n", args...)
	os.Exit(1)
}

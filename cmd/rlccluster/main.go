// Command rlccluster runs one node of a replicated RLC serving tier: a
// leader that takes writes and publishes its journal and fold bundles, or
// a follower that replicates both into a local hot standby that answers
// reads the whole time.
//
//	rlccluster -role leader -graph g.graph -addr :8080
//	rlccluster -role leader -snapshot g.rlcs -rebuild-threshold 4096 -addr :8080
//	rlccluster -role follower -graph g.graph -leader http://10.0.0.1:8080 -addr :8081
//
// Both roles serve the full rlcserve query surface (GET /query, POST
// /batch, GET /stats, GET /healthz — /healthz reports role, applied
// sequence, and bundle fingerprint). The leader additionally accepts
// writes (POST /update, POST /rebuild) and serves the replication feed:
//
//	GET /repl/segments?from=SEQ&wait_ms=MS   length-prefixed, checksummed
//	                                         journal segments; long-polls
//	GET /repl/bundle?epoch=E                 the folded v2 bundle for E
//
// A follower long-polls the leader's sealed journal, applies segments
// through the exact same batch-insert path a leader write takes, and —
// when the leader folds — downloads the new epoch's bundle, verifies its
// checksums and fingerprint, and hot-swaps onto it with zero read
// downtime. Followers reject client writes (403 not_leader).
//
// Leader and follower must boot from the same seed (the deployment
// contract); every replication response carries the lineage fingerprint
// and a follower refuses a leader whose lineage is not its own. A
// follower restarted from a previously adopted (post-fold) bundle names
// its lineage explicitly with -origin.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/cluster"
)

const synopsis = "rlccluster — run a replicated RLC serving node: a journal-streaming leader or a self-healing follower"

func main() {
	var (
		role         = flag.String("role", "", "node role: \"leader\" or \"follower\"")
		snapshotPath = flag.String("snapshot", "", "seed snapshot bundle (.rlcs)")
		graphPath    = flag.String("graph", "", "seed graph file (index built on the fly)")
		k            = flag.Int("k", 2, "recursive k when building from -graph")
		addr         = flag.String("addr", ":8080", "listen address")
		leaderURL    = flag.String("leader", "", "leader base URL (follower role)")
		origin       = flag.String("origin", "", "expected lineage fingerprint (follower role; empty = own seed fingerprint)")
		pollWait     = flag.Duration("poll-wait", 2*time.Second, "follower long-poll wait per segment request")
		rebuildThr   = flag.Int("rebuild-threshold", 0, "leader journal length that triggers a background fold (0 = default, negative = manual)")
		rebuildOut   = flag.String("rebuild-out", "", "leader writes each fold's bundle here and serves it memory-mapped (empty = heap)")
		cacheSize    = flag.Int("cache", rlc.DefaultCacheEntries, "result-cache capacity in entries (0 = disable)")
		drain        = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	)
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rlccluster: unexpected argument %q\n\n", flag.Arg(0))
		usage()
		os.Exit(2)
	}
	if *role != "leader" && *role != "follower" {
		fatalf("-role must be \"leader\" or \"follower\", got %q", *role)
	}
	if (*snapshotPath == "") == (*graphPath == "") {
		fatalf("exactly one of -snapshot or -graph is required")
	}
	if *role == "follower" && *leaderURL == "" {
		fatalf("-leader is required for the follower role")
	}
	if *role == "leader" && (*leaderURL != "" || *origin != "") {
		fatalf("-leader and -origin apply to the follower role only")
	}

	cacheEntries := *cacheSize
	if cacheEntries == 0 {
		cacheEntries = -1
	}
	opts := rlc.ServerOptions{
		Mutable:          true,
		Role:             *role,
		CacheEntries:     cacheEntries,
		RebuildThreshold: *rebuildThr,
		RebuildPath:      *rebuildOut,
	}
	if *role == "follower" {
		// A follower's epochs come from the leader's folds; local automatic
		// folds would fork its sequence numbering off the shared timeline.
		if *rebuildThr != 0 || *rebuildOut != "" {
			fatalf("-rebuild-threshold and -rebuild-out apply to the leader role only")
		}
		opts.RebuildThreshold = -1
	} else {
		opts.OnRebuild = func(r rlc.RebuildResult) {
			if r.Err != nil {
				fmt.Fprintf(os.Stderr, "rlccluster: fold failed, still serving the previous epoch: %v\n", r.Err)
				return
			}
			fmt.Printf("folded %d edges into epoch %d (generation %d) in %v\n",
				r.Folded, r.Epoch, r.Generation, r.Duration.Round(time.Millisecond))
		}
	}

	var srv *rlc.Server
	if *snapshotPath != "" {
		snap, err := rlc.OpenSnapshot(*snapshotPath)
		if err != nil {
			fatalf("open snapshot: %v", err)
		}
		if err := snap.Verify(); err != nil {
			snap.Close()
			fatalf("verify snapshot: %v", err)
		}
		srv = rlc.NewServerFromSnapshot(snap, opts)
	} else {
		g, err := rlc.LoadGraphFile(*graphPath)
		if err != nil {
			fatalf("load graph: %v", err)
		}
		ix, err := rlc.BuildIndex(g, rlc.Options{K: *k})
		if err != nil {
			fatalf("build index: %v", err)
		}
		srv = rlc.NewServer(ix, opts)
	}
	rs := srv.ReplState()
	fmt.Printf("%s node at epoch %d, seq %d, lineage %s\n", *role, rs.Epoch, rs.Seq, rs.Fingerprint)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	replDone := make(chan error, 1)
	if *role == "leader" {
		handler = cluster.NewLeader(srv).Handler()
	} else {
		handler = srv.Handler()
		fol := cluster.NewFollower(srv, cluster.FollowerOptions{
			LeaderURL: *leaderURL,
			PollWait:  *pollWait,
			Origin:    *origin,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		go func() { replDone <- fol.Run(ctx) }()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	fmt.Printf("serving on %s (role %s)\n", ln.Addr(), *role)

	exitCode := 0
	select {
	case err := <-done:
		fatalf("serve: %v", err)
	case err := <-replDone:
		// Run only returns before shutdown on a permanent divergence; stop
		// serving rather than keep answering from a replica that can no
		// longer follow its leader.
		fmt.Fprintf(os.Stderr, "rlccluster: replication stopped: %v\n", err)
		exitCode = 1
	case <-ctx.Done():
	}
	stop()
	fmt.Println("draining in-flight requests...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatalf("serve: %v", err)
	}
	if err := srv.Close(); err != nil {
		fatalf("close: %v", err)
	}
	fmt.Println("shut down cleanly")
	os.Exit(exitCode)
}

func usage() {
	fmt.Fprintf(flag.CommandLine.Output(), "%s\n\nusage: rlccluster -role (leader|follower) (-snapshot BUNDLE | -graph FILE) [flags]\n\nflags:\n", synopsis)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "rlccluster: "+format+"\n", args...)
	os.Exit(1)
}

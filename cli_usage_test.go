package rlc_test

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// cliTools lists every command with the one-line synopsis its -h output (and
// the README table) must lead with.
var cliTools = map[string]string{
	"rlcbuild":   "rlcbuild — build and serialize an RLC index for a graph file",
	"rlcquery":   "rlcquery — evaluate RLC (and extended) queries against a graph",
	"rlcserve":   "rlcserve — serve RLC reachability queries over HTTP with a result cache and hot-reloadable snapshots",
	"rlcgen":     "rlcgen — generate synthetic graphs and query workloads",
	"rlcinspect": "rlcinspect — print RLC index internals: stats, distributions, entry sets",
	"rlcbench":   "rlcbench — reproduce the paper's experimental tables and figures",
	"rlccluster": "rlccluster — run a replicated RLC serving node: a journal-streaming leader or a self-healing follower",
	"rlcrouter":  "rlcrouter — epoch-pinned router for a replicated RLC cluster: health-aware read fan-out, hedged tail latency, monotone consistency tokens",
}

func buildTool(t *testing.T, dir, tool string) string {
	t.Helper()
	bin := filepath.Join(dir, tool)
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/"+tool).CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", tool, err, out)
	}
	return bin
}

// TestCLIUsageConformance holds every tool to the normalized usage contract:
// -h prints the synopsis, a usage line, and the flag list and exits zero;
// an unknown flag or an unexpected positional argument prints usage and
// exits non-zero.
func TestCLIUsageConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI usage test skipped in -short mode")
	}
	dir := t.TempDir()
	for tool, synopsis := range cliTools {
		bin := buildTool(t, dir, tool)

		out, err := exec.Command(bin, "-h").CombinedOutput()
		if err != nil {
			t.Errorf("%s -h exited non-zero: %v\n%s", tool, err, out)
		}
		text := string(out)
		if !strings.Contains(text, synopsis) {
			t.Errorf("%s -h lacks its synopsis %q:\n%s", tool, synopsis, text)
		}
		if !strings.Contains(text, "usage: "+tool) {
			t.Errorf("%s -h lacks a usage line:\n%s", tool, text)
		}
		if !strings.Contains(text, "flags:") {
			t.Errorf("%s -h lacks the flag list:\n%s", tool, text)
		}

		out, err = exec.Command(bin, "-no-such-flag").CombinedOutput()
		if err == nil {
			t.Errorf("%s accepted an unknown flag; output:\n%s", tool, out)
		}
		if !strings.Contains(string(out), "usage: "+tool) {
			t.Errorf("%s unknown-flag output lacks usage:\n%s", tool, out)
		}

		out, err = exec.Command(bin, "stray-argument").CombinedOutput()
		if err == nil {
			t.Errorf("%s accepted a stray positional argument; output:\n%s", tool, out)
		}
		if !strings.Contains(string(out), "usage: "+tool) {
			t.Errorf("%s stray-argument output lacks usage:\n%s", tool, out)
		}
	}
}

// TestCLIServe drives the rlcserve binary end to end: generate the Fig. 2
// graph with rlcgen, start the server on an ephemeral port, query it over
// HTTP, and shut it down with SIGTERM expecting a graceful drain.
func TestCLIServe(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI serve test skipped in -short mode")
	}
	dir := t.TempDir()
	rlcgen := buildTool(t, dir, "rlcgen")
	rlcserve := buildTool(t, dir, "rlcserve")

	graphFile := filepath.Join(dir, "fig2.graph")
	if out, err := exec.Command(rlcgen, "-model", "fig2", "-out", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("rlcgen fig2: %v\n%s", err, out)
	}

	cmd := exec.Command(rlcserve, "-graph", graphFile, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start rlcserve: %v", err)
	}
	defer cmd.Process.Kill()

	// The serve line reports the actual ephemeral address.
	addrRe := regexp.MustCompile(`serving on (\S+)`)
	addrCh := make(chan string, 1)
	outCh := make(chan string, 1)
	go func() {
		var all strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := stdout.Read(buf)
			all.Write(buf[:n])
			if m := addrRe.FindStringSubmatch(all.String()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if err != nil {
				outCh <- all.String()
				return
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not report its listen address")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// (v1, v5, (l1 l2)+) is true on Fig. 2; the graph file preserves names.
	resp, err = http.Get(base + "/query?s=v1&t=v5&l=l1%20l2")
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	var qr struct {
		Reachable bool `json:"reachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if !qr.Reachable {
		t.Fatal("(v1, v5, (l1 l2)+) should be reachable over HTTP")
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Drain stdout to EOF before Wait — Wait closes the pipe and would
	// truncate the reader mid-stream.
	var out string
	select {
	case out = <-outCh:
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not close stdout after SIGTERM")
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- cmd.Wait() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("rlcserve exited non-zero after SIGTERM: %v\n%s", err, out)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not exit after SIGTERM")
	}
	if !strings.Contains(out, "shut down cleanly") {
		t.Errorf("missing graceful-shutdown report in output:\n%s", out)
	}
}

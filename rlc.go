// Package rlc is a Go implementation of the RLC index from "A Reachability
// Index for Recursive Label-Concatenated Graph Queries" (Zhang, Bonifati,
// Kapp, Haprian, Lozi — ICDE 2023): the first reachability index for RLC
// queries (s, t, L+), which ask whether some path from s to t carries a
// label sequence that is one or more repetitions of the label concatenation
// L = (l1, ..., lk).
//
// # Quick start
//
//	b := rlc.NewGraphBuilder(0, 0)
//	b.AddEdge(0, 0 /* label */, 1)
//	b.AddEdge(1, 1, 2)
//	g := b.Build()
//
//	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
//	if err != nil { ... }
//	ok, err := ix.Query(0, 2, rlc.Seq{0, 1}) // is there an (l0 l1)+ path 0 -> 2?
//
// The module is self-contained (no external dependencies): from a clean
// checkout, `go build ./...` and `go test ./...` are all that is needed.
//
// # Batch queries
//
// The built index is immutable — internally one flat CSR entry array — so
// reads parallelize freely. For query traffic that arrives in batches,
// QueryBatch fans a query slice out over a worker pool and returns one
// result per query, position for position; each worker reuses its own
// scratch, so the steady state allocates nothing per query:
//
//	queries := []rlc.BatchQuery{
//		{S: 0, T: 2, L: rlc.Seq{0, 1}},
//		{S: 1, T: 2, L: rlc.Seq{1}},
//	}
//	for i, res := range ix.QueryBatch(queries, 0) { // 0 workers = GOMAXPROCS
//		if res.Err != nil { ... }      // per-query validation errors
//		use(queries[i], res.Reachable) // answers stay in request order
//	}
//
// Plain Query and QueryBatch may run concurrently against the same index.
// QueryBatchInto is the same fan-out writing into a caller-reused result
// buffer, for serving loops that want zero allocations per batch.
//
// # Parallel construction
//
// BuildIndex itself is parallel: Options.BuildWorkers sets the number of
// construction workers (0 = GOMAXPROCS, 1 = the plain sequential path of
// Algorithm 2). The build is deterministic for every worker count — the
// scheduler speculates ahead of a sequentially advancing commit frontier
// and only commits speculations proven to match the sequential trajectory
// — so the resulting index, including its serialized bytes, is identical
// whether it was built on one core or all of them:
//
//	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2, BuildWorkers: 8})
//
// Rebuilds of a DeltaGraph inherit the same option through
// DeltaOptions.IndexOptions.
//
// # Snapshot bundles
//
// A built index freezes into a snapshot bundle: one self-contained file
// (graph CSR + index entries + label dictionary as checksummed sections)
// that OpenSnapshot memory-maps zero-copy — startup does structural
// validation only, no deserialization, so opening is orders of magnitude
// faster than LoadIndex and the mapping is shared between processes
// serving the same bundle:
//
//	rlc.SaveSnapshotFile("g.rlcs", ix)         // or: rlcbuild -o g.rlcs
//	snap, err := rlc.OpenSnapshot("g.rlcs")    // mmap, O(1) in the payload
//	if err := snap.Verify(); err != nil { ... } // full checksum pass
//	ok, err := snap.Index().Query(0, 2, rlc.Seq{0, 1})
//	defer snap.Close()
//
// Corrupt or truncated bundles fail with errors wrapping
// ErrCorruptSnapshot — never a panic — and the embedded graph fingerprint
// makes binding an index to the wrong graph (ErrGraphMismatch) impossible.
// The legacy two-file format (LoadIndex + a separate graph file) remains
// fully supported for existing artifacts.
//
// # Serving
//
// NewServer wraps an index in a long-running HTTP/JSON query service with a
// sharded LRU result cache (with singleflight deduplication of concurrent
// identical misses) in front of the index, per-endpoint latency histograms,
// and graceful shutdown — the production read path the rlcserve command
// exposes:
//
//	srv := rlc.NewServer(ix, rlc.ServerOptions{})
//	go srv.ListenAndServe(":8080")
//	...
//	srv.Shutdown(ctx)
//
// See GET /query, POST /batch, POST /reload, GET /stats, and GET /healthz
// on the returned server's Handler.
//
// NewServerFromSnapshot serves an open bundle instead, and the server's
// Store hot-swaps a replacement bundle with zero downtime (rlcserve wires
// this to SIGHUP and POST /reload): each in-flight query pins the
// generation it started on, new queries see the new snapshot immediately,
// and the old mapping is released only after its last reader drains.
//
// # Live updates
//
// A server started with ServerOptions.Mutable also takes writes — the
// read/write epoch pipeline (rlcserve -mutable):
//
//	srv := rlc.NewServer(ix, rlc.ServerOptions{Mutable: true})
//	srv.UpdateBatch([]rlc.Edge{{Src: 7, Dst: 9, Label: 1}}) // or POST /update
//
// Inserted edges land in a per-generation journal that every query consults
// exactly and without locking (answers may only flip false→true: the write
// path is insert-only, deletions are rejected). When the journal crosses
// ServerOptions.RebuildThreshold — or on Server.Rebuild / POST /rebuild /
// SIGUSR1 — a background goroutine folds base ∪ journal, reruns the
// deterministic parallel build, optionally writes a fresh v2 bundle
// (ServerOptions.RebuildPath), and hot-swaps the new epoch through the
// same Store drain path as a reload, carrying over edges inserted while it
// ran. Queries never block on a fold and answers stay exact across the
// swap; the result cache invalidates its negative entries on every write
// and survives wholesale only until the epoch rolls (cached TRUEs remain
// valid throughout — monotonicity again). ServerOptions.OnRebuild observes
// every fold; /stats and /healthz expose the epoch and journal length.
//
// The Querier interface (QueryRLC) is the common read surface of *Index,
// *HybridEvaluator, and *Server, so read-only code can swap layers freely;
// context.Context runs through it, QueryBatchCtx, and every server handler.
//
// The package also ships the paper's baselines (NFA-guided BFS and BiBFS,
// the extended transitive closure), three mainstream-engine comparators,
// synthetic graph generators (Erdős–Rényi, Barabási–Albert, Zipfian
// labels), workload generation, and a benchmark harness reproducing every
// table and figure of the paper's evaluation (see cmd/rlcbench and the
// README).
package rlc

import (
	"context"
	"io"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/dynamic"
	"github.com/g-rpqs/rlc-go/internal/etc"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/plain"
	"github.com/g-rpqs/rlc-go/internal/server"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
	"github.com/g-rpqs/rlc-go/internal/traversal"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// Core graph and label types.
type (
	// Graph is an immutable edge-labeled directed graph.
	Graph = graph.Graph
	// GraphBuilder accumulates labeled edges.
	GraphBuilder = graph.Builder
	// Edge is a directed labeled edge.
	Edge = graph.Edge
	// Vertex is a dense 0-based vertex id.
	Vertex = graph.Vertex
	// Label is a dense 0-based edge-label id.
	Label = labelseq.Label
	// Seq is a sequence of edge labels; RLC constraints are Seqs.
	Seq = labelseq.Seq
	// GraphStats summarizes a graph (Table III style).
	GraphStats = graph.Stats
)

// Index types.
type (
	// Index is the RLC index (Definition 4).
	Index = core.Index
	// Options configures BuildIndex.
	Options = core.Options
	// IndexStats summarizes an index.
	IndexStats = core.Stats
	// EntryView is a decoded index entry.
	EntryView = core.EntryView
	// BatchQuery is one (S, T, L+) query of an Index.QueryBatch call.
	BatchQuery = core.BatchQuery
	// BatchResult is the positional answer to a BatchQuery: Reachable is
	// meaningful only when Err is nil.
	BatchResult = core.BatchResult
)

// Expression types for extended queries (Section VI-C).
type (
	// Expr is a path expression: a concatenation of plus segments.
	Expr = automaton.Expr
	// Segment is one piece of an Expr.
	Segment = automaton.Segment
)

// Errors re-exported from the index implementation. The serving layer maps
// each sentinel to a stable machine-readable "code" field in HTTP error
// responses, so clients classify failures with errors.Is locally and by
// code over the wire.
var (
	ErrNotMinimumRepeat  = core.ErrNotMinimumRepeat
	ErrConstraintTooLong = core.ErrConstraintTooLong
	ErrUnknownLabel      = core.ErrUnknownLabel
	ErrVertexRange       = core.ErrVertexRange
	ErrEmptyConstraint   = core.ErrEmptyConstraint

	// ErrCorruptSnapshot wraps every failure that means snapshot-bundle
	// bytes are not a well-formed v2 bundle: bad magic, truncation,
	// checksum mismatches, structural violations.
	ErrCorruptSnapshot = snapshot.ErrCorrupt
	// ErrGraphMismatch reports an index bound to a graph other than the
	// one it was built from (v1 shape check, snapshot fingerprint check).
	ErrGraphMismatch = core.ErrGraphMismatch
)

// Querier answers single RLC reachability queries (s, t, L+) under a
// context. It is the read interface shared by every query-answering layer
// of the module: the raw index (*Index), the hybrid evaluator
// (*HybridEvaluator, which also accepts constraints outside the index's
// class), and the serving path (*Server, which adds the result cache and
// hot-swappable snapshots). Code that only reads — handlers, background
// checkers, tests — should accept a Querier and stay agnostic about which
// layer backs it.
type Querier interface {
	QueryRLC(ctx context.Context, s, t Vertex, l Seq) (bool, error)
}

// Every query-answering layer satisfies Querier.
var (
	_ Querier = (*Index)(nil)
	_ Querier = (*HybridEvaluator)(nil)
	_ Querier = (*Server)(nil)
	_ Querier = (*DeltaGraph)(nil)
)

// DefaultK is the recursive k used when Options.K is zero.
const DefaultK = core.DefaultK

// MaxK is the largest supported recursive k.
const MaxK = core.MaxK

// Vertex processing orders for Options.Order (ablation knobs; the zero
// value OrderInOut is the paper's strategy).
const (
	OrderInOut     = core.OrderInOut
	OrderDegreeSum = core.OrderDegreeSum
	OrderNatural   = core.OrderNatural
	OrderReverse   = core.OrderReverse
)

// PlainIndex is a pruned 2-hop labeling for plain (label-blind)
// reachability — the classical framework the RLC index generalizes. Use it
// as a negative pre-filter: if Reaches(s, t) is false, every RLC query
// (s, t, L+) is false.
type PlainIndex = plain.Index

// BuildPlainIndex constructs the plain-reachability labeling of g.
func BuildPlainIndex(g *Graph) (*PlainIndex, error) { return plain.Build(g) }

// NewGraphBuilder returns a builder for a graph with n vertices and
// numLabels labels; both grow as edges are added.
func NewGraphBuilder(n, numLabels int) *GraphBuilder { return graph.NewBuilder(n, numLabels) }

// GraphFromEdges builds a graph directly from an edge list.
func GraphFromEdges(n, numLabels int, edges []Edge) *Graph {
	return graph.FromEdges(n, numLabels, edges)
}

// ReadGraph parses the text edge-list format ("src dst label" lines).
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// WriteGraph renders a graph in the text edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// LoadGraphFile reads a graph from a text file.
func LoadGraphFile(path string) (*Graph, error) { return graph.LoadFile(path) }

// SaveGraphFile writes a graph to a text file.
func SaveGraphFile(path string, g *Graph) error { return graph.SaveFile(path, g) }

// ComputeGraphStats derives Table III-style statistics.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// BuildIndex constructs the RLC index for g (Algorithm 2).
func BuildIndex(g *Graph, opts Options) (*Index, error) { return core.Build(g, opts) }

// BuildStats counts what BuildIndexWithStats did during construction.
type BuildStats = core.BuildStats

// BuildIndexWithStats is BuildIndex plus construction counters (kernel
// searches run, entries inserted, inserts pruned per rule).
func BuildIndexWithStats(g *Graph, opts Options) (*Index, BuildStats, error) {
	return core.BuildWithStats(g, opts)
}

// LoadIndex deserializes an index written with (*Index).Write, binding it
// to g. Loading against a graph whose shape differs from the build-time one
// fails with ErrGraphMismatch. (The legacy v1 format records only the shape
// triple; snapshot bundles embed the full fingerprint including an edge
// hash and need no external graph at all.)
func LoadIndex(r io.Reader, g *Graph) (*Index, error) { return core.Load(r, g) }

// LoadIndexFile reads an index file and binds it to g.
func LoadIndexFile(path string, g *Graph) (*Index, error) { return core.LoadFile(path, g) }

// Snapshot is an open v2 snapshot bundle: one self-contained,
// checksum-sectioned file holding a graph and the index built over it,
// memory-mapped zero-copy where the platform allows. Snapshot.Index and
// Snapshot.Graph stay valid until Close; Verify runs the full integrity
// pass (section checksums + graph-fingerprint recomputation) that Open
// skips to keep opening O(1) in the payload.
type Snapshot = core.Snapshot

// Fingerprint identifies the graph an index was built from: shape plus an
// edge-content hash. Embedded in snapshot bundles; compare with
// Graph.Fingerprint.
type Fingerprint = graph.Fingerprint

// OpenSnapshot opens a v2 snapshot bundle file written with WriteSnapshot
// or `rlcbuild -o`: mmap + structural validation, no deserialization — the
// production startup path (rlcserve -snapshot). Corruption anywhere
// surfaces as an error wrapping ErrCorruptSnapshot, never a panic.
func OpenSnapshot(path string) (*Snapshot, error) { return core.OpenSnapshot(path) }

// OpenSnapshotBytes opens a bundle held in memory (an embedded artifact, a
// fetched blob). The Snapshot aliases data until Close.
func OpenSnapshotBytes(data []byte) (*Snapshot, error) { return core.OpenSnapshotBytes(data) }

// WriteSnapshot serializes ix and its graph as a self-contained v2 bundle.
func WriteSnapshot(w io.Writer, ix *Index) error { return ix.WriteSnapshot(w) }

// SaveSnapshotFile writes the v2 bundle of ix to path.
func SaveSnapshotFile(path string, ix *Index) error { return ix.SaveSnapshotFile(path) }

// EffectiveBatchWorkers reports how many workers Index.QueryBatch actually
// runs for a batch of numQueries when workers are requested (<= 0 meaning
// GOMAXPROCS) — small batches clamp to the available work.
func EffectiveBatchWorkers(numQueries, workers int) int {
	return core.EffectiveBatchWorkers(numQueries, workers)
}

// EffectiveBuildWorkers reports how many construction workers BuildIndex
// actually runs for a graph of numVertices when Options.BuildWorkers
// requests workers (<= 0 meaning GOMAXPROCS) — tiny graphs clamp to the
// vertex count, and one worker selects the sequential path.
func EffectiveBuildWorkers(numVertices, workers int) int {
	return core.EffectiveBuildWorkers(numVertices, workers)
}

// MinimumRepeat returns MR(s): the unique shortest sequence whose repetition
// is s (Lemma 1).
func MinimumRepeat(s Seq) Seq { return labelseq.MinimumRepeat(s) }

// IsMinimumRepeat reports whether l is its own minimum repeat — the
// admissibility condition for RLC constraints (Definition 1).
func IsMinimumRepeat(l Seq) bool { return labelseq.IsPrimitive(l) }

// EvalBFS answers (s, t, L+) by NFA-guided breadth-first search — the
// paper's first online baseline.
func EvalBFS(g *Graph, s, t Vertex, l Seq) (bool, error) { return traversal.EvalRLC(g, s, t, l) }

// EvalBiBFS answers (s, t, L+) by bidirectional BFS — the paper's second
// online baseline.
func EvalBiBFS(g *Graph, s, t Vertex, l Seq) (bool, error) { return traversal.EvalRLCBi(g, s, t, l) }

// EvalDFS answers (s, t, L+) by NFA-guided depth-first search — noted by
// the paper as the BFS alternative with identical complexity.
func EvalDFS(g *Graph, s, t Vertex, l Seq) (bool, error) {
	nfa, err := automaton.NewPlus(l, g.NumLabels())
	if err != nil {
		return false, err
	}
	return traversal.NewEvaluator(g).DFS(s, t, nfa), nil
}

// ETC types and constructors (the extended-transitive-closure baseline).
type (
	// ETC is the materialized extended transitive closure.
	ETC = etc.ETC
	// ETCOptions bounds ETC construction.
	ETCOptions = etc.Options
)

// BuildETC materializes the extended transitive closure of g.
func BuildETC(g *Graph, opts ETCOptions) (*ETC, error) { return etc.Build(g, opts) }

// HybridEvaluator answers extended queries (e.g. a+ b+) by combining the
// index with online traversal (Section VI-C).
type HybridEvaluator = hybrid.Evaluator

// NewHybridEvaluator returns a hybrid evaluator over the index's graph.
func NewHybridEvaluator(ix *Index) *HybridEvaluator { return hybrid.New(ix) }

// PlusExpr returns the single-segment RLC expression L+.
func PlusExpr(l Seq) Expr { return automaton.Plus(l) }

// ConcatPlusExpr returns l1+ ∘ l2+ ∘ ... (the Q4 query shape).
func ConcatPlusExpr(ls ...Seq) Expr { return automaton.ConcatPlus(ls...) }

// ParseExpr parses the textual expression syntax, resolving label names
// against g ("(debits credits)+", "knows+", "a+ b+"). Graphs without label
// names accept "l0"/"0" tokens.
func ParseExpr(s string, g *Graph) (Expr, error) {
	return automaton.ParseForGraph(s, g)
}

// Workload types and generation (Section VI-c).
type (
	// Query is one RLC query with its ground-truth answer.
	Query = workload.Query
	// Workload is a generated true/false query-set pair.
	Workload = workload.Workload
	// WorkloadOptions configures GenerateWorkload.
	WorkloadOptions = workload.Options
)

// GenerateWorkload builds a ground-truthed query workload for g.
func GenerateWorkload(g *Graph, opts WorkloadOptions) (Workload, error) {
	return workload.Generate(g, opts)
}

// GenerateER generates a directed Erdős–Rényi G(n, m) graph with Zipfian
// labels.
func GenerateER(n, m, numLabels int, seed int64) (*Graph, error) {
	return gen.ER(n, m, numLabels, seed)
}

// GenerateBA generates a directed Barabási–Albert graph (m out-edges per
// new vertex) with Zipfian labels.
func GenerateBA(n, m, numLabels int, seed int64) (*Graph, error) {
	return gen.BA(n, m, numLabels, seed)
}

// Dynamic-graph extension: the paper's index is static; DeltaGraph overlays
// edge insertions with exact, index-accelerated query answers and
// epoch-based background rebuilds (see internal/dynamic).
type (
	// DeltaGraph is an RLC-indexed graph accepting edge insertions. It is
	// safe for concurrent use: queries take no locks and never block on
	// (or perform) a rebuild; crossing DeltaOptions.RebuildThreshold
	// triggers a background fold into a fresh epoch.
	DeltaGraph = dynamic.DeltaGraph
	// DeltaOptions configures a DeltaGraph.
	DeltaOptions = dynamic.Options
	// FoldStats describes one completed DeltaGraph fold-and-rebuild,
	// delivered to DeltaOptions.OnFold.
	FoldStats = dynamic.FoldStats
)

// ErrDeletionsUnsupported is returned by DeltaGraph.RemoveEdge.
var ErrDeletionsUnsupported = dynamic.ErrDeletionsUnsupported

// NewDeltaGraph wraps an already-indexed graph for edge insertions.
func NewDeltaGraph(g *Graph, ix *Index, opts DeltaOptions) *DeltaGraph {
	return dynamic.New(g, ix, opts)
}

// BuildDeltaGraph indexes g and wraps it in one step.
func BuildDeltaGraph(g *Graph, opts DeltaOptions) (*DeltaGraph, error) {
	return dynamic.Build(g, opts)
}

// Query-serving layer (internal/server): a long-running HTTP/JSON service
// with a sharded LRU result cache fronting the index.
type (
	// Server answers RLC queries over HTTP; see its Handler method for
	// the endpoints.
	Server = server.Server
	// ServerOptions configures NewServer; the zero value serves with a
	// default-sized cache.
	ServerOptions = server.Options
	// CacheStats is a snapshot of the server's result-cache counters.
	CacheStats = server.CacheStats
	// EndpointStats is the /stats rendering of one endpoint's latency
	// histogram.
	EndpointStats = server.EndpointStats
	// Store is the server's RCU-style generation store: it pins the
	// currently served snapshot for each in-flight query and swaps in
	// replacements atomically, retiring the old snapshot only after its
	// last reader drains — the zero-downtime hot-reload primitive behind
	// rlcserve's SIGHUP and POST /reload, and the drain path every
	// mutable-server fold hot-swaps through.
	Store = server.Store
	// UpdateResult reports one accepted Server.UpdateBatch (POST /update)
	// call: edges appended, journal length, epoch, and whether the batch
	// triggered a background fold.
	UpdateResult = server.UpdateResult
	// RebuildResult reports one completed server fold-and-rebuild —
	// returned by Server.Rebuild and delivered to ServerOptions.OnRebuild
	// (with Err set on failures).
	RebuildResult = server.RebuildResult
	// MutableServerStats is the write-path section of a mutable server's
	// /stats: epoch, journal length, accepted writes, and fold telemetry.
	MutableServerStats = server.MutableStats
)

// DefaultCacheEntries is the server's result-cache capacity when
// ServerOptions.CacheEntries is zero.
const DefaultCacheEntries = server.DefaultCacheEntries

// NewServer returns an HTTP query server over ix. Start it with
// ListenAndServe or mount its Handler; stop it with Shutdown (and Close to
// release the serving generation).
func NewServer(ix *Index, opts ServerOptions) *Server { return server.New(ix, opts) }

// NewServerFromSnapshot returns an HTTP query server over an open snapshot
// bundle, taking ownership of it: the bundle is retired when a reload swaps
// it out, or by Close. Set ServerOptions.SnapshotSource to enable
// POST /reload hot swaps.
func NewServerFromSnapshot(snap *Snapshot, opts ServerOptions) *Server {
	return server.NewFromSnapshot(snap, opts)
}

// ExampleFig1 returns the paper's Figure 1 social/financial network.
func ExampleFig1() *Graph { return graph.Fig1() }

// ExampleFig2 returns the paper's Figure 2 running-example graph.
func ExampleFig2() *Graph { return graph.Fig2() }

// Fraud detection: the motivating scenario of the paper's introduction
// (Example 1). The Figure 1 property graph interleaves a social/professional
// network with bank accounts; the RLC query (debits credits)+ detects
// round-tripping money flows between accounts.
//
//	go run ./examples/frauddetection
package main

import (
	"fmt"
	"log"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	g := rlc.ExampleFig1()
	fmt.Println("social/financial network of Figure 1")
	fmt.Printf("%d vertices, %d edges, labels: knows, worksFor, holds, debits, credits\n\n", g.NumVertices(), g.NumEdges())

	ix, err := rlc.BuildIndex(g, rlc.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Example 1, Q1: is there a (debits credits)+ money trail from account
	// A14 to account A19?
	constraint, err := rlc.ParseExpr("(debits credits)+", g)
	if err != nil {
		log.Fatal(err)
	}
	a14, _ := g.VertexByName("A14")
	a19, _ := g.VertexByName("A19")
	ok, err := ix.Query(a14, a19, constraint.Segments[0].Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Q1(A14, A19, (debits credits)+) = %v\n", ok)
	fmt.Println("   -> suspicious transfer chain A14 -debits-> E15 -credits-> A17 -debits-> E18 -credits-> A19")

	// Example 1, Q2: false — no (knows knows worksFor)+ path P10 -> P13.
	q2, err := rlc.ParseExpr("(knows knows worksFor)+", g)
	if err != nil {
		log.Fatal(err)
	}
	p10, _ := g.VertexByName("P10")
	p13, _ := g.VertexByName("P13")
	ok, err = ix.Query(p10, p13, q2.Segments[0].Labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ2(P10, P13, (knows knows worksFor)+) = %v\n", ok)

	// Sweep: flag every account pair connected by a (debits credits)+
	// trail — the screening query an analyst would run over the whole
	// ledger. One index lookup per pair.
	fmt.Println("\nfull (debits credits)+ screening over account pairs:")
	accounts := []string{"A14", "A17", "A19"}
	flagged := 0
	for _, from := range accounts {
		for _, to := range accounts {
			if from == to {
				continue
			}
			src, _ := g.VertexByName(from)
			dst, _ := g.VertexByName(to)
			ok, err := ix.Query(src, dst, constraint.Segments[0].Labels)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				fmt.Printf("  FLAG: %s -> %s\n", from, to)
				flagged++
			}
		}
	}
	fmt.Printf("%d of %d pairs flagged\n", flagged, len(accounts)*(len(accounts)-1))

	// An extended query in the style of Q4 (Section VI-C): does any person
	// P10 knows (transitively) hold an account that debits E15? Evaluated
	// by the index+traversal hybrid.
	h := rlc.NewHybridEvaluator(ix)
	knowsHoldsDebits, err := rlc.ParseExpr("knows+ holds+ debits+", g)
	if err != nil {
		log.Fatal(err)
	}
	e15, _ := g.VertexByName("E15")
	ok, err = h.Eval(p10, e15, knowsHoldsDebits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid: knows+ holds+ debits+ from P10 to E15 = %v\n", ok)
}

// Quickstart: build an RLC index over the paper's running-example graph
// (Figure 2) and replay the queries of Example 4.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	// The graph of Figure 2: six vertices, eleven edges, labels l1-l3.
	g := rlc.ExampleFig2()
	fmt.Printf("graph: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())

	// Build the index with recursive k = 2: it can answer any constraint
	// (l1 ... lj)+ with j <= 2.
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("index: %d entries, %d distinct minimum repeats, %d bytes\n\n", st.Entries, st.DistinctMRs, st.SizeBytes)

	v := func(name string) rlc.Vertex {
		id, ok := g.VertexByName(name)
		if !ok {
			log.Fatalf("no vertex %s", name)
		}
		return id
	}
	const (
		l1 = rlc.Label(0)
		l2 = rlc.Label(1)
	)

	// The three queries of Example 4.
	queries := []struct {
		name string
		s, t rlc.Vertex
		l    rlc.Seq
	}{
		{"Q1(v3, v6, (l2 l1)+)", v("v3"), v("v6"), rlc.Seq{l2, l1}},
		{"Q2(v1, v2, (l2 l1)+)", v("v1"), v("v2"), rlc.Seq{l2, l1}},
		{"Q3(v1, v3, (l1)+)", v("v1"), v("v3"), rlc.Seq{l1}},
	}
	for _, q := range queries {
		ans, err := ix.Query(q.s, q.t, q.l)
		if err != nil {
			log.Fatal(err)
		}
		// Cross-check against the online-traversal baseline.
		bfs, err := rlc.EvalBFS(g, q.s, q.t, q.l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s = %-5v (BFS agrees: %v)\n", q.name, ans, bfs == ans)
	}

	// Peek inside the index: the Lout set of v3 (cf. Table II).
	fmt.Printf("\nLout(v3):\n")
	for _, e := range ix.LoutEntries(v("v3")) {
		fmt.Printf("  (%s, %s)\n", g.VertexName(e.Hub), e.MR.Format(g.LabelNames()))
	}

	// Batch queries: the same three queries answered in one QueryBatch
	// call. The index is immutable, so the batch fans out over a worker
	// pool (0 = GOMAXPROCS) and the results come back in request order.
	batch := make([]rlc.BatchQuery, len(queries))
	for i, q := range queries {
		batch[i] = rlc.BatchQuery{S: q.s, T: q.t, L: q.l}
	}
	fmt.Printf("\nQueryBatch over the same queries:\n")
	for i, res := range ix.QueryBatch(batch, 0) {
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		fmt.Printf("%-22s = %v\n", queries[i].name, res.Reachable)
	}

	// Parallel construction: Options.BuildWorkers spreads the build over a
	// worker pool (0 = GOMAXPROCS, 1 = sequential). The build is
	// deterministic for every worker count, so an index built with 4
	// workers serializes byte-for-byte identically to the sequential one.
	seq, err := rlc.BuildIndex(g, rlc.Options{K: 2, BuildWorkers: 1})
	if err != nil {
		log.Fatal(err)
	}
	par, err := rlc.BuildIndex(g, rlc.Options{K: 2, BuildWorkers: 4})
	if err != nil {
		log.Fatal(err)
	}
	var seqBytes, parBytes bytes.Buffer
	if err := seq.Write(&seqBytes); err != nil {
		log.Fatal(err)
	}
	if err := par.Write(&parBytes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nparallel build (4 workers) byte-identical to sequential: %v\n",
		bytes.Equal(seqBytes.Bytes(), parBytes.Bytes()))
}

// Dynamic updates: the paper's index is built for a static graph; this
// example shows the repository's insert-only extension. A fraud-screening
// index keeps answering exactly as new transactions stream in, and a
// BACKGROUND fold-and-rebuild absorbs the journal into a fresh epoch once
// it grows past a threshold — queries never block on (or perform) the
// rebuild.
//
//	go run ./examples/dynamicupdates
package main

import (
	"fmt"
	"log"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	// Accounts 0..5; labels: 0 = debits, 1 = credits.
	const (
		debits  = rlc.Label(0)
		credits = rlc.Label(1)
	)
	b := rlc.NewGraphBuilder(6, 2)
	b.AddEdge(0, debits, 1)
	b.AddEdge(1, credits, 2)
	g := b.Build()

	d, err := rlc.BuildDeltaGraph(g, rlc.DeltaOptions{
		IndexOptions:     rlc.Options{K: 2},
		RebuildThreshold: 4,
		OnFold: func(st rlc.FoldStats) {
			fmt.Printf("  [background fold: epoch %d, %d edges folded in %v]\n",
				st.Epoch, st.Folded, st.Duration.Round(time.Millisecond))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	pattern := rlc.Seq{debits, credits}
	check := func(when string) {
		ok, err := d.Query(0, 4, pattern)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s (0 ⇝ 4 via (debits credits)+) = %-5v  journal=%d epoch=%d\n", when, ok, d.JournalLen(), d.Epoch())
	}

	check("initial graph")

	// Transactions stream in one at a time; the index is NOT rebuilt, yet
	// answers stay exact.
	fmt.Println("\nstreaming transactions 2-debits->3, 3-credits->4 ...")
	if err := d.AddEdge(2, debits, 3); err != nil {
		log.Fatal(err)
	}
	check("after 1 insertion")
	if err := d.AddEdge(3, credits, 4); err != nil {
		log.Fatal(err)
	}
	check("after 2 insertions") // now true: the full chain exists

	// More inserts push the journal past the threshold: the insert that
	// crosses it triggers a fold on a background goroutine while queries
	// keep answering. Quiesce only waits here so the printed journal
	// length is deterministic — a server would never need to.
	fmt.Println("\nmore transactions until the rebuild threshold (4) is hit ...")
	if err := d.AddEdge(4, debits, 5); err != nil {
		log.Fatal(err)
	}
	if err := d.AddEdge(5, credits, 0); err != nil {
		log.Fatal(err)
	}
	d.Quiesce()
	check("after background fold") // journal folded: 0, epoch 1

	// The rebuilt index now also knows the cycle closed by 5-credits->0.
	ok, err := d.Query(0, 0, pattern)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround-trip (0 ⇝ 0 via (debits credits)+) = %v — the laundering loop closed\n", ok)

	// Deletions are rejected: the static index cannot soundly forget.
	if err := d.RemoveEdge(0, debits, 1); err != nil {
		fmt.Printf("RemoveEdge: %v\n", err)
	}
}

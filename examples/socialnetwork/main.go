// Social network at scale: generate a Barabási–Albert graph (the model the
// paper uses for skewed real-world-like networks), build the RLC index, race
// it against the online-traversal baselines on a 2-label workload — a
// miniature of the paper's Figure 3 experiment — and then serve the same
// index over HTTP the way rlcserve does, answering single and batch queries
// through the result cache.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	const (
		vertices = 20000
		outDeg   = 5
		labels   = 8
		queries  = 500
	)
	fmt.Printf("generating BA graph: %d vertices, out-degree %d, %d Zipfian labels...\n", vertices, outDeg, labels)
	g, err := rlc.GenerateBA(vertices, outDeg, labels, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := rlc.ComputeGraphStats(g)
	fmt.Printf("graph: %d edges, %d triangles, max in-degree %d\n\n", st.Edges, st.Triangles, st.MaxInDeg)

	start := time.Now()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v: %d entries, %.2f MB\n\n",
		time.Since(start).Round(time.Millisecond), ix.NumEntries(), float64(ix.SizeBytes())/(1024*1024))

	fmt.Printf("generating %d true + %d false queries (constraints like (follows mentions)+)...\n", queries, queries)
	w, err := rlc.GenerateWorkload(g, rlc.WorkloadOptions{
		NumTrue: queries, NumFalse: queries, ConcatLen: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	race := func(name string, eval func(q rlc.Query) (bool, error)) {
		start := time.Now()
		for _, q := range w.All() {
			got, err := eval(q)
			if err != nil {
				log.Fatal(err)
			}
			if got != q.Expected {
				log.Fatalf("%s answered %v for %v, ground truth %v", name, got, q, q.Expected)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %10v total   %8.1f µs/query\n",
			name, elapsed.Round(time.Microsecond), float64(elapsed.Microseconds())/float64(2*queries))
	}

	fmt.Println()
	race("RLC index", func(q rlc.Query) (bool, error) { return ix.Query(q.S, q.T, q.L) })
	race("BiBFS", func(q rlc.Query) (bool, error) { return rlc.EvalBiBFS(g, q.S, q.T, q.L) })
	race("BFS", func(q rlc.Query) (bool, error) { return rlc.EvalBFS(g, q.S, q.T, q.L) })

	fmt.Println("\nall three evaluators agreed on every query (verified against ground truth).")

	serveOverHTTP(ix, w)
}

// serveOverHTTP stands the index up behind the rlc serving layer on a local
// port and exercises it like an external client: one GET /query per workload
// query (twice, so the second pass hits the result cache), one POST /batch
// for the whole workload, then a graceful shutdown.
func serveOverHTTP(ix *rlc.Index, w rlc.Workload) {
	srv := rlc.NewServer(ix, rlc.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\nserving the index over HTTP at %s\n", base)

	queries := w.All()
	for pass, name := range []string{"cold", "cached"} {
		start := time.Now()
		for _, q := range queries {
			var resp struct {
				Reachable bool `json:"reachable"`
			}
			u := fmt.Sprintf("%s/query?s=%d&t=%d&l=%s", base, q.S, q.T, url.QueryEscape(exprText(q.L)))
			if err := getJSON(u, &resp); err != nil {
				log.Fatal(err)
			}
			if resp.Reachable != q.Expected {
				log.Fatalf("HTTP answered %v for %v, ground truth %v", resp.Reachable, q, q.Expected)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("GET /query  %s pass (%d): %8v total  %6.1f µs/query\n",
			name, pass+1, elapsed.Round(time.Microsecond), float64(elapsed.Microseconds())/float64(len(queries)))
	}

	// The same workload as one batch request, fanned over the server's
	// concurrent worker pool.
	var body strings.Builder
	body.WriteString(`{"queries":[`)
	for i, q := range queries {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"s":%d,"t":%d,"l":"%s"}`, q.S, q.T, exprText(q.L))
	}
	body.WriteString(`]}`)
	var batch struct {
		Results []struct {
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		} `json:"results"`
		Cached int     `json:"cached"`
		Micros float64 `json:"micros"`
	}
	resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(body.String()))
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for i, r := range batch.Results {
		if r.Error != "" || r.Reachable != queries[i].Expected {
			log.Fatalf("batch result %d: got (%v, %q), ground truth %v", i, r.Reachable, r.Error, queries[i].Expected)
		}
	}
	fmt.Printf("POST /batch %d queries in %.0f µs (%d answered from cache)\n",
		len(batch.Results), batch.Micros, batch.Cached)

	cs := srv.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %.1f%% hit rate\n", cs.Hits, cs.Misses, cs.HitRate()*100)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("server drained and shut down cleanly.")
}

// exprText renders a constraint in the expression syntax the server parses.
func exprText(l rlc.Seq) string {
	toks := make([]string, len(l))
	for i, lb := range l {
		toks[i] = fmt.Sprintf("l%d", lb)
	}
	return "(" + strings.Join(toks, " ") + ")+"
}

func getJSON(u string, into any) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

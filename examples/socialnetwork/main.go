// Social network at scale: generate a Barabási–Albert graph (the model the
// paper uses for skewed real-world-like networks), build the RLC index, race
// it against the online-traversal baselines on a 2-label workload — a
// miniature of the paper's Figure 3 experiment — and then serve the same
// index over HTTP the way rlcserve does, answering single and batch queries
// through the result cache.
//
//	go run ./examples/socialnetwork
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	const (
		vertices = 20000
		outDeg   = 5
		labels   = 8
		queries  = 500
	)
	fmt.Printf("generating BA graph: %d vertices, out-degree %d, %d Zipfian labels...\n", vertices, outDeg, labels)
	g, err := rlc.GenerateBA(vertices, outDeg, labels, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := rlc.ComputeGraphStats(g)
	fmt.Printf("graph: %d edges, %d triangles, max in-degree %d\n\n", st.Edges, st.Triangles, st.MaxInDeg)

	start := time.Now()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v: %d entries, %.2f MB\n\n",
		time.Since(start).Round(time.Millisecond), ix.NumEntries(), float64(ix.SizeBytes())/(1024*1024))

	fmt.Printf("generating %d true + %d false queries (constraints like (follows mentions)+)...\n", queries, queries)
	w, err := rlc.GenerateWorkload(g, rlc.WorkloadOptions{
		NumTrue: queries, NumFalse: queries, ConcatLen: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	race := func(name string, eval func(q rlc.Query) (bool, error)) {
		start := time.Now()
		for _, q := range w.All() {
			got, err := eval(q)
			if err != nil {
				log.Fatal(err)
			}
			if got != q.Expected {
				log.Fatalf("%s answered %v for %v, ground truth %v", name, got, q, q.Expected)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %10v total   %8.1f µs/query\n",
			name, elapsed.Round(time.Microsecond), float64(elapsed.Microseconds())/float64(2*queries))
	}

	fmt.Println()
	race("RLC index", func(q rlc.Query) (bool, error) { return ix.Query(q.S, q.T, q.L) })
	race("BiBFS", func(q rlc.Query) (bool, error) { return rlc.EvalBiBFS(g, q.S, q.T, q.L) })
	race("BFS", func(q rlc.Query) (bool, error) { return rlc.EvalBFS(g, q.S, q.T, q.L) })

	fmt.Println("\nall three evaluators agreed on every query (verified against ground truth).")

	serveOverHTTP(ix, w)
	liveIngestion(g, ix, w)
}

// serveOverHTTP stands the index up behind the rlc serving layer on a local
// port and exercises it like an external client: one GET /query per workload
// query (twice, so the second pass hits the result cache), one POST /batch
// for the whole workload, then a graceful shutdown.
func serveOverHTTP(ix *rlc.Index, w rlc.Workload) {
	srv := rlc.NewServer(ix, rlc.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\nserving the index over HTTP at %s\n", base)

	queries := w.All()
	for pass, name := range []string{"cold", "cached"} {
		start := time.Now()
		for _, q := range queries {
			var resp struct {
				Reachable bool `json:"reachable"`
			}
			u := fmt.Sprintf("%s/query?s=%d&t=%d&l=%s", base, q.S, q.T, url.QueryEscape(exprText(q.L)))
			if err := getJSON(u, &resp); err != nil {
				log.Fatal(err)
			}
			if resp.Reachable != q.Expected {
				log.Fatalf("HTTP answered %v for %v, ground truth %v", resp.Reachable, q, q.Expected)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("GET /query  %s pass (%d): %8v total  %6.1f µs/query\n",
			name, pass+1, elapsed.Round(time.Microsecond), float64(elapsed.Microseconds())/float64(len(queries)))
	}

	// The same workload as one batch request, fanned over the server's
	// concurrent worker pool.
	var body strings.Builder
	body.WriteString(`{"queries":[`)
	for i, q := range queries {
		if i > 0 {
			body.WriteByte(',')
		}
		fmt.Fprintf(&body, `{"s":%d,"t":%d,"l":"%s"}`, q.S, q.T, exprText(q.L))
	}
	body.WriteString(`]}`)
	var batch struct {
		Results []struct {
			Reachable bool   `json:"reachable"`
			Error     string `json:"error"`
		} `json:"results"`
		Cached int     `json:"cached"`
		Micros float64 `json:"micros"`
	}
	resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(body.String()))
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	for i, r := range batch.Results {
		if r.Error != "" || r.Reachable != queries[i].Expected {
			log.Fatalf("batch result %d: got (%v, %q), ground truth %v", i, r.Reachable, r.Error, queries[i].Expected)
		}
	}
	fmt.Printf("POST /batch %d queries in %.0f µs (%d answered from cache)\n",
		len(batch.Results), batch.Micros, batch.Cached)

	cs := srv.CacheStats()
	fmt.Printf("cache: %d hits, %d misses, %.1f%% hit rate\n", cs.Hits, cs.Misses, cs.HitRate()*100)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("server drained and shut down cleanly.")
}

// liveIngestion restarts the same index behind a MUTABLE server and streams
// edges into it over HTTP while querying it over HTTP — the read/write
// epoch pipeline. It asserts exactness the whole way: true answers can
// never regress while edges stream in (the write path is insert-only), a
// sentinel query flips false→true the moment its enabling edges land, and
// every tracked answer survives the background fold-and-rebuild hot swap
// bit for bit.
func liveIngestion(g *rlc.Graph, ix *rlc.Index, w rlc.Workload) {
	dir, err := os.MkdirTemp("", "rlc-fold")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	bundle := filepath.Join(dir, "fold.rlcs")

	srv := rlc.NewServer(ix, rlc.ServerOptions{
		Mutable:          true,
		RebuildThreshold: -1, // fold on demand below, so the demo is deterministic
		RebuildPath:      bundle,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("\nlive ingestion: mutable server at %s (folds write %s)\n", base, bundle)

	ask := func(s, t rlc.Vertex, l rlc.Seq) bool {
		var resp struct {
			Reachable bool `json:"reachable"`
		}
		u := fmt.Sprintf("%s/query?s=%d&t=%d&l=%s", base, s, t, url.QueryEscape(exprText(l)))
		if err := getJSON(u, &resp); err != nil {
			log.Fatal(err)
		}
		return resp.Reachable
	}
	post := func(path, body string) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			log.Fatalf("POST %s: %d %s", path, resp.StatusCode, b)
		}
		resp.Body.Close()
	}

	// Baseline: every workload answer equals its static ground truth, and a
	// false query becomes the sentinel we will flip.
	queries := w.All()
	before := make([]bool, len(queries))
	sentinel := -1
	for i, q := range queries {
		before[i] = ask(q.S, q.T, q.L)
		if before[i] != q.Expected {
			log.Fatalf("baseline: (%d,%d,%v+) = %v, ground truth %v", q.S, q.T, q.L, before[i], q.Expected)
		}
		if sentinel < 0 && !q.Expected && len(q.L) == 2 {
			sentinel = i
		}
	}
	sq := queries[sentinel]
	if ask(sq.S, sq.T, sq.L) {
		log.Fatal("sentinel must start false")
	}

	// Stream 300 random edges over HTTP from a writer goroutine while this
	// goroutine keeps querying: cached TRUE answers must never regress
	// (insertions only add paths).
	r := rand.New(rand.NewSource(2024))
	streamed := make(chan struct{})
	go func() {
		defer close(streamed)
		for i := 0; i < 300; i++ {
			s := rlc.Vertex(r.Intn(g.NumVertices()))
			t := rlc.Vertex(r.Intn(g.NumVertices()))
			l := rlc.Label(r.Intn(g.NumLabels()))
			post("/update", fmt.Sprintf(`{"s":%d,"l":%d,"t":%d}`, s, l, t))
		}
	}()
	checks := 0
	for {
		select {
		case <-streamed:
		default:
			i := r.Intn(len(queries))
			q := queries[i]
			got := ask(q.S, q.T, q.L)
			if before[i] && !got {
				log.Fatalf("monotonicity violated mid-stream: (%d,%d,%v+) regressed to false", q.S, q.T, q.L)
			}
			checks++
			continue
		}
		break
	}
	fmt.Printf("streamed 300 edges while answering %d interleaved queries (no true answer regressed)\n", checks)

	// The sentinel's enabling path: S -l[0]-> hub -l[1]-> T makes (l[0] l[1])+
	// hold with one repetition. The answer must flip on the very next query.
	hub := rlc.Vertex((int(sq.S) + 1) % g.NumVertices())
	post("/update", fmt.Sprintf(`{"edges":[{"s":%d,"l":%d,"t":%d},{"s":%d,"l":%d,"t":%d}]}`,
		sq.S, sq.L[0], hub, hub, sq.L[1], sq.T))
	if !ask(sq.S, sq.T, sq.L) {
		log.Fatalf("sentinel (%d,%d,%v+) still false after its enabling edges landed", sq.S, sq.T, sq.L)
	}
	fmt.Printf("sentinel (%d ⇝ %d via %s) flipped false → true immediately after its enabling update\n",
		sq.S, sq.T, exprText(sq.L))

	// Record every answer, fold (rebuild + bundle write + hot swap), and
	// require every answer to survive the swap unchanged.
	preFold := make([]bool, len(queries))
	for i, q := range queries {
		preFold[i] = ask(q.S, q.T, q.L)
	}
	var rb struct {
		Epoch   uint64  `json:"epoch"`
		Folded  int     `json:"folded"`
		Journal int     `json:"journal"`
		Micros  float64 `json:"micros"`
	}
	resp, err := http.Post(base+"/rebuild", "application/json", strings.NewReader("{}"))
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("fold: %d edges rebuilt into epoch %d (journal now %d) in %.0f ms; serving the mmapped bundle\n",
		rb.Folded, rb.Epoch, rb.Journal, rb.Micros/1e3)
	var stats struct {
		Generation uint64 `json:"generation"`
		Mutable    struct {
			Epoch   uint64 `json:"epoch"`
			Journal int    `json:"journal"`
		} `json:"mutable"`
	}
	if err := getJSON(base+"/stats", &stats); err != nil {
		log.Fatal(err)
	}
	if stats.Mutable.Epoch != 1 || stats.Mutable.Journal != 0 || stats.Generation != 2 {
		log.Fatalf("post-fold stats: %+v", stats)
	}
	for i, q := range queries {
		if got := ask(q.S, q.T, q.L); got != preFold[i] {
			log.Fatalf("answer changed across the hot swap: (%d,%d,%v+) %v -> %v", q.S, q.T, q.L, preFold[i], got)
		}
	}
	fmt.Printf("all %d tracked answers identical before and after the hot swap — exactness held across the epoch.\n", len(queries))

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := <-done; err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

// exprText renders a constraint in the expression syntax the server parses.
func exprText(l rlc.Seq) string {
	toks := make([]string, len(l))
	for i, lb := range l {
		toks[i] = fmt.Sprintf("l%d", lb)
	}
	return "(" + strings.Join(toks, " ") + ")+"
}

func getJSON(u string, into any) error {
	resp, err := http.Get(u)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", u, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

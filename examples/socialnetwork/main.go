// Social network at scale: generate a Barabási–Albert graph (the model the
// paper uses for skewed real-world-like networks), build the RLC index, and
// race it against the online-traversal baselines on a 2-label workload —
// a miniature of the paper's Figure 3 experiment.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
)

func main() {
	const (
		vertices = 20000
		outDeg   = 5
		labels   = 8
		queries  = 500
	)
	fmt.Printf("generating BA graph: %d vertices, out-degree %d, %d Zipfian labels...\n", vertices, outDeg, labels)
	g, err := rlc.GenerateBA(vertices, outDeg, labels, 42)
	if err != nil {
		log.Fatal(err)
	}
	st := rlc.ComputeGraphStats(g)
	fmt.Printf("graph: %d edges, %d triangles, max in-degree %d\n\n", st.Edges, st.Triangles, st.MaxInDeg)

	start := time.Now()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index built in %v: %d entries, %.2f MB\n\n",
		time.Since(start).Round(time.Millisecond), ix.NumEntries(), float64(ix.SizeBytes())/(1024*1024))

	fmt.Printf("generating %d true + %d false queries (constraints like (follows mentions)+)...\n", queries, queries)
	w, err := rlc.GenerateWorkload(g, rlc.WorkloadOptions{
		NumTrue: queries, NumFalse: queries, ConcatLen: 2, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	race := func(name string, eval func(q rlc.Query) (bool, error)) {
		start := time.Now()
		for _, q := range w.All() {
			got, err := eval(q)
			if err != nil {
				log.Fatal(err)
			}
			if got != q.Expected {
				log.Fatalf("%s answered %v for %v, ground truth %v", name, got, q, q.Expected)
			}
		}
		elapsed := time.Since(start)
		fmt.Printf("%-10s %10v total   %8.1f µs/query\n",
			name, elapsed.Round(time.Microsecond), float64(elapsed.Microseconds())/float64(2*queries))
	}

	fmt.Println()
	race("RLC index", func(q rlc.Query) (bool, error) { return ix.Query(q.S, q.T, q.L) })
	race("BiBFS", func(q rlc.Query) (bool, error) { return rlc.EvalBiBFS(g, q.S, q.T, q.L) })
	race("BFS", func(q rlc.Query) (bool, error) { return rlc.EvalBFS(g, q.S, q.T, q.L) })

	fmt.Println("\nall three evaluators agreed on every query (verified against ground truth).")
}

// Engines comparison: a miniature of Table V. On a replica of the
// Web-NotreDame (WN) dataset, compare three mainstream-engine evaluation
// strategies against the RLC index on the four query types of Section VI-C:
//
//	Q1 = a+     Q2 = (a b)+     Q3 = (a b c)+     Q4 = a+ b+
//
//	go run ./examples/engines
package main

import (
	"fmt"
	"log"
	"time"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/engines"
)

func main() {
	wn, err := datasets.ByName("WN")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generating WN replica (Web-NotreDame profile)...")
	g, err := wn.Generate(8000, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica: %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())

	start := time.Now()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 3})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	fmt.Printf("k = 3 index built in %v (%d entries)\n\n", buildTime.Round(time.Millisecond), ix.NumEntries())
	hyb := rlc.NewHybridEvaluator(ix)

	a, b, c := rlc.Label(0), rlc.Label(1), rlc.Label(2)
	queryTypes := []struct {
		name string
		expr rlc.Expr
	}{
		{"Q1 a+", rlc.PlusExpr(rlc.Seq{a})},
		{"Q2 (a b)+", rlc.PlusExpr(rlc.Seq{a, b})},
		{"Q3 (a b c)+", rlc.PlusExpr(rlc.Seq{a, b, c})},
		{"Q4 a+ b+", rlc.ConcatPlusExpr(rlc.Seq{a}, rlc.Seq{b})},
	}
	engs := []engines.Engine{
		engines.NewSys1(g),
		engines.NewSys2(g),
		engines.NewVirtuosoLike(g),
	}

	// A fixed sample of vertex pairs shared by all systems.
	const samples = 40
	pairs := make([][2]rlc.Vertex, samples)
	for i := range pairs {
		pairs[i] = [2]rlc.Vertex{rlc.Vertex((i * 131) % g.NumVertices()), rlc.Vertex((i*977 + 13) % g.NumVertices())}
	}

	fmt.Printf("%-14s %-12s %14s %14s %8s\n", "query", "system", "engine µs/q", "RLC µs/q", "SU")
	for _, qt := range queryTypes {
		rlcStart := time.Now()
		answers := make([]bool, samples)
		for i, p := range pairs {
			ans, err := hyb.Eval(p[0], p[1], qt.expr)
			if err != nil {
				log.Fatal(err)
			}
			answers[i] = ans
		}
		rlcPer := time.Since(rlcStart) / samples

		for _, eng := range engs {
			engStart := time.Now()
			for i, p := range pairs {
				got, err := eng.Eval(p[0], p[1], qt.expr)
				if err != nil {
					log.Fatal(err)
				}
				if got != answers[i] {
					log.Fatalf("%s disagrees with the index on %s", eng.Name(), qt.name)
				}
			}
			engPer := time.Since(engStart) / samples
			su := float64(engPer) / max(float64(rlcPer), 1)
			fmt.Printf("%-14s %-12s %14.1f %14.1f %7.0fx\n",
				qt.name, eng.Name(), float64(engPer.Microseconds()), float64(rlcPer.Microseconds()), su)
		}
	}
	fmt.Println("\nevery engine answer matched the index (correctness cross-checked).")
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package rlc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// rlcvet takes positional package patterns, so it cannot ride in cliTools
// (whose conformance loop requires tools to reject stray positionals). This
// file holds it to the same usage contract minus that check, plus the
// vet-specific surfaces: -list, the vettool version handshake, and the
// standalone analysis modes' exit codes.

const rlcvetSynopsis = "rlcvet — static analysis enforcing rlc-go's pin, zero-copy view, noalloc, and error-code invariants"

func TestCLIVetUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI vet test skipped in -short mode")
	}
	bin := buildTool(t, t.TempDir(), "rlcvet")

	out, err := exec.Command(bin, "-h").CombinedOutput()
	if err != nil {
		t.Errorf("rlcvet -h exited non-zero: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, rlcvetSynopsis) {
		t.Errorf("rlcvet -h lacks its synopsis:\n%s", text)
	}
	if !strings.Contains(text, "usage: rlcvet") {
		t.Errorf("rlcvet -h lacks a usage line:\n%s", text)
	}
	if !strings.Contains(text, "flags:") {
		t.Errorf("rlcvet -h lacks the flag list:\n%s", text)
	}

	out, err = exec.Command(bin, "-no-such-flag").CombinedOutput()
	if err == nil {
		t.Errorf("rlcvet accepted an unknown flag; output:\n%s", out)
	}
	if !strings.Contains(string(out), "usage: rlcvet") {
		t.Errorf("rlcvet unknown-flag output lacks usage:\n%s", out)
	}

	out, err = exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Errorf("rlcvet -list exited non-zero: %v\n%s", err, out)
	}
	for _, name := range []string{"pinrelease", "viewescape", "noalloc", "errcode"} {
		if !strings.Contains(string(out), name) {
			t.Errorf("rlcvet -list omits analyzer %s:\n%s", name, out)
		}
	}

	// The go vet -vettool handshake: any -V invocation must print a version
	// line and exit zero without analyzing anything.
	out, err = exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Errorf("rlcvet -V=full exited non-zero: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "rlcvet version") {
		t.Errorf("rlcvet -V=full lacks the version handshake:\n%s", out)
	}
}

// TestCLIVetFindings runs the standalone mode end to end against a throwaway
// module seeded with one pin leak, expecting exit code 1 and a pinrelease
// diagnostic — and then against the same module with the leak fixed,
// expecting a silent exit 0.
func TestCLIVetFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI vet test skipped in -short mode")
	}
	dir := t.TempDir()
	bin := buildTool(t, dir, "rlcvet")

	mod := filepath.Join(dir, "mod")
	if err := os.MkdirAll(mod, 0o755); err != nil {
		t.Fatal(err)
	}
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(mod, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", "module vetprobe\n\ngo 1.24\n")
	writeFile("probe.go", `package vetprobe

type store struct{ n int }

//rlc:acquire
func (s *store) acquire() *store { s.n++; return s }

//rlc:release
func (s *store) release() { s.n-- }

func Leak(s *store) int {
	st := s.acquire()
	return st.n
}
`)

	out, err := exec.Command(bin, "-C", mod, ".").CombinedOutput()
	if err == nil {
		t.Fatalf("rlcvet exited zero on a seeded pin leak; output:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("rlcvet on a seeded leak: want exit code 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pinrelease") || !strings.Contains(string(out), "leak") {
		t.Errorf("rlcvet output lacks the pinrelease leak diagnostic:\n%s", out)
	}

	writeFile("probe.go", `package vetprobe

type store struct{ n int }

//rlc:acquire
func (s *store) acquire() *store { s.n++; return s }

//rlc:release
func (s *store) release() { s.n-- }

func Leak(s *store) int {
	st := s.acquire()
	defer st.release()
	return st.n
}
`)
	if out, err := exec.Command(bin, "-C", mod, ".").CombinedOutput(); err != nil {
		t.Errorf("rlcvet exited non-zero on a clean module: %v\n%s", err, out)
	}
}

package rlc_test

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCLISnapshotWorkflow drives the bundle workflow end to end at the
// binary surface: rlcbuild -o renders a self-contained snapshot, rlcinspect
// -snapshot dumps and verifies its sections, rlcserve -snapshot serves it
// memory-mapped, and a rebuild + SIGHUP hot-swaps the running server onto
// the new bundle — observable because the rebuilt graph flips a query's
// answer — before SIGTERM drains it cleanly.
func TestCLISnapshotWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI snapshot test skipped in -short mode")
	}
	dir := t.TempDir()
	rlcgen := buildTool(t, dir, "rlcgen")
	rlcbuild := buildTool(t, dir, "rlcbuild")
	rlcinspect := buildTool(t, dir, "rlcinspect")
	rlcserve := buildTool(t, dir, "rlcserve")

	graphFile := filepath.Join(dir, "fig2.graph")
	if out, err := exec.Command(rlcgen, "-model", "fig2", "-out", graphFile).CombinedOutput(); err != nil {
		t.Fatalf("rlcgen fig2: %v\n%s", err, out)
	}
	bundle := filepath.Join(dir, "fig2.rlcs")
	out, err := exec.Command(rlcbuild, "-graph", graphFile, "-o", bundle).CombinedOutput()
	if err != nil {
		t.Fatalf("rlcbuild -o: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "snapshot bundle, verified") {
		t.Errorf("rlcbuild -o output: %s", out)
	}

	out, err = exec.Command(rlcinspect, "-snapshot", bundle).CombinedOutput()
	if err != nil {
		t.Fatalf("rlcinspect -snapshot: %v\n%s", err, out)
	}
	for _, want := range []string{"all sections verified", "entries", "fingerprint", "crc32c"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("rlcinspect -snapshot output lacks %q:\n%s", want, out)
		}
	}

	cmd := exec.Command(rlcserve, "-snapshot", bundle, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start rlcserve: %v", err)
	}
	defer cmd.Process.Kill()

	addrRe := regexp.MustCompile(`serving on (\S+)`)
	reloadRe := regexp.MustCompile(`reloaded \S+ in \S+ \(generation 2\)`)
	addrCh := make(chan string, 1)
	reloadCh := make(chan struct{}, 1)
	outCh := make(chan string, 1)
	go func() {
		var all strings.Builder
		buf := make([]byte, 4096)
		reported := false
		for {
			n, err := stdout.Read(buf)
			all.Write(buf[:n])
			if m := addrRe.FindStringSubmatch(all.String()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if !reported && reloadRe.MatchString(all.String()) {
				reported = true
				reloadCh <- struct{}{}
			}
			if err != nil {
				outCh <- all.String()
				return
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not report its listen address")
	}

	query := func(s, dst, l string) bool {
		t.Helper()
		resp, err := http.Get(base + "/query?s=" + s + "&t=" + dst + "&l=" + l)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		defer resp.Body.Close()
		var qr struct {
			Reachable bool `json:"reachable"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return qr.Reachable
	}
	if query("v1", "v4", "l1") {
		t.Fatal("(v1, v4, l1+) should be unreachable on the original Fig. 2")
	}

	// Rebuild the bundle from a graph with an extra v1 -l1-> v4 edge and
	// hot-swap it into the running server.
	patched := filepath.Join(dir, "fig2b.graph")
	orig, err := os.ReadFile(graphFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(patched, append(orig, []byte("v1 v4 l1\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(rlcbuild, "-graph", patched, "-o", bundle).CombinedOutput(); err != nil {
		t.Fatalf("rebuild: %v\n%s", err, out)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatalf("SIGHUP: %v", err)
	}
	select {
	case <-reloadCh:
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not report the reload")
	}
	if !query("v1", "v4", "l1") {
		t.Fatal("(v1, v4, l1+) should be reachable after the hot reload")
	}

	// /stats reports the new generation and the snapshot source.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Generation uint64 `json:"generation"`
		Source     string `json:"source"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Generation != 2 || !strings.Contains(st.Source, "fig2.rlcs") {
		t.Fatalf("stats after reload: generation %d, source %q", st.Generation, st.Source)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	var all string
	select {
	case all = <-outCh:
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not close stdout after SIGTERM")
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- cmd.Wait() }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatalf("rlcserve exited non-zero: %v\n%s", err, all)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("rlcserve did not exit after SIGTERM")
	}
	if !strings.Contains(all, "shut down cleanly") {
		t.Errorf("missing graceful-shutdown report:\n%s", all)
	}
}

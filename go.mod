module github.com/g-rpqs/rlc-go

go 1.24

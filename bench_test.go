// Benchmarks mirroring the paper's evaluation artifacts, one per table and
// figure (run `go test -bench=. -benchmem`). Each benchmark exercises the
// code path of the corresponding experiment at a reduced, fixed scale so the
// whole suite completes in minutes; the full parameter sweeps live behind
// cmd/rlcbench, which regenerates the complete tables.
package rlc_test

import (
	"fmt"
	"sync"
	"testing"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/dynamic"
	"github.com/g-rpqs/rlc-go/internal/engines"
	"github.com/g-rpqs/rlc-go/internal/etc"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/plain"
	"github.com/g-rpqs/rlc-go/internal/traversal"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// Benchmark fixtures are built once and shared across benchmarks.
var (
	fixOnce sync.Once
	fix     struct {
		// Per-dataset micro replicas (benchVertices vertices).
		replicas map[string]*graph.Graph
		// An index, workload and evaluators on the TW replica.
		tw      *graph.Graph
		twIndex *core.Index
		twWork  workload.Workload
	}
)

const benchVertices = 2000

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fix.replicas = map[string]*graph.Graph{}
		for _, name := range []string{"AD", "EP", "TW", "WN"} {
			d, err := datasets.ByName(name)
			if err != nil {
				panic(err)
			}
			g, err := d.Generate(benchVertices, 42)
			if err != nil {
				panic(err)
			}
			fix.replicas[name] = g
		}
		fix.tw = fix.replicas["TW"]
		ix, err := core.Build(fix.tw, core.Options{K: 2})
		if err != nil {
			panic(err)
		}
		fix.twIndex = ix
		w, err := workload.Generate(fix.tw, workload.Options{NumTrue: 100, NumFalse: 100, ConcatLen: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		fix.twWork = w
	})
}

// --- Table III ---------------------------------------------------------

// BenchmarkTable3Stats measures the dataset statistics computation (loop
// and triangle counting) behind Table III.
func BenchmarkTable3Stats(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		st := graph.ComputeStats(fix.tw)
		if st.Vertices == 0 {
			b.Fatal("empty stats")
		}
	}
}

// --- Table IV ----------------------------------------------------------

// BenchmarkTable4IndexBuild measures RLC index construction (k = 2) per
// dataset replica — the IT column of Table IV.
func BenchmarkTable4IndexBuild(b *testing.B) {
	fixtures(b)
	for _, name := range []string{"AD", "EP", "TW", "WN"} {
		g := fix.replicas[name]
		b.Run(name, func(b *testing.B) {
			var entries int64
			var bytes int64
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(g, core.Options{K: 2})
				if err != nil {
					b.Fatal(err)
				}
				entries = ix.NumEntries()
				bytes = ix.SizeBytes()
			}
			b.ReportMetric(float64(entries), "entries")
			b.ReportMetric(float64(bytes)/(1024*1024), "MB")
		})
	}
}

// BenchmarkTable4ETCBuild measures ETC construction on the smallest replica
// (the only dataset where the paper's ETC completes) — the ETC columns of
// Table IV.
func BenchmarkTable4ETCBuild(b *testing.B) {
	fixtures(b)
	g := fix.replicas["AD"]
	var records int64
	for i := 0; i < b.N; i++ {
		closure, err := etc.Build(g, etc.Options{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		records = closure.NumRecords()
	}
	b.ReportMetric(float64(records), "records")
}

// --- Figure 3 ----------------------------------------------------------

// BenchmarkFig3Query measures per-query time of each evaluation method on
// the TW replica's 2-label workload — the series of Figure 3.
func BenchmarkFig3Query(b *testing.B) {
	fixtures(b)
	queries := fix.twWork.All()
	nfas := map[string]*automaton.NFA{}
	for _, q := range queries {
		key := q.L.String()
		if _, ok := nfas[key]; !ok {
			nfa, err := automaton.NewPlus(q.L, fix.tw.NumLabels())
			if err != nil {
				b.Fatal(err)
			}
			nfas[key] = nfa
		}
	}
	closure, err := etc.Build(fix.tw, etc.Options{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	ev := traversal.NewEvaluator(fix.tw)

	b.Run("BFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if got := ev.BFS(q.S, q.T, nfas[q.L.String()]); got != q.Expected {
				b.Fatal("wrong answer")
			}
		}
	})
	b.Run("BiBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if got := ev.BiBFS(q.S, q.T, nfas[q.L.String()]); got != q.Expected {
				b.Fatal("wrong answer")
			}
		}
	})
	b.Run("ETC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			got, err := closure.Query(q.S, q.T, q.L)
			if err != nil || got != q.Expected {
				b.Fatal("wrong answer", err)
			}
		}
	})
	b.Run("RLCIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			got, err := fix.twIndex.Query(q.S, q.T, q.L)
			if err != nil || got != q.Expected {
				b.Fatal("wrong answer", err)
			}
		}
	})
}

// --- Figure 4 ----------------------------------------------------------

// BenchmarkFig4VaryK measures index construction on the TW replica as the
// recursive k grows — the indexing-time series of Figure 4.
func BenchmarkFig4VaryK(b *testing.B) {
	fixtures(b)
	for _, k := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(fix.tw, core.Options{K: k})
				if err != nil {
					b.Fatal(err)
				}
				entries = ix.NumEntries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// --- Figure 5 ----------------------------------------------------------

// BenchmarkFig5Sweep measures index construction across the (model, |L|)
// grid corners of Figure 5 (d = 5).
func BenchmarkFig5Sweep(b *testing.B) {
	for _, model := range []string{"ER", "BA"} {
		for _, labels := range []int{8, 36} {
			b.Run(fmt.Sprintf("%s/L=%d", model, labels), func(b *testing.B) {
				var g *graph.Graph
				var err error
				if model == "ER" {
					g, err = rlc.GenerateER(benchVertices, benchVertices*5, labels, 7)
				} else {
					g, err = rlc.GenerateBA(benchVertices, 5, labels, 7)
				}
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Build(g, core.Options{K: 2}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Figure 6 ----------------------------------------------------------

// BenchmarkFig6Scale measures index construction as |V| doubles (d = 5,
// |L| = 16) — the scalability series of Figure 6.
func BenchmarkFig6Scale(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000} {
		b.Run(fmt.Sprintf("V=%d", n), func(b *testing.B) {
			g, err := rlc.GenerateBA(n, 5, 16, 7)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(g, core.Options{K: 2}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 7 ----------------------------------------------------------

// BenchmarkFig7VaryKSynthetic measures index construction on ER- and
// BA-graphs as k grows — Appendix C's Figure 7.
func BenchmarkFig7VaryKSynthetic(b *testing.B) {
	for _, model := range []string{"ER", "BA"} {
		var g *graph.Graph
		var err error
		if model == "ER" {
			g, err = rlc.GenerateER(1000, 5000, 16, 7)
		} else {
			g, err = rlc.GenerateBA(1000, 5, 16, 7)
		}
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range []int{2, 3, 4} {
			b.Run(fmt.Sprintf("%s/k=%d", model, k), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Build(g, core.Options{K: k}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Table V -----------------------------------------------------------

// BenchmarkTable5Engines measures per-query time of the three engine
// comparators and the index-backed evaluator on the WN replica for the four
// query types of Table V.
func BenchmarkTable5Engines(b *testing.B) {
	fixtures(b)
	g := fix.replicas["WN"]
	ix, err := core.Build(g, core.Options{K: 3})
	if err != nil {
		b.Fatal(err)
	}
	hyb := hybrid.New(ix)
	queryTypes := []struct {
		name string
		expr automaton.Expr
	}{
		{"Q1", automaton.Plus(labelseq.Seq{0})},
		{"Q2", automaton.Plus(labelseq.Seq{0, 1})},
		{"Q3", automaton.Plus(labelseq.Seq{0, 1, 2})},
		{"Q4", automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1})},
	}
	systems := []struct {
		name string
		eval func(s, t graph.Vertex, e automaton.Expr) (bool, error)
	}{
		{"RLC", hyb.Eval},
		{"Sys1", engines.NewSys1(g).Eval},
		{"Sys2", engines.NewSys2(g).Eval},
		{"Virtuoso", engines.NewVirtuosoLike(g).Eval},
	}
	for _, qt := range queryTypes {
		for _, sys := range systems {
			b.Run(qt.name+"/"+sys.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s := graph.Vertex((i * 131) % g.NumVertices())
					t := graph.Vertex((i*977 + 13) % g.NumVertices())
					if _, err := sys.eval(s, t, qt.expr); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationPruning measures how each pruning rule contributes to
// build time and index size — the design choices Section V-B motivates and
// Appendix D discusses.
func BenchmarkAblationPruning(b *testing.B) {
	fixtures(b)
	configs := []struct {
		name string
		opts core.Options
	}{
		{"AllRules", core.Options{K: 2}},
		{"NoPR1", core.Options{K: 2, DisablePR1: true}},
		{"NoPR2", core.Options{K: 2, DisablePR2: true}},
		{"NoPR3", core.Options{K: 2, DisablePR3: true}},
		{"NoPruning", core.Options{K: 2, DisablePR1: true, DisablePR2: true, DisablePR3: true}},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				ix, err := core.Build(fix.tw, cfg.opts)
				if err != nil {
					b.Fatal(err)
				}
				entries = ix.NumEntries()
			}
			b.ReportMetric(float64(entries), "entries")
		})
	}
}

// --- Micro-benchmarks ----------------------------------------------------

// BenchmarkQueryLookup isolates one index lookup — the number behind the
// microsecond-scale query times of Figures 3-6.
func BenchmarkQueryLookup(b *testing.B) {
	fixtures(b)
	queries := fix.twWork.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := fix.twIndex.Query(q.S, q.T, q.L); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinimumRepeat isolates the KMP-based MR computation at the core
// of kernel-based search.
func BenchmarkMinimumRepeat(b *testing.B) {
	seqs := []labelseq.Seq{
		{0}, {0, 1}, {0, 1, 0, 1}, {0, 1, 2, 0, 1, 2, 0, 1}, {3, 1, 4, 1, 5, 9, 2, 6},
	}
	for i := 0; i < b.N; i++ {
		labelseq.MinimumRepeat(seqs[i%len(seqs)])
	}
}

// BenchmarkWorkloadGeneration measures the Section VI-c query generator.
func BenchmarkWorkloadGeneration(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(fix.tw, workload.Options{NumTrue: 20, NumFalse: 20, ConcatLen: 2, Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTargetProbe measures the amortized many-source query primitive
// behind the hybrid evaluator.
func BenchmarkTargetProbe(b *testing.B) {
	fixtures(b)
	probe, err := fix.twIndex.NewTargetProbe(0, labelseq.Seq{0, 1})
	if err != nil {
		b.Fatal(err)
	}
	n := fix.tw.NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.Reaches(graph.Vertex(i % n))
	}
}

// BenchmarkDeltaQuery measures queries over a delta graph with a small
// journal — the dynamic extension's hot path.
func BenchmarkDeltaQuery(b *testing.B) {
	fixtures(b)
	d := dynamic.New(fix.tw, fix.twIndex, dynamic.Options{RebuildThreshold: -1})
	for i := 0; i < 16; i++ {
		if err := d.AddEdge(graph.Vertex(i*13%fix.tw.NumVertices()), 0, graph.Vertex(i*29%fix.tw.NumVertices())); err != nil {
			b.Fatal(err)
		}
	}
	queries := fix.twWork.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := d.Query(q.S, q.T, q.L); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlainReachability measures the label-blind 2-hop substrate next
// to the RLC index lookup.
func BenchmarkPlainReachability(b *testing.B) {
	fixtures(b)
	p, err := plain.Build(fix.tw)
	if err != nil {
		b.Fatal(err)
	}
	queries := fix.twWork.All()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := p.Reaches(q.S, q.T); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexSerialization measures index save/load round trips.
func BenchmarkIndexSerialization(b *testing.B) {
	fixtures(b)
	for i := 0; i < b.N; i++ {
		var sink countingWriter
		if err := fix.twIndex.Write(&sink); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(sink))
	}
}

type countingWriter int64

func (w *countingWriter) Write(p []byte) (int, error) {
	*w += countingWriter(len(p))
	return len(p), nil
}

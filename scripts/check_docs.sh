#!/bin/sh
# check_docs.sh — fail if any package in the module lacks a package-level doc
# comment. Driven by `go doc`, whose rendering makes the check simple: for a
# library package, line 3 of the output is the first line of the doc comment
# ("Package <name> ..."); for a main package, the doc comment itself leads
# the output. CI runs this in the docs job; run it locally before sending a
# change that adds a package.
set -eu
cd "$(dirname "$0")/.."

status=0
for pkg in $(go list ./...); do
	if [ "$(go list -f '{{.Name}}' "$pkg")" = "main" ]; then
		first=$(go doc "$pkg" 2>/dev/null | head -n 1)
		case "$first" in
		"" | "package "*)
			echo "missing package doc: $pkg"
			status=1
			;;
		esac
	else
		third=$(go doc "$pkg" 2>/dev/null | sed -n '3p')
		case "$third" in
		"Package "*) ;;
		*)
			echo "missing package doc: $pkg"
			status=1
			;;
		esac
	fi
done

if [ "$status" -ne 0 ]; then
	echo "every package needs a package-level comment (see ARCHITECTURE.md); put it in doc.go for multi-file packages" >&2
fi
exit $status

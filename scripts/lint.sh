#!/bin/sh
# lint.sh — run the repo's static-analysis gate: rlcvet (the in-tree
# analyzer suite enforcing pin, zero-copy view, noalloc, and error-code
# invariants; see internal/analysis) over every package, then staticcheck
# and govulncheck when available. CI runs this in the lint job; run it
# locally before sending a change that touches the serving or query path.
#
# rlcvet is built from this module and needs nothing beyond the standard
# toolchain. staticcheck and govulncheck are external: when the pinned
# binary is not already on PATH, the step is skipped with a notice rather
# than failing — the module adds no tool dependencies, so offline and
# hermetic builds stay green. CI installs both at the pinned versions below
# so the gate is always enforced there.
set -eu
cd "$(dirname "$0")/.."

# Pinned versions CI installs; a locally installed different version is
# still run (better than skipping) but the mismatch is called out.
STATICCHECK_VERSION="2025.1"
GOVULNCHECK_VERSION="v1.1.4"

status=0

echo "==> rlcvet ./..."
go build -o "${TMPDIR:-/tmp}/rlcvet" ./cmd/rlcvet
if ! "${TMPDIR:-/tmp}/rlcvet" ./...; then
	status=1
fi

if command -v staticcheck >/dev/null 2>&1; then
	echo "==> staticcheck ./... (pinned: ${STATICCHECK_VERSION})"
	got=$(staticcheck -version 2>/dev/null || true)
	case "$got" in
	*"$STATICCHECK_VERSION"*) ;;
	*) echo "note: staticcheck version is '$got', CI pins ${STATICCHECK_VERSION}" ;;
	esac
	if ! staticcheck ./...; then
		status=1
	fi
else
	echo "==> staticcheck not on PATH; skipping (CI installs honnef.co/go/tools/cmd/staticcheck@${STATICCHECK_VERSION})"
fi

if command -v govulncheck >/dev/null 2>&1; then
	echo "==> govulncheck ./... (pinned: ${GOVULNCHECK_VERSION})"
	if ! govulncheck ./...; then
		status=1
	fi
else
	echo "==> govulncheck not on PATH; skipping (CI installs golang.org/x/vuln/cmd/govulncheck@${GOVULNCHECK_VERSION})"
fi

exit $status

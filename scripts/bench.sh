#!/usr/bin/env bash
# bench.sh — run the serving-layer benchmarks and write the machine-readable
# perf-trajectory files (BENCH_<experiment>.json) at the repo root, so the
# numbers are committed alongside the code that produced them and diffable
# across PRs. Extra arguments pass through to rlcbench (e.g. -scale 0.01,
# -datasets AD,TW).
#
#   ./scripts/bench.sh
#   ./scripts/bench.sh -datasets AD,TW,WN
#
# Caveat recorded inside each report: on a single-CPU host the concurrent
# and parallel numbers measure scheduler overhead, not speedup — project
# multi-core performance from the measured parallel fraction.
set -euo pipefail
cd "$(dirname "$0")/.."

for exp in serve ingest packed budget repl; do
  echo "=== bench.sh: $exp -> BENCH_${exp}.json" >&2
  go run ./cmd/rlcbench -exp "$exp" -json "BENCH_${exp}.json" -quiet "$@"
done

package rlc_test

import (
	"math/rand"
	"testing"

	rlc "github.com/g-rpqs/rlc-go"
	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// TestSoakIndexVsBiBFS samples thousands of queries on a mid-size skewed
// graph and requires exact agreement between the index and BiBFS — the
// scale tier above the exhaustive small-graph tests.
func TestSoakIndexVsBiBFS(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	g, err := rlc.GenerateBA(3000, 4, 6, 99)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(99))
	constraints := []rlc.Seq{{0}, {1}, {2}, {0, 1}, {1, 0}, {2, 3}, {0, 5}}
	for i := 0; i < 4000; i++ {
		s := rlc.Vertex(r.Intn(g.NumVertices()))
		tt := rlc.Vertex(r.Intn(g.NumVertices()))
		l := constraints[r.Intn(len(constraints))]
		got, err := ix.Query(s, tt, l)
		if err != nil {
			t.Fatal(err)
		}
		want, err := rlc.EvalBiBFS(g, s, tt, l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d: index(%d,%d,%v+) = %v, BiBFS = %v", i, s, tt, l, got, want)
		}
	}
}

// TestSoakDeltaGraph streams insertions into a mid-size graph, sampling
// queries after every batch and comparing against traversal on the union.
func TestSoakDeltaGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	g, err := rlc.GenerateER(500, 1500, 4, 17)
	if err != nil {
		t.Fatal(err)
	}
	d, err := rlc.BuildDeltaGraph(g, rlc.DeltaOptions{
		IndexOptions:     rlc.Options{K: 2},
		RebuildThreshold: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(18))
	constraints := []rlc.Seq{{0}, {1}, {0, 1}, {2, 0}}
	for batch := 0; batch < 10; batch++ {
		for i := 0; i < 10; i++ {
			if err := d.AddEdge(rlc.Vertex(r.Intn(500)), rlc.Label(r.Intn(4)), rlc.Vertex(r.Intn(500))); err != nil {
				t.Fatal(err)
			}
		}
		union := d.Graph()
		for i := 0; i < 60; i++ {
			s := rlc.Vertex(r.Intn(500))
			tt := rlc.Vertex(r.Intn(500))
			l := constraints[r.Intn(len(constraints))]
			got, err := d.Query(s, tt, l)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rlc.EvalBFS(union, s, tt, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("batch %d: delta(%d,%d,%v+) = %v, union BFS = %v (journal %d)",
					batch, s, tt, l, got, want, d.JournalLen())
			}
		}
	}
}

// TestSoakHybridVsTraversal samples extended two-segment queries on a
// mid-size graph.
func TestSoakHybridVsTraversal(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	g, err := rlc.GenerateBA(1500, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := rlc.NewHybridEvaluator(ix)
	exprs := []rlc.Expr{
		rlc.ConcatPlusExpr(rlc.Seq{0}, rlc.Seq{1}),
		rlc.ConcatPlusExpr(rlc.Seq{1}, rlc.Seq{0}),
		rlc.ConcatPlusExpr(rlc.Seq{0, 1}, rlc.Seq{2}),
	}
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 600; i++ {
		s := rlc.Vertex(r.Intn(g.NumVertices()))
		tt := rlc.Vertex(r.Intn(g.NumVertices()))
		e := exprs[r.Intn(len(exprs))]
		got, err := h.Eval(s, tt, e)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: plain product BFS over the compiled expression — no
		// index involvement at all.
		nfa, err := automaton.Compile(e, g.NumLabels())
		if err != nil {
			t.Fatal(err)
		}
		want := traversal.NewEvaluator(g).BFS(s, tt, nfa)
		if got != want {
			t.Fatalf("query %d: hybrid(%d,%d,%v) = %v, oracle = %v", i, s, tt, e, got, want)
		}
	}
}

package rlc_test

import (
	"bytes"
	"testing"

	rlc "github.com/g-rpqs/rlc-go"
)

// TestQuickstart walks the README's quick-start path through the public
// facade.
func TestQuickstart(t *testing.T) {
	b := rlc.NewGraphBuilder(0, 0)
	b.AddEdge(0, 0, 1)
	b.AddEdge(1, 1, 2)
	b.AddEdge(2, 0, 3)
	b.AddEdge(3, 1, 4)
	g := b.Build()

	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ix.Query(0, 4, rlc.Seq{0, 1})
	if err != nil || !ok {
		t.Fatalf("(0, 4, (l0 l1)+) = %v, %v; want true", ok, err)
	}
	ok, err = ix.Query(0, 3, rlc.Seq{0, 1})
	if err != nil || ok {
		t.Fatalf("(0, 3, (l0 l1)+) = %v, %v; want false", ok, err)
	}
}

// TestFacadeQueryBatch exercises the batch-query path documented in the
// package's "Batch queries" section through the public facade.
func TestFacadeQueryBatch(t *testing.T) {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var queries []rlc.BatchQuery
	var want []bool
	for s := rlc.Vertex(0); int(s) < g.NumVertices(); s++ {
		for tt := rlc.Vertex(0); int(tt) < g.NumVertices(); tt++ {
			for _, l := range []rlc.Seq{{0}, {1}, {2}, {1, 0}} {
				queries = append(queries, rlc.BatchQuery{S: s, T: tt, L: l})
				ok, err := ix.Query(s, tt, l)
				if err != nil {
					t.Fatal(err)
				}
				want = append(want, ok)
			}
		}
	}
	results := ix.QueryBatch(queries, 0)
	var buf []rlc.BatchResult
	buf = ix.QueryBatchInto(queries, 2, buf)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
		if res.Reachable != want[i] || buf[i].Reachable != want[i] {
			t.Fatalf("query %d (%d,%d,%v): batch=%v into=%v want=%v",
				i, queries[i].S, queries[i].T, queries[i].L, res.Reachable, buf[i].Reachable, want[i])
		}
	}
}

func TestFacadeFig1Queries(t *testing.T) {
	g := rlc.ExampleFig1()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	a14, _ := g.VertexByName("A14")
	a19, _ := g.VertexByName("A19")
	debits, _ := g.LabelByName("debits")
	credits, _ := g.LabelByName("credits")

	ok, err := ix.Query(a14, a19, rlc.Seq{debits, credits})
	if err != nil || !ok {
		t.Fatalf("Q1(A14, A19, (debits credits)+) = %v, %v; want true", ok, err)
	}

	p10, _ := g.VertexByName("P10")
	p13, _ := g.VertexByName("P13")
	knows, _ := g.LabelByName("knows")
	worksFor, _ := g.LabelByName("worksFor")
	ok, err = ix.Query(p10, p13, rlc.Seq{knows, knows, worksFor})
	if err != nil || ok {
		t.Fatalf("Q2(P10, P13, (knows knows worksFor)+) = %v, %v; want false", ok, err)
	}
}

func TestFacadeBaselinesAgree(t *testing.T) {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	closure, err := rlc.BuildETC(g, rlc.ETCOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	l := rlc.Seq{1, 0}
	for s := rlc.Vertex(0); int(s) < g.NumVertices(); s++ {
		for tt := rlc.Vertex(0); int(tt) < g.NumVertices(); tt++ {
			want, err := rlc.EvalBFS(g, s, tt, l)
			if err != nil {
				t.Fatal(err)
			}
			bi, _ := rlc.EvalBiBFS(g, s, tt, l)
			qi, _ := ix.Query(s, tt, l)
			qe, _ := closure.Query(s, tt, l)
			if bi != want || qi != want || qe != want {
				t.Fatalf("(%d,%d): bfs=%v bibfs=%v index=%v etc=%v", s, tt, want, bi, qi, qe)
			}
		}
	}
}

func TestFacadeParseExpr(t *testing.T) {
	g := rlc.ExampleFig1()
	e, err := rlc.ParseExpr("(debits credits)+", g)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Segments) != 1 || !e.Segments[0].Plus || len(e.Segments[0].Labels) != 2 {
		t.Fatalf("parsed expression wrong: %+v", e)
	}
	if _, err := rlc.ParseExpr("(nope)+", g); err == nil {
		t.Error("unknown label must fail")
	}
	// Numeric fallback works on named graphs too.
	if _, err := rlc.ParseExpr("l0+", g); err != nil {
		t.Errorf("numeric fallback failed: %v", err)
	}
	if _, err := rlc.ParseExpr("l99+", g); err == nil {
		t.Error("out-of-range numeric label must fail")
	}
}

func TestFacadeHybrid(t *testing.T) {
	g := rlc.ExampleFig1()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := rlc.NewHybridEvaluator(ix)
	knows, _ := g.LabelByName("knows")
	holds, _ := g.LabelByName("holds")
	p10, _ := g.VertexByName("P10")
	a14, _ := g.VertexByName("A14")
	// knows+ holds+: P10 knows P11 holds A14.
	ok, err := h.Eval(p10, a14, rlc.ConcatPlusExpr(rlc.Seq{knows}, rlc.Seq{holds}))
	if err != nil || !ok {
		t.Fatalf("knows+ holds+ P10->A14 = %v, %v; want true", ok, err)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g := rlc.ExampleFig2()
	var buf bytes.Buffer
	if err := rlc.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := rlc.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Errorf("round trip: %d edges, want %d", back.NumEdges(), g.NumEdges())
	}
}

func TestFacadeIndexIO(t *testing.T) {
	g := rlc.ExampleFig2()
	ix, err := rlc.BuildIndex(g, rlc.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := rlc.LoadIndex(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEntries() != ix.NumEntries() {
		t.Error("index round trip changed entry count")
	}
}

func TestFacadeGeneratorsAndWorkload(t *testing.T) {
	g, err := rlc.GenerateBA(200, 3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	st := rlc.ComputeGraphStats(g)
	if st.Vertices != 200 || st.Labels != 4 {
		t.Fatalf("stats: %+v", st)
	}
	w, err := rlc.GenerateWorkload(g, rlc.WorkloadOptions{NumTrue: 5, NumFalse: 5, ConcatLen: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := rlc.BuildIndex(g, rlc.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.All() {
		got, err := ix.Query(q.S, q.T, q.L)
		if err != nil {
			t.Fatal(err)
		}
		if got != q.Expected {
			t.Fatalf("index disagrees with workload ground truth on %+v", q)
		}
	}
	er, err := rlc.GenerateER(100, 300, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if er.NumEdges() != 300 {
		t.Errorf("ER edges = %d", er.NumEdges())
	}
}

func TestFacadeDeltaGraph(t *testing.T) {
	g := rlc.ExampleFig2()
	d, err := rlc.BuildDeltaGraph(g, rlc.DeltaOptions{IndexOptions: rlc.Options{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// v6 has no out-edges in Figure 2; adding v6 -l1-> v1 creates new
	// reachability the static index lacks.
	ok, err := d.Query(5, 0, rlc.Seq{0})
	if err != nil || ok {
		t.Fatalf("pre-insert (v6, v1, l1+) = %v, %v; want false", ok, err)
	}
	if err := d.AddEdge(5, 0, 0); err != nil {
		t.Fatal(err)
	}
	ok, err = d.Query(5, 0, rlc.Seq{0})
	if err != nil || !ok {
		t.Fatalf("post-insert (v6, v1, l1+) = %v, %v; want true", ok, err)
	}
	if err := d.RemoveEdge(5, 0, 0); err == nil {
		t.Error("deletions must be rejected")
	}
}

func TestFacadePlainIndex(t *testing.T) {
	g := rlc.ExampleFig2()
	p, err := rlc.BuildPlainIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := g.VertexByName("v1")
	v3, _ := g.VertexByName("v3")
	v6, _ := g.VertexByName("v6")
	ok, err := p.Reaches(v1, v3)
	if err != nil || !ok {
		t.Errorf("plain Reaches(v1, v3) = %v, %v; want true", ok, err)
	}
	ok, err = p.Reaches(v6, v1)
	if err != nil || ok {
		t.Errorf("plain Reaches(v6, v1) = %v, %v; want false (v6 has no out-edges)", ok, err)
	}
}

func TestFacadeDFS(t *testing.T) {
	g := rlc.ExampleFig2()
	ok, err := rlc.EvalDFS(g, 2, 5, rlc.Seq{1, 0}) // v3 -> v6 under (l2 l1)+
	if err != nil || !ok {
		t.Errorf("EvalDFS = %v, %v; want true", ok, err)
	}
}

func TestFacadeOrderOptions(t *testing.T) {
	g := rlc.ExampleFig2()
	for _, o := range []rlc.Options{
		{K: 2, Order: rlc.OrderInOut},
		{K: 2, Order: rlc.OrderDegreeSum},
		{K: 2, Order: rlc.OrderNatural},
		{K: 2, Order: rlc.OrderReverse},
	} {
		ix, err := rlc.BuildIndex(g, o)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := ix.Query(2, 5, rlc.Seq{1, 0})
		if err != nil || !ok {
			t.Errorf("order %d: Q1 = %v, %v; want true", o.Order, ok, err)
		}
	}
}

func TestFacadeMRHelpers(t *testing.T) {
	if !rlc.IsMinimumRepeat(rlc.Seq{0, 1}) {
		t.Error("(0,1) is primitive")
	}
	if rlc.IsMinimumRepeat(rlc.Seq{0, 0}) {
		t.Error("(0,0) is not primitive")
	}
	if got := rlc.MinimumRepeat(rlc.Seq{0, 1, 0, 1}); len(got) != 2 {
		t.Errorf("MR = %v", got)
	}
}

package rlc_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCLIPipeline builds the command-line tools and exercises the full
// generate -> build -> query -> inspect pipeline end to end.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline skipped in -short mode")
	}
	dir := t.TempDir()
	bins := map[string]string{}
	for _, tool := range []string{"rlcgen", "rlcbuild", "rlcquery", "rlcinspect", "rlcbench"} {
		bin := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, out)
		}
		bins[tool] = bin
	}
	run := func(tool string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[tool], args...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %s: %v\n%s", tool, strings.Join(args, " "), err, out)
		}
		return string(out)
	}

	graphFile := filepath.Join(dir, "g.graph")
	queryFile := filepath.Join(dir, "g.queries")
	indexFile := filepath.Join(dir, "g.rlc")

	out := run("rlcgen", "-model", "er", "-n", "300", "-d", "4", "-labels", "4",
		"-seed", "3", "-out", graphFile, "-workload", queryFile, "-queries", "25", "-len", "2")
	if !strings.Contains(out, "300 vertices") {
		t.Errorf("rlcgen output unexpected: %s", out)
	}

	out = run("rlcbuild", "-graph", graphFile, "-k", "2", "-out", indexFile)
	if !strings.Contains(out, "indexing time") || !strings.Contains(out, "wrote") {
		t.Errorf("rlcbuild output unexpected: %s", out)
	}

	for _, method := range []string{"index", "bfs", "bibfs", "dfs", "hybrid"} {
		args := []string{"-graph", graphFile, "-queries", queryFile, "-method", method}
		if method == "index" || method == "hybrid" {
			args = append(args, "-index", indexFile)
		}
		out = run("rlcquery", args...)
		if !strings.Contains(out, "50/50 match ground truth") {
			t.Errorf("rlcquery %s: %s", method, out)
		}
	}

	// 50 queries clamp below the requested 4 workers (chunked scheduling),
	// and the tool reports the effective count.
	out = run("rlcquery", "-graph", graphFile, "-queries", queryFile,
		"-index", indexFile, "-batch", "-workers", "4")
	if !strings.Contains(out, "50/50 match ground truth") || !strings.Contains(out, "1 workers") {
		t.Errorf("rlcquery batch: %s", out)
	}

	out = run("rlcquery", "-graph", graphFile, "-index", indexFile,
		"-s", "0", "-t", "1", "-expr", "(l0 l1)+")
	if !strings.Contains(out, "(0, 1, (l0 l1)+) =") {
		t.Errorf("rlcquery single: %s", out)
	}

	out = run("rlcinspect", "-graph", graphFile, "-index", indexFile, "-vertices", "0")
	if !strings.Contains(out, "entries:") || !strings.Contains(out, "Lout:") {
		t.Errorf("rlcinspect: %s", out)
	}

	// A micro bench run: table3 only, on a tiny filter, writing markdown.
	resultsDir := filepath.Join(dir, "results")
	out = run("rlcbench", "-exp", "table3", "-datasets", "AD", "-quiet", "-out", resultsDir)
	if !strings.Contains(out, "table3") {
		t.Errorf("rlcbench: %s", out)
	}
	if _, err := os.Stat(filepath.Join(resultsDir, "table3.md")); err != nil {
		t.Errorf("rlcbench did not write markdown: %v", err)
	}
}

// TestCLIErrors verifies the tools fail cleanly on bad input.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI errors skipped in -short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "rlcbuild")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/rlcbuild").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Error("rlcbuild without flags should fail")
	}
	if err := exec.Command(bin, "-graph", "/nonexistent", "-out", filepath.Join(dir, "x")).Run(); err == nil {
		t.Error("rlcbuild with missing graph should fail")
	}
}

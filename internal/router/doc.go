// Package router is the client-facing entry point of a replicated RLC
// serving tier: it fans reads out over follower replicas, forwards writes
// to the leader, and hands every client a consistency token so reads never
// go backwards even as replicas lag, fail, and cut over epochs.
//
// Routing is health-aware: a background poller reads each replica's
// /healthz — role, applied sequence (journal_seq), epoch, and bundle
// fingerprint — and the dispatcher only considers replicas it has seen
// healthy. The cached sequence is a safe lower bound (a replica's sequence
// only grows), so the pinning rule is race-free without per-request
// coordination: a request pinned at (epoch, seq) is routed only to
// replicas whose known sequence is at least seq, with the leader as the
// always-consistent fallback.
//
// Tokens ride the X-Rlc-Pin header (or pin= query parameter) as
// "epoch:seq". Every response carries the token back, advanced to the
// serving replica's coordinates when those are newer — echo it into the
// next request and reads are monotone and read-your-writes across the
// whole tier: an update's response token covers the write, and any replica
// at or past it reflects the write (inserts are monotone, so sequence
// dominance implies answer dominance).
//
// Tail latency is hedged: when the first-choice replica has not answered
// within the hedge delay, the same query is fired at a second eligible
// replica and the first response wins. Hedging applies to idempotent reads
// only; writes go to the leader exactly once.
package router

package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/g-rpqs/rlc-go/internal/server"
)

// HeaderPin carries the client consistency token, "epoch:seq". Requests
// may also pass it as the pin= query parameter.
const HeaderPin = "X-Rlc-Pin"

// HeaderBackend reports which backend actually served a routed request —
// observability for tests and latency debugging, not part of the
// consistency contract.
const HeaderBackend = "X-Rlc-Backend"

// Options configures a Router.
type Options struct {
	// LeaderURL is the leader's base URL. Writes go here, and reads fall
	// back here when no follower satisfies the pin.
	LeaderURL string
	// FollowerURLs are the read replicas' base URLs.
	FollowerURLs []string
	// Client is the HTTP client for proxied calls; nil uses a default.
	Client *http.Client
	// HealthInterval paces the background health poller. Zero selects 250ms.
	HealthInterval time.Duration
	// HedgeDelay is how long the first read attempt may stay unanswered
	// before the same query is hedged to a second eligible replica. Zero
	// selects 25ms; negative disables hedging.
	HedgeDelay time.Duration
}

// backendHealth mirrors the fields of the replica /healthz contract the
// router consumes (pinned by the server package's healthz shape test).
type backendHealth struct {
	Status            string `json:"status"`
	Role              string `json:"role"`
	JournalSeq        uint64 `json:"journal_seq"`
	Epoch             uint64 `json:"epoch"`
	BundleFingerprint string `json:"bundle_fingerprint"`
}

// backend is one routable replica with its last-polled health snapshot.
// seq is a lower bound on the replica's applied sequence: it was true at
// poll time and the true value only grows, so routing decisions made on it
// are safe (never optimistic) no matter how stale the poll is.
type backend struct {
	url      string
	isLeader bool

	healthy atomic.Bool
	seq     atomic.Uint64
	epoch   atomic.Uint64
}

// Router implements the epoch-pinned read fan-out; construct with New,
// serve its Handler, and feed the poller with Run (or Refresh in tests).
type Router struct {
	opts      Options
	leader    *backend
	followers []*backend
	all       []*backend
	mux       *http.ServeMux

	// rr rotates the preferred follower so load spreads without tracking
	// per-backend inflight counts.
	rr atomic.Uint64
}

// New builds a router over one leader and any number of followers. Call
// Refresh (or start Run) before serving: backends are unknown-unhealthy
// until first polled, and reads fall back to the leader.
func New(opts Options) *Router {
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 250 * time.Millisecond
	}
	if opts.HedgeDelay == 0 {
		opts.HedgeDelay = 25 * time.Millisecond
	}
	r := &Router{opts: opts}
	r.leader = &backend{url: strings.TrimRight(opts.LeaderURL, "/"), isLeader: true}
	r.all = append(r.all, r.leader)
	for _, u := range opts.FollowerURLs {
		b := &backend{url: strings.TrimRight(u, "/")}
		r.followers = append(r.followers, b)
		r.all = append(r.all, b)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /query", r.handleRead)
	mux.HandleFunc("POST /batch", r.handleBatch)
	mux.HandleFunc("POST /update", r.handleWrite)
	mux.HandleFunc("POST /rebuild", r.handleWrite)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux = mux
	return r
}

// Handler returns the router's HTTP surface: /query, /batch, /update,
// /rebuild, /healthz.
func (r *Router) Handler() http.Handler { return r.mux }

// Refresh polls every backend's /healthz once, synchronously — the unit
// the background loop repeats, exposed for startup and tests.
func (r *Router) Refresh(ctx context.Context) {
	for _, b := range r.all {
		r.poll(ctx, b)
	}
}

// Run drives the health poller until ctx is canceled.
func (r *Router) Run(ctx context.Context) {
	t := time.NewTicker(r.opts.HealthInterval)
	defer t.Stop()
	for {
		r.Refresh(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

func (r *Router) poll(ctx context.Context, b *backend) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		b.healthy.Store(false)
		return
	}
	defer resp.Body.Close()
	var h backendHealth
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&h) != nil || h.Status != "ok" {
		b.healthy.Store(false)
		return
	}
	// Order matters: publish coordinates before flipping healthy, so a
	// dispatcher that sees healthy==true reads at-least-as-fresh bounds.
	b.seq.Store(h.JournalSeq)
	b.epoch.Store(h.Epoch)
	b.healthy.Store(true)
}

// pin is the parsed consistency token.
type pin struct {
	epoch, seq uint64
}

func (p pin) String() string { return fmt.Sprintf("%d:%d", p.epoch, p.seq) }

// parsePin reads the token from the header or query parameter; a missing
// token is the zero pin (any replica qualifies).
func parsePin(req *http.Request) (pin, error) {
	tok := req.Header.Get(HeaderPin)
	if tok == "" {
		tok = req.URL.Query().Get("pin")
	}
	if tok == "" {
		return pin{}, nil
	}
	e, s, ok := strings.Cut(tok, ":")
	if !ok {
		return pin{}, fmt.Errorf("bad pin %q: want epoch:seq", tok)
	}
	epoch, err1 := strconv.ParseUint(e, 10, 64)
	seq, err2 := strconv.ParseUint(s, 10, 64)
	if err1 != nil || err2 != nil {
		return pin{}, fmt.Errorf("bad pin %q: want epoch:seq", tok)
	}
	return pin{epoch: epoch, seq: seq}, nil
}

// eligible returns the read backends allowed for p, preference-ordered:
// healthy followers at or past the pinned sequence (rotated for load
// spread), then the leader. The leader is always eligible — every token in
// circulation was minted from a state the leader had already applied, so
// the leader can never be behind a legitimate pin.
func (r *Router) eligible(p pin) []*backend {
	var out []*backend
	n := len(r.followers)
	if n > 0 {
		start := int(r.rr.Add(1)) % n
		for i := 0; i < n; i++ {
			b := r.followers[(start+i)%n]
			if b.healthy.Load() && b.seq.Load() >= p.seq {
				out = append(out, b)
			}
		}
	}
	return append(out, r.leader)
}

// relay copies a backend response to the client, advancing the pin token:
// the response pin is the backend's (epoch, seq) when that is at least as
// fresh as the request pin, else the request pin unchanged — so the token
// a client echoes back can never move backwards through the router.
func relay(w http.ResponseWriter, resp *http.Response, served *backend, p pin) {
	out := p
	be, _ := strconv.ParseUint(resp.Header.Get(server.HeaderEpoch), 10, 64)
	bs, err := strconv.ParseUint(resp.Header.Get(server.HeaderSeq), 10, 64)
	if err == nil && bs >= p.seq {
		out = pin{epoch: be, seq: bs}
	}
	h := w.Header()
	for _, k := range []string{"Content-Type", server.HeaderEpoch, server.HeaderSeq} {
		if v := resp.Header.Get(k); v != "" {
			h.Set(k, v)
		}
	}
	h.Set(HeaderPin, out.String())
	h.Set(HeaderBackend, served.url)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func routerError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...), "code": "router"})
}

// attempt proxies one read to one backend. Body is nil for GETs.
func (r *Router) attempt(ctx context.Context, b *backend, req *http.Request, body []byte) (*http.Response, error) {
	u := b.url + req.URL.Path
	if req.URL.RawQuery != "" {
		u += "?" + req.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	out, err := http.NewRequestWithContext(ctx, req.Method, u, rd)
	if err != nil {
		return nil, err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	return r.opts.Client.Do(out)
}

// hedged runs a read against the eligible backends: first choice
// immediately, the next after HedgeDelay if no response yet, first
// response wins (the loser is canceled). Failed attempts fall through to
// the remaining candidates, so a crashed replica costs latency, not an
// error, as long as any backend can answer.
func (r *Router) hedged(req *http.Request, cands []*backend, body []byte) (*http.Response, *backend, error) {
	ctx, cancel := context.WithCancel(req.Context())
	defer cancel()

	type result struct {
		resp *http.Response
		b    *backend
		err  error
	}
	results := make(chan result, len(cands))
	launched := 0
	launch := func() {
		b := cands[launched]
		launched++
		go func() {
			// The attempt buffers and closes its own body before reporting,
			// so canceling the race context can never sever a winner
			// mid-body, and losers clean up after themselves.
			resp, err := r.attempt(ctx, b, req, body)
			if err == nil {
				data, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					resp, err = nil, rerr
				} else {
					resp.Body = io.NopCloser(bytes.NewReader(data))
				}
			}
			results <- result{resp: resp, b: b, err: err}
		}()
	}

	launch()
	hedge := r.opts.HedgeDelay
	var timer *time.Timer
	var timerC <-chan time.Time
	if hedge > 0 && launched < len(cands) {
		timer = time.NewTimer(hedge)
		timerC = timer.C
		defer timer.Stop()
	}

	pending := 1
	var lastErr error
	for pending > 0 {
		select {
		case <-timerC:
			timerC = nil
			if launched < len(cands) {
				launch()
				pending++
			}
		case res := <-results:
			pending--
			if res.err == nil {
				return res.resp, res.b, nil
			}
			lastErr = res.err
			if launched < len(cands) {
				launch()
				pending++
			}
		}
	}
	return nil, nil, lastErr
}

func (r *Router) handleRead(w http.ResponseWriter, req *http.Request) {
	r.routeRead(w, req, nil)
}

// handleBatch buffers the body (it must be replayable across hedge
// attempts) and routes like a read — batches are idempotent queries.
func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, server.DefaultMaxBodyBytes+1))
	if err != nil {
		routerError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	r.routeRead(w, req, body)
}

func (r *Router) routeRead(w http.ResponseWriter, req *http.Request, body []byte) {
	p, err := parsePin(req)
	if err != nil {
		routerError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp, b, err := r.hedged(req, r.eligible(p), body)
	if err != nil {
		routerError(w, http.StatusBadGateway, "no backend answered: %v", err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp, b, p)
}

// handleWrite forwards to the leader exactly once — writes are not
// idempotent, so they are never hedged — and mints the client's next token
// from the leader's post-append coordinates.
func (r *Router) handleWrite(w http.ResponseWriter, req *http.Request) {
	p, err := parsePin(req)
	if err != nil {
		routerError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body, err := io.ReadAll(io.LimitReader(req.Body, server.DefaultMaxBodyBytes+1))
	if err != nil {
		routerError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	resp, err := r.attempt(req.Context(), r.leader, req, body)
	if err != nil {
		routerError(w, http.StatusBadGateway, "leader: %v", err)
		return
	}
	defer resp.Body.Close()
	relay(w, resp, r.leader, p)
}

// routerHealthz reports the router's own liveness and its live view of the
// backends.
type routerHealthz struct {
	Status   string           `json:"status"`
	Backends []backendHealthz `json:"backends"`
}

type backendHealthz struct {
	URL     string `json:"url"`
	Role    string `json:"role"`
	Healthy bool   `json:"healthy"`
	Seq     uint64 `json:"seq"`
	Epoch   uint64 `json:"epoch"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp := routerHealthz{Status: "ok"}
	for _, b := range r.all {
		role := "follower"
		if b.isLeader {
			role = "leader"
		}
		resp.Backends = append(resp.Backends, backendHealthz{
			URL:     b.url,
			Role:    role,
			Healthy: b.healthy.Load(),
			Seq:     b.seq.Load(),
			Epoch:   b.epoch.Load(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

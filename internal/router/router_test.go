package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/server"
)

// fakeBackend is a scripted replica: a /healthz with settable coordinates
// and a /query that records hits, optionally delays, and stamps the
// replication headers a real server would.
type fakeBackend struct {
	hts   *httptest.Server
	role  string
	seq   atomic.Uint64
	epoch atomic.Uint64
	down  atomic.Bool
	delay atomic.Int64 // nanoseconds
	hits  atomic.Uint64
}

func newFakeBackend(t *testing.T, role string) *fakeBackend {
	t.Helper()
	f := &fakeBackend{role: role}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if f.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "role": f.role, "generation": 1,
			"journal_seq": f.seq.Load(), "epoch": f.epoch.Load(),
			"bundle_fingerprint": "7.24.3.0000000000000000",
		})
	})
	mux.HandleFunc("GET /query", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if d := f.delay.Load(); d > 0 {
			select {
			case <-time.After(time.Duration(d)):
			case <-r.Context().Done():
				return
			}
		}
		w.Header().Set(server.HeaderEpoch, fmt.Sprint(f.epoch.Load()))
		w.Header().Set(server.HeaderSeq, fmt.Sprint(f.seq.Load()))
		json.NewEncoder(w).Encode(map[string]any{"reachable": true})
	})
	mux.HandleFunc("POST /update", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		io.Copy(io.Discard, r.Body)
		seq := f.seq.Add(1)
		w.Header().Set(server.HeaderEpoch, fmt.Sprint(f.epoch.Load()))
		w.Header().Set(server.HeaderSeq, fmt.Sprint(seq))
		json.NewEncoder(w).Encode(map[string]any{"accepted": 1, "seq": seq})
	})
	f.hts = httptest.NewServer(mux)
	t.Cleanup(f.hts.Close)
	return f
}

func newTestRouter(t *testing.T, leader *fakeBackend, followers []*fakeBackend, hedge time.Duration) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(followers))
	for i, f := range followers {
		urls[i] = f.hts.URL
	}
	rt := New(Options{LeaderURL: leader.hts.URL, FollowerURLs: urls, HedgeDelay: hedge})
	rt.Refresh(context.Background())
	hts := httptest.NewServer(rt.Handler())
	t.Cleanup(hts.Close)
	return rt, hts
}

func get(t *testing.T, url string, pinTok string) *http.Response {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	if pinTok != "" {
		req.Header.Set(HeaderPin, pinTok)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestPinGating routes a pinned read only to replicas at or past the pin;
// a replica behind the pin must never see the request.
func TestPinGating(t *testing.T) {
	leader := newFakeBackend(t, "leader")
	leader.seq.Store(100)
	ahead := newFakeBackend(t, "follower")
	ahead.seq.Store(80)
	behind := newFakeBackend(t, "follower")
	behind.seq.Store(20)
	_, hts := newTestRouter(t, leader, []*fakeBackend{ahead, behind}, -1)

	for i := 0; i < 20; i++ {
		resp := get(t, hts.URL+"/query?s=0&t=1&l=l0", "0:50")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if n := behind.hits.Load(); n != 0 {
		t.Fatalf("replica behind the pin served %d requests", n)
	}
	if ahead.hits.Load() == 0 {
		t.Fatal("eligible replica never served")
	}

	// A pin beyond every follower falls back to the leader.
	prev := leader.hits.Load()
	get(t, hts.URL+"/query?s=0&t=1&l=l0", "0:90")
	if leader.hits.Load() != prev+1 {
		t.Fatal("over-pin did not fall back to the leader")
	}
}

// TestPinMonotonic: the returned token never regresses, whichever backend
// answers — stale backend coordinates keep the request pin instead.
func TestPinMonotonic(t *testing.T) {
	leader := newFakeBackend(t, "leader")
	leader.seq.Store(10)
	_, hts := newTestRouter(t, leader, nil, -1)

	// Backend reports seq 10; request pinned at 3 → token advances to 10.
	resp := get(t, hts.URL+"/query?s=0&t=1&l=l0", "0:3")
	if p := resp.Header.Get(HeaderPin); p != "0:10" {
		t.Fatalf("pin %q, want 0:10", p)
	}
	// Request pinned past the backend's report → token must not regress.
	// (Only possible via the leader fallback, whose true seq is newer than
	// any token; the router still must not hand back a smaller number.)
	resp = get(t, hts.URL+"/query?s=0&t=1&l=l0", "2:400")
	if p := resp.Header.Get(HeaderPin); p != "2:400" {
		t.Fatalf("pin %q, want request pin 2:400 preserved", p)
	}
}

// TestUnhealthySkipped: a follower that stops answering health checks
// stops receiving traffic after the next refresh.
func TestUnhealthySkipped(t *testing.T) {
	leader := newFakeBackend(t, "leader")
	f1 := newFakeBackend(t, "follower")
	f2 := newFakeBackend(t, "follower")
	rt, hts := newTestRouter(t, leader, []*fakeBackend{f1, f2}, -1)

	f1.down.Store(true)
	rt.Refresh(context.Background())
	base := f1.hits.Load()
	for i := 0; i < 10; i++ {
		get(t, hts.URL+"/query?s=0&t=1&l=l0", "")
	}
	if n := f1.hits.Load() - base; n != 0 {
		t.Fatalf("unhealthy follower served %d requests", n)
	}
	if f2.hits.Load() == 0 {
		t.Fatal("healthy follower never served")
	}
}

// TestHedging: when the first replica sits on a request past the hedge
// delay, a second attempt fires and the fast replica's answer wins.
func TestHedging(t *testing.T) {
	leader := newFakeBackend(t, "leader")
	slow := newFakeBackend(t, "follower")
	slow.delay.Store(int64(2 * time.Second))
	fast := newFakeBackend(t, "follower")
	_, hts := newTestRouter(t, leader, []*fakeBackend{slow, fast}, 5*time.Millisecond)

	// Run enough reads that rotation starts on the slow replica at least
	// once; each must finish far under the slow delay.
	start := time.Now()
	for i := 0; i < 6; i++ {
		resp := get(t, hts.URL+"/query?s=0&t=1&l=l0", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	if e := time.Since(start); e > time.Second {
		t.Fatalf("hedged reads took %v; hedge did not fire", e)
	}
	if slow.hits.Load() == 0 || fast.hits.Load() == 0 {
		t.Fatalf("hits slow=%d fast=%d; both replicas should have been tried", slow.hits.Load(), fast.hits.Load())
	}
}

// TestWriteForwarding: updates go to the leader exactly once (never
// hedged, never to followers) and mint the advanced token.
func TestWriteForwarding(t *testing.T) {
	leader := newFakeBackend(t, "leader")
	f1 := newFakeBackend(t, "follower")
	_, hts := newTestRouter(t, leader, []*fakeBackend{f1}, 0)

	resp, err := http.Post(hts.URL+"/update", "application/json",
		io.NopCloser(io.LimitReader(nil, 0)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if p := resp.Header.Get(HeaderPin); p != "0:1" {
		t.Fatalf("write token %q, want 0:1", p)
	}
	if leader.hits.Load() != 1 || f1.hits.Load() != 0 {
		t.Fatalf("hits leader=%d follower=%d, want 1/0", leader.hits.Load(), f1.hits.Load())
	}
}

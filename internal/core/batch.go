package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// BatchQuery is one RLC query (S, T, L+) of a QueryBatch call.
type BatchQuery struct {
	S, T graph.Vertex
	L    labelseq.Seq
}

// BatchResult is the answer to the batch query at the same position:
// Reachable is meaningful only when Err is nil. Err carries the same
// validation errors Query would return for that query (ErrVertexRange,
// ErrNotMinimumRepeat, ...); one invalid query never fails the batch.
type BatchResult struct {
	Reachable bool
	Err       error
}

// batchChunk is the number of consecutive queries a worker claims per
// counter increment: large enough to amortize the atomic, small enough to
// keep the tail balanced.
const batchChunk = 64

// batchScratch is the per-worker scratch of QueryBatch. Query workloads
// repeat a small set of constraints, so a tiny linear-scan memo from packed
// constraint code to interned MR id turns the per-query dictionary hash
// lookup into a scan of a few contiguous words. Everything here lives on
// one worker's stack frame — no sharing, no locks, no per-query allocation.
type batchScratch struct {
	n     int
	codes [batchMemoSlots]labelseq.Code
	ids   [batchMemoSlots]labelseq.ID
}

const batchMemoSlots = 16

// lookupMR validates the constraint and resolves its interned MR id
// through the memo. A memo hit proves the whole constraint valid — equal
// packed codes mean equal sequences, so the primitivity (minimum-repeat)
// check amortizes across the batch instead of re-running per query.
// Negative lookups (InvalidID: no path in the graph carries this k-MR) are
// cached too — false-query workloads hit them constantly. Once the memo is
// full, unseen constraints fall back to the dictionary.
//
//rlc:noalloc
func (sc *batchScratch) lookupMR(ix *Index, l labelseq.Seq) (labelseq.ID, error) {
	if err := ix.checkShape(l); err != nil { //rlc:allocok rejection path builds the validation error
		return labelseq.InvalidID, err
	}
	code := ix.dict.Coder().Encode(l)
	for i := 0; i < sc.n; i++ {
		if sc.codes[i] == code {
			return sc.ids[i], nil
		}
	}
	if !labelseq.IsPrimitive(l) {
		//rlc:allocok rejection path builds the validation error
		return labelseq.InvalidID, fmt.Errorf("%w: %v", ErrNotMinimumRepeat, l)
	}
	id := ix.dict.LookupCode(code)
	if sc.n < batchMemoSlots {
		sc.codes[sc.n], sc.ids[sc.n] = code, id
		sc.n++
	}
	return id, nil
}

// answerBatch evaluates queries[start:end] into the matching result slots.
// Every slot in the range is fully overwritten, so QueryBatchInto can hand
// in a dirty reused buffer without clearing it first. The context is
// consulted once per batchChunk queries; after cancellation the remaining
// slots are filled with the context's error, so the positional contract
// holds even for an abandoned batch.
//
// This is the per-worker inner loop, so rlcvet holds it allocation-free:
// a steady stream of valid queries costs zero allocations per answer, and
// only rejected queries pay for their error values.
//
//rlc:noalloc
func (ix *Index) answerBatch(ctx context.Context, queries []BatchQuery, results []BatchResult, start, end int, sc *batchScratch) {
	for i := start; i < end; i++ {
		if (i-start)%batchChunk == 0 {
			if err := ctx.Err(); err != nil {
				for j := i; j < end; j++ {
					results[j] = BatchResult{Err: err}
				}
				return
			}
		}
		q := &queries[i]
		if err := ix.checkVertices(q.S, q.T); err != nil { //rlc:allocok rejection path builds the validation error
			results[i] = BatchResult{Err: err}
			continue
		}
		mr, err := sc.lookupMR(ix, q.L)
		if err != nil {
			results[i] = BatchResult{Err: err}
			continue
		}
		reachable := false
		if mr != labelseq.InvalidID {
			reachable = ix.queryByID(q.S, q.T, mr)
		}
		results[i] = BatchResult{Reachable: reachable}
	}
}

// QueryBatch answers many RLC queries concurrently and returns one result
// per query, position for position. workers <= 0 means GOMAXPROCS; one
// worker (or a single-query batch) runs inline without spawning goroutines.
//
// Workers claim fixed-size chunks of the query slice off an atomic cursor,
// so skewed per-query costs still balance, and each worker reuses its own
// scratch across all queries it answers — the steady state is
// allocation-free per query. The index is immutable, which is what makes
// the fan-out safe; QueryBatch may itself be called concurrently with
// Query and other QueryBatch calls.
func (ix *Index) QueryBatch(queries []BatchQuery, workers int) []BatchResult {
	return ix.QueryBatchIntoCtx(context.Background(), queries, workers, nil)
}

// QueryBatchCtx is QueryBatch under a context: cancellation stops the
// fan-out at the next chunk boundary, and every not-yet-answered slot comes
// back with Err set to the context's error. Already-answered slots keep
// their answers.
func (ix *Index) QueryBatchCtx(ctx context.Context, queries []BatchQuery, workers int) []BatchResult {
	return ix.QueryBatchIntoCtx(ctx, queries, workers, nil)
}

// QueryBatchInto is QueryBatch writing into a caller-provided result buffer,
// which is grown only when its capacity is short — the returned slice must
// be used in its place. Servers answering a steady stream of batches reuse
// one buffer per connection and allocate nothing at all per batch.
//
//rlc:noalloc
func (ix *Index) QueryBatchInto(queries []BatchQuery, workers int, results []BatchResult) []BatchResult {
	return ix.QueryBatchIntoCtx(context.Background(), queries, workers, results)
}

// QueryBatchIntoCtx is QueryBatchInto under a context — the form the HTTP
// server's batch handler uses, so a client that disconnects mid-batch stops
// burning workers at the next chunk boundary.
//
// With an adequately sized reused buffer and a single worker, a whole batch
// allocates nothing (rlcvet noalloc; the waived lines are the short-buffer
// grow and the multi-worker fan-out, which spawns goroutines by design).
//
//rlc:noalloc
func (ix *Index) QueryBatchIntoCtx(ctx context.Context, queries []BatchQuery, workers int, results []BatchResult) []BatchResult {
	if cap(results) < len(queries) {
		results = make([]BatchResult, len(queries)) //rlc:allocok caller's buffer too short: grow once, returned for reuse
	} else {
		results = results[:len(queries)]
	}
	if len(queries) == 0 {
		return results
	}
	workers = EffectiveBatchWorkers(len(queries), workers)
	if workers == 1 {
		// Inline, so a reused result buffer makes the whole call
		// allocation-free (the parallel path below boxes the closure
		// captures, which is noise next to spawning goroutines).
		var sc batchScratch
		ix.answerBatch(ctx, queries, results, 0, len(queries), &sc)
		return results
	}
	ix.runBatchWorkers(ctx, queries, results, workers) //rlc:allocok parallel fan-out spawns worker goroutines by design
	return results
}

// EffectiveBatchWorkers returns the worker count QueryBatch actually runs
// for a batch of numQueries when the caller requests workers (<= 0 meaning
// GOMAXPROCS): small batches are clamped to the number of work chunks, so
// requesting more workers than there is work never spawns idle goroutines.
func EffectiveBatchWorkers(numQueries, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (numQueries + batchChunk - 1) / batchChunk; workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runBatchWorkers fans queries out over a worker pool; each worker claims
// fixed-size chunks off the shared cursor until the slice is drained.
func (ix *Index) runBatchWorkers(ctx context.Context, queries []BatchQuery, results []BatchResult, workers int) {
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var sc batchScratch
			for {
				end := int(cursor.Add(batchChunk))
				start := end - batchChunk
				if start >= len(queries) {
					return
				}
				if end > len(queries) {
					end = len(queries)
				}
				ix.answerBatch(ctx, queries, results, start, end, &sc)
			}
		}()
	}
	wg.Wait()
}

package core

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TestLoadSurvivesCorruption flips random bytes of a serialized index and
// asserts Load either fails cleanly or yields a structurally valid index —
// never panics and never returns entries outside the graph's universe.
func TestLoadSurvivesCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(700))
	g := randomGraph(r, 12, 3, 40)
	ix := mustBuild(t, g, Options{K: 2})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	pristine := buf.Bytes()

	for trial := 0; trial < 500; trial++ {
		corrupt := make([]byte, len(pristine))
		copy(corrupt, pristine)
		// Flip 1-4 random bytes.
		for i := 0; i < 1+r.Intn(4); i++ {
			corrupt[r.Intn(len(corrupt))] ^= byte(1 + r.Intn(255))
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Load panicked: %v", trial, p)
				}
			}()
			loaded, err := Load(bytes.NewReader(corrupt), g)
			if err != nil {
				return // clean rejection
			}
			// Accepted: every decoded entry must stay in-universe.
			for v := 0; v < g.NumVertices(); v++ {
				for _, e := range loaded.LinEntries(graph.Vertex(v)) {
					if int(e.Hub) >= g.NumVertices() || len(e.MR) == 0 || len(e.MR) > loaded.K() {
						t.Fatalf("trial %d: corrupted index leaked invalid entry %+v", trial, e)
					}
				}
			}
		}()
	}
}

// TestLoadSurvivesTruncation truncates the serialized form at every length
// and asserts clean failures.
func TestLoadSurvivesTruncation(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Load(bytes.NewReader(data[:cut]), g); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(data))
		}
	}
}

// TestConcurrentQueries exercises the documented contract that queries are
// safe for concurrent use (run with -race to make this meaningful).
func TestConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	g := randomGraph(r, 30, 3, 120)
	ix := mustBuild(t, g, Options{K: 2})
	constraints := PrimitiveConstraints(3, 2)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				s := graph.Vertex(rr.Intn(30))
				tt := graph.Vertex(rr.Intn(30))
				l := constraints[rr.Intn(len(constraints))]
				if _, err := ix.Query(s, tt, l); err != nil {
					t.Errorf("concurrent query failed: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestQueryStarProperty: QueryStar == (s == t) || Query, everywhere.
func TestQueryStarProperty(t *testing.T) {
	r := rand.New(rand.NewSource(702))
	g := randomGraph(r, 10, 2, 30)
	ix := mustBuild(t, g, Options{K: 2})
	for _, l := range PrimitiveConstraints(2, 2) {
		for s := graph.Vertex(0); int(s) < 10; s++ {
			for tt := graph.Vertex(0); int(tt) < 10; tt++ {
				plus, err := ix.Query(s, tt, l)
				if err != nil {
					t.Fatal(err)
				}
				star, err := ix.QueryStar(s, tt, l)
				if err != nil {
					t.Fatal(err)
				}
				want := s == tt || plus
				if star != want {
					t.Fatalf("QueryStar(%d,%d,%v) = %v, want %v", s, tt, l, star, want)
				}
			}
		}
	}
}

// TestMaxKBoundary builds with the largest supported k on a tiny cyclic
// graph and validates completeness.
func TestMaxKBoundary(t *testing.T) {
	g := graph.FromEdges(3, 2, []graph.Edge{
		{Src: 0, Dst: 1, Label: 0},
		{Src: 1, Dst: 2, Label: 1},
		{Src: 2, Dst: 0, Label: 0},
	})
	ix := mustBuild(t, g, Options{K: MaxK})
	if err := ix.ValidateComplete(); err != nil {
		t.Fatal(err)
	}
	// The 3-cycle's label sequence (l0 l1 l0) is primitive: its rotations
	// are the k-MRs of the cycle from each starting vertex.
	ok, err := ix.Query(0, 0, labelseq.Seq{0, 1, 0})
	if err != nil || !ok {
		t.Errorf("cycle query = %v, %v; want true", ok, err)
	}
}

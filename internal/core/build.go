package core

import (
	"fmt"
	"runtime"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// BuildStats counts what the indexing algorithm did — useful for tuning
// and for quantifying each pruning rule's contribution.
//
// The algorithm counters (KernelSearchStates through PrunedDup) are a
// deterministic function of the graph and the Options' algorithmic knobs:
// a parallel build (BuildWorkers != 1) reports exactly the same values as
// the sequential one. The scheduling counters below them describe only how
// the parallel scheduler reproduced that sequential trajectory, and are
// zero when the sequential path ran.
type BuildStats struct {
	// KernelSearchStates is the number of (vertex, sequence) states the
	// kernel-search phases visited.
	KernelSearchStates int64
	// KernelBFSRuns is the number of kernel-guided BFS executions (one
	// per kernel candidate per KBS).
	KernelBFSRuns int64
	// KernelBFSNodes is the number of (vertex, phase) nodes those runs
	// dequeued.
	KernelBFSNodes int64
	// Inserted counts recorded entries; PrunedPR1/PR2/Dup count insert
	// attempts each rule rejected.
	Inserted  int64
	PrunedPR1 int64
	PrunedPR2 int64
	PrunedDup int64

	// Workers is the effective worker count the build ran with (1 on the
	// sequential path).
	Workers int
	// Windows is the number of speculate-then-commit rounds the parallel
	// scheduler dispatched.
	Windows int64
	// Speculated counts speculative KBS-pair executions on the workers.
	// Invalidated speculations are retried, so this can exceed the vertex
	// count; the excess is the wasted (parallel) work.
	Speculated int64
	// Committed counts speculations whose buffered inserts were replayed
	// onto the live index unchanged (snapshot validation and the
	// commit-time PR1/PR2/dup re-checks all passed). Committed plus Rerun
	// equals the vertex count.
	Committed int64
	// Rerun counts vertices re-run sequentially at their commit slot
	// because speculation was invalidated twice in a row.
	Rerun int64
}

// Attempts returns the total number of insert attempts.
func (s BuildStats) Attempts() int64 {
	return s.Inserted + s.PrunedPR1 + s.PrunedPR2 + s.PrunedDup
}

// addAlgo accumulates the algorithm counters of one speculation's trajectory
// (the scheduling counters are maintained by the scheduler itself).
func (s *BuildStats) addAlgo(o BuildStats) {
	s.KernelSearchStates += o.KernelSearchStates
	s.KernelBFSRuns += o.KernelBFSRuns
	s.KernelBFSNodes += o.KernelBFSNodes
	s.Inserted += o.Inserted
	s.PrunedPR1 += o.PrunedPR1
	s.PrunedPR2 += o.PrunedPR2
	s.PrunedDup += o.PrunedDup
}

// Build constructs the RLC index for g — Algorithm 2 of the paper. Vertices
// are processed in IN-OUT order; each runs a backward KBS (creating Lout
// entries at the vertices that reach it) and a forward KBS (creating Lin
// entries at the vertices it reaches).
//
// A note on two pseudocode details that the paper's own running examples
// disambiguate (an implementation choice the original paper leaves open): the kernel-search frontier registers
// the newly visited endpoint of each path (Example 5), and the kernel-BFS
// keeps expanding after a *successful* insert but stops — rule PR3 — when
// the insert was pruned by PR1 or PR2 (Examples 5 and 6).
//
// With Options.BuildWorkers != 1 the vertices are processed by the
// deterministic parallel scheduler (see scheduler.go), which produces an
// index — entry lists, dictionary, and serialized bytes — identical to the
// sequential build's.
func Build(g *graph.Graph, opts Options) (*Index, error) {
	ix, _, err := BuildWithStats(g, opts)
	return ix, err
}

// BuildWithStats is Build plus construction counters.
func BuildWithStats(g *graph.Graph, opts Options) (*Index, BuildStats, error) {
	k := opts.k()
	if k < 1 || k > MaxK {
		return nil, BuildStats{}, fmt.Errorf("rlc: recursive k must be in [1, %d], got %d", MaxK, k)
	}
	if opts.BuildWorkers < 0 {
		return nil, BuildStats{}, fmt.Errorf("rlc: BuildWorkers must be >= 0 (0 = GOMAXPROCS), got %d", opts.BuildWorkers)
	}
	if opts.MaxIndexBytes < 0 {
		return nil, BuildStats{}, fmt.Errorf("rlc: MaxIndexBytes must be >= 0 (0 = unlimited), got %d", opts.MaxIndexBytes)
	}
	if g.NumVertices() == 0 {
		return nil, BuildStats{}, fmt.Errorf("rlc: cannot index an empty graph")
	}
	numLabels := g.NumLabels()
	if numLabels == 0 {
		numLabels = 1 // edgeless graph: any tiny dictionary works
	}
	dict, err := labelseq.NewDict(numLabels, k)
	if err != nil {
		return nil, BuildStats{}, fmt.Errorf("rlc: %w", err)
	}

	n := g.NumVertices()
	ix := &Index{
		g:     g,
		k:     k,
		opts:  opts,
		dict:  dict,
		order: accessOrder(g, opts.Order),
		rank:  make([]int32, n),
	}
	for r, v := range ix.order {
		ix.rank[v] = int32(r)
	}

	b := newBuilder(ix)
	workers := EffectiveBuildWorkers(n, opts.BuildWorkers)
	b.stats.Workers = workers
	if workers == 1 {
		for _, v := range ix.order {
			b.kbs(v, backward)
			b.kbs(v, forward)
		}
	} else {
		runParallelBuild(ix, b, workers)
	}
	if err := ix.freeze(b.out, b.in); err != nil {
		return nil, b.stats, err
	}
	if !opts.DisablePacked {
		if err := ix.pack(); err != nil {
			return nil, b.stats, err
		}
	}
	// Size budgeting runs last, over the frozen (and packed) index: it
	// truncates demoted lists and re-derives the packed form, so a budget
	// the full index fits leaves everything bit-identical to an unbudgeted
	// build.
	if err := ix.tier(); err != nil {
		return nil, b.stats, err
	}
	return ix, b.stats, nil
}

// EffectiveBuildWorkers returns the worker count Build actually runs for a
// graph of numVertices when the caller requests workers (<= 0 meaning
// GOMAXPROCS): the count is clamped to the number of vertices, and one
// worker selects the plain sequential path.
func EffectiveBuildWorkers(numVertices, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numVertices {
		workers = numVertices
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// accessOrder materializes the configured vertex processing order.
func accessOrder(g *graph.Graph, o Order) []graph.Vertex {
	n := g.NumVertices()
	switch o {
	case OrderInOut:
		return graph.OrderByDegreeProduct(g)
	case OrderDegreeSum:
		order := make([]graph.Vertex, n)
		keys := make([]int, n)
		for i := range order {
			order[i] = graph.Vertex(i)
			keys[i] = g.OutDegree(graph.Vertex(i)) + g.InDegree(graph.Vertex(i))
		}
		sort.SliceStable(order, func(i, j int) bool {
			if keys[order[i]] != keys[order[j]] {
				return keys[order[i]] > keys[order[j]]
			}
			return order[i] < order[j]
		})
		return order
	case OrderNatural:
		order := make([]graph.Vertex, n)
		for i := range order {
			order[i] = graph.Vertex(i)
		}
		return order
	case OrderReverse:
		order := make([]graph.Vertex, n)
		for i := range order {
			order[i] = graph.Vertex(n - 1 - i)
		}
		return order
	default:
		return graph.OrderByDegreeProduct(g)
	}
}

// direction selects backward KBS (in-edges, Lout entries) or forward KBS
// (out-edges, Lin entries).
type direction uint8

const (
	backward direction = iota
	forward
)

// side distinguishes the two entry-list families of a vertex for the
// parallel build's read/write tracking: a backward KBS writes Lout lists
// and reads Lin(src); a forward KBS is the mirror image.
type side uint8

const (
	outSide side = 0
	inSide  side = 1
)

// ySide is the side of the lists a KBS in direction dir inserts into (and
// whose contents its PR1/dup checks read).
func ySide(dir direction) side {
	if dir == backward {
		return outSide
	}
	return inSide
}

// fixedSide is the side of the KBS source's fixed entry list — the other
// operand of every PR1 check the KBS issues.
func fixedSide(dir direction) side {
	if dir == backward {
		return inSide
	}
	return outSide
}

// insertStatus reports what insert did with a candidate entry.
type insertStatus uint8

const (
	inserted  insertStatus = iota
	prunedPR1              // reachability derivable from the current snapshot
	prunedPR2              // the visited vertex has a smaller access rank than the source
	prunedDup              // exact entry already present
)

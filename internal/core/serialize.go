package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// Binary index format (little endian):
//
//	magic "RLCX" | version u32 | k u32 | n u64 | labels u32 | edges u64
//	dict:    count u32, then per sequence: len u8, labels i32...
//	order:   n x i32
//	per vertex v: |Lout(v)| u32, entries (hub i32, mr u32)...,
//	              |Lin(v)|  u32, entries ...
//
// The graph itself is not embedded; Load verifies that the supplied graph
// has the same shape as the one the index was built from.

const (
	magic   = "RLCX"
	version = 1
)

// ErrTieredV1 is returned by Write for a size-budgeted index: the v1 format
// has no room for the filter tier, so writing one would silently drop the
// demoted vertices' only representation. Tiered indexes persist via
// WriteSnapshot/SaveSnapshotFile.
var ErrTieredV1 = fmt.Errorf("rlc: a size-budgeted (tiered) index cannot be written in the v1 format; use a v2 snapshot bundle")

// Write serializes the index.
func (ix *Index) Write(w io.Writer) error {
	if ix.tiers != nil {
		return ErrTieredV1
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	le := binary.LittleEndian
	writeU32 := func(v uint32) { binary.Write(bw, le, v) }
	writeI32 := func(v int32) { binary.Write(bw, le, v) }
	writeU64 := func(v uint64) { binary.Write(bw, le, v) }

	writeU32(version)
	writeU32(uint32(ix.k))
	writeU64(uint64(ix.g.NumVertices()))
	writeU32(uint32(ix.g.NumLabels()))
	writeU64(uint64(ix.g.NumEdges()))

	writeU32(uint32(ix.dict.Len()))
	for i := 0; i < ix.dict.Len(); i++ {
		seq := ix.dict.Seq(labelseq.ID(i))
		if err := bw.WriteByte(byte(len(seq))); err != nil {
			return err
		}
		for _, l := range seq {
			writeI32(int32(l))
		}
	}
	for _, v := range ix.order {
		writeI32(int32(v))
	}
	for v := 0; v < ix.g.NumVertices(); v++ {
		for _, list := range [2][]entry{ix.lout(graph.Vertex(v)), ix.lin(graph.Vertex(v))} {
			writeU32(uint32(len(list)))
			for _, e := range list {
				writeI32(e.hub)
				writeU32(uint32(e.mr))
			}
		}
	}
	return bw.Flush()
}

// Load deserializes an index previously written with Write and binds it to
// g, which must have the same vertex count, label count and edge count as
// the graph the index was built from.
func Load(r io.Reader, g *graph.Graph) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("rlc: load: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("rlc: load: bad magic %q", head)
	}
	le := binary.LittleEndian
	var err error
	readU32 := func() uint32 {
		var v uint32
		if err == nil {
			err = binary.Read(br, le, &v)
		}
		return v
	}
	readI32 := func() int32 {
		var v int32
		if err == nil {
			err = binary.Read(br, le, &v)
		}
		return v
	}
	readU64 := func() uint64 {
		var v uint64
		if err == nil {
			err = binary.Read(br, le, &v)
		}
		return v
	}

	if v := readU32(); err == nil && v != version {
		return nil, fmt.Errorf("rlc: load: unsupported version %d", v)
	}
	k := int(readU32())
	n := int(readU64())
	labels := int(readU32())
	edges := int(readU64())
	if err != nil {
		return nil, fmt.Errorf("rlc: load: %w", err)
	}
	if k < 1 || k > MaxK {
		return nil, fmt.Errorf("rlc: load: bad k %d", k)
	}
	// v1 files predate the graph fingerprint, so only the shape triple the
	// format records can be verified here; the v2 snapshot bundle embeds the
	// full fingerprint (including the edge hash) and is checked by
	// Snapshot.Verify. Either way a wrong graph surfaces as the same typed
	// ErrGraphMismatch.
	if n != g.NumVertices() || labels != g.NumLabels() || edges != g.NumEdges() {
		return nil, fmt.Errorf("rlc: load: %w: index built for graph with %d vertices/%d labels/%d edges, supplied graph has %d/%d/%d",
			ErrGraphMismatch, n, labels, edges, g.NumVertices(), g.NumLabels(), g.NumEdges())
	}

	numLabels := labels
	if numLabels == 0 {
		numLabels = 1
	}
	dict, derr := labelseq.NewDict(numLabels, k)
	if derr != nil {
		return nil, fmt.Errorf("rlc: load: %w", derr)
	}
	ix := &Index{
		g:     g,
		k:     k,
		opts:  Options{K: k},
		dict:  dict,
		order: make([]graph.Vertex, n),
		rank:  make([]int32, n),
	}
	// Decoded per-vertex lists, compacted into the CSR layout by freeze
	// once the whole file validated.
	in := make([][]entry, n)
	out := make([][]entry, n)

	dictLen := int(readU32())
	for i := 0; i < dictLen; i++ {
		var slen byte
		if err == nil {
			slen, err = br.ReadByte()
		}
		if err != nil {
			return nil, fmt.Errorf("rlc: load: dict: %w", err)
		}
		if int(slen) > k {
			return nil, fmt.Errorf("rlc: load: dict sequence longer than k")
		}
		seq := make(labelseq.Seq, slen)
		for j := range seq {
			l := readI32()
			if l < 0 || int(l) >= numLabels {
				return nil, fmt.Errorf("rlc: load: dict label %d out of range", l)
			}
			seq[j] = labelseq.Label(l)
		}
		if err != nil {
			return nil, fmt.Errorf("rlc: load: dict: %w", err)
		}
		if got := ix.dict.Intern(seq); int(got) != i {
			return nil, fmt.Errorf("rlc: load: duplicate dict sequence %v", seq)
		}
	}
	for i := 0; i < n; i++ {
		v := readI32()
		if err != nil {
			return nil, fmt.Errorf("rlc: load: order: %w", err)
		}
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("rlc: load: order vertex %d out of range", v)
		}
		ix.order[i] = v
		ix.rank[v] = int32(i)
	}
	for v := 0; v < n; v++ {
		for side := 0; side < 2; side++ {
			count := int(readU32())
			if err != nil {
				return nil, fmt.Errorf("rlc: load: entries: %w", err)
			}
			if count < 0 || count > n*dictLen+1 {
				return nil, fmt.Errorf("rlc: load: implausible entry count %d", count)
			}
			list := make([]entry, count)
			prev := int32(-1)
			for i := range list {
				hub := readI32()
				mr := readU32()
				if err != nil {
					return nil, fmt.Errorf("rlc: load: entries: %w", err)
				}
				if hub < prev {
					return nil, fmt.Errorf("rlc: load: entries not hub-sorted")
				}
				prev = hub
				if hub < 0 || int(hub) >= n || int(mr) >= dictLen {
					return nil, fmt.Errorf("rlc: load: entry (%d, %d) out of range", hub, mr)
				}
				list[i] = entry{hub: hub, mr: labelseq.ID(mr)}
			}
			if side == 0 {
				out[v] = list
			} else {
				in[v] = list
			}
		}
	}
	if err := ix.freeze(out, in); err != nil {
		return nil, fmt.Errorf("rlc: load: %w", err)
	}
	// v1 files never carry packed sections; derive the bit-parallel form
	// now so loaded indexes query as fast as freshly built ones. Safe on
	// hostile input: every hub and mr above was range-checked.
	if err := ix.pack(); err != nil {
		return nil, fmt.Errorf("rlc: load: %w", err)
	}
	return ix, nil
}

// SaveFile writes the index to path.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from path and binds it to g.
func LoadFile(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, g)
}

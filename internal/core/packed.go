package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// Bit-parallel, hash-consed MR-sets.
//
// The flat entry array stores each (hub, mr) pair separately, so a query
// probe binary-searches the hub and then walks the hub's run comparing
// interned MR ids one by one. The packed form regroups every per-vertex
// entry list by hub — one packedGroup per (vertex, direction, hub) — and
// turns the run of MR ids into a fixed-width bitset keyed by dictionary id:
// membership becomes a single AND/shift of one word instead of a scan.
// Identical MR-sets are hash-consed into a shared pool (hub-dominated
// graphs repeat a handful of MR-sets across thousands of vertices), so each
// distinct set is resident exactly once and a group references it by a
// 4-byte id.
//
// The packed form is an accelerator, never the source of truth: the entry
// array stays authoritative for serialization, inspection, and validation,
// pack derives the packed form deterministically from it, and
// verifyPacked re-checks bit-for-bit equality (Snapshot.Verify runs it, so
// a bundle whose packed sections diverge from its entry array is rejected
// as corrupt rather than silently answering from the wrong bits).

// packedGroup is one (hub, MR-set) pair of a packed per-vertex list: the
// hub's access rank plus the id of the hash-consed bitset holding every MR
// the vertex carries for that hub. 8 bytes, the exact on-disk layout of the
// packed-groups snapshot section.
type packedGroup struct {
	hub int32
	set uint32
}

// setDesc locates one hash-consed MR-set in the ragged word pool: span
// words starting at words[off], covering bit positions [base*64,
// (base+span)*64) of the full dictionary-wide bitset. Storing only each
// set's occupied word window keeps the pool small when the dictionary is
// wide but individual sets are narrow (the common case: a hub run carries a
// handful of MRs out of thousands interned); a dense dictLen-wide layout
// would grow the pool with the dictionary instead of with the data. 12
// bytes, the exact on-disk layout of the packed-set-desc snapshot section.
type setDesc struct {
	off  uint32 // first word in the pool
	base uint32 // word index (mr >> 6) of words[off]
	span uint32 // occupied words, >= 1
}

// packed is the bit-parallel form of an Index's entry lists. All Lout group
// lists come first, then all Lin lists, with one offset array per direction
// — the same CSR discipline as the entry array. desc/words form the
// hash-consed set pool: set s covers words[desc[s].off : .off+.span], bit i
// of word w meaning "MR id (desc[s].base+w)*64 + i is present".
type packed struct {
	numSets int32
	desc    []setDesc
	words   []uint64
	groups  []packedGroup // all Lout groups, then all Lin groups
	outOff  []int32       // len n+1; packed Lout(v) = groups[outOff[v]:outOff[v+1]]
	inOff   []int32       // len n+1; packed Lin(v)  = groups[inOff[v]:inOff[v+1]]
}

// has reports whether the pooled set contains mr — the bit-parallel
// membership test: a window bounds check, then one shift and AND.
//
//rlc:noalloc
func (p *packed) has(set uint32, mr labelseq.ID) bool {
	d := p.desc[set]
	w := uint32(mr>>6) - d.base // unsigned: below-window wraps huge
	if w >= d.span {
		return false
	}
	return p.words[d.off+w]>>(mr&63)&1 != 0
}

// groupHas reports whether list (hub-sorted, hubs unique) carries mr for
// hub. Unlike the entry array's hasEntry there is no run to walk: the
// binary search lands on at most one group and the membership test is a
// single bit probe.
//
//rlc:noalloc
func (p *packed) groupHas(list []packedGroup, hub int32, mr labelseq.ID) bool {
	i, j := 0, len(list)
	for i < j {
		h := int(uint(i+j) >> 1)
		if list[h].hub < hub {
			i = h + 1
		} else {
			j = h
		}
	}
	return i < len(list) && list[i].hub == hub && p.has(list[i].set, mr)
}

// joinGroups merge-joins two packed group lists and reports whether some
// common hub carries mr on both sides — Case 1 of Definition 4 on the
// bit-parallel representation. Hubs are unique per list, so every step
// advances at least one cursor and a matched hub costs two bit probes.
//
//rlc:noalloc
func (p *packed) joinGroups(a, b []packedGroup, mr labelseq.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].hub < b[j].hub:
			i++
		case a[i].hub > b[j].hub:
			j++
		default:
			if p.has(a[i].set, mr) && p.has(b[j].set, mr) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// queryPacked is queryByID on the packed representation: Case 2 (direct
// groups) then Case 1 (merge join), all membership via AND/shift.
//
//rlc:noalloc
func (ix *Index) queryPacked(s, t graph.Vertex, mr labelseq.ID) bool {
	p := ix.packed
	outS := p.groups[p.outOff[s]:p.outOff[s+1]]
	inT := p.groups[p.inOff[t]:p.inOff[t+1]]
	if p.groupHas(outS, ix.rank[t], mr) || p.groupHas(inT, ix.rank[s], mr) {
		return true
	}
	return p.joinGroups(outS, inT, mr)
}

// setWordsFor returns the pool set width for a dictionary of dictLen
// sequences: enough 64-bit words to key every MR id, at least one.
func setWordsFor(dictLen int) int {
	w := (dictLen + 63) / 64
	if w < 1 {
		w = 1
	}
	return w
}

// pack derives the packed form from the frozen entry array. It is
// deterministic — vertices ascending, Lout before Lin, sets interned in
// first-seen order — so equal entry arrays always produce byte-identical
// packed sections (the packed golden test pins this). Called by Build and
// the v1 loader unless Options.DisablePacked; snapshot opens adopt the
// bundle's packed sections instead.
func (ix *Index) pack() error {
	n := ix.g.NumVertices()
	w := setWordsFor(ix.dict.Len())
	p := &packed{
		outOff: make([]int32, n+1),
		inOff:  make([]int32, n+1),
	}
	// The unique table: base (4 LE bytes) + the window's little-endian word
	// bytes -> pool id. base is part of the key because two sets with equal
	// windows at different dictionary offsets are different sets.
	table := make(map[string]uint32)
	tmp := make([]uint64, w)
	key := make([]byte, 4+w*8)
	packList := func(list []entry) error {
		for i := 0; i < len(list); {
			hub := list[i].hub
			clear(tmp)
			for ; i < len(list) && list[i].hub == hub; i++ {
				mr := list[i].mr
				tmp[mr>>6] |= 1 << (mr & 63)
			}
			first, last := 0, len(tmp)-1
			for tmp[first] == 0 {
				first++ // a run has >= 1 entry, so some word is non-zero
			}
			for tmp[last] == 0 {
				last--
			}
			span := last - first + 1
			binary.LittleEndian.PutUint32(key, uint32(first))
			for wi, word := range tmp[first : last+1] {
				binary.LittleEndian.PutUint64(key[4+wi*8:], word)
			}
			set, ok := table[string(key[:4+span*8])]
			if !ok {
				if int64(len(table)) >= math.MaxInt32 ||
					int64(len(p.words))+int64(span) > math.MaxInt32 {
					return fmt.Errorf("rlc: packed set pool exceeds 2^31-1 sets or words")
				}
				set = uint32(len(table))
				table[string(key[:4+span*8])] = set
				p.desc = append(p.desc, setDesc{
					off:  uint32(len(p.words)),
					base: uint32(first),
					span: uint32(span),
				})
				p.words = append(p.words, tmp[first:last+1]...)
			}
			p.groups = append(p.groups, packedGroup{hub: hub, set: set})
		}
		return nil
	}
	for v := 0; v < n; v++ {
		p.outOff[v] = int32(len(p.groups))
		if err := packList(ix.lout(graph.Vertex(v))); err != nil {
			return err
		}
	}
	p.outOff[n] = int32(len(p.groups))
	for v := 0; v < n; v++ {
		p.inOff[v] = int32(len(p.groups))
		if err := packList(ix.lin(graph.Vertex(v))); err != nil {
			return err
		}
	}
	p.inOff[n] = int32(len(p.groups))
	p.numSets = int32(len(table))
	ix.packed = p
	return nil
}

// VerifyPacked is the exported face of verifyPacked for inspection tools
// that replicate Snapshot.Verify's integrity pass piecewise (rlcinspect);
// nil on an unpacked index.
func (ix *Index) VerifyPacked() error { return ix.verifyPacked() }

// Packed reports whether the index carries the bit-parallel packed form
// (built in-process or adopted from a bundle's packed sections). When
// false, queries answer from the linear-scan entry path — same answers,
// measured slower on repeat-heavy lists.
func (ix *Index) Packed() bool { return ix.packed != nil }

// PackedStats summarizes the packed representation for reporting.
type PackedStats struct {
	// Groups is the number of (vertex, direction, hub) groups — the packed
	// counterpart of the entry count.
	Groups int64
	// Sets is the number of distinct hash-consed MR-sets in the pool.
	Sets int
	// PoolWords is the total 64-bit words across every set's stored window.
	PoolWords int64
	// SizeBytes estimates the resident size of a packed-only index:
	// groups, descriptors, pool words, packed offsets, and the shared
	// dictionary — the counterpart of Stats.SizeBytes for the scan
	// representation.
	SizeBytes int64
}

// PackedStats returns the packed representation's summary; the zero value
// when the index is unpacked.
func (ix *Index) PackedStats() PackedStats {
	p := ix.packed
	if p == nil {
		return PackedStats{}
	}
	size := int64(len(p.groups))*8 + int64(len(p.desc))*12 + int64(len(p.words))*8 +
		int64(len(p.outOff)+len(p.inOff))*4
	for i := 0; i < ix.dict.Len(); i++ {
		size += int64(len(ix.dict.Seq(labelseq.ID(i))))*4 + 16
	}
	return PackedStats{
		Groups:    int64(len(p.groups)),
		Sets:      int(p.numSets),
		PoolWords: int64(len(p.words)),
		SizeBytes: size,
	}
}

// verifyPacked re-derives every per-vertex entry list from the packed form
// and demands bit-for-bit equality with the entry array: identical hub
// sequences, every entry's MR bit set, and per-group popcounts equal to the
// run lengths (so the packed side holds no extra bits either).
// Snapshot.Verify runs this whenever a bundle carries packed sections —
// checksums catch flipped bits, this catches internally consistent packed
// sections that simply disagree with the entries they claim to accelerate.
func (ix *Index) verifyPacked() error {
	p := ix.packed
	if p == nil {
		return nil
	}
	n := ix.g.NumVertices()
	check := func(what string, list []entry, groups []packedGroup, v int) error {
		gi := 0
		for i := 0; i < len(list); {
			hub := list[i].hub
			if gi >= len(groups) || groups[gi].hub != hub {
				return fmt.Errorf("rlc: packed %s(%d) missing group for hub %d", what, v, hub)
			}
			g := groups[gi]
			runLen := 0
			for ; i < len(list) && list[i].hub == hub; i++ {
				mr := list[i].mr
				if !p.has(g.set, mr) {
					return fmt.Errorf("rlc: packed %s(%d) misses entry (hub %d, mr %d)", what, v, hub, mr)
				}
				runLen++
			}
			d := p.desc[g.set]
			pop := 0
			for _, word := range p.words[d.off : d.off+d.span] {
				pop += bits.OnesCount64(word)
			}
			if pop != runLen {
				return fmt.Errorf("rlc: packed %s(%d) hub %d set has %d bits, entry run has %d", what, v, hub, pop, runLen)
			}
			gi++
		}
		if gi != len(groups) {
			return fmt.Errorf("rlc: packed %s(%d) has %d groups, entry list implies %d", what, v, len(groups), gi)
		}
		return nil
	}
	for v := 0; v < n; v++ {
		if err := check("Lout", ix.lout(graph.Vertex(v)), p.groups[p.outOff[v]:p.outOff[v+1]], v); err != nil {
			return err
		}
		if err := check("Lin", ix.lin(graph.Vertex(v)), p.groups[p.inOff[v]:p.inOff[v+1]], v); err != nil {
			return err
		}
	}
	return nil
}

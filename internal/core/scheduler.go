// Deterministic parallel index construction.
//
// Algorithm 2 is inherently order-dependent: the KBS pair of each vertex
// reads entry lists written by every earlier vertex (the PR1/dup checks),
// and insert outcomes steer the kernel-BFS itself (PR3). The parallel build
// therefore uses optimistic speculation with sequential commit:
//
//  1. Workers run the backward+forward KBS pair of the next `window`
//     uncommitted vertices (in rank order) concurrently against a snapshot
//     — the canonical lists as committed by earlier rounds — buffering
//     successful inserts in worker-local state and recording every
//     (vertex, side) entry list the trajectory read.
//  2. The committer then advances the commit frontier in strict rank
//     order. A speculation whose recorded reads were all untouched since
//     its snapshot followed the exact trajectory the sequential build
//     would have taken, so its buffered inserts are replayed onto the live
//     index (re-running the full PR1/PR2/dup checks, see commit.go). The
//     first stale speculation stops the round: it is thrown away and
//     re-speculated next round, where it sits at the commit frontier —
//     nothing can commit before it — so the retry always validates and
//     the expensive KBS work stays on the worker pool. Only a speculation
//     that fails twice falls back to a sequential re-run at its commit
//     slot; speculations beyond the stop point are kept and re-validated
//     when the frontier reaches them.
//
// Every commit path reproduces the sequential insert sequence exactly — by
// induction over commit slots the entry lists, the dictionary interning
// order, and hence the frozen CSR layout and the serialized v1 bytes are
// byte-identical to the sequential build for every worker count. Worker
// timing can never leak into the result: it only shifts which speculations
// happen to be wasted.
//
// The window adapts deterministically to the observed conflict rate: the
// high-degree vertices at the front of the rank order write entries all
// over the graph (speculating far past them is mostly wasted), while the
// low-degree tail almost never conflicts.
package core

import (
	"sync"
	"sync/atomic"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// maxWindowPerWorker caps how far ahead of the committed index the workers
// may speculate: staleness grows with the window, and with it the fraction
// of speculations invalidated at commit time.
const maxWindowPerWorker = 64

// specInsert is one buffered successful insert of a speculation, in
// trajectory order. The minimum repeat is stored as a slice of the
// result's shared arena (mrOff/mrLen) so replay can re-intern it without
// decoding; mrID is the ID the speculation resolved (interned, or
// provisional for codes unknown at snapshot time) and is only meaningful
// for comparisons within the same speculation.
type specInsert struct {
	y      graph.Vertex
	mrOff  int32
	mrID   labelseq.ID
	mrCode labelseq.Code
	mrLen  uint8
	dir    direction
}

// specResult is the outcome of one vertex's speculative KBS pair: the reads
// to validate, the inserts to replay, and the trajectory's counters.
type specResult struct {
	v       graph.Vertex
	reads   []uint64 // packed (vertex << 1 | side), deduplicated
	inserts []specInsert
	arena   []labelseq.Label // backing store for the inserts' minimum repeats
	stats   BuildStats
}

// specScratch is the per-worker speculation state. The stamped n-sized
// arrays are reused across all speculations of the worker (bumping the
// stamp invalidates them in O(1)); the cur slices are handed off to the
// scheduler per speculation.
type specScratch struct {
	stamp uint32

	// Read dedup: (vertex, side) pairs already recorded this speculation.
	readSeenOut []uint32
	readSeenIn  []uint32

	// Overlay index over cur.inserts: for each (vertex, side), the chain
	// of buffered inserts targeting that list. ovHead holds the latest
	// insert index (valid only under the current stamp), ovNext the
	// previous one per insert.
	ovStampOut []uint32
	ovStampIn  []uint32
	ovHeadOut  []int32
	ovHeadIn   []int32
	ovNext     []int32

	// Provisional interning of minimum repeats unknown to the dictionary
	// snapshot: IDs from dictBase upward, in first-encounter order.
	shadow   map[labelseq.Code]labelseq.ID
	dictBase labelseq.ID

	cur specResult
}

func newSpecScratch(n int) *specScratch {
	return &specScratch{
		readSeenOut: make([]uint32, n),
		readSeenIn:  make([]uint32, n),
		ovStampOut:  make([]uint32, n),
		ovStampIn:   make([]uint32, n),
		ovHeadOut:   make([]int32, n),
		ovHeadIn:    make([]int32, n),
		shadow:      make(map[labelseq.Code]labelseq.ID),
	}
}

// reset prepares the scratch for the next speculation. dictLen is the
// frozen dictionary length of the current round.
func (sc *specScratch) reset(dictLen int) {
	sc.stamp++
	if sc.stamp == 0 {
		clear(sc.readSeenOut)
		clear(sc.readSeenIn)
		clear(sc.ovStampOut)
		clear(sc.ovStampIn)
		sc.stamp = 1
	}
	clear(sc.shadow)
	sc.dictBase = labelseq.ID(dictLen)
	sc.ovNext = sc.ovNext[:0]
	sc.cur = specResult{}
}

// recordRead notes that the speculation's trajectory depends on the current
// contents of one entry list.
func (sc *specScratch) recordRead(v graph.Vertex, s side) {
	seen := sc.readSeenOut
	if s == inSide {
		seen = sc.readSeenIn
	}
	if seen[v] == sc.stamp {
		return
	}
	seen[v] = sc.stamp
	sc.cur.reads = append(sc.cur.reads, uint64(uint32(v))<<1|uint64(s))
}

// overlayHead returns the index (into cur.inserts) of the latest buffered
// insert targeting (v, s), or -1.
func (sc *specScratch) overlayHead(v graph.Vertex, s side) int32 {
	if s == outSide {
		if sc.ovStampOut[v] != sc.stamp {
			return -1
		}
		return sc.ovHeadOut[v]
	}
	if sc.ovStampIn[v] != sc.stamp {
		return -1
	}
	return sc.ovHeadIn[v]
}

// overlayHas reports whether a buffered insert already targets (v, s) with
// the given minimum repeat.
func (sc *specScratch) overlayHas(v graph.Vertex, s side, id labelseq.ID) bool {
	for idx := sc.overlayHead(v, s); idx >= 0; idx = sc.ovNext[idx] {
		if sc.cur.inserts[idx].mrID == id {
			return true
		}
	}
	return false
}

// bufferInsert records a successful speculative insert: the minimum repeat
// goes into the arena, the insert into the trajectory-ordered list, and the
// overlay chain for (y, side) is extended. id is the ID the check phase
// resolved; InvalidID means the code is unknown to the snapshot dictionary
// and receives a provisional ID.
func (sc *specScratch) bufferInsert(y graph.Vertex, dir direction, mr labelseq.Seq, code labelseq.Code, id labelseq.ID) {
	if id == labelseq.InvalidID {
		id = sc.dictBase + labelseq.ID(len(sc.shadow))
		sc.shadow[code] = id
	}
	off := int32(len(sc.cur.arena))
	sc.cur.arena = append(sc.cur.arena, mr...)
	idx := int32(len(sc.cur.inserts))
	sc.cur.inserts = append(sc.cur.inserts, specInsert{
		y:      y,
		mrOff:  off,
		mrID:   id,
		mrCode: code,
		mrLen:  uint8(len(mr)),
		dir:    dir,
	})

	head, ovStamp := sc.ovHeadOut, sc.ovStampOut
	if ySide(dir) == inSide {
		head, ovStamp = sc.ovHeadIn, sc.ovStampIn
	}
	prev := int32(-1)
	if ovStamp[y] == sc.stamp {
		prev = head[y]
	} else {
		ovStamp[y] = sc.stamp
	}
	sc.ovNext = append(sc.ovNext, prev)
	head[y] = idx
}

// mr returns the minimum repeat of one buffered insert.
func (r *specResult) mr(ins *specInsert) labelseq.Seq {
	return labelseq.Seq(r.arena[ins.mrOff : ins.mrOff+int32(ins.mrLen)])
}

// newSpecBuilder derives a worker builder from the committer: it shares the
// immutable inputs and the canonical list headers (read-only during the
// speculation phase) but owns every piece of mutable scratch.
func newSpecBuilder(b *builder) *builder {
	n := b.g.NumVertices()
	return &builder{
		ix:         b.ix,
		g:          b.g,
		coder:      b.coder,
		k:          b.k,
		in:         b.in,
		out:        b.out,
		inByLabel:  b.inByLabel,
		outByLabel: b.outByLabel,
		seen:       make(map[dedupKey]struct{}),
		frontiers:  make(map[labelseq.Code]*kernelFrontier),
		fixedSet:   make(map[uint64]struct{}),
		visited:    make([]uint32, n*b.k),
		spec:       newSpecScratch(n),
	}
}

// speculate runs the KBS pair of v against the committed snapshot and
// returns the buffered trajectory.
func (b *builder) speculate(v graph.Vertex) specResult {
	b.spec.reset(b.ix.dict.Len())
	b.stats = BuildStats{}
	b.kbs(v, backward)
	b.kbs(v, forward)
	res := b.spec.cur
	res.v = v
	res.stats = b.stats
	b.spec.cur = specResult{}
	return res
}

// pendingSpec is the scheduler's slot for one rank position: the latest
// speculation for it (if any), the round it snapshotted, and how often a
// commit attempt found it stale.
type pendingSpec struct {
	res     specResult
	snap    uint64 // round stamp the speculation ran under
	retries uint8
	have    bool
}

// runParallelBuild processes the access order with the given worker count
// (>= 2). b is the committer: it owns the canonical lists that freeze will
// compact and is the only builder that ever mutates them or the dictionary.
func runParallelBuild(ix *Index, b *builder, workers int) {
	n := ix.g.NumVertices()
	b.dirtyOut = make([]uint64, n)
	b.dirtyIn = make([]uint64, n)

	ws := make([]*builder, workers)
	for i := range ws {
		ws[i] = newSpecBuilder(b)
	}
	c := &committer{b: b}

	specs := make([]pendingSpec, n) // indexed by rank position
	var toSpec []int32              // rank positions to (re-)speculate this round

	head := 0 // commit frontier: positions < head are committed
	window := workers
	for head < n {
		end := head + window
		if end > n {
			end = n
		}
		b.dirtyStamp++ // the new round's stamp

		// Speculation phase: workers claim the positions in
		// [head, end) that have no carried-over speculation. The
		// canonical lists and the dictionary are frozen until every
		// speculation finished.
		toSpec = toSpec[:0]
		for p := head; p < end; p++ {
			if !specs[p].have {
				toSpec = append(toSpec, int32(p))
			}
		}
		if len(toSpec) == 1 {
			// A lone retry at the commit frontier: not worth a
			// goroutine barrier.
			p := toSpec[0]
			specs[p].res = ws[0].speculate(ix.order[p])
			specs[p].snap = b.dirtyStamp
			specs[p].have = true
		} else {
			var cursor atomic.Int64
			var wg sync.WaitGroup
			for _, w := range ws {
				wg.Add(1)
				go func(w *builder) {
					defer wg.Done()
					for {
						i := int(cursor.Add(1)) - 1
						if i >= len(toSpec) {
							return
						}
						p := toSpec[i]
						specs[p].res = w.speculate(ix.order[p])
						specs[p].snap = b.dirtyStamp
						specs[p].have = true
					}
				}(w)
			}
			wg.Wait()
		}
		b.stats.Speculated += int64(len(toSpec))

		// Commit phase: advance the frontier in strict rank order.
		// Every commit stamps the lists it appends to, which is what
		// invalidates later speculations that read them.
		committed := 0
		for head < end {
			s := &specs[head]
			if c.validate(&s.res, s.snap) && c.apply(&s.res) {
				b.stats.addAlgo(s.res.stats)
				b.stats.Committed++
			} else if s.retries > 0 {
				// Second failure: re-run sequentially at the
				// commit slot instead of speculating again.
				b.kbs(s.res.v, backward)
				b.kbs(s.res.v, forward)
				b.stats.Rerun++
			} else {
				// Stale: throw the trajectory away and stop the
				// round. Next round re-speculates this vertex at
				// the commit frontier, where the retry is
				// guaranteed to validate; the speculations beyond
				// it stay pending.
				s.retries++
				s.have = false
				s.res = specResult{}
				break
			}
			*s = pendingSpec{} // release buffers eagerly
			head++
			committed++
		}
		b.stats.Windows++

		window = nextWindow(committed, workers)
	}
}

// nextWindow adapts the speculation depth to the commit throughput of the
// round just finished: the in-flight target tracks the observed clean-run
// length plus one batch per worker, so conflict-free stretches widen the
// window geometrically while conflict-heavy stretches (the hub prefix)
// keep it near the worker count. The schedule depends only on commit
// outcomes — which are themselves deterministic — never on worker timing.
func nextWindow(committed, workers int) int {
	window := committed + workers
	if lim := workers * maxWindowPerWorker; window > lim {
		window = lim
	}
	if window < workers {
		window = workers
	}
	return window
}

// Package core implements the RLC index — the paper's primary contribution
// (Sections IV and V): a 2-hop-style reachability index for recursive
// label-concatenated (RLC) queries (s, t, L+), where L is a concatenation of
// at most k edge labels under the Kleene plus.
//
// Every vertex v carries two entry sets (Definition 4):
//
//	Lin(v)  = {(u, L) | u ⇝ v, L ∈ Sk(u, v)}
//	Lout(v) = {(w, L) | v ⇝ w, L ∈ Sk(v, w)}
//
// where Sk(u, v) is the concise set of k-MRs of label sequences of paths
// from u to v. A query (s, t, L+) holds iff a hub x carries matching entries
// in Lout(s) and Lin(t), or a direct entry exists (Algorithm 1).
//
// The index is built by Algorithm 2: for every vertex in IN-OUT order, a
// backward and a forward kernel-based search (KBS), each consisting of a
// kernel-search phase (all label sequences up to length k) and a kernel-BFS
// phase (guided by the Kleene plus of each kernel candidate), with pruning
// rules PR1-PR3 making the index condensed (Definition 5, Theorem 2) while
// preserving soundness and completeness (Theorem 3).
package core

package core

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// randomBatch samples queries (valid constraints only) for g.
func randomBatch(r *rand.Rand, g *graph.Graph, k, count int) []BatchQuery {
	constraints := PrimitiveConstraints(g.NumLabels(), k)
	qs := make([]BatchQuery, count)
	for i := range qs {
		qs[i] = BatchQuery{
			S: graph.Vertex(r.Intn(g.NumVertices())),
			T: graph.Vertex(r.Intn(g.NumVertices())),
			L: constraints[r.Intn(len(constraints))],
		}
	}
	return qs
}

// TestQueryBatchMatchesQuery: QueryBatch must agree with Query position for
// position, whatever the worker count.
func TestQueryBatchMatchesQuery(t *testing.T) {
	r := rand.New(rand.NewSource(800))
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 20+r.Intn(30), 1+r.Intn(3), 40+r.Intn(150))
		ix := mustBuild(t, g, Options{K: 2})
		qs := randomBatch(r, g, 2, 500)
		want := make([]bool, len(qs))
		for i, q := range qs {
			ok, err := ix.Query(q.S, q.T, q.L)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = ok
		}
		for _, workers := range []int{0, 1, 2, 7} {
			res := ix.QueryBatch(qs, workers)
			if len(res) != len(qs) {
				t.Fatalf("workers=%d: %d results for %d queries", workers, len(res), len(qs))
			}
			for i, rr := range res {
				if rr.Err != nil {
					t.Fatalf("workers=%d query %d: %v", workers, i, rr.Err)
				}
				if rr.Reachable != want[i] {
					t.Fatalf("workers=%d query %d (%d,%d,%v): batch=%v query=%v",
						workers, i, qs[i].S, qs[i].T, qs[i].L, rr.Reachable, want[i])
				}
			}
		}
	}
}

// TestQueryBatchErrors: invalid queries fail individually with the same
// sentinel errors Query uses, without failing their neighbors.
func TestQueryBatchErrors(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	qs := []BatchQuery{
		{S: 0, T: 5, L: labelseq.Seq{1, 0}},    // valid
		{S: -1, T: 1, L: labelseq.Seq{0}},      // vertex out of range
		{S: 0, T: 1, L: labelseq.Seq{}},        // empty constraint
		{S: 0, T: 1, L: labelseq.Seq{0, 0}},    // not a minimum repeat
		{S: 0, T: 1, L: labelseq.Seq{9}},       // unknown label
		{S: 0, T: 1, L: labelseq.Seq{0, 1, 0}}, // longer than k
		{S: 2, T: 5, L: labelseq.Seq{1, 0}},    // valid (Example 4 Q1)
	}
	res := ix.QueryBatch(qs, 4)
	wantErr := []error{nil, ErrVertexRange, ErrEmptyConstraint, ErrNotMinimumRepeat, ErrUnknownLabel, ErrConstraintTooLong, nil}
	for i, w := range wantErr {
		if w == nil {
			if res[i].Err != nil {
				t.Errorf("query %d: unexpected error %v", i, res[i].Err)
			}
			continue
		}
		if !errors.Is(res[i].Err, w) {
			t.Errorf("query %d: err = %v, want %v", i, res[i].Err, w)
		}
	}
	if !res[6].Reachable {
		t.Error("valid query after invalid ones lost its answer")
	}
	if len(ix.QueryBatch(nil, 4)) != 0 {
		t.Error("empty batch must return an empty result slice")
	}

	// QueryBatchInto must fully overwrite a dirty reused buffer.
	dirty := make([]BatchResult, len(qs)+3)
	for i := range dirty {
		dirty[i] = BatchResult{Reachable: true, Err: ErrVertexRange}
	}
	into := ix.QueryBatchInto(qs, 2, dirty)
	if len(into) != len(qs) {
		t.Fatalf("QueryBatchInto returned %d results for %d queries", len(into), len(qs))
	}
	for i := range into {
		sameErr := (into[i].Err == nil) == (res[i].Err == nil) &&
			(wantErr[i] == nil || errors.Is(into[i].Err, wantErr[i]))
		if into[i].Reachable != res[i].Reachable || !sameErr {
			t.Errorf("QueryBatchInto[%d] = %+v, want %+v", i, into[i], res[i])
		}
	}
}

// TestQueryBatchAndQueryConcurrent hammers one frozen index from many
// goroutines mixing QueryBatch and plain Query — run with -race to make
// this meaningful (the documented contract is that the frozen index is
// safe for any concurrent read mix).
func TestQueryBatchAndQueryConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	g := randomGraph(r, 40, 3, 160)
	ix := mustBuild(t, g, Options{K: 2})
	qs := randomBatch(r, g, 2, 400)
	want := ix.QueryBatch(qs, 1)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(seed int64) {
			defer wg.Done()
			for round := 0; round < 10; round++ {
				res := ix.QueryBatch(qs, 3)
				for i := range res {
					if res[i].Err != nil || res[i].Reachable != want[i].Reachable {
						t.Errorf("concurrent batch diverged at %d: %+v", i, res[i])
						return
					}
				}
			}
		}(int64(w))
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for i := 0; i < 1000; i++ {
				q := qs[rr.Intn(len(qs))]
				if _, err := ix.Query(q.S, q.T, q.L); err != nil {
					t.Errorf("concurrent query failed: %v", err)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
}

// TestCSRMatchesTraversalOnRandomGraphs is the CSR-vs-reference equivalence
// check: on random graphs, every query answered from the frozen flat layout
// (both singly and batched) must agree with the online-traversal reference.
func TestCSRMatchesTraversalOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(802))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		n := 4 + r.Intn(12)
		labels := 1 + r.Intn(3)
		g := randomGraph(r, n, labels, 2+r.Intn(4*n))
		k := 1 + r.Intn(3)
		ix := mustBuild(t, g, Options{K: k})

		var qs []BatchQuery
		for _, l := range PrimitiveConstraints(labels, k) {
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					qs = append(qs, BatchQuery{S: s, T: tt, L: l})
				}
			}
		}
		res := ix.QueryBatch(qs, 0)
		for i, q := range qs {
			if res[i].Err != nil {
				t.Fatalf("trial %d: %v", trial, res[i].Err)
			}
			single, err := ix.Query(q.S, q.T, q.L)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := traversal.EvalRLC(g, q.S, q.T, q.L)
			if err != nil {
				t.Fatal(err)
			}
			if single != ref || res[i].Reachable != ref {
				t.Fatalf("trial %d (%d,%d,%v): query=%v batch=%v traversal=%v\nedges: %v",
					trial, q.S, q.T, q.L, single, res[i].Reachable, ref, g.Edges())
			}
		}
	}
}

// BenchmarkQueryBatch compares sequential Query throughput with QueryBatch
// at GOMAXPROCS on one mid-size random graph.
func BenchmarkQueryBatch(b *testing.B) {
	r := rand.New(rand.NewSource(803))
	g := randomGraph(r, 2000, 4, 10000)
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	qs := randomBatch(r, g, 2, 4096)

	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				if _, err := ix.Query(q.S, q.T, q.L); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.QueryBatch(qs, 0)
		}
	})
	b.Run("batch-into", func(b *testing.B) {
		b.ReportAllocs()
		var buf []BatchResult
		for i := 0; i < b.N; i++ {
			buf = ix.QueryBatchInto(qs, 0, buf)
		}
	})
}

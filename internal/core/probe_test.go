package core

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TestTargetProbeAgreesWithQuery: Reaches(s) must equal Query(s, t, L+) for
// every source, target and constraint.
func TestTargetProbeAgreesWithQuery(t *testing.T) {
	r := rand.New(rand.NewSource(500))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(10)
		g := randomGraph(r, n, 2, 3*n)
		ix := mustBuild(t, g, Options{K: 2})
		for _, l := range PrimitiveConstraints(2, 2) {
			for tt := graph.Vertex(0); int(tt) < n; tt++ {
				probe, err := ix.NewTargetProbe(tt, l)
				if err != nil {
					t.Fatal(err)
				}
				for s := graph.Vertex(0); int(s) < n; s++ {
					want, err := ix.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if got := probe.Reaches(s); got != want {
						t.Fatalf("trial %d: probe(%d->%d, %v) = %v, Query = %v", trial, s, tt, l, got, want)
					}
				}
			}
		}
	}
}

func TestTargetProbeValidation(t *testing.T) {
	ix := mustBuild(t, graph.Fig2(), Options{K: 2})
	if _, err := ix.NewTargetProbe(0, labelseq.Seq{0, 0}); err == nil {
		t.Error("non-primitive constraint must fail")
	}
	if _, err := ix.NewTargetProbe(99, labelseq.Seq{0}); err == nil {
		t.Error("out-of-range target must fail")
	}
	// A constraint no path carries: probe must answer false everywhere.
	probe, err := ix.NewTargetProbe(0, labelseq.Seq{2, 0}) // (l3, l1) never occurs as an MR toward v1
	if err != nil {
		t.Fatal(err)
	}
	for s := graph.Vertex(0); int(s) < 6; s++ {
		want, _ := ix.Query(s, 0, labelseq.Seq{2, 0})
		if probe.Reaches(s) != want {
			t.Fatalf("probe disagrees with query at s=%d", s)
		}
	}
}

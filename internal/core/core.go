package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// MaxK bounds the recursive k accepted by Build. Real workloads use k <= 4
// (Section VI); 8 leaves generous headroom while keeping packed sequence
// codes in one machine word for typical label-set sizes.
const MaxK = 8

// DefaultK is the recursive k used when Options.K is zero — the value the
// paper identifies as covering practical query logs (Section VI-A).
const DefaultK = 2

// Errors returned by Build and Query.
var (
	ErrNotMinimumRepeat  = errors.New("rlc: query constraint is not a minimum repeat (L != MR(L)); the even-path fragment is out of scope")
	ErrConstraintTooLong = errors.New("rlc: query constraint longer than the index's recursive k")
	ErrUnknownLabel      = errors.New("rlc: constraint uses a label outside the graph's label set")
	ErrVertexRange       = errors.New("rlc: vertex id out of range")
	ErrEmptyConstraint   = errors.New("rlc: empty constraint")
)

// Order selects the vertex processing order of Algorithm 2. The paper uses
// OrderInOut; the alternatives exist for the ordering ablation (they change
// index size and build time, never correctness).
type Order uint8

const (
	// OrderInOut sorts by (|out(v)|+1)*(|in(v)|+1) descending — the
	// IN-OUT strategy of Section V-B.
	OrderInOut Order = iota
	// OrderDegreeSum sorts by |out(v)|+|in(v)| descending.
	OrderDegreeSum
	// OrderNatural processes vertices by ascending id.
	OrderNatural
	// OrderReverse processes vertices by descending id — a deliberately
	// bad order for the ablation.
	OrderReverse
)

// Options configures Build.
type Options struct {
	// K is the recursive k: the maximum number of concatenated labels in
	// a supported constraint. Zero means DefaultK.
	K int

	// Order is the vertex processing order; zero value is the paper's
	// IN-OUT strategy.
	Order Order

	// BuildWorkers is the number of concurrent construction workers: 0
	// means GOMAXPROCS, 1 forces the plain sequential path, and negative
	// values are rejected by Build. The worker count never changes the
	// result — the parallel scheduler (scheduler.go) is deterministic and
	// produces entry lists, dictionary, and serialized bytes identical to
	// the sequential build's — it only changes how fast the index is
	// built.
	BuildWorkers int

	// DisablePR1/2/3 switch off the corresponding pruning rule. The index
	// remains sound and complete with any combination disabled (it only
	// grows and takes longer to build); the flags exist for the ablation
	// benchmarks and for the robustness property tests.
	DisablePR1 bool
	DisablePR2 bool
	DisablePR3 bool

	// DisablePacked skips deriving the bit-parallel packed MR-set form
	// after the build freezes (see packed.go), leaving queries on the
	// linear-scan entry path and WriteSnapshot without packed sections.
	// Answers are identical either way; the flag exists for the packed/scan
	// differential tests and the bench baseline.
	DisablePacked bool

	// MaxIndexBytes caps the index size (same accounting as SizeBytes; 0 =
	// unlimited). When the full index exceeds it, the builder keeps complete
	// entry lists only for the access-order prefix that fits and demotes
	// every other vertex to compact may-reach filters whose negative answers
	// are definitive; queries touching a demoted vertex fall back to an
	// exact graph traversal only when the filters cannot exclude them (see
	// tiers.go). Answers are identical to an unbudgeted index either way.
	// The cap is a target with a floor: the filter tier always keeps ~24
	// bytes per demoted vertex plus its MR-union pool, so a budget below
	// that floor yields the floor. A budget the full index already fits is
	// a no-op. Negative values are rejected by Build.
	MaxIndexBytes int64
}

func (o Options) k() int {
	if o.K == 0 {
		return DefaultK
	}
	return o.K
}

// entry is one index entry: the hub's access rank (0-based position in the
// IN-OUT order, so lists sort ascending by construction) and the interned
// minimum repeat. 8 bytes per entry, matching the paper's (vid, mr) schema.
type entry struct {
	hub int32
	mr  labelseq.ID
}

// Index is an immutable RLC index over a fixed graph. Queries are safe for
// concurrent use; building is not concurrent.
//
// All Lin/Lout entry lists live in one contiguous entries slice in CSR
// fashion: the Lout lists of every vertex first, then the Lin lists, with
// one offset array per direction. Build and Load construct into per-vertex
// slices (inserts stay cheap) and freeze compacts the result, so the hot
// query path walks flat memory instead of chasing n separately allocated
// list headers.
type Index struct {
	g    *graph.Graph
	k    int
	opts Options

	dict  *labelseq.Dict
	order []graph.Vertex // rank -> vertex id
	rank  []int32        // vertex id -> rank

	entries []entry // all Lout lists, then all Lin lists
	outOff  []int32 // len n+1; Lout(v) = entries[outOff[v]:outOff[v+1]]
	inOff   []int32 // len n+1; Lin(v)  = entries[inOff[v]:inOff[v+1]]

	// packed, when non-nil, is the bit-parallel hash-consed form of the
	// entry lists (packed.go); queryByID answers from it and falls back to
	// the entry scan when absent.
	packed *packed

	// tiers, when non-nil, marks a size-budgeted index (tiers.go): the
	// entry lists of vertices ranked at or past tiers.retainedRanks are
	// truncated and queries touching them go through may-reach filters
	// with an exact traversal fallback.
	tiers *tiers
}

// lout returns the Lout(v) slice of the frozen entries array.
func (ix *Index) lout(v graph.Vertex) []entry {
	return ix.entries[ix.outOff[v]:ix.outOff[v+1]]
}

// lin returns the Lin(v) slice of the frozen entries array.
func (ix *Index) lin(v graph.Vertex) []entry {
	return ix.entries[ix.inOff[v]:ix.inOff[v+1]]
}

// freeze compacts per-vertex entry lists into the flat CSR layout. The
// per-list entry order is preserved, so anything pinned on it (hub-sorted
// lists, the serialized v1 format) is unaffected.
func (ix *Index) freeze(out, in [][]entry) error {
	n := len(out)
	total := int64(0)
	for v := 0; v < n; v++ {
		total += int64(len(out[v]) + len(in[v]))
	}
	if total > math.MaxInt32 {
		return fmt.Errorf("rlc: index has %d entries, exceeding the 2^31-1 CSR offset limit", total)
	}
	ix.entries = make([]entry, 0, total)
	ix.outOff = make([]int32, n+1)
	ix.inOff = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ix.outOff[v] = int32(len(ix.entries))
		ix.entries = append(ix.entries, out[v]...)
	}
	ix.outOff[n] = int32(len(ix.entries))
	for v := 0; v < n; v++ {
		ix.inOff[v] = int32(len(ix.entries))
		ix.entries = append(ix.entries, in[v]...)
	}
	ix.inOff[n] = int32(len(ix.entries))
	return nil
}

// Graph returns the graph the index was built over.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// K returns the recursive k the index supports.
func (ix *Index) K() int { return ix.k }

// AccessOrder returns the IN-OUT vertex order used during construction;
// element i is the vertex with access id i+1 in the paper's numbering.
func (ix *Index) AccessOrder() []graph.Vertex { return ix.order }

// NumEntries returns the total number of index entries across all Lin and
// Lout sets.
func (ix *Index) NumEntries() int64 {
	return int64(len(ix.entries))
}

// SizeBytes estimates the resident size of the index: 8 bytes per entry
// plus the minimum-repeat dictionary, mirroring how the paper reports index
// size. On a size-budgeted index the (truncated) entries plus the filter
// tier are counted, so the number is directly comparable to MaxIndexBytes.
func (ix *Index) SizeBytes() int64 {
	size := ix.NumEntries() * 8
	for i := 0; i < ix.dict.Len(); i++ {
		size += int64(len(ix.dict.Seq(labelseq.ID(i))))*4 + 16
	}
	// CSR offset arrays (one per direction).
	size += int64(len(ix.inOff)+len(ix.outOff)) * 4
	if ix.tiers != nil {
		size += ix.tiers.sizeBytes()
	}
	return size
}

// Stats summarizes an index for reporting.
type Stats struct {
	K           int
	Vertices    int
	Edges       int
	Entries     int64
	InEntries   int64
	OutEntries  int64
	DistinctMRs int
	SizeBytes   int64

	// Packed summarizes the bit-parallel representation when present
	// (Packed.Groups == 0 and Packed.Sets == 0 on an unpacked index).
	Packed PackedStats

	// Tiers summarizes the size-budgeted filter tier when present (the
	// zero value on an untiered index).
	Tiers TierStats
}

// Stats returns summary statistics.
func (ix *Index) Stats() Stats {
	n := ix.g.NumVertices()
	out := int64(ix.outOff[n] - ix.outOff[0])
	in := int64(ix.inOff[n] - ix.inOff[0])
	return Stats{
		K:           ix.k,
		Vertices:    ix.g.NumVertices(),
		Edges:       ix.g.NumEdges(),
		Entries:     in + out,
		InEntries:   in,
		OutEntries:  out,
		DistinctMRs: ix.dict.Len(),
		SizeBytes:   ix.SizeBytes(),
		Packed:      ix.PackedStats(),
		Tiers:       ix.TierStats(),
	}
}

// BuildOptions returns the Options the index was built with (the zero value
// plus K for snapshot-opened indexes). The mutable serving layer uses it to
// make background folds inherit the base index's build configuration.
func (ix *Index) BuildOptions() Options { return ix.opts }

// EntryView is a decoded index entry for inspection, validation and tests.
type EntryView struct {
	Hub graph.Vertex
	MR  labelseq.Seq
}

// LinEntries returns the decoded Lin(v) set.
func (ix *Index) LinEntries(v graph.Vertex) []EntryView { return ix.decode(ix.lin(v)) }

// LoutEntries returns the decoded Lout(v) set.
func (ix *Index) LoutEntries(v graph.Vertex) []EntryView { return ix.decode(ix.lout(v)) }

func (ix *Index) decode(list []entry) []EntryView {
	out := make([]EntryView, len(list))
	for i, e := range list {
		out[i] = EntryView{Hub: ix.order[e.hub], MR: ix.dict.Seq(e.mr).Clone()}
	}
	return out
}

// Query answers the RLC query (s, t, L+) — Algorithm 1. The constraint must
// be a minimum repeat of length at most K() over the graph's labels;
// otherwise an error describes the violation. A valid query allocates
// nothing (enforced by rlcvet's noalloc check and a testing.AllocsPerRun
// regression test); only rejection paths build errors.
//
//rlc:noalloc
func (ix *Index) Query(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if err := ix.checkQuery(s, t, l); err != nil { //rlc:allocok rejection path builds the validation error
		return false, err
	}
	mr := ix.dict.Lookup(l)
	if mr == labelseq.InvalidID {
		// No path anywhere in the graph has this k-MR, or it would have
		// been interned during construction.
		return false, nil
	}
	return ix.queryByID(s, t, mr), nil
}

// QueryRLC is Query with a context, satisfying the facade's Querier
// interface alongside the hybrid evaluator and the serving layer. An index
// probe is two binary searches and a merge join — nanoseconds — so the
// context is consulted once on entry, never mid-probe.
func (ix *Index) QueryRLC(ctx context.Context, s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	return ix.Query(s, t, l)
}

// QueryStar answers the Kleene-star variant (s, t, L*), which reduces to the
// plus query after the s == t check (Section III-B).
func (ix *Index) QueryStar(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if err := ix.checkQuery(s, t, l); err != nil {
		return false, err
	}
	if s == t {
		return true, nil
	}
	return ix.Query(s, t, l)
}

func (ix *Index) checkQuery(s, t graph.Vertex, l labelseq.Seq) error {
	if err := ix.checkVertices(s, t); err != nil {
		return err
	}
	return ix.checkConstraint(l)
}

func (ix *Index) checkVertices(s, t graph.Vertex) error {
	if s < 0 || int(s) >= ix.g.NumVertices() || t < 0 || int(t) >= ix.g.NumVertices() {
		return fmt.Errorf("%w: s=%d t=%d n=%d", ErrVertexRange, s, t, ix.g.NumVertices())
	}
	return nil
}

// checkShape is the cheap prefix of checkConstraint: length bounds and
// label range — everything Coder.Encode needs to be safe. The batch path
// runs it per query and skips the primitivity check on memo hits.
func (ix *Index) checkShape(l labelseq.Seq) error {
	if len(l) == 0 {
		return ErrEmptyConstraint
	}
	if len(l) > ix.k {
		return fmt.Errorf("%w: |L|=%d > k=%d", ErrConstraintTooLong, len(l), ix.k)
	}
	for _, lab := range l {
		if lab < 0 || int(lab) >= ix.g.NumLabels() {
			return fmt.Errorf("%w: label %d, |L|=%d", ErrUnknownLabel, lab, ix.g.NumLabels())
		}
	}
	return nil
}

func (ix *Index) checkConstraint(l labelseq.Seq) error {
	if err := ix.checkShape(l); err != nil {
		return err
	}
	if !labelseq.IsPrimitive(l) {
		return fmt.Errorf("%w: %v", ErrNotMinimumRepeat, l)
	}
	return nil
}

// queryByID is the hot path of Query and QueryBatch on the frozen CSR
// layout: Case 2 (direct entries) then Case 1 (merge join). During
// construction the equivalent PR1 check runs against the builder's mutable
// per-vertex lists instead (see builder.insert). On a size-budgeted index,
// queries touching a demoted vertex dispatch to the three-tier path
// (tiers.go) instead; both endpoints retained stays the plain exact probe
// (their lists are complete).
//
//rlc:noalloc
func (ix *Index) queryByID(s, t graph.Vertex, mr labelseq.ID) bool {
	if tr := ix.tiers; tr != nil {
		if ix.rank[s] >= tr.retainedRanks || ix.rank[t] >= tr.retainedRanks {
			return ix.queryTiered(s, t, mr)
		}
		tr.exactHits.Add(1)
	}
	if ix.packed != nil {
		return ix.queryPacked(s, t, mr)
	}
	outS, inT := ix.lout(s), ix.lin(t)
	if hasEntry(outS, ix.rank[t], mr) || hasEntry(inT, ix.rank[s], mr) {
		return true
	}
	return joinHas(outS, inT, mr)
}

// hasEntry reports whether list (sorted by hub) contains (hub, mr). The
// binary search is spelled out rather than delegated to sort.Search so the
// probe stays closure-free: this runs twice per query, and rlcvet's noalloc
// check holds the whole chain to zero allocating operations.
//
//rlc:noalloc
func hasEntry(list []entry, hub int32, mr labelseq.ID) bool {
	i, j := 0, len(list)
	for i < j {
		h := int(uint(i+j) >> 1)
		if list[h].hub < hub {
			i = h + 1
		} else {
			j = h
		}
	}
	for ; i < len(list) && list[i].hub == hub; i++ {
		if list[i].mr == mr {
			return true
		}
	}
	return false
}

// joinHas merge-joins two hub-sorted entry lists and reports whether some
// hub carries mr on both sides — Case 1 of Definition 4.
//
//rlc:noalloc
func joinHas(a, b []entry, mr labelseq.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].hub < b[j].hub:
			i++
		case a[i].hub > b[j].hub:
			j++
		default:
			hub := a[i].hub
			foundA, foundB := false, false
			for ; i < len(a) && a[i].hub == hub; i++ {
				if a[i].mr == mr {
					foundA = true
				}
			}
			for ; j < len(b) && b[j].hub == hub; j++ {
				if b[j].mr == mr {
					foundB = true
				}
			}
			if foundA && foundB {
				return true
			}
		}
	}
	return false
}

// Package core implements the RLC index — the paper's primary contribution
// (Sections IV and V): a 2-hop-style reachability index for recursive
// label-concatenated (RLC) queries (s, t, L+), where L is a concatenation of
// at most k edge labels under the Kleene plus.
//
// Every vertex v carries two entry sets (Definition 4):
//
//	Lin(v)  = {(u, L) | u ⇝ v, L ∈ Sk(u, v)}
//	Lout(v) = {(w, L) | v ⇝ w, L ∈ Sk(v, w)}
//
// where Sk(u, v) is the concise set of k-MRs of label sequences of paths
// from u to v. A query (s, t, L+) holds iff a hub x carries matching entries
// in Lout(s) and Lin(t), or a direct entry exists (Algorithm 1).
//
// The index is built by Algorithm 2: for every vertex in IN-OUT order, a
// backward and a forward kernel-based search (KBS), each consisting of a
// kernel-search phase (all label sequences up to length k) and a kernel-BFS
// phase (guided by the Kleene plus of each kernel candidate), with pruning
// rules PR1-PR3 making the index condensed (Definition 5, Theorem 2) while
// preserving soundness and completeness (Theorem 3).
package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// MaxK bounds the recursive k accepted by Build. Real workloads use k <= 4
// (Section VI); 8 leaves generous headroom while keeping packed sequence
// codes in one machine word for typical label-set sizes.
const MaxK = 8

// DefaultK is the recursive k used when Options.K is zero — the value the
// paper identifies as covering practical query logs (Section VI-A).
const DefaultK = 2

// Errors returned by Build and Query.
var (
	ErrNotMinimumRepeat  = errors.New("rlc: query constraint is not a minimum repeat (L != MR(L)); the even-path fragment is out of scope")
	ErrConstraintTooLong = errors.New("rlc: query constraint longer than the index's recursive k")
	ErrUnknownLabel      = errors.New("rlc: constraint uses a label outside the graph's label set")
	ErrVertexRange       = errors.New("rlc: vertex id out of range")
	ErrEmptyConstraint   = errors.New("rlc: empty constraint")
)

// Order selects the vertex processing order of Algorithm 2. The paper uses
// OrderInOut; the alternatives exist for the ordering ablation (they change
// index size and build time, never correctness).
type Order uint8

const (
	// OrderInOut sorts by (|out(v)|+1)*(|in(v)|+1) descending — the
	// IN-OUT strategy of Section V-B.
	OrderInOut Order = iota
	// OrderDegreeSum sorts by |out(v)|+|in(v)| descending.
	OrderDegreeSum
	// OrderNatural processes vertices by ascending id.
	OrderNatural
	// OrderReverse processes vertices by descending id — a deliberately
	// bad order for the ablation.
	OrderReverse
)

// Options configures Build.
type Options struct {
	// K is the recursive k: the maximum number of concatenated labels in
	// a supported constraint. Zero means DefaultK.
	K int

	// Order is the vertex processing order; zero value is the paper's
	// IN-OUT strategy.
	Order Order

	// DisablePR1/2/3 switch off the corresponding pruning rule. The index
	// remains sound and complete with any combination disabled (it only
	// grows and takes longer to build); the flags exist for the ablation
	// benchmarks and for the robustness property tests.
	DisablePR1 bool
	DisablePR2 bool
	DisablePR3 bool
}

func (o Options) k() int {
	if o.K == 0 {
		return DefaultK
	}
	return o.K
}

// entry is one index entry: the hub's access rank (0-based position in the
// IN-OUT order, so lists sort ascending by construction) and the interned
// minimum repeat. 8 bytes per entry, matching the paper's (vid, mr) schema.
type entry struct {
	hub int32
	mr  labelseq.ID
}

// Index is an immutable RLC index over a fixed graph. Queries are safe for
// concurrent use; building is not concurrent.
type Index struct {
	g    *graph.Graph
	k    int
	opts Options

	dict  *labelseq.Dict
	order []graph.Vertex // rank -> vertex id
	rank  []int32        // vertex id -> rank

	in  [][]entry // Lin(v), indexed by vertex id
	out [][]entry // Lout(v)
}

// Graph returns the graph the index was built over.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// K returns the recursive k the index supports.
func (ix *Index) K() int { return ix.k }

// AccessOrder returns the IN-OUT vertex order used during construction;
// element i is the vertex with access id i+1 in the paper's numbering.
func (ix *Index) AccessOrder() []graph.Vertex { return ix.order }

// NumEntries returns the total number of index entries across all Lin and
// Lout sets.
func (ix *Index) NumEntries() int64 {
	var total int64
	for v := range ix.in {
		total += int64(len(ix.in[v]) + len(ix.out[v]))
	}
	return total
}

// SizeBytes estimates the resident size of the index: 8 bytes per entry
// plus the minimum-repeat dictionary, mirroring how the paper reports index
// size.
func (ix *Index) SizeBytes() int64 {
	size := ix.NumEntries() * 8
	for i := 0; i < ix.dict.Len(); i++ {
		size += int64(len(ix.dict.Seq(labelseq.ID(i))))*4 + 16
	}
	// Per-vertex slice headers.
	size += int64(len(ix.in)+len(ix.out)) * 24
	return size
}

// Stats summarizes an index for reporting.
type Stats struct {
	K           int
	Vertices    int
	Edges       int
	Entries     int64
	InEntries   int64
	OutEntries  int64
	DistinctMRs int
	SizeBytes   int64
}

// Stats returns summary statistics.
func (ix *Index) Stats() Stats {
	var in, out int64
	for v := range ix.in {
		in += int64(len(ix.in[v]))
		out += int64(len(ix.out[v]))
	}
	return Stats{
		K:           ix.k,
		Vertices:    ix.g.NumVertices(),
		Edges:       ix.g.NumEdges(),
		Entries:     in + out,
		InEntries:   in,
		OutEntries:  out,
		DistinctMRs: ix.dict.Len(),
		SizeBytes:   ix.SizeBytes(),
	}
}

// EntryView is a decoded index entry for inspection, validation and tests.
type EntryView struct {
	Hub graph.Vertex
	MR  labelseq.Seq
}

// LinEntries returns the decoded Lin(v) set.
func (ix *Index) LinEntries(v graph.Vertex) []EntryView { return ix.decode(ix.in[v]) }

// LoutEntries returns the decoded Lout(v) set.
func (ix *Index) LoutEntries(v graph.Vertex) []EntryView { return ix.decode(ix.out[v]) }

func (ix *Index) decode(list []entry) []EntryView {
	out := make([]EntryView, len(list))
	for i, e := range list {
		out[i] = EntryView{Hub: ix.order[e.hub], MR: ix.dict.Seq(e.mr).Clone()}
	}
	return out
}

// Query answers the RLC query (s, t, L+) — Algorithm 1. The constraint must
// be a minimum repeat of length at most K() over the graph's labels;
// otherwise an error describes the violation.
func (ix *Index) Query(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if err := ix.checkQuery(s, t, l); err != nil {
		return false, err
	}
	mr := ix.dict.Lookup(l)
	if mr == labelseq.InvalidID {
		// No path anywhere in the graph has this k-MR, or it would have
		// been interned during construction.
		return false, nil
	}
	return ix.queryByID(s, t, mr), nil
}

// QueryStar answers the Kleene-star variant (s, t, L*), which reduces to the
// plus query after the s == t check (Section III-B).
func (ix *Index) QueryStar(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if err := ix.checkQuery(s, t, l); err != nil {
		return false, err
	}
	if s == t {
		return true, nil
	}
	return ix.Query(s, t, l)
}

func (ix *Index) checkQuery(s, t graph.Vertex, l labelseq.Seq) error {
	if s < 0 || int(s) >= ix.g.NumVertices() || t < 0 || int(t) >= ix.g.NumVertices() {
		return fmt.Errorf("%w: s=%d t=%d n=%d", ErrVertexRange, s, t, ix.g.NumVertices())
	}
	if len(l) == 0 {
		return ErrEmptyConstraint
	}
	if len(l) > ix.k {
		return fmt.Errorf("%w: |L|=%d > k=%d", ErrConstraintTooLong, len(l), ix.k)
	}
	for _, lab := range l {
		if lab < 0 || int(lab) >= ix.g.NumLabels() {
			return fmt.Errorf("%w: label %d, |L|=%d", ErrUnknownLabel, lab, ix.g.NumLabels())
		}
	}
	if !labelseq.IsPrimitive(l) {
		return fmt.Errorf("%w: %v", ErrNotMinimumRepeat, l)
	}
	return nil
}

// queryByID is the hot path shared by the public Query and the PR1 check
// during construction: Case 2 (direct entries) then Case 1 (merge join).
func (ix *Index) queryByID(s, t graph.Vertex, mr labelseq.ID) bool {
	if hasEntry(ix.out[s], ix.rank[t], mr) || hasEntry(ix.in[t], ix.rank[s], mr) {
		return true
	}
	return joinHas(ix.out[s], ix.in[t], mr)
}

// hasEntry reports whether list (sorted by hub) contains (hub, mr).
func hasEntry(list []entry, hub int32, mr labelseq.ID) bool {
	i := sort.Search(len(list), func(i int) bool { return list[i].hub >= hub })
	for ; i < len(list) && list[i].hub == hub; i++ {
		if list[i].mr == mr {
			return true
		}
	}
	return false
}

// joinHas merge-joins two hub-sorted entry lists and reports whether some
// hub carries mr on both sides — Case 1 of Definition 4.
func joinHas(a, b []entry, mr labelseq.ID) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].hub < b[j].hub:
			i++
		case a[i].hub > b[j].hub:
			j++
		default:
			hub := a[i].hub
			foundA, foundB := false, false
			for ; i < len(a) && a[i].hub == hub; i++ {
				if a[i].mr == mr {
					foundA = true
				}
			}
			for ; j < len(b) && b[j].hub == hub; j++ {
				if b[j].mr == mr {
					foundB = true
				}
			}
			if foundA && foundB {
				return true
			}
		}
	}
	return false
}

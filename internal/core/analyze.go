package core

import (
	"sort"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Distribution summarizes how index entries spread over vertices or hubs.
// The paper's discussion of Figures 5 and 6 attributes the true/false query
// asymmetry on BA- vs ER-graphs to exactly this skew: on BA-graphs, a few
// high-degree hubs dominate the entry lists.
type Distribution struct {
	// Count is the number of carriers (vertices or hubs) with at least
	// one entry.
	Count int
	// Max, Mean and P99 describe entries per carrier.
	Max  int
	Mean float64
	P99  int
	// TopShare is the fraction of all entries held by the top 1% of
	// carriers — the skew measure.
	TopShare float64
}

// EntryDistribution returns the distribution of |Lin(v)| + |Lout(v)| over
// vertices.
func (ix *Index) EntryDistribution() Distribution {
	n := ix.g.NumVertices()
	counts := make([]int, 0, n)
	for v := graph.Vertex(0); int(v) < n; v++ {
		if c := len(ix.lin(v)) + len(ix.lout(v)); c > 0 {
			counts = append(counts, c)
		}
	}
	return summarize(counts)
}

// HubDistribution returns the distribution of entries per hub: how many
// entries across the whole index name each hub vertex. High concentration
// means queries repeatedly merge-join through the same few hubs.
func (ix *Index) HubDistribution() Distribution {
	perHub := make([]int, len(ix.order))
	for _, e := range ix.entries {
		perHub[e.hub]++
	}
	counts := perHub[:0]
	for _, c := range perHub {
		if c > 0 {
			counts = append(counts, c)
		}
	}
	return summarize(counts)
}

// HubOf returns the vertex acting as hub for the i-th position of the
// access order — convenience for reports.
func (ix *Index) HubOf(rank int) graph.Vertex { return ix.order[rank] }

func summarize(counts []int) Distribution {
	var d Distribution
	d.Count = len(counts)
	if d.Count == 0 {
		return d
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	total := 0
	for _, c := range counts {
		total += c
		if c > d.Max {
			d.Max = c
		}
	}
	d.Mean = float64(total) / float64(len(counts))
	d.P99 = counts[len(counts)*1/100]
	top := len(counts) / 100
	if top == 0 {
		top = 1
	}
	topSum := 0
	for _, c := range counts[:top] {
		topSum += c
	}
	d.TopShare = float64(topSum) / float64(total)
	return d
}

package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// TestPackedBuildDefaults pins the representation switch: Build derives the
// packed form unless DisablePacked, and both forms report coherent stats.
func TestPackedBuildDefaults(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	if !ix.Packed() {
		t.Fatal("default Build did not pack")
	}
	st := ix.Stats()
	if st.Packed.Groups == 0 || st.Packed.Sets == 0 || st.Packed.PoolWords < 1 {
		t.Fatalf("implausible packed stats: %+v", st.Packed)
	}
	if st.Packed.Sets > int(st.Packed.Groups) {
		t.Fatalf("more distinct sets (%d) than groups (%d)", st.Packed.Sets, st.Packed.Groups)
	}
	if err := ix.VerifyPacked(); err != nil {
		t.Fatalf("fresh packed form fails self-verification: %v", err)
	}
	scan := mustBuild(t, g, Options{K: 2, DisablePacked: true})
	if scan.Packed() {
		t.Fatal("DisablePacked still packed")
	}
	if got := scan.Stats().Packed; got != (PackedStats{}) {
		t.Fatalf("unpacked index reports packed stats %+v", got)
	}
}

// packedPropertyGraphs are the generator family of the equivalence suite:
// Erdős–Rényi, Barabási–Albert, and the uniform random multigraph.
func packedPropertyGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	er, err := gen.ER(60, 220, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := gen.BA(60, 3, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	return map[string]*graph.Graph{
		"er":      er,
		"ba":      ba,
		"uniform": randomGraph(r, 48, 3, 200),
	}
}

// TestPackedEquivalenceProperty: across the generator family, k 1..3, and
// every build worker count, the packed index answers every (s, t, L) exactly
// like the scan index, and both match the online traversal on a sample.
func TestPackedEquivalenceProperty(t *testing.T) {
	for name, g := range packedPropertyGraphs(t) {
		for k := 1; k <= 3; k++ {
			for _, workers := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/k%d/w%d", name, k, workers), func(t *testing.T) {
					packed := mustBuild(t, g, Options{K: k, BuildWorkers: workers})
					scan := mustBuild(t, g, Options{K: k, BuildWorkers: workers, DisablePacked: true})
					if !packed.Packed() || scan.Packed() {
						t.Fatalf("representation flags wrong: packed=%v scan=%v", packed.Packed(), scan.Packed())
					}
					// Exhaustive packed == scan over every pair and constraint.
					assertEquivalent(t, g, scan, packed)
					// Sampled equality against the traversal oracle ties both
					// representations to ground truth.
					r := rand.New(rand.NewSource(int64(k*10 + workers)))
					constraints := PrimitiveConstraints(g.NumLabels(), k)
					n := g.NumVertices()
					for i := 0; i < 150; i++ {
						s := graph.Vertex(r.Intn(n))
						d := graph.Vertex(r.Intn(n))
						l := constraints[r.Intn(len(constraints))]
						got, err := packed.Query(s, d, l)
						if err != nil {
							t.Fatalf("Query(%d, %d, %v): %v", s, d, l, err)
						}
						want, err := traversal.EvalRLC(g, s, d, l)
						if err != nil {
							t.Fatalf("EvalRLC(%d, %d, %v): %v", s, d, l, err)
						}
						if got != want {
							t.Fatalf("Query(%d, %d, %v) = %v, traversal says %v", s, d, l, got, want)
						}
					}
				})
			}
		}
	}
}

// TestPackedDeterministicAcrossWorkers: the packed sections, like the entry
// sections they derive from, are byte-identical at every worker count.
func TestPackedDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	g := randomGraph(r, 64, 3, 300)
	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		ix := mustBuild(t, g, Options{K: 2, BuildWorkers: workers})
		var buf bytes.Buffer
		if err := ix.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("bundle bytes differ at %d workers", workers)
		}
	}
}

// packedSectionBytes concatenates the packed sections of a rendered bundle
// as (id u32, length u64, payload) records — the byte image the golden test
// pins.
func packedSectionBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	var tmp [8]byte
	for _, id := range []uint32{secPackedMeta, secPackedGroups, secPackedOutOff, secPackedInOff, secPackedSets, secPackedSetDesc} {
		b, ok := f.Section(id)
		if !ok {
			t.Fatalf("bundle missing packed section %d", id)
		}
		binary.LittleEndian.PutUint32(tmp[:4], id)
		out = append(out, tmp[:4]...)
		binary.LittleEndian.PutUint64(tmp[:], uint64(len(b)))
		out = append(out, tmp[:]...)
		out = append(out, b...)
	}
	return out
}

// TestGoldenPackedSections pins the packed sections' bytes for the paper's
// Fig. 2 graph at k = 2. A failure means the on-disk packed format or the
// deterministic interning order changed — both are compatibility breaks for
// bundles already in the field. Regenerate deliberately with
// RLC_UPDATE_GOLDEN=1.
func TestGoldenPackedSections(t *testing.T) {
	_, data := bundleBytes(t, graph.Fig2(), 2)
	got := packedSectionBytes(t, data)
	golden := filepath.Join("testdata", "fig2_k2_packed.golden")
	if os.Getenv("RLC_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("packed sections differ from golden: got %d bytes, want %d", len(got), len(want))
	}
}

// TestPrePackedBundleBackCompat pins the upgrade story in both directions:
// a bundle written without the packed form is exactly the old format (the
// packed block changes nothing outside its own six sections), it still
// opens, and it answers identically — just from the scan path.
func TestPrePackedBundleBackCompat(t *testing.T) {
	g := graph.Fig2()
	packedIx, packedData := bundleBytes(t, g, 2)

	plain := mustBuild(t, g, Options{K: 2, DisablePacked: true})
	var buf bytes.Buffer
	if err := plain.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	plainData := buf.Bytes()

	// The unpacked bundle carries no packed sections; every section it does
	// carry is byte-identical to the packed bundle's. Old readers therefore
	// see exactly the bytes they always did.
	pf, err := snapshot.OpenBytes(packedData)
	if err != nil {
		t.Fatal(err)
	}
	uf, err := snapshot.OpenBytes(plainData)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []uint32{secPackedMeta, secPackedGroups, secPackedOutOff, secPackedInOff, secPackedSets, secPackedSetDesc} {
		if _, ok := uf.Section(id); ok {
			t.Fatalf("unpacked bundle carries packed section %d", id)
		}
	}
	for _, info := range uf.Sections() {
		pb, ok := pf.Section(info.ID)
		if !ok {
			t.Fatalf("packed bundle missing shared section %d", info.ID)
		}
		ub, _ := uf.Section(info.ID)
		if !bytes.Equal(pb, ub) {
			t.Fatalf("shared section %d differs between packed and unpacked bundles", info.ID)
		}
	}

	// The pre-packed bundle opens onto the scan path and answers identically.
	s, err := OpenSnapshotBytes(plainData)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Index().Packed() {
		t.Fatal("pre-packed bundle opened as packed")
	}
	assertEquivalent(t, g, packedIx, s.Index())

	// And the packed bundle opens onto the packed path, same answers again.
	ps, err := OpenSnapshotBytes(packedData)
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	if err := ps.Verify(); err != nil {
		t.Fatal(err)
	}
	if !ps.Index().Packed() {
		t.Fatal("packed bundle opened without the packed form")
	}
	assertEquivalent(t, g, packedIx, ps.Index())
}

// TestV1LoadPacks: the v1 two-file round trip comes back packed, answering
// like the original.
func TestV1LoadPacks(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomGraph(r, 40, 3, 160)
	ix := mustBuild(t, g, Options{K: 2})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Packed() {
		t.Fatal("v1 load did not derive the packed form")
	}
	assertEquivalent(t, g, ix, loaded)
}

// TestSnapshotPackedSemanticCorruption drives openPacked's structural
// validation: bundles whose packed block is internally inconsistent must be
// rejected typed, never panic, never open.
func TestSnapshotPackedSemanticCorruption(t *testing.T) {
	_, base := bundleBytes(t, graph.Fig2(), 2)
	cases := []struct {
		name   string
		mutate func(secs map[uint32][]byte)
	}{
		{"packed-meta-truncated", func(s map[uint32][]byte) { s[secPackedMeta] = s[secPackedMeta][:8] }},
		{"packed-setcount-drift", func(s map[uint32][]byte) { s[secPackedMeta][0]++ }},
		{"packed-reserved-nonzero", func(s map[uint32][]byte) { s[secPackedMeta][4] = 1 }},
		{"packed-groupcount-drift", func(s map[uint32][]byte) { s[secPackedMeta][8]++ }},
		{"packed-wordcount-drift", func(s map[uint32][]byte) { s[secPackedMeta][16]++ }},
		{"packed-missing-groups", func(s map[uint32][]byte) { delete(s, secPackedGroups) }},
		{"packed-missing-outoff", func(s map[uint32][]byte) { delete(s, secPackedOutOff) }},
		{"packed-missing-inoff", func(s map[uint32][]byte) { delete(s, secPackedInOff) }},
		{"packed-missing-sets", func(s map[uint32][]byte) { delete(s, secPackedSets) }},
		{"packed-missing-desc", func(s map[uint32][]byte) { delete(s, secPackedSetDesc) }},
		{"packed-desc-span-zero", func(s map[uint32][]byte) {
			copy(s[secPackedSetDesc][8:12], []byte{0, 0, 0, 0})
		}},
		{"packed-desc-window-oob", func(s map[uint32][]byte) {
			copy(s[secPackedSetDesc][4:8], []byte{0xff, 0xff, 0xff, 0xff})
		}},
		{"packed-desc-off-oob", func(s map[uint32][]byte) {
			copy(s[secPackedSetDesc][0:4], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"packed-outoff-nonzero", func(s map[uint32][]byte) { s[secPackedOutOff][0] = 1 }},
		{"packed-inoff-decreasing", func(s map[uint32][]byte) {
			b := s[secPackedInOff]
			copy(b[len(b)-4:], []byte{0, 0, 0, 0})
		}},
		{"packed-set-oob", func(s map[uint32][]byte) {
			b := s[secPackedGroups]
			copy(b[4:8], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"packed-hub-negative", func(s map[uint32][]byte) {
			b := s[secPackedGroups]
			copy(b[0:4], []byte{0xff, 0xff, 0xff, 0xff})
		}},
		{"packed-hub-duplicate", func(s map[uint32][]byte) {
			// Find a per-vertex list with >= 2 groups and give its first two
			// the same hub — a violation of the strictly-increasing invariant
			// groupHas's binary search relies on.
			g := s[secPackedGroups]
			for _, offB := range [][]byte{s[secPackedOutOff], s[secPackedInOff]} {
				for i := 0; i+8 <= len(offB); i += 4 {
					lo := int(binary.LittleEndian.Uint32(offB[i:]))
					hi := int(binary.LittleEndian.Uint32(offB[i+4:]))
					if hi-lo >= 2 {
						copy(g[(lo+1)*8:(lo+1)*8+4], g[lo*8:lo*8+4])
						return
					}
				}
			}
			panic("fixture has no packed list with >= 2 groups")
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := rebundle(t, base, tc.mutate)
			s, err := OpenSnapshotBytes(data)
			if err == nil {
				s.Close()
				t.Fatal("packed corruption accepted")
			}
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("error not typed ErrCorrupt: %v", err)
			}
		})
	}
}

// TestSnapshotVerifyCatchesPackedDivergence pins the deepest integrity
// layer: a packed block that is structurally sound and carries valid
// checksums (rebundle recomputes them) but disagrees with the entry array
// must fail Verify — queries answer from the packed form, so checksums
// alone cannot vouch for the bundle.
func TestSnapshotVerifyCatchesPackedDivergence(t *testing.T) {
	_, base := bundleBytes(t, graph.Fig2(), 2)
	data := rebundle(t, base, func(s map[uint32][]byte) {
		s[secPackedSets][0] ^= 0x01 // toggle MR id 0 in the first pooled set
	})
	s, err := OpenSnapshotBytes(data)
	if err != nil {
		t.Fatalf("structurally sound divergence failed open: %v", err)
	}
	defer s.Close()
	err = s.Verify()
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("Verify = %v, want typed ErrCorrupt", err)
	}
}

// BenchmarkQueryPacked compares the bit-parallel packed query path against
// the linear-scan baseline on one mid-size random graph, for single queries
// and the batch path.
func BenchmarkQueryPacked(b *testing.B) {
	r := rand.New(rand.NewSource(803))
	g := randomGraph(r, 2000, 4, 10000)
	packed, err := Build(g, Options{K: 2})
	if err != nil {
		b.Fatal(err)
	}
	scan, err := Build(g, Options{K: 2, DisablePacked: true})
	if err != nil {
		b.Fatal(err)
	}
	qs := randomBatch(r, g, 2, 4096)
	for _, v := range []struct {
		name string
		ix   *Index
	}{{"packed", packed}, {"scan", scan}} {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range qs {
					if _, err := v.ix.Query(q.S, q.T, q.L); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(v.name+"-batch-into", func(b *testing.B) {
			b.ReportAllocs()
			var buf []BatchResult
			for i := 0; i < b.N; i++ {
				buf = v.ix.QueryBatchInto(qs, 0, buf)
			}
		})
	}
}

// FuzzPackedEquivalence is the differential fuzzer of the packed
// representation: arbitrary bytes decode into a small graph plus a query
// (the quickGraphSpec scheme), which is answered simultaneously by the
// packed index, the scan index, and — to anchor both — the online
// traversal. Any divergence fails.
func FuzzPackedEquivalence(f *testing.F) {
	f.Add([]byte{1, 0, 2, 3, 1, 4}, uint8(1), uint8(4), []byte{0, 1})
	f.Add([]byte{0, 0, 1, 1, 1, 2, 2, 2, 0}, uint8(0), uint8(2), []byte{1})
	f.Add([]byte{5, 2, 6, 6, 2, 5}, uint8(5), uint8(6), []byte{2, 0})
	f.Fuzz(func(t *testing.T, edges []byte, s, d uint8, l []byte) {
		spec := quickGraphSpec{Edges: edges, S: s, T: d, L: l}
		g := spec.graph()
		if g.NumVertices() == 0 {
			return
		}
		packed, err := Build(g, Options{K: 2})
		if err != nil {
			t.Fatalf("packed build: %v", err)
		}
		scan, err := Build(g, Options{K: 2, DisablePacked: true})
		if err != nil {
			t.Fatalf("scan build: %v", err)
		}
		if !packed.Packed() || scan.Packed() {
			t.Fatal("representation flags wrong")
		}
		src := graph.Vertex(spec.S) % 10
		dst := graph.Vertex(spec.T) % 10
		q := spec.constraint()
		pGot, pErr := packed.Query(src, dst, q)
		sGot, sErr := scan.Query(src, dst, q)
		if (pErr == nil) != (sErr == nil) || pGot != sGot {
			t.Fatalf("Query(%d, %d, %v): packed (%v, %v), scan (%v, %v)", src, dst, q, pGot, pErr, sGot, sErr)
		}
		if pErr == nil {
			want, terr := traversal.EvalRLC(g, src, dst, q)
			if terr != nil {
				t.Fatalf("EvalRLC: %v", terr)
			}
			if pGot != want {
				t.Fatalf("Query(%d, %d, %v) = %v, traversal says %v", src, dst, q, pGot, want)
			}
		}
		// Beyond the single derived query, the two representations must agree
		// on every interned MR for the derived pair — this is where bitset
		// packing and hash-consing bugs actually surface.
		for mr := 0; mr < packed.dict.Len(); mr++ {
			if packed.queryByID(src, dst, labelseq.ID(mr)) != scan.queryByID(src, dst, labelseq.ID(mr)) {
				t.Fatalf("queryByID(%d, %d, mr %d) diverges between packed and scan", src, dst, mr)
			}
		}
	})
}

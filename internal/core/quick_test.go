package core

import (
	"testing"
	"testing/quick"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// quickGraphSpec decodes arbitrary bytes into a small graph plus a query,
// the generator for the property checks below.
type quickGraphSpec struct {
	Edges []byte
	S, T  uint8
	L     []byte
}

func (q quickGraphSpec) graph() *graph.Graph {
	b := graph.NewBuilder(10, 3)
	for i := 0; i+2 < len(q.Edges); i += 3 {
		b.AddEdge(graph.Vertex(q.Edges[i]%10), graph.Label(q.Edges[i+1]%3), graph.Vertex(q.Edges[i+2]%10))
	}
	return b.Build()
}

func (q quickGraphSpec) constraint() labelseq.Seq {
	n := 1 + len(q.L)%2 // length 1 or 2
	l := make(labelseq.Seq, 0, n)
	for i := 0; i < n && i < len(q.L); i++ {
		l = append(l, labelseq.Label(q.L[i]%3))
	}
	if len(l) == 0 {
		l = labelseq.Seq{0}
	}
	if !labelseq.IsPrimitive(l) {
		l = l[:1]
	}
	return l
}

// TestQuickIndexMatchesTraversal: for arbitrary generated graphs and
// queries, the index answer equals the online-traversal answer.
func TestQuickIndexMatchesTraversal(t *testing.T) {
	f := func(spec quickGraphSpec) bool {
		g := spec.graph()
		if g.NumVertices() == 0 {
			return true
		}
		ix, err := Build(g, Options{K: 2})
		if err != nil {
			return false
		}
		s := graph.Vertex(spec.S) % 10
		tt := graph.Vertex(spec.T) % 10
		l := spec.constraint()
		got, err := ix.Query(s, tt, l)
		if err != nil {
			return false
		}
		want, err := traversal.EvalRLC(g, s, tt, l)
		if err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestQuickProbesMatchQuery: both probe directions agree with Query on
// arbitrary inputs.
func TestQuickProbesMatchQuery(t *testing.T) {
	f := func(spec quickGraphSpec) bool {
		g := spec.graph()
		ix, err := Build(g, Options{K: 2})
		if err != nil {
			return false
		}
		s := graph.Vertex(spec.S) % 10
		tt := graph.Vertex(spec.T) % 10
		l := spec.constraint()
		want, err := ix.Query(s, tt, l)
		if err != nil {
			return false
		}
		tp, err := ix.NewTargetProbe(tt, l)
		if err != nil {
			return false
		}
		sp, err := ix.NewSourceProbe(s, l)
		if err != nil {
			return false
		}
		return tp.Reaches(s) == want && sp.Reaches(tt) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

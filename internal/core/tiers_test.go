package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// tierBudgets returns the budget sweep for a graph whose full (unbudgeted)
// index is full: effectively zero (everything demoted), two mid fractions,
// and the full size itself (nothing demoted — tiering is a no-op).
func tierBudgets(full int64) []int64 {
	return []int64{1, full / 4, full / 2, full}
}

// TestTierBuildDefaults pins the representation switch: a budget below the
// full index size produces a tiered index with coherent stats; no budget (or
// a large one) leaves the index untiered.
func TestTierBuildDefaults(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(41)), 48, 3, 220)
	plain := mustBuild(t, g, Options{K: 2})
	if plain.Tiered() {
		t.Fatal("unbudgeted build is tiered")
	}
	if got := plain.Stats().Tiers; got != (TierStats{}) {
		t.Fatalf("untiered index reports tier stats %+v", got)
	}

	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: 1})
	if !ix.Tiered() {
		t.Fatal("budgeted build is not tiered")
	}
	st := ix.TierStats()
	if st.Budget != 1 {
		t.Fatalf("Budget = %d, want 1", st.Budget)
	}
	if st.RetainedVertices+st.DemotedVertices != g.NumVertices() || st.DemotedVertices == 0 {
		t.Fatalf("implausible tier split: %+v", st)
	}
	if st.FilterBytes <= 0 || st.BloomBitsPerFilter < 64 || st.BloomBitsPerFilter > 4096 {
		t.Fatalf("implausible filter shape: %+v", st)
	}
	if err := ix.VerifyTiers(); err != nil {
		t.Fatalf("fresh tiered index fails self-verification: %v", err)
	}
	// Demotion is physical: the demoted vertices' entry lists are gone.
	if ix.NumEntries() >= plain.NumEntries() {
		t.Fatalf("budget 1 kept %d of %d entries", ix.NumEntries(), plain.NumEntries())
	}

	if _, err := Build(g, Options{K: 2, MaxIndexBytes: -1}); err == nil {
		t.Fatal("negative MaxIndexBytes accepted")
	}
}

// TestTierEquivalenceProperty is the tentpole's correctness pin: across the
// generator family, k 1..3, and the budget sweep (including effectively-zero
// and no-demotion budgets), the budgeted index answers every (s, t, L)
// exactly like the unbudgeted one, and both match the online traversal on a
// sample. Filters may only cost speed, never answers.
func TestTierEquivalenceProperty(t *testing.T) {
	for name, g := range packedPropertyGraphs(t) {
		for k := 1; k <= 3; k++ {
			full := mustBuild(t, g, Options{K: k})
			// The budget-1 build is the floor: the smallest layout the tier
			// machinery can produce for this index. Budgets below the floor
			// yield exactly it, so every build obeys size <= max(budget, floor).
			floor := mustBuild(t, g, Options{K: k, MaxIndexBytes: 1}).SizeBytes()
			for _, budget := range tierBudgets(full.SizeBytes()) {
				t.Run(fmt.Sprintf("%s/k%d/b%d", name, k, budget), func(t *testing.T) {
					ix := mustBuild(t, g, Options{K: k, MaxIndexBytes: budget})
					if budget >= full.SizeBytes() {
						if ix.Tiered() {
							t.Fatal("budget >= full size still tiered")
						}
					} else if !ix.Tiered() {
						t.Fatalf("budget %d of %d not tiered", budget, full.SizeBytes())
					}
					if sz := ix.SizeBytes(); sz > budget && sz > floor {
						t.Fatalf("size %d exceeds both budget %d and floor %d", sz, budget, floor)
					} else if sz > full.SizeBytes() {
						t.Fatalf("budgeted size %d exceeds the unbudgeted %d", sz, full.SizeBytes())
					}
					assertEquivalent(t, g, full, ix)
					r := rand.New(rand.NewSource(int64(k*100 + len(name))))
					constraints := PrimitiveConstraints(g.NumLabels(), k)
					n := g.NumVertices()
					for i := 0; i < 150; i++ {
						s := graph.Vertex(r.Intn(n))
						d := graph.Vertex(r.Intn(n))
						l := constraints[r.Intn(len(constraints))]
						got, err := ix.Query(s, d, l)
						if err != nil {
							t.Fatalf("Query(%d, %d, %v): %v", s, d, l, err)
						}
						want, err := traversal.EvalRLC(g, s, d, l)
						if err != nil {
							t.Fatalf("EvalRLC(%d, %d, %v): %v", s, d, l, err)
						}
						if got != want {
							t.Fatalf("Query(%d, %d, %v) = %v, traversal says %v", s, d, l, got, want)
						}
					}
				})
			}
		}
	}
}

// TestTierCannotShrinkStaysExact pins the guardrail on overhead-dominated
// graphs: when every vertex's entry lists are cheaper than the per-vertex
// filter floor, no tiered layout beats the full index, so ANY budget leaves
// the index untiered and bit-identical to an unbudgeted build — a size
// budget must never grow the index.
func TestTierCannotShrinkStaysExact(t *testing.T) {
	g := graph.Fig2() // tiny lists: filters cannot pay for themselves
	plain, plainData := bundleBytes(t, g, 2)
	for _, budget := range []int64{1, plain.SizeBytes() / 2} {
		ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: budget})
		if ix.Tiered() {
			t.Fatalf("budget %d tiered an overhead-dominated graph (size %d -> %d)",
				budget, plain.SizeBytes(), ix.SizeBytes())
		}
		if ix.SizeBytes() != plain.SizeBytes() {
			t.Fatalf("untiered fallback changed the size: %d, want %d", ix.SizeBytes(), plain.SizeBytes())
		}
		var buf bytes.Buffer
		if err := ix.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(plainData, buf.Bytes()) {
			t.Fatalf("budget %d bundle differs from the unbudgeted bundle", budget)
		}
	}
}

// TestTierAllFilteredStillExact is the budget-smaller-than-one-vertex edge
// case: a budget of one byte demotes every vertex — the index is pure
// filters — yet every answer stays exact via the filter/traversal tiers.
func TestTierAllFilteredStillExact(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := randomGraph(r, 48, 3, 220)
	full := mustBuild(t, g, Options{K: 2})
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: 1})
	st := ix.TierStats()
	if st.RetainedVertices != 0 || st.DemotedVertices != g.NumVertices() {
		t.Fatalf("budget 1 retained %d vertices", st.RetainedVertices)
	}
	if ix.NumEntries() != 0 {
		t.Fatalf("all-demoted index still has %d entries", ix.NumEntries())
	}
	assertEquivalent(t, g, full, ix)
	if st = ix.TierStats(); st.ExactHits != 0 {
		t.Fatalf("all-demoted index recorded %d exact hits", st.ExactHits)
	}
	if st.FilterDefinite+st.FilterMaybe == 0 {
		t.Fatal("no filter-tier traffic recorded")
	}
}

// TestTierBudgetLargerThanIndex pins the no-op direction byte-for-byte: a
// budget the full index fits produces a bundle bit-identical to an
// unbudgeted build's, so budgeted deployments of small graphs change
// nothing on disk.
func TestTierBudgetLargerThanIndex(t *testing.T) {
	g := graph.Fig2()
	plain, plainData := bundleBytes(t, g, 2)
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: plain.SizeBytes() * 10})
	if ix.Tiered() {
		t.Fatal("oversized budget still tiered")
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainData, buf.Bytes()) {
		t.Fatal("oversized-budget bundle differs from unbudgeted bundle")
	}
}

// TestTierDeterministicAcrossWorkers: the tier sections, like everything
// they derive from, are byte-identical at every worker count.
func TestTierDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	g := randomGraph(r, 64, 3, 300)
	full := mustBuild(t, g, Options{K: 2})
	budget := full.SizeBytes() / 3
	var want []byte
	for _, workers := range []int{1, 2, 4, 8} {
		ix := mustBuild(t, g, Options{K: 2, BuildWorkers: workers, MaxIndexBytes: budget})
		if !ix.Tiered() {
			t.Fatalf("budget %d not tiered at %d workers", budget, workers)
		}
		var buf bytes.Buffer
		if err := ix.WriteSnapshot(&buf); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Fatalf("tiered bundle bytes differ at %d workers", workers)
		}
	}
}

// TestTierSnapshotRoundTrip covers every tier mix: all-demoted, partial, and
// (with packing disabled too) each representation combination round-trips
// through a bundle with identical answers, a preserved budget, and truthful
// BuildOptions for fold inheritance.
func TestTierSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	g := randomGraph(r, 40, 3, 180)
	full := mustBuild(t, g, Options{K: 2})
	for _, disablePacked := range []bool{false, true} {
		for _, budget := range tierBudgets(full.SizeBytes()) {
			name := fmt.Sprintf("packed=%v/b%d", !disablePacked, budget)
			t.Run(name, func(t *testing.T) {
				ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: budget, DisablePacked: disablePacked})
				var buf bytes.Buffer
				if err := ix.WriteSnapshot(&buf); err != nil {
					t.Fatal(err)
				}
				s, err := OpenSnapshotBytes(buf.Bytes())
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if err := s.Verify(); err != nil {
					t.Fatalf("fresh tiered bundle fails Verify: %v", err)
				}
				got := s.Index()
				if got.Tiered() != ix.Tiered() {
					t.Fatalf("Tiered() = %v after round trip, want %v", got.Tiered(), ix.Tiered())
				}
				if ix.Tiered() {
					want, have := ix.TierStats(), got.TierStats()
					if want.Budget != have.Budget || want.RetainedVertices != have.RetainedVertices ||
						want.DemotedVertices != have.DemotedVertices || want.UnionSets != have.UnionSets ||
						want.BloomBitsPerFilter != have.BloomBitsPerFilter || want.FilterBytes != have.FilterBytes {
						t.Fatalf("tier stats drift: built %+v, opened %+v", want, have)
					}
					if got.BuildOptions().MaxIndexBytes != budget {
						t.Fatalf("BuildOptions().MaxIndexBytes = %d after open, want %d",
							got.BuildOptions().MaxIndexBytes, budget)
					}
				}
				assertEquivalent(t, g, full, got)
			})
		}
	}
}

// TestTierV1WriteRejected: the v1 format cannot carry the filter tier, so
// writing a tiered index through it must fail loudly instead of silently
// persisting an index missing most of its vertices.
func TestTierV1WriteRejected(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(41)), 48, 3, 220)
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: 1})
	if !ix.Tiered() {
		t.Fatal("fixture did not tier")
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); !errors.Is(err, ErrTieredV1) {
		t.Fatalf("Write on tiered index = %v, want ErrTieredV1", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("rejected write still emitted %d bytes", buf.Len())
	}
}

// TestTierCounters pins the per-tier accounting: both-retained queries land
// in ExactHits, filter-decided queries in FilterDefinite, and traversal
// fallbacks in FilterMaybe — and the three cover all queries.
func TestTierCounters(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	g := randomGraph(r, 48, 3, 220)
	full := mustBuild(t, g, Options{K: 2})
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: full.SizeBytes() / 2})
	st := ix.TierStats()
	if st.RetainedVertices == 0 || st.DemotedVertices == 0 {
		t.Fatalf("test needs a mixed split, got %+v", st)
	}
	queries := 0
	for s := graph.Vertex(0); int(s) < g.NumVertices(); s++ {
		for d := graph.Vertex(0); int(d) < g.NumVertices(); d++ {
			for mr := 0; mr < ix.dict.Len(); mr++ {
				ix.queryByID(s, d, labelseq.ID(mr))
				queries++
			}
		}
	}
	st = ix.TierStats()
	if st.ExactHits == 0 || st.FilterDefinite == 0 {
		t.Fatalf("tier counters did not move: %+v", st)
	}
	if st.ExactHits+st.FilterDefinite+st.FilterMaybe != int64(queries) {
		t.Fatalf("counters sum to %d, ran %d queries: %+v",
			st.ExactHits+st.FilterDefinite+st.FilterMaybe, queries, st)
	}
}

// TestTierProbesDelegate: the precomputed Source/Target probes (the hybrid
// evaluator's and the dynamic overlay's inner loop) must stay exact when
// either endpoint is demoted.
func TestTierProbesDelegate(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	g := randomGraph(r, 40, 3, 180)
	full := mustBuild(t, g, Options{K: 2})
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: full.SizeBytes() / 2})
	if !ix.Tiered() {
		t.Fatal("not tiered")
	}
	constraints := []labelseq.Seq{{0}, {1}, {0, 1}, {2, 0}}
	n := g.NumVertices()
	for _, l := range constraints {
		for fixed := graph.Vertex(0); int(fixed) < n; fixed++ {
			tp, err := ix.NewTargetProbe(fixed, l)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := ix.NewSourceProbe(fixed, l)
			if err != nil {
				t.Fatal(err)
			}
			for v := graph.Vertex(0); int(v) < n; v++ {
				if want, _ := full.Query(v, fixed, l); tp.Reaches(v) != want {
					t.Fatalf("TargetProbe(%d).Reaches(%d) with %v != %v", fixed, v, l, want)
				}
				if want, _ := full.Query(fixed, v, l); sp.Reaches(v) != want {
					t.Fatalf("SourceProbe(%d).Reaches(%d) with %v != %v", fixed, v, l, want)
				}
			}
		}
	}
}

// tieredBundle builds a tiered bundle of g for corruption tests and returns
// its bytes (scan representation keeps the mutation offsets stable and the
// sections minimal).
func tieredBundle(t *testing.T, g *graph.Graph, budgetDiv int64, disablePacked bool) []byte {
	t.Helper()
	full := mustBuild(t, g, Options{K: 2, DisablePacked: disablePacked})
	budget := int64(1)
	if budgetDiv > 0 {
		budget = full.SizeBytes() / budgetDiv
	}
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: budget, DisablePacked: disablePacked})
	if !ix.Tiered() {
		t.Fatalf("budget %d of %d not tiered", budget, full.SizeBytes())
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotTierSemanticCorruption drives openTiers' structural
// validation: bundles whose tier block is internally inconsistent must be
// rejected typed, never panic, never open.
func TestSnapshotTierSemanticCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	base := tieredBundle(t, randomGraph(r, 40, 3, 180), 2, false)
	cases := []struct {
		name   string
		mutate func(secs map[uint32][]byte)
	}{
		{"tier-meta-truncated", func(s map[uint32][]byte) { s[secTierMeta] = s[secTierMeta][:8] }},
		{"tier-reserved-nonzero", func(s map[uint32][]byte) { s[secTierMeta][12] = 1 }},
		{"tier-retains-everything", func(s map[uint32][]byte) {
			binary.LittleEndian.PutUint32(s[secTierMeta][0:], uint32(40))
		}},
		{"tier-retained-drift", func(s map[uint32][]byte) { s[secTierMeta][0]++ }},
		{"tier-bloomwords-zero", func(s map[uint32][]byte) {
			binary.LittleEndian.PutUint32(s[secTierMeta][4:], 0)
		}},
		{"tier-bloomwords-not-pow2", func(s map[uint32][]byte) {
			binary.LittleEndian.PutUint32(s[secTierMeta][4:], 3)
		}},
		{"tier-bloomwords-huge", func(s map[uint32][]byte) {
			binary.LittleEndian.PutUint32(s[secTierMeta][4:], 128)
		}},
		{"tier-budget-zero", func(s map[uint32][]byte) {
			binary.LittleEndian.PutUint64(s[secTierMeta][24:], 0)
		}},
		{"tier-setcount-drift", func(s map[uint32][]byte) { s[secTierMeta][8]++ }},
		{"tier-wordcount-drift", func(s map[uint32][]byte) { s[secTierMeta][16]++ }},
		{"tier-missing-union-out", func(s map[uint32][]byte) { delete(s, secTierUnionOut) }},
		{"tier-missing-union-in", func(s map[uint32][]byte) { delete(s, secTierUnionIn) }},
		{"tier-missing-sets", func(s map[uint32][]byte) { delete(s, secTierSets) }},
		{"tier-missing-desc", func(s map[uint32][]byte) { delete(s, secTierSetDesc) }},
		{"tier-missing-bloom", func(s map[uint32][]byte) { delete(s, secTierBloom) }},
		{"tier-union-set-oob", func(s map[uint32][]byte) {
			copy(s[secTierUnionOut][0:4], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"tier-desc-span-zero", func(s map[uint32][]byte) {
			copy(s[secTierSetDesc][8:12], []byte{0, 0, 0, 0})
		}},
		{"tier-desc-window-oob", func(s map[uint32][]byte) {
			copy(s[secTierSetDesc][4:8], []byte{0xff, 0xff, 0xff, 0xff})
		}},
		{"tier-desc-off-oob", func(s map[uint32][]byte) {
			copy(s[secTierSetDesc][0:4], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := rebundle(t, base, tc.mutate)
			s, err := OpenSnapshotBytes(data)
			if err == nil {
				s.Close()
				t.Fatal("tier corruption accepted")
			}
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("error not typed ErrCorrupt: %v", err)
			}
		})
	}
}

// TestSnapshotVerifyCatchesTierDivergence pins the semantic layer: a tier
// block that is structurally sound (and re-checksummed clean) but stapled to
// the entry array of an untiered build of the same graph must fail Verify —
// the tier split and the entries would describe two different indexes.
func TestSnapshotVerifyCatchesTierDivergence(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	g := randomGraph(r, 40, 3, 180)
	tiered := tieredBundle(t, g, 2, true)
	full := mustBuild(t, g, Options{K: 2, DisablePacked: true})
	var fullBuf bytes.Buffer
	if err := full.WriteSnapshot(&fullBuf); err != nil {
		t.Fatal(err)
	}
	fullF, err := snapshot.OpenBytes(fullBuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	// Transplant the untiered build's (complete) entry sections into the
	// tiered bundle, adjusting the meta entry count to match.
	data := rebundle(t, tiered, func(s map[uint32][]byte) {
		for _, id := range []uint32{secEntries, secIndexOutOff, secIndexInOff} {
			b, ok := fullF.Section(id)
			if !ok {
				t.Fatalf("full bundle missing section %d", id)
			}
			s[id] = append([]byte(nil), b...)
		}
		binary.LittleEndian.PutUint64(s[secMeta][32:], uint64(full.NumEntries()))
	})
	s, err := OpenSnapshotBytes(data)
	if err != nil {
		t.Fatalf("structurally sound divergence failed open: %v", err)
	}
	defer s.Close()
	err = s.Verify()
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("Verify = %v, want typed ErrCorrupt", err)
	}
}

// TestTierFilterProbeAllocFree pins the satellite noalloc guarantee at
// runtime: a query the filters decide (definite FALSE on the demoted tier)
// allocates nothing — the whole probe chain is bit arithmetic. (rlcvet's
// noalloc check enforces the same property statically.)
func TestTierFilterProbeAllocFree(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	g := randomGraph(r, 48, 3, 220)
	full := mustBuild(t, g, Options{K: 2})
	ix := mustBuild(t, g, Options{K: 2, MaxIndexBytes: full.SizeBytes() / 2})
	if !ix.Tiered() {
		t.Fatal("not tiered")
	}
	// Find a query the filter tier answers definitively FALSE.
	var qs, qt graph.Vertex
	var seq labelseq.Seq
	found := false
search:
	for s := graph.Vertex(0); int(s) < g.NumVertices(); s++ {
		for d := graph.Vertex(0); int(d) < g.NumVertices(); d++ {
			if ix.rank[s] < ix.tiers.retainedRanks && ix.rank[d] < ix.tiers.retainedRanks {
				continue
			}
			for mr := 0; mr < ix.dict.Len(); mr++ {
				if ix.probeTiered(s, d, labelseq.ID(mr)) == tierFalse {
					qs, qt, seq = s, d, ix.dict.Seq(labelseq.ID(mr))
					found = true
					break search
				}
			}
		}
	}
	if !found {
		t.Fatal("no definite-FALSE filter query in fixture")
	}
	allocs := testing.AllocsPerRun(200, func() {
		if ok, err := ix.Query(qs, qt, seq); ok || err != nil {
			t.Fatalf("Query(%d, %d, %v) = (%v, %v), want definite false", qs, qt, seq, ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("definite-FALSE filter probe allocates %.1f times per query", allocs)
	}
}

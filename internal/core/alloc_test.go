package core

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// The tests in this file are the runtime counterpart of rlcvet's noalloc
// check: the analyzer proves the annotated functions contain no allocating
// operations outside waived lines, and these tests pin the end-to-end
// behavior — a valid query through the public API costs zero heap
// allocations — so a regression that sneaks in through an unannotated
// callee (or an escape-analysis change in a new toolchain) still fails CI.
// Both representations are pinned: the bit-parallel packed path (the
// default) and the linear-scan fallback that pre-packed bundles serve.

func allocTestIndex(t *testing.T, disablePacked bool) *Index {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	g := randomGraph(r, 64, 3, 512)
	return mustBuild(t, g, Options{K: 3, DisablePacked: disablePacked})
}

func allocTestVariants(t *testing.T) map[string]*Index {
	t.Helper()
	return map[string]*Index{
		"packed": allocTestIndex(t, false),
		"scan":   allocTestIndex(t, true),
	}
}

func TestQueryAllocFree(t *testing.T) {
	for name, ix := range allocTestVariants(t) {
		t.Run(name, func(t *testing.T) {
			seqs := []labelseq.Seq{{0}, {1, 2}, {2, 0, 1}}
			for _, l := range seqs {
				l := l
				if _, err := ix.Query(3, 4, l); err != nil {
					t.Fatalf("Query warm-up: %v", err)
				}
				avg := testing.AllocsPerRun(200, func() {
					if _, err := ix.Query(3, 4, l); err != nil {
						panic(err)
					}
				})
				if avg != 0 {
					t.Errorf("Query(|L|=%d): %.1f allocs/op, want 0", len(l), avg)
				}
			}
		})
	}
}

func TestQueryBatchIntoAllocFree(t *testing.T) {
	for name, ix := range allocTestVariants(t) {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(11))
			queries := make([]BatchQuery, 256)
			for i := range queries {
				queries[i] = BatchQuery{
					S: graph.Vertex(r.Intn(64)),
					T: graph.Vertex(r.Intn(64)),
					L: labelseq.Seq{labelseq.Label(r.Intn(3))},
				}
			}
			// An adequately sized reused buffer and a single worker is the
			// documented allocation-free configuration of QueryBatchInto.
			results := make([]BatchResult, 0, len(queries))
			results = ix.QueryBatchInto(queries, 1, results)
			avg := testing.AllocsPerRun(50, func() {
				results = ix.QueryBatchInto(queries, 1, results)
			})
			if avg != 0 {
				t.Errorf("QueryBatchInto(reused buffer, 1 worker): %.1f allocs/op, want 0", avg)
			}
			for i, res := range results {
				if res.Err != nil {
					t.Fatalf("query %d: %v", i, res.Err)
				}
			}
		})
	}
}

package core

import (
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// This file ships the invariant validators used by the test suite and
// available to users who want to double-check an index against its graph.
// ValidateSound and ValidateComplete run online traversals per entry/query,
// so they are meant for moderate graph sizes.

// ValidateSound checks that every index entry is witnessed by an actual
// path: (w, L) ∈ Lout(v) requires v ⇝ w under L+, and (u, L) ∈ Lin(v)
// requires u ⇝ v under L+.
func (ix *Index) ValidateSound() error {
	ev := traversal.NewEvaluator(ix.g)
	nfas := make(map[labelseq.ID]*automaton.NFA)
	nfaOf := func(id labelseq.ID) (*automaton.NFA, error) {
		if n, ok := nfas[id]; ok {
			return n, nil
		}
		n, err := automaton.NewPlus(ix.dict.Seq(id), ix.g.NumLabels())
		if err != nil {
			return nil, err
		}
		nfas[id] = n
		return n, nil
	}
	for v := 0; v < ix.g.NumVertices(); v++ {
		for _, e := range ix.lout(graph.Vertex(v)) {
			hub := ix.order[e.hub]
			nfa, err := nfaOf(e.mr)
			if err != nil {
				return err
			}
			if !ev.BFS(graph.Vertex(v), hub, nfa) {
				return fmt.Errorf("rlc: unsound entry (%d, %v) in Lout(%d): no such path", hub, ix.dict.Seq(e.mr), v)
			}
		}
		for _, e := range ix.lin(graph.Vertex(v)) {
			hub := ix.order[e.hub]
			nfa, err := nfaOf(e.mr)
			if err != nil {
				return err
			}
			if !ev.BFS(hub, graph.Vertex(v), nfa) {
				return fmt.Errorf("rlc: unsound entry (%d, %v) in Lin(%d): no such path", hub, ix.dict.Seq(e.mr), v)
			}
		}
	}
	return nil
}

// ValidateComplete exhaustively compares the index against online traversal
// for every vertex pair and every primitive constraint of length up to k.
// Cost is O(n^2 · |L|^k · traversal); use small graphs.
func (ix *Index) ValidateComplete() error {
	ev := traversal.NewEvaluator(ix.g)
	n := ix.g.NumVertices()
	for _, l := range PrimitiveConstraints(ix.g.NumLabels(), ix.k) {
		nfa, err := automaton.NewPlus(l, ix.g.NumLabels())
		if err != nil {
			return err
		}
		for s := graph.Vertex(0); int(s) < n; s++ {
			for t := graph.Vertex(0); int(t) < n; t++ {
				want := ev.BFS(s, t, nfa)
				got, qerr := ix.Query(s, t, l)
				if qerr != nil {
					return qerr
				}
				if got != want {
					return fmt.Errorf("rlc: incomplete/unsound index: Query(%d, %d, %v+) = %v, traversal says %v", s, t, l, got, want)
				}
			}
		}
	}
	return nil
}

// ValidateCondensed checks Definition 5: no reachability fact is recorded
// both directly and through a hub. For a direct entry (t, L) ∈ Lout(s) the
// trivial witnesses u = t (the entry itself plus a cycle entry at t) and the
// dual direct entry are what the definition's spirit rules out; we flag a
// violation when a hub u distinct from both endpoints covers the same fact,
// or when both direct entries exist simultaneously.
func (ix *Index) ValidateCondensed() error {
	for v := 0; v < ix.g.NumVertices(); v++ {
		// Direct entries recorded as (t, L) ∈ Lout(s) with s = v.
		for _, e := range ix.lout(graph.Vertex(v)) {
			s := graph.Vertex(v)
			t := ix.order[e.hub]
			if err := ix.checkNotCovered(s, t, e.mr, "Lout"); err != nil {
				return err
			}
		}
		// Direct entries recorded as (s, L) ∈ Lin(t) with t = v.
		for _, e := range ix.lin(graph.Vertex(v)) {
			s := ix.order[e.hub]
			t := graph.Vertex(v)
			if err := ix.checkNotCovered(s, t, e.mr, "Lin"); err != nil {
				return err
			}
			// Both direct forms for the same fact is double recording,
			// except for the degenerate s == t cycles where the two
			// lists describe the same vertex.
			if s != t && hasEntry(ix.lout(s), ix.rank[t], e.mr) {
				return fmt.Errorf("rlc: not condensed: (%d,%v) recorded in both Lout(%d) and Lin(%d)",
					t, ix.dict.Seq(e.mr), s, t)
			}
		}
	}
	return nil
}

func (ix *Index) checkNotCovered(s, t graph.Vertex, mr labelseq.ID, kind string) error {
	a, b := ix.lout(s), ix.lin(t)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].hub < b[j].hub:
			i++
		case a[i].hub > b[j].hub:
			j++
		default:
			hub := a[i].hub
			u := ix.order[hub]
			foundA, foundB := false, false
			for ; i < len(a) && a[i].hub == hub; i++ {
				if a[i].mr == mr {
					foundA = true
				}
			}
			for ; j < len(b) && b[j].hub == hub; j++ {
				if b[j].mr == mr {
					foundB = true
				}
			}
			if foundA && foundB && u != s && u != t {
				return fmt.Errorf("rlc: not condensed: %s entry for (%d ⇝ %d, %v) also covered via hub %d",
					kind, s, t, ix.dict.Seq(mr), u)
			}
		}
	}
	return nil
}

// PrimitiveConstraints enumerates every primitive label sequence (L = MR(L))
// over numLabels labels with length in [1, k], in lexicographic order. These
// are exactly the admissible RLC constraints of Definition 1.
func PrimitiveConstraints(numLabels, k int) []labelseq.Seq {
	var out []labelseq.Seq
	var gen func(prefix labelseq.Seq)
	gen = func(prefix labelseq.Seq) {
		if len(prefix) > 0 && labelseq.IsPrimitive(prefix) {
			out = append(out, prefix.Clone())
		}
		if len(prefix) == k {
			return
		}
		for l := 0; l < numLabels; l++ {
			gen(append(prefix, labelseq.Label(l)))
		}
	}
	gen(labelseq.Seq{})
	return out
}

package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"unsafe"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
)

// Snapshot bundle (format v2): one self-contained, self-describing file
// holding everything a server needs — the graph CSR, the index entry array
// with its per-direction offsets, the access order, and the label-sequence
// dictionary — as checksummed sections of the internal/snapshot container.
// The large arrays are laid out so OpenSnapshot can hand out zero-copy
// views of a read-only memory mapping; only the small sections (meta, dict,
// names) are decoded onto the heap. See ARCHITECTURE.md, "Snapshot format
// v2", for the full byte layout.
//
// Section ids:
const (
	secMeta        = 1  // fixed 56-byte header: shape, fingerprint, counts
	secGraphOutOff = 2  // int64[n+1]
	secGraphOutDst = 3  // int32[m]
	secGraphOutLbl = 4  // int32[m]
	secGraphInOff  = 5  // int64[n+1]
	secGraphInSrc  = 6  // int32[m]
	secGraphInLbl  = 7  // int32[m]
	secDict        = 8  // per sequence: len u8, labels i32...
	secOrder       = 9  // int32[n], rank -> vertex id
	secEntries     = 10 // entry[entryCount]: (hub i32, mr u32)
	secIndexOutOff = 11 // int32[n+1]
	secIndexInOff  = 12 // int32[n+1]
	secVertexNames = 13 // optional: count u32, then len u32 + bytes each
	secLabelNames  = 14 // optional

	// Packed bit-parallel MR-set sections (see packed.go). Optional as a
	// block: bundles written before the packed form carry none of them and
	// stay readable byte-for-byte; bundles written with it carry all six.
	// OpenSnapshot prefers them when present (the mmap zero-copy path then
	// serves bit-parallel membership directly) and falls back to the entry
	// array otherwise.
	secPackedMeta    = 15 // fixed 24 bytes: setCount u32, reserved u32, groupCount u64, wordCount u64
	secPackedGroups  = 16 // packedGroup[groupCount]: (hub i32, set u32)
	secPackedOutOff  = 17 // int32[n+1]
	secPackedInOff   = 18 // int32[n+1]
	secPackedSets    = 19 // uint64[wordCount], the hash-consed windowed word pool
	secPackedSetDesc = 20 // setDesc[setCount]: (off u32, base u32, span u32)

	// Size-budgeted tier sections (see tiers.go). Optional as a block like
	// the packed sections: an unbudgeted bundle carries none of them, a
	// tiered bundle carries all six, and a partially stripped bundle is
	// corrupt. The demoted-vertex count is n - retainedRanks; demoted slot
	// arrays index by rank - retainedRanks.
	secTierMeta     = 21 // fixed 32 bytes: retainedRanks u32, bloomWords u32, setCount u32, reserved u32, wordCount u64, budget u64
	secTierUnionOut = 22 // uint32[numDemoted], union set ids (0xFFFFFFFF = empty dropped list)
	secTierUnionIn  = 23 // uint32[numDemoted]
	secTierSets     = 24 // uint64[wordCount], the tier-local hash-consed union pool
	secTierSetDesc  = 25 // setDesc[setCount]: (off u32, base u32, span u32)
	secTierBloom    = 26 // uint64[2*numDemoted*bloomWords], per-vertex out/in bloom blocks interleaved
)

// metaSize is the exact size of the meta section.
const metaSize = 56

// packedMetaSize is the exact size of the packed-meta section.
const packedMetaSize = 24

// tierMetaSize is the exact size of the tier-meta section.
const tierMetaSize = 32

// meta flag bits.
const (
	flagVertexNames = 1 << 0
	flagLabelNames  = 1 << 1
)

// ErrGraphMismatch is returned when an index is bound to a graph other than
// the one it was built from — by the v1 loader when the supplied graph's
// shape differs from the one recorded at build time, and by snapshot
// verification when the embedded fingerprint does not match the embedded
// graph.
var ErrGraphMismatch = errors.New("rlc: index was built for a different graph")

// encodeMeta renders the fixed meta section.
func encodeMeta(k int, fp graph.Fingerprint, entryCount int64, dictLen int, flags uint32) []byte {
	le := binary.LittleEndian
	b := make([]byte, metaSize)
	le.PutUint32(b[0:], uint32(k))
	le.PutUint32(b[4:], uint32(fp.NumLabels))
	le.PutUint64(b[8:], uint64(fp.N))
	le.PutUint64(b[16:], uint64(fp.M))
	le.PutUint64(b[24:], fp.EdgeHash)
	le.PutUint64(b[32:], uint64(entryCount))
	le.PutUint32(b[40:], uint32(dictLen))
	le.PutUint32(b[44:], flags)
	// b[48:56] reserved, zero.
	return b
}

type snapshotMeta struct {
	k          int
	fp         graph.Fingerprint
	entryCount int64
	dictLen    int
	flags      uint32
}

func decodeMeta(b []byte) (snapshotMeta, error) {
	if len(b) != metaSize {
		return snapshotMeta{}, snapshot.Corruptf("meta section is %d bytes, want %d", len(b), metaSize)
	}
	le := binary.LittleEndian
	m := snapshotMeta{
		k: int(le.Uint32(b[0:])),
		fp: graph.Fingerprint{
			NumLabels: int(int32(le.Uint32(b[4:]))),
			N:         int(int64(le.Uint64(b[8:]))),
			M:         int(int64(le.Uint64(b[16:]))),
			EdgeHash:  le.Uint64(b[24:]),
		},
		entryCount: int64(le.Uint64(b[32:])),
		dictLen:    int(le.Uint32(b[40:])),
		flags:      le.Uint32(b[44:]),
	}
	if m.k < 1 || m.k > MaxK {
		return snapshotMeta{}, snapshot.Corruptf("bad k %d", m.k)
	}
	const maxI32 = 1<<31 - 1
	if m.fp.N < 0 || m.fp.N > maxI32 || m.fp.M < 0 || m.fp.M > maxI32 ||
		m.fp.NumLabels < 0 || m.fp.NumLabels > maxI32 {
		return snapshotMeta{}, snapshot.Corruptf("implausible shape %v", m.fp)
	}
	if m.entryCount < 0 || m.entryCount > maxI32 {
		return snapshotMeta{}, snapshot.Corruptf("implausible entry count %d", m.entryCount)
	}
	if m.dictLen < 0 || m.dictLen > maxI32 {
		return snapshotMeta{}, snapshot.Corruptf("implausible dictionary size %d", m.dictLen)
	}
	return m, nil
}

// WriteSnapshot serializes the index and its graph as a v2 snapshot bundle.
// Unlike the v1 Write format, the bundle is self-contained: OpenSnapshot
// needs no separate graph file and no rebuild-time options.
func (ix *Index) WriteSnapshot(w io.Writer) error {
	g := ix.g
	fp := g.Fingerprint()
	var flags uint32
	if g.VertexNames() != nil {
		flags |= flagVertexNames
	}
	if g.LabelNames() != nil {
		flags |= flagLabelNames
	}

	sw := snapshot.NewWriter()
	sw.Add(secMeta, encodeMeta(ix.k, fp, int64(len(ix.entries)), ix.dict.Len(), flags))
	csr := g.RawCSR()
	sw.Add(secGraphOutOff, snapshot.I64Bytes(csr.OutOff))
	sw.Add(secGraphOutDst, snapshot.I32Bytes(csr.OutDst))
	sw.Add(secGraphOutLbl, snapshot.I32Bytes(csr.OutLbl))
	sw.Add(secGraphInOff, snapshot.I64Bytes(csr.InOff))
	sw.Add(secGraphInSrc, snapshot.I32Bytes(csr.InSrc))
	sw.Add(secGraphInLbl, snapshot.I32Bytes(csr.InLbl))
	sw.Add(secDict, encodeDict(ix.dict))
	sw.Add(secOrder, snapshot.I32Bytes(ix.order))
	sw.Add(secEntries, entryBytes(ix.entries))
	sw.Add(secIndexOutOff, snapshot.I32Bytes(ix.outOff))
	sw.Add(secIndexInOff, snapshot.I32Bytes(ix.inOff))
	if flags&flagVertexNames != 0 {
		sw.Add(secVertexNames, encodeNames(g.VertexNames()))
	}
	if flags&flagLabelNames != 0 {
		sw.Add(secLabelNames, encodeNames(g.LabelNames()))
	}
	if p := ix.packed; p != nil {
		// The entry sections above stay authoritative and are always
		// written; the packed block is the redundant accelerated form.
		le := binary.LittleEndian
		pm := make([]byte, packedMetaSize)
		le.PutUint32(pm[0:], uint32(p.numSets))
		le.PutUint64(pm[8:], uint64(len(p.groups)))
		le.PutUint64(pm[16:], uint64(len(p.words)))
		sw.Add(secPackedMeta, pm)
		sw.Add(secPackedGroups, groupBytes(p.groups))
		sw.Add(secPackedOutOff, snapshot.I32Bytes(p.outOff))
		sw.Add(secPackedInOff, snapshot.I32Bytes(p.inOff))
		sw.Add(secPackedSets, snapshot.U64Bytes(p.words))
		sw.Add(secPackedSetDesc, descBytes(p.desc))
	}
	if tr := ix.tiers; tr != nil {
		le := binary.LittleEndian
		tm := make([]byte, tierMetaSize)
		le.PutUint32(tm[0:], uint32(tr.retainedRanks))
		le.PutUint32(tm[4:], tr.bloomWords)
		le.PutUint32(tm[8:], uint32(len(tr.desc)))
		// tm[12:16] reserved, zero.
		le.PutUint64(tm[16:], uint64(len(tr.words)))
		le.PutUint64(tm[24:], uint64(tr.budget))
		sw.Add(secTierMeta, tm)
		sw.Add(secTierUnionOut, snapshot.U32Bytes(tr.unionOut))
		sw.Add(secTierUnionIn, snapshot.U32Bytes(tr.unionIn))
		sw.Add(secTierSets, snapshot.U64Bytes(tr.words))
		sw.Add(secTierSetDesc, descBytes(tr.desc))
		sw.Add(secTierBloom, snapshot.U64Bytes(tr.bloom))
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := sw.WriteTo(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveSnapshotFile writes the v2 snapshot bundle to path, atomically: the
// bundle is rendered to a temporary file in the same directory and renamed
// into place. Truncating a bundle in place would be catastrophic for a
// server that has the old file memory-mapped (shrinking a mapped file turns
// page faults into SIGBUS), so rebuild-and-rename — the rlcserve hot-reload
// workflow — is the only write path offered.
func (ix *Index) SaveSnapshotFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := ix.WriteSnapshot(f); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; widen to the 0644 an os.Create'd artifact gets
	// so a separately-privileged server process can map the bundle.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	// The rename only publishes the bytes; sync first so a crash cannot
	// leave a successfully renamed but half-written bundle.
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Snapshot is an open v2 bundle: a graph and the index built over it,
// backed by (usually memory-mapped) file bytes. The index and graph stay
// valid until Close; Close invalidates them, so a serving layer must retire
// a snapshot only after in-flight queries drain (see internal/server's
// Store).
type Snapshot struct {
	f    *snapshot.File
	ix   *Index
	g    *graph.Graph
	meta snapshotMeta
	path string
}

// OpenSnapshot opens a v2 bundle file. The large sections are mapped
// zero-copy where the platform allows (Mapped reports whether that
// happened); open-time work is structural validation only — O(n + m) word
// scans with no per-entry decoding or allocation — which is what makes
// opening a multi-gigabyte bundle effectively instant compared to the v1
// load path. Payload checksums are deliberately not verified here; call
// Verify before trusting a bundle from an untrusted medium or before
// hot-swapping it into a server.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := snapshot.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := newSnapshot(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s.path = path
	return s, nil
}

// OpenSnapshotBytes opens a v2 bundle held in memory (an embedded build
// artifact, a just-fetched blob). The Snapshot aliases data, which must stay
// unchanged until Close.
func OpenSnapshotBytes(data []byte) (*Snapshot, error) {
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		return nil, err
	}
	s, err := newSnapshot(f)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// section fetches a required section and checks its exact byte length.
func section(f *snapshot.File, id uint32, wantLen int64, what string) ([]byte, error) {
	b, ok := f.Section(id)
	if !ok {
		return nil, snapshot.Corruptf("missing %s section (id %d)", what, id)
	}
	if int64(len(b)) != wantLen {
		return nil, snapshot.Corruptf("%s section is %d bytes, want %d", what, len(b), wantLen)
	}
	return b, nil
}

// newSnapshot adopts the mapped sections into a live Index; it owns the
// mapping's lifetime (Close releases it), so it may retain views.
//
//rlc:viewowner
func newSnapshot(f *snapshot.File) (*Snapshot, error) {
	metaBytes, ok := f.Section(secMeta)
	if !ok {
		return nil, snapshot.Corruptf("missing meta section")
	}
	meta, err := decodeMeta(metaBytes)
	if err != nil {
		return nil, err
	}
	n, m := meta.fp.N, meta.fp.M

	// Graph sections → zero-copy adopted CSR.
	var csr graph.CSR
	offLen := int64(n+1) * 8
	edgeLen := int64(m) * 4
	var outOffB, inOffB, outDstB, outLblB, inSrcB, inLblB []byte
	for _, s := range []struct {
		id      uint32
		wantLen int64
		dst     *[]byte
		what    string
	}{
		{secGraphOutOff, offLen, &outOffB, "graph out-offset"},
		{secGraphOutDst, edgeLen, &outDstB, "graph out-dst"},
		{secGraphOutLbl, edgeLen, &outLblB, "graph out-label"},
		{secGraphInOff, offLen, &inOffB, "graph in-offset"},
		{secGraphInSrc, edgeLen, &inSrcB, "graph in-src"},
		{secGraphInLbl, edgeLen, &inLblB, "graph in-label"},
	} {
		if *s.dst, err = section(f, s.id, s.wantLen, s.what); err != nil {
			return nil, err
		}
	}
	csr.OutOff = snapshot.I64s(outOffB)
	csr.OutDst = snapshot.I32s[graph.Vertex](outDstB)
	csr.OutLbl = snapshot.I32s[labelseq.Label](outLblB)
	csr.InOff = snapshot.I64s(inOffB)
	csr.InSrc = snapshot.I32s[graph.Vertex](inSrcB)
	csr.InLbl = snapshot.I32s[labelseq.Label](inLblB)

	var vnames, lnames []string
	if meta.flags&flagVertexNames != 0 {
		b, ok := f.Section(secVertexNames)
		if !ok {
			return nil, snapshot.Corruptf("missing vertex-name section")
		}
		if vnames, err = decodeNames(b, n, "vertex"); err != nil {
			return nil, err
		}
	}
	if meta.flags&flagLabelNames != 0 {
		b, ok := f.Section(secLabelNames)
		if !ok {
			return nil, snapshot.Corruptf("missing label-name section")
		}
		if lnames, err = decodeNames(b, meta.fp.NumLabels, "label"); err != nil {
			return nil, err
		}
	}

	g, err := graph.AdoptCSR(n, meta.fp.NumLabels, csr, vnames, lnames)
	if err != nil {
		return nil, snapshot.Corruptf("%v", err)
	}

	// Dictionary (small, heap-decoded with the same validation as v1 load).
	dictBytes, ok := f.Section(secDict)
	if !ok {
		return nil, snapshot.Corruptf("missing dictionary section")
	}
	dict, err := decodeDict(dictBytes, meta.dictLen, meta.fp.NumLabels, meta.k)
	if err != nil {
		return nil, err
	}

	// Access order: must be a permutation of [0, n); rank is its inverse.
	orderB, err := section(f, secOrder, int64(n)*4, "order")
	if err != nil {
		return nil, err
	}
	order := snapshot.I32s[graph.Vertex](orderB)
	rank := make([]int32, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n {
			return nil, snapshot.Corruptf("order[%d] = %d out of range [0, %d)", i, v, n)
		}
		if rank[v] != -1 {
			return nil, snapshot.Corruptf("order lists vertex %d twice", v)
		}
		rank[v] = int32(i)
	}

	// Index CSR: two offset arrays over one entries array, Lout lists first.
	ixOutB, err := section(f, secIndexOutOff, int64(n+1)*4, "index out-offset")
	if err != nil {
		return nil, err
	}
	ixInB, err := section(f, secIndexInOff, int64(n+1)*4, "index in-offset")
	if err != nil {
		return nil, err
	}
	entriesB, err := section(f, secEntries, meta.entryCount*8, "entry")
	if err != nil {
		return nil, err
	}
	outOff := snapshot.I32s[int32](ixOutB)
	inOff := snapshot.I32s[int32](ixInB)
	entries := entriesView(entriesB)
	if outOff[0] != 0 || outOff[n] != inOff[0] || int64(inOff[n]) != meta.entryCount {
		return nil, snapshot.Corruptf("index offsets span [%d..%d, %d..%d], want [0..x, x..%d]",
			outOff[0], outOff[n], inOff[0], inOff[n], meta.entryCount)
	}
	for _, off := range [2][]int32{outOff, inOff} {
		for v := 0; v < n; v++ {
			if off[v] > off[v+1] {
				return nil, snapshot.Corruptf("index offsets decrease at vertex %d", v)
			}
		}
	}
	// Every entry must reference a real rank and interned sequence, and each
	// per-vertex list must be hub-sorted — the invariants the query path's
	// binary search and merge join rely on. One linear pass over the lists.
	for _, off := range [2][]int32{outOff, inOff} {
		for v := 0; v < n; v++ {
			prev := int32(-1)
			for _, e := range entries[off[v]:off[v+1]] {
				if e.hub < prev {
					return nil, snapshot.Corruptf("entry list of vertex %d not hub-sorted", v)
				}
				prev = e.hub
				if e.hub < 0 || int(e.hub) >= n || int64(e.mr) >= int64(meta.dictLen) {
					return nil, snapshot.Corruptf("entry (%d, %d) of vertex %d out of range", e.hub, e.mr, v)
				}
			}
		}
	}

	ix := &Index{
		g:       g,
		k:       meta.k,
		opts:    Options{K: meta.k},
		dict:    dict,
		order:   order,
		rank:    rank,
		entries: entries,
		outOff:  outOff,
		inOff:   inOff,
	}
	p, err := openPacked(f, n, meta.dictLen)
	if err != nil {
		return nil, err
	}
	ix.packed = p
	// Record the representation in the build options so BuildOptions is
	// truthful for snapshot-opened indexes too: a fold of an unpacked
	// bundle stays unpacked, a fold of a packed one stays packed.
	ix.opts.DisablePacked = p == nil
	tr, err := openTiers(f, n, meta.dictLen)
	if err != nil {
		return nil, err
	}
	if tr != nil {
		initTierRuntime(ix, tr)
		// Same truthfulness for the budget: a fold of a tiered bundle
		// re-applies its MaxIndexBytes, so the budget survives epochs.
		ix.opts.MaxIndexBytes = tr.budget
	}
	return &Snapshot{f: f, ix: ix, g: g, meta: meta}, nil
}

// openPacked adopts the optional packed bit-parallel sections. A bundle
// either carries the whole block or none of it: absent packed-meta means an
// unpacked bundle (nil, queries fall back to the entry scan); a present
// packed-meta makes the other five sections required, so a partially
// stripped bundle surfaces as corrupt instead of silently downgrading.
//
//rlc:viewowner
func openPacked(f *snapshot.File, n, dictLen int) (*packed, error) {
	pm, ok := f.Section(secPackedMeta)
	if !ok {
		return nil, nil
	}
	if len(pm) != packedMetaSize {
		return nil, snapshot.Corruptf("packed-meta section is %d bytes, want %d", len(pm), packedMetaSize)
	}
	le := binary.LittleEndian
	setCount := int64(le.Uint32(pm[0:]))
	reserved := le.Uint32(pm[4:])
	groupCount := int64(le.Uint64(pm[8:]))
	wordCount := int64(le.Uint64(pm[16:]))
	const maxI32 = 1<<31 - 1
	if reserved != 0 {
		return nil, snapshot.Corruptf("packed-meta reserved field is %d, want 0", reserved)
	}
	if setCount > maxI32 || groupCount > maxI32 || wordCount > maxI32 {
		return nil, snapshot.Corruptf("implausible packed counts: %d sets, %d groups, %d words", setCount, groupCount, wordCount)
	}
	groupsB, err := section(f, secPackedGroups, groupCount*8, "packed-group")
	if err != nil {
		return nil, err
	}
	outOffB, err := section(f, secPackedOutOff, int64(n+1)*4, "packed out-offset")
	if err != nil {
		return nil, err
	}
	inOffB, err := section(f, secPackedInOff, int64(n+1)*4, "packed in-offset")
	if err != nil {
		return nil, err
	}
	setsB, err := section(f, secPackedSets, wordCount*8, "packed-set pool")
	if err != nil {
		return nil, err
	}
	descB, err := section(f, secPackedSetDesc, setCount*12, "packed-set descriptor")
	if err != nil {
		return nil, err
	}
	p := &packed{
		numSets: int32(setCount),
		desc:    descView(descB),
		words:   snapshot.U64s(setsB),
		groups:  groupsView(groupsB),
		outOff:  snapshot.I32s[int32](outOffB),
		inOff:   snapshot.I32s[int32](inOffB),
	}
	// Every descriptor's window must fit the dictionary's word range and its
	// stored words must lie inside the pool: has probes words[off+w] for
	// w < span without further checks.
	wMax := int64(setWordsFor(dictLen))
	for i, d := range p.desc {
		if d.span == 0 || int64(d.base)+int64(d.span) > wMax {
			return nil, snapshot.Corruptf("packed set %d window [%d, +%d) outside dictionary word range %d", i, d.base, d.span, wMax)
		}
		if int64(d.off)+int64(d.span) > wordCount {
			return nil, snapshot.Corruptf("packed set %d words [%d, +%d) outside pool of %d", i, d.off, d.span, wordCount)
		}
	}
	if p.outOff[0] != 0 || p.outOff[n] != p.inOff[0] || int64(p.inOff[n]) != groupCount {
		return nil, snapshot.Corruptf("packed offsets span [%d..%d, %d..%d], want [0..x, x..%d]",
			p.outOff[0], p.outOff[n], p.inOff[0], p.inOff[n], groupCount)
	}
	// Per-vertex group lists must have strictly increasing in-range hubs —
	// groupHas's binary search assumes uniqueness, unlike the entry lists'
	// weaker hub-sorted-with-runs invariant — and every set id must point
	// into the pool.
	for _, off := range [2][]int32{p.outOff, p.inOff} {
		for v := 0; v < n; v++ {
			if off[v] > off[v+1] {
				return nil, snapshot.Corruptf("packed offsets decrease at vertex %d", v)
			}
			prev := int32(-1)
			for _, pg := range p.groups[off[v]:off[v+1]] {
				if pg.hub <= prev {
					return nil, snapshot.Corruptf("packed group list of vertex %d not strictly hub-sorted", v)
				}
				prev = pg.hub
				if pg.hub < 0 || int(pg.hub) >= n || int64(pg.set) >= setCount {
					return nil, snapshot.Corruptf("packed group (%d, %d) of vertex %d out of range", pg.hub, pg.set, v)
				}
			}
		}
	}
	return p, nil
}

// openTiers adopts the optional size-budgeted tier sections. Like the packed
// block, a bundle either carries the whole block or none of it: absent
// tier-meta means an untiered bundle (nil); a present tier-meta makes the
// other five sections required and structurally validated, so a partially
// stripped or internally inconsistent tier block surfaces as corrupt instead
// of silently demoting wrong vertices.
//
//rlc:viewowner
func openTiers(f *snapshot.File, n, dictLen int) (*tiers, error) {
	tm, ok := f.Section(secTierMeta)
	if !ok {
		return nil, nil
	}
	if len(tm) != tierMetaSize {
		return nil, snapshot.Corruptf("tier-meta section is %d bytes, want %d", len(tm), tierMetaSize)
	}
	le := binary.LittleEndian
	retained := int64(le.Uint32(tm[0:]))
	bloomWords := le.Uint32(tm[4:])
	setCount := int64(le.Uint32(tm[8:]))
	reserved := le.Uint32(tm[12:])
	wordCount := int64(le.Uint64(tm[16:]))
	budget := int64(le.Uint64(tm[24:]))
	const maxI32 = 1<<31 - 1
	if reserved != 0 {
		return nil, snapshot.Corruptf("tier-meta reserved field is %d, want 0", reserved)
	}
	if retained >= int64(n) {
		// tier() only tiers when it demotes; retainedRanks == n would make
		// every slot array empty and the block meaningless.
		return nil, snapshot.Corruptf("tier-meta retains %d of %d ranks: a tiered bundle must demote at least one vertex", retained, n)
	}
	if bloomWords == 0 || bloomWords > 64 || bloomWords&(bloomWords-1) != 0 {
		return nil, snapshot.Corruptf("tier bloom width %d words is not a power of two in [1, 64]", bloomWords)
	}
	if budget <= 0 {
		return nil, snapshot.Corruptf("tier-meta budget %d is not positive", budget)
	}
	if setCount > maxI32 || wordCount > maxI32 {
		return nil, snapshot.Corruptf("implausible tier counts: %d sets, %d words", setCount, wordCount)
	}
	d := int64(n) - retained
	unionOutB, err := section(f, secTierUnionOut, d*4, "tier union-out")
	if err != nil {
		return nil, err
	}
	unionInB, err := section(f, secTierUnionIn, d*4, "tier union-in")
	if err != nil {
		return nil, err
	}
	setsB, err := section(f, secTierSets, wordCount*8, "tier-set pool")
	if err != nil {
		return nil, err
	}
	descB, err := section(f, secTierSetDesc, setCount*12, "tier-set descriptor")
	if err != nil {
		return nil, err
	}
	bloomB, err := section(f, secTierBloom, 2*d*int64(bloomWords)*8, "tier bloom")
	if err != nil {
		return nil, err
	}
	tr := &tiers{
		retainedRanks: int32(retained),
		budget:        budget,
		bloomWords:    bloomWords,
		unionOut:      snapshot.U32s(unionOutB),
		unionIn:       snapshot.U32s(unionInB),
		desc:          descView(descB),
		words:         snapshot.U64s(setsB),
		bloom:         snapshot.U64s(bloomB),
	}
	// Every descriptor's window must fit the dictionary's word range and its
	// stored words must lie inside the pool — unionHas probes words[off+w]
	// for w < span without further checks — and every slot's set id must be
	// a real descriptor or the empty-list sentinel.
	wMax := int64(setWordsFor(dictLen))
	for i, dsc := range tr.desc {
		if dsc.span == 0 || int64(dsc.base)+int64(dsc.span) > wMax {
			return nil, snapshot.Corruptf("tier set %d window [%d, +%d) outside dictionary word range %d", i, dsc.base, dsc.span, wMax)
		}
		if int64(dsc.off)+int64(dsc.span) > wordCount {
			return nil, snapshot.Corruptf("tier set %d words [%d, +%d) outside pool of %d", i, dsc.off, dsc.span, wordCount)
		}
	}
	for _, slots := range [2][]uint32{tr.unionOut, tr.unionIn} {
		for i, set := range slots {
			if set != invalidTierSet && int64(set) >= setCount {
				return nil, snapshot.Corruptf("tier union set id %d of slot %d outside pool of %d sets", set, i, setCount)
			}
		}
	}
	return tr, nil
}

// Index returns the snapshot's index, valid until Close.
func (s *Snapshot) Index() *Index { return s.ix }

// Graph returns the snapshot's embedded graph, valid until Close.
func (s *Snapshot) Graph() *graph.Graph { return s.g }

// Path returns the file the snapshot was opened from ("" for OpenSnapshotBytes).
func (s *Snapshot) Path() string { return s.path }

// Mapped reports whether the snapshot is memory-mapped (as opposed to the
// portable read-into-heap fallback).
func (s *Snapshot) Mapped() bool { return s.f.Mapped() }

// SizeBytes returns the byte size of the open bundle.
func (s *Snapshot) SizeBytes() int64 { return s.f.Size() }

// Bytes returns the complete raw bundle, aliasing the mapping. It is how
// the replication layer ships the exact serving bundle to followers
// without a re-serialization: the bytes are already checksummed,
// fingerprinted, and self-contained. The slice must not be mutated and is
// valid only while the snapshot stays open — callers must pin whatever
// owns the snapshot for the duration of the copy.
func (s *Snapshot) Bytes() []byte { return s.f.Bytes() }

// K returns the recursive k the snapshot's index supports.
func (s *Snapshot) K() int { return s.meta.k }

// Fingerprint returns the embedded graph fingerprint recorded at build time.
func (s *Snapshot) Fingerprint() graph.Fingerprint { return s.meta.fp }

// Sections lists the bundle's section table (the rlcinspect dump).
func (s *Snapshot) Sections() []snapshot.SectionInfo { return s.f.Sections() }

// VerifySection checks one section's payload checksum by container id.
func (s *Snapshot) VerifySection(id uint32) error { return s.f.VerifySection(id) }

// Verify runs the full integrity pass that OpenSnapshot skips: every
// section's checksum, plus a recomputation of the embedded graph's
// fingerprint against the one recorded in the meta section. Open-time
// structural validation makes a corrupt bundle safe (queries cannot crash);
// Verify makes it trustworthy (bit flips inside in-range values are caught
// too). The serving layer runs it before hot-swapping a bundle in.
func (s *Snapshot) Verify() error {
	if err := s.f.VerifyAll(); err != nil {
		return err
	}
	if got := s.g.Fingerprint(); got != s.meta.fp {
		return fmt.Errorf("%w: %w: bundle records %v, embedded graph hashes to %v",
			snapshot.ErrCorrupt, ErrGraphMismatch, s.meta.fp, got)
	}
	// A packed block whose checksums pass can still disagree with the entry
	// array it claims to accelerate (a bundle assembled from mismatched
	// halves checksums clean). Queries answer from the packed form, so
	// equality with the authoritative entries is part of integrity.
	if err := s.ix.verifyPacked(); err != nil {
		return fmt.Errorf("%w: %w", snapshot.ErrCorrupt, err)
	}
	// Same for the tier block: its retention split must agree with the
	// entry array (demoted lists physically truncated), or filter answers
	// and entry answers would come from different indexes.
	if err := s.ix.verifyTiers(); err != nil {
		return fmt.Errorf("%w: %w", snapshot.ErrCorrupt, err)
	}
	return nil
}

// Close releases the underlying mapping. The snapshot's Index and Graph
// must not be used afterwards.
func (s *Snapshot) Close() error {
	s.ix = nil
	s.g = nil
	return s.f.Close()
}

// encodeDict renders the dictionary section: per interned sequence, a u8
// length followed by that many little-endian i32 labels — the same
// per-sequence encoding as the v1 format, minus the count (the meta section
// carries it).
func encodeDict(d *labelseq.Dict) []byte {
	var out []byte
	var tmp [4]byte
	for i := 0; i < d.Len(); i++ {
		seq := d.Seq(labelseq.ID(i))
		out = append(out, byte(len(seq)))
		for _, l := range seq {
			binary.LittleEndian.PutUint32(tmp[:], uint32(l))
			out = append(out, tmp[:]...)
		}
	}
	return out
}

// decodeDict rebuilds the interning dictionary, enforcing the same
// invariants as the v1 loader: lengths within k, labels within the label
// set, no duplicate sequences, and no trailing bytes.
func decodeDict(b []byte, dictLen, numLabels, k int) (*labelseq.Dict, error) {
	coderLabels := numLabels
	if coderLabels == 0 {
		coderLabels = 1
	}
	dict, err := labelseq.NewDict(coderLabels, k)
	if err != nil {
		return nil, snapshot.Corruptf("dictionary: %v", err)
	}
	pos := 0
	for i := 0; i < dictLen; i++ {
		if pos >= len(b) {
			return nil, snapshot.Corruptf("dictionary truncated at sequence %d", i)
		}
		slen := int(b[pos])
		pos++
		if slen > k {
			return nil, snapshot.Corruptf("dictionary sequence %d longer than k", i)
		}
		if pos+4*slen > len(b) {
			return nil, snapshot.Corruptf("dictionary truncated inside sequence %d", i)
		}
		seq := make(labelseq.Seq, slen)
		for j := range seq {
			l := int32(binary.LittleEndian.Uint32(b[pos:]))
			pos += 4
			if l < 0 || int(l) >= coderLabels {
				return nil, snapshot.Corruptf("dictionary label %d out of range", l)
			}
			seq[j] = labelseq.Label(l)
		}
		if got := dict.Intern(seq); int(got) != i {
			return nil, snapshot.Corruptf("duplicate dictionary sequence %v", seq)
		}
	}
	if pos != len(b) {
		return nil, snapshot.Corruptf("%d trailing bytes after the dictionary", len(b)-pos)
	}
	return dict, nil
}

// encodeNames renders a name table: count u32, then per name a u32 length
// and the raw bytes.
func encodeNames(names []string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(names)))
	out := append([]byte(nil), tmp[:]...)
	for _, s := range names {
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
		out = append(out, tmp[:]...)
		out = append(out, s...)
	}
	return out
}

// decodeNames parses a name table, which must hold exactly want names.
func decodeNames(b []byte, want int, what string) ([]string, error) {
	if len(b) < 4 {
		return nil, snapshot.Corruptf("%s-name section truncated", what)
	}
	count := int(binary.LittleEndian.Uint32(b))
	if count != want {
		return nil, snapshot.Corruptf("%d %s names for %d ids", count, what, want)
	}
	pos := 4
	names := make([]string, count)
	for i := range names {
		if pos+4 > len(b) {
			return nil, snapshot.Corruptf("%s-name section truncated at name %d", what, i)
		}
		l := int(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
		if l < 0 || pos+l > len(b) {
			return nil, snapshot.Corruptf("%s name %d overruns the section", what, i)
		}
		names[i] = string(b[pos : pos+l])
		pos += l
	}
	if pos != len(b) {
		return nil, snapshot.Corruptf("%d trailing bytes after the %s names", len(b)-pos, what)
	}
	return names, nil
}

// entryBytes returns the little-endian on-disk bytes of an entry slice —
// a zero-copy view on little-endian hosts. The entry struct is exactly its
// on-disk layout: hub i32 then mr u32, 8 bytes, no padding.
func entryBytes(s []entry) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, e := range s {
		binary.LittleEndian.PutUint32(out[i*8:], uint32(e.hub))
		binary.LittleEndian.PutUint32(out[i*8+4:], uint32(e.mr))
	}
	return out
}

// entriesView returns b as an entry slice — zero-copy when the host is
// little-endian and the section is aligned, a decoded copy otherwise. The
// caller must have checked len(b)%8 == 0.
//
//rlc:view
func entriesView(b []byte) []entry {
	if len(b) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(entry{}) == 0 {
		return unsafe.Slice((*entry)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]entry, len(b)/8)
	for i := range out {
		out[i] = entry{
			hub: int32(binary.LittleEndian.Uint32(b[i*8:])),
			mr:  labelseq.ID(binary.LittleEndian.Uint32(b[i*8+4:])),
		}
	}
	return out
}

// groupBytes returns the little-endian on-disk bytes of a packed-group
// slice — a zero-copy view on little-endian hosts. Like entry, packedGroup
// is exactly its on-disk layout: hub i32 then set u32, 8 bytes, no padding.
func groupBytes(s []packedGroup) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, g := range s {
		binary.LittleEndian.PutUint32(out[i*8:], uint32(g.hub))
		binary.LittleEndian.PutUint32(out[i*8+4:], g.set)
	}
	return out
}

// groupsView returns b as a packed-group slice — zero-copy when the host is
// little-endian and the section is aligned, a decoded copy otherwise. The
// caller must have checked len(b)%8 == 0.
//
//rlc:view
func groupsView(b []byte) []packedGroup {
	if len(b) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(packedGroup{}) == 0 {
		return unsafe.Slice((*packedGroup)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]packedGroup, len(b)/8)
	for i := range out {
		out[i] = packedGroup{
			hub: int32(binary.LittleEndian.Uint32(b[i*8:])),
			set: binary.LittleEndian.Uint32(b[i*8+4:]),
		}
	}
	return out
}

// descBytes returns the little-endian on-disk bytes of a set-descriptor
// slice — a zero-copy view on little-endian hosts. setDesc is exactly its
// on-disk layout: off, base, span as u32, 12 bytes, no padding.
func descBytes(s []setDesc) []byte {
	if len(s) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*12)
	}
	out := make([]byte, len(s)*12)
	for i, d := range s {
		binary.LittleEndian.PutUint32(out[i*12:], d.off)
		binary.LittleEndian.PutUint32(out[i*12+4:], d.base)
		binary.LittleEndian.PutUint32(out[i*12+8:], d.span)
	}
	return out
}

// descView returns b as a set-descriptor slice — zero-copy when the host is
// little-endian and the section is aligned, a decoded copy otherwise. The
// caller must have checked len(b)%12 == 0.
//
//rlc:view
func descView(b []byte) []setDesc {
	if len(b) == 0 {
		return nil
	}
	if snapshot.HostLittleEndian() && uintptr(unsafe.Pointer(&b[0]))%unsafe.Alignof(setDesc{}) == 0 {
		return unsafe.Slice((*setDesc)(unsafe.Pointer(&b[0])), len(b)/12)
	}
	out := make([]setDesc, len(b)/12)
	for i := range out {
		out[i] = setDesc{
			off:  binary.LittleEndian.Uint32(b[i*12:]),
			base: binary.LittleEndian.Uint32(b[i*12+4:]),
			span: binary.LittleEndian.Uint32(b[i*12+8:]),
		}
	}
	return out
}

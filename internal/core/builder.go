package core

import (
	"sort"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// searchState is a kernel-search BFS state: a vertex plus the label
// sequence of the path between it and the KBS source (read in path order).
// The packed code deduplicates states; the inline array avoids per-state
// allocations (MaxK bounds the depth).
type searchState struct {
	v     graph.Vertex
	code  labelseq.Code
	depth int32
	seq   [MaxK]labelseq.Label
}

type dedupKey struct {
	v    graph.Vertex
	code labelseq.Code
}

// kernelFrontier collects the frontier vertices of one kernel candidate.
type kernelFrontier struct {
	kernel labelseq.Seq
	code   labelseq.Code
	verts  []graph.Vertex
	member map[graph.Vertex]struct{}
}

// builder holds the reusable scratch space for all KBS runs of one Build,
// plus the mutable per-vertex entry lists that insert appends to. The lists
// stay per-vertex during construction (cheap appends, no shifting) and are
// compacted into the Index's flat CSR layout by freeze once the last KBS
// finished.
//
// A parallel build uses several builders over the same index: one committer
// (spec == nil) that owns the canonical lists, and one speculating builder
// per worker (spec != nil) that reads the canonical lists but buffers its
// inserts in worker-local state (see scheduler.go). The in/out slice
// headers and the label-partitioned adjacency are shared; all per-KBS
// scratch is per-builder.
type builder struct {
	ix    *Index
	g     *graph.Graph
	coder *labelseq.Coder
	k     int

	// Mutable Lin/Lout under construction, indexed by vertex id. Only the
	// committer appends; speculating builders treat them as a read-only
	// snapshot of the entries committed by earlier windows.
	in  [][]entry
	out [][]entry

	// Label-partitioned adjacency: kernel-BFS follows edges of one
	// expected label at a time, so edges are regrouped by label once
	// instead of filtered on every visit.
	inByLabel  *labelCSR
	outByLabel *labelCSR

	// Kernel-search scratch.
	queue []searchState
	seen  map[dedupKey]struct{}

	// Frontier registry for the current KBS.
	frontiers map[labelseq.Code]*kernelFrontier

	// fixedSet holds (mr, hub) pairs of the current KBS's fixed entry
	// list — Lin(src) for backward searches, Lout(src) for forward ones.
	// The PR1 check of insert reduces to one pass over the visited
	// vertex's own list plus O(1) membership tests here, replacing a
	// merge join per insert (the build-time hot spot).
	fixedSet map[uint64]struct{}

	// Kernel-BFS scratch: stamped visited array over (vertex, phase)
	// slots, and the BFS queue of packed (vertex, phase) pairs.
	visited []uint32
	stamp   uint32
	bfsQ    []kbsNode

	// Commit-side write tracking (parallel builds only): every append to
	// out[y]/in[y] stamps the list with the current round, so the
	// scheduler can invalidate speculations that read it. Nil on the
	// sequential path.
	dirtyOut   []uint64
	dirtyIn    []uint64
	dirtyStamp uint64

	// Speculation state (parallel build workers only, see scheduler.go).
	spec *specScratch

	stats BuildStats
}

type kbsNode struct {
	v     graph.Vertex
	phase int32
}

func newBuilder(ix *Index) *builder {
	return &builder{
		ix:         ix,
		g:          ix.g,
		coder:      ix.dict.Coder(),
		k:          ix.k,
		in:         make([][]entry, ix.g.NumVertices()),
		out:        make([][]entry, ix.g.NumVertices()),
		inByLabel:  newLabelCSR(ix.g, true),
		outByLabel: newLabelCSR(ix.g, false),
		seen:       make(map[dedupKey]struct{}),
		frontiers:  make(map[labelseq.Code]*kernelFrontier),
		fixedSet:   make(map[uint64]struct{}),
		visited:    make([]uint32, ix.g.NumVertices()*ix.k),
	}
}

// labelCSR regroups a CSR adjacency so each vertex's edges sort by
// (label, neighbor), making "neighbors of v through label l" one binary
// search plus a contiguous scan.
type labelCSR struct {
	off []int64
	nbr []graph.Vertex
	lbl []labelseq.Label
}

func newLabelCSR(g *graph.Graph, backward bool) *labelCSR {
	n := g.NumVertices()
	c := &labelCSR{
		off: make([]int64, n+1),
		nbr: make([]graph.Vertex, g.NumEdges()),
		lbl: make([]labelseq.Label, g.NumEdges()),
	}
	pos := int64(0)
	for v := graph.Vertex(0); int(v) < n; v++ {
		var nbrs []graph.Vertex
		var lbls []labelseq.Label
		if backward {
			nbrs, lbls = g.InEdges(v)
		} else {
			nbrs, lbls = g.OutEdges(v)
		}
		c.off[v] = pos
		copy(c.nbr[pos:], nbrs)
		copy(c.lbl[pos:], lbls)
		run := int(pos) + len(nbrs)
		sortRun(c.nbr[pos:run], c.lbl[pos:run])
		pos = int64(run)
	}
	c.off[n] = pos
	return c
}

// sortRun sorts the parallel slices by (label, neighbor). High-degree hubs
// make a comparison sort mandatory here.
func sortRun(nbr []graph.Vertex, lbl []labelseq.Label) {
	sort.Sort(&runSorter{nbr: nbr, lbl: lbl})
}

type runSorter struct {
	nbr []graph.Vertex
	lbl []labelseq.Label
}

func (r *runSorter) Len() int { return len(r.nbr) }
func (r *runSorter) Less(i, j int) bool {
	if r.lbl[i] != r.lbl[j] {
		return r.lbl[i] < r.lbl[j]
	}
	return r.nbr[i] < r.nbr[j]
}
func (r *runSorter) Swap(i, j int) {
	r.nbr[i], r.nbr[j] = r.nbr[j], r.nbr[i]
	r.lbl[i], r.lbl[j] = r.lbl[j], r.lbl[i]
}

// edges returns the neighbors of v through label l. The binary search is
// hand-rolled: this sits on the kernel-BFS hot path, where the closure of
// sort.Search is measurable.
func (c *labelCSR) edges(v graph.Vertex, l labelseq.Label) []graph.Vertex {
	lo, hi := c.off[v], c.off[v+1]
	lbls := c.lbl[lo:hi]
	i, j := 0, len(lbls)
	for i < j {
		h := int(uint(i+j) >> 1)
		if lbls[h] < l {
			i = h + 1
		} else {
			j = h
		}
	}
	end := i
	for end < len(lbls) && lbls[end] == l {
		end++
	}
	return c.nbr[lo+int64(i) : lo+int64(end)]
}

// kbs runs one kernel-based search from src: the kernel-search phase
// enumerates every path of length <= k touching src on the given side,
// inserting entries and registering kernel candidates; the kernel-BFS phase
// then extends each candidate under its Kleene plus.
func (b *builder) kbs(src graph.Vertex, dir direction) {
	b.loadFixedSet(src, dir)
	b.kernelSearch(src, dir)

	// Deterministic kernel order (map iteration is randomized).
	codes := make([]labelseq.Code, 0, len(b.frontiers))
	for c := range b.frontiers {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		f := b.frontiers[c]
		b.kernelBFS(src, dir, f)
	}
}

// loadFixedSet snapshots the fixed side of every PR1 query the KBS (or a
// commit replay) issues: Lin(src) for backward searches, Lout(src) for
// forward ones. Neither list changes while the KBS runs, so (mr, hub)
// membership is captured once. A speculating builder additionally layers in
// its own buffered inserts at src and records the read for commit-time
// validation.
func (b *builder) loadFixedSet(src graph.Vertex, dir direction) {
	clear(b.fixedSet)
	var fixed []entry
	if dir == backward {
		fixed = b.in[src]
	} else {
		fixed = b.out[src]
	}
	for _, e := range fixed {
		b.fixedSet[fixedKey(e.mr, e.hub)] = struct{}{}
	}
	if sc := b.spec; sc != nil {
		sc.recordRead(src, fixedSide(dir))
		rank := b.ix.rank[src]
		for idx := sc.overlayHead(src, fixedSide(dir)); idx >= 0; idx = sc.ovNext[idx] {
			b.fixedSet[fixedKey(sc.cur.inserts[idx].mrID, rank)] = struct{}{}
		}
	}
}

// kernelSearch is phase 1: a BFS over (vertex, label-sequence) states up to
// depth k. Every state visit attempts an insert (whose outcome is ignored
// here — PR3 applies only to kernel-BFS) and registers the endpoint as a
// frontier vertex of the state's minimum repeat.
func (b *builder) kernelSearch(src graph.Vertex, dir direction) {
	clear(b.seen)
	clear(b.frontiers)
	b.queue = b.queue[:0]

	b.queue = append(b.queue, searchState{v: src})
	b.seen[dedupKey{src, 0}] = struct{}{}

	var mrBuf labelseq.Seq
	for head := 0; head < len(b.queue); head++ {
		// Index rather than copy: states are small but the queue grows
		// while iterating.
		st := b.queue[head]
		var nbrs []graph.Vertex
		var lbls []labelseq.Label
		if dir == backward {
			nbrs, lbls = b.g.InEdges(st.v)
		} else {
			nbrs, lbls = b.g.OutEdges(st.v)
		}
		for i := range nbrs {
			y, l := nbrs[i], lbls[i]
			var next searchState
			next.v = y
			next.depth = st.depth + 1
			if dir == backward {
				// Path y -> src: the new edge label is prepended.
				next.seq[0] = l
				copy(next.seq[1:], st.seq[:st.depth])
				next.code = b.coder.Prepend(st.code, l, int(st.depth))
			} else {
				// Path src -> y: appended.
				copy(next.seq[:], st.seq[:st.depth])
				next.seq[st.depth] = l
				next.code = b.coder.Append(st.code, l)
			}
			key := dedupKey{y, next.code}
			if _, dup := b.seen[key]; dup {
				continue
			}
			b.seen[key] = struct{}{}
			b.stats.KernelSearchStates++

			seq := labelseq.Seq(next.seq[:next.depth])
			mrBuf = labelseq.MinimumRepeat(seq)
			mrCode := b.coder.Encode(mrBuf)
			// Insert outcome deliberately ignored in phase 1.
			b.insert(y, src, dir, mrBuf, mrCode)
			b.registerFrontier(mrCode, mrBuf, y)

			if int(next.depth) < b.k {
				b.queue = append(b.queue, next)
			}
		}
	}
}

func (b *builder) registerFrontier(code labelseq.Code, kernel labelseq.Seq, v graph.Vertex) {
	f := b.frontiers[code]
	if f == nil {
		f = &kernelFrontier{
			kernel: kernel.Clone(),
			code:   code,
			member: make(map[graph.Vertex]struct{}),
		}
		b.frontiers[code] = f
	}
	if _, ok := f.member[v]; ok {
		return
	}
	f.member[v] = struct{}{}
	f.verts = append(f.verts, v)
}

// kernelBFS is phase 2: starting from the frontier vertices of one kernel
// candidate L (each the endpoint of an exact L-power path), walk the graph
// under the constraint L+. The phase of a node is the number of labels
// consumed in the current period; completing a period (phase back to 0)
// attempts an insert, and — PR3 — a pruned insert stops expansion there.
func (b *builder) kernelBFS(src graph.Vertex, dir direction, f *kernelFrontier) {
	m := int32(len(f.kernel))
	b.stamp++
	if b.stamp == 0 {
		for i := range b.visited {
			b.visited[i] = 0
		}
		b.stamp = 1
	}
	b.bfsQ = b.bfsQ[:0]
	for _, v := range f.verts {
		b.mark(v, 0)
		b.bfsQ = append(b.bfsQ, kbsNode{v, 0})
	}
	mrCode := f.code
	b.stats.KernelBFSRuns++

	for head := 0; head < len(b.bfsQ); head++ {
		b.stats.KernelBFSNodes++
		nd := b.bfsQ[head]
		var expected labelseq.Label
		if dir == backward {
			// Walking backward from a power boundary consumes the
			// kernel's labels last-to-first.
			expected = f.kernel[m-1-nd.phase]
		} else {
			expected = f.kernel[nd.phase]
		}
		var nbrs []graph.Vertex
		if dir == backward {
			nbrs = b.inByLabel.edges(nd.v, expected)
		} else {
			nbrs = b.outByLabel.edges(nd.v, expected)
		}
		next := (nd.phase + 1) % m
		for i := range nbrs {
			y := nbrs[i]
			if b.isMarked(y, next) {
				continue
			}
			if next == 0 {
				// y sits at a completed power L^m: record it.
				st := b.insert(y, src, dir, f.kernel, mrCode)
				b.mark(y, 0)
				if st != inserted && !b.ix.opts.DisablePR3 {
					// PR3: y and everything beyond it are skipped.
					continue
				}
				b.bfsQ = append(b.bfsQ, kbsNode{y, 0})
				continue
			}
			b.mark(y, next)
			b.bfsQ = append(b.bfsQ, kbsNode{y, next})
		}
	}
}

func (b *builder) mark(v graph.Vertex, phase int32) {
	b.visited[int(v)*b.k+int(phase)] = b.stamp
}

func (b *builder) isMarked(v graph.Vertex, phase int32) bool {
	return b.visited[int(v)*b.k+int(phase)] == b.stamp
}

func fixedKey(mr labelseq.ID, hub int32) uint64 {
	return uint64(mr)<<32 | uint64(uint32(hub))
}

// insert is insertCore plus the outcome counters.
func (b *builder) insert(y, src graph.Vertex, dir direction, mr labelseq.Seq, mrCode labelseq.Code) insertStatus {
	st := b.insertCore(y, src, dir, mr, mrCode)
	switch st {
	case inserted:
		b.stats.Inserted++
	case prunedPR1:
		b.stats.PrunedPR1++
	case prunedPR2:
		b.stats.PrunedPR2++
	case prunedDup:
		b.stats.PrunedDup++
	}
	return st
}

// insertCore attempts to record that y and src are connected by a path whose
// k-MR is mr: backward searches add (src, mr) to Lout(y); forward searches
// add (src, mr) to Lin(y). Pruning rules PR1 and PR2 run first.
//
// The PR1 check is algebraically Query(y, src, mr+) (backward) or
// Query(src, y, mr+) (forward) on the current snapshot, evaluated here as
// one pass over y's own list plus fixedSet membership tests: Case 2 on the
// fixed side is (mr, rank(y)) ∈ fixedSet; Case 2 on y's side is an entry
// with hub rank(src); Case 1 is an entry of y whose (mr, hub) also sits in
// fixedSet.
//
// On a speculating builder the decision additionally covers the
// speculation's own buffered inserts (in the sequential build those are
// already in y's list), the read of y's list is recorded for commit-time
// validation, and a successful insert is buffered instead of applied — the
// dictionary and the canonical lists are never touched by a worker.
func (b *builder) insertCore(y, src graph.Vertex, dir direction, mr labelseq.Seq, mrCode labelseq.Code) insertStatus {
	ix := b.ix
	// PR2: skip entries at vertices with a strictly smaller rank than the
	// search source — their own earlier searches covered this pair.
	if !ix.opts.DisablePR2 && ix.rank[src] > ix.rank[y] {
		return prunedPR2
	}

	var yList []entry
	if dir == backward {
		yList = b.out[y]
	} else {
		yList = b.in[y]
	}
	if b.spec != nil {
		b.spec.recordRead(y, ySide(dir))
	}

	id := b.lookupCode(mrCode)
	if id != labelseq.InvalidID {
		if !ix.opts.DisablePR1 {
			// PR1: already answerable from the current snapshot.
			if _, ok := b.fixedSet[fixedKey(id, ix.rank[y])]; ok {
				return prunedPR1
			}
			rankSrc := ix.rank[src]
			for _, e := range yList {
				if e.mr != id {
					continue
				}
				if e.hub == rankSrc {
					return prunedPR1
				}
				if _, ok := b.fixedSet[fixedKey(id, e.hub)]; ok {
					return prunedPR1
				}
			}
			// Buffered inserts at y all carry hub rank(src) — the
			// speculating vertex is the KBS source — so any mr match
			// is the e.hub == rankSrc case above.
			if b.spec != nil && b.spec.overlayHas(y, ySide(dir), id) {
				return prunedPR1
			}
		} else {
			// Without PR1 still refuse exact duplicates, otherwise
			// entry lists would grow unboundedly within one search.
			if hasEntry(yList, ix.rank[src], id) {
				return prunedDup
			}
			if b.spec != nil && b.spec.overlayHas(y, ySide(dir), id) {
				return prunedDup
			}
		}
	}
	if b.spec != nil {
		b.spec.bufferInsert(y, dir, mr, mrCode, id)
		return inserted
	}
	if id == labelseq.InvalidID {
		id = ix.dict.InternCode(mrCode, mr)
	}
	e := entry{hub: ix.rank[src], mr: id}
	if dir == backward {
		b.out[y] = append(b.out[y], e)
		if b.dirtyOut != nil {
			b.dirtyOut[y] = b.dirtyStamp
		}
	} else {
		b.in[y] = append(b.in[y], e)
		if b.dirtyIn != nil {
			b.dirtyIn[y] = b.dirtyStamp
		}
	}
	return inserted
}

// lookupCode resolves a packed minimum-repeat code to its interned ID,
// falling back to the speculation's provisional interns on workers.
func (b *builder) lookupCode(code labelseq.Code) labelseq.ID {
	if id := b.ix.dict.LookupCode(code); id != labelseq.InvalidID {
		return id
	}
	if b.spec != nil {
		if id, ok := b.spec.shadow[code]; ok {
			return id
		}
	}
	return labelseq.InvalidID
}

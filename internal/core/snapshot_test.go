package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/snapshot"
)

// bundleBytes builds an index over g and renders its v2 bundle.
func bundleBytes(t testing.TB, g *graph.Graph, k int) (*Index, []byte) {
	t.Helper()
	ix, err := Build(g, Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return ix, buf.Bytes()
}

// assertEquivalent checks that want and got answer every (s, t, L) query of
// the index class identically, for every interned MR plus a few never-seen
// constraints.
func assertEquivalent(t *testing.T, g *graph.Graph, want, got *Index) {
	t.Helper()
	constraints := []labelseq.Seq{{0}, {1}, {0, 1}, {1, 0}}
	if g.NumLabels() > 2 {
		constraints = append(constraints, labelseq.Seq{2}, labelseq.Seq{0, 2})
	}
	n := g.NumVertices()
	for s := graph.Vertex(0); int(s) < n; s++ {
		for d := graph.Vertex(0); int(d) < n; d++ {
			for _, l := range constraints {
				w, werr := want.Query(s, d, l)
				o, oerr := got.Query(s, d, l)
				if (werr == nil) != (oerr == nil) || w != o {
					t.Fatalf("Query(%d, %d, %v): want (%v, %v), got (%v, %v)", s, d, l, w, werr, o, oerr)
				}
			}
		}
	}
}

func TestSnapshotRoundTripBytes(t *testing.T) {
	g := graph.Fig2()
	ix, data := bundleBytes(t, g, 2)
	s, err := OpenSnapshotBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		t.Fatalf("fresh bundle fails Verify: %v", err)
	}
	if s.K() != 2 {
		t.Errorf("K = %d", s.K())
	}
	if fp := g.Fingerprint(); s.Fingerprint() != fp {
		t.Errorf("fingerprint %v != %v", s.Fingerprint(), fp)
	}
	if s.Graph().NumVertices() != g.NumVertices() || s.Graph().NumEdges() != g.NumEdges() {
		t.Fatalf("embedded graph shape %d/%d", s.Graph().NumVertices(), s.Graph().NumEdges())
	}
	// Display names survive the round trip (Fig. 2 names its vertices).
	if got, want := s.Graph().VertexName(0), g.VertexName(0); got != want {
		t.Errorf("vertex name %q != %q", got, want)
	}
	if got, want := s.Graph().LabelName(0), g.LabelName(0); got != want {
		t.Errorf("label name %q != %q", got, want)
	}
	assertEquivalent(t, g, ix, s.Index())
	if err := s.Index().ValidateComplete(); err != nil {
		t.Fatalf("snapshot index incomplete: %v", err)
	}
}

func TestSnapshotOpenFile(t *testing.T) {
	g := graph.Fig2()
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig2.rlcs")
	if err := ix.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Path() != path {
		t.Errorf("Path = %q", s.Path())
	}
	t.Logf("mapped=%v size=%d sections=%d", s.Mapped(), s.SizeBytes(), len(s.Sections()))
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, g, ix, s.Index())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveSnapshotFileAtomicAndReadable pins two properties of the save
// path: the bundle is published by rename (rebuilding over a served path
// never truncates the mapped inode) and lands world-readable like an
// os.Create'd artifact, so a separately-privileged server can map it.
func TestSaveSnapshotFileAtomicAndReadable(t *testing.T) {
	g := graph.Fig2()
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig2.rlcs")
	if err := ix.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode().Perm() != 0o644 {
		t.Fatalf("bundle mode = %o, want 644", st.Mode().Perm())
	}
	// Overwrite while the first version is open: the open snapshot must
	// keep reading its original (renamed-away) inode undisturbed.
	old, err := OpenSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	if err := ix.SaveSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	if err := old.Verify(); err != nil {
		t.Fatalf("open snapshot disturbed by in-place rebuild: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

// TestSnapshotNoNames covers bundles of graphs without display names (the
// common case for generated and file-loaded graphs).
func TestSnapshotNoNames(t *testing.T) {
	g := graph.FromEdges(4, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}, {Src: 1, Dst: 2, Label: 1}, {Src: 2, Dst: 3, Label: 0}, {Src: 3, Dst: 0, Label: 1}})
	ix, data := bundleBytes(t, g, 2)
	s, err := OpenSnapshotBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if s.Graph().VertexNames() != nil || s.Graph().LabelNames() != nil {
		t.Error("nameless graph grew names through the bundle")
	}
	assertEquivalent(t, g, s.Index(), ix)
}

// TestGoldenV1ToV2Compat is the compatibility pin: the checked-in v1 golden
// file must load through the v1 reader, round-trip into a v2 bundle, and
// answer queries identically — the migration path for every pre-bundle
// index artifact. CI runs it in a dedicated compat job.
func TestGoldenV1ToV2Compat(t *testing.T) {
	g := graph.Fig2()
	data, err := os.ReadFile(filepath.Join("testdata", "fig2_k2_v1.rlc"))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Load(bytes.NewReader(data), g)
	if err != nil {
		t.Fatalf("golden v1 load: %v", err)
	}
	var buf bytes.Buffer
	if err := v1.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := OpenSnapshotBytes(buf.Bytes())
	if err != nil {
		t.Fatalf("v2 bundle of golden index does not open: %v", err)
	}
	defer s.Close()
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, g, v1, s.Index())
	if err := s.Index().ValidateComplete(); err != nil {
		t.Fatalf("v2 round-trip of golden index incomplete: %v", err)
	}
	// Example 4's answers, same as the v1 golden assertions.
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	if ok, err := s.Index().Query(v("v3"), v("v6"), labelseq.Seq{1, 0}); err != nil || !ok {
		t.Errorf("golden-via-v2 Q1 = %v, %v", ok, err)
	}
	if ok, err := s.Index().Query(v("v1"), v("v3"), labelseq.Seq{0}); err != nil || ok {
		t.Errorf("golden-via-v2 Q3 = %v, %v", ok, err)
	}
}

// TestLoadV1GraphMismatchTyped pins the typed sentinel on the v1 loader's
// shape check.
func TestLoadV1GraphMismatchTyped(t *testing.T) {
	g := graph.Fig2()
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	other := graph.FromEdges(3, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}, {Src: 1, Dst: 2, Label: 1}})
	if _, err := Load(bytes.NewReader(buf.Bytes()), other); !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("Load with wrong graph: err = %v, want ErrGraphMismatch", err)
	}
}

// TestSnapshotTruncation feeds every prefix of a valid bundle to the v2
// reader: all required sections make any strict prefix invalid, so each
// must fail with the typed corruption error and never panic.
func TestSnapshotTruncation(t *testing.T) {
	_, data := bundleBytes(t, graph.Fig2(), 2)
	for cut := 0; cut < len(data); cut++ {
		s, err := OpenSnapshotBytes(data[:cut])
		if err == nil {
			s.Close()
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("truncation to %d: error not typed ErrCorrupt: %v", cut, err)
		}
	}
}

// TestSnapshotTruncationOnDisk repeats a sample of truncations through the
// mmap open path.
func TestSnapshotTruncationOnDisk(t *testing.T) {
	_, data := bundleBytes(t, graph.Fig2(), 2)
	dir := t.TempDir()
	for _, cut := range []int{0, 3, 15, 16, len(data) / 4, len(data) / 2, len(data) - 1} {
		path := filepath.Join(dir, "trunc.rlcs")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := OpenSnapshot(path)
		if err == nil {
			s.Close()
			t.Fatalf("on-disk truncation to %d accepted", cut)
		}
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("on-disk truncation to %d: error not typed: %v", cut, err)
		}
	}
}

// rebundle re-renders a bundle after mutate edited its section map (nil
// value = drop the section). Checksums are recomputed, so these bundles
// exercise the semantic validation behind the container layer.
func rebundle(t *testing.T, data []byte, mutate func(secs map[uint32][]byte)) []byte {
	t.Helper()
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	secs := make(map[uint32][]byte)
	var order []uint32
	for _, info := range f.Sections() {
		b, _ := f.Section(info.ID)
		secs[info.ID] = append([]byte(nil), b...)
		order = append(order, info.ID)
	}
	mutate(secs)
	w := snapshot.NewWriter()
	for _, id := range order {
		if b, ok := secs[id]; ok {
			w.Add(id, b)
		}
	}
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotSemanticCorruption drives the v2 reader's structural
// validation: plausible containers with nonsense payloads must be rejected
// with the typed error, never panic, never open.
func TestSnapshotSemanticCorruption(t *testing.T) {
	_, base := bundleBytes(t, graph.Fig2(), 2)
	cases := []struct {
		name   string
		mutate func(secs map[uint32][]byte)
	}{
		{"meta-k-zero", func(s map[uint32][]byte) { s[secMeta][0] = 0 }},
		{"meta-k-huge", func(s map[uint32][]byte) { s[secMeta][0] = MaxK + 1 }},
		{"meta-entrycount-drift", func(s map[uint32][]byte) { s[secMeta][32]++ }},
		{"missing-entries", func(s map[uint32][]byte) { delete(s, secEntries) }},
		{"missing-dict", func(s map[uint32][]byte) { delete(s, secDict) }},
		{"missing-graph", func(s map[uint32][]byte) { delete(s, secGraphOutDst) }},
		{"order-duplicate", func(s map[uint32][]byte) { copy(s[secOrder][4:8], s[secOrder][0:4]) }},
		{"order-oob", func(s map[uint32][]byte) {
			s[secOrder][0] = 0xff
			s[secOrder][1] = 0xff
			s[secOrder][2] = 0xff
			s[secOrder][3] = 0x7f
		}},
		{"index-outoff-nonzero", func(s map[uint32][]byte) { s[secIndexOutOff][0] = 1 }},
		{"index-inoff-decreasing", func(s map[uint32][]byte) {
			b := s[secIndexInOff]
			copy(b[len(b)-4:], []byte{0, 0, 0, 0})
		}},
		{"entry-mr-oob", func(s map[uint32][]byte) {
			b := s[secEntries]
			copy(b[4:8], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"entry-hub-negative", func(s map[uint32][]byte) {
			// hub = -1 sails past the sorted check (prev starts at -1) and
			// the upper bound; the explicit sign check must catch it or
			// LinEntries would index order[-1].
			b := s[secEntries]
			copy(b[0:4], []byte{0xff, 0xff, 0xff, 0xff})
		}},
		{"graph-dst-oob", func(s map[uint32][]byte) {
			b := s[secGraphOutDst]
			copy(b[0:4], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"dict-label-oob", func(s map[uint32][]byte) {
			b := s[secDict]
			// First sequence has len >= 1; poison its first label.
			copy(b[1:5], []byte{0xff, 0xff, 0xff, 0x7f})
		}},
		{"dict-trailing", func(s map[uint32][]byte) { s[secDict] = append(s[secDict], 0xaa) }},
		{"names-count-drift", func(s map[uint32][]byte) { s[secVertexNames][0]++ }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := rebundle(t, base, tc.mutate)
			s, err := OpenSnapshotBytes(data)
			if err == nil {
				s.Close()
				t.Fatal("semantic corruption accepted")
			}
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("error not typed ErrCorrupt: %v", err)
			}
		})
	}
}

// TestSnapshotVerifyCatchesBitFlips pins the Open/Verify split: an in-range
// bit flip in the entries payload opens fine (the structure still holds)
// but must fail Verify via its checksum.
func TestSnapshotVerifyCatchesBitFlips(t *testing.T) {
	_, data := bundleBytes(t, graph.Fig2(), 2)
	f, err := snapshot.OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	infos := f.Sections()
	var entriesOff uint64
	for _, info := range infos {
		if info.ID == secEntries {
			entriesOff = info.Offset
		}
	}
	corrupt := append([]byte(nil), data...)
	corrupt[entriesOff+4] ^= 0x01 // flip the low bit of the first entry's mr
	s, err := OpenSnapshotBytes(corrupt)
	if err != nil {
		// Structure may reject it too (mr could leave range) — fine, typed.
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("open error not typed: %v", err)
		}
		return
	}
	defer s.Close()
	if err := s.Verify(); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("Verify = %v, want typed ErrCorrupt", err)
	}
}

// FuzzOpenSnapshot mutates bundle bytes arbitrarily: the reader must never
// panic, and every rejection must carry the typed corruption error. Bundles
// that both open and verify must answer queries without panicking.
func FuzzOpenSnapshot(f *testing.F) {
	_, valid := bundleBytes(f, graph.Fig2(), 2)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("RLCS"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenSnapshotBytes(data)
		if err != nil {
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("open error not typed ErrCorrupt: %v", err)
			}
			return
		}
		defer s.Close()
		if err := s.Verify(); err != nil {
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Fatalf("verify error not typed ErrCorrupt: %v", err)
			}
			return
		}
		ix, g := s.Index(), s.Graph()
		n := g.NumVertices()
		if n == 0 {
			return
		}
		for _, l := range []labelseq.Seq{{0}, {0, 1}} {
			_, _ = ix.Query(0, graph.Vertex(n-1), l)
		}
		_ = ix.LinEntries(0)
		_ = ix.LoutEntries(graph.Vertex(n - 1))
	})
}

// TestQueryBatchCtxCanceled pins the cancellation contract: a canceled
// context yields the context error in every unanswered slot.
func TestQueryBatchCtxCanceled(t *testing.T) {
	g := graph.Fig2()
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]BatchQuery, 200)
	for i := range queries {
		queries[i] = BatchQuery{S: 0, T: 1, L: labelseq.Seq{0}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		results := ix.QueryBatchCtx(ctx, queries, workers)
		if len(results) != len(queries) {
			t.Fatalf("got %d results", len(results))
		}
		for i, r := range results {
			if !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("workers=%d result %d: err = %v, want context.Canceled", workers, i, r.Err)
			}
		}
	}
	// A live context answers normally through the ctx variants.
	results := ix.QueryBatchCtx(context.Background(), queries[:4], 2)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
	}
}

// TestQueryRLCContext pins the Querier-facing index method.
func TestQueryRLCContext(t *testing.T) {
	g := graph.Fig2()
	ix, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ix.Query(0, 1, labelseq.Seq{0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ix.QueryRLC(context.Background(), 0, 1, labelseq.Seq{0})
	if err != nil || got != want {
		t.Fatalf("QueryRLC = %v, %v; want %v", got, err, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.QueryRLC(ctx, 0, 1, labelseq.Seq{0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled QueryRLC err = %v", err)
	}
}

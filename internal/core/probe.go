package core

import (
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TargetProbe precomputes the target side of Query(·, t, L+) so that many
// candidate sources can be tested with one pass over their Lout list each.
// The hybrid evaluator of extended queries (Q4-style, Section VI-C) probes
// every frontier vertex against a fixed (t, L+), which this amortizes.
type TargetProbe struct {
	ix    *Index
	t     graph.Vertex
	mr    labelseq.ID
	rankT int32
	// hubs is a bitmap over access ranks: bit h set iff (hub h, L) ∈
	// Lin(t). Case 1 tests Lout(s) hubs against it; case 2 tests rank(s)
	// itself (an entry (s, L) ∈ Lin(t) has hub rank(s)).
	hubs  []uint64
	valid bool
}

// NewTargetProbe prepares a probe for Query(·, t, l). The constraint is
// validated like a regular query (with s := t, which shares the same vertex
// check).
func (ix *Index) NewTargetProbe(t graph.Vertex, l labelseq.Seq) (*TargetProbe, error) {
	if err := ix.checkQuery(t, t, l); err != nil {
		return nil, err
	}
	p := &TargetProbe{ix: ix, t: t, rankT: ix.rank[t]}
	p.mr = ix.dict.Lookup(l)
	if p.mr == labelseq.InvalidID {
		// No path in the graph carries this k-MR: every probe is false.
		return p, nil
	}
	p.valid = true
	p.hubs = make([]uint64, (ix.g.NumVertices()+63)/64)
	for _, e := range ix.lin(t) {
		if e.mr == p.mr {
			p.hubs[e.hub>>6] |= 1 << uint(e.hub&63)
		}
	}
	return p, nil
}

// Reaches reports whether Query(s, t, L+) holds, in one pass over Lout(s).
// On a size-budgeted index a demoted endpoint's lists are truncated, so the
// precomputed bitmap and the Lout scan would silently miss entries; those
// probes delegate to the exact three-tier query path instead.
func (p *TargetProbe) Reaches(s graph.Vertex) bool {
	if !p.valid {
		return false
	}
	if tr := p.ix.tiers; tr != nil &&
		(p.rankT >= tr.retainedRanks || p.ix.rank[s] >= tr.retainedRanks) {
		return p.ix.queryByID(s, p.t, p.mr)
	}
	// Case 2: (s, L) ∈ Lin(t).
	rs := p.ix.rank[s]
	if p.hubs[rs>>6]&(1<<uint(rs&63)) != 0 {
		return true
	}
	for _, e := range p.ix.lout(s) {
		if e.mr != p.mr {
			continue
		}
		// Case 2: (t, L) ∈ Lout(s); Case 1: shared hub with Lin(t).
		if e.hub == p.rankT || p.hubs[e.hub>>6]&(1<<uint(e.hub&63)) != 0 {
			return true
		}
	}
	return false
}

// SourceProbe is the mirror of TargetProbe: it precomputes the source side
// of Query(s, ·, L+) so that many candidate targets can be tested with one
// pass over their Lin list each.
type SourceProbe struct {
	ix    *Index
	s     graph.Vertex
	mr    labelseq.ID
	rankS int32
	// hubs is a bitmap over access ranks: bit h set iff (hub h, L) ∈
	// Lout(s).
	hubs  []uint64
	valid bool
}

// NewSourceProbe prepares a probe for Query(s, ·, l).
func (ix *Index) NewSourceProbe(s graph.Vertex, l labelseq.Seq) (*SourceProbe, error) {
	if err := ix.checkQuery(s, s, l); err != nil {
		return nil, err
	}
	p := &SourceProbe{ix: ix, s: s, rankS: ix.rank[s]}
	p.mr = ix.dict.Lookup(l)
	if p.mr == labelseq.InvalidID {
		return p, nil
	}
	p.valid = true
	p.hubs = make([]uint64, (ix.g.NumVertices()+63)/64)
	for _, e := range ix.lout(s) {
		if e.mr == p.mr {
			p.hubs[e.hub>>6] |= 1 << uint(e.hub&63)
		}
	}
	return p, nil
}

// Reaches reports whether Query(s, t, L+) holds, in one pass over Lin(t).
// Like TargetProbe.Reaches, probes touching a demoted vertex of a
// size-budgeted index delegate to the exact three-tier query path.
func (p *SourceProbe) Reaches(t graph.Vertex) bool {
	if !p.valid {
		return false
	}
	if tr := p.ix.tiers; tr != nil &&
		(p.rankS >= tr.retainedRanks || p.ix.rank[t] >= tr.retainedRanks) {
		return p.ix.queryByID(p.s, t, p.mr)
	}
	// Case 2: (t, L) ∈ Lout(s).
	rt := p.ix.rank[t]
	if p.hubs[rt>>6]&(1<<uint(rt&63)) != 0 {
		return true
	}
	for _, e := range p.ix.lin(t) {
		if e.mr != p.mr {
			continue
		}
		// Case 2: (s, L) ∈ Lin(t); Case 1: shared hub with Lout(s).
		if e.hub == p.rankS || p.hubs[e.hub>>6]&(1<<uint(e.hub&63)) != 0 {
			return true
		}
	}
	return false
}

package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// Size-budgeted index tiers (FERRARI-style, adapted to RLC labels).
//
// An unbudgeted index stores the full Lin/Lout entry lists of every vertex.
// Options.MaxIndexBytes caps that: the builder retains full (packed) lists
// only for the vertices at the front of the access order — the hub ordering
// already ranks vertices by how much reachability their lists cover, and in
// a pruned 2-hop labeling the top-ranked hubs also have the *smallest*
// lists, so the budget's exact tier is precisely where entries pay off most.
// Every other vertex is demoted: its lists are dropped from the index and
// replaced by two compact may-reach filters whose negative answers are
// definitive:
//
//   - a hash-consed MR-union bitset per direction — the OR of the dropped
//     list's MR ids, interned in a tier-local pool exactly like the packed
//     form's MR-sets (demoted vertices massively repeat union shapes);
//   - a per-direction block Bloom filter over the dropped (hub, mr) pairs —
//     bloomWords 64-bit words per block, two probes per key, sized to the
//     budget left after the exact tier and the unions.
//
// The query path becomes three-tier. Both endpoints retained: the normal
// exact probe on complete lists (tier 1). Any endpoint demoted: the filter
// probe (tier 2) — every structure over-approximates the dropped lists, so
// an all-negative probe is a definitive FALSE, a hit on the *retained* side's
// complete list is a definitive TRUE, and only a genuine "maybe" falls
// through to tier 3, an exact product-BFS traversal over the graph. Per-tier
// atomic counters make the filter's false-positive rate observable in
// /stats.
//
// Demotion is physical: after the filters are built the demoted lists are
// truncated from the entry CSR and the packed form is re-derived, so
// NumEntries, SizeBytes, serialization, and the packed==entries invariant
// all reflect the budget automatically. The budget is a target with a
// floor: the exact tier never exceeds it, but the filter tier always keeps
// at least one bloom word per block (~24 bytes/vertex plus the union pool),
// so a budget below that floor yields the floor, never an unsound index.

// invalidTierSet marks a demoted vertex whose dropped list was empty: no MR
// is present, every union probe is false.
const invalidTierSet = ^uint32(0)

// tierVerdict is the outcome of a filter probe.
type tierVerdict uint8

const (
	tierFalse tierVerdict = iota // definitive: no structure admits the query
	tierTrue                     // definitive: found on a retained, complete list
	tierMaybe                    // filters cannot exclude it: traverse
)

// tiers is the filter tier of a size-budgeted index. Ranks [0, retainedRanks)
// keep their full entry lists; every demoted vertex v occupies slot
// rank[v]-retainedRanks in the union and bloom arrays (the rank prefix makes
// slots contiguous — no id map).
type tiers struct {
	retainedRanks int32  // ranks below this keep full lists
	budget        int64  // the configured Options.MaxIndexBytes
	bloomWords    uint32 // 64-bit words per bloom block; power of two in [1, 64]

	unionOut []uint32 // slot -> union set id over dropped Lout MRs (invalidTierSet = empty)
	unionIn  []uint32 // slot -> union set id over dropped Lin MRs
	desc     []setDesc
	words    []uint64 // tier-local hash-consed union pool
	bloom    []uint64 // blocks: slot*2 = out, slot*2+1 = in; bloomWords words each

	exactHits      atomic.Int64 // tier-1 answers (complete-list probe decided)
	filterDefinite atomic.Int64 // tier-2 answers (filters decided without traversal)
	filterMaybe    atomic.Int64 // tier-3 answers (filters said maybe; traversal ran)

	// Tier-3 machinery: one lazily compiled NFA per interned MR (queries only
	// reach the fallback with MRs the dictionary maps, which are exactly the
	// validated constraint they looked up), and a pool of reusable product-BFS
	// evaluators (an Evaluator is not concurrent-safe; queries are).
	nfas  []atomic.Pointer[automaton.NFA]
	evals sync.Pool
}

// slotOf returns the demoted slot of rank r.
func (tr *tiers) slotOf(r int32) int32 { return r - tr.retainedRanks }

// outBlock returns the bloom block guarding the dropped Lout list of slot.
//
//rlc:noalloc
func (tr *tiers) outBlock(slot int32) []uint64 {
	w := int64(tr.bloomWords)
	off := int64(slot) * 2 * w
	return tr.bloom[off : off+w]
}

// inBlock returns the bloom block guarding the dropped Lin list of slot.
//
//rlc:noalloc
func (tr *tiers) inBlock(slot int32) []uint64 {
	w := int64(tr.bloomWords)
	off := int64(slot)*2*w + w
	return tr.bloom[off : off+w]
}

// mix64 is the splitmix64 finalizer — the bloom key hash.
//
//rlc:noalloc
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// bloomHas probes block for the (hub, mr) key: two bits derived from one
// 64-bit hash (low and high halves — blocks are at most 4096 bits, so the
// halves are independent). False means the dropped list definitively did not
// carry (hub, mr); true means maybe.
//
//rlc:noalloc
func (tr *tiers) bloomHas(block []uint64, hub uint32, mr labelseq.ID) bool {
	h := mix64(uint64(hub)<<32 | uint64(uint32(mr)))
	mask := uint64(len(block))*64 - 1
	b1, b2 := h&mask, (h>>32)&mask
	return block[b1>>6]>>(b1&63)&1 != 0 && block[b2>>6]>>(b2&63)&1 != 0
}

// bloomAdd inserts the (hub, mr) key — the build-time mirror of bloomHas.
func (tr *tiers) bloomAdd(block []uint64, hub uint32, mr labelseq.ID) {
	h := mix64(uint64(hub)<<32 | uint64(uint32(mr)))
	mask := uint64(len(block))*64 - 1
	b1, b2 := h&mask, (h>>32)&mask
	block[b1>>6] |= 1 << (b1 & 63)
	block[b2>>6] |= 1 << (b2 & 63)
}

// unionHas reports whether the union set contains mr — the same windowed
// bit probe as the packed form's has, over the tier-local pool.
//
//rlc:noalloc
func (tr *tiers) unionHas(set uint32, mr labelseq.ID) bool {
	if set == invalidTierSet {
		return false
	}
	d := tr.desc[set]
	w := uint32(mr>>6) - d.base // unsigned: below-window wraps huge
	if w >= d.span {
		return false
	}
	return tr.words[d.off+w]>>(mr&63)&1 != 0
}

// sizeBytes is the resident size of the filter tier: union slot arrays,
// descriptors, pool words, bloom blocks, and the fixed meta record.
func (tr *tiers) sizeBytes() int64 {
	return int64(len(tr.unionOut)+len(tr.unionIn))*4 + int64(len(tr.desc))*12 +
		int64(len(tr.words))*8 + int64(len(tr.bloom))*8 + tierMetaSize
}

// initTierRuntime attaches tr to ix and wires the tier-3 fallback machinery
// (shared by Build and the snapshot open path).
func initTierRuntime(ix *Index, tr *tiers) {
	tr.nfas = make([]atomic.Pointer[automaton.NFA], ix.dict.Len())
	g := ix.g
	tr.evals.New = func() any { return traversal.NewEvaluator(g) }
	ix.tiers = tr
}

// Tiered reports whether the index is size-budgeted: demoted vertices answer
// through may-reach filters with an exact traversal fallback. False for
// unbudgeted indexes and for budgets large enough to retain every vertex.
func (ix *Index) Tiered() bool { return ix.tiers != nil }

// TierStats summarizes the filter tier and its hit counters for reporting.
type TierStats struct {
	// Budget is the configured MaxIndexBytes (0 on an untiered index).
	Budget int64
	// RetainedVertices keep full entry lists; DemotedVertices answer through
	// filters. Retained+Demoted equals the vertex count on a tiered index.
	RetainedVertices int
	DemotedVertices  int
	// FilterBytes is the resident size of the filter tier (unions, blooms,
	// slot arrays, meta).
	FilterBytes int64
	// UnionSets is the number of distinct hash-consed MR-union sets.
	UnionSets int
	// BloomBitsPerFilter is the size of one per-vertex, per-direction bloom
	// block in bits.
	BloomBitsPerFilter int
	// ExactHits counts queries decided on complete lists (tier 1, including
	// definitive TRUEs found on the retained side of a mixed query);
	// FilterDefinite counts queries the filters decided without traversal;
	// FilterMaybe counts queries that fell through to the exact traversal.
	ExactHits      int64
	FilterDefinite int64
	FilterMaybe    int64
}

// TierStats returns the filter tier's summary; the zero value when the index
// is not tiered.
func (ix *Index) TierStats() TierStats {
	tr := ix.tiers
	if tr == nil {
		return TierStats{}
	}
	return TierStats{
		Budget:             tr.budget,
		RetainedVertices:   int(tr.retainedRanks),
		DemotedVertices:    len(tr.unionOut),
		FilterBytes:        tr.sizeBytes(),
		UnionSets:          len(tr.desc),
		BloomBitsPerFilter: int(tr.bloomWords) * 64,
		ExactHits:          tr.exactHits.Load(),
		FilterDefinite:     tr.filterDefinite.Load(),
		FilterMaybe:        tr.filterMaybe.Load(),
	}
}

// queryTiered answers a query with at least one demoted endpoint: filter
// probe first, exact traversal only on "maybe". Counter increments are
// atomic adds, which the noalloc allowlist covers.
//
//rlc:noalloc
func (ix *Index) queryTiered(s, t graph.Vertex, mr labelseq.ID) bool {
	tr := ix.tiers
	switch ix.probeTiered(s, t, mr) {
	case tierTrue:
		tr.exactHits.Add(1)
		return true
	case tierFalse:
		tr.filterDefinite.Add(1)
		return false
	}
	tr.filterMaybe.Add(1)
	return ix.traverseFallback(s, t, mr) //rlc:allocok tier-3 fallback: pooled evaluator + lazy NFA compile
}

// probeTiered runs the tier-2 filter probe for a query with at least one
// demoted endpoint. Soundness: a retained vertex's lists are complete, so a
// hit there is a definitive TRUE; every filter over-approximates the dropped
// list it stands in for, so a probe that excludes Case 2 in both directions
// and Case 1 (Definition 4) is a definitive FALSE.
//
//rlc:noalloc
func (ix *Index) probeTiered(s, t graph.Vertex, mr labelseq.ID) tierVerdict {
	tr := ix.tiers
	r := tr.retainedRanks
	rs, rt := ix.rank[s], ix.rank[t]
	switch {
	case rs < r: // s retained, t demoted
		// Case 2: (rank(t), mr) ∈ Lout(s) — exact on the complete list.
		if ix.loutHas(s, rt, mr) {
			return tierTrue
		}
		ts := tr.slotOf(rt)
		if !tr.unionHas(tr.unionIn[ts], mr) {
			// The dropped Lin(t) carried no entry with this MR at all:
			// no Case 2 on the t side and no Case 1 either.
			return tierFalse
		}
		// Case 2 mirror: (rank(s), mr) ∈ Lin(t)?
		if tr.bloomHas(tr.inBlock(ts), uint32(rs), mr) {
			return tierMaybe
		}
		// Case 1: a hub carrying mr on both Lout(s) and the dropped Lin(t).
		if ix.anyOutHubMaybe(s, mr, tr.inBlock(ts)) {
			return tierMaybe
		}
		return tierFalse
	case rt < r: // t retained, s demoted — the mirror image
		if ix.linHas(t, rs, mr) {
			return tierTrue
		}
		ss := tr.slotOf(rs)
		if !tr.unionHas(tr.unionOut[ss], mr) {
			return tierFalse
		}
		if tr.bloomHas(tr.outBlock(ss), uint32(rt), mr) {
			return tierMaybe
		}
		if ix.anyInHubMaybe(t, mr, tr.outBlock(ss)) {
			return tierMaybe
		}
		return tierFalse
	default: // both demoted
		ss, ts := tr.slotOf(rs), tr.slotOf(rt)
		outHas := tr.unionHas(tr.unionOut[ss], mr)
		inHas := tr.unionHas(tr.unionIn[ts], mr)
		// Case 1 needs mr on both dropped lists; the unions cannot localize
		// the common hub, so both present is already a maybe.
		if outHas && inHas {
			return tierMaybe
		}
		// Case 2 either way: (rank(t), mr) ∈ Lout(s) / (rank(s), mr) ∈ Lin(t).
		if outHas && tr.bloomHas(tr.outBlock(ss), uint32(rt), mr) {
			return tierMaybe
		}
		if inHas && tr.bloomHas(tr.inBlock(ts), uint32(rs), mr) {
			return tierMaybe
		}
		return tierFalse
	}
}

// loutHas is exact (hub, mr) membership on a retained vertex's complete Lout
// list, through the packed form when present.
//
//rlc:noalloc
func (ix *Index) loutHas(v graph.Vertex, hub int32, mr labelseq.ID) bool {
	if p := ix.packed; p != nil {
		return p.groupHas(p.groups[p.outOff[v]:p.outOff[v+1]], hub, mr)
	}
	return hasEntry(ix.lout(v), hub, mr)
}

// linHas is the Lin mirror of loutHas.
//
//rlc:noalloc
func (ix *Index) linHas(v graph.Vertex, hub int32, mr labelseq.ID) bool {
	if p := ix.packed; p != nil {
		return p.groupHas(p.groups[p.inOff[v]:p.inOff[v+1]], hub, mr)
	}
	return hasEntry(ix.lin(v), hub, mr)
}

// anyOutHubMaybe enumerates the hubs carrying mr on the retained vertex s's
// complete Lout list and bloom-probes each against the demoted side's block:
// true when some common hub cannot be excluded (Case 1 maybe), false when
// every one is (Case 1 definitively fails).
//
//rlc:noalloc
func (ix *Index) anyOutHubMaybe(s graph.Vertex, mr labelseq.ID, block []uint64) bool {
	tr := ix.tiers
	if p := ix.packed; p != nil {
		for _, g := range p.groups[p.outOff[s]:p.outOff[s+1]] {
			if p.has(g.set, mr) && tr.bloomHas(block, uint32(g.hub), mr) {
				return true
			}
		}
		return false
	}
	for _, e := range ix.lout(s) {
		if e.mr == mr && tr.bloomHas(block, uint32(e.hub), mr) {
			return true
		}
	}
	return false
}

// anyInHubMaybe is the Lin mirror of anyOutHubMaybe.
//
//rlc:noalloc
func (ix *Index) anyInHubMaybe(t graph.Vertex, mr labelseq.ID, block []uint64) bool {
	tr := ix.tiers
	if p := ix.packed; p != nil {
		for _, g := range p.groups[p.inOff[t]:p.inOff[t+1]] {
			if p.has(g.set, mr) && tr.bloomHas(block, uint32(g.hub), mr) {
				return true
			}
		}
		return false
	}
	for _, e := range ix.lin(t) {
		if e.mr == mr && tr.bloomHas(block, uint32(e.hub), mr) {
			return true
		}
	}
	return false
}

// traverseFallback is tier 3: an exact product BFS over graph × NFA. The
// NFA for each MR is compiled once and cached; evaluators are pooled because
// one is not concurrent-safe but queries are.
func (ix *Index) traverseFallback(s, t graph.Vertex, mr labelseq.ID) bool {
	tr := ix.tiers
	nfa := tr.nfas[mr].Load()
	if nfa == nil {
		numLabels := ix.g.NumLabels()
		if numLabels == 0 {
			numLabels = 1
		}
		// Interned sequences are non-empty, at most k long, and in label
		// range (Build interns only validated sequences; decodeDict enforces
		// the same bounds), so Compile cannot fail here — but a corrupt
		// in-memory state must degrade to the safe answer for the query
		// semantics, which for an uncompilable constraint is "no path".
		built, err := automaton.NewPlus(ix.dict.Seq(mr), numLabels)
		if err != nil {
			return false
		}
		tr.nfas[mr].Store(built)
		nfa = built
	}
	ev := tr.evals.Get().(*traversal.Evaluator)
	ok := ev.BiBFS(s, t, nfa)
	tr.evals.Put(ev)
	return ok
}

// tierSlotBytes is the per-demoted-vertex space the filter tier always
// keeps regardless of content: two u32 union slots plus two one-word bloom
// blocks.
const tierSlotBytes = 2*4 + 2*8

// tier demotes vertices to fit Options.MaxIndexBytes. size(r) is the EXACT
// tiered size at the minimum bloom width when ranks [r, n) are demoted:
// hash-consed union-pool totals depend only on the set of distinct windows,
// not insertion order, so the walk from r = n-1 down to 0 can maintain them
// incrementally in a counting table and read off the real size at every
// candidate cut. The builder keeps the largest exact prefix whose size fits
// the budget, and when even the cheapest layout exceeds the budget (the
// floor case) it takes the size-minimizing cut instead.
//
// That makes the built size monotone in the budget and bounded by
// min(full, max(budget, floor)): with cuts chosen by exact size, a looser
// budget either keeps the same cut (and can only grow the bloom blocks
// into its larger residual) or moves to a higher cut whose size already
// exceeds everything the tighter budget could build. On graphs whose
// entry lists are smaller than a filter — where even the floor layout
// would exceed the unbudgeted index — the builder refuses to tier at all:
// a size budget must never produce a larger index.
//
// Filters are then built from the (still complete) demoted lists, the
// demoted lists are truncated from the entry CSR, and the packed form is
// re-derived — so every representation the index serves or serializes
// reflects the budget. A budget that fits the whole index is a no-op: the
// index stays bit-identical to an unbudgeted build.
func (ix *Index) tier() error {
	budget := ix.opts.MaxIndexBytes
	if budget <= 0 {
		return nil
	}
	if budget >= ix.SizeBytes() {
		return nil // the whole index fits: no tiering, bit-identical bundle
	}
	n := ix.g.NumVertices()
	// Fixed costs (dictionary, offset arrays) live outside the tier
	// trade-off but inside SizeBytes, which the budget is denominated in.
	fixed := ix.SizeBytes() - ix.NumEntries()*8
	w := setWordsFor(ix.dict.Len())
	tmp := make([]uint64, w)
	key := make([]byte, 4+w*8)
	// windowKey renders a list's MR-union as its consing key — the window
	// base followed by the window words — leaving the bitset in tmp. Nil for
	// an empty list (stored as invalidTierSet, no pool cost).
	windowKey := func(list []entry) []byte {
		if len(list) == 0 {
			return nil
		}
		clear(tmp)
		for _, e := range list {
			tmp[e.mr>>6] |= 1 << (e.mr & 63)
		}
		first, last := 0, len(tmp)-1
		for tmp[first] == 0 {
			first++
		}
		for tmp[last] == 0 {
			last--
		}
		binary.LittleEndian.PutUint32(key, uint32(first))
		for wi, word := range tmp[first : last+1] {
			binary.LittleEndian.PutUint64(key[4+wi*8:], word)
		}
		return key[:4+(last-first+1)*8]
	}

	// Selection: walk the cut down from n, consing each newly demoted
	// vertex's windows into a counting table so size(r) is exact.
	seen := make(map[string]struct{})
	poolBytes := int64(0) // 12 B descriptor + 8 B/word per distinct window
	prefixEntryBytes := ix.NumEntries() * 8
	retained, best, bestSize := -1, n-1, int64(math.MaxInt64)
	for r := n - 1; r >= 0; r-- {
		v := ix.order[r]
		for _, list := range [2][]entry{ix.lout(v), ix.lin(v)} {
			k := windowKey(list)
			if k == nil {
				continue
			}
			if _, ok := seen[string(k)]; !ok {
				seen[string(k)] = struct{}{}
				poolBytes += 12 + int64(len(k)-4)
			}
		}
		prefixEntryBytes -= int64(len(ix.lout(v))+len(ix.lin(v))) * 8
		size := fixed + prefixEntryBytes + int64(n-r)*tierSlotBytes + poolBytes + tierMetaSize
		if size <= budget {
			retained = r
			break
		}
		if size < bestSize {
			best, bestSize = r, size
		}
	}
	if retained < 0 {
		if bestSize >= ix.SizeBytes() {
			// Even the cheapest tiered layout is no smaller than the full
			// index: the per-vertex filter floor exceeds what demotion
			// saves. Tiering would grow the index while costing exactness
			// of the fast path, so keep the whole index instead.
			return nil
		}
		retained = best // floor: no cut fits, take the smallest layout
	}
	exactBytes := int64(0)
	for r := 0; r < retained; r++ {
		v := ix.order[r]
		exactBytes += int64(len(ix.lout(v))+len(ix.lin(v))) * 8
	}
	d := n - retained
	tr := &tiers{
		retainedRanks: int32(retained),
		budget:        budget,
		unionOut:      make([]uint32, d),
		unionIn:       make([]uint32, d),
	}

	// MR-union bitsets over the dropped lists, hash-consed exactly like
	// pack's MR-sets: window-compressed words keyed by base+bits. The pool
	// totals match the selection walk's (same distinct-window set), only the
	// IDs are assigned in slot order here.
	table := make(map[string]uint32)
	intern := func(list []entry) (uint32, error) {
		k := windowKey(list)
		if k == nil {
			return invalidTierSet, nil
		}
		set, ok := table[string(k)]
		if !ok {
			first := binary.LittleEndian.Uint32(k[:4])
			span := (len(k) - 4) / 8
			if int64(len(table)) >= math.MaxInt32-1 || // reserve invalidTierSet
				int64(len(tr.words))+int64(span) > math.MaxInt32 {
				return 0, fmt.Errorf("rlc: tier union pool exceeds 2^31-1 sets or words")
			}
			set = uint32(len(table))
			table[string(k)] = set
			tr.desc = append(tr.desc, setDesc{
				off:  uint32(len(tr.words)),
				base: first,
				span: uint32(span),
			})
			tr.words = append(tr.words, tmp[first:first+uint32(span)]...)
		}
		return set, nil
	}
	for r := retained; r < n; r++ {
		v := ix.order[r]
		slot := r - retained
		var err error
		if tr.unionOut[slot], err = intern(ix.lout(v)); err != nil {
			return err
		}
		if tr.unionIn[slot], err = intern(ix.lin(v)); err != nil {
			return err
		}
	}

	// Bloom blocks: the largest power-of-two word count the residual budget
	// affords, clamped to [1, 64] words ([64, 4096] bits) per block.
	unionBytes := int64(2*d)*4 + int64(len(tr.desc))*12 + int64(len(tr.words))*8
	residual := budget - fixed - exactBytes - unionBytes - tierMetaSize
	bloomWords := uint32(1)
	for bloomWords < 64 && int64(2*d)*int64(bloomWords*2)*8 <= residual {
		bloomWords *= 2
	}
	tr.bloomWords = bloomWords
	tr.bloom = make([]uint64, int64(2*d)*int64(bloomWords))
	for r := retained; r < n; r++ {
		v := ix.order[r]
		slot := int32(r - retained)
		for _, e := range ix.lout(v) {
			tr.bloomAdd(tr.outBlock(slot), uint32(e.hub), e.mr)
		}
		for _, e := range ix.lin(v) {
			tr.bloomAdd(tr.inBlock(slot), uint32(e.hub), e.mr)
		}
	}

	// Physically truncate the demoted lists from the entry CSR: the entry
	// array stays authoritative for exactly what the index retains.
	keep := int64(0)
	for r := 0; r < retained; r++ {
		v := ix.order[r]
		keep += int64(len(ix.lout(v)) + len(ix.lin(v)))
	}
	entries := make([]entry, 0, keep)
	outOff := make([]int32, n+1)
	inOff := make([]int32, n+1)
	for v := 0; v < n; v++ {
		outOff[v] = int32(len(entries))
		if ix.rank[v] < tr.retainedRanks {
			entries = append(entries, ix.lout(graph.Vertex(v))...)
		}
	}
	outOff[n] = int32(len(entries))
	for v := 0; v < n; v++ {
		inOff[v] = int32(len(entries))
		if ix.rank[v] < tr.retainedRanks {
			entries = append(entries, ix.lin(graph.Vertex(v))...)
		}
	}
	inOff[n] = int32(len(entries))
	ix.entries, ix.outOff, ix.inOff = entries, outOff, inOff
	if ix.packed != nil {
		// Re-derive the packed form from the truncated entries so the
		// packed==entries invariant (and Snapshot.Verify) keeps holding.
		if err := ix.pack(); err != nil {
			return err
		}
	}
	initTierRuntime(ix, tr)
	return nil
}

// verifyTiers checks the tier block's semantic consistency with the entry
// array: a tiered index must have physically truncated every demoted
// vertex's lists (a bundle assembled from mismatched halves — a tier block
// claiming one retention split stapled to entries from another — checksums
// clean but would answer from lists the filters do not cover).
func (ix *Index) verifyTiers() error {
	tr := ix.tiers
	if tr == nil {
		return nil
	}
	for r := int(tr.retainedRanks); r < len(ix.order); r++ {
		v := ix.order[r]
		if len(ix.lout(v)) != 0 || len(ix.lin(v)) != 0 {
			return fmt.Errorf("rlc: tier block retains %d ranks but demoted vertex %d (rank %d) still has entries",
				tr.retainedRanks, v, r)
		}
	}
	return nil
}

// VerifyTiers is the exported face of verifyTiers for inspection tools that
// replicate Snapshot.Verify piecewise (rlcinspect); nil on an untiered index.
func (ix *Index) VerifyTiers() error { return ix.verifyTiers() }

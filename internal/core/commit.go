package core

import (
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// committer applies the speculations of one parallel build to the live
// index in rank order. It wraps the committer builder (the one whose
// in/out lists freeze will compact) with the undo log that makes a replay
// abortable.
type committer struct {
	b    *builder
	undo []undoRec
}

// undoRec identifies one entry appended by the current replay: appends are
// strictly list tails, so undoing is truncation by one.
type undoRec struct {
	y   graph.Vertex
	dir direction
}

// validate reports whether a speculation's trajectory is still exact: true
// iff none of the entry lists it read were appended to by a commit at or
// after its snapshot round. The trajectory of a KBS pair is a deterministic
// function of the graph, the ranks, and the lists it read — if those lists
// are untouched, the sequential build arriving at this commit slot would
// visit the same states, issue the same insert attempts, and take the same
// prune decisions.
//
// (Dictionary growth since the snapshot is harmless and not tracked: a
// code interned after the snapshot can only change an insert's PR1/dup
// outcome through entries that carry its ID, and such entries live only in
// lists stamped dirty since the snapshot.)
func (c *committer) validate(r *specResult, snap uint64) bool {
	b := c.b
	for _, pr := range r.reads {
		v := graph.Vertex(pr >> 1)
		if side(pr&1) == outSide {
			if b.dirtyOut[v] >= snap {
				return false
			}
		} else if b.dirtyIn[v] >= snap {
			return false
		}
	}
	return true
}

// apply replays a validated speculation's buffered inserts onto the live
// index in trajectory order, re-running the full PR2/PR1/dup checks against
// the live lists and interning minimum repeats in exactly the order the
// sequential build would. For a validated speculation every re-check
// resolves to inserted; should one diverge regardless, the replay is undone
// entry by entry — including the dictionary interns — and apply returns
// false so the scheduler falls back to the sequential re-run.
func (c *committer) apply(r *specResult) bool {
	b := c.b
	c.undo = c.undo[:0]
	dictLen0 := b.ix.dict.Len()
	// The inserts are ordered backward KBS first, then forward; the fixed
	// PR1 operand switches with the direction, exactly as in kbs.
	const noDir = direction(255)
	cur := noDir
	for i := range r.inserts {
		ins := &r.inserts[i]
		if ins.dir != cur {
			cur = ins.dir
			b.loadFixedSet(r.v, cur)
		}
		if st := b.insertCore(ins.y, r.v, ins.dir, r.mr(ins), ins.mrCode); st != inserted {
			c.rollback(dictLen0)
			return false
		}
		c.undo = append(c.undo, undoRec{y: ins.y, dir: ins.dir})
	}
	return true
}

// rollback undoes the current replay: appended entries are truncated off
// their lists in reverse order and the dictionary is cut back to its length
// at replay start. Dirty stamps set by the undone appends are left in place
// — over-invalidation only costs a re-run, never correctness.
func (c *committer) rollback(dictLen0 int) {
	b := c.b
	for i := len(c.undo) - 1; i >= 0; i-- {
		u := c.undo[i]
		if u.dir == backward {
			l := b.out[u.y]
			b.out[u.y] = l[:len(l)-1]
		} else {
			l := b.in[u.y]
			b.in[u.y] = l[:len(l)-1]
		}
	}
	b.ix.dict.TruncateTo(dictLen0)
}

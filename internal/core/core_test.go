package core

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func mustBuild(t *testing.T, g *graph.Graph, opts Options) *Index {
	t.Helper()
	ix, err := Build(g, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

// TestFig2PaperQueries replays Example 4 against the index.
func TestFig2PaperQueries(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	v := func(name string) graph.Vertex {
		id, ok := g.VertexByName(name)
		if !ok {
			t.Fatalf("missing vertex %s", name)
		}
		return id
	}
	const (
		l1 = labelseq.Label(0)
		l2 = labelseq.Label(1)
	)
	cases := []struct {
		s, t graph.Vertex
		l    labelseq.Seq
		want bool
	}{
		{v("v3"), v("v6"), labelseq.Seq{l2, l1}, true}, // Q1
		{v("v1"), v("v2"), labelseq.Seq{l2, l1}, true}, // Q2
		{v("v1"), v("v3"), labelseq.Seq{l1}, false},    // Q3
		{v("v1"), v("v3"), labelseq.Seq{l2}, true},     // v1 -l2-> v3
		{v("v1"), v("v1"), labelseq.Seq{l1}, true},     // cycle v1->v2->v5->v1? (all l1)
		{v("v6"), v("v1"), labelseq.Seq{l1}, false},    // v6 has no out-edges
	}
	for _, c := range cases {
		got, err := ix.Query(c.s, c.t, c.l)
		if err != nil {
			t.Fatalf("Query(%d,%d,%v): %v", c.s, c.t, c.l, err)
		}
		if got != c.want {
			t.Errorf("Query(%s, %s, %v+) = %v, want %v", g.VertexName(c.s), g.VertexName(c.t), c.l, got, c.want)
		}
	}
}

// TestFig2MatchesTableII compares the constructed index with Table II of
// the paper, entry for entry. Our reconstruction of Figure 2 reproduces the
// paper's access order, so the exact entry sets should match.
func TestFig2MatchesTableII(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	l1, l2, l3 := labelseq.Label(0), labelseq.Label(1), labelseq.Label(2)

	type ent struct {
		hub graph.Vertex
		mr  string
	}
	key := func(e EntryView) ent { return ent{e.Hub, e.MR.String()} }
	set := func(views []EntryView) map[ent]bool {
		m := map[ent]bool{}
		for _, e := range views {
			m[key(e)] = true
		}
		return m
	}
	seq := func(ls ...labelseq.Label) string { return labelseq.Seq(ls).String() }

	wantLin := map[graph.Vertex][]ent{
		v("v1"): {},
		v("v2"): {{v("v1"), seq(l1)}, {v("v1"), seq(l2, l1)}},
		v("v3"): {{v("v1"), seq(l2)}, {v("v1"), seq(l1, l2)}},
		v("v4"): {{v("v1"), seq(l2)}},
		v("v5"): {{v("v1"), seq(l1, l2)}, {v("v1"), seq(l1)}, {v("v3"), seq(l1, l2)}, {v("v2"), seq(l2)}},
		v("v6"): {{v("v1"), seq(l2, l1)}, {v("v3"), seq(l1)}, {v("v3"), seq(l2, l3)}, {v("v4"), seq(l3)}},
	}
	wantLout := map[graph.Vertex][]ent{
		v("v1"): {{v("v1"), seq(l2)}, {v("v1"), seq(l1)}, {v("v1"), seq(l2, l1)}},
		v("v2"): {{v("v1"), seq(l2, l1)}, {v("v1"), seq(l1)}},
		v("v3"): {{v("v1"), seq(l2)}, {v("v1"), seq(l2, l1)}, {v("v1"), seq(l1)}, {v("v3"), seq(l1, l2)}},
		v("v4"): {{v("v1"), seq(l1)}, {v("v3"), seq(l1, l2)}},
		v("v5"): {{v("v1"), seq(l1)}, {v("v3"), seq(l1, l2)}},
		v("v6"): {},
	}

	for name, want := range map[string]map[graph.Vertex][]ent{"Lin": wantLin, "Lout": wantLout} {
		for vtx, entries := range want {
			var got map[ent]bool
			if name == "Lin" {
				got = set(ix.LinEntries(vtx))
			} else {
				got = set(ix.LoutEntries(vtx))
			}
			wantSet := map[ent]bool{}
			for _, e := range entries {
				wantSet[e] = true
			}
			for e := range wantSet {
				if !got[e] {
					t.Errorf("%s(%s): missing entry (%s, %s); got %v", name, g.VertexName(vtx), g.VertexName(e.hub), e.mr, got)
				}
			}
			for e := range got {
				if !wantSet[e] {
					t.Errorf("%s(%s): extra entry (%s, %s)", name, g.VertexName(vtx), g.VertexName(e.hub), e.mr)
				}
			}
		}
	}
}

// TestExhaustiveEquivalence is the cornerstone correctness test: on many
// random graphs, the index must agree with online traversal for every
// vertex pair and every primitive constraint up to length k — under every
// pruning configuration.
func TestExhaustiveEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	pruneConfigs := []Options{
		{}, // all rules on (the paper's algorithm)
		{DisablePR1: true},
		{DisablePR2: true},
		{DisablePR3: true},
		{DisablePR1: true, DisablePR2: true, DisablePR3: true},
		{Order: OrderDegreeSum},
		{Order: OrderNatural},
		{Order: OrderReverse},
		{Order: OrderReverse, DisablePR3: true},
	}
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + r.Intn(10)
		labels := 1 + r.Intn(3)
		g := randomGraph(r, n, labels, 1+r.Intn(3*n))
		k := 1 + r.Intn(3)
		for _, cfg := range pruneConfigs {
			cfg.K = k
			ix, err := Build(g, cfg)
			if err != nil {
				t.Fatalf("trial %d cfg %+v: %v", trial, cfg, err)
			}
			if err := ix.ValidateComplete(); err != nil {
				t.Fatalf("trial %d (n=%d labels=%d k=%d cfg=%+v): %v\nedges: %v",
					trial, n, labels, k, cfg, err, g.Edges())
			}
		}
	}
}

// TestSoundnessOnRandomGraphs verifies every recorded entry is witnessed by
// a real path.
func TestSoundnessOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(10), 1+r.Intn(3), 2+r.Intn(25))
		ix := mustBuild(t, g, Options{K: 1 + r.Intn(3)})
		if err := ix.ValidateSound(); err != nil {
			t.Fatalf("trial %d: %v\nedges: %v", trial, err, g.Edges())
		}
	}
}

// TestCondensedOnRandomGraphs verifies Theorem 2: with all pruning rules
// active the index is condensed.
func TestCondensedOnRandomGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(102))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(r, 3+r.Intn(10), 1+r.Intn(3), 2+r.Intn(25))
		ix := mustBuild(t, g, Options{K: 1 + r.Intn(3)})
		if err := ix.ValidateCondensed(); err != nil {
			t.Fatalf("trial %d: %v\nedges: %v", trial, err, g.Edges())
		}
	}
}

// TestPruningShrinksIndex checks the ablation direction the paper reports:
// disabling pruning rules can only grow the index.
func TestPruningShrinksIndex(t *testing.T) {
	r := rand.New(rand.NewSource(103))
	grew := false
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 12, 2, 40)
		full := mustBuild(t, g, Options{K: 2})
		none := mustBuild(t, g, Options{K: 2, DisablePR1: true, DisablePR2: true, DisablePR3: true})
		if none.NumEntries() < full.NumEntries() {
			t.Fatalf("trial %d: pruning made the index bigger: %d (pruned) vs %d (unpruned)",
				trial, full.NumEntries(), none.NumEntries())
		}
		if none.NumEntries() > full.NumEntries() {
			grew = true
		}
	}
	if !grew {
		t.Error("expected at least one random graph where pruning strictly shrinks the index")
	}
}

func TestQueryValidation(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})

	if _, err := ix.Query(0, 1, labelseq.Seq{0, 0}); err == nil {
		t.Error("non-primitive constraint (l0,l0) must be rejected")
	}
	if _, err := ix.Query(0, 1, labelseq.Seq{0, 1, 0}); err == nil {
		t.Error("constraint longer than k must be rejected")
	}
	if _, err := ix.Query(0, 1, labelseq.Seq{}); err == nil {
		t.Error("empty constraint must be rejected")
	}
	if _, err := ix.Query(0, 1, labelseq.Seq{9}); err == nil {
		t.Error("unknown label must be rejected")
	}
	if _, err := ix.Query(-1, 1, labelseq.Seq{0}); err == nil {
		t.Error("negative vertex must be rejected")
	}
	if _, err := ix.Query(0, 99, labelseq.Seq{0}); err == nil {
		t.Error("out-of-range vertex must be rejected")
	}
}

func TestQueryStar(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	// (v6, v6, l1*) is true by the empty path even though v6 has no
	// outgoing edges.
	ok, err := ix.QueryStar(5, 5, labelseq.Seq{0})
	if err != nil || !ok {
		t.Errorf("QueryStar(v6, v6, l1*) = %v, %v; want true", ok, err)
	}
	// (v6, v1, l1*) is false: no path at all.
	ok, err = ix.QueryStar(5, 0, labelseq.Seq{0})
	if err != nil || ok {
		t.Errorf("QueryStar(v6, v1, l1*) = %v, %v; want false", ok, err)
	}
}

func TestBuildValidation(t *testing.T) {
	g := graph.Fig2()
	if _, err := Build(g, Options{K: MaxK + 1}); err == nil {
		t.Error("k > MaxK must be rejected")
	}
	if _, err := Build(g, Options{K: -1}); err == nil {
		t.Error("negative k must be rejected")
	}
	empty := graph.NewBuilder(0, 0).Build()
	if _, err := Build(empty, Options{}); err == nil {
		t.Error("empty graph must be rejected")
	}
}

func TestEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(3, 0).Build()
	ix := mustBuild(t, g, Options{K: 2})
	if ix.NumEntries() != 0 {
		t.Errorf("edgeless graph should have no entries, got %d", ix.NumEntries())
	}
}

func TestDefaultK(t *testing.T) {
	ix := mustBuild(t, graph.Fig2(), Options{})
	if ix.K() != DefaultK {
		t.Errorf("K = %d, want default %d", ix.K(), DefaultK)
	}
}

func TestSelfLoopIndex(t *testing.T) {
	g := graph.FromEdges(2, 2, []graph.Edge{
		{Src: 0, Dst: 0, Label: 0},
		{Src: 0, Dst: 1, Label: 1},
	})
	ix := mustBuild(t, g, Options{K: 2})
	ok, err := ix.Query(0, 0, labelseq.Seq{0})
	if err != nil || !ok {
		t.Errorf("self loop query = %v, %v; want true", ok, err)
	}
	ok, err = ix.Query(1, 1, labelseq.Seq{0})
	if err != nil || ok {
		t.Errorf("no-loop self query = %v, %v; want false", ok, err)
	}
	if err := ix.ValidateComplete(); err != nil {
		t.Error(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	r := rand.New(rand.NewSource(104))
	g := randomGraph(r, 20, 3, 60)
	var bufs [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		ix := mustBuild(t, g, Options{K: 2})
		if err := ix.Write(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) {
		t.Error("two builds of the same graph serialized differently — build is nondeterministic")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(105))
	g := randomGraph(r, 15, 3, 45)
	ix := mustBuild(t, g, Options{K: 3})

	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if back.K() != ix.K() || back.NumEntries() != ix.NumEntries() {
		t.Fatalf("round trip changed shape: k %d->%d entries %d->%d", ix.K(), back.K(), ix.NumEntries(), back.NumEntries())
	}
	for _, l := range PrimitiveConstraints(g.NumLabels(), ix.K()) {
		for s := graph.Vertex(0); int(s) < g.NumVertices(); s++ {
			for tt := graph.Vertex(0); int(tt) < g.NumVertices(); tt++ {
				a, err1 := ix.Query(s, tt, l)
				b, err2 := back.Query(s, tt, l)
				if err1 != nil || err2 != nil {
					t.Fatalf("query errors: %v %v", err1, err2)
				}
				if a != b {
					t.Fatalf("loaded index disagrees at (%d,%d,%v): %v vs %v", s, tt, l, a, b)
				}
			}
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil), g); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Load(bytes.NewReader([]byte("NOPE")), g); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := Load(bytes.NewReader(good[:len(good)/2]), g); err == nil {
		t.Error("truncated input must fail")
	}
	other := graph.Fig1()
	if _, err := Load(bytes.NewReader(good), other); err == nil {
		t.Error("loading against a different graph must fail")
	}
}

func TestStats(t *testing.T) {
	ix := mustBuild(t, graph.Fig2(), Options{K: 2})
	st := ix.Stats()
	if st.Entries != ix.NumEntries() || st.Entries != st.InEntries+st.OutEntries {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.Entries == 0 || st.SizeBytes <= 0 || st.DistinctMRs == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.K != 2 || st.Vertices != 6 || st.Edges != 11 {
		t.Errorf("stats shape: %+v", st)
	}
}

func TestAccessOrderExposed(t *testing.T) {
	g := graph.Fig2()
	ix := mustBuild(t, g, Options{K: 2})
	order := ix.AccessOrder()
	want := []string{"v1", "v3", "v2", "v4", "v5", "v6"}
	for i, v := range order {
		if g.VertexName(v) != want[i] {
			t.Fatalf("AccessOrder[%d] = %s, want %s", i, g.VertexName(v), want[i])
		}
	}
}

// TestQueryAgainstBiBFS runs a medium random graph against BiBFS on sampled
// queries — a faster, larger-scale cousin of the exhaustive test.
func TestQueryAgainstBiBFS(t *testing.T) {
	r := rand.New(rand.NewSource(106))
	g := randomGraph(r, 60, 4, 240)
	ix := mustBuild(t, g, Options{K: 2})
	constraints := PrimitiveConstraints(4, 2)
	for i := 0; i < 2000; i++ {
		s := graph.Vertex(r.Intn(60))
		tt := graph.Vertex(r.Intn(60))
		l := constraints[r.Intn(len(constraints))]
		got, err := ix.Query(s, tt, l)
		if err != nil {
			t.Fatal(err)
		}
		want, err := traversal.EvalRLCBi(g, s, tt, l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Query(%d,%d,%v+) = %v, BiBFS = %v", s, tt, l, got, want)
		}
	}
}

// TestOrderingAblationCorrect builds the Fig. 2 index under every vertex
// order and validates completeness — the order affects only size and speed.
func TestOrderingAblationCorrect(t *testing.T) {
	g := graph.Fig2()
	for _, o := range []Order{OrderInOut, OrderDegreeSum, OrderNatural, OrderReverse} {
		ix := mustBuild(t, g, Options{K: 2, Order: o})
		if err := ix.ValidateComplete(); err != nil {
			t.Errorf("order %d: %v", o, err)
		}
		if err := ix.ValidateSound(); err != nil {
			t.Errorf("order %d: %v", o, err)
		}
	}
}

// TestInOutOrderNoWorseThanReverse: on a skewed graph the paper's IN-OUT
// strategy should not produce a larger index than the deliberately bad
// reverse order.
func TestInOutOrderNoWorseThanReverse(t *testing.T) {
	r := rand.New(rand.NewSource(107))
	worse := 0
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 30, 2, 120)
		inout := mustBuild(t, g, Options{K: 2})
		rev := mustBuild(t, g, Options{K: 2, Order: OrderReverse})
		if inout.NumEntries() > rev.NumEntries() {
			worse++
		}
	}
	if worse > 2 {
		t.Errorf("IN-OUT order produced a larger index than reverse order in %d/8 trials", worse)
	}
}

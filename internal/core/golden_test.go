package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TestGoldenFormatStability pins the serialization format: an index file
// written by version 1 of the format (checked into testdata) must keep
// loading and answering correctly forever. Bump the format version rather
// than regenerate this file.
func TestGoldenFormatStability(t *testing.T) {
	g := graph.Fig2()
	data, err := os.ReadFile(filepath.Join("testdata", "fig2_k2_v1.rlc"))
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Load(bytes.NewReader(data), g)
	if err != nil {
		t.Fatalf("golden file no longer loads — the format changed without a version bump: %v", err)
	}
	if ix.K() != 2 {
		t.Errorf("golden k = %d", ix.K())
	}
	// Example 4's answers from the golden index.
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	ok, err := ix.Query(v("v3"), v("v6"), labelseq.Seq{1, 0})
	if err != nil || !ok {
		t.Errorf("golden Q1 = %v, %v", ok, err)
	}
	ok, err = ix.Query(v("v1"), v("v3"), labelseq.Seq{0})
	if err != nil || ok {
		t.Errorf("golden Q3 = %v, %v", ok, err)
	}
	if err := ix.ValidateComplete(); err != nil {
		t.Errorf("golden index incomplete: %v", err)
	}

	// A fresh build must serialize byte-identically (determinism pin).
	fresh, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fresh.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Error("fresh build of Fig. 2 serializes differently from the golden file — construction or format drifted")
	}
}

package core

import (
	"testing"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

func TestEntryDistributionBasics(t *testing.T) {
	ix := mustBuild(t, graph.Fig2(), Options{K: 2})
	d := ix.EntryDistribution()
	if d.Count == 0 || d.Max == 0 || d.Mean <= 0 {
		t.Errorf("degenerate distribution: %+v", d)
	}
	// Table II: 26 entries across 6 vertices; v1 has none in Lin but 3 in
	// Lout, v6 has 4 in Lin and none in Lout.
	total := 0.0
	total = d.Mean * float64(d.Count)
	if int(total+0.5) != 26 {
		t.Errorf("entry mass = %.1f, want 26", total)
	}
}

func TestHubDistributionBasics(t *testing.T) {
	ix := mustBuild(t, graph.Fig2(), Options{K: 2})
	d := ix.HubDistribution()
	if d.Count == 0 {
		t.Fatal("no hubs")
	}
	// Table II: hubs are v1 (dominant), v2, v3, v4 — four distinct.
	if d.Count != 4 {
		t.Errorf("distinct hubs = %d, want 4", d.Count)
	}
	if d.TopShare <= 0 || d.TopShare > 1 {
		t.Errorf("TopShare = %f", d.TopShare)
	}
	if ix.HubOf(0) != 0 { // v1 has access rank 0
		t.Errorf("HubOf(0) = %d", ix.HubOf(0))
	}
}

// TestHubSkewBAvsER reproduces the mechanism behind the paper's Figure 5/6
// discussion: BA-graphs concentrate entries on far fewer hubs than
// ER-graphs of the same size.
func TestHubSkewBAvsER(t *testing.T) {
	ba, err := gen.BA(400, 3, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	er, err := gen.ER(400, ba.NumEdges(), 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	ixBA := mustBuild(t, ba, Options{K: 2})
	ixER := mustBuild(t, er, Options{K: 2})
	dBA, dER := ixBA.HubDistribution(), ixER.HubDistribution()
	if dBA.TopShare <= dER.TopShare {
		t.Errorf("expected BA hub skew above ER: BA TopShare %.3f, ER %.3f", dBA.TopShare, dER.TopShare)
	}
}

func TestDistributionEmptyIndex(t *testing.T) {
	g := graph.NewBuilder(3, 1).Build()
	ix := mustBuild(t, g, Options{K: 2})
	if d := ix.EntryDistribution(); d.Count != 0 || d.Max != 0 {
		t.Errorf("empty index distribution: %+v", d)
	}
	if d := ix.HubDistribution(); d.Count != 0 {
		t.Errorf("empty hub distribution: %+v", d)
	}
}

// TestBuildStats sanity-checks the construction counters on Fig. 2.
func TestBuildStats(t *testing.T) {
	ix, st, err := BuildWithStats(graph.Fig2(), Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserted != ix.NumEntries() {
		t.Errorf("Inserted = %d, entries = %d", st.Inserted, ix.NumEntries())
	}
	if st.Attempts() != st.Inserted+st.PrunedPR1+st.PrunedPR2+st.PrunedDup {
		t.Error("Attempts arithmetic broken")
	}
	if st.KernelSearchStates == 0 || st.KernelBFSRuns == 0 || st.KernelBFSNodes == 0 {
		t.Errorf("zero traversal counters: %+v", st)
	}
	if st.PrunedPR1 == 0 || st.PrunedPR2 == 0 {
		t.Errorf("Fig. 2 must exercise PR1 and PR2 (Example 6): %+v", st)
	}

	// With pruning off, no PR counters may fire and more entries land.
	ix2, st2, err := BuildWithStats(graph.Fig2(), Options{K: 2, DisablePR1: true, DisablePR2: true, DisablePR3: true})
	if err != nil {
		t.Fatal(err)
	}
	if st2.PrunedPR1 != 0 || st2.PrunedPR2 != 0 {
		t.Errorf("disabled rules still fired: %+v", st2)
	}
	if ix2.NumEntries() <= ix.NumEntries() {
		t.Errorf("unpruned index not larger: %d vs %d", ix2.NumEntries(), ix.NumEntries())
	}
}

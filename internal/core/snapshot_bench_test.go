package core

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// benchArtifacts is the shared fixture of the open-path benchmarks: one ER
// index with >1e5 entries (the acceptance regime for the mmap-vs-v1
// comparison), serialized both ways.
var benchArtifacts struct {
	once       sync.Once
	g          *graph.Graph
	v1         []byte // (*Index).Write format
	bundlePath string // v2 snapshot bundle on disk
	entries    int64
}

func openBenchArtifacts(b *testing.B) {
	b.Helper()
	a := &benchArtifacts
	a.once.Do(func() {
		g, err := gen.ER(10_000, 40_000, 4, 42)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := Build(g, Options{K: 2})
		if err != nil {
			b.Fatal(err)
		}
		a.g = g
		a.entries = ix.NumEntries()
		var buf bytes.Buffer
		if err := ix.Write(&buf); err != nil {
			b.Fatal(err)
		}
		a.v1 = buf.Bytes()
		dir, err := os.MkdirTemp("", "rlcbench")
		if err != nil {
			b.Fatal(err)
		}
		a.bundlePath = filepath.Join(dir, "er.rlcs")
		if err := ix.SaveSnapshotFile(a.bundlePath); err != nil {
			b.Fatal(err)
		}
	})
	if a.entries < 100_000 {
		b.Fatalf("benchmark fixture has only %d entries; grow the ER graph", a.entries)
	}
}

// BenchmarkOpenSnapshot measures the v2 open path: mmap + structural
// validation, no per-entry decoding. Compare against BenchmarkLoadIndexV1
// on the same index — the acceptance bar for the format is >=10x.
func BenchmarkOpenSnapshot(b *testing.B) {
	openBenchArtifacts(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := OpenSnapshot(benchArtifacts.bundlePath)
		if err != nil {
			b.Fatal(err)
		}
		if s.Index().NumEntries() != benchArtifacts.entries {
			b.Fatal("entry count drifted")
		}
		s.Close()
	}
}

// BenchmarkOpenSnapshotVerified adds the full checksum pass a server runs
// before hot-swapping a bundle in.
func BenchmarkOpenSnapshotVerified(b *testing.B) {
	openBenchArtifacts(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := OpenSnapshot(benchArtifacts.bundlePath)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
}

// BenchmarkLoadIndexV1 measures the legacy load path: full deserialization
// of every entry into per-vertex lists, then the CSR freeze.
func BenchmarkLoadIndexV1(b *testing.B) {
	openBenchArtifacts(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ix, err := Load(bytes.NewReader(benchArtifacts.v1), benchArtifacts.g)
		if err != nil {
			b.Fatal(err)
		}
		if ix.NumEntries() != benchArtifacts.entries {
			b.Fatal("entry count drifted")
		}
	}
}

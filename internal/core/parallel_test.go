package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// serialize renders an index to its v1 byte format.
func serialize(t testing.TB, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelGoldenByteIdentity is the golden pin of the determinism
// guarantee: the Fig. 2 index built with 1, 2, 4, and 8 workers must
// serialize byte-for-byte identically to the checked-in v1 golden file.
func TestParallelGoldenByteIdentity(t *testing.T) {
	golden, err := os.ReadFile(filepath.Join("testdata", "fig2_k2_v1.rlc"))
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Fig2()
	for _, workers := range []int{1, 2, 4, 8} {
		ix, st, err := BuildWithStats(g, Options{K: 2, BuildWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if want := EffectiveBuildWorkers(g.NumVertices(), workers); st.Workers != want {
			t.Errorf("workers=%d: stats.Workers = %d, want %d", workers, st.Workers, want)
		}
		if got := serialize(t, ix); !bytes.Equal(got, golden) {
			t.Errorf("workers=%d: serialization differs from the golden file (%d vs %d bytes)",
				workers, len(got), len(golden))
		}
	}
}

// TestParallelBuildMatchesSequential is the property-based equivalence
// check: on randomized ER/BA/uniform graphs across k in {1..3} and every
// Order variant, a parallel build must produce the same serialized bytes
// (entry lists, interning order, access order) and the same algorithm
// counters as the sequential build, and its query answers must match the
// online-traversal reference on a sampled workload.
func TestParallelBuildMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(905))
	trials := 10
	if testing.Short() {
		trials = 3
	}
	orders := []Order{OrderInOut, OrderDegreeSum, OrderNatural, OrderReverse}
	for trial := 0; trial < trials; trial++ {
		var g *graph.Graph
		var err error
		switch trial % 3 {
		case 0:
			g, err = gen.ER(120+r.Intn(120), 500+r.Intn(400), 2+r.Intn(4), r.Int63())
		case 1:
			g, err = gen.BA(120+r.Intn(120), 2+r.Intn(3), 2+r.Intn(4), r.Int63())
		default:
			g = randomGraph(r, 6+r.Intn(40), 1+r.Intn(3), 2+r.Intn(160))
		}
		if err != nil {
			t.Fatal(err)
		}
		k := 1 + trial%3
		order := orders[trial%len(orders)]
		opts := Options{K: k, Order: order}
		seqIx, seqSt, err := BuildWithStats(g, opts)
		if err != nil {
			t.Fatalf("trial %d: sequential: %v", trial, err)
		}
		seqBytes := serialize(t, seqIx)

		workers := []int{2, 3 + r.Intn(6)}
		for _, w := range workers {
			opts.BuildWorkers = w
			parIx, parSt, err := BuildWithStats(g, opts)
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if !bytes.Equal(serialize(t, parIx), seqBytes) {
				t.Fatalf("trial %d (k=%d order=%d workers=%d, %d vertices %d edges): parallel build serialized differently from sequential",
					trial, k, order, w, g.NumVertices(), g.NumEdges())
			}
			if parSt.Inserted != seqSt.Inserted ||
				parSt.PrunedPR1 != seqSt.PrunedPR1 ||
				parSt.PrunedPR2 != seqSt.PrunedPR2 ||
				parSt.PrunedDup != seqSt.PrunedDup ||
				parSt.KernelSearchStates != seqSt.KernelSearchStates ||
				parSt.KernelBFSRuns != seqSt.KernelBFSRuns ||
				parSt.KernelBFSNodes != seqSt.KernelBFSNodes {
				t.Fatalf("trial %d workers=%d: algorithm counters diverged\nseq: %+v\npar: %+v",
					trial, w, seqSt, parSt)
			}
			if parSt.Speculated < int64(g.NumVertices()) {
				t.Errorf("trial %d workers=%d: Speculated = %d, want >= %d",
					trial, w, parSt.Speculated, g.NumVertices())
			}
			if parSt.Committed+parSt.Rerun != int64(g.NumVertices()) {
				t.Errorf("trial %d workers=%d: Committed %d + Rerun %d != vertices %d",
					trial, w, parSt.Committed, parSt.Rerun, g.NumVertices())
			}

			// Sampled query workload against the traversal reference.
			constraints := PrimitiveConstraints(g.NumLabels(), k)
			for q := 0; q < 60; q++ {
				s := graph.Vertex(r.Intn(g.NumVertices()))
				d := graph.Vertex(r.Intn(g.NumVertices()))
				l := constraints[r.Intn(len(constraints))]
				got, err := parIx.Query(s, d, l)
				if err != nil {
					t.Fatal(err)
				}
				want, err := traversal.EvalRLC(g, s, d, l)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d workers=%d: (%d, %d, %v+) = %v, traversal says %v",
						trial, w, s, d, l, got, want)
				}
			}
		}
	}
}

// TestParallelBuildPruningAblations: the byte-identity guarantee must hold
// with any combination of pruning rules disabled (the ablation paths take
// different branches through insertCore and kernelBFS).
func TestParallelBuildPruningAblations(t *testing.T) {
	r := rand.New(rand.NewSource(906))
	g := randomGraph(r, 40, 3, 160)
	for _, opts := range []Options{
		{K: 2, DisablePR1: true},
		{K: 2, DisablePR2: true},
		{K: 2, DisablePR3: true},
		{K: 2, DisablePR1: true, DisablePR2: true, DisablePR3: true},
	} {
		seqIx, err := Build(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		seqBytes := serialize(t, seqIx)
		opts.BuildWorkers = 4
		parIx, err := Build(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serialize(t, parIx), seqBytes) {
			t.Errorf("opts %+v: parallel build diverged from sequential", opts)
		}
	}
}

// TestBuildWorkersValidation pins the BuildWorkers contract: negative
// counts are rejected, and the effective count clamps to GOMAXPROCS and to
// the vertex count.
func TestBuildWorkersValidation(t *testing.T) {
	g := graph.Fig2()
	if _, err := Build(g, Options{K: 2, BuildWorkers: -1}); err == nil {
		t.Error("BuildWorkers = -1 accepted, want error")
	}
	if got := EffectiveBuildWorkers(6, 100); got != 6 {
		t.Errorf("EffectiveBuildWorkers(6, 100) = %d, want 6", got)
	}
	if got := EffectiveBuildWorkers(1000, 3); got != 3 {
		t.Errorf("EffectiveBuildWorkers(1000, 3) = %d, want 3", got)
	}
	if got := EffectiveBuildWorkers(1000, 0); got < 1 {
		t.Errorf("EffectiveBuildWorkers(1000, 0) = %d, want >= 1", got)
	}
}

// TestParallelBuildRace exercises the parallel build under the race
// detector: one parallel build per goroutine-visible index, racing against
// concurrent single and batch queries on a *different*, already-frozen
// index over the same shared graph. (Build mutates only its own index;
// the graph is immutable and read by everyone.)
func TestParallelBuildRace(t *testing.T) {
	r := rand.New(rand.NewSource(907))
	g := randomGraph(r, 200, 3, 900)
	frozen := mustBuild(t, g, Options{K: 2})
	queries := randomBatch(rand.New(rand.NewSource(908)), g, 2, 256)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := queries[rr.Intn(len(queries))]
				if _, err := frozen.Query(q.S, q.T, q.L); err != nil {
					t.Error(err)
					return
				}
				frozen.QueryBatch(queries[:64], 2)
			}
		}(int64(w))
	}

	seqBytes := serialize(t, frozen)
	for i := 0; i < 3; i++ {
		ix, err := Build(g, Options{K: 2, BuildWorkers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(serialize(t, ix), seqBytes) {
			t.Fatal("parallel build under concurrent load diverged from sequential")
		}
	}
	close(stop)
	wg.Wait()
}

// BenchmarkBuildParallel times index construction across worker counts on
// one mid-size ER graph (the satellite of BenchmarkQueryBatch). On a
// single-core box the >1-worker numbers measure scheduler overhead, not
// speedup.
func BenchmarkBuildParallel(b *testing.B) {
	g, err := gen.ER(4000, 16000, 8, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers-1", 2: "workers-2", 4: "workers-4"}[workers], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, Options{K: 2, BuildWorkers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

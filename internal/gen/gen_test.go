package gen

import (
	"math"
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

func TestERShape(t *testing.T) {
	g, err := ER(100, 400, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 100 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumEdges() != 400 {
		t.Errorf("edges = %d, want exactly 400 (distinct pairs)", g.NumEdges())
	}
	if g.NumLabels() != 8 {
		t.Errorf("labels = %d", g.NumLabels())
	}
	if graph.SelfLoopCount(g) != 0 {
		t.Error("ER must not generate self loops")
	}
}

func TestERRejectsImpossible(t *testing.T) {
	if _, err := ER(3, 100, 2, 1); err == nil {
		t.Error("more edges than distinct pairs must fail")
	}
	if _, err := ER(1, 0, 2, 1); err == nil {
		t.Error("n < 2 must fail")
	}
}

func TestERDeterminism(t *testing.T) {
	a, err := ER(50, 200, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ER(50, 200, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ across identical seeds")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
	c, err := ER(50, 200, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	ec := c.Edges()
	for i := range ea {
		if ea[i] != ec[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestBAShape(t *testing.T) {
	n, m := 200, 3
	g, err := BA(n, m, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != n {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	wantEdges := m*(m-1) + (n-m)*m
	if g.NumEdges() != wantEdges {
		t.Errorf("edges = %d, want %d", g.NumEdges(), wantEdges)
	}
	// The seed clique must be complete.
	for u := graph.Vertex(0); int(u) < m; u++ {
		for v := graph.Vertex(0); int(v) < m; v++ {
			if u == v {
				continue
			}
			dsts, _ := g.OutEdges(u)
			found := false
			for _, d := range dsts {
				if d == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("seed clique edge %d->%d missing", u, v)
			}
		}
	}
}

func TestBASkew(t *testing.T) {
	// Preferential attachment must concentrate in-degree: the top decile
	// of vertices should hold a disproportionate share of edges compared
	// to an ER graph of the same size.
	ba, err := BA(500, 3, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	er, err := ER(500, ba.NumEdges(), 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	topShare := func(g *graph.Graph) float64 {
		degs := make([]int, g.NumVertices())
		for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
			degs[v] = g.InDegree(v) + g.OutDegree(v)
		}
		// Selection of the top 10% by a simple sort.
		for i := 0; i < len(degs); i++ {
			for j := i + 1; j < len(degs); j++ {
				if degs[j] > degs[i] {
					degs[i], degs[j] = degs[j], degs[i]
				}
			}
		}
		top, total := 0, 0
		for i, d := range degs {
			total += d
			if i < len(degs)/10 {
				top += d
			}
		}
		return float64(top) / float64(total)
	}
	if topShare(ba) <= topShare(er) {
		t.Errorf("BA top-decile share %.3f not above ER %.3f — no skew", topShare(ba), topShare(er))
	}
}

func TestBAErrors(t *testing.T) {
	if _, err := BA(3, 5, 2, 1); err == nil {
		t.Error("n <= m must fail")
	}
	if _, err := BA(10, 0, 2, 1); err == nil {
		t.Error("m < 1 must fail")
	}
}

func TestBADeterminism(t *testing.T) {
	a, _ := BA(100, 2, 4, 5)
	b, _ := BA(100, 2, 4, 5)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestZipfLabelerDistribution(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	zl := NewZipfLabeler(r, 8)
	counts := make([]int, 8)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[zl.Next()]++
	}
	// Label 0 should dominate: P(0) ∝ 1, P(1) ∝ 1/4 under exponent 2.
	if counts[0] < counts[1]*2 {
		t.Errorf("label 0 (%d) not dominant over label 1 (%d)", counts[0], counts[1])
	}
	// Monotone non-increasing frequencies, allowing sampling noise.
	for i := 1; i < 8; i++ {
		if float64(counts[i]) > float64(counts[i-1])*1.2+100 {
			t.Errorf("label %d count %d exceeds label %d count %d", i, counts[i], i-1, counts[i-1])
		}
	}
	// Ratio of the two most frequent labels should be near 4 (= 2^2).
	ratio := float64(counts[0]) / float64(counts[1])
	if math.Abs(ratio-4) > 1.0 {
		t.Errorf("count ratio label0/label1 = %.2f, want about 4", ratio)
	}
}

func TestProfileGenerate(t *testing.T) {
	p := Profile{Name: "test", Vertices: 100000, Edges: 700000, Labels: 8, Loops: 5000, Tri: 2000000, Skewed: true}
	g, err := p.Generate(1000, 17)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if g.NumLabels() != 8 {
		t.Errorf("labels = %d", g.NumLabels())
	}
	// Average degree should be in the neighborhood of the original's 7.
	d := float64(g.NumEdges()) / float64(g.NumVertices())
	if d < 3.5 || d > 14 {
		t.Errorf("avg degree %.1f too far from original 7", d)
	}
	// Loop density preserved approximately (50 expected at 1/100 scale).
	loops := graph.SelfLoopCount(g)
	if loops < 20 || loops > 100 {
		t.Errorf("loops = %d, want near 50", loops)
	}
	// Cyclic profile must actually produce triangles.
	if graph.TriangleCount(g) == 0 {
		t.Error("replica of a triangle-heavy profile has no triangles")
	}
}

func TestProfileGenerateUniform(t *testing.T) {
	p := Profile{Name: "uni", Vertices: 10000, Edges: 30000, Labels: 4, Loops: 0, Tri: 0, Skewed: false}
	g, err := p.Generate(500, 23)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 500 {
		t.Errorf("vertices = %d", g.NumVertices())
	}
	if graph.SelfLoopCount(g) != 0 {
		t.Error("acyclic profile should not gain self loops")
	}
}

func TestProfileGenerateErrors(t *testing.T) {
	p := Profile{Name: "x", Vertices: 100, Edges: 300, Labels: 2, Skewed: false}
	if _, err := p.Generate(2, 1); err == nil {
		t.Error("tiny targetV must fail")
	}
}

func TestProfileDeterminism(t *testing.T) {
	p := Profile{Name: "d", Vertices: 5000, Edges: 25000, Labels: 8, Loops: 100, Tri: 50000, Skewed: true}
	a, err := p.Generate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Generate(400, 9)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

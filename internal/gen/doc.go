// Package gen generates the synthetic graphs of the paper's evaluation: the
// Erdős–Rényi (ER) and Barabási–Albert (BA) models of Section VI-B
// (replacing the JGraphT generators used by the authors), Zipfian edge-label
// assignment with exponent 2 (Section VI-b), and profile-driven replicas of
// the real-world datasets of Table III (see internal/datasets for the substitution rationale).
//
// All generators are deterministic under their seed.
package gen

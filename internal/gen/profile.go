package gen

import (
	"fmt"
	"math/rand"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Profile describes a real-world dataset from Table III by the
// characteristics the paper identifies as the index's cost drivers: size,
// label-set size, degree skew, and cyclicity (self loops and triangles).
// Generate produces a synthetic replica preserving these characteristics at
// a chosen scale — the offline substitute for the SNAP/KONECT downloads
// (see internal/datasets).
type Profile struct {
	Name     string
	Vertices int
	Edges    int
	Labels   int
	Loops    int   // self-loop count of the original
	Tri      int64 // triangle count of the original
	Skewed   bool  // preferential-attachment degree distribution
}

// AvgDegree returns |E| / |V| of the original dataset.
func (p Profile) AvgDegree() float64 {
	return float64(p.Edges) / float64(p.Vertices)
}

// Generate builds a replica with about targetV vertices: the average
// degree, label-set size, loop density (loops per vertex) and triangle
// density (triangle-closing edges as a share of |E|) of the profile are
// preserved; absolute size shrinks to targetV/Vertices of the original.
func (p Profile) Generate(targetV int, seed int64) (*graph.Graph, error) {
	if targetV < 4 {
		return nil, fmt.Errorf("gen: profile %s: targetV must be >= 4, got %d", p.Name, targetV)
	}
	frac := float64(targetV) / float64(p.Vertices)
	targetE := int(float64(p.Edges) * frac)
	if targetE < targetV {
		targetE = targetV // keep the replica connected-ish
	}
	loops := int(float64(p.Loops) * frac)
	if maxLoops := targetV * p.Labels; loops > maxLoops {
		loops = maxLoops
	}

	// Triangle-closing edges: proportional to the original's triangles-
	// per-edge ratio, saturating at half the edge budget. sqrt compresses
	// the enormous range of Table III (38K..30B triangles) into a usable
	// share while preserving the ordering between datasets.
	triRatio := float64(p.Tri) / float64(p.Edges)
	if triRatio > 1 {
		triRatio = 1 + (triRatio-1)/10
	}
	triShare := triRatio / (triRatio + 4)
	if triShare > 0.5 {
		triShare = 0.5
	}
	triEdges := int(float64(targetE) * triShare)

	baseE := targetE - loops - triEdges
	if baseE < targetV/2 {
		baseE = targetV / 2
	}

	r := rand.New(rand.NewSource(seed))
	var base *graph.Graph
	var err error
	if p.Skewed {
		m := baseE / targetV
		if m < 1 {
			m = 1
		}
		base, err = BA(targetV, m, p.Labels, seed)
	} else {
		base, err = ER(targetV, baseE, p.Labels, seed)
	}
	if err != nil {
		return nil, fmt.Errorf("gen: profile %s: %w", p.Name, err)
	}

	labels := NewZipfLabeler(r, p.Labels)
	b := graph.NewBuilder(targetV, p.Labels)
	for _, e := range base.Edges() {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	// Self loops.
	for i := 0; i < loops; i++ {
		v := graph.Vertex(r.Intn(targetV))
		b.AddEdge(v, labels.Next(), v)
	}
	// Triangle closures: close random 2-paths u -> v -> w with w -> u,
	// creating directed 3-cycles (and, through overlap, many more).
	for i := 0; i < triEdges; i++ {
		u := graph.Vertex(r.Intn(targetV))
		dsts, _ := base.OutEdges(u)
		if len(dsts) == 0 {
			continue
		}
		v := dsts[r.Intn(len(dsts))]
		dsts2, _ := base.OutEdges(v)
		if len(dsts2) == 0 {
			continue
		}
		w := dsts2[r.Intn(len(dsts2))]
		if w == u {
			continue
		}
		b.AddEdge(w, labels.Next(), u)
	}
	return b.Build(), nil
}

package gen

import (
	"fmt"
	"math/rand"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

// ZipfLabeler draws edge labels from a Zipfian distribution with exponent 2
// over the label set, matching the paper's synthetic label assignment: a few
// labels dominate, most are rare.
type ZipfLabeler struct {
	z         *rand.Zipf
	numLabels int
}

// NewZipfLabeler returns a labeler over numLabels labels seeded from r.
func NewZipfLabeler(r *rand.Rand, numLabels int) *ZipfLabeler {
	if numLabels < 1 {
		panic(fmt.Sprintf("gen: numLabels must be >= 1, got %d", numLabels))
	}
	// P(k) ∝ (1+k)^-2 for k in [0, numLabels-1].
	return &ZipfLabeler{z: rand.NewZipf(r, 2.0, 1.0, uint64(numLabels-1)), numLabels: numLabels}
}

// Next draws one label.
func (zl *ZipfLabeler) Next() graph.Label { return graph.Label(zl.z.Uint64()) }

// NumLabels returns the size of the label universe.
func (zl *ZipfLabeler) NumLabels() int { return zl.numLabels }

// ER generates a directed Erdős–Rényi G(n, m) graph: m distinct directed
// edges (no self loops) between n vertices, with Zipfian labels over
// numLabels labels.
func ER(n, m, numLabels int, seed int64) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: ER needs n >= 2, got %d", n)
	}
	maxEdges := int64(n) * int64(n-1)
	if int64(m) > maxEdges {
		return nil, fmt.Errorf("gen: ER cannot place %d distinct edges on %d vertices (max %d)", m, n, maxEdges)
	}
	r := rand.New(rand.NewSource(seed))
	labels := NewZipfLabeler(r, numLabels)
	b := graph.NewBuilder(n, numLabels)

	seen := make(map[uint64]struct{}, m)
	for placed := 0; placed < m; {
		src := graph.Vertex(r.Intn(n))
		dst := graph.Vertex(r.Intn(n))
		if src == dst {
			continue
		}
		key := uint64(uint32(src))<<32 | uint64(uint32(dst))
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		b.AddEdge(src, labels.Next(), dst)
		placed++
	}
	return b.Build(), nil
}

// BA generates a directed Barabási–Albert preferential-attachment graph:
// an initial complete directed graph on m vertices (the "complete sub-graph"
// the paper's analysis of BA behaviour relies on), then n-m additional
// vertices each attaching m out-edges to existing vertices with probability
// proportional to their degree. Labels are Zipfian over numLabels labels.
func BA(n, m, numLabels int, seed int64) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: BA needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: BA needs n > m (n=%d, m=%d)", n, m)
	}
	r := rand.New(rand.NewSource(seed))
	labels := NewZipfLabeler(r, numLabels)
	b := graph.NewBuilder(n, numLabels)

	// The repeated-vertices list implements preferential attachment: each
	// edge endpoint appears once per incident edge, so uniform sampling
	// over the list is degree-proportional sampling.
	var repeated []graph.Vertex

	// Seed clique: all ordered pairs among the first max(m, 2) vertices.
	m0 := m
	if m0 < 2 {
		m0 = 2
	}
	for u := 0; u < m0; u++ {
		for v := 0; v < m0; v++ {
			if u == v {
				continue
			}
			b.AddEdge(graph.Vertex(u), labels.Next(), graph.Vertex(v))
			repeated = append(repeated, graph.Vertex(u), graph.Vertex(v))
		}
	}

	seen := make(map[graph.Vertex]struct{}, m)
	targets := make([]graph.Vertex, 0, m)
	for v := m0; v < n; v++ {
		clear(seen)
		targets = targets[:0]
		// Choose m distinct existing targets, degree-proportionally. The
		// targets slice preserves draw order, keeping the generator
		// deterministic (map iteration would not be).
		for len(targets) < m {
			t := repeated[r.Intn(len(repeated))]
			if t == graph.Vertex(v) {
				continue
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			targets = append(targets, t)
		}
		for _, t := range targets {
			b.AddEdge(graph.Vertex(v), labels.Next(), t)
			repeated = append(repeated, graph.Vertex(v), t)
		}
	}
	return b.Build(), nil
}

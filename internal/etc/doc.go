// Package etc implements the extended transitive closure (ETC) baseline of
// Section VI-a: a forward kernel-based search from every vertex with no
// pruning rules, recording for every reachable pair (u, v) every k-MR of
// every path from u to v in a hash map. ETC answers queries as fast as an
// index but, as Table IV shows, its construction time and memory footprint
// are prohibitive for all but the smallest graphs — which is exactly the
// behaviour the RLC index's pruning rules eliminate.
package etc

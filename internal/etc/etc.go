package etc

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// ErrBudget reports that construction exceeded the configured time or
// memory budget — the "-" cells of Table IV.
var ErrBudget = errors.New("etc: construction budget exceeded")

// Options bounds ETC construction. Zero values mean "no limit".
type Options struct {
	// K is the recursive k; zero means 2.
	K int
	// TimeLimit aborts construction when exceeded (checked per source
	// vertex).
	TimeLimit time.Duration
	// MaxPairEntries aborts construction when the total number of
	// (pair, k-MR) records exceeds the cap.
	MaxPairEntries int64
}

func (o Options) k() int {
	if o.K == 0 {
		return 2
	}
	return o.K
}

// ETC is the materialized extended transitive closure.
type ETC struct {
	g    *graph.Graph
	k    int
	dict *labelseq.Dict
	// pairs maps src<<32|dst to the sorted ids of the k-MRs of paths
	// between the pair.
	pairs   map[uint64][]labelseq.ID
	records int64
}

func pairKey(u, v graph.Vertex) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// Build materializes the ETC of g. It returns ErrBudget (wrapped) when the
// configured limits are hit.
func Build(g *graph.Graph, opts Options) (*ETC, error) {
	k := opts.k()
	if k < 1 {
		return nil, fmt.Errorf("etc: k must be positive, got %d", k)
	}
	numLabels := g.NumLabels()
	if numLabels == 0 {
		numLabels = 1
	}
	dict, err := labelseq.NewDict(numLabels, k)
	if err != nil {
		return nil, fmt.Errorf("etc: %w", err)
	}
	e := &ETC{
		g:     g,
		k:     k,
		dict:  dict,
		pairs: make(map[uint64][]labelseq.ID),
	}
	b := &closureBuilder{
		etc:     e,
		coder:   dict.Coder(),
		seen:    make(map[dedupKey]struct{}),
		visited: make([]uint32, g.NumVertices()*k),
		start:   time.Now(),
	}
	for src := graph.Vertex(0); int(src) < g.NumVertices(); src++ {
		if opts.TimeLimit > 0 && time.Since(b.start) > opts.TimeLimit {
			return nil, fmt.Errorf("%w: time limit %v at vertex %d/%d", ErrBudget, opts.TimeLimit, src, g.NumVertices())
		}
		if opts.MaxPairEntries > 0 && e.records > opts.MaxPairEntries {
			return nil, fmt.Errorf("%w: %d records exceed cap %d", ErrBudget, e.records, opts.MaxPairEntries)
		}
		b.closureFrom(src)
	}
	return e, nil
}

type dedupKey struct {
	v    graph.Vertex
	code labelseq.Code
}

type frontier struct {
	kernel labelseq.Seq
	code   labelseq.Code
	verts  []graph.Vertex
	member map[graph.Vertex]struct{}
}

type closureBuilder struct {
	etc     *ETC
	coder   *labelseq.Coder
	seen    map[dedupKey]struct{}
	queue   []state
	fronts  map[labelseq.Code]*frontier
	visited []uint32
	stamp   uint32
	bfsQ    []node
	start   time.Time
}

type state struct {
	v     graph.Vertex
	code  labelseq.Code
	depth int32
	seq   [8]labelseq.Label
}

type node struct {
	v     graph.Vertex
	phase int32
}

// closureFrom runs an unpruned forward KBS from src: kernel-search up to
// depth k, then a kernel-BFS per kernel candidate.
func (b *closureBuilder) closureFrom(src graph.Vertex) {
	clear(b.seen)
	b.fronts = make(map[labelseq.Code]*frontier)
	b.queue = b.queue[:0]
	b.queue = append(b.queue, state{v: src})
	b.seen[dedupKey{src, 0}] = struct{}{}
	k := b.etc.k

	for head := 0; head < len(b.queue); head++ {
		st := b.queue[head]
		dsts, lbls := b.etc.g.OutEdges(st.v)
		for i := range dsts {
			y, l := dsts[i], lbls[i]
			var next state
			next.v = y
			next.depth = st.depth + 1
			copy(next.seq[:], st.seq[:st.depth])
			next.seq[st.depth] = l
			next.code = b.coder.Append(st.code, l)
			key := dedupKey{y, next.code}
			if _, dup := b.seen[key]; dup {
				continue
			}
			b.seen[key] = struct{}{}

			mr := labelseq.MinimumRepeat(labelseq.Seq(next.seq[:next.depth]))
			mrCode := b.coder.Encode(mr)
			b.record(src, y, mr, mrCode)
			b.registerFrontier(mrCode, mr, y)
			if int(next.depth) < k {
				b.queue = append(b.queue, next)
			}
		}
	}

	codes := make([]labelseq.Code, 0, len(b.fronts))
	for c := range b.fronts {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	for _, c := range codes {
		b.kernelBFS(src, b.fronts[c])
	}
}

func (b *closureBuilder) registerFrontier(code labelseq.Code, kernel labelseq.Seq, v graph.Vertex) {
	f := b.fronts[code]
	if f == nil {
		f = &frontier{kernel: kernel.Clone(), code: code, member: make(map[graph.Vertex]struct{})}
		b.fronts[code] = f
	}
	if _, ok := f.member[v]; ok {
		return
	}
	f.member[v] = struct{}{}
	f.verts = append(f.verts, v)
}

func (b *closureBuilder) kernelBFS(src graph.Vertex, f *frontier) {
	m := int32(len(f.kernel))
	b.stamp++
	if b.stamp == 0 {
		for i := range b.visited {
			b.visited[i] = 0
		}
		b.stamp = 1
	}
	k := b.etc.k
	b.bfsQ = b.bfsQ[:0]
	for _, v := range f.verts {
		b.visited[int(v)*k] = b.stamp
		b.bfsQ = append(b.bfsQ, node{v, 0})
	}
	for head := 0; head < len(b.bfsQ); head++ {
		nd := b.bfsQ[head]
		expected := f.kernel[nd.phase]
		dsts, lbls := b.etc.g.OutEdges(nd.v)
		next := (nd.phase + 1) % m
		for i := range dsts {
			if lbls[i] != expected {
				continue
			}
			y := dsts[i]
			slot := int(y)*k + int(next)
			if b.visited[slot] == b.stamp {
				continue
			}
			b.visited[slot] = b.stamp
			if next == 0 {
				b.record(src, y, f.kernel, f.code)
			}
			b.bfsQ = append(b.bfsQ, node{y, next})
		}
	}
}

func (b *closureBuilder) record(u, v graph.Vertex, mr labelseq.Seq, mrCode labelseq.Code) {
	id := b.etc.dict.InternCode(mrCode, mr)
	key := pairKey(u, v)
	list := b.etc.pairs[key]
	for _, have := range list {
		if have == id {
			return
		}
	}
	b.etc.pairs[key] = append(list, id)
	b.etc.records++
}

// Query answers the RLC query (s, t, L+) from the materialized closure.
func (e *ETC) Query(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if s < 0 || int(s) >= e.g.NumVertices() || t < 0 || int(t) >= e.g.NumVertices() {
		return false, fmt.Errorf("etc: vertex out of range")
	}
	if len(l) == 0 || len(l) > e.k {
		return false, fmt.Errorf("etc: constraint length %d outside [1, %d]", len(l), e.k)
	}
	if !labelseq.IsPrimitive(l) {
		return false, fmt.Errorf("etc: constraint %v is not a minimum repeat", l)
	}
	id := e.dict.Lookup(l)
	if id == labelseq.InvalidID {
		return false, nil
	}
	for _, have := range e.pairs[pairKey(s, t)] {
		if have == id {
			return true, nil
		}
	}
	return false, nil
}

// K returns the recursive k.
func (e *ETC) K() int { return e.k }

// NumPairs returns the number of reachable pairs with at least one k-MR.
func (e *ETC) NumPairs() int { return len(e.pairs) }

// NumRecords returns the total number of (pair, k-MR) records.
func (e *ETC) NumRecords() int64 { return e.records }

// SizeBytes estimates the resident size of the closure, charging realistic
// Go map overhead per pair: this is what Table IV reports for ETC.
func (e *ETC) SizeBytes() int64 {
	const perPair = 8 + 24 + 16 // key + slice header + bucket share
	return int64(len(e.pairs))*perPair + e.records*4
}

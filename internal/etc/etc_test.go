package etc

import (
	"math/rand"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestETCOnFig2(t *testing.T) {
	g := graph.Fig2()
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	cases := []struct {
		s, t graph.Vertex
		l    labelseq.Seq
		want bool
	}{
		{v("v3"), v("v6"), labelseq.Seq{1, 0}, true},
		{v("v1"), v("v2"), labelseq.Seq{1, 0}, true},
		{v("v1"), v("v3"), labelseq.Seq{0}, false},
	}
	for _, c := range cases {
		got, err := e.Query(c.s, c.t, c.l)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("ETC(%d, %d, %v+) = %v, want %v", c.s, c.t, c.l, got, c.want)
		}
	}
}

// TestETCAgreesWithTraversalAndIndex: the three implementations must give
// identical answers on every admissible query.
func TestETCAgreesWithTraversalAndIndex(t *testing.T) {
	r := rand.New(rand.NewSource(200))
	for trial := 0; trial < 15; trial++ {
		n := 3 + r.Intn(9)
		labels := 1 + r.Intn(3)
		g := randomGraph(r, n, labels, 2+r.Intn(3*n))
		k := 1 + r.Intn(3)
		e, err := Build(g, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		ix, err := core.Build(g, core.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range core.PrimitiveConstraints(labels, k) {
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					want, err := traversal.EvalRLC(g, s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					gotE, err := e.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					gotI, err := ix.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if gotE != want || gotI != want {
						t.Fatalf("trial %d (%d,%d,%v+): etc=%v index=%v traversal=%v\nedges %v",
							trial, s, tt, l, gotE, gotI, want, g.Edges())
					}
				}
			}
		}
	}
}

func TestETCBudgetTime(t *testing.T) {
	r := rand.New(rand.NewSource(201))
	g := randomGraph(r, 200, 3, 1200)
	_, err := Build(g, Options{K: 2, TimeLimit: 1 * time.Nanosecond})
	if err == nil {
		t.Fatal("expected time budget error")
	}
}

func TestETCBudgetEntries(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	g := randomGraph(r, 100, 2, 500)
	_, err := Build(g, Options{K: 2, MaxPairEntries: 1})
	if err == nil {
		t.Fatal("expected entry budget error")
	}
}

func TestETCQueryValidation(t *testing.T) {
	g := graph.Fig2()
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(0, 99, labelseq.Seq{0}); err == nil {
		t.Error("out-of-range vertex must fail")
	}
	if _, err := e.Query(0, 1, labelseq.Seq{0, 0}); err == nil {
		t.Error("non-primitive constraint must fail")
	}
	if _, err := e.Query(0, 1, labelseq.Seq{0, 1, 2}); err == nil {
		t.Error("over-length constraint must fail")
	}
}

func TestETCStats(t *testing.T) {
	g := graph.Fig2()
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.K() != 2 {
		t.Errorf("K = %d", e.K())
	}
	if e.NumPairs() == 0 || e.NumRecords() == 0 || e.SizeBytes() <= 0 {
		t.Errorf("empty stats: pairs=%d records=%d size=%d", e.NumPairs(), e.NumRecords(), e.SizeBytes())
	}
	if e.NumRecords() < int64(e.NumPairs()) {
		t.Error("records must be >= pairs")
	}
}

// TestETCLargerThanIndex demonstrates the paper's Table IV relationship on a
// cyclic graph: the unpruned closure stores at least as many records as the
// condensed RLC index has entries.
func TestETCLargerThanIndex(t *testing.T) {
	r := rand.New(rand.NewSource(203))
	g := randomGraph(r, 40, 2, 160)
	e, err := Build(g, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e.NumRecords() < ix.NumEntries()/2 {
		t.Errorf("suspicious: ETC records %d much smaller than index entries %d", e.NumRecords(), ix.NumEntries())
	}
}

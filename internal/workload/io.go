package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// The workload text format is one query per line:
//
//	src dst l1,l2,...,lk expected
//
// e.g. "14 19 3,4 true". Lines starting with '#' and blank lines are
// ignored.

// Write renders queries in the text format, true queries first.
func Write(w io.Writer, wl Workload) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d true queries, %d false queries\n", len(wl.True), len(wl.False))
	for _, q := range wl.All() {
		labels := make([]string, len(q.L))
		for i, l := range q.L {
			labels[i] = strconv.Itoa(int(l))
		}
		fmt.Fprintf(bw, "%d %d %s %v\n", q.S, q.T, strings.Join(labels, ","), q.Expected)
	}
	return bw.Flush()
}

// Read parses the text format.
func Read(r io.Reader) (Workload, error) {
	var wl Workload
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return Workload{}, fmt.Errorf("workload: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		src, err1 := strconv.Atoi(fields[0])
		dst, err2 := strconv.Atoi(fields[1])
		expected, err3 := strconv.ParseBool(fields[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return Workload{}, fmt.Errorf("workload: line %d: malformed query", lineNo)
		}
		if src < 0 || dst < 0 {
			return Workload{}, fmt.Errorf("workload: line %d: negative vertex", lineNo)
		}
		if int64(src) > math.MaxInt32 || int64(dst) > math.MaxInt32 {
			return Workload{}, fmt.Errorf("workload: line %d: vertex beyond the dense int32 space", lineNo)
		}
		var l labelseq.Seq
		for _, tok := range strings.Split(fields[2], ",") {
			li, err := strconv.Atoi(tok)
			if err != nil || li < 0 || int64(li) > math.MaxInt32 {
				return Workload{}, fmt.Errorf("workload: line %d: bad label %q", lineNo, tok)
			}
			l = append(l, labelseq.Label(li))
		}
		q := Query{S: graph.Vertex(src), T: graph.Vertex(dst), L: l, Expected: expected}
		if expected {
			wl.True = append(wl.True, q)
		} else {
			wl.False = append(wl.False, q)
		}
	}
	if err := sc.Err(); err != nil {
		return Workload{}, fmt.Errorf("workload: read: %w", err)
	}
	return wl, nil
}

// SaveFile writes a workload to path.
func SaveFile(path string, wl Workload) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, wl); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a workload from path.
func LoadFile(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return Workload{}, err
	}
	defer f.Close()
	return Read(f)
}

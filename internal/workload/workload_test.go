package workload

import (
	"testing"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BA(300, 3, 4, 77)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateShape(t *testing.T) {
	g := testGraph(t)
	w, err := Generate(g, Options{NumTrue: 50, NumFalse: 50, ConcatLen: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.True) != 50 || len(w.False) != 50 {
		t.Fatalf("got %d true, %d false", len(w.True), len(w.False))
	}
	if len(w.All()) != 100 {
		t.Errorf("All() = %d", len(w.All()))
	}
	for _, q := range w.All() {
		if len(q.L) != 2 {
			t.Fatalf("constraint %v has wrong length", q.L)
		}
		if !labelseq.IsPrimitive(q.L) {
			t.Fatalf("constraint %v not primitive", q.L)
		}
	}
}

// TestGroundTruth re-verifies every generated query against an independent
// BFS.
func TestGroundTruth(t *testing.T) {
	g := testGraph(t)
	w, err := Generate(g, Options{NumTrue: 30, NumFalse: 30, ConcatLen: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.All() {
		got, err := traversal.EvalRLC(g, q.S, q.T, q.L)
		if err != nil {
			t.Fatal(err)
		}
		if got != q.Expected {
			t.Fatalf("query (%d,%d,%v+): generator says %v, BFS says %v", q.S, q.T, q.L, q.Expected, got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g := testGraph(t)
	a, err := Generate(g, Options{NumTrue: 20, NumFalse: 20, ConcatLen: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, Options{NumTrue: 20, NumFalse: 20, ConcatLen: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.True {
		if a.True[i].S != b.True[i].S || a.True[i].T != b.True[i].T || !a.True[i].L.Equal(b.True[i].L) {
			t.Fatal("true workloads differ across identical seeds")
		}
	}
	for i := range a.False {
		if a.False[i].S != b.False[i].S || a.False[i].T != b.False[i].T || !a.False[i].L.Equal(b.False[i].L) {
			t.Fatal("false workloads differ across identical seeds")
		}
	}
}

func TestConcatLenOne(t *testing.T) {
	g := testGraph(t)
	w, err := Generate(g, Options{NumTrue: 10, NumFalse: 10, ConcatLen: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.All() {
		if len(q.L) != 1 {
			t.Fatalf("constraint %v should have length 1", q.L)
		}
	}
}

func TestErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Generate(g, Options{NumTrue: 1, NumFalse: 1, ConcatLen: 0}); err == nil {
		t.Error("zero concat length must fail")
	}
	empty := graph.NewBuilder(3, 0).Build()
	if _, err := Generate(empty, Options{NumTrue: 1, NumFalse: 1, ConcatLen: 1}); err == nil {
		t.Error("edgeless graph must fail")
	}
	oneLabel := graph.FromEdges(2, 1, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	if _, err := Generate(oneLabel, Options{NumTrue: 1, NumFalse: 1, ConcatLen: 2}); err == nil {
		t.Error("length-2 constraints over one label must fail (none primitive)")
	}
}

// TestPureRejectionOnDenseGraph: rejection sampling alone must fill both
// buckets on a graph dense enough for true queries to occur naturally.
func TestPureRejectionOnDenseGraph(t *testing.T) {
	g, err := gen.ER(60, 360, 2, 42) // avg degree 6: both buckets occur naturally
	if err != nil {
		t.Fatal(err)
	}
	w, err := Generate(g, Options{NumTrue: 10, NumFalse: 10, ConcatLen: 1, Seed: 7, PureRejection: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range w.All() {
		got, err := traversal.EvalRLC(g, q.S, q.T, q.L)
		if err != nil {
			t.Fatal(err)
		}
		if got != q.Expected {
			t.Fatal("rejection-sampled query mislabeled")
		}
	}
}

// TestBudgetExhaustion: an impossible request (true queries on a graph with
// no matching paths) must fail with a descriptive error, not hang.
func TestBudgetExhaustion(t *testing.T) {
	// A single edge cannot satisfy any length-2 constraint.
	g := graph.FromEdges(2, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	_, err := Generate(g, Options{NumTrue: 5, NumFalse: 5, ConcatLen: 2, Seed: 1, MaxAttempts: 500})
	if err == nil {
		t.Fatal("expected budget exhaustion error")
	}
}

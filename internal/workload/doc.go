// Package workload generates RLC query workloads following Section VI-c of
// the paper: per graph, a set of true-queries and a set of false-queries
// (1000 each in the paper), with uniformly drawn endpoints and constraints,
// ground-truthed by bidirectional BFS.
//
// Pure rejection sampling — the paper's method — finds true queries slowly
// on sparse graphs, so a guided mode mines them by sampling a source and a
// constraint and picking a reachable target from an online search. Both
// modes produce queries with exactly the same admissibility guarantees
// (primitive constraints of the requested length); the guided mode only
// changes how fast true queries are found. Generators are deterministic
// under their seed.
package workload

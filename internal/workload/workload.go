package workload

import (
	"fmt"
	"math/rand"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// Query is one RLC query with its ground-truth answer.
type Query struct {
	S, T     graph.Vertex
	L        labelseq.Seq
	Expected bool
}

// Options configures Generate.
type Options struct {
	// NumTrue and NumFalse are the workload sizes; the paper uses 1000
	// each.
	NumTrue, NumFalse int
	// ConcatLen is the exact length of every constraint (the paper fixes
	// it per workload, e.g. 2 for the Table IV/Figure 3 experiments).
	ConcatLen int
	// Seed makes the workload reproducible.
	Seed int64
	// PureRejection disables guided mining of true queries, exactly
	// reproducing the paper's uniform rejection sampling. May be slow on
	// sparse graphs.
	PureRejection bool
	// MaxAttempts bounds rejection sampling per bucket before giving up
	// (0 = 200 x requested size).
	MaxAttempts int
}

// Workload is a generated set of true- and false-queries.
type Workload struct {
	True  []Query
	False []Query
}

// All returns the concatenation of both buckets.
func (w Workload) All() []Query {
	out := make([]Query, 0, len(w.True)+len(w.False))
	out = append(out, w.True...)
	return append(out, w.False...)
}

// Generate builds a workload for g.
func Generate(g *graph.Graph, opts Options) (Workload, error) {
	if opts.ConcatLen < 1 {
		return Workload{}, fmt.Errorf("workload: ConcatLen must be >= 1, got %d", opts.ConcatLen)
	}
	if g.NumLabels() == 0 || g.NumEdges() == 0 {
		return Workload{}, fmt.Errorf("workload: graph has no labeled edges")
	}
	if opts.ConcatLen > 1 && g.NumLabels() == 1 {
		return Workload{}, fmt.Errorf("workload: no primitive constraint of length %d exists over 1 label", opts.ConcatLen)
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 200 * (opts.NumTrue + opts.NumFalse + 1)
	}

	r := rand.New(rand.NewSource(opts.Seed))
	ev := traversal.NewEvaluator(g)
	n := g.NumVertices()
	var w Workload

	nfaCache := map[string]*automaton.NFA{}
	nfaOf := func(l labelseq.Seq) (*automaton.NFA, error) {
		key := l.String()
		if nfa, ok := nfaCache[key]; ok {
			return nfa, nil
		}
		nfa, err := automaton.NewPlus(l, g.NumLabels())
		if err != nil {
			return nil, err
		}
		nfaCache[key] = nfa
		return nfa, nil
	}

	// Phase 1: uniform rejection sampling, filling both buckets — this is
	// the paper's procedure verbatim.
	for attempts := 0; attempts < maxAttempts; attempts++ {
		if len(w.True) >= opts.NumTrue && len(w.False) >= opts.NumFalse {
			break
		}
		s := graph.Vertex(r.Intn(n))
		t := graph.Vertex(r.Intn(n))
		l := randomPrimitive(r, g.NumLabels(), opts.ConcatLen)
		nfa, err := nfaOf(l)
		if err != nil {
			return Workload{}, err
		}
		if ev.BiBFS(s, t, nfa) {
			if len(w.True) < opts.NumTrue {
				w.True = append(w.True, Query{s, t, l, true})
			}
		} else if len(w.False) < opts.NumFalse {
			w.False = append(w.False, Query{s, t, l, false})
		}
	}

	// Phase 2: guided mining for any true queries rejection sampling did
	// not find in budget.
	if !opts.PureRejection {
		for attempts := 0; len(w.True) < opts.NumTrue && attempts < maxAttempts; attempts++ {
			s := graph.Vertex(r.Intn(n))
			l := randomPrimitive(r, g.NumLabels(), opts.ConcatLen)
			nfa, err := nfaOf(l)
			if err != nil {
				return Workload{}, err
			}
			reach := ev.ReachableFrom(s, nfa)
			if len(reach) == 0 {
				continue
			}
			t := reach[r.Intn(len(reach))]
			w.True = append(w.True, Query{s, t, l, true})
		}
		// Phase 3: random-walk mining — on sparse graphs, random
		// constraints rarely match any path, so mine the constraint FROM
		// a path instead: a walk of exactly ConcatLen edges whose label
		// sequence is primitive witnesses (start, end, labels+) = true.
		for attempts := 0; len(w.True) < opts.NumTrue && attempts < maxAttempts; attempts++ {
			if q, ok := mineWalk(r, g, opts.ConcatLen); ok {
				w.True = append(w.True, q)
			}
		}
	}

	if len(w.True) < opts.NumTrue || len(w.False) < opts.NumFalse {
		return w, fmt.Errorf("workload: generated %d/%d true and %d/%d false queries within budget",
			len(w.True), opts.NumTrue, len(w.False), opts.NumFalse)
	}
	return w, nil
}

// mineWalk samples a uniform random walk of exactly length edges; when its
// label sequence is primitive, the walk itself witnesses the true query
// (start, end, labels+).
func mineWalk(r *rand.Rand, g *graph.Graph, length int) (Query, bool) {
	s := graph.Vertex(r.Intn(g.NumVertices()))
	cur := s
	l := make(labelseq.Seq, 0, length)
	for step := 0; step < length; step++ {
		dsts, lbls := g.OutEdges(cur)
		if len(dsts) == 0 {
			return Query{}, false
		}
		i := r.Intn(len(dsts))
		cur = dsts[i]
		l = append(l, lbls[i])
	}
	if !labelseq.IsPrimitive(l) {
		return Query{}, false
	}
	return Query{S: s, T: cur, L: l, Expected: true}, true
}

// randomPrimitive draws a uniform label sequence of the given length,
// re-drawing until it is primitive (L = MR(L)), as Definition 1 requires.
func randomPrimitive(r *rand.Rand, numLabels, length int) labelseq.Seq {
	for {
		l := make(labelseq.Seq, length)
		for i := range l {
			l[i] = labelseq.Label(r.Intn(numLabels))
		}
		if labelseq.IsPrimitive(l) {
			return l
		}
	}
}

package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the workload parser: arbitrary text either fails cleanly
// or yields a workload that write/read round-trips.
func FuzzRead(f *testing.F) {
	f.Add("0 1 0,1 true\n2 3 1 false\n")
	f.Add("# comment\n\n1 1 2 true\n")
	f.Add("")
	f.Add("1 2 3\n")
	f.Add("a b c d\n")
	f.Add("1 2 0 maybe\n")
	f.Add("-1 2 0 true\n")
	f.Fuzz(func(t *testing.T, input string) {
		wl, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, wl); err != nil {
			t.Fatalf("accepted workload fails to write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(back.True) != len(wl.True) || len(back.False) != len(wl.False) {
			t.Fatalf("round trip changed sizes: %d/%d -> %d/%d",
				len(wl.True), len(wl.False), len(back.True), len(back.False))
		}
	})
}

package workload

import (
	"bytes"
	"strings"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

func sampleWorkload() Workload {
	return Workload{
		True: []Query{
			{S: 0, T: 3, L: labelseq.Seq{0, 1}, Expected: true},
			{S: 2, T: 2, L: labelseq.Seq{1}, Expected: true},
		},
		False: []Query{
			{S: 1, T: 0, L: labelseq.Seq{0}, Expected: false},
		},
	}
}

func TestWorkloadIORoundTrip(t *testing.T) {
	wl := sampleWorkload()
	var buf bytes.Buffer
	if err := Write(&buf, wl); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.True) != len(wl.True) || len(back.False) != len(wl.False) {
		t.Fatalf("round trip: %d/%d true, %d/%d false", len(back.True), len(wl.True), len(back.False), len(wl.False))
	}
	for i, q := range wl.True {
		b := back.True[i]
		if b.S != q.S || b.T != q.T || !b.L.Equal(q.L) || !b.Expected {
			t.Errorf("true[%d]: %+v != %+v", i, b, q)
		}
	}
	for i, q := range wl.False {
		b := back.False[i]
		if b.S != q.S || b.T != q.T || !b.L.Equal(q.L) || b.Expected {
			t.Errorf("false[%d]: %+v != %+v", i, b, q)
		}
	}
}

func TestWorkloadReadErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",           // 3 fields
		"1 2 0 yes maybe\n", // 5 fields
		"x 2 0 true\n",      // bad vertex
		"1 2 a true\n",      // bad label
		"1 2 0 nope\n",      // bad bool
		"-1 2 0 true\n",     // negative vertex
		"1 2 -3 true\n",     // negative label
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestWorkloadReadSkipsComments(t *testing.T) {
	in := "# header\n\n0 1 0 true\n"
	wl, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.True) != 1 || len(wl.False) != 0 {
		t.Fatalf("got %d true, %d false", len(wl.True), len(wl.False))
	}
	if wl.True[0].S != graph.Vertex(0) || wl.True[0].T != graph.Vertex(1) {
		t.Errorf("parsed query wrong: %+v", wl.True[0])
	}
}

func TestWorkloadFileRoundTrip(t *testing.T) {
	path := t.TempDir() + "/w.queries"
	if err := SaveFile(path, sampleWorkload()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.All()) != 3 {
		t.Errorf("file round trip lost queries: %d", len(back.All()))
	}
	if _, err := LoadFile(t.TempDir() + "/missing"); err == nil {
		t.Error("missing file must fail")
	}
}

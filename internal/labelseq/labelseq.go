package labelseq

import (
	"fmt"
	"strings"
)

// Label identifies an edge label. Labels are small dense integers assigned by
// the graph loader (0-based). The sentinel NoLabel marks an absent label.
type Label int32

// NoLabel is the sentinel value for an absent label.
const NoLabel Label = -1

// Seq is a sequence of edge labels, read in path order (first traversed edge
// first).
type Seq []Label

// Clone returns an independent copy of s.
func (s Seq) Clone() Seq {
	if s == nil {
		return nil
	}
	c := make(Seq, len(s))
	copy(c, s)
	return c
}

// Equal reports whether s and t contain the same labels in the same order.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Concat returns the concatenation s ∘ t as a fresh sequence.
func (s Seq) Concat(t Seq) Seq {
	out := make(Seq, 0, len(s)+len(t))
	out = append(out, s...)
	out = append(out, t...)
	return out
}

// Power returns s repeated z times. Power(s, 0) is the empty sequence.
func (s Seq) Power(z int) Seq {
	out := make(Seq, 0, len(s)*z)
	for i := 0; i < z; i++ {
		out = append(out, s...)
	}
	return out
}

// String renders the sequence as "(l0,l3,l1)" using numeric label ids.
func (s Seq) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "l%d", l)
	}
	b.WriteByte(')')
	return b.String()
}

// Format renders the sequence using the provided label names, falling back to
// numeric ids for labels without a name.
func (s Seq) Format(names []string) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, l := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		if int(l) >= 0 && int(l) < len(names) && names[l] != "" {
			b.WriteString(names[l])
		} else {
			fmt.Fprintf(&b, "l%d", l)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// failure fills fail with the KMP failure function of s: fail[i] is the
// length of the longest proper prefix of s[:i] that is also a suffix of
// s[:i]. fail must have length len(s)+1. It returns fail for convenience.
func failure(s Seq, fail []int) []int {
	fail[0] = 0
	if len(s) == 0 {
		return fail
	}
	fail[1] = 0
	k := 0
	for i := 1; i < len(s); i++ {
		for k > 0 && s[i] != s[k] {
			k = fail[k]
		}
		if s[i] == s[k] {
			k++
		}
		fail[i+1] = k
	}
	return fail
}

// SmallestPeriod returns the smallest p >= 1 such that s[i] == s[i-p] for all
// i >= p. Every sequence of length n >= 1 has a smallest period in [1, n].
// The empty sequence has period 0.
//
//rlc:noalloc
func SmallestPeriod(s Seq) int {
	if len(s) == 0 {
		return 0
	}
	// Query constraints are short (k <= 8), so a stack buffer keeps the
	// per-query validation path allocation-free; longer sequences (only
	// reachable through direct labelseq use) fall back to the heap.
	var buf [16]int
	var fail []int
	if len(s)+1 <= len(buf) {
		fail = failure(s, buf[:len(s)+1])
	} else {
		//rlc:allocok sequences beyond the stack buffer are outside the query path
		fail = failure(s, make([]int, len(s)+1))
	}
	return len(s) - fail[len(s)]
}

// MinimumRepeat returns MR(s): the unique shortest sequence L' with
// s == (L')^z for an integer z >= 1. The result aliases a prefix of s; clone
// it if s will be mutated. MR of the empty sequence is the empty sequence.
func MinimumRepeat(s Seq) Seq {
	n := len(s)
	if n == 0 {
		return s
	}
	p := SmallestPeriod(s)
	if n%p == 0 {
		return s[:p]
	}
	return s
}

// IsPrimitive reports whether s is its own minimum repeat (s == MR(s)).
// The empty sequence is not primitive.
func IsPrimitive(s Seq) bool {
	return len(s) > 0 && len(MinimumRepeat(s)) == len(s)
}

// KMR returns the k-MR of s: MR(s) if |MR(s)| <= k, and ok reports whether
// such a k-MR exists. Following the paper, the empty sequence has no k-MR.
func KMR(s Seq, k int) (mr Seq, ok bool) {
	if len(s) == 0 {
		return nil, false
	}
	mr = MinimumRepeat(s)
	if len(mr) <= k {
		return mr, true
	}
	return nil, false
}

// Kernel returns the kernel/tail decomposition of s per Definition 3:
// s = (kernel)^h ∘ tail with h >= 2, kernel primitive, and tail a proper
// prefix of kernel (possibly empty). ok reports whether s has a kernel;
// Lemma 2 guarantees the kernel is unique when it exists. The returned
// slices alias s.
func Kernel(s Seq) (kernel, tail Seq, ok bool) {
	n := len(s)
	if n < 2 {
		return nil, nil, false
	}
	p := SmallestPeriod(s)
	if 2*p > n {
		return nil, nil, false
	}
	// The prefix of length p is primitive: if it were (X)^m with |X| < p,
	// the whole sequence would have period |X| < p, contradicting p being
	// the smallest period.
	h := n / p
	return s[:p], s[h*p:], true
}

// HasKMRViaKernel implements the Case-3 test of Theorem 1 for a path split
// as prefix (of length exactly 2k) and rest: the path prefix∘rest has a
// non-empty k-MR L' iff prefix has kernel L' and tail L” with
// MR(L” ∘ rest) == L'. It returns that k-MR when it exists.
func HasKMRViaKernel(prefix, rest Seq, k int) (Seq, bool) {
	if len(prefix) != 2*k {
		panic("labelseq: HasKMRViaKernel requires |prefix| == 2k")
	}
	kernel, tail, ok := Kernel(prefix)
	if !ok || len(kernel) > k {
		return nil, false
	}
	if MinimumRepeat(tail.Concat(rest)).Equal(kernel) {
		return kernel, true
	}
	return nil, false
}

// SatisfiesPlus reports whether the label sequence seq satisfies the
// constraint L+ — i.e. MR(seq) == L (Section III-B). L must be primitive.
func SatisfiesPlus(seq, l Seq) bool {
	return len(seq) > 0 && MinimumRepeat(seq).Equal(l)
}

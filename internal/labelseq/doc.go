// Package labelseq implements the label-sequence algebra underlying the RLC
// index: minimum repeats (MR) of label sequences, kernel/tail decompositions
// (Definition 3 of the paper), and an interning dictionary that maps the
// minimum repeats recorded by the index to small integer ids.
//
// A label sequence is a []Label. The central notion is the minimum repeat:
// the unique shortest sequence L' such that L = (L')^z for an integer z >= 1
// (Lemma 1 of the paper proves uniqueness). Minimum repeats are computed with
// the Knuth-Morris-Pratt failure function in O(|L|).
package labelseq

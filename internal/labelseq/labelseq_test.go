package labelseq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// mrBrute computes the minimum repeat by trying every candidate length.
func mrBrute(s Seq) Seq {
	n := len(s)
	if n == 0 {
		return s
	}
outer:
	for p := 1; p <= n; p++ {
		if n%p != 0 {
			continue
		}
		for i := p; i < n; i++ {
			if s[i] != s[i-p] {
				continue outer
			}
		}
		return s[:p]
	}
	return s
}

// kernelBrute finds the kernel/tail decomposition of Definition 3 by
// enumeration: the shortest primitive L' with s = (L')^h ∘ tail, h >= 2 and
// tail a proper prefix of L'.
func kernelBrute(s Seq) (Seq, Seq, bool) {
	n := len(s)
	for p := 1; 2*p <= n; p++ {
		cand := s[:p]
		if !IsPrimitive(cand) {
			continue
		}
		ok := true
		for i := p; i < n; i++ {
			if s[i] != s[i%p] {
				ok = false
				break
			}
		}
		if ok {
			h := n / p
			return cand, s[h*p:], true
		}
	}
	return nil, nil, false
}

func randomSeq(r *rand.Rand, maxLen, numLabels int) Seq {
	n := r.Intn(maxLen + 1)
	s := make(Seq, n)
	for i := range s {
		s[i] = Label(r.Intn(numLabels))
	}
	return s
}

func TestMinimumRepeatTable(t *testing.T) {
	cases := []struct {
		in, want Seq
	}{
		{Seq{}, Seq{}},
		{Seq{0}, Seq{0}},
		{Seq{0, 0}, Seq{0}},
		{Seq{0, 1}, Seq{0, 1}},
		{Seq{0, 1, 0, 1}, Seq{0, 1}},
		{Seq{0, 1, 0}, Seq{0, 1, 0}},
		{Seq{0, 0, 0, 0, 0}, Seq{0}},
		{Seq{0, 1, 2, 0, 1, 2}, Seq{0, 1, 2}},
		{Seq{0, 1, 2, 0, 1}, Seq{0, 1, 2, 0, 1}},
		{Seq{1, 1, 0, 1, 1, 0}, Seq{1, 1, 0}},
		{Seq{0, 1, 0, 0, 1, 0}, Seq{0, 1, 0}},
		{Seq{0, 1, 1, 0, 1, 1}, Seq{0, 1, 1}},
	}
	for _, c := range cases {
		got := MinimumRepeat(c.in)
		if !got.Equal(c.want) {
			t.Errorf("MinimumRepeat(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMinimumRepeatMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		s := randomSeq(r, 16, 3)
		got, want := MinimumRepeat(s), mrBrute(s)
		if !got.Equal(want) {
			t.Fatalf("MinimumRepeat(%v) = %v, want %v", s, got, want)
		}
	}
}

func TestMinimumRepeatIdempotent(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = Label(b % 4)
		}
		mr := MinimumRepeat(s)
		return MinimumRepeat(mr).Equal(mr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMinimumRepeatDividesLength(t *testing.T) {
	f := func(raw []uint8) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = Label(b % 3)
		}
		if len(s) == 0 {
			return true
		}
		mr := MinimumRepeat(s)
		if len(s)%len(mr) != 0 {
			return false
		}
		// Reconstructing (mr)^z must yield s exactly.
		return mr.Power(len(s) / len(mr)).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIsPrimitive(t *testing.T) {
	cases := []struct {
		in   Seq
		want bool
	}{
		{Seq{}, false},
		{Seq{0}, true},
		{Seq{0, 0}, false},
		{Seq{0, 1}, true},
		{Seq{0, 1, 0}, true},
		{Seq{0, 1, 0, 1}, false},
	}
	for _, c := range cases {
		if got := IsPrimitive(c.in); got != c.want {
			t.Errorf("IsPrimitive(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestKMR(t *testing.T) {
	mr, ok := KMR(Seq{0, 1, 0, 1}, 2)
	if !ok || !mr.Equal(Seq{0, 1}) {
		t.Errorf("KMR((0,1,0,1), 2) = %v, %v; want (0,1), true", mr, ok)
	}
	if _, ok := KMR(Seq{0, 1, 2}, 2); ok {
		t.Error("KMR((0,1,2), 2) should not exist")
	}
	if _, ok := KMR(Seq{}, 2); ok {
		t.Error("KMR of empty sequence should not exist")
	}
	mr, ok = KMR(Seq{2, 2, 2}, 1)
	if !ok || !mr.Equal(Seq{2}) {
		t.Errorf("KMR((2,2,2), 1) = %v, %v; want (2), true", mr, ok)
	}
}

func TestKernelTable(t *testing.T) {
	cases := []struct {
		in           Seq
		kernel, tail Seq
		ok           bool
	}{
		{Seq{}, nil, nil, false},
		{Seq{0}, nil, nil, false},
		{Seq{0, 1}, nil, nil, false},
		{Seq{0, 0}, Seq{0}, Seq{}, true},
		{Seq{0, 1, 0, 1}, Seq{0, 1}, Seq{}, true},
		{Seq{0, 1, 0, 1, 0}, Seq{0, 1}, Seq{0}, true},
		{Seq{0, 1, 0, 0, 1, 0}, Seq{0, 1, 0}, Seq{}, true},
		{Seq{0, 1, 2, 0, 1}, nil, nil, false},
		// The paper's example: (knows,knows,knows,knows) has kernel
		// knows and tail ε.
		{Seq{0, 0, 0, 0}, Seq{0}, Seq{}, true},
	}
	for _, c := range cases {
		kernel, tail, ok := Kernel(c.in)
		if ok != c.ok {
			t.Errorf("Kernel(%v) ok = %v, want %v", c.in, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if !kernel.Equal(c.kernel) || !tail.Equal(c.tail) {
			t.Errorf("Kernel(%v) = %v, %v; want %v, %v", c.in, kernel, tail, c.kernel, c.tail)
		}
	}
}

func TestKernelMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		s := randomSeq(r, 14, 3)
		k1, t1, ok1 := Kernel(s)
		k2, t2, ok2 := kernelBrute(s)
		if ok1 != ok2 {
			t.Fatalf("Kernel(%v) ok = %v, brute = %v", s, ok1, ok2)
		}
		if ok1 && (!k1.Equal(k2) || !t1.Equal(t2)) {
			t.Fatalf("Kernel(%v) = %v/%v, brute = %v/%v", s, k1, t1, k2, t2)
		}
	}
}

// TestKernelUniqueness verifies Lemma 2 empirically: when a kernel exists it
// is the only primitive p with s = p^h ∘ tail, h >= 2 and tail a proper
// prefix of p.
func TestKernelUniqueness(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 3000; i++ {
		s := randomSeq(r, 12, 2)
		n := len(s)
		var kernels []Seq
		for p := 1; 2*p <= n; p++ {
			cand := s[:p]
			if !IsPrimitive(cand) {
				continue
			}
			match := true
			for j := p; j < n; j++ {
				if s[j] != s[j%p] {
					match = false
					break
				}
			}
			if match {
				kernels = append(kernels, cand)
			}
		}
		if len(kernels) > 1 {
			t.Fatalf("sequence %v has %d kernels: %v — violates Lemma 2", s, len(kernels), kernels)
		}
	}
}

// TestTheorem1Case3 checks the Case-3 criterion of Theorem 1 against the
// brute-force k-MR of the full sequence, for paths longer than 2k.
func TestTheorem1Case3(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, k := range []int{1, 2, 3} {
		for i := 0; i < 4000; i++ {
			total := 2*k + 1 + r.Intn(3*k)
			s := make(Seq, total)
			for j := range s {
				s[j] = Label(r.Intn(2))
			}
			// Bias half the trials toward periodic sequences so the
			// positive branch is exercised.
			if i%2 == 0 {
				p := 1 + r.Intn(k)
				for j := p; j < total; j++ {
					s[j] = s[j%p]
				}
			}
			prefix, rest := s[:2*k], s[2*k:]
			gotMR, gotOK := HasKMRViaKernel(prefix, rest, k)
			wantMR, wantOK := KMR(s, k)
			if gotOK != wantOK {
				t.Fatalf("k=%d seq=%v: kernel criterion ok=%v, brute k-MR ok=%v", k, s, gotOK, wantOK)
			}
			if gotOK && !gotMR.Equal(wantMR) {
				t.Fatalf("k=%d seq=%v: kernel criterion MR=%v, brute=%v", k, s, gotMR, wantMR)
			}
		}
	}
}

func TestSatisfiesPlus(t *testing.T) {
	l := Seq{0, 1}
	if !SatisfiesPlus(Seq{0, 1, 0, 1}, l) {
		t.Error("(0,1,0,1) should satisfy (0,1)+")
	}
	if SatisfiesPlus(Seq{0, 1, 0}, l) {
		t.Error("(0,1,0) should not satisfy (0,1)+")
	}
	if SatisfiesPlus(Seq{}, l) {
		t.Error("empty sequence should not satisfy (0,1)+")
	}
	if !SatisfiesPlus(Seq{0, 1}, l) {
		t.Error("(0,1) should satisfy (0,1)+")
	}
}

func TestSeqHelpers(t *testing.T) {
	s := Seq{0, 1, 2}
	c := s.Clone()
	c[0] = 5
	if s[0] != 0 {
		t.Error("Clone must not alias")
	}
	if got := s.Concat(Seq{3}).String(); got != "(l0,l1,l2,l3)" {
		t.Errorf("Concat/String = %q", got)
	}
	if got := s.Format([]string{"a", "b"}); got != "(a,b,l2)" {
		t.Errorf("Format = %q", got)
	}
	if !(Seq{0}).Power(3).Equal(Seq{0, 0, 0}) {
		t.Error("Power broken")
	}
	if len((Seq{0, 1}).Power(0)) != 0 {
		t.Error("Power(0) should be empty")
	}
	var nilSeq Seq
	if nilSeq.Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestSmallestPeriod(t *testing.T) {
	cases := []struct {
		in   Seq
		want int
	}{
		{Seq{}, 0},
		{Seq{0}, 1},
		{Seq{0, 0}, 1},
		{Seq{0, 1, 0}, 2},
		{Seq{0, 1, 0, 1}, 2},
		{Seq{0, 1, 2}, 3},
	}
	for _, c := range cases {
		if got := SmallestPeriod(c.in); got != c.want {
			t.Errorf("SmallestPeriod(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

package labelseq

import (
	"fmt"
	"math"
)

// ID identifies an interned sequence in a Dict. IDs are dense and start at 0.
type ID uint32

// InvalidID is returned by lookups of sequences that were never interned.
const InvalidID ID = math.MaxUint32

// Code is a packed integer encoding of a short label sequence, used as a map
// key and as an O(1)-updatable search state. For a dictionary with base b
// (b = number of labels + 1), the sequence (l1,...,ln) is encoded as
//
//	code = Σ_{i=1..n} (l_i + 1) * b^(n-i)
//
// i.e. the first label is the most significant digit. The empty sequence has
// code 0. Codes are unique across lengths because digit 0 never occurs.
type Code uint64

// Coder packs label sequences into Codes for a fixed label-set size and a
// maximum sequence length. It supports O(1) append and prepend, which the
// indexing traversals use to maintain the code of the current path suffix
// incrementally.
type Coder struct {
	base Code
	// pow[i] = base^i for i in [0, maxLen].
	pow []Code
}

// NewCoder returns a Coder for sequences over numLabels labels with length
// at most maxLen. It returns an error if the code space does not fit in 63
// bits — for the paper's regimes (k <= 4, |L| <= 50) it always fits.
func NewCoder(numLabels, maxLen int) (*Coder, error) {
	if numLabels < 1 {
		return nil, fmt.Errorf("labelseq: NewCoder: numLabels must be >= 1, got %d", numLabels)
	}
	if maxLen < 1 {
		return nil, fmt.Errorf("labelseq: NewCoder: maxLen must be >= 1, got %d", maxLen)
	}
	base := Code(numLabels + 1)
	pow := make([]Code, maxLen+1)
	pow[0] = 1
	for i := 1; i <= maxLen; i++ {
		if pow[i-1] > (1<<63)/base {
			return nil, fmt.Errorf("labelseq: NewCoder: %d labels with max length %d overflow the 63-bit code space", numLabels, maxLen)
		}
		pow[i] = pow[i-1] * base
	}
	return &Coder{base: base, pow: pow}, nil
}

// MaxLen returns the maximum sequence length supported by the coder.
func (c *Coder) MaxLen() int { return len(c.pow) - 1 }

// Encode packs s into a Code. It panics if s is longer than MaxLen or
// contains labels outside the coder's label set. Encoding a valid sequence
// is pure arithmetic — it runs once per query on the serving hot path, so
// rlcvet holds it allocation-free; only the panic messages build anything.
//
//rlc:noalloc
func (c *Coder) Encode(s Seq) Code {
	if len(s) > c.MaxLen() {
		//rlc:allocok panic-only path formats the failure message
		panic(fmt.Sprintf("labelseq: Encode: sequence length %d exceeds max %d", len(s), c.MaxLen()))
	}
	var code Code
	for _, l := range s {
		c.checkLabel(l)
		code = code*c.base + Code(l+1)
	}
	return code
}

// Append returns the code of (decoded(code) ∘ l). len is the current length.
func (c *Coder) Append(code Code, l Label) Code {
	c.checkLabel(l)
	return code*c.base + Code(l+1)
}

// Prepend returns the code of (l ∘ decoded(code)), where length is the
// length of the sequence currently encoded by code.
func (c *Coder) Prepend(code Code, l Label, length int) Code {
	c.checkLabel(l)
	return Code(l+1)*c.pow[length] + code
}

// Decode unpacks a code of known length back into a sequence.
func (c *Coder) Decode(code Code, length int) Seq {
	s := make(Seq, length)
	for i := length - 1; i >= 0; i-- {
		digit := code % c.base
		s[i] = Label(digit - 1)
		code /= c.base
	}
	return s
}

//rlc:noalloc
func (c *Coder) checkLabel(l Label) {
	if l < 0 || Code(l+1) >= c.base {
		//rlc:allocok panic-only path formats the failure message
		panic(fmt.Sprintf("labelseq: label %d out of range for base %d", l, c.base))
	}
}

// Dict interns label sequences, assigning each distinct sequence a dense ID.
// The RLC index stores (hub, ID) pairs instead of raw sequences, which is
// the "succinct label sequences" representation of Section V. Dict is not
// safe for concurrent mutation.
type Dict struct {
	coder *Coder
	ids   map[Code]ID
	seqs  []Seq
	codes []Code
}

// NewDict returns an empty dictionary over numLabels labels for sequences of
// length at most maxLen (typically the recursive k).
func NewDict(numLabels, maxLen int) (*Dict, error) {
	coder, err := NewCoder(numLabels, maxLen)
	if err != nil {
		return nil, err
	}
	return &Dict{coder: coder, ids: make(map[Code]ID)}, nil
}

// Coder exposes the dictionary's sequence coder.
func (d *Dict) Coder() *Coder { return d.coder }

// Len returns the number of interned sequences.
func (d *Dict) Len() int { return len(d.seqs) }

// Intern returns the ID of s, interning it first if necessary.
func (d *Dict) Intern(s Seq) ID {
	return d.InternCode(d.coder.Encode(s), s)
}

// InternCode interns a sequence by its precomputed code, avoiding the encode
// pass on hot paths. s is cloned on first insertion.
func (d *Dict) InternCode(code Code, s Seq) ID {
	if id, ok := d.ids[code]; ok {
		return id
	}
	id := ID(len(d.seqs))
	d.ids[code] = id
	d.seqs = append(d.seqs, s.Clone())
	d.codes = append(d.codes, code)
	return id
}

// Lookup returns the ID of s, or InvalidID if s was never interned.
//
//rlc:noalloc
func (d *Dict) Lookup(s Seq) ID {
	if id, ok := d.ids[d.coder.Encode(s)]; ok {
		return id
	}
	return InvalidID
}

// LookupCode returns the ID for a precomputed code, or InvalidID.
//
//rlc:noalloc
func (d *Dict) LookupCode(code Code) ID {
	if id, ok := d.ids[code]; ok {
		return id
	}
	return InvalidID
}

// TruncateTo removes every sequence interned at or after position n,
// restoring the dictionary to an earlier length. IDs are assigned densely in
// interning order, so truncation is exact rollback: the surviving IDs and
// codes are untouched. The parallel index build uses this to discard the
// interns of a commit replay that had to be abandoned.
func (d *Dict) TruncateTo(n int) {
	for i := len(d.seqs) - 1; i >= n; i-- {
		delete(d.ids, d.codes[i])
	}
	d.seqs = d.seqs[:n]
	d.codes = d.codes[:n]
}

// Seq returns the sequence interned under id. The result must not be
// mutated.
func (d *Dict) Seq(id ID) Seq {
	return d.seqs[id]
}

// Code returns the packed code of the sequence interned under id.
func (d *Dict) Code(id ID) Code {
	return d.codes[id]
}

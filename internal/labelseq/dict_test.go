package labelseq

import (
	"math/rand"
	"testing"
)

func TestCoderRoundTrip(t *testing.T) {
	coder, err := NewCoder(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 2000; i++ {
		s := make(Seq, r.Intn(5))
		for j := range s {
			s[j] = Label(r.Intn(5))
		}
		code := coder.Encode(s)
		if got := coder.Decode(code, len(s)); !got.Equal(s) {
			t.Fatalf("Decode(Encode(%v)) = %v", s, got)
		}
	}
}

func TestCoderAppendPrepend(t *testing.T) {
	coder, err := NewCoder(4, 6)
	if err != nil {
		t.Fatal(err)
	}
	s := Seq{1, 3, 0, 2}
	code := coder.Encode(s)
	if got := coder.Append(code, 2); got != coder.Encode(append(s.Clone(), 2)) {
		t.Errorf("Append mismatch: %d", got)
	}
	if got := coder.Prepend(code, 3, len(s)); got != coder.Encode(Seq{3}.Concat(s)) {
		t.Errorf("Prepend mismatch: %d", got)
	}
	// Incremental prepends from the empty sequence must match batch encoding.
	var inc Code
	var cur Seq
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 6; i++ {
		l := Label(r.Intn(4))
		inc = coder.Prepend(inc, l, len(cur))
		cur = Seq{l}.Concat(cur)
		if inc != coder.Encode(cur) {
			t.Fatalf("incremental prepend diverged at step %d", i)
		}
	}
}

func TestCoderUniqueAcrossLengths(t *testing.T) {
	coder, err := NewCoder(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[Code]Seq)
	var all []Seq
	var gen func(prefix Seq)
	gen = func(prefix Seq) {
		all = append(all, prefix.Clone())
		if len(prefix) == 3 {
			return
		}
		for l := Label(0); l < 3; l++ {
			gen(append(prefix, l))
		}
	}
	gen(Seq{})
	for _, s := range all {
		code := coder.Encode(s)
		if prev, ok := seen[code]; ok {
			t.Fatalf("code collision: %v and %v both encode to %d", prev, s, code)
		}
		seen[code] = s
	}
}

func TestCoderOverflowRejected(t *testing.T) {
	if _, err := NewCoder(1000, 10); err == nil {
		t.Error("expected overflow error for huge code space")
	}
	if _, err := NewCoder(0, 2); err == nil {
		t.Error("expected error for zero labels")
	}
	if _, err := NewCoder(3, 0); err == nil {
		t.Error("expected error for zero max length")
	}
}

func TestCoderPanicsOnBadInput(t *testing.T) {
	coder, err := NewCoder(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	mustPanic(t, "label out of range", func() { coder.Encode(Seq{5}) })
	mustPanic(t, "negative label", func() { coder.Append(0, -1) })
	mustPanic(t, "too long", func() { coder.Encode(Seq{0, 1, 0}) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestDictIntern(t *testing.T) {
	d, err := NewDict(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Intern(Seq{0, 1})
	b := d.Intern(Seq{1, 0})
	if a == b {
		t.Error("distinct sequences must get distinct ids")
	}
	if again := d.Intern(Seq{0, 1}); again != a {
		t.Errorf("re-interning returned %d, want %d", again, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if !d.Seq(a).Equal(Seq{0, 1}) {
		t.Errorf("Seq(%d) = %v", a, d.Seq(a))
	}
	if d.Lookup(Seq{3}) != InvalidID {
		t.Error("Lookup of missing sequence should be InvalidID")
	}
	if d.Lookup(Seq{1, 0}) != b {
		t.Error("Lookup(1,0) mismatch")
	}
	if d.Code(a) != d.Coder().Encode(Seq{0, 1}) {
		t.Error("Code(a) mismatch")
	}
	if d.LookupCode(d.Coder().Encode(Seq{1, 0})) != b {
		t.Error("LookupCode mismatch")
	}
	if d.LookupCode(12345) != InvalidID {
		t.Error("LookupCode of unknown code should be InvalidID")
	}
}

// TestDictInternClones guards against aliasing bugs: mutating the caller's
// slice after interning must not corrupt the dictionary.
func TestDictInternClones(t *testing.T) {
	d, err := NewDict(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := Seq{2, 3}
	id := d.Intern(s)
	s[0] = 0
	if !d.Seq(id).Equal(Seq{2, 3}) {
		t.Error("dictionary aliased the caller's slice")
	}
}

func TestDictTruncateTo(t *testing.T) {
	d, err := NewDict(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Intern(Seq{0})
	b := d.Intern(Seq{1, 2})
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	c := d.Intern(Seq{3})
	d.Intern(Seq{2, 2, 1})
	d.TruncateTo(2)
	if d.Len() != 2 {
		t.Fatalf("after truncate: len = %d", d.Len())
	}
	// Survivors keep their IDs and codes; truncated sequences are gone and
	// re-interning them assigns fresh dense IDs from the cut point.
	if d.Lookup(Seq{0}) != a || d.Lookup(Seq{1, 2}) != b {
		t.Error("surviving IDs changed")
	}
	if d.Lookup(Seq{3}) != InvalidID || d.Lookup(Seq{2, 2, 1}) != InvalidID {
		t.Error("truncated sequences still resolve")
	}
	if got := d.Intern(Seq{2, 2, 1}); got != c {
		t.Errorf("re-intern after truncate = %d, want %d", got, c)
	}
}

package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Segment wire format. A segment stream is a sequence of frames, each
//
//	[u32 payloadLen][payload][u32 crc32c(payload)]
//
// with the payload
//
//	[u64 startSeq][u32 count][count × (i32 src, i32 label, i32 dst)]
//
// all little-endian. startSeq is the global insert sequence of the first
// edge, so frames are self-describing: a follower can verify contiguity
// frame by frame. The stream ends at clean EOF; a frame cut off mid-way or
// failing its checksum is a wire error, never a short success.
const (
	// MaxSegmentEdges caps the edges encoded in one frame; larger exports
	// are chunked. The cap also bounds what a reader will allocate for a
	// single frame before the checksum has been verified.
	MaxSegmentEdges = 512

	edgeBytes        = 12
	segmentHeadBytes = 12 // startSeq + count
	maxPayloadBytes  = segmentHeadBytes + MaxSegmentEdges*edgeBytes
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errWire classifies every malformed-stream failure: truncation, checksum
// mismatch, or an implausible frame size.
var errWire = errors.New("cluster: corrupt segment stream")

// WriteSegments encodes edges starting at global sequence startSeq as a
// sequence of checksummed frames, chunking at MaxSegmentEdges.
func WriteSegments(w io.Writer, startSeq uint64, edges []graph.Edge) error {
	for len(edges) > 0 {
		n := len(edges)
		if n > MaxSegmentEdges {
			n = MaxSegmentEdges
		}
		if err := writeSegment(w, startSeq, edges[:n]); err != nil {
			return err
		}
		startSeq += uint64(n)
		edges = edges[n:]
	}
	return nil
}

func writeSegment(w io.Writer, startSeq uint64, edges []graph.Edge) error {
	le := binary.LittleEndian
	payload := make([]byte, segmentHeadBytes+len(edges)*edgeBytes)
	le.PutUint64(payload[0:], startSeq)
	le.PutUint32(payload[8:], uint32(len(edges)))
	for i, e := range edges {
		off := segmentHeadBytes + i*edgeBytes
		le.PutUint32(payload[off:], uint32(e.Src))
		le.PutUint32(payload[off+4:], uint32(e.Label))
		le.PutUint32(payload[off+8:], uint32(e.Dst))
	}
	frame := make([]byte, 4+len(payload)+4)
	le.PutUint32(frame[0:], uint32(len(payload)))
	copy(frame[4:], payload)
	le.PutUint32(frame[4+len(payload):], crc32.Checksum(payload, castagnoli))
	_, err := w.Write(frame)
	return err
}

// ReadSegment decodes the next frame from r. A clean end of stream returns
// io.EOF; anything short or inconsistent — including a frame whose header
// arrived but whose body did not — wraps errWire, so a truncated transfer
// can never be mistaken for a complete one.
func ReadSegment(r io.Reader) (startSeq uint64, edges []graph.Edge, err error) {
	le := binary.LittleEndian
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: frame length: %v", errWire, err)
	}
	payloadLen := int(le.Uint32(lenBuf[:]))
	if payloadLen < segmentHeadBytes || payloadLen > maxPayloadBytes ||
		(payloadLen-segmentHeadBytes)%edgeBytes != 0 {
		return 0, nil, fmt.Errorf("%w: implausible payload length %d", errWire, payloadLen)
	}
	buf := make([]byte, payloadLen+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("%w: truncated frame: %v", errWire, err)
	}
	payload := buf[:payloadLen]
	if got, want := crc32.Checksum(payload, castagnoli), le.Uint32(buf[payloadLen:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame checksum mismatch (%08x != %08x)", errWire, got, want)
	}
	startSeq = le.Uint64(payload[0:])
	count := int(le.Uint32(payload[8:]))
	if count != (payloadLen-segmentHeadBytes)/edgeBytes {
		return 0, nil, fmt.Errorf("%w: count %d disagrees with payload size %d", errWire, count, payloadLen)
	}
	edges = make([]graph.Edge, count)
	for i := range edges {
		off := segmentHeadBytes + i*edgeBytes
		edges[i] = graph.Edge{
			Src:   graph.Vertex(le.Uint32(payload[off:])),
			Label: graph.Label(le.Uint32(payload[off+4:])),
			Dst:   graph.Vertex(le.Uint32(payload[off+8:])),
		}
	}
	return startSeq, edges, nil
}

package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"github.com/g-rpqs/rlc-go/internal/server"
)

// HeaderOrigin carries the cluster's lineage identity — the compact
// fingerprint of the base graph the leader started from. It never changes
// for the life of the leader process, unlike the serving fingerprint
// (which moves with every fold), so a follower can pin it at first contact
// and refuse any later response from a different lineage.
const HeaderOrigin = "X-Rlc-Origin"

// Leader serves a mutable server's endpoints plus the replication feed.
// Client traffic (queries, updates, admin) passes through to the wrapped
// server untouched; /repl/segments and /repl/bundle expose the journal
// stream and fold bundles to followers.
type Leader struct {
	srv    *server.Server
	origin string
	mux    *http.ServeMux

	// pollInterval paces the segments long-poll re-check; tests shorten it.
	pollInterval time.Duration
}

// maxPollWait caps a follower-requested long-poll so a stuck client cannot
// park a handler goroutine indefinitely.
const maxPollWait = 30 * time.Second

// NewLeader wraps srv (which must be mutable) with the replication
// endpoints. The lineage origin is fixed here, from the fingerprint of the
// base the leader is serving at startup.
func NewLeader(srv *server.Server) *Leader {
	l := &Leader{
		srv:          srv,
		origin:       srv.ReplState().Fingerprint,
		pollInterval: 5 * time.Millisecond,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/segments", l.handleSegments)
	mux.HandleFunc("GET /repl/bundle", l.handleBundle)
	mux.Handle("/", srv.Handler())
	l.mux = mux
	return l
}

// Handler returns the combined handler: replication endpoints over the
// wrapped server's full client surface.
func (l *Leader) Handler() http.Handler { return l.mux }

// Origin returns the leader's lineage identity.
func (l *Leader) Origin() string { return l.origin }

// handshake stamps the replication coordinate headers every repl response
// carries, success or failure — a failed poll still tells the follower
// where the leader is, which is what drives bundle cutover.
func (l *Leader) handshake(w http.ResponseWriter, rs server.ReplState) {
	h := w.Header()
	h.Set(HeaderOrigin, l.origin)
	h.Set(server.HeaderEpoch, strconv.FormatUint(rs.Epoch, 10))
	h.Set(server.HeaderSeq, strconv.FormatUint(rs.Seq, 10))
	h.Set(server.HeaderSeqBase, strconv.FormatUint(rs.SeqBase, 10))
	h.Set(server.HeaderFingerprint, rs.Fingerprint)
}

// replError answers a replication request with the machine-readable code
// of the underlying failure; followers branch on the code, not the text.
func replError(w http.ResponseWriter, err error) {
	code := server.ErrorCode(err)
	status := http.StatusInternalServerError
	switch code {
	case "behind_bundle":
		// Gone: the requested range no longer exists as segments. The
		// follower must cut over via the bundle endpoint.
		status = http.StatusGone
	case "foreign_log", "epoch_gone":
		status = http.StatusConflict
	case "server_closed":
		status = http.StatusServiceUnavailable
	case "immutable":
		status = http.StatusNotImplemented
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error(), "code": code})
}

// badRequest rejects a malformed replication request (unparseable query
// parameters) before touching the server.
func badRequest(w http.ResponseWriter, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusBadRequest)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg, "code": "bad_request"})
}

// handleSegments is the journal feed: sealed segments from global sequence
// `from`, long-polling up to `wait_ms` for new inserts. Every poll asks
// the server to flush (force-seal) a pending sub-boundary tail, so a write
// trickle still replicates within one poll round-trip. An empty 200 after
// the wait is the long-poll timeout; the handshake headers still carry the
// leader's position.
func (l *Leader) handleSegments(w http.ResponseWriter, r *http.Request) {
	from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
	if err != nil {
		badRequest(w, "segments: bad or missing from parameter: "+err.Error())
		return
	}
	var wait time.Duration
	if ms := r.URL.Query().Get("wait_ms"); ms != "" {
		v, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || v < 0 {
			badRequest(w, "segments: bad wait_ms parameter")
			return
		}
		wait = time.Duration(v) * time.Millisecond
		if wait > maxPollWait {
			wait = maxPollWait
		}
	}
	deadline := time.Now().Add(wait)
	for {
		edges, rs, err := l.srv.ExportSealed(from, true)
		if err != nil {
			l.handshake(w, rs)
			replError(w, err)
			return
		}
		if len(edges) > 0 || !time.Now().Before(deadline) {
			l.handshake(w, rs)
			w.Header().Set("Content-Type", "application/octet-stream")
			_ = WriteSegments(w, from, edges)
			return
		}
		select {
		case <-r.Context().Done():
			l.handshake(w, rs)
			w.Header().Set("Content-Type", "application/octet-stream")
			return
		case <-time.After(l.pollInterval):
		}
	}
}

// handleBundle ships the folded bundle serving the requested epoch as raw
// .rlcs bytes. The epoch must match the serving epoch exactly: a fold
// racing the request fails it with epoch_gone and the current coordinates
// in the handshake, and the follower retries against the newer epoch.
func (l *Leader) handleBundle(w http.ResponseWriter, r *http.Request) {
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		badRequest(w, "bundle: bad or missing epoch parameter: "+err.Error())
		return
	}
	rc, rs, err := l.srv.BundleReader(epoch)
	l.handshake(w, rs)
	if err != nil {
		replError(w, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	if rs.BundleBytes > 0 {
		w.Header().Set("Content-Length", strconv.FormatInt(rs.BundleBytes, 10))
	}
	_, _ = io.Copy(w, rc)
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/server"
)

// errForeignLog is the permanent replication failure: the leader's history
// is not this follower's history (different origin lineage, or a log
// position past the leader's end). A follower stops rather than apply a
// single edge from it — silently merging two histories would corrupt the
// replica for every future query.
var errForeignLog = errors.New("cluster: leader log belongs to a different lineage; refusing to replicate")

// FollowerOptions configures the replication loop.
type FollowerOptions struct {
	// LeaderURL is the leader's base URL (e.g. "http://10.0.0.1:8080").
	LeaderURL string
	// Client is the HTTP client for replication calls; nil uses a default
	// with no overall timeout (the long-poll holds connections open).
	Client *http.Client
	// PollWait is the long-poll wait the follower asks the leader for.
	// Zero selects 2s.
	PollWait time.Duration
	// RetryInterval paces retries after transient errors. Zero selects 200ms.
	RetryInterval time.Duration
	// Origin is the expected lineage identity (the leader's X-Rlc-Origin).
	// Empty selects the follower server's own fingerprint at construction —
	// correct when leader and follower booted from the same seed bundle,
	// which is the deployment contract. A follower restarted from an
	// adopted (post-fold) bundle must pass the lineage origin explicitly.
	Origin string
	// Logf, when non-nil, receives replication progress lines.
	Logf func(format string, args ...any)
}

// FollowerStats counts replication progress; all fields are cumulative.
type FollowerStats struct {
	// Segments is the number of non-empty segment frames applied.
	Segments uint64
	// Edges is the number of journal edges applied.
	Edges uint64
	// Cutovers is the number of bundle epoch cutovers completed.
	Cutovers uint64
}

// Follower replicates a leader's journal and fold epochs into a local
// mutable server. It is driven by Run; the local server answers queries
// concurrently the whole time, including across bundle cutovers.
type Follower struct {
	srv  *server.Server
	opts FollowerOptions

	// origin is the lineage this follower will replicate — fixed at
	// construction; every leader response must match or replication stops
	// with errForeignLog before a single edge is applied.
	origin string

	segments atomic.Uint64
	edges    atomic.Uint64
	cutovers atomic.Uint64
}

// NewFollower wraps a local mutable server (Options.Role "follower",
// automatic folds disabled — its epochs must come from the leader) with a
// replication loop against opts.LeaderURL.
func NewFollower(srv *server.Server, opts FollowerOptions) *Follower {
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 2 * time.Second
	}
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = 200 * time.Millisecond
	}
	origin := opts.Origin
	if origin == "" {
		origin = srv.ReplState().Fingerprint
	}
	return &Follower{srv: srv, opts: opts, origin: origin}
}

// Stats returns cumulative replication counters.
func (f *Follower) Stats() FollowerStats {
	return FollowerStats{
		Segments: f.segments.Load(),
		Edges:    f.edges.Load(),
		Cutovers: f.cutovers.Load(),
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// checkOrigin rejects any response that is not from the expected lineage.
func (f *Follower) checkOrigin(h http.Header) error {
	got := h.Get(HeaderOrigin)
	if got == "" {
		return fmt.Errorf("%w: response carries no origin header", errForeignLog)
	}
	if got != f.origin {
		return fmt.Errorf("%w: leader origin %s, expected %s", errForeignLog, got, f.origin)
	}
	return nil
}

func headerUint(h http.Header, key string) (uint64, error) {
	v, err := strconv.ParseUint(h.Get(key), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cluster: bad %s header %q: %w", key, h.Get(key), err)
	}
	return v, nil
}

// Run drives replication until ctx is canceled (returns ctx.Err()) or a
// permanent divergence is detected (returns errForeignLog-wrapping error).
// Transient failures — network errors, leader restarts within the same
// lineage, epoch races — are retried forever.
func (f *Follower) Run(ctx context.Context) error {
	for {
		err := f.pollOnce(ctx)
		switch {
		case err == nil:
			continue
		case errors.Is(err, errForeignLog):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			f.logf("follower: transient: %v", err)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(f.opts.RetryInterval):
			}
		}
	}
}

// pollOnce performs one long-poll round: fetch segments from the local
// applied sequence, apply them, and cut over to the leader's bundle when
// its epoch has moved ahead.
func (f *Follower) pollOnce(ctx context.Context) error {
	local := f.srv.ReplState()
	u := fmt.Sprintf("%s/repl/segments?from=%d&wait_ms=%d",
		f.opts.LeaderURL, local.Seq, f.opts.PollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if err := f.checkOrigin(resp.Header); err != nil {
		return err
	}
	leaderEpoch, err := headerUint(resp.Header, server.HeaderEpoch)
	if err != nil {
		return err
	}

	switch resp.StatusCode {
	case http.StatusOK:
		if err := f.applySegments(resp.Body, local.Seq); err != nil {
			return err
		}
		if leaderEpoch > local.Epoch {
			return f.cutover(ctx, leaderEpoch)
		}
		return nil
	case http.StatusGone:
		// Our cursor predates the leader's folded base: segments are gone,
		// the bundle carries everything we are missing.
		return f.cutover(ctx, leaderEpoch)
	case http.StatusConflict:
		return fmt.Errorf("%w: leader rejected cursor %d (epoch %d)", errForeignLog, local.Seq, leaderEpoch)
	default:
		return fmt.Errorf("cluster: segments: leader answered %s", resp.Status)
	}
}

// applySegments replays a segment stream through the local server's exact
// batch-insert path, verifying frame contiguity against the local cursor.
// A gap or overlap means the stream raced a local change that cannot
// happen (the replication loop is the only writer) — treated as a wire
// error and retried from the new cursor.
func (f *Follower) applySegments(body io.Reader, cursor uint64) error {
	for {
		start, edges, err := ReadSegment(body)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if start != cursor {
			return fmt.Errorf("%w: segment starts at %d, cursor is %d", errWire, start, cursor)
		}
		if _, err := f.srv.UpdateBatch(edges); err != nil {
			return fmt.Errorf("cluster: apply segment at %d: %w", start, err)
		}
		cursor += uint64(len(edges))
		f.segments.Add(1)
		f.edges.Add(uint64(len(edges)))
	}
}

// cutover downloads the leader's folded bundle for epoch, verifies it —
// container checksums and fingerprint handshake — and hot-swaps the local
// server onto it, carrying local journal edges past the bundle's base into
// the new overlay. Queries keep answering throughout; the swap itself is
// the same drain path a local fold uses. An epoch race (the leader folded
// again) is transient: the next poll sees the newer epoch and retries.
func (f *Follower) cutover(ctx context.Context, epoch uint64) error {
	u := fmt.Sprintf("%s/repl/bundle?epoch=%d", f.opts.LeaderURL, epoch)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if err := f.checkOrigin(resp.Header); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: bundle epoch %d: leader answered %s", epoch, resp.Status)
	}
	seqBase, err := headerUint(resp.Header, server.HeaderSeqBase)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("cluster: bundle transfer: %w", err)
	}

	snap, err := core.OpenSnapshotBytes(raw)
	if err != nil {
		return fmt.Errorf("cluster: open shipped bundle: %w", err)
	}
	ok := false
	defer func() {
		if !ok {
			snap.Close()
		}
	}()
	if err := snap.Verify(); err != nil {
		return fmt.Errorf("cluster: verify shipped bundle: %w", err)
	}
	if fp, want := snap.Fingerprint().Compact(), resp.Header.Get(server.HeaderFingerprint); fp != want {
		return fmt.Errorf("%w: bundle fingerprint %s does not match handshake %s", errForeignLog, fp, want)
	}

	tail, err := f.journalFrom(seqBase)
	if err != nil {
		return err
	}
	if err := f.srv.AdoptFolded(snap, tail, epoch, seqBase,
		fmt.Sprintf("replicated bundle epoch %d", epoch)); err != nil {
		return fmt.Errorf("cluster: adopt bundle epoch %d: %w", epoch, err)
	}
	ok = true
	f.cutovers.Add(1)
	f.logf("follower: cut over to epoch %d (base %d, %d journal edges carried)", epoch, seqBase, len(tail))
	return nil
}

// journalFrom collects every locally applied edge at global sequence >=
// from — the journal tail a cutover carries into the adopted generation.
// A follower behind the bundle (local seq < from) has nothing to carry:
// the bundle subsumes its entire history. The replication loop is the only
// writer on this server, so the sequence is stable across the loop; the
// flushing export loop drains sealed and unsealed edges alike.
func (f *Follower) journalFrom(from uint64) ([]graph.Edge, error) {
	local := f.srv.ReplState()
	if local.Seq <= from {
		return nil, nil
	}
	var tail []graph.Edge
	cursor := from
	for cursor < local.Seq {
		edges, _, err := f.srv.ExportSealed(cursor, true)
		if err != nil {
			return nil, fmt.Errorf("cluster: collect journal tail: %w", err)
		}
		if len(edges) == 0 {
			return nil, fmt.Errorf("cluster: journal tail stalled at %d (want %d)", cursor, local.Seq)
		}
		tail = append(tail, edges...)
		cursor += uint64(len(edges))
	}
	return tail, nil
}

package cluster

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/server"
)

func buildServer(t *testing.T, g *graph.Graph, role string) *server.Server {
	t.Helper()
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatalf("build index: %v", err)
	}
	srv := server.New(ix, server.Options{Mutable: true, RebuildThreshold: -1, Role: role})
	t.Cleanup(func() { srv.Close() })
	return srv
}

func testEdges(g *graph.Graph, n, salt int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		k := i + salt
		edges[i] = graph.Edge{
			Src:   graph.Vertex(k % g.NumVertices()),
			Dst:   graph.Vertex((k * 5) % g.NumVertices()),
			Label: graph.Label(k % g.NumLabels()),
		}
	}
	return edges
}

// startLeader wires a leader over an httptest server with a fast poll tick.
func startLeader(t *testing.T, srv *server.Server) (*Leader, *httptest.Server) {
	t.Helper()
	l := NewLeader(srv)
	l.pollInterval = time.Millisecond
	hts := httptest.NewServer(l.Handler())
	t.Cleanup(hts.Close)
	return l, hts
}

func newTestFollower(t *testing.T, srv *server.Server, leaderURL string) *Follower {
	t.Helper()
	return NewFollower(srv, FollowerOptions{
		LeaderURL:     leaderURL,
		PollWait:      50 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
		Logf:          t.Logf,
	})
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWireRoundtrip pins the frame codec: any edge slice survives
// encode/decode with its sequence numbering intact, chunked at the cap.
func TestWireRoundtrip(t *testing.T) {
	g := graph.Fig2()
	for _, n := range []int{0, 1, 31, 32, MaxSegmentEdges, MaxSegmentEdges + 3, 3*MaxSegmentEdges + 17} {
		edges := testEdges(g, n, n)
		var buf bytes.Buffer
		if err := WriteSegments(&buf, 1000, edges); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		var got []graph.Edge
		cursor := uint64(1000)
		for {
			start, seg, err := ReadSegment(&buf)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("n=%d: read: %v", n, err)
			}
			if start != cursor {
				t.Fatalf("n=%d: frame starts at %d, want %d", n, start, cursor)
			}
			if len(seg) > MaxSegmentEdges {
				t.Fatalf("n=%d: frame of %d edges exceeds cap", n, len(seg))
			}
			got = append(got, seg...)
			cursor += uint64(len(seg))
		}
		if len(got) != n {
			t.Fatalf("n=%d: decoded %d edges", n, len(got))
		}
		for i := range got {
			if got[i] != edges[i] {
				t.Fatalf("n=%d: edge %d: %+v != %+v", n, i, got[i], edges[i])
			}
		}
	}
}

// TestWireCorruption flips every byte of an encoded stream in turn; no
// corruption may decode cleanly to the original content, and truncations
// must never read as complete streams.
func TestWireCorruption(t *testing.T) {
	g := graph.Fig2()
	edges := testEdges(g, 5, 0)
	var buf bytes.Buffer
	if err := WriteSegments(&buf, 7, edges); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	decode := func(b []byte) ([]graph.Edge, error) {
		r := bytes.NewReader(b)
		var out []graph.Edge
		for {
			_, seg, err := ReadSegment(r)
			if err == io.EOF {
				return out, nil
			}
			if err != nil {
				return nil, err
			}
			out = append(out, seg...)
		}
	}

	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		got, err := decode(mut)
		if err == nil && len(got) == len(edges) {
			same := true
			for j := range got {
				if got[j] != edges[j] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("flip at byte %d decoded to the original content undetected", i)
			}
		}
	}
	for cut := 1; cut < len(raw); cut++ {
		if _, err := decode(raw[:cut]); err == nil {
			t.Fatalf("truncation at %d read as a complete stream", cut)
		}
	}
}

// TestReplicationAndCutover is the package's end-to-end: a follower
// replays live segments, survives a fold via bundle cutover, and converges
// to the leader's exact coordinates and answers.
func TestReplicationAndCutover(t *testing.T) {
	g := graph.Fig2()
	leaderSrv := buildServer(t, g, "leader")
	_, hts := startLeader(t, leaderSrv)
	followerSrv := buildServer(t, g, "follower")
	fol := newTestFollower(t, followerSrv, hts.URL)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- fol.Run(ctx) }()

	// Live segment replication.
	batch1 := testEdges(g, 37, 1)
	if _, err := leaderSrv.UpdateBatch(batch1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "segment catch-up", func() bool {
		return followerSrv.ReplState().Seq == uint64(len(batch1))
	})

	// Fold on the leader; the follower must cut over to epoch 1.
	if _, err := leaderSrv.Rebuild(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "epoch cutover", func() bool {
		return followerSrv.ReplState().Epoch == 1
	})

	// More segments on top of the new epoch.
	batch2 := testEdges(g, 9, 100)
	if _, err := leaderSrv.UpdateBatch(batch2); err != nil {
		t.Fatal(err)
	}
	want := leaderSrv.ReplState()
	waitFor(t, 5*time.Second, "post-cutover catch-up", func() bool {
		return followerSrv.ReplState().Seq == want.Seq
	})

	got := followerSrv.ReplState()
	if got.Epoch != want.Epoch || got.SeqBase != want.SeqBase || got.Fingerprint != want.Fingerprint {
		t.Fatalf("follower %+v diverges from leader %+v", got, want)
	}
	for s := 0; s < g.NumVertices(); s++ {
		for d := 0; d < g.NumVertices(); d++ {
			for l := 0; l < g.NumLabels(); l++ {
				lw, _, err1 := leaderSrv.AnswerRLC(ctx, graph.Vertex(s), graph.Vertex(d), []graph.Label{graph.Label(l)})
				fw, _, err2 := followerSrv.AnswerRLC(ctx, graph.Vertex(s), graph.Vertex(d), []graph.Label{graph.Label(l)})
				if err1 != nil || err2 != nil {
					t.Fatalf("(%d,%d,l%d): errs %v %v", s, d, l, err1, err2)
				}
				if lw != fw {
					t.Fatalf("(%d,%d,l%d): leader %v follower %v", s, d, l, lw, fw)
				}
			}
		}
	}
	if st := fol.Stats(); st.Cutovers != 1 || st.Edges != uint64(len(batch1)+len(batch2)) {
		t.Fatalf("follower stats %+v, want 1 cutover, %d edges", st, len(batch1)+len(batch2))
	}

	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestLateJoinerBootstrapsFromBundle starts a follower only after the
// leader has already folded: its cursor predates the leader's base, so the
// first poll answers 410 and the follower must bootstrap straight from the
// bundle.
func TestLateJoinerBootstrapsFromBundle(t *testing.T) {
	g := graph.Fig2()
	leaderSrv := buildServer(t, g, "leader")
	_, hts := startLeader(t, leaderSrv)

	if _, err := leaderSrv.UpdateBatch(testEdges(g, 50, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := leaderSrv.Rebuild(); err != nil {
		t.Fatal(err)
	}
	want := leaderSrv.ReplState()

	followerSrv := buildServer(t, g, "follower")
	fol := newTestFollower(t, followerSrv, hts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { fol.Run(ctx) }()

	waitFor(t, 5*time.Second, "late-join bootstrap", func() bool {
		got := followerSrv.ReplState()
		return got.Epoch == want.Epoch && got.Seq == want.Seq
	})
	if got := followerSrv.ReplState(); got.Fingerprint != want.Fingerprint {
		t.Fatalf("late joiner fingerprint %s, want %s", got.Fingerprint, want.Fingerprint)
	}
}

// TestForeignLogRefused points a follower at a leader serving a different
// lineage; Run must stop with the permanent foreign-log error before
// applying anything.
func TestForeignLogRefused(t *testing.T) {
	// A different graph: Fig2 plus one extra edge changes the fingerprint.
	g := graph.Fig2()
	b := graph.NewBuilder(g.NumVertices(), g.NumLabels())
	for _, e := range g.Edges() {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	b.AddEdge(0, 0, graph.Vertex(g.NumVertices()-1))
	foreign := b.Build()

	leaderSrv := buildServer(t, foreign, "leader")
	_, hts := startLeader(t, leaderSrv)
	followerSrv := buildServer(t, graph.Fig2(), "follower")
	fol := newTestFollower(t, followerSrv, hts.URL)

	// Advance the leader past the follower (same seq universe, different
	// lineage) so contiguity alone cannot save us — only the origin check.
	if _, err := leaderSrv.UpdateBatch(testEdges(foreign, 3, 0)); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := fol.Run(ctx)
	if !errors.Is(err, errForeignLog) {
		t.Fatalf("Run returned %v, want foreign-log refusal", err)
	}
	if followerSrv.ReplState().Seq != 0 {
		t.Fatal("follower applied edges from a foreign lineage")
	}
}

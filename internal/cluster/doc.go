// Package cluster implements the replicated serving tier: a leader that
// streams its insert journal and ships folded snapshot bundles, and
// followers that replay both to serve read traffic at scale.
//
// The leader wraps a mutable server.Server and adds two endpoints to its
// handler:
//
//	GET /repl/segments?from=<seq>&wait_ms=<d>   sealed journal segments from a global sequence (long-poll)
//	GET /repl/bundle?epoch=<e>                  the folded .rlcs bundle serving epoch e
//
// Both answer with a handshake in response headers — origin, epoch,
// sequence, folded base, and base-graph fingerprint — so a follower can
// refuse a foreign log before applying a single edge. Segment payloads are
// length-prefixed frames, each carrying a crc32c over its own bytes (see
// wire.go); a bundle ships as the raw .rlcs container, whose section
// checksums the follower re-verifies before adopting it.
//
// A follower drives the whole protocol from one loop: long-poll segments
// from its own applied sequence, apply them through the server's exact
// batch-insert path, and — when the leader's epoch moves past its own —
// download the folded bundle, verify it, and hot-swap onto it through the
// same drain path local folds use. Queries on the follower never block and
// never regress: the global sequence (folded base + journal position) is
// monotone through every cutover.
package cluster

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/router"
	"github.com/g-rpqs/rlc-go/internal/server"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// clusterSoakConfig sizes one replicated-tier soak (see runClusterSoak).
type clusterSoakConfig struct {
	nVertices, nLabels, baseEdges int
	inserts, foldEvery            int
	readers, perReader, poolSize  int
}

// TestClusterSoakPinnedRouter is the replication tier's acceptance proof:
// a leader, two replicating followers, and an epoch-pinned router run on
// loopback HTTP while ≥100k mixed queries flow through the router under
// pin tokens, concurrent with leader ingestion and ≥3 fold/cutover epochs
// — and EVERY answer is checked against a linearizability oracle at its
// pinned coordinates, with zero backwards reads.
//
// The oracle is the same enabling-prefix construction as the server soak
// (see TestMutableSoakOracle): inserts are pre-planned, and each pool
// query's enabling prefix e(q) — the insert count after which it first
// turns true — is precomputed by monotone binary search. The replication
// twist is that the bracket comes from the wire, not from process-local
// counters: the X-Rlc-Seq response header is the serving replica's applied
// sequence captured BEFORE the answer was computed, and the global
// sequence is exactly the number of stream inserts applied (the writer is
// single-threaded and segment replay preserves leader journal order). So:
//
//	FALSE at responseSeq  ⇒  responseSeq < e(q)   (a lost or reordered
//	    journal edge on any replica lands here), and
//	TRUE                  ⇒  e(q) inserts had started by response time
//	    (an answer from the future — foreign data — lands here),
//
// no matter which replica served, how far it lagged, or which epoch it
// was on. Pin discipline is asserted per response: the serving replica's
// sequence must be at or past the request pin (the router never routes
// behind a pin) and the returned token must never regress.
func TestClusterSoakPinnedRouter(t *testing.T) {
	runClusterSoak(t, clusterSoakConfig{
		nVertices: 150, nLabels: 2, baseEdges: 400,
		inserts: 600, foldEvery: 150, // 600/150 => 4 fold/cutover epochs
		readers: 4, perReader: 25000, poolSize: 64, // 4 x 25k = 100k queries
	})
}

func runClusterSoak(t *testing.T, cfg clusterSoakConfig) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short mode")
	}
	r := rand.New(rand.NewSource(42))
	g, err := gen.ER(cfg.nVertices, cfg.baseEdges, cfg.nLabels, 13)
	if err != nil {
		t.Fatal(err)
	}
	stream := make([]graph.Edge, cfg.inserts)
	for i := range stream {
		stream[i] = graph.Edge{
			Src:   graph.Vertex(r.Intn(cfg.nVertices)),
			Dst:   graph.Vertex(r.Intn(cfg.nVertices)),
			Label: graph.Label(r.Intn(cfg.nLabels)),
		}
	}

	// Oracle precomputation: enabling prefix per pool query.
	type poolQuery struct {
		s, t     graph.Vertex
		l        labelseq.Seq
		expr     string // the l= parameter spelling of the sequence
		enabling int    // first prefix length making it true; inserts+1 = never
	}
	seqs := []labelseq.Seq{{0}, {1}, {0, 1}, {1, 0}}
	prefixes := map[int]*graph.Graph{}
	prefix := func(p int) *graph.Graph {
		if u, ok := prefixes[p]; ok {
			return u
		}
		b := graph.NewBuilder(g.NumVertices(), g.NumLabels())
		for _, e := range g.Edges() {
			b.AddEdge(e.Src, e.Label, e.Dst)
		}
		for _, e := range stream[:p] {
			b.AddEdge(e.Src, e.Label, e.Dst)
		}
		u := b.Build()
		prefixes[p] = u
		return u
	}
	evalAt := func(q *poolQuery, p int) bool {
		ok, err := traversal.EvalRLC(prefix(p), q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		return ok
	}
	pool := make([]poolQuery, cfg.poolSize)
	for i := range pool {
		q := &pool[i]
		q.s = graph.Vertex(r.Intn(cfg.nVertices))
		q.t = graph.Vertex(r.Intn(cfg.nVertices))
		q.l = seqs[r.Intn(len(seqs))]
		parts := make([]string, len(q.l))
		for j, lb := range q.l {
			parts[j] = g.LabelName(lb)
		}
		q.expr = strings.Join(parts, " ")
		switch {
		case evalAt(q, 0):
			q.enabling = 0
		case !evalAt(q, cfg.inserts):
			q.enabling = cfg.inserts + 1
		default:
			lo, hi := 1, cfg.inserts
			for lo < hi {
				mid := (lo + hi) / 2
				if evalAt(q, mid) {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			q.enabling = lo
		}
	}

	// The tier: leader + 2 replicating followers + router, all on loopback.
	build := func(role string) *server.Server {
		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			t.Fatalf("build index: %v", err)
		}
		srv := server.New(ix, server.Options{Mutable: true, RebuildThreshold: -1, Role: role})
		t.Cleanup(func() { srv.Close() })
		return srv
	}
	leaderSrv := build("leader")
	ldr := NewLeader(leaderSrv)
	ldr.pollInterval = 2 * time.Millisecond
	leaderHTS := httptest.NewServer(ldr.Handler())
	t.Cleanup(leaderHTS.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	followerSrvs := make([]*server.Server, 2)
	followers := make([]*Follower, 2)
	followerURLs := make([]string, 2)
	for i := range followerSrvs {
		srv := build("follower")
		followerSrvs[i] = srv
		hts := httptest.NewServer(srv.Handler())
		t.Cleanup(hts.Close)
		followerURLs[i] = hts.URL
		fol := NewFollower(srv, FollowerOptions{
			LeaderURL:     leaderHTS.URL,
			PollWait:      200 * time.Millisecond,
			RetryInterval: 20 * time.Millisecond,
		})
		followers[i] = fol
		go fol.Run(ctx)
	}

	// One transport with a deep idle pool: ~200k loopback requests reuse
	// connections instead of churning sockets.
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 128}}
	rt := router.New(router.Options{
		LeaderURL:      leaderHTS.URL,
		FollowerURLs:   followerURLs,
		Client:         client,
		HealthInterval: 25 * time.Millisecond,
		HedgeDelay:     100 * time.Millisecond,
	})
	rt.Refresh(ctx)
	go rt.Run(ctx)
	routerHTS := httptest.NewServer(rt.Handler())
	t.Cleanup(routerHTS.Close)

	var (
		started    atomic.Int64 // inserts whose router POST has begun
		reads      atomic.Int64
		wrong      atomic.Int64
		writerDone atomic.Bool
		writeSeq   atomic.Uint64 // freshest write-token sequence minted
		writeEpoch atomic.Uint64
	)
	var servedMu sync.Mutex
	served := map[string]int64{}

	fail := func(format string, args ...any) {
		wrong.Add(1)
		t.Errorf(format, args...)
	}
	parsePin := func(tok string) (epoch, seq uint64, err error) {
		e, s, ok := strings.Cut(tok, ":")
		if !ok {
			return 0, 0, fmt.Errorf("bad pin %q", tok)
		}
		epoch, err1 := strconv.ParseUint(e, 10, 64)
		seq, err2 := strconv.ParseUint(s, 10, 64)
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("bad pin %q", tok)
		}
		return epoch, seq, nil
	}

	// Interleave the full query volume with the full insert stream, as in
	// the server soak: the writer waits for reader progress so every fold
	// and cutover lands in the middle of routed traffic.
	pace := int64(cfg.readers*cfg.perReader) / int64(cfg.inserts)
	var wg sync.WaitGroup
	for w := 0; w < cfg.readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rr := rand.New(rand.NewSource(seed))
			var pinEpoch, pinSeq uint64
			for i := 0; i < cfg.perReader && wrong.Load() == 0; i++ {
				// Every 8th read raises the pin to the freshest write token:
				// read-your-write pressure that keeps excluding lagging
				// replicas as ingestion advances.
				if i%8 == 0 {
					if ws := writeSeq.Load(); ws > pinSeq {
						pinEpoch, pinSeq = writeEpoch.Load(), ws
					}
				}
				q := &pool[rr.Intn(cfg.poolSize)]
				v := url.Values{}
				v.Set("s", strconv.Itoa(int(q.s)))
				v.Set("t", strconv.Itoa(int(q.t)))
				v.Set("l", q.expr)
				req, err := http.NewRequest(http.MethodGet, routerHTS.URL+"/query?"+v.Encode(), nil)
				if err != nil {
					fail("build query: %v", err)
					return
				}
				req.Header.Set(router.HeaderPin, fmt.Sprintf("%d:%d", pinEpoch, pinSeq))
				resp, err := client.Do(req)
				if err != nil {
					fail("routed query: %v", err)
					return
				}
				w1 := started.Load() // inserts started before the answer arrived
				var body struct {
					Reachable bool `json:"reachable"`
				}
				derr := json.NewDecoder(resp.Body).Decode(&body)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || derr != nil {
					fail("routed query: status %d, decode %v", resp.StatusCode, derr)
					return
				}
				respSeq, err := strconv.ParseUint(resp.Header.Get(server.HeaderSeq), 10, 64)
				if err != nil {
					fail("response seq header: %v", err)
					return
				}
				_, tokSeq, err := parsePin(resp.Header.Get(router.HeaderPin))
				if err != nil {
					fail("response pin: %v", err)
					return
				}
				// Pin discipline: never served behind the pin, token never
				// regresses.
				if respSeq < pinSeq {
					fail("routed behind the pin: backend at seq %d, pin %d (backend %s)",
						respSeq, pinSeq, resp.Header.Get(router.HeaderBackend))
					return
				}
				if tokSeq < pinSeq {
					fail("token went backwards: %d after pin %d", tokSeq, pinSeq)
					return
				}
				// Linearizability envelope at the pinned coordinates.
				if body.Reachable && int(w1) < q.enabling {
					fail("true before any enabling insert: (%d,%d,%q) e=%d w1=%d", q.s, q.t, q.expr, q.enabling, w1)
					return
				}
				if !body.Reachable && respSeq >= uint64(q.enabling) {
					fail("false at seq %d >= enabling %d: (%d,%d,%q)", respSeq, q.enabling, q.s, q.t, q.expr)
					return
				}
				epoch, _, _ := parsePin(resp.Header.Get(router.HeaderPin))
				pinEpoch, pinSeq = epoch, tokSeq
				servedMu.Lock()
				served[resp.Header.Get(router.HeaderBackend)]++
				servedMu.Unlock()
				reads.Add(1)
			}
		}(int64(9000 + w))
	}

	// Writer: single-edge inserts through the router (which forwards to the
	// leader and mints the write token), folding the leader every foldEvery
	// inserts so followers must cut over mid-traffic.
	for i, e := range stream {
		for reads.Load() < int64(i)*pace && wrong.Load() == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		if wrong.Load() != 0 {
			break
		}
		payload := fmt.Sprintf(`{"s":%d,"l":%d,"t":%d}`, e.Src, e.Label, e.Dst)
		started.Add(1)
		resp, err := client.Post(routerHTS.URL+"/update", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		tok := resp.Header.Get(router.HeaderPin)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("insert %d: status %d", i, resp.StatusCode)
		}
		epoch, seq, err := parsePin(tok)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("insert %d minted token seq %d, want %d", i, seq, i+1)
		}
		writeEpoch.Store(epoch)
		writeSeq.Store(seq)
		if (i+1)%cfg.foldEvery == 0 {
			if _, err := leaderSrv.Rebuild(); err != nil {
				t.Fatalf("fold after insert %d: %v", i, err)
			}
		}
	}
	writerDone.Store(true)
	wg.Wait()
	if wrong.Load() > 0 {
		t.Fatalf("%d oracle/pin violations", wrong.Load())
	}
	if got := reads.Load(); got != int64(cfg.readers*cfg.perReader) {
		t.Fatalf("completed %d routed reads, want %d", got, cfg.readers*cfg.perReader)
	}

	// Convergence: both followers reach the leader's exact coordinates and
	// fingerprint, having cut over at least 3 epochs each.
	want := leaderSrv.ReplState()
	wantEpochs := uint64(cfg.inserts / cfg.foldEvery)
	if want.Epoch != wantEpochs {
		t.Fatalf("leader at epoch %d, want %d", want.Epoch, wantEpochs)
	}
	deadline := time.Now().Add(30 * time.Second)
	for i, srv := range followerSrvs {
		for {
			got := srv.ReplState()
			if got.Epoch == want.Epoch && got.Seq == want.Seq && got.Fingerprint == want.Fingerprint {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower %d stuck at %+v, leader %+v", i, got, want)
			}
			time.Sleep(5 * time.Millisecond)
		}
		if c := followers[i].Stats().Cutovers; c < 3 {
			t.Fatalf("follower %d completed %d cutovers, want >= 3", i, c)
		}
	}

	// Final exactness: every pool query's converged answer, on every node,
	// matches a direct traversal of the full graph.
	for i := range pool {
		q := &pool[i]
		truth := evalAt(q, cfg.inserts)
		for j, srv := range append([]*server.Server{leaderSrv}, followerSrvs...) {
			got, _, err := srv.AnswerRLC(ctx, q.s, q.t, q.l)
			if err != nil {
				t.Fatalf("node %d query %d: %v", j, i, err)
			}
			if got != truth {
				t.Fatalf("node %d: (%d,%d,%q) = %v, want %v", j, q.s, q.t, q.expr, got, truth)
			}
		}
	}

	// Load actually spread: every backend served routed reads.
	for _, u := range append([]string{leaderHTS.URL}, followerURLs...) {
		if served[u] == 0 {
			t.Errorf("backend %s served no routed reads (distribution: %v)", u, served)
		}
	}
	t.Logf("soak: %d routed reads, distribution %v, %d epochs", reads.Load(), served, want.Epoch)
}

package plain

import (
	"fmt"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Index is a pruned 2-hop plain-reachability labeling.
type Index struct {
	g     *graph.Graph
	order []graph.Vertex
	rank  []int32
	in    [][]int32 // hub ranks that reach v, ascending
	out   [][]int32 // hub ranks v reaches, ascending
}

// Build constructs the labeling with pruned BFS per hub, in IN-OUT order.
func Build(g *graph.Graph) (*Index, error) {
	if g.NumVertices() == 0 {
		return nil, fmt.Errorf("plain: cannot index an empty graph")
	}
	n := g.NumVertices()
	ix := &Index{
		g:     g,
		order: graph.OrderByDegreeProduct(g),
		rank:  make([]int32, n),
		in:    make([][]int32, n),
		out:   make([][]int32, n),
	}
	for r, v := range ix.order {
		ix.rank[v] = int32(r)
	}

	visited := make([]uint32, n)
	var stamp uint32
	queue := make([]graph.Vertex, 0, n)

	bfs := func(hub graph.Vertex, backward bool) {
		hubRank := ix.rank[hub]
		stamp++
		queue = queue[:0]
		queue = append(queue, hub)
		visited[hub] = stamp
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			// Prune: if a higher-priority hub already covers (hub, u),
			// u's subtree is reachable through that hub's labels.
			if u != hub {
				if backward {
					// Path u -> hub.
					if ix.covered(u, hub) {
						continue
					}
					ix.out[u] = append(ix.out[u], hubRank)
				} else {
					if ix.covered(hub, u) {
						continue
					}
					ix.in[u] = append(ix.in[u], hubRank)
				}
			}
			var nbrs []graph.Vertex
			if backward {
				nbrs, _ = ix.g.InEdges(u)
			} else {
				nbrs, _ = ix.g.OutEdges(u)
			}
			for _, w := range nbrs {
				if visited[w] == stamp {
					continue
				}
				visited[w] = stamp
				queue = append(queue, w)
			}
		}
	}

	for _, hub := range ix.order {
		// Hub covers itself on both sides so Reaches(hub, x) resolves
		// through rank intersection alone.
		ix.out[hub] = append(ix.out[hub], ix.rank[hub])
		ix.in[hub] = append(ix.in[hub], ix.rank[hub])
		bfs(hub, true)  // vertices that reach hub gain an OUT entry
		bfs(hub, false) // vertices hub reaches gain an IN entry
	}
	return ix, nil
}

// covered reports whether the current labeling already answers s ⇝ t.
func (ix *Index) covered(s, t graph.Vertex) bool {
	return intersects(ix.out[s], ix.in[t])
}

// Reaches answers the plain reachability query s ⇝* t (true when s == t).
func (ix *Index) Reaches(s, t graph.Vertex) (bool, error) {
	if s < 0 || int(s) >= ix.g.NumVertices() || t < 0 || int(t) >= ix.g.NumVertices() {
		return false, fmt.Errorf("plain: vertex out of range")
	}
	if s == t {
		return true, nil
	}
	return ix.covered(s, t), nil
}

// NumEntries returns the total label size.
func (ix *Index) NumEntries() int64 {
	var total int64
	for v := range ix.in {
		total += int64(len(ix.in[v]) + len(ix.out[v]))
	}
	return total
}

// SizeBytes estimates the resident size (4 bytes per entry plus headers).
func (ix *Index) SizeBytes() int64 {
	return ix.NumEntries()*4 + int64(len(ix.in)+len(ix.out))*24
}

func intersects(a, b []int32) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

// sortedInvariant verifies both label sides are ascending — used by tests.
func (ix *Index) sortedInvariant() error {
	for v := range ix.in {
		if !sort.SliceIsSorted(ix.in[v], func(i, j int) bool { return ix.in[v][i] < ix.in[v][j] }) {
			return fmt.Errorf("plain: IN(%d) not sorted", v)
		}
		if !sort.SliceIsSorted(ix.out[v], func(i, j int) bool { return ix.out[v][i] < ix.out[v][j] }) {
			return fmt.Errorf("plain: OUT(%d) not sorted", v)
		}
	}
	return nil
}

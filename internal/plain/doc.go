// Package plain implements a pruned 2-hop labeling index for PLAIN
// reachability — the classical framework (Cohen et al. 2002; pruned
// landmark labeling) that Section II surveys and that the RLC index
// generalizes. It serves two roles in this repository:
//
//   - as the related-work substrate demonstrating the paper's point that
//     plain reachability indexes are insufficient for RLC queries (they
//     ignore labels entirely: see TestPlainInsufficientForRLC), and
//   - as an optional negative pre-filter: if t is not plainly reachable
//     from s, no constraint can hold, so (s, t, L+) is false for every L.
//
// The index assigns each vertex v two sorted sets of hub ranks: IN(v)
// (hubs that reach v) and OUT(v) (hubs v reaches); s ⇝ t iff the sets
// OUT(s) and IN(t) intersect. Construction prunes each hub's BFS with the
// partially built index, which keeps labels small on the same degree-
// ordered schedule the RLC index uses.
package plain

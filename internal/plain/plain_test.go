package plain

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

// bruteReach computes plain reachability by label-blind BFS.
func bruteReach(g *graph.Graph, s, t graph.Vertex) bool {
	if s == t {
		return true
	}
	seen := make([]bool, g.NumVertices())
	seen[s] = true
	queue := []graph.Vertex{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		dsts, _ := g.OutEdges(u)
		for _, w := range dsts {
			if w == t {
				return true
			}
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return false
}

// TestPlainExhaustive: the labeling must agree with BFS on every pair of
// every random graph.
func TestPlainExhaustive(t *testing.T) {
	r := rand.New(rand.NewSource(800))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(14)
		g := randomGraph(r, n, 2, r.Intn(3*n+1))
		ix, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.sortedInvariant(); err != nil {
			t.Fatal(err)
		}
		for s := graph.Vertex(0); int(s) < n; s++ {
			for tt := graph.Vertex(0); int(tt) < n; tt++ {
				want := bruteReach(g, s, tt)
				got, err := ix.Reaches(s, tt)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("trial %d: Reaches(%d,%d) = %v, BFS = %v\nedges %v", trial, s, tt, got, want, g.Edges())
				}
			}
		}
	}
}

func TestPlainValidation(t *testing.T) {
	if _, err := Build(graph.NewBuilder(0, 0).Build()); err == nil {
		t.Error("empty graph must fail")
	}
	ix, err := Build(graph.Fig2())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Reaches(-1, 0); err == nil {
		t.Error("negative vertex must fail")
	}
	if _, err := ix.Reaches(0, 99); err == nil {
		t.Error("out-of-range vertex must fail")
	}
	if ix.NumEntries() == 0 || ix.SizeBytes() <= 0 {
		t.Error("empty stats")
	}
}

// TestPlainInsufficientForRLC demonstrates the paper's core motivation: a
// plain reachability index answers true where the RLC constraint fails,
// because it ignores labels (Section II, "Plain Reachability Index").
func TestPlainInsufficientForRLC(t *testing.T) {
	g := graph.Fig2()
	plainIx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	rlcIx, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Q3 of Example 4: v1 reaches v3, but not under (l1)+.
	v1, _ := g.VertexByName("v1")
	v3, _ := g.VertexByName("v3")
	reach, err := plainIx.Reaches(v1, v3)
	if err != nil || !reach {
		t.Fatalf("plain Reaches(v1, v3) = %v, %v; want true", reach, err)
	}
	rlc, err := rlcIx.Query(v1, v3, labelseq.Seq{0})
	if err != nil || rlc {
		t.Fatalf("RLC Query(v1, v3, l1+) = %v, %v; want false", rlc, err)
	}
}

// TestPlainIsSoundPrefilter: plain false implies RLC false for every
// constraint — the negative pre-filter property.
func TestPlainIsSoundPrefilter(t *testing.T) {
	r := rand.New(rand.NewSource(801))
	for trial := 0; trial < 10; trial++ {
		n := 4 + r.Intn(8)
		g := randomGraph(r, n, 2, 2*n)
		plainIx, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		rlcIx, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range core.PrimitiveConstraints(2, 2) {
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					if s == tt {
						continue // plain treats self as trivially reachable
					}
					reach, err := plainIx.Reaches(s, tt)
					if err != nil {
						t.Fatal(err)
					}
					if reach {
						continue
					}
					got, err := rlcIx.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if got {
						t.Fatalf("trial %d: plain says unreachable but RLC(%d,%d,%v+) true", trial, s, tt, l)
					}
				}
			}
		}
	}
}

// TestPlainSmallerThanRLC: ignoring labels must not cost more than the
// label-aware index on the same graph.
func TestPlainSmallerThanRLC(t *testing.T) {
	r := rand.New(rand.NewSource(802))
	g := randomGraph(r, 50, 3, 200)
	plainIx, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	rlcIx, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plainIx.NumEntries() > rlcIx.NumEntries() {
		t.Errorf("plain labeling (%d entries) larger than RLC index (%d) — unexpected",
			plainIx.NumEntries(), rlcIx.NumEntries())
	}
}

package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable rendering of one rlcbench run — what
// `rlcbench -json <file>` writes and scripts/bench.sh commits as
// BENCH_<experiment>.json, so the perf trajectory is diffable across PRs.
type Report struct {
	// Generated is the RFC 3339 wall time of the run.
	Generated string `json:"generated"`
	// GoVersion and the processor fields pin the environment the numbers
	// came from; absolute comparisons across machines are meaningless
	// without them.
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Note carries environment caveats (set automatically for single-CPU
	// hosts, where parallel speedups are unobservable and background folds
	// share the serving core).
	Note string `json:"note,omitempty"`
	// Experiments lists each experiment run, in execution order.
	Experiments []ReportExperiment `json:"experiments"`
}

// ReportExperiment is one experiment's results within a Report.
type ReportExperiment struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Seconds float64  `json:"seconds"`
	Tables  []*Table `json:"tables"`
}

// NewReport stamps a report with the current environment.
func NewReport() *Report {
	r := &Report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if r.NumCPU == 1 {
		r.Note = "single-CPU host: parallel-build and concurrent-serving numbers measure scheduler overhead, not speedup; project multi-core performance from the measured parallel fraction (commit phase ~5% of build time => ~2x at 4 cores)"
	}
	return r
}

// Add records one experiment's tables and wall time.
func (r *Report) Add(e Experiment, tables []*Table, elapsed time.Duration) {
	r.Experiments = append(r.Experiments, ReportExperiment{
		ID:      e.ID,
		Title:   e.Title,
		Seconds: elapsed.Seconds(),
		Tables:  tables,
	})
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

package bench

import (
	"fmt"
	"runtime"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunBatch measures concurrent batch-query throughput: the fig3 workload
// (true + false query sets, concatenation length 2, k = 2) answered one
// query at a time versus through Index.QueryBatch with GOMAXPROCS workers.
// Every batch answer is verified against the workload's ground truth before
// anything is timed.
func RunBatch(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	workers := runtime.GOMAXPROCS(0)
	tab := &Table{
		ID:      "batch",
		Title:   fmt.Sprintf("Batch-query throughput: sequential Query vs QueryBatch (%d workers)", workers),
		Columns: []string{"Dataset", "Queries", "Sequential (µs)", "Batch (µs)", "Speedup"},
		Notes:   []string{"Best of 3 rounds per cell; both sides answer the combined fig3 true+false query sets."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("batch: %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("batch: %s: %w", d.Name, err)
		}
		w, err := buildWorkload(cfg, g, 2)
		if err != nil {
			return nil, fmt.Errorf("batch: %s: %w", d.Name, err)
		}
		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			return nil, fmt.Errorf("batch: %s: %w", d.Name, err)
		}

		qs := w.All()
		batch := make([]core.BatchQuery, len(qs))
		for i, q := range qs {
			batch[i] = core.BatchQuery{S: q.S, T: q.T, L: q.L}
		}

		// Correctness gate: a throughput number from wrong answers would be
		// meaningless.
		for i, res := range ix.QueryBatch(batch, workers) {
			if res.Err != nil {
				return nil, fmt.Errorf("batch: %s: query %d: %w", d.Name, i, res.Err)
			}
			if res.Reachable != qs[i].Expected {
				return nil, fmt.Errorf("batch: %s: QueryBatch answered %v for (%d, %d, %v+), ground truth %v",
					d.Name, res.Reachable, qs[i].S, qs[i].T, qs[i].L, qs[i].Expected)
			}
		}

		seq, err := bestOf(3, func() error {
			_, err := timeQuerySet(qs, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("batch: %s: sequential: %w", d.Name, err)
		}
		// Reuse one result buffer across rounds, like a server answering a
		// stream of batches would.
		var buf []core.BatchResult
		par, err := bestOf(3, func() error {
			buf = ix.QueryBatchInto(batch, workers, buf)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("batch: %s: parallel: %w", d.Name, err)
		}

		speedup := float64(seq) / float64(par)
		tab.Rows = append(tab.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", len(qs)),
			fmtMicros(seq),
			fmtMicros(par),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	return []*Table{tab}, nil
}

// bestOf runs f rounds times and returns the fastest wall-clock duration.
func bestOf(rounds int, f func() error) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		if d := time.Since(start); i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

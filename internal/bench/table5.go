package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/engines"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// RunTable5 reproduces Table V: speed-ups (SU) and workload-size break-even
// points (BEP) of the RLC index over three graph engines, on the WN replica
// with one k = 3 index serving all four query types:
//
//	Q1 = a+    Q2 = (a b)+    Q3 = (a b c)+    Q4 = a+ b+ (via hybrid)
//
// a, b, c are the three most frequent labels. Every engine answer is checked
// against the index/hybrid answer, so a disagreement fails the run instead
// of producing a meaningless table.
func RunTable5(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	d, err := datasets.ByName("WN")
	if err != nil {
		return nil, err
	}
	cfg.progressf("table5: generating WN replica")
	g, err := replica(cfg, d)
	if err != nil {
		return nil, fmt.Errorf("table5: %w", err)
	}

	start := time.Now()
	ix, err := core.Build(g, core.Options{K: 3})
	if err != nil {
		return nil, fmt.Errorf("table5: %w", err)
	}
	buildTime := time.Since(start)
	hyb := hybrid.New(ix)

	a, b, c := labelseq.Label(0), labelseq.Label(1), labelseq.Label(2)
	queryTypes := []struct {
		name string
		expr automaton.Expr
	}{
		{"Q1 a+", automaton.Plus(labelseq.Seq{a})},
		{"Q2 (a b)+", automaton.Plus(labelseq.Seq{a, b})},
		{"Q3 (a b c)+", automaton.Plus(labelseq.Seq{a, b, c})},
		{"Q4 a+ b+", automaton.ConcatPlus(labelseq.Seq{a}, labelseq.Seq{b})},
	}
	engs := []engines.Engine{
		engines.NewSys1(g),
		engines.NewSys2(g),
		engines.NewVirtuosoLike(g),
	}

	r := rand.New(rand.NewSource(cfg.Seed))
	pairs := make([][2]graph.Vertex, cfg.EngineQueries)
	for i := range pairs {
		pairs[i] = [2]graph.Vertex{graph.Vertex(r.Intn(g.NumVertices())), graph.Vertex(r.Intn(g.NumVertices()))}
	}

	t := &Table{
		ID:    "table5",
		Title: fmt.Sprintf("Speed-ups (SU) and break-even points (BEP) over graph engines — WN replica, k = 3, %d queries/type", cfg.EngineQueries),
		Columns: []string{
			"System", "Query", "engine µs/query", "RLC µs/query", "SU", "BEP",
		},
		Notes: []string{
			fmt.Sprintf("RLC index built in %.2fs (%s entries). Q4 uses the index+traversal hybrid. BEP = queries until indexing time amortizes.", buildTime.Seconds(), fmtCount(ix.NumEntries())),
			"\"-\" = engine exceeded its per-type time budget (cf. the timed-out Virtuoso/Q4 cell of Table V).",
		},
	}

	for _, qt := range queryTypes {
		// Reference timings (and answers) from the index side.
		rlcEval := func(s, tt graph.Vertex) (bool, error) { return hyb.Eval(s, tt, qt.expr) }
		rlcStart := time.Now()
		answers := make([]bool, len(pairs))
		for i, p := range pairs {
			ans, err := rlcEval(p[0], p[1])
			if err != nil {
				return nil, fmt.Errorf("table5: rlc %s: %w", qt.name, err)
			}
			answers[i] = ans
		}
		rlcDur := time.Since(rlcStart)
		rlcPerQuery := rlcDur / time.Duration(len(pairs))

		for _, eng := range engs {
			cfg.progressf("table5: %s %s", eng.Name(), qt.name)
			engStart := time.Now()
			timedOut := false
			for i, p := range pairs {
				got, err := eng.Eval(p[0], p[1], qt.expr)
				if err != nil {
					return nil, fmt.Errorf("table5: %s %s: %w", eng.Name(), qt.name, err)
				}
				if got != answers[i] {
					return nil, fmt.Errorf("table5: %s disagrees with index on %s (%d, %d): engine=%v index=%v",
						eng.Name(), qt.name, p[0], p[1], got, answers[i])
				}
				if i%4 == 3 && time.Since(engStart) > cfg.TraversalTimeLimit {
					timedOut = true
					break
				}
			}
			if timedOut {
				t.Rows = append(t.Rows, []string{eng.Name(), qt.name, "-", fmtMicros(rlcPerQuery), "-", "-"})
				continue
			}
			engPerQuery := time.Since(engStart) / time.Duration(len(pairs))

			su := float64(engPerQuery) / math.Max(float64(rlcPerQuery), 1)
			bep := "1"
			if engPerQuery > rlcPerQuery {
				bep = fmtCount(int64(math.Ceil(float64(buildTime) / float64(engPerQuery-rlcPerQuery))))
			} else {
				bep = "-"
			}
			t.Rows = append(t.Rows, []string{
				eng.Name(), qt.name,
				fmtMicros(engPerQuery), fmtMicros(rlcPerQuery),
				fmt.Sprintf("%.0fx", su), bep,
			})
		}
	}
	return []*Table{t}, nil
}

package bench

import (
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// packedReplayFactor sizes the timed request stream as a multiple of the
// workload's distinct queries: index probes are nanoseconds, so a single
// pass is too short to time reliably.
const packedReplayFactor = 20

// RunPacked measures the bit-parallel packed MR-set representation against
// the linear-scan entry array on every dataset replica: resident index
// bytes (the hash-consed pool vs the flat entry array) and query latency
// through both Query and the batch path. The same fig3-style workload runs
// against both representations, each verified against ground truth before
// anything is timed — the packed form must be a pure accelerator.
func RunPacked(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		ID:    "packed",
		Title: "Bit-parallel packed MR-sets vs linear scan: index bytes and query latency",
		Columns: []string{"Dataset", "Entries", "Groups", "Sets", "Scan MB", "Packed MB", "Bytes",
			"Scan ns/q", "Packed ns/q", "Query", "Batch"},
		Notes: []string{fmt.Sprintf(
			"Same index content in both representations (k = 2); fig3 true+false query pool replayed %dx through Query and once through QueryBatchInto.", packedReplayFactor),
			"Scan MB is the flat entry array + dictionary; Packed MB is the hash-consed group/set pool + dictionary. Bytes and the Query/Batch columns are packed relative to scan (lower MB, higher x = packed wins).",
			"Hash-consing pays on hub-dominated replicas where few distinct MR-sets repeat across many vertices; the bit probes pay on repeat-heavy entry lists."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("packed: %s", d.Name)
		row, err := runPackedDataset(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("packed: %s: %w", d.Name, err)
		}
		tab.Rows = append(tab.Rows, row)
	}
	return []*Table{tab}, nil
}

func runPackedDataset(cfg Config, d datasets.Dataset) ([]string, error) {
	g, err := replica(cfg, d)
	if err != nil {
		return nil, err
	}
	w, err := buildWorkload(cfg, g, 2)
	if err != nil {
		return nil, err
	}
	packed, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		return nil, err
	}
	scan, err := core.Build(g, core.Options{K: 2, DisablePacked: true})
	if err != nil {
		return nil, err
	}
	if !packed.Packed() || scan.Packed() {
		return nil, fmt.Errorf("representation flags wrong: packed=%v scan=%v", packed.Packed(), scan.Packed())
	}

	// Correctness gate: both representations answer the whole pool exactly.
	pool := w.All()
	for _, ix := range []*core.Index{packed, scan} {
		if _, err := timeQuerySet(pool, 0, func(q workload.Query) (bool, error) {
			return ix.Query(q.S, q.T, q.L)
		}); err != nil {
			return nil, err
		}
	}

	replay := func(ix *core.Index) func() error {
		return func() error {
			for r := 0; r < packedReplayFactor; r++ {
				for _, q := range pool {
					if _, err := ix.Query(q.S, q.T, q.L); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	scanDur, err := bestOf(3, replay(scan))
	if err != nil {
		return nil, err
	}
	packedDur, err := bestOf(3, replay(packed))
	if err != nil {
		return nil, err
	}

	batch := make([]core.BatchQuery, len(pool))
	for i, q := range pool {
		batch[i] = core.BatchQuery{S: q.S, T: q.T, L: q.L}
	}
	batchReplay := func(ix *core.Index) func() error {
		var buf []core.BatchResult
		return func() error {
			for r := 0; r < packedReplayFactor; r++ {
				buf = ix.QueryBatchInto(batch, 0, buf)
			}
			return nil
		}
	}
	scanBatch, err := bestOf(3, batchReplay(scan))
	if err != nil {
		return nil, err
	}
	packedBatch, err := bestOf(3, batchReplay(packed))
	if err != nil {
		return nil, err
	}

	st := packed.Stats()
	scanBytes := scan.Stats().SizeBytes
	packedBytes := st.Packed.SizeBytes
	queries := int64(packedReplayFactor * len(pool))
	nsPer := func(total int64) string {
		return fmt.Sprintf("%.0f", float64(total)/float64(queries))
	}
	return []string{
		d.Name,
		fmtCount(st.Entries),
		fmtCount(st.Packed.Groups),
		fmtCount(int64(st.Packed.Sets)),
		fmtMB(scanBytes),
		fmtMB(packedBytes),
		fmt.Sprintf("%.2fx", float64(packedBytes)/float64(scanBytes)),
		nsPer(scanDur.Nanoseconds()),
		nsPer(packedDur.Nanoseconds()),
		fmt.Sprintf("%.2fx", float64(scanDur)/float64(packedDur)),
		fmt.Sprintf("%.2fx", float64(scanBatch)/float64(packedBatch)),
	}, nil
}

package bench

import (
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// RunTable3 reproduces Table III: the overview of the (replica) datasets —
// |V|, |E|, |L|, loop count and triangle count — next to the originals'
// values so the preserved proportions are visible.
func RunTable3(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "table3",
		Title: "Overview of real-world graphs (synthetic replicas; originals in parentheses)",
		Columns: []string{
			"Dataset", "|V|", "|E|", "|L|", "Loops", "Triangles",
			"orig |V|", "orig |E|", "orig loops", "orig triangles",
		},
		Notes: []string{fmt.Sprintf("Replica scale %.4f of original vertices, capped at %d vertices; average degree, |L|, loop density and triangle density preserved (see internal/datasets).", cfg.Scale, cfg.MaxVertices)},
	}
	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("table3: generating %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("table3: %s: %w", d.Name, err)
		}
		st := graph.ComputeStats(g)
		t.Rows = append(t.Rows, []string{
			d.Name,
			fmtCount(int64(st.Vertices)), fmtCount(int64(st.Edges)), fmt.Sprintf("%d", st.Labels),
			fmtCount(int64(st.Loops)), fmtCount(int64(st.Triangles)),
			fmtCount(int64(d.Vertices)), fmtCount(int64(d.Edges)),
			fmtCount(int64(d.Loops)), fmtCount(d.Tri),
		})
	}
	return []*Table{t}, nil
}

package bench

import "fmt"

// RunFig6 reproduces Figure 6: scalability of indexing time, index size and
// query time as |V| grows, for ER- and BA-graphs with d = 5 and |L| = 16
// (k = 2, 2-label workloads).
func RunFig6(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	var tables []*Table
	for _, model := range []string{"ER", "BA"} {
		t := &Table{
			ID:    "fig6-" + model,
			Title: fmt.Sprintf("%s-graphs, d = 5, |L| = 16, varying |V| (k = 2)", model),
			Columns: []string{
				"|V|", "IT (s)", "IS (MB)",
				"QT true (ms)", "QT false (ms)",
			},
		}
		for _, n := range cfg.Fig6Vertices {
			cfg.progressf("fig6: %s |V|=%d", model, n)
			g, err := synth(model, n, 5, 16, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("fig6: %s n=%d: %w", model, n, err)
			}
			row, err := indexAndMeasure(cfg, g, 2, 2)
			if err != nil {
				return nil, fmt.Errorf("fig6: %s n=%d: %w", model, n, err)
			}
			t.Rows = append(t.Rows, append([]string{fmtCount(int64(n))}, row...))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/server"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// ingestHoldout is the fraction of each replica's edges withheld from the
// base index and streamed back as live inserts.
const ingestHoldout = 10 // one edge in ten

// ingestRequestFactor sizes the read stream as a multiple of the distinct
// query pool (smaller than the serve experiment's: every read here shares
// the machine with inserts and background rebuilds).
const ingestRequestFactor = 10

// RunIngest measures the mutable serving layer — the read/write epoch
// pipeline. Each dataset replica is split into a base graph (indexed and
// served) and a withheld edge stream; the fig3-style workload is generated
// against the FULL graph, so its ground truth is what the server must
// converge to. The mixed run interleaves Zipf-skewed reads with single-edge
// POST-/update-equivalent inserts; the rebuild threshold is sized so the
// run crosses several background fold-and-rebuild epochs. Exactness is
// gated twice: once when the stream has fully landed (journal still live,
// answers come from base + delta), and once more after a final explicit
// fold (answers come from the rebuilt base alone) — both passes must equal
// the ground truth for every pool query or the experiment fails.
func RunIngest(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		ID:    "ingest",
		Title: "Live ingestion: mixed read/write serving with background fold-and-rebuild epochs",
		Columns: []string{"Dataset", "Base edges", "Inserts", "Reads", "R/W",
			"Mixed ops/s", "Epochs", "Fold ms"},
		Notes: []string{fmt.Sprintf(
			"Zipf s = %.1f reads over the fig3 true+false pool (%dx replay) interleaved with 1-in-%d withheld edges as inserts; single client goroutine at the serving layer (no HTTP).",
			serveZipfS, ingestRequestFactor, ingestHoldout),
			"Epochs counts completed fold-and-rebuilds (background plus the final explicit one); Fold ms is the last fold's wall time. Answers are verified exact against the full-graph ground truth both before and after the final fold.",
			"Single-core numbers: background folds share the CPU with serving here; on multi-core hardware folding is off-thread and steals no serving time."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("ingest: %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", d.Name, err)
		}
		w, err := buildWorkload(cfg, g, 2)
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", d.Name, err)
		}

		// Withhold a shuffled tenth of the edges as the insert stream.
		edges := g.Edges()
		r := rand.New(rand.NewSource(cfg.Seed*104729 + 7))
		r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		split := len(edges) - len(edges)/ingestHoldout
		baseB := graph.NewBuilder(g.NumVertices(), g.NumLabels())
		baseB.SetVertexNames(g.VertexNames())
		baseB.SetLabelNames(g.LabelNames())
		for _, e := range edges[:split] {
			baseB.AddEdge(e.Src, e.Label, e.Dst)
		}
		base := baseB.Build()
		stream := edges[split:]

		ix, err := core.Build(base, core.Options{K: 2})
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", d.Name, err)
		}
		thr := len(stream)/3 + 1 // ~3 threshold crossings per run
		srv := server.New(ix, server.Options{Mutable: true, RebuildThreshold: thr})

		pool := w.All()
		requests := zipfStream(cfg.Seed, len(pool), ingestRequestFactor*len(pool))
		readsPerWrite := len(requests) / len(stream)
		if readsPerWrite < 1 {
			readsPerWrite = 1
		}

		ctx := context.Background()
		start := time.Now()
		next := 0
		for i, req := range requests {
			q := pool[req]
			if _, _, err := srv.AnswerRLC(ctx, q.S, q.T, q.L); err != nil {
				return nil, fmt.Errorf("ingest: %s: read: %w", d.Name, err)
			}
			if i%readsPerWrite == 0 && next < len(stream) {
				e := stream[next]
				if _, err := srv.UpdateBatch([]graph.Edge{e}); err != nil {
					return nil, fmt.Errorf("ingest: %s: insert %d: %w", d.Name, next, err)
				}
				next++
			}
		}
		for ; next < len(stream); next++ {
			e := stream[next]
			if _, err := srv.UpdateBatch([]graph.Edge{e}); err != nil {
				return nil, fmt.Errorf("ingest: %s: insert %d: %w", d.Name, next, err)
			}
		}
		elapsed := time.Since(start)

		// Gate 1: the full stream has landed; delta answers must equal the
		// full-graph ground truth even though the journal is still live.
		if err := verifyPool(ctx, srv, pool, d.Name, "pre-fold"); err != nil {
			return nil, err
		}
		// Gate 2: fold to completion and verify against the rebuilt base.
		if _, err := srv.Rebuild(); err != nil {
			return nil, fmt.Errorf("ingest: %s: final fold: %w", d.Name, err)
		}
		if err := verifyPool(ctx, srv, pool, d.Name, "post-fold"); err != nil {
			return nil, err
		}
		ms := srv.MutableStats()

		ops := float64(len(requests)+len(stream)) / elapsed.Seconds()
		tab.Rows = append(tab.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", base.NumEdges()),
			fmt.Sprintf("%d", len(stream)),
			fmt.Sprintf("%d", len(requests)),
			fmt.Sprintf("%d:1", readsPerWrite),
			fmtCount(int64(ops)),
			fmt.Sprintf("%d", ms.Epoch),
			fmt.Sprintf("%.1f", ms.LastRebuildMicros/1e3),
		})
	}
	return []*Table{tab}, nil
}

func verifyPool(ctx context.Context, srv *server.Server, pool []workload.Query, dataset, stage string) error {
	for _, q := range pool {
		got, _, err := srv.AnswerRLC(ctx, q.S, q.T, q.L)
		if err != nil {
			return fmt.Errorf("ingest: %s: %s verify: %w", dataset, stage, err)
		}
		if got != q.Expected {
			return fmt.Errorf("ingest: %s: %s verify: served %v for (%d, %d, %v+), ground truth %v",
				dataset, stage, got, q.S, q.T, q.L, q.Expected)
		}
	}
	return nil
}

package bench

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"github.com/g-rpqs/rlc-go/internal/cluster"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/server"
)

// replConvergeTimeout bounds each wait for the follower to reach a target
// replication state; a stall is an experiment failure, not a hung run.
const replConvergeTimeout = 2 * time.Minute

// RunRepl measures the replicated serving tier (internal/cluster): a
// leader and one follower on loopback HTTP, the ingest experiment's
// withheld edge stream driven into the leader while the follower
// long-polls, applies checksummed journal segments, and finally cuts over
// to the leader's folded bundle. Reported per dataset: leader-side ingest
// time, the follower's residual replication lag once ingestion stops, the
// sustained replication rate, and the wall time of a full epoch cutover
// (bundle ship + verify + journal-tail hot swap). Exactness is gated
// after the cutover: the FOLLOWER must answer the full fig3-style query
// pool exactly per the full-graph ground truth, at the leader's exact
// coordinates and fingerprint, or the experiment fails.
func RunRepl(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		ID:    "repl",
		Title: "Replicated serving: journal streaming and bundle cutover over loopback HTTP",
		Columns: []string{"Dataset", "Base edges", "Inserts", "Segments",
			"Ingest ms", "Lag ms", "Repl edges/s", "Cutover ms"},
		Notes: []string{fmt.Sprintf(
			"1-in-%d withheld edges streamed into the leader as single-edge writes; one follower replicating over loopback HTTP (long-poll segments, then one fold/bundle cutover).",
			ingestHoldout),
			"Lag ms is how long the follower needed to drain the remaining journal after the last leader write returned; Cutover ms spans the leader's fold through the follower serving the folded epoch.",
			"Exactness gate: after the cutover the follower must answer the full query pool per the full-graph ground truth at the leader's exact coordinates and fingerprint.",
			"Single-core numbers: leader, follower, and the HTTP stack share one CPU here, so replication steals serving time it would not on real hardware."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("repl: %s", d.Name)
		if err := runReplDataset(cfg, d, tab); err != nil {
			return nil, err
		}
	}
	return []*Table{tab}, nil
}

func runReplDataset(cfg Config, d datasets.Dataset, tab *Table) error {
	g, err := replica(cfg, d)
	if err != nil {
		return fmt.Errorf("repl: %s: %w", d.Name, err)
	}
	w, err := buildWorkload(cfg, g, 2)
	if err != nil {
		return fmt.Errorf("repl: %s: %w", d.Name, err)
	}

	// Same split as the ingest experiment: a shuffled tenth of the edges
	// withheld from the base and streamed back as live leader writes.
	edges := g.Edges()
	r := rand.New(rand.NewSource(cfg.Seed*104729 + 7))
	r.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	split := len(edges) - len(edges)/ingestHoldout
	baseB := graph.NewBuilder(g.NumVertices(), g.NumLabels())
	baseB.SetVertexNames(g.VertexNames())
	baseB.SetLabelNames(g.LabelNames())
	for _, e := range edges[:split] {
		baseB.AddEdge(e.Src, e.Label, e.Dst)
	}
	base := baseB.Build()
	stream := edges[split:]

	build := func(role string) (*server.Server, error) {
		ix, err := core.Build(base, core.Options{K: 2})
		if err != nil {
			return nil, err
		}
		return server.New(ix, server.Options{Mutable: true, RebuildThreshold: -1, Role: role}), nil
	}
	leaderSrv, err := build("leader")
	if err != nil {
		return fmt.Errorf("repl: %s: %w", d.Name, err)
	}
	defer leaderSrv.Close()
	folSrv, err := build("follower")
	if err != nil {
		return fmt.Errorf("repl: %s: %w", d.Name, err)
	}
	defer folSrv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("repl: %s: listen: %w", d.Name, err)
	}
	httpSrv := &http.Server{Handler: cluster.NewLeader(leaderSrv).Handler()}
	serveDone := make(chan error, 1)
	go func() { serveDone <- httpSrv.Serve(ln) }()
	defer func() {
		httpSrv.Close()
		<-serveDone
	}()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fol := cluster.NewFollower(folSrv, cluster.FollowerOptions{
		LeaderURL:     "http://" + ln.Addr().String(),
		PollWait:      100 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
	})
	replDone := make(chan error, 1)
	go func() { replDone <- fol.Run(ctx) }()

	waitState := func(what string, cond func(server.ReplState) bool) error {
		deadline := time.Now().Add(replConvergeTimeout)
		for {
			if cond(folSrv.ReplState()) {
				return nil
			}
			select {
			case err := <-replDone:
				return fmt.Errorf("repl: %s: replication stopped waiting for %s: %w", d.Name, what, err)
			default:
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("repl: %s: follower never reached %s (at %+v)", d.Name, what, folSrv.ReplState())
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Phase 1: stream every withheld edge into the leader while the
	// follower replicates live, then measure its residual lag.
	start := time.Now()
	for i, e := range stream {
		if _, err := leaderSrv.UpdateBatch([]graph.Edge{e}); err != nil {
			return fmt.Errorf("repl: %s: insert %d: %w", d.Name, i, err)
		}
	}
	ingest := time.Since(start)
	if err := waitState("journal catch-up", func(rs server.ReplState) bool {
		return rs.Seq == uint64(len(stream))
	}); err != nil {
		return err
	}
	shipped := time.Since(start)
	lag := shipped - ingest

	// Phase 2: one fold on the leader; the follower must ship the bundle
	// and hot-swap onto the folded epoch.
	cutStart := time.Now()
	if _, err := leaderSrv.Rebuild(); err != nil {
		return fmt.Errorf("repl: %s: fold: %w", d.Name, err)
	}
	want := leaderSrv.ReplState()
	if err := waitState("epoch cutover", func(rs server.ReplState) bool {
		return rs.Epoch == want.Epoch && rs.Seq == want.Seq
	}); err != nil {
		return err
	}
	cutover := time.Since(cutStart)

	// Exactness gate: the follower, now on the folded epoch, answers the
	// full pool per the full-graph ground truth at the leader's exact
	// coordinates.
	if got := folSrv.ReplState(); got.Fingerprint != want.Fingerprint {
		return fmt.Errorf("repl: %s: follower fingerprint %s diverges from leader %s",
			d.Name, got.Fingerprint, want.Fingerprint)
	}
	for _, q := range w.All() {
		got, _, err := folSrv.AnswerRLC(ctx, q.S, q.T, q.L)
		if err != nil {
			return fmt.Errorf("repl: %s: follower verify: %w", d.Name, err)
		}
		if got != q.Expected {
			return fmt.Errorf("repl: %s: follower served %v for (%d, %d, %v+), ground truth %v",
				d.Name, got, q.S, q.T, q.L, q.Expected)
		}
	}

	cancel()
	if err := <-replDone; !errors.Is(err, context.Canceled) {
		return fmt.Errorf("repl: %s: follower loop: %w", d.Name, err)
	}

	st := fol.Stats()
	tab.Rows = append(tab.Rows, []string{
		d.Name,
		fmt.Sprintf("%d", base.NumEdges()),
		fmt.Sprintf("%d", len(stream)),
		fmt.Sprintf("%d", st.Segments),
		fmt.Sprintf("%.1f", float64(ingest.Microseconds())/1e3),
		fmt.Sprintf("%.1f", float64(lag.Microseconds())/1e3),
		fmtCount(int64(float64(len(stream)) / shipped.Seconds())),
		fmt.Sprintf("%.1f", float64(cutover.Microseconds())/1e3),
	})
	return nil
}

package bench

import (
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunFig5 reproduces Figure 5: indexing time, index size and query time on
// ER- and BA-graphs with a fixed number of vertices, sweeping the average
// degree d and the label-set size |L| (k = 2, 2-label workloads).
func RunFig5(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	var tables []*Table
	for _, model := range []string{"ER", "BA"} {
		t := &Table{
			ID:    "fig5-" + model,
			Title: fmt.Sprintf("%s-graphs, |V| = %d, varying d and |L| (k = 2)", model, cfg.SynthVertices),
			Columns: []string{
				"d", "|L|", "IT (s)", "IS (MB)",
				"QT true (ms)", "QT false (ms)",
			},
		}
		for _, d := range cfg.Degrees {
			for _, labels := range cfg.LabelSizes {
				cfg.progressf("fig5: %s d=%d |L|=%d", model, d, labels)
				g, err := synth(model, cfg.SynthVertices, d, labels, cfg.Seed)
				if err != nil {
					return nil, fmt.Errorf("fig5: %s d=%d L=%d: %w", model, d, labels, err)
				}
				row, err := indexAndMeasure(cfg, g, 2, 2)
				if err != nil {
					return nil, fmt.Errorf("fig5: %s d=%d L=%d: %w", model, d, labels, err)
				}
				t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", d), fmt.Sprintf("%d", labels)}, row...))
			}
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// synth builds an ER- or BA-graph with the requested average degree.
func synth(model string, n, avgDegree, labels int, seed int64) (*graph.Graph, error) {
	switch model {
	case "ER":
		return gen.ER(n, n*avgDegree, labels, seed)
	case "BA":
		return gen.BA(n, avgDegree, labels, seed)
	default:
		return nil, fmt.Errorf("bench: unknown synthetic model %q", model)
	}
}

// indexAndMeasure builds an index with the given k, generates a workload of
// the given concatenation length, and returns the IT/IS/QT cells.
func indexAndMeasure(cfg Config, g *graph.Graph, k, concatLen int) ([]string, error) {
	start := time.Now()
	ix, err := core.Build(g, core.Options{K: k})
	if err != nil {
		return nil, err
	}
	it := time.Since(start)

	w, err := buildWorkload(cfg, g, concatLen)
	if err != nil {
		return nil, err
	}
	qtTrue, err := timeQuerySet(w.True, 0, func(q workload.Query) (bool, error) {
		return ix.Query(q.S, q.T, q.L)
	})
	if err != nil {
		return nil, err
	}
	qtFalse, err := timeQuerySet(w.False, 0, func(q workload.Query) (bool, error) {
		return ix.Query(q.S, q.T, q.L)
	})
	if err != nil {
		return nil, err
	}
	return []string{
		fmtSeconds(it), fmtMB(ix.SizeBytes()),
		fmt.Sprintf("%.3f", float64(qtTrue.Microseconds())/1000),
		fmt.Sprintf("%.3f", float64(qtFalse.Microseconds())/1000),
	}, nil
}

package bench

import (
	"errors"
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/etc"
)

// RunTable4 reproduces Table IV: indexing time (IT) and index size (IS) of
// the RLC index against the extended transitive closure, with k = 2. ETC
// exceeding its construction budget renders "-", exactly as the paper's
// 24-hour timeouts do.
func RunTable4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "table4",
		Title: "Indexing time (IT) and index size (IS), k = 2",
		Columns: []string{
			"Dataset", "RLC IT (s)", "RLC IS (MB)", "RLC entries",
			"ETC IT (s)", "ETC IS (MB)", "ETC records",
			"paper RLC IT (s)", "paper RLC IS (MB)",
		},
		Notes: []string{fmt.Sprintf("ETC budget: %v or %s records — exceeded cells print \"-\" (the paper's ETC only completes on AD within 24h).", cfg.ETCTimeLimit, fmtCount(cfg.ETCMaxRecords))},
	}
	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("table4: %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", d.Name, err)
		}

		start := time.Now()
		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			return nil, fmt.Errorf("table4: %s: %w", d.Name, err)
		}
		rlcIT := time.Since(start)

		etcIT, etcIS, etcRecords := "-", "-", "-"
		start = time.Now()
		closure, err := etc.Build(g, etc.Options{K: 2, TimeLimit: cfg.ETCTimeLimit, MaxPairEntries: cfg.ETCMaxRecords})
		switch {
		case err == nil:
			etcIT = fmtSeconds(time.Since(start))
			etcIS = fmtMB(closure.SizeBytes())
			etcRecords = fmtCount(closure.NumRecords())
		case errors.Is(err, etc.ErrBudget):
			// "-" row, like the paper.
		default:
			return nil, fmt.Errorf("table4: %s: etc: %w", d.Name, err)
		}

		t.Rows = append(t.Rows, []string{
			d.Name,
			fmtSeconds(rlcIT), fmtMB(ix.SizeBytes()), fmtCount(ix.NumEntries()),
			etcIT, etcIS, etcRecords,
			fmt.Sprintf("%.1f", d.PaperIndexSeconds), fmt.Sprintf("%.1f", d.PaperIndexMB),
		})
	}
	return []*Table{t}, nil
}

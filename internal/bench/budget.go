package bench

import (
	"fmt"
	"sort"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// budgetFractions is the sweep of MaxIndexBytes as fractions of the full
// (unbudgeted) index size: a gentle cut, a half, and an aggressive one that
// demotes most of the graph. 1.0 is the unbudgeted baseline row.
var budgetFractions = []float64{1.0, 0.5, 0.25, 0.1}

// budgetProbeRounds is how many times each workload query is measured for
// the latency distribution: index probes are nanoseconds, so a single shot
// per query would time the clock, not the query.
const budgetProbeRounds = 64

// RunBudget measures the size-budgeted index tiers on every dataset
// replica: for each budget fraction, the resident index bytes (which must
// shrink monotonically as the budget tightens), the exact/filtered vertex
// split, the per-tier query counters, and the query-latency distribution.
// Every budgeted index first answers the whole workload pool against ground
// truth before anything is timed — the tiers must be a pure space/time
// trade, never an approximation.
func RunBudget(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		ID:    "budget",
		Title: "Size-budgeted index tiers: exact hubs + may-reach filters under MaxIndexBytes",
		Columns: []string{"Dataset", "Budget", "MB", "Bytes", "Exact V", "Filtered V",
			"Exact q", "Filter q", "Traversal q", "p50 ns/q", "p99 ns/q"},
		Notes: []string{fmt.Sprintf(
			"Budget is MaxIndexBytes as a fraction of the full index size (1.00 = unbudgeted baseline); every row first answered the whole fig3-style true+false pool exactly (ground-truth gated), then each query was timed over %d rounds for the p50/p99 distribution.", budgetProbeRounds),
			"Bytes is resident size relative to the full index. Exact/Filter/Traversal q split the pool by deciding tier: complete entry lists, definitive filter answers, and exact-traversal fallbacks on filter maybes.",
			"Tightening the budget trades the filtered vertices' list bytes for union+bloom filters; p99 grows with the traversal-fallback share, p50 stays on the filter fast path.",
			"A dataset whose per-vertex entry bytes sit below the per-vertex filter floor (about 24 B plus its union windows) never tiers: the builder refuses to grow the index, so every budgeted row repeats the full size with zero filtered vertices."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("budget: %s", d.Name)
		rows, err := runBudgetDataset(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("budget: %s: %w", d.Name, err)
		}
		tab.Rows = append(tab.Rows, rows...)
	}
	return []*Table{tab}, nil
}

func runBudgetDataset(cfg Config, d datasets.Dataset) ([][]string, error) {
	g, err := replica(cfg, d)
	if err != nil {
		return nil, err
	}
	w, err := buildWorkload(cfg, g, 2)
	if err != nil {
		return nil, err
	}
	pool := w.All()
	full, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		return nil, err
	}
	fullBytes := full.SizeBytes()

	var rows [][]string
	prevBytes := int64(-1)
	for _, frac := range budgetFractions {
		ix := full
		if frac < 1.0 {
			budget := int64(float64(fullBytes) * frac)
			ix, err = core.Build(g, core.Options{K: 2, MaxIndexBytes: budget})
			if err != nil {
				return nil, err
			}
			// A build may legitimately stay untiered: the builder refuses
			// to tier a graph whose entry lists are cheaper than the
			// per-vertex filter floor (a budget must never grow the index).
			// Such rows report the full size at every fraction below.
		}

		// Exactness gate: the whole pool against ground truth before timing.
		if _, err := timeQuerySet(pool, 0, func(q workload.Query) (bool, error) {
			return ix.Query(q.S, q.T, q.L)
		}); err != nil {
			return nil, err
		}

		// Per-query latency distribution over the pool.
		perQuery := make([]time.Duration, len(pool))
		for i, q := range pool {
			start := time.Now()
			for r := 0; r < budgetProbeRounds; r++ {
				if _, err := ix.Query(q.S, q.T, q.L); err != nil {
					return nil, err
				}
			}
			perQuery[i] = time.Since(start) / budgetProbeRounds
		}
		sort.Slice(perQuery, func(i, j int) bool { return perQuery[i] < perQuery[j] })
		p50 := perQuery[len(perQuery)/2]
		p99 := perQuery[len(perQuery)*99/100]

		sizeBytes := ix.SizeBytes()
		if prevBytes >= 0 && sizeBytes > prevBytes {
			return nil, fmt.Errorf("index bytes grew as the budget tightened: %d B at the tighter budget, %d B at the looser", sizeBytes, prevBytes)
		}
		prevBytes = sizeBytes

		ts := ix.TierStats()
		queries := int64(len(pool)) * (budgetProbeRounds + 1)
		exactQ := queries - ts.FilterDefinite - ts.FilterMaybe // both-retained, full-list decisions
		if !ix.Tiered() {
			ts.RetainedVertices = g.NumVertices() // baseline or guardrail row
		}
		rows = append(rows, []string{
			d.Name,
			fmt.Sprintf("%.2f", frac),
			fmtMB(sizeBytes),
			fmt.Sprintf("%.2fx", float64(sizeBytes)/float64(fullBytes)),
			fmtCount(int64(ts.RetainedVertices)),
			fmtCount(int64(ts.DemotedVertices)),
			fmt.Sprintf("%.1f%%", 100*float64(exactQ)/float64(queries)),
			fmt.Sprintf("%.1f%%", 100*float64(ts.FilterDefinite)/float64(queries)),
			fmt.Sprintf("%.1f%%", 100*float64(ts.FilterMaybe)/float64(queries)),
			fmt.Sprintf("%d", p50.Nanoseconds()),
			fmt.Sprintf("%d", p99.Nanoseconds()),
		})
	}
	return rows, nil
}

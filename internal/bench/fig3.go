package bench

import (
	"errors"
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/etc"
	"github.com/g-rpqs/rlc-go/internal/traversal"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunFig3 reproduces Figure 3: total execution time of the true-query set
// and the false-query set (concatenation length 2, k = 2) for BFS, BiBFS,
// ETC and the RLC index on every dataset replica. Timed-out traversal cells
// print "X", matching the figure.
func RunFig3(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	mk := func(kind string) *Table {
		return &Table{
			ID:      "fig3-" + kind,
			Title:   fmt.Sprintf("Execution time of %d %s-queries (µs total)", cfg.QueriesPerSet, kind),
			Columns: []string{"Dataset", "BFS", "BiBFS", "ETC", "RLC Index"},
			Notes:   []string{fmt.Sprintf("\"X\" = exceeded the %v per-set traversal budget; \"-\" = ETC not buildable within budget (cf. Table IV).", cfg.TraversalTimeLimit)},
		}
	}
	trueTab, falseTab := mk("true"), mk("false")

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("fig3: %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("fig3: %s: %w", d.Name, err)
		}
		w, err := buildWorkload(cfg, g, 2)
		if err != nil {
			return nil, fmt.Errorf("fig3: %s: %w", d.Name, err)
		}

		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			return nil, fmt.Errorf("fig3: %s: %w", d.Name, err)
		}
		closure, etcErr := etc.Build(g, etc.Options{K: 2, TimeLimit: cfg.ETCTimeLimit, MaxPairEntries: cfg.ETCMaxRecords})
		if etcErr != nil && !errors.Is(etcErr, etc.ErrBudget) {
			return nil, fmt.Errorf("fig3: %s: etc: %w", d.Name, etcErr)
		}

		ev := traversal.NewEvaluator(g)
		nfaCache := map[string]*automaton.NFA{}
		nfaOf := func(q workload.Query) (*automaton.NFA, error) {
			key := q.L.String()
			if nfa, ok := nfaCache[key]; ok {
				return nfa, nil
			}
			nfa, err := automaton.NewPlus(q.L, g.NumLabels())
			if err != nil {
				return nil, err
			}
			nfaCache[key] = nfa
			return nfa, nil
		}

		for _, set := range []struct {
			tab     *Table
			queries []workload.Query
		}{{trueTab, w.True}, {falseTab, w.False}} {
			row := []string{d.Name}
			// BFS.
			dur, err := timeQuerySet(set.queries, cfg.TraversalTimeLimit, func(q workload.Query) (bool, error) {
				nfa, err := nfaOf(q)
				if err != nil {
					return false, err
				}
				return ev.BFS(q.S, q.T, nfa), nil
			})
			row = append(row, cellOrTimeout(dur, err))
			if err != nil && !errors.Is(err, errTimeLimit) {
				return nil, fmt.Errorf("fig3: %s bfs: %w", d.Name, err)
			}
			// BiBFS.
			dur, err = timeQuerySet(set.queries, cfg.TraversalTimeLimit, func(q workload.Query) (bool, error) {
				nfa, err := nfaOf(q)
				if err != nil {
					return false, err
				}
				return ev.BiBFS(q.S, q.T, nfa), nil
			})
			row = append(row, cellOrTimeout(dur, err))
			if err != nil && !errors.Is(err, errTimeLimit) {
				return nil, fmt.Errorf("fig3: %s bibfs: %w", d.Name, err)
			}
			// ETC (when buildable).
			if etcErr != nil {
				row = append(row, "-")
			} else {
				dur, err = timeQuerySet(set.queries, 0, func(q workload.Query) (bool, error) {
					return closure.Query(q.S, q.T, q.L)
				})
				if err != nil {
					return nil, fmt.Errorf("fig3: %s etc: %w", d.Name, err)
				}
				row = append(row, fmtMicros(dur))
			}
			// RLC index.
			dur, err = timeQuerySet(set.queries, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			if err != nil {
				return nil, fmt.Errorf("fig3: %s rlc: %w", d.Name, err)
			}
			row = append(row, fmtMicros(dur))

			set.tab.Rows = append(set.tab.Rows, row)
		}
	}
	return []*Table{trueTab, falseTab}, nil
}

func cellOrTimeout(d time.Duration, err error) string {
	if errors.Is(err, errTimeLimit) {
		return "X"
	}
	return fmtMicros(d)
}

// Package bench reproduces the paper's experimental section: one experiment
// per table and figure (Table III, Table IV, Figures 3-7, Table V), each
// printing the same rows/series the paper reports. Experiments accept a
// Config that scales the workloads to the available hardware; the default
// configuration finishes on a laptop while preserving the shapes the paper
// demonstrates (who wins, by what factor, and where the trends bend).
//
// Beyond the paper, four extension experiments measure what this repo adds:
// "ablation" (the pruning rules' individual contributions), "batch"
// (concurrent batch-query throughput), "pbuild" (the deterministic parallel
// build ladder, byte-identity gated), and "serve" (the internal/server
// result cache: cached vs uncached QPS under a Zipf-skewed request stream).
package bench

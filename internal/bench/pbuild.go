package bench

import (
	"bytes"
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// RunPBuild measures parallel index construction (extension): k = 2 builds
// of one generated ER and one generated BA graph across worker counts,
// reporting wall-clock build time and speedup over the sequential build.
// Before anything is timed, every parallel build is checked to serialize
// byte-identically to the sequential one — the determinism guarantee the
// scheduler makes (a speedup from a different index would be meaningless).
// Single-core machines see the scheduler's overhead instead of a speedup;
// the Identical column is the correctness signal either way.
func RunPBuild(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	workerSet := cfg.BuildWorkers
	if len(workerSet) == 0 {
		workerSet = []int{1, 2, 4}
	}
	tab := &Table{
		ID:      "pbuild",
		Title:   "Parallel index construction: build time vs workers (k = 2)",
		Columns: []string{"Graph", "|V|", "|E|", "Workers", "Build (ms)", "Speedup", "Identical"},
		Notes:   []string{"Best of 2 builds per cell; speedup is relative to the same graph's first row."},
	}

	n := cfg.SynthVertices
	type spec struct {
		name string
		make func() (*graph.Graph, error)
	}
	graphs := []spec{
		{"ER d=4 |L|=8", func() (*graph.Graph, error) { return gen.ER(n, 4*n, 8, cfg.Seed) }},
		{"BA m=3 |L|=8", func() (*graph.Graph, error) { return gen.BA(n, 3, 8, cfg.Seed) }},
	}

	for _, gs := range graphs {
		g, err := gs.make()
		if err != nil {
			return nil, fmt.Errorf("pbuild: %s: %w", gs.name, err)
		}

		// Reference build and bytes for the determinism gate.
		seqIx, err := core.Build(g, core.Options{K: 2, BuildWorkers: 1})
		if err != nil {
			return nil, fmt.Errorf("pbuild: %s: %w", gs.name, err)
		}
		var seqBytes bytes.Buffer
		if err := seqIx.Write(&seqBytes); err != nil {
			return nil, fmt.Errorf("pbuild: %s: %w", gs.name, err)
		}

		var base time.Duration
		for _, w := range workerSet {
			cfg.progressf("pbuild: %s workers=%d", gs.name, w)
			// Best of 2 timed builds; the last one doubles as the
			// subject of the byte-identity gate.
			var elapsed time.Duration
			var ix *core.Index
			for round := 0; round < 2; round++ {
				start := time.Now()
				built, err := core.Build(g, core.Options{K: 2, BuildWorkers: w})
				if err != nil {
					return nil, fmt.Errorf("pbuild: %s workers=%d: %w", gs.name, w, err)
				}
				if d := time.Since(start); round == 0 || d < elapsed {
					elapsed = d
				}
				ix = built
			}
			identical := true
			if w != 1 {
				var buf bytes.Buffer
				if err := ix.Write(&buf); err != nil {
					return nil, fmt.Errorf("pbuild: %s: %w", gs.name, err)
				}
				identical = bytes.Equal(buf.Bytes(), seqBytes.Bytes())
				if !identical {
					return nil, fmt.Errorf("pbuild: %s workers=%d: parallel build is NOT byte-identical to sequential — determinism bug", gs.name, w)
				}
			}
			if w == workerSet[0] {
				base = elapsed
			}
			tab.Rows = append(tab.Rows, []string{
				gs.name,
				fmt.Sprintf("%d", g.NumVertices()),
				fmt.Sprintf("%d", g.NumEdges()),
				fmt.Sprintf("%d", core.EffectiveBuildWorkers(g.NumVertices(), w)),
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
				fmt.Sprintf("%.2fx", float64(base)/float64(elapsed)),
				fmt.Sprintf("%v", identical),
			})
		}
	}
	return []*Table{tab}, nil
}

package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config scales the experiments. The zero value is usable: withDefaults
// fills every field.
type Config struct {
	// Scale shrinks dataset replicas: a replica has about Scale*|V| of the
	// original's vertices (at least 600), same average degree.
	Scale float64
	// MaxVertices caps replica sizes so WF-class datasets stay tractable.
	MaxVertices int
	// MaxEdges caps replica edge counts; it binds on the densest datasets
	// (SO, WF) whose per-edge indexing cost is also the highest, which is
	// what makes default runs finish. Raise it to stress the build.
	MaxEdges int
	// QueriesPerSet is the size of each true/false query set (paper: 1000).
	QueriesPerSet int
	// Seed drives all randomness.
	Seed int64
	// Datasets filters the Table III datasets (empty = all).
	Datasets []string
	// ETCTimeLimit and ETCMaxRecords bound ETC construction; exceeding
	// either renders "-" like Table IV.
	ETCTimeLimit  time.Duration
	ETCMaxRecords int64
	// TraversalTimeLimit bounds each BFS/BiBFS query-set run; exceeding it
	// renders "X" like Figure 3.
	TraversalTimeLimit time.Duration
	// SynthVertices is the base synthetic graph size for Figure 5
	// (paper: 1M).
	SynthVertices int
	// Fig6Vertices is the scalability sweep for Figure 6
	// (paper: 125K..2M).
	Fig6Vertices []int
	// Fig7Vertices is the synthetic size for Figure 7 (paper: 125K).
	Fig7Vertices int
	// Degrees and LabelSizes form the Figure 5 grid (paper: 2-5 x 8-36).
	Degrees    []int
	LabelSizes []int
	// KSweep is the recursive-k sweep of Figures 4 and 7 (paper: 2,3,4).
	KSweep []int
	// EngineQueries is the per-query-type sample size for Table V.
	EngineQueries int
	// BuildWorkers is the worker-count ladder of the pbuild experiment
	// (empty = 1, 2, 4). The first entry is the speedup baseline.
	BuildWorkers []int
	// Progress receives per-step progress lines (nil = silent).
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.004
	}
	if c.MaxVertices == 0 {
		c.MaxVertices = 20000
	}
	if c.MaxEdges == 0 {
		c.MaxEdges = 120000
	}
	if c.QueriesPerSet == 0 {
		c.QueriesPerSet = 200
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ETCTimeLimit == 0 {
		c.ETCTimeLimit = 30 * time.Second
	}
	if c.ETCMaxRecords == 0 {
		c.ETCMaxRecords = 20_000_000
	}
	if c.TraversalTimeLimit == 0 {
		c.TraversalTimeLimit = 60 * time.Second
	}
	if c.SynthVertices == 0 {
		c.SynthVertices = 10000
	}
	if len(c.Fig6Vertices) == 0 {
		c.Fig6Vertices = []int{2500, 5000, 10000, 20000, 40000}
	}
	if c.Fig7Vertices == 0 {
		c.Fig7Vertices = 4000
	}
	if len(c.Degrees) == 0 {
		c.Degrees = []int{2, 3, 4, 5}
	}
	if len(c.LabelSizes) == 0 {
		c.LabelSizes = []int{8, 12, 16, 20, 24, 28, 32, 36}
	}
	if len(c.KSweep) == 0 {
		c.KSweep = []int{2, 3, 4}
	}
	if c.EngineQueries == 0 {
		c.EngineQueries = 50
	}
	if c.Progress == nil {
		c.Progress = io.Discard
	}
	return c
}

func (c Config) wantDataset(name string) bool {
	if len(c.Datasets) == 0 {
		return true
	}
	for _, d := range c.Datasets {
		if strings.EqualFold(d, name) {
			return true
		}
	}
	return false
}

func (c Config) progressf(format string, args ...any) {
	fmt.Fprintf(c.Progress, format+"\n", args...)
}

// Table is one rendered result table. The JSON tags are the machine-
// readable schema `rlcbench -json` (and scripts/bench.sh's BENCH_*.json
// trajectory files) emit.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n%s\n", n)
	}
	return b.String()
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

// Experiment couples an id (accepted by cmd/rlcbench -exp) with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// Experiments returns the registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table3", Title: "Overview of real-world graphs (replicas)", Run: RunTable3},
		{ID: "table4", Title: "Indexing time and index size: RLC index vs ETC", Run: RunTable4},
		{ID: "fig3", Title: "Query execution time on real-world graphs", Run: RunFig3},
		{ID: "fig4", Title: "RLC index with different recursive k (real graphs)", Run: RunFig4},
		{ID: "fig5", Title: "Impact of label-set size and average degree", Run: RunFig5},
		{ID: "fig6", Title: "Scalability in the number of vertices", Run: RunFig6},
		{ID: "fig7", Title: "Impact of recursive k (synthetic graphs)", Run: RunFig7},
		{ID: "table5", Title: "Speed-ups and break-even points over graph engines", Run: RunTable5},
		{ID: "ablation", Title: "Pruning-rule ablation (extension)", Run: RunAblation},
		{ID: "batch", Title: "Concurrent batch-query throughput (extension)", Run: RunBatch},
		{ID: "pbuild", Title: "Parallel index construction (extension)", Run: RunPBuild},
		{ID: "serve", Title: "Cached vs uncached query serving (extension)", Run: RunServe},
		{ID: "ingest", Title: "Mixed read/write serving with epoch rebuilds (extension)", Run: RunIngest},
		{ID: "packed", Title: "Bit-parallel packed MR-sets vs linear scan (extension)", Run: RunPacked},
		{ID: "budget", Title: "Size-budgeted index tiers under MaxIndexBytes (extension)", Run: RunBudget},
		{ID: "repl", Title: "Replicated serving: journal streaming and bundle cutover (extension)", Run: RunRepl},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if strings.EqualFold(e.ID, id) {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Experiments()))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (want one of %s, or \"all\")", id, strings.Join(ids, ", "))
}

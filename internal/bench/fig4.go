package bench

import (
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunFig4 reproduces Figure 4: indexing time, index size and query time of
// the RLC index on the TW and WG replicas as the recursive k grows through
// {2, 3, 4}. Query sets use a recursive concatenation of k labels, as in
// the paper.
func RunFig4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "fig4",
		Title: "RLC index with different recursive k values (TW, WG replicas)",
		Columns: []string{
			"Dataset", "k", "IT (s)", "IS (MB)", "Entries",
			"QT true (ms)", "QT false (ms)",
		},
		Notes: []string{fmt.Sprintf("Each query set holds %d queries with a recursive concatenation of k labels.", cfg.QueriesPerSet)},
	}
	for _, name := range []string{"TW", "WG"} {
		if !cfg.wantDataset(name) {
			continue
		}
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("fig4: %s: %w", name, err)
		}
		for _, k := range cfg.KSweep {
			cfg.progressf("fig4: %s k=%d", name, k)
			start := time.Now()
			ix, err := core.Build(g, core.Options{K: k})
			if err != nil {
				return nil, fmt.Errorf("fig4: %s k=%d: %w", name, k, err)
			}
			it := time.Since(start)

			w, err := buildWorkload(cfg, g, k)
			if err != nil {
				return nil, fmt.Errorf("fig4: %s k=%d: %w", name, k, err)
			}
			qtTrue, err := timeQuerySet(w.True, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			if err != nil {
				return nil, fmt.Errorf("fig4: %s k=%d true: %w", name, k, err)
			}
			qtFalse, err := timeQuerySet(w.False, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			if err != nil {
				return nil, fmt.Errorf("fig4: %s k=%d false: %w", name, k, err)
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%d", k),
				fmtSeconds(it), fmtMB(ix.SizeBytes()), fmtCount(ix.NumEntries()),
				fmt.Sprintf("%.3f", float64(qtTrue.Microseconds())/1000),
				fmt.Sprintf("%.3f", float64(qtFalse.Microseconds())/1000),
			})
		}
	}
	return []*Table{t}, nil
}

package bench

import (
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunFig7 reproduces Figure 7 (Appendix C): the impact of the recursive k
// on indexing time, index size and query time for ER- and BA-graphs with
// d = 5 and |L| = 16. One 2-label query set per graph is evaluated with
// each index, matching the appendix's setup.
func RunFig7(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "fig7",
		Title: fmt.Sprintf("Impact of k on synthetic graphs (|V| = %d, d = 5, |L| = 16)", cfg.Fig7Vertices),
		Columns: []string{
			"Model", "k", "IT (s)", "IS (MB)", "Entries",
			"QT true (ms)", "QT false (ms)",
		},
	}
	for _, model := range []string{"ER", "BA"} {
		g, err := synth(model, cfg.Fig7Vertices, 5, 16, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("fig7: %s: %w", model, err)
		}
		w, err := buildWorkload(cfg, g, 2)
		if err != nil {
			return nil, fmt.Errorf("fig7: %s: %w", model, err)
		}
		for _, k := range cfg.KSweep {
			cfg.progressf("fig7: %s k=%d", model, k)
			start := time.Now()
			ix, err := core.Build(g, core.Options{K: k})
			if err != nil {
				return nil, fmt.Errorf("fig7: %s k=%d: %w", model, k, err)
			}
			it := time.Since(start)
			qtTrue, err := timeQuerySet(w.True, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			if err != nil {
				return nil, fmt.Errorf("fig7: %s k=%d: %w", model, k, err)
			}
			qtFalse, err := timeQuerySet(w.False, 0, func(q workload.Query) (bool, error) {
				return ix.Query(q.S, q.T, q.L)
			})
			if err != nil {
				return nil, fmt.Errorf("fig7: %s k=%d: %w", model, k, err)
			}
			t.Rows = append(t.Rows, []string{
				model, fmt.Sprintf("%d", k),
				fmtSeconds(it), fmtMB(ix.SizeBytes()), fmtCount(ix.NumEntries()),
				fmt.Sprintf("%.3f", float64(qtTrue.Microseconds())/1000),
				fmt.Sprintf("%.3f", float64(qtFalse.Microseconds())/1000),
			})
		}
	}
	return []*Table{t}, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"
)

// microConfig shrinks every experiment to seconds for the test suite.
func microConfig() Config {
	return Config{
		Scale:              0.0001,
		MaxVertices:        700,
		QueriesPerSet:      8,
		Seed:               1,
		Datasets:           []string{"AD", "TW"},
		ETCTimeLimit:       5 * time.Second,
		ETCMaxRecords:      2_000_000,
		MaxEdges:           50_000,
		TraversalTimeLimit: 20 * time.Second,
		SynthVertices:      400,
		Fig6Vertices:       []int{300, 600},
		Fig7Vertices:       300,
		Degrees:            []int{2, 3},
		LabelSizes:         []int{8, 16},
		KSweep:             []int{2, 3},
		EngineQueries:      6,
	}
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(exps))
	}
	for _, e := range exps {
		got, err := ByID(e.ID)
		if err != nil {
			t.Errorf("ByID(%s): %v", e.ID, err)
		}
		if got.ID != e.ID {
			t.Errorf("ByID(%s) returned %s", e.ID, got.ID)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id must fail")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "x",
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"## x — demo", "| a | bb |", "| 333 | 4 |", "note"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "333  4") {
		t.Errorf("plain rendering misaligned:\n%s", sb.String())
	}
}

func checkTables(t *testing.T, tables []*Table, err error, wantRows int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables produced")
	}
	for _, tab := range tables {
		if len(tab.Rows) < wantRows {
			t.Errorf("table %s has %d rows, want at least %d", tab.ID, len(tab.Rows), wantRows)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("table %s: row width %d != %d columns", tab.ID, len(row), len(tab.Columns))
			}
		}
	}
}

func TestRunTable3Micro(t *testing.T) {
	tables, err := RunTable3(microConfig())
	checkTables(t, tables, err, 2)
}

func TestRunTable4Micro(t *testing.T) {
	tables, err := RunTable4(microConfig())
	checkTables(t, tables, err, 2)
}

func TestRunFig3Micro(t *testing.T) {
	tables, err := RunFig3(microConfig())
	checkTables(t, tables, err, 2)
	if len(tables) != 2 {
		t.Fatalf("fig3 should produce true+false tables, got %d", len(tables))
	}
}

func TestRunFig4Micro(t *testing.T) {
	tables, err := RunFig4(microConfig())
	checkTables(t, tables, err, 2) // TW only (dataset filter), 2 k values
}

func TestRunFig5Micro(t *testing.T) {
	tables, err := RunFig5(microConfig())
	checkTables(t, tables, err, 4) // 2 degrees x 2 label sizes
	if len(tables) != 2 {
		t.Fatalf("fig5 should produce ER+BA tables, got %d", len(tables))
	}
}

func TestRunFig6Micro(t *testing.T) {
	tables, err := RunFig6(microConfig())
	checkTables(t, tables, err, 2)
}

func TestRunFig7Micro(t *testing.T) {
	tables, err := RunFig7(microConfig())
	checkTables(t, tables, err, 4) // 2 models x 2 k values
}

func TestRunTable5Micro(t *testing.T) {
	tables, err := RunTable5(microConfig())
	checkTables(t, tables, err, 12) // 4 query types x 3 engines
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale == 0 || c.QueriesPerSet == 0 || len(c.Degrees) == 0 || len(c.KSweep) == 0 {
		t.Errorf("defaults not filled: %+v", c)
	}
	if !c.wantDataset("AD") {
		t.Error("empty filter should admit all datasets")
	}
	c.Datasets = []string{"ad"}
	if !c.wantDataset("AD") || c.wantDataset("TW") {
		t.Error("dataset filter should be case-insensitive and exclusive")
	}
}

func TestRunAblationMicro(t *testing.T) {
	tables, err := RunAblation(microConfig())
	checkTables(t, tables, err, 5)
}

func TestRunBatchMicro(t *testing.T) {
	tables, err := RunBatch(microConfig())
	checkTables(t, tables, err, 2) // AD and TW rows
	if len(tables) != 1 {
		t.Fatalf("batch should produce one table, got %d", len(tables))
	}
}

func TestRunServeMicro(t *testing.T) {
	tables, err := RunServe(microConfig())
	checkTables(t, tables, err, 2) // AD and TW rows
	if len(tables) != 1 {
		t.Fatalf("serve should produce one table, got %d", len(tables))
	}
	// The Zipf replay must actually exercise the cache: with a 25x replay
	// of the pool, the steady-state hit rate is way above this floor.
	for _, row := range tables[0].Rows {
		var pct float64
		if _, err := fmt.Sscanf(row[3], "%f%%", &pct); err != nil || pct < 50 {
			t.Errorf("serve row %v: implausible cache hit rate %q", row, row[3])
		}
	}
}

func TestRunPBuildMicro(t *testing.T) {
	cfg := microConfig()
	cfg.BuildWorkers = []int{1, 2}
	tables, err := RunPBuild(cfg)
	checkTables(t, tables, err, 4) // 2 graphs x 2 worker counts
	for _, row := range tables[0].Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("pbuild row %v reports a non-identical parallel build", row)
		}
	}
}

func TestRunIngestMicro(t *testing.T) {
	tables, err := RunIngest(microConfig())
	checkTables(t, tables, err, 2) // AD and TW rows
	if len(tables) != 1 {
		t.Fatalf("ingest should produce one table, got %d", len(tables))
	}
	// The exactness gates inside RunIngest are the real assertions; here we
	// pin that the run folded at least once (at micro scale a single
	// background fold can swallow the whole stream before the explicit
	// final fold gets a turn).
	for _, row := range tables[0].Rows {
		var epochs int
		if _, err := fmt.Sscanf(row[6], "%d", &epochs); err != nil || epochs < 1 {
			t.Errorf("ingest row %v: expected >= 1 fold epoch, got %q", row, row[6])
		}
	}
}

func TestRunPackedMicro(t *testing.T) {
	tables, err := RunPacked(microConfig())
	checkTables(t, tables, err, 2) // AD and TW rows
	if len(tables) != 1 {
		t.Fatalf("packed should produce one table, got %d", len(tables))
	}
}

func TestRunBudgetMicro(t *testing.T) {
	tables, err := RunBudget(microConfig())
	checkTables(t, tables, err, 2*len(budgetFractions)) // AD and TW sweeps
	if len(tables) != 1 {
		t.Fatalf("budget should produce one table, got %d", len(tables))
	}
	// RunBudget's internal gates (ground-truth answers, monotone bytes) are
	// the real assertions; pin here that the sweep demoted vertices on some
	// dataset rather than no-opping throughout (overhead-dominated replicas
	// like TW legitimately never tier — the builder refuses to grow them).
	demoted := false
	for _, row := range tables[0].Rows {
		if row[5] != "0" {
			demoted = true
		}
	}
	if !demoted {
		t.Errorf("no budget row demoted any vertices: %v", tables[0].Rows)
	}
}

func TestRunReplMicro(t *testing.T) {
	tables, err := RunRepl(microConfig())
	checkTables(t, tables, err, 2) // AD and TW rows
	if len(tables) != 1 {
		t.Fatalf("repl should produce one table, got %d", len(tables))
	}
	// The exactness gate inside RunRepl is the real assertion; here we pin
	// that replication actually streamed segments rather than riding the
	// cutover for everything.
	for _, row := range tables[0].Rows {
		var segments int
		if _, err := fmt.Sscanf(row[3], "%d", &segments); err != nil || segments < 1 {
			t.Errorf("repl row %v: expected >= 1 replicated segment, got %q", row, row[3])
		}
	}
}

func TestReportJSON(t *testing.T) {
	r := NewReport()
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a"}, Rows: [][]string{{"1"}}}
	r.Add(Experiment{ID: "x", Title: "demo"}, []*Table{tab}, 2*time.Second)
	path := t.TempDir() + "/r.json"
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(back.Experiments) != 1 || back.Experiments[0].ID != "x" ||
		back.Experiments[0].Seconds != 2 || back.GOMAXPROCS < 1 {
		t.Fatalf("round-tripped report: %+v", back)
	}
	if len(back.Experiments[0].Tables) != 1 || back.Experiments[0].Tables[0].Rows[0][0] != "1" {
		t.Fatalf("table lost in round trip: %+v", back.Experiments[0].Tables)
	}
}

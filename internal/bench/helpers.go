package bench

import (
	"errors"
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// errTimeLimit marks a query-set run that exceeded its budget — rendered as
// "X" like the timed-out cells of Figure 3.
var errTimeLimit = errors.New("bench: time limit exceeded")

// replica generates a dataset replica honoring the config's scale and the
// vertex/edge caps.
func replica(cfg Config, d datasets.Dataset) (*graph.Graph, error) {
	v := d.ReplicaVertices(cfg.Scale)
	if v > cfg.MaxVertices {
		v = cfg.MaxVertices
	}
	if byEdges := int(float64(cfg.MaxEdges) / d.AvgDegree()); byEdges > 0 && v > byEdges {
		v = byEdges
	}
	if v < 600 {
		v = 600
	}
	seed := cfg.Seed
	for _, c := range d.Name {
		seed = seed*131 + int64(c)
	}
	return d.Generate(v, seed)
}

// buildWorkload generates a concat-length-2 workload unless overridden.
func buildWorkload(cfg Config, g *graph.Graph, concatLen int) (workload.Workload, error) {
	return workload.Generate(g, workload.Options{
		NumTrue:   cfg.QueriesPerSet,
		NumFalse:  cfg.QueriesPerSet,
		ConcatLen: concatLen,
		Seed:      cfg.Seed,
	})
}

// timeQuerySet evaluates every query through eval, verifying each answer
// against the workload's ground truth (a benchmark that returns wrong
// answers would be meaningless). It stops with errTimeLimit when the budget
// runs out.
func timeQuerySet(queries []workload.Query, limit time.Duration, eval func(q workload.Query) (bool, error)) (time.Duration, error) {
	start := time.Now()
	for i, q := range queries {
		got, err := eval(q)
		if err != nil {
			return 0, err
		}
		if got != q.Expected {
			return 0, fmt.Errorf("bench: evaluator answered %v for query (%d, %d, %v+), ground truth %v", got, q.S, q.T, q.L, q.Expected)
		}
		if limit > 0 && i%16 == 15 && time.Since(start) > limit {
			return time.Since(start), errTimeLimit
		}
	}
	return time.Since(start), nil
}

// --- formatting ------------------------------------------------------------

func fmtSeconds(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

func fmtMicros(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d.Microseconds()))
}

func fmtMB(bytes int64) string {
	return fmt.Sprintf("%.2f", float64(bytes)/(1024*1024))
}

func fmtCount(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.1fB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.1fK", float64(n)/1e3)
	}
	return fmt.Sprintf("%d", n)
}

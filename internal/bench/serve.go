package bench

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/server"
)

// serveZipfS is the skew of the serve experiment's request stream. Real query
// logs are heavily repetitive; s = 1.1 concentrates most of the traffic on a
// small head of hot queries, the regime a result cache exists for.
const serveZipfS = 1.1

// serveRequestFactor sizes the request stream as a multiple of the distinct
// query pool, so hot queries repeat enough for the cache to matter.
const serveRequestFactor = 25

// RunServe measures the query-serving layer (internal/server): the fig3
// workload's distinct queries replayed as a Zipf-skewed request stream,
// answered through a Server once with its result cache disabled and once
// with the default cache — reporting the cache hit rate and the QPS of both
// modes. Requests go through Server.AnswerRLC, the cache→singleflight→index
// path, deliberately bypassing HTTP so the table measures the serving layer
// rather than Go's HTTP stack. Every distinct query's served answer is
// verified against the workload's ground truth before anything is timed.
func RunServe(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	tab := &Table{
		ID:    "serve",
		Title: "Query serving: cached vs uncached QPS on a Zipf-skewed request stream",
		Columns: []string{"Dataset", "Distinct", "Requests", "Hit rate",
			"Uncached QPS", "Cached QPS", "Speedup"},
		Notes: []string{fmt.Sprintf(
			"Zipf s = %.1f over the fig3 true+false query pool, %dx replay; single client goroutine, measured at the serving layer (no HTTP).",
			serveZipfS, serveRequestFactor),
			"The cache pays in proportion to per-query cost: a hit is ~a mutexed map probe, so datasets whose raw index probes are already sub-100ns can show <1x."},
	}

	for _, d := range datasets.All() {
		if !cfg.wantDataset(d.Name) {
			continue
		}
		cfg.progressf("serve: %s", d.Name)
		g, err := replica(cfg, d)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", d.Name, err)
		}
		w, err := buildWorkload(cfg, g, 2)
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", d.Name, err)
		}
		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			return nil, fmt.Errorf("serve: %s: %w", d.Name, err)
		}

		pool := w.All()
		requests := zipfStream(cfg.Seed, len(pool), serveRequestFactor*len(pool))

		// Correctness gate on both serving modes before timing anything.
		for _, mode := range []server.Options{{CacheEntries: -1}, {}} {
			srv := server.New(ix, mode)
			for _, q := range pool {
				got, _, err := srv.AnswerRLC(context.Background(), q.S, q.T, q.L)
				if err != nil {
					return nil, fmt.Errorf("serve: %s: %w", d.Name, err)
				}
				if got != q.Expected {
					return nil, fmt.Errorf("serve: %s: served %v for (%d, %d, %v+), ground truth %v",
						d.Name, got, q.S, q.T, q.L, q.Expected)
				}
			}
		}

		replay := func(srv *server.Server) (time.Duration, error) {
			start := time.Now()
			for _, i := range requests {
				q := pool[i]
				if _, _, err := srv.AnswerRLC(context.Background(), q.S, q.T, q.L); err != nil {
					return 0, err
				}
			}
			return time.Since(start), nil
		}

		uncachedSrv := server.New(ix, server.Options{CacheEntries: -1})
		uncached, err := bestOf(3, func() error { _, e := replay(uncachedSrv); return e })
		if err != nil {
			return nil, fmt.Errorf("serve: %s: uncached: %w", d.Name, err)
		}

		// One cached server across rounds: round 1 warms the cache, later
		// rounds measure the steady serving state bestOf reports.
		cachedSrv := server.New(ix, server.Options{})
		cached, err := bestOf(3, func() error { _, e := replay(cachedSrv); return e })
		if err != nil {
			return nil, fmt.Errorf("serve: %s: cached: %w", d.Name, err)
		}
		cs := cachedSrv.CacheStats()

		qps := func(d time.Duration) float64 {
			return float64(len(requests)) / d.Seconds()
		}
		tab.Rows = append(tab.Rows, []string{
			d.Name,
			fmt.Sprintf("%d", len(pool)),
			fmt.Sprintf("%d", len(requests)),
			fmt.Sprintf("%.1f%%", cs.HitRate()*100),
			fmtCount(int64(qps(uncached))),
			fmtCount(int64(qps(cached))),
			fmt.Sprintf("%.2fx", float64(uncached)/float64(cached)),
		})
	}
	return []*Table{tab}, nil
}

// zipfStream draws n indexes over [0, pool) from a Zipf(s) distribution,
// shuffled by the generator's own order (rand.Zipf is already i.i.d.).
func zipfStream(seed int64, pool, n int) []int {
	r := rand.New(rand.NewSource(seed*7919 + 17))
	z := rand.NewZipf(r, serveZipfS, 1, uint64(pool-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

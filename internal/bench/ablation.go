package bench

import (
	"fmt"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/datasets"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

// RunAblation quantifies the contribution of each pruning rule (Section V-B
// and the Remarks appendix): the index is built on the TW replica with each
// rule disabled in turn, measuring indexing time, entry count and query
// time. Every configuration stays sound and complete — only cost changes —
// which the timed query runs re-verify against ground truth.
func RunAblation(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	d, err := datasets.ByName("TW")
	if err != nil {
		return nil, err
	}
	g, err := replica(cfg, d)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}
	w, err := buildWorkload(cfg, g, 2)
	if err != nil {
		return nil, fmt.Errorf("ablation: %w", err)
	}

	t := &Table{
		ID:      "ablation",
		Title:   "Pruning-rule ablation on the TW replica (k = 2)",
		Columns: []string{"Configuration", "IT (s)", "Entries", "IS (MB)", "QT true (ms)", "QT false (ms)"},
		Notes: []string{
			"Every configuration answers all queries correctly; pruning only changes cost. PR1 = snapshot check, PR2 = rank order, PR3 = stop on pruned completion.",
		},
	}
	configs := []struct {
		name string
		opts core.Options
	}{
		{"all rules (paper)", core.Options{K: 2}},
		{"no PR1", core.Options{K: 2, DisablePR1: true}},
		{"no PR2", core.Options{K: 2, DisablePR2: true}},
		{"no PR3", core.Options{K: 2, DisablePR3: true}},
		{"no pruning", core.Options{K: 2, DisablePR1: true, DisablePR2: true, DisablePR3: true}},
		{"order: degree sum", core.Options{K: 2, Order: core.OrderDegreeSum}},
		{"order: natural", core.Options{K: 2, Order: core.OrderNatural}},
		{"order: reverse", core.Options{K: 2, Order: core.OrderReverse}},
	}
	for _, c := range configs {
		cfg.progressf("ablation: %s", c.name)
		start := time.Now()
		ix, err := core.Build(g, c.opts)
		if err != nil {
			return nil, fmt.Errorf("ablation: %s: %w", c.name, err)
		}
		it := time.Since(start)
		qtTrue, err := timeQuerySet(w.True, 0, func(q workload.Query) (bool, error) {
			return ix.Query(q.S, q.T, q.L)
		})
		if err != nil {
			return nil, fmt.Errorf("ablation: %s: %w", c.name, err)
		}
		qtFalse, err := timeQuerySet(w.False, 0, func(q workload.Query) (bool, error) {
			return ix.Query(q.S, q.T, q.L)
		})
		if err != nil {
			return nil, fmt.Errorf("ablation: %s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{
			c.name,
			fmtSeconds(it), fmtCount(ix.NumEntries()), fmtMB(ix.SizeBytes()),
			fmt.Sprintf("%.3f", float64(qtTrue.Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(qtFalse.Microseconds())/1000),
		})
	}
	return []*Table{t}, nil
}

//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmap maps size bytes of f read-only and shared, so concurrent processes
// serving the same bundle share one set of physical pages.
func mmap(f *os.File, size int) ([]byte, func() error, error) {
	if size == 0 {
		// Zero-length mappings are an error on most unixes; a zero-byte
		// file fails header validation anyway, so hand back an empty slice.
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
)

// Magic begins every bundle file.
const Magic = "RLCS"

// Version is the container format version this package reads and writes.
// (The RLC serialization lineage counts the legacy single-index format as
// v1, so the first bundle container is v2.)
const Version = 2

// ErrCorrupt is wrapped by every error that means the bundle bytes are not a
// well-formed snapshot: bad magic, truncation, checksum mismatches, and every
// structural violation found by the payload decoders layered on top.
var ErrCorrupt = errors.New("rlc: corrupt snapshot")

// Corruptf builds an ErrCorrupt-wrapping error. Payload decoders (the v2
// reader in internal/core) use it so all corruption reports classify
// identically, no matter which layer noticed.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

const (
	headerSize     = 16 // magic + version + count + table crc
	tableEntrySize = 24 // id + crc + offset + length
	align          = 8
)

// maxSections bounds the section count a reader accepts. The RLC bundle uses
// ~14; the bound only rejects garbage counts before they size an allocation.
const maxSections = 1 << 10

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionInfo describes one section of an open bundle, as recorded in the
// section table.
type SectionInfo struct {
	ID     uint32
	Offset uint64
	Length uint64
	CRC    uint32
}

// Writer accumulates sections and renders the bundle. Sections are written
// in the order added; ids must be unique.
type Writer struct {
	secs []writerSection
	seen map[uint32]bool
}

type writerSection struct {
	id   uint32
	data []byte
}

// NewWriter returns an empty bundle writer.
func NewWriter() *Writer {
	return &Writer{seen: make(map[uint32]bool)}
}

// Add appends a section. The data is not copied; it must stay unchanged
// until WriteTo returns. Adding a duplicate id panics — section ids are a
// closed set chosen by the caller, so a duplicate is a programming error.
func (w *Writer) Add(id uint32, data []byte) {
	if w.seen[id] {
		panic(fmt.Sprintf("snapshot: duplicate section id %d", id))
	}
	w.seen[id] = true
	w.secs = append(w.secs, writerSection{id: id, data: data})
}

// WriteTo renders the bundle: header, checksummed section table, then the
// 8-byte-aligned payloads.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	le := binary.LittleEndian
	table := make([]byte, len(w.secs)*tableEntrySize)
	offset := alignUp(uint64(headerSize + len(table)))
	for i, s := range w.secs {
		e := table[i*tableEntrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], crc32.Checksum(s.data, castagnoli))
		le.PutUint64(e[8:], offset)
		le.PutUint64(e[16:], uint64(len(s.data)))
		offset = alignUp(offset + uint64(len(s.data)))
	}

	head := make([]byte, headerSize)
	copy(head, Magic)
	le.PutUint32(head[4:], Version)
	le.PutUint32(head[8:], uint32(len(w.secs)))
	le.PutUint32(head[12:], crc32.Checksum(table, castagnoli))

	var written int64
	emit := func(b []byte) error {
		n, err := out.Write(b)
		written += int64(n)
		return err
	}
	if err := emit(head); err != nil {
		return written, err
	}
	if err := emit(table); err != nil {
		return written, err
	}
	var pad [align]byte
	pos := uint64(headerSize + len(table))
	for _, s := range w.secs {
		if p := alignUp(pos) - pos; p > 0 {
			if err := emit(pad[:p]); err != nil {
				return written, err
			}
			pos += p
		}
		if err := emit(s.data); err != nil {
			return written, err
		}
		pos += uint64(len(s.data))
	}
	return written, nil
}

func alignUp(v uint64) uint64 { return (v + align - 1) &^ (align - 1) }

// File is an open bundle: the raw bytes (memory-mapped when the platform
// supports it, heap-resident otherwise) plus the parsed section table.
type File struct {
	data   []byte
	secs   []SectionInfo
	byID   map[uint32]int
	mapped bool
	unmap  func() error
}

// Open maps path read-only and parses the section table. On platforms
// without mmap (or when mapping fails) the file is read into the heap
// instead; Mapped reports which happened. The returned File must be Closed
// to release the mapping.
func Open(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size > math.MaxInt {
		return nil, Corruptf("%s: file size %d overflows the address space", path, size)
	}
	data, unmap, mapErr := mmap(f, int(size))
	if mapErr != nil {
		// Portable fallback: read the whole file into the heap. Everything
		// downstream is alignment- and endian-checked, so the two paths
		// behave identically.
		data, err = io.ReadAll(io.NewSectionReader(f, 0, size))
		if err != nil {
			return nil, err
		}
		unmap = nil
	}
	bf, err := parse(data)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	bf.mapped = unmap != nil
	bf.unmap = unmap
	return bf, nil
}

// OpenBytes parses an in-memory bundle. The File aliases data, which must
// stay unchanged while the File is in use. Used to embed bundles and to fuzz
// the reader without a filesystem round-trip.
func OpenBytes(data []byte) (*File, error) {
	return parse(data)
}

func parse(data []byte) (*File, error) {
	le := binary.LittleEndian
	if len(data) < headerSize {
		return nil, Corruptf("file of %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:4]) != Magic {
		return nil, Corruptf("bad magic %q (want %q)", data[:4], Magic)
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, Corruptf("unsupported bundle version %d (want %d)", v, Version)
	}
	count := int(le.Uint32(data[8:]))
	if count < 0 || count > maxSections {
		return nil, Corruptf("implausible section count %d", count)
	}
	tableEnd := headerSize + count*tableEntrySize
	if tableEnd > len(data) {
		return nil, Corruptf("section table truncated: need %d bytes, have %d", tableEnd, len(data))
	}
	table := data[headerSize:tableEnd]
	if got, want := crc32.Checksum(table, castagnoli), le.Uint32(data[12:]); got != want {
		return nil, Corruptf("section table checksum mismatch (%08x != %08x)", got, want)
	}

	f := &File{data: data, byID: make(map[uint32]int, count)}
	for i := 0; i < count; i++ {
		e := table[i*tableEntrySize:]
		s := SectionInfo{
			ID:     le.Uint32(e[0:]),
			CRC:    le.Uint32(e[4:]),
			Offset: le.Uint64(e[8:]),
			Length: le.Uint64(e[16:]),
		}
		if s.Offset%align != 0 {
			return nil, Corruptf("section %d offset %d is not %d-byte aligned", s.ID, s.Offset, align)
		}
		if s.Offset < uint64(tableEnd) || s.Offset > uint64(len(data)) ||
			s.Length > uint64(len(data))-s.Offset {
			return nil, Corruptf("section %d spans [%d, %d+%d), outside the %d-byte file",
				s.ID, s.Offset, s.Offset, s.Length, len(data))
		}
		if _, dup := f.byID[s.ID]; dup {
			return nil, Corruptf("duplicate section id %d", s.ID)
		}
		f.byID[s.ID] = i
		f.secs = append(f.secs, s)
	}
	// Overlapping sections never come out of the Writer; reject them so a
	// hostile table cannot alias one payload region under two ids.
	ordered := append([]SectionInfo(nil), f.secs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Offset < ordered[j].Offset })
	for i := 1; i < len(ordered); i++ {
		prev := ordered[i-1]
		if prev.Offset+prev.Length > ordered[i].Offset {
			return nil, Corruptf("sections %d and %d overlap", prev.ID, ordered[i].ID)
		}
	}
	return f, nil
}

// Sections lists the section table in file order.
func (f *File) Sections() []SectionInfo {
	return append([]SectionInfo(nil), f.secs...)
}

// Mapped reports whether the file is memory-mapped (as opposed to the
// read-into-heap fallback).
func (f *File) Mapped() bool { return f.mapped }

// Bytes returns the complete raw bundle — header, section table, and
// payloads — aliasing the mapping. The slice must not be mutated and
// becomes invalid when the File is closed; callers streaming it (the
// replication bundle endpoint) must hold the owner open for the duration.
func (f *File) Bytes() []byte { return f.data }

// Size returns the total byte size of the open bundle.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Section returns the payload bytes of the section with the given id. The
// slice aliases the mapping and must not be mutated; it becomes invalid when
// the File is closed.
func (f *File) Section(id uint32) ([]byte, bool) {
	i, ok := f.byID[id]
	if !ok {
		return nil, false
	}
	s := f.secs[i]
	return f.data[s.Offset : s.Offset+s.Length : s.Offset+s.Length], true
}

// VerifySection checks the payload checksum of one section.
func (f *File) VerifySection(id uint32) error {
	i, ok := f.byID[id]
	if !ok {
		return Corruptf("missing section %d", id)
	}
	s := f.secs[i]
	if got := crc32.Checksum(f.data[s.Offset:s.Offset+s.Length], castagnoli); got != s.CRC {
		return Corruptf("section %d checksum mismatch (%08x != %08x)", id, got, s.CRC)
	}
	return nil
}

// VerifyAll checks every section's payload checksum — the full-file
// integrity pass that Open deliberately skips to stay O(1) in the payload.
func (f *File) VerifyAll() error {
	for _, s := range f.secs {
		if err := f.VerifySection(s.ID); err != nil {
			return err
		}
	}
	return nil
}

// Close releases the mapping (a no-op for heap-resident and OpenBytes
// files). Every typed view previously handed out becomes invalid.
func (f *File) Close() error {
	f.data = nil
	f.secs = nil
	f.byID = nil
	if f.unmap != nil {
		u := f.unmap
		f.unmap = nil
		return u()
	}
	return nil
}

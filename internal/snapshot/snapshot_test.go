package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// testBundle renders a small three-section bundle.
func testBundle(t *testing.T) []byte {
	t.Helper()
	w := NewWriter()
	w.Add(1, []byte{0xde, 0xad})
	w.Add(7, nil)
	w.Add(3, I32Bytes([]int32{1, -2, 3}))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	data := testBundle(t)
	f, err := OpenBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Sections()); got != 3 {
		t.Fatalf("sections = %d, want 3", got)
	}
	sec, ok := f.Section(1)
	if !ok || !bytes.Equal(sec, []byte{0xde, 0xad}) {
		t.Fatalf("section 1 = %x, %v", sec, ok)
	}
	if sec, ok = f.Section(7); !ok || len(sec) != 0 {
		t.Fatalf("empty section 7 = %x, %v", sec, ok)
	}
	got := I32s[int32](mustSection(t, f, 3))
	if len(got) != 3 || got[0] != 1 || got[1] != -2 || got[2] != 3 {
		t.Fatalf("section 3 = %v", got)
	}
	if _, ok := f.Section(99); ok {
		t.Fatal("found nonexistent section 99")
	}
}

func mustSection(t *testing.T, f *File, id uint32) []byte {
	t.Helper()
	sec, ok := f.Section(id)
	if !ok {
		t.Fatalf("missing section %d", id)
	}
	return sec
}

func TestOpenFileMapped(t *testing.T) {
	data := testBundle(t)
	path := filepath.Join(t.TempDir(), "t.rlcs")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Mapped() {
		t.Log("bundle not memory-mapped; exercising the heap fallback")
	}
	if err := f.VerifyAll(); err != nil {
		t.Fatal(err)
	}
	if f.Size() != int64(len(data)) {
		t.Fatalf("Size = %d, want %d", f.Size(), len(data))
	}
	if !bytes.Equal(mustSection(t, f, 1), []byte{0xde, 0xad}) {
		t.Fatal("section 1 mismatch through mmap")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Double close is a no-op.
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTruncation feeds every prefix of a valid bundle to the reader: each
// must either fail with a typed ErrCorrupt or (when the cut lands beyond the
// table) parse with intact sections still verifiable — never panic.
func TestTruncation(t *testing.T) {
	data := testBundle(t)
	for n := 0; n < len(data); n++ {
		f, err := OpenBytes(data[:n])
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("prefix %d: error not typed ErrCorrupt: %v", n, err)
			}
			continue
		}
		// Structural parse can succeed only if every table entry still fits;
		// checksums must still hold for whatever is claimed in bounds.
		if err := f.VerifyAll(); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: verify error not typed: %v", n, err)
		}
	}
}

// TestMutations corrupts targeted container fields and requires a typed
// error from parse or verification.
func TestMutations(t *testing.T) {
	base := testBundle(t)
	le := binary.LittleEndian
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"magic", func(b []byte) { b[0] = 'X' }},
		{"version", func(b []byte) { le.PutUint32(b[4:], 99) }},
		{"count-garbage", func(b []byte) { le.PutUint32(b[8:], 1<<30) }},
		{"table-crc", func(b []byte) { b[12] ^= 0xff }},
		{"section-offset-oob", func(b []byte) {
			// First table entry's offset field.
			le.PutUint64(b[headerSize+8:], uint64(len(b)+8))
			fixTableCRC(b)
		}},
		{"section-offset-misaligned", func(b []byte) {
			le.PutUint64(b[headerSize+8:], le.Uint64(b[headerSize+8:])+1)
			fixTableCRC(b)
		}},
		{"section-length-oob", func(b []byte) {
			le.PutUint64(b[headerSize+16:], uint64(len(b)))
			fixTableCRC(b)
		}},
		{"duplicate-id", func(b []byte) {
			// Rename section 7 to 1.
			le.PutUint32(b[headerSize+tableEntrySize:], 1)
			fixTableCRC(b)
		}},
		{"overlap", func(b []byte) {
			// Point section 3 at section 1's payload region.
			first := le.Uint64(b[headerSize+8:])
			le.PutUint64(b[headerSize+2*tableEntrySize+8:], first)
			fixTableCRC(b)
		}},
		{"payload-bitflip", func(b []byte) {
			off := le.Uint64(b[headerSize+8:])
			b[off] ^= 0x01
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), base...)
			tc.mutate(b)
			f, err := OpenBytes(b)
			if err == nil {
				err = f.VerifyAll()
			}
			if err == nil {
				t.Fatal("mutation went undetected")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error not typed ErrCorrupt: %v", err)
			}
		})
	}
}

// fixTableCRC recomputes the header's table checksum after a test mutated
// the table, so the mutation under test is reached instead of masked.
func fixTableCRC(b []byte) {
	le := binary.LittleEndian
	count := int(le.Uint32(b[8:]))
	table := b[headerSize : headerSize+count*tableEntrySize]
	le.PutUint32(b[12:], crc32.Checksum(table, castagnoli))
}

func TestViewsRoundTrip(t *testing.T) {
	i32 := []int32{0, 1, -1, 1 << 30, -(1 << 30)}
	if got := I32s[int32](I32Bytes(i32)); len(got) != len(i32) {
		t.Fatalf("I32s len = %d", len(got))
	} else {
		for i := range i32 {
			if got[i] != i32[i] {
				t.Fatalf("I32s[%d] = %d, want %d", i, got[i], i32[i])
			}
		}
	}
	i64 := []int64{0, 1, -1, 1 << 40, -(1 << 40)}
	got := I64s(I64Bytes(i64))
	for i := range i64 {
		if got[i] != i64[i] {
			t.Fatalf("I64s[%d] = %d, want %d", i, got[i], i64[i])
		}
	}
	// A misaligned buffer must take the copy path and still decode right.
	raw := make([]byte, 4*3+1)
	copy(raw[1:], I32Bytes([]int32{5, -6, 7}))
	odd := I32s[int32](raw[1:])
	if odd[0] != 5 || odd[1] != -6 || odd[2] != 7 {
		t.Fatalf("misaligned I32s = %v", odd)
	}
}

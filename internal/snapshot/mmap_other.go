//go:build !unix

package snapshot

import (
	"errors"
	"os"
)

var errNoMmap = errors.New("snapshot: memory mapping not supported on this platform")

// mmap always fails here; Open falls back to reading the file into the heap.
func mmap(f *os.File, size int) ([]byte, func() error, error) {
	return nil, nil, errNoMmap
}

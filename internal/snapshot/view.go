package snapshot

import (
	"encoding/binary"
	"unsafe"
)

// hostLittleEndian reports whether the host's native byte order matches the
// bundle's on-disk order. On the (overwhelmingly common) little-endian
// hosts, typed views are direct casts of the mapping; big-endian hosts take
// the decode-and-copy path below, so bundles stay portable.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// HostLittleEndian reports whether the host's native byte order matches the
// bundle's on-disk (little-endian) order — the precondition for every
// zero-copy cast. Exported so payload decoders (internal/core's entry-array
// view) share one probe instead of re-deriving it.
func HostLittleEndian() bool { return hostLittleEndian }

// viewable reports whether b can be reinterpreted in place as elements of
// size and alignment elem: native byte order, suitable pointer alignment,
// and a length that divides evenly. The container aligns every section to 8
// bytes, so mapped sections always qualify on little-endian hosts; the
// checks make OpenBytes safe on arbitrarily sliced buffers too.
func viewable(b []byte, elem uintptr) bool {
	return hostLittleEndian && len(b)%int(elem) == 0 &&
		(len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%elem == 0)
}

// I32s returns b as little-endian 32-bit values of any int32-kinded type
// (vertex ids, labels) — a zero-copy view when possible, a decoded copy
// otherwise. The caller must have checked len(b)%4 == 0.
//
//rlc:view
func I32s[T ~int32](b []byte) []T {
	if len(b) == 0 {
		return nil
	}
	if viewable(b, 4) {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]T, len(b)/4)
	for i := range out {
		out[i] = T(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// U32s returns b as little-endian uint32s (the tier union-set id arrays) —
// a zero-copy view when possible, a decoded copy otherwise. The caller must
// have checked len(b)%4 == 0.
//
//rlc:view
func U32s(b []byte) []uint32 {
	if len(b) == 0 {
		return nil
	}
	if viewable(b, 4) {
		return unsafe.Slice((*uint32)(unsafe.Pointer(&b[0])), len(b)/4)
	}
	out := make([]uint32, len(b)/4)
	for i := range out {
		out[i] = binary.LittleEndian.Uint32(b[i*4:])
	}
	return out
}

// I64s returns b as little-endian int64s — a zero-copy view when possible, a
// decoded copy otherwise. The caller must have checked len(b)%8 == 0.
//
//rlc:view
func I64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	if viewable(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// U64s returns b as little-endian uint64s (the packed MR-set pool) — a
// zero-copy view when possible, a decoded copy otherwise. The caller must
// have checked len(b)%8 == 0.
//
//rlc:view
func U64s(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	if viewable(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
	}
	out := make([]uint64, len(b)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

// I32Bytes returns the raw little-endian bytes of s for writing — the
// inverse view of I32s, copying only on big-endian hosts.
//
//rlc:view
func I32Bytes[T ~int32](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// U32Bytes returns the raw little-endian bytes of s for writing.
//
//rlc:view
func U32Bytes(s []uint32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], v)
	}
	return out
}

// I64Bytes returns the raw little-endian bytes of s for writing.
//
//rlc:view
func I64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// U64Bytes returns the raw little-endian bytes of s for writing.
//
//rlc:view
func U64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittleEndian {
		return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], v)
	}
	return out
}

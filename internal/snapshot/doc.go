// Package snapshot implements the v2 bundle container: a single
// self-describing file holding checksummed binary sections that can be
// memory-mapped and handed out as zero-copy typed views.
//
// The container knows nothing about graphs or indexes — it stores opaque
// sections identified by small integer ids. internal/core defines the
// section ids and payload layouts of the RLC snapshot bundle on top of it
// (see core's snapshot.go and the "Snapshot format v2" section of
// ARCHITECTURE.md for the byte layout).
//
// A bundle is laid out as
//
//	header:  magic "RLCS" | version u32 | section count u32 | table crc32c u32
//	table:   per section: id u32 | payload crc32c u32 | offset u64 | length u64
//	payload: section bytes, each section 8-byte aligned, zero padding between
//
// all little-endian. Open memory-maps the file read-only (falling back to a
// plain read into the heap on platforms without mmap) and validates the
// header and table structurally — O(1) in the payload size. Section payload
// checksums are verified by VerifySection/VerifyAll, which the serving layer
// runs before hot-swapping a freshly opened bundle in.
//
// Every corruption detected anywhere in the container wraps ErrCorrupt, so
// callers can classify failures with errors.Is regardless of which layer
// noticed first.
package snapshot

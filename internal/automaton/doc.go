// Package automaton builds the nondeterministic finite automata that guide
// the online-traversal baselines of the paper (Section III-B): an RLC
// constraint L+ = (l1 ... lk)+ compiles to a compact cyclic automaton, and
// extended constraints such as a+ ∘ b+ (query Q4 of Section VI-C) compile to
// a chain of such cycles.
//
// The state space is deliberately tiny (one state per label occurrence plus
// one accept state), which is the minimal NFA for these expression shapes,
// so no separate minimization pass is required.
package automaton

package automaton

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// Segment is one piece of a path expression: a concatenation of labels,
// optionally under the Kleene plus. (a b)+ is {Labels: (a,b), Plus: true};
// a bare label a is {Labels: (a), Plus: false}.
type Segment struct {
	Labels labelseq.Seq
	Plus   bool
}

// Expr is a path expression: the concatenation of its segments. The paper's
// RLC queries are single-segment expressions with Plus set; the extended
// query Q4 is the two-segment expression a+ ∘ b+.
type Expr struct {
	Segments []Segment
}

// Plus returns the single-segment RLC expression L+.
func Plus(l labelseq.Seq) Expr {
	return Expr{Segments: []Segment{{Labels: l.Clone(), Plus: true}}}
}

// ConcatPlus returns the expression l1+ ∘ l2+ ∘ ... for the given segments.
func ConcatPlus(ls ...labelseq.Seq) Expr {
	e := Expr{}
	for _, l := range ls {
		e.Segments = append(e.Segments, Segment{Labels: l.Clone(), Plus: true})
	}
	return e
}

// String renders the expression with numeric labels, e.g. "(l0 l1)+ l2+".
func (e Expr) String() string {
	var b strings.Builder
	for i, s := range e.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if len(s.Labels) == 1 {
			fmt.Fprintf(&b, "l%d", s.Labels[0])
		} else {
			b.WriteByte('(')
			for j, l := range s.Labels {
				if j > 0 {
					b.WriteByte(' ')
				}
				fmt.Fprintf(&b, "l%d", l)
			}
			b.WriteByte(')')
		}
		if s.Plus {
			b.WriteByte('+')
		}
	}
	return b.String()
}

// State is an NFA state id. State 0 is always the start state.
type State = int32

// NFA is a nondeterministic automaton over edge labels with a single accept
// state. The zero value is not usable; build one with Compile or NewPlus.
type NFA struct {
	numStates int
	numLabels int
	accept    State
	// step[q*numLabels+l] is the bitset of states reachable from q on l.
	// Automata built here have at most 63 states (enforced by Compile).
	step []uint64
	expr Expr
}

// MaxStates bounds the automaton size so state sets fit one uint64 word.
// Expressions from the paper's workloads use at most k+1 states per segment
// with k <= 4, far below the bound.
const MaxStates = 63

// ErrTooLarge reports an expression that exceeds MaxStates.
var ErrTooLarge = errors.New("automaton: expression needs too many states")

// ErrEmpty reports an expression with no labels.
var ErrEmpty = errors.New("automaton: empty expression")

// NewPlus compiles the RLC constraint L+ directly.
func NewPlus(l labelseq.Seq, numLabels int) (*NFA, error) {
	return Compile(Plus(l), numLabels)
}

// Compile builds the NFA for an expression over a label universe of size
// numLabels. Within a segment (a1 ... am)+ the states form a cycle of
// length m; completing the final segment reaches the accept state.
func Compile(e Expr, numLabels int) (*NFA, error) {
	if len(e.Segments) == 0 {
		return nil, ErrEmpty
	}
	total := 0
	for _, s := range e.Segments {
		if len(s.Labels) == 0 {
			return nil, ErrEmpty
		}
		for _, l := range s.Labels {
			if l < 0 || int(l) >= numLabels {
				return nil, fmt.Errorf("automaton: label %d outside universe of size %d", l, numLabels)
			}
		}
		total += len(s.Labels)
	}
	if total+1 > MaxStates {
		return nil, ErrTooLarge
	}

	n := &NFA{
		numStates: total + 1,
		numLabels: numLabels,
		accept:    State(total),
		step:      make([]uint64, (total+1)*numLabels),
		expr:      e,
	}
	// segStart[i] is the state reading the first label of segment i.
	segStart := make([]State, len(e.Segments)+1)
	q := State(0)
	for i, s := range e.Segments {
		segStart[i] = q
		q += State(len(s.Labels))
	}
	segStart[len(e.Segments)] = n.accept

	q = 0
	for i, s := range e.Segments {
		m := len(s.Labels)
		for j, l := range s.Labels {
			from := q + State(j)
			if j+1 < m {
				n.addEdge(from, l, from+1)
				continue
			}
			// Completing the segment: loop back when Plus, and move on
			// (to the next segment start, or accept).
			if s.Plus {
				n.addEdge(from, l, segStart[i])
			}
			n.addEdge(from, l, segStart[i+1])
		}
		q += State(m)
	}
	return n, nil
}

func (n *NFA) addEdge(from State, l labelseq.Label, to State) {
	n.step[int(from)*n.numLabels+int(l)] |= 1 << uint(to)
}

// NumStates returns the number of states including the accept state.
func (n *NFA) NumStates() int { return n.numStates }

// NumLabels returns the size of the label universe.
func (n *NFA) NumLabels() int { return n.numLabels }

// Accept returns the accept state.
func (n *NFA) Accept() State { return n.accept }

// Expr returns the expression the automaton was compiled from.
func (n *NFA) Expr() Expr { return n.expr }

// StartSet returns the bitset containing only the start state.
func (n *NFA) StartSet() uint64 { return 1 }

// AcceptSet returns the bitset containing only the accept state.
func (n *NFA) AcceptSet() uint64 { return 1 << uint(n.accept) }

// Step returns the states reachable from q on label l, as a bitset.
func (n *NFA) Step(q State, l labelseq.Label) uint64 {
	return n.step[int(q)*n.numLabels+int(l)]
}

// StepSet advances a whole state set on label l.
func (n *NFA) StepSet(set uint64, l labelseq.Label) uint64 {
	var out uint64
	for s := set; s != 0; s &= s - 1 {
		q := trailingZeros(s)
		out |= n.step[q*n.numLabels+int(l)]
	}
	return out
}

// Accepts reports whether the automaton accepts the label sequence.
func (n *NFA) Accepts(seq labelseq.Seq) bool {
	set := n.StartSet()
	for _, l := range seq {
		if l < 0 || int(l) >= n.numLabels {
			return false
		}
		set = n.StepSet(set, l)
		if set == 0 {
			return false
		}
	}
	return set&n.AcceptSet() != 0
}

// ReverseState maps an original state id to the id of the corresponding
// state in Reverse()'s automaton (the involution that swaps the start and
// accept ids and fixes everything else). Bidirectional searches use it to
// detect frontier meetings.
func (n *NFA) ReverseState(q State) State {
	switch q {
	case 0:
		return n.accept
	case n.accept:
		return 0
	}
	return q
}

// Reverse returns the automaton with all transitions reversed, its start at
// the original accept state, and its accept at the original start state.
// Backward searches (and the backward half of BiBFS) run on the reverse.
// State q of the original corresponds to state ReverseState(q) of the
// result.
func (n *NFA) Reverse() *NFA {
	r := &NFA{
		numStates: n.numStates,
		numLabels: n.numLabels,
		// Original start state is 0; it becomes the reverse accept.
		accept: 0,
		step:   make([]uint64, len(n.step)),
		expr:   n.expr,
	}
	// In the reversed automaton the start must be the original accept.
	// Renumber states so the original accept becomes 0 and the original
	// start becomes the reverse accept: swap ids 0 and n.accept.
	ren := func(q State) State {
		switch q {
		case 0:
			return n.accept
		case n.accept:
			return 0
		default:
			return q
		}
	}
	r.accept = ren(0)
	for q := 0; q < n.numStates; q++ {
		for l := 0; l < n.numLabels; l++ {
			targets := n.step[q*n.numLabels+l]
			for s := targets; s != 0; s &= s - 1 {
				to := State(trailingZeros(s))
				r.step[int(ren(to))*n.numLabels+l] |= 1 << uint(ren(State(q)))
			}
		}
	}
	return r
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

package automaton

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// Parse reads a path expression in the tool syntax used by the CLIs and
// examples. Labels are whitespace-separated tokens; a parenthesized group or
// single label may carry a '+' suffix:
//
//	"(debits credits)+"     the RLC constraint of Example 1
//	"knows+"                a single-label RLC constraint
//	"a+ b+"                 the extended query Q4
//	"(a b)+ c+"             mixed segments
//
// resolve maps a label token to its id; pass a graph-backed resolver or
// NumericLabels for "l0"/"0"-style tokens.
func Parse(s string, resolve func(string) (labelseq.Label, bool)) (Expr, error) {
	var e Expr
	rest := strings.TrimSpace(s)
	for rest != "" {
		var seg Segment
		var err error
		seg, rest, err = parseSegment(rest, resolve)
		if err != nil {
			return Expr{}, err
		}
		e.Segments = append(e.Segments, seg)
	}
	if len(e.Segments) == 0 {
		return Expr{}, fmt.Errorf("automaton: empty expression %q", s)
	}
	return e, nil
}

func parseSegment(s string, resolve func(string) (labelseq.Label, bool)) (Segment, string, error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "(") {
		close := strings.IndexByte(s, ')')
		if close < 0 {
			return Segment{}, "", fmt.Errorf("automaton: unclosed '(' in %q", s)
		}
		inner := s[1:close]
		rest := s[close+1:]
		plus := false
		if strings.HasPrefix(rest, "+") {
			plus = true
			rest = rest[1:]
		}
		labels, err := parseLabels(strings.Fields(inner), resolve)
		if err != nil {
			return Segment{}, "", err
		}
		if len(labels) == 0 {
			return Segment{}, "", fmt.Errorf("automaton: empty group in %q", s)
		}
		return Segment{Labels: labels, Plus: plus}, rest, nil
	}
	// A bare token, optionally with a '+' suffix.
	end := strings.IndexAny(s, " \t(")
	var tok, rest string
	if end < 0 {
		tok, rest = s, ""
	} else {
		tok, rest = s[:end], s[end:]
	}
	plus := strings.HasSuffix(tok, "+")
	tok = strings.TrimSuffix(tok, "+")
	labels, err := parseLabels([]string{tok}, resolve)
	if err != nil {
		return Segment{}, "", err
	}
	return Segment{Labels: labels, Plus: plus}, rest, nil
}

func parseLabels(toks []string, resolve func(string) (labelseq.Label, bool)) (labelseq.Seq, error) {
	var out labelseq.Seq
	for _, t := range toks {
		l, ok := resolve(t)
		if !ok {
			return nil, fmt.Errorf("automaton: unknown label %q", t)
		}
		out = append(out, l)
	}
	return out, nil
}

// ParseForGraph parses an expression resolving label tokens against g's
// label names first and the "l0"/"0" numeric forms second (bounded by g's
// label count). Every surface that parses user expressions — the rlc
// facade, the CLIs, the HTTP server — goes through this one resolver, so
// the accepted token forms cannot drift between them.
func ParseForGraph(s string, g *graph.Graph) (Expr, error) {
	return Parse(s, func(tok string) (labelseq.Label, bool) {
		if l, ok := g.LabelByName(tok); ok {
			return l, true
		}
		l, ok := NumericLabels(tok)
		if !ok || int(l) >= g.NumLabels() {
			return l, false
		}
		return l, ok
	})
}

// NumericLabels resolves tokens of the form "l3" or "3" to label 3. Use it
// when the graph has no label names. Tokens outside the dense int32 label
// id space are rejected rather than silently truncated.
func NumericLabels(tok string) (labelseq.Label, bool) {
	t := strings.TrimPrefix(tok, "l")
	n, err := strconv.Atoi(t)
	if err != nil || n < 0 || int64(n) > math.MaxInt32 {
		return labelseq.NoLabel, false
	}
	return labelseq.Label(n), true
}

package automaton

import (
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// regexOf renders an expression as a stdlib regexp over letters
// ('a' + label), anchored, for cross-validation.
func regexOf(e Expr) *regexp.Regexp {
	var b strings.Builder
	b.WriteString(`\A`)
	for _, s := range e.Segments {
		b.WriteString("(?:")
		for _, l := range s.Labels {
			b.WriteByte(byte('a' + l))
		}
		b.WriteString(")")
		if s.Plus {
			b.WriteString("+")
		}
	}
	b.WriteString(`\z`)
	return regexp.MustCompile(b.String())
}

func wordOf(seq labelseq.Seq) string {
	var b strings.Builder
	for _, l := range seq {
		b.WriteByte(byte('a' + l))
	}
	return b.String()
}

func TestPlusAutomatonBasics(t *testing.T) {
	n, err := NewPlus(labelseq.Seq{0, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		seq  labelseq.Seq
		want bool
	}{
		{labelseq.Seq{}, false},
		{labelseq.Seq{0}, false},
		{labelseq.Seq{0, 1}, true},
		{labelseq.Seq{1, 0}, false},
		{labelseq.Seq{0, 1, 0}, false},
		{labelseq.Seq{0, 1, 0, 1}, true},
		{labelseq.Seq{0, 1, 0, 1, 0, 1}, true},
		{labelseq.Seq{0, 2, 0, 1}, false},
	}
	for _, c := range cases {
		if got := n.Accepts(c.seq); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestAcceptsMatchesRegexpRandom(t *testing.T) {
	r := rand.New(rand.NewSource(20))
	exprs := []Expr{
		Plus(labelseq.Seq{0}),
		Plus(labelseq.Seq{0, 1}),
		Plus(labelseq.Seq{0, 1, 2}),
		Plus(labelseq.Seq{1, 1, 0}),
		ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}),
		ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{2}),
		{Segments: []Segment{{Labels: labelseq.Seq{0}, Plus: false}, {Labels: labelseq.Seq{1}, Plus: true}}},
		{Segments: []Segment{{Labels: labelseq.Seq{0, 2}, Plus: false}}},
	}
	for _, e := range exprs {
		nfa, err := Compile(e, 3)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		re := regexOf(e)
		for i := 0; i < 3000; i++ {
			seq := make(labelseq.Seq, r.Intn(10))
			for j := range seq {
				seq[j] = labelseq.Label(r.Intn(3))
			}
			got := nfa.Accepts(seq)
			want := re.MatchString(wordOf(seq))
			if got != want {
				t.Fatalf("expr %v, seq %v: automaton=%v regexp=%v", e, seq, got, want)
			}
		}
	}
}

func TestReverseAcceptsReversedWords(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	exprs := []Expr{
		Plus(labelseq.Seq{0, 1}),
		ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1, 2}),
		Plus(labelseq.Seq{2}),
	}
	for _, e := range exprs {
		nfa, err := Compile(e, 3)
		if err != nil {
			t.Fatal(err)
		}
		rev := nfa.Reverse()
		for i := 0; i < 3000; i++ {
			seq := make(labelseq.Seq, r.Intn(9))
			for j := range seq {
				seq[j] = labelseq.Label(r.Intn(3))
			}
			rseq := make(labelseq.Seq, len(seq))
			for j := range seq {
				rseq[len(seq)-1-j] = seq[j]
			}
			if nfa.Accepts(seq) != rev.Accepts(rseq) {
				t.Fatalf("expr %v: seq %v accepted=%v but reverse(%v)=%v",
					e, seq, nfa.Accepts(seq), rseq, rev.Accepts(rseq))
			}
		}
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(Expr{}, 2); err == nil {
		t.Error("empty expression should fail")
	}
	if _, err := Compile(Expr{Segments: []Segment{{Labels: labelseq.Seq{}}}}, 2); err == nil {
		t.Error("empty segment should fail")
	}
	if _, err := Compile(Plus(labelseq.Seq{5}), 2); err == nil {
		t.Error("out-of-universe label should fail")
	}
	big := make(labelseq.Seq, MaxStates+1)
	if _, err := Compile(Plus(big), 1); err == nil {
		t.Error("oversized expression should fail")
	}
}

func TestAcceptsRejectsForeignLabels(t *testing.T) {
	n, err := NewPlus(labelseq.Seq{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.Accepts(labelseq.Seq{7}) {
		t.Error("label outside universe must be rejected")
	}
	if n.Accepts(labelseq.Seq{-1}) {
		t.Error("negative label must be rejected")
	}
}

func TestExprString(t *testing.T) {
	e := ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{2})
	if got := e.String(); got != "(l0 l1)+ l2+" {
		t.Errorf("String = %q", got)
	}
	plain := Expr{Segments: []Segment{{Labels: labelseq.Seq{1}}}}
	if got := plain.String(); got != "l1" {
		t.Errorf("String = %q", got)
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"l0+", "l0+"},
		{"(l0 l1)+", "(l0 l1)+"},
		{"l0+ l1+", "l0+ l1+"},
		{"(l0 l1)+ l2+", "(l0 l1)+ l2+"},
		{"0+", "l0+"},
		{"(2 0)+", "(l2 l0)+"},
		{"l1", "l1"},
	}
	for _, c := range cases {
		e, err := Parse(c.in, NumericLabels)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got := e.String(); got != c.want {
			t.Errorf("Parse(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "(l0", "()+", "wat+", "(l0 nope)+"} {
		if _, err := Parse(in, NumericLabels); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestParseRoundTripsThroughString(t *testing.T) {
	exprs := []Expr{
		Plus(labelseq.Seq{0}),
		Plus(labelseq.Seq{0, 1, 2}),
		ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{2}),
	}
	for _, e := range exprs {
		back, err := Parse(e.String(), NumericLabels)
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.String(), err)
		}
		if back.String() != e.String() {
			t.Errorf("round trip %q -> %q", e.String(), back.String())
		}
	}
}

func TestStepSetEmpty(t *testing.T) {
	n, err := NewPlus(labelseq.Seq{0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.StepSet(0, 0) != 0 {
		t.Error("stepping the empty set should stay empty")
	}
	// From start, label 1 has no transition.
	if n.StepSet(n.StartSet(), 1) != 0 {
		t.Error("invalid label from start should yield empty set")
	}
}

package automaton

import (
	"testing"

	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// FuzzParse hardens the expression parser: arbitrary input must either
// produce a parse error or an expression that compiles and round-trips.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"l0+", "(l0 l1)+", "l0+ l1+", "(l0 l1)+ l2+", "l1", "(2 0)+",
		"", "(", ")+", "((", "l0++", "a b c", "(l0", "+", "l0 (l1)+",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		e, err := Parse(input, NumericLabels)
		if err != nil {
			return
		}
		// A successful parse must render and re-parse to the same shape.
		back, err := Parse(e.String(), NumericLabels)
		if err != nil {
			t.Fatalf("round trip of %q -> %q failed: %v", input, e.String(), err)
		}
		if back.String() != e.String() {
			t.Fatalf("round trip changed %q -> %q", e.String(), back.String())
		}
		// And must compile whenever its labels fit a universe.
		maxLabel := labelseq.Label(-1)
		total := 0
		for _, seg := range e.Segments {
			total += len(seg.Labels)
			for _, l := range seg.Labels {
				if l > maxLabel {
					maxLabel = l
				}
			}
		}
		if maxLabel >= 0 && maxLabel < 1000 && total+1 <= MaxStates {
			if _, err := Compile(e, int(maxLabel)+1); err != nil {
				t.Fatalf("parsed expression %q does not compile: %v", e.String(), err)
			}
		}
	})
}

// Package pinrelease_a seeds pin lifecycle violations for the pinrelease
// analyzer. Every `// want` comment is an expected diagnostic.
package pinrelease_a

import "errors"

var errClosed = errors.New("closed")

type state struct{ refs int }

// release drops one reference.
//
//rlc:release
func (s *state) release() {}

type store struct{ cur *state }

// acquire pins the current state; nil after close.
//
//rlc:acquire
func (s *store) acquire() *state { return s.cur }

func work() error { return nil }

func okDefer(s *store) error {
	st := s.acquire()
	defer st.release()
	return work()
}

func okNilGuard(s *store) error {
	st := s.acquire()
	if st == nil {
		return errClosed
	}
	defer st.release()
	return work()
}

func okImmediateRelease(s *store) int {
	st := s.acquire()
	n := st.refs
	st.release()
	return n
}

func leakOnEarlyReturn(s *store) error {
	st := s.acquire()
	if err := work(); err != nil {
		return err // want `pin "st" \(acquired at line \d+\) is not released on this path to return: leak`
	}
	st.release() // want `released without defer across 1 intervening call\(s\)`
	return nil
}

func leakAtExit(s *store) {
	st := s.acquire()
	if st != nil {
		_ = st.refs
	}
} // want `pin "st" \(acquired at line \d+\) is not released on this path to function exit: leak`

func doubleRelease(s *store) {
	st := s.acquire()
	st.release()
	st.release() // want `released twice on this path: double release`
}

func doubleDefer(s *store) {
	st := s.acquire()
	defer st.release()
	defer st.release() // want `two deferred releases: double release`
}

func releaseAfterDefer(s *store) {
	st := s.acquire()
	defer st.release()
	st.release() // want `released explicitly after a deferred release: double release`
}

func bareReleaseAcrossCalls(s *store) {
	st := s.acquire()
	work()
	work()
	st.release() // want `released without defer across 2 intervening call\(s\)`
}

func droppedAcquire(s *store) {
	s.acquire() // want `result of acquire is dropped`
}

func reassignWhileHeld(s *store) {
	st := s.acquire()
	st = s.acquire() // want `pin "st" reassigned while still held`
	st.release()
}

func okReturnTransfersPin(s *store) *state {
	st := s.acquire()
	return st
}

func okSendTransfersPin(s *store, ch chan *state) {
	st := s.acquire()
	ch <- st
}

func okClosureHandoff(s *store) func() {
	st := s.acquire()
	return func() { st.release() }
}

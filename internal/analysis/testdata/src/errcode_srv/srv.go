// Package errcode_srv imports errcode_dep and must map every exported Err*
// sentinel of that package; errcode_dep.ErrBoom is missing, so the mapping
// function is flagged.
package errcode_srv

import (
	"errors"

	"errcode_dep"
)

var errLocal = errors.New("local")

// errorCode maps error sentinels to machine-readable wire codes.
//
//rlc:errcode
func errorCode(err error) string { // want `error sentinel errcode_dep\.ErrBoom is not mapped to a machine-readable code in errorCode`
	switch {
	case errors.Is(err, errLocal):
		return "local"
	case errors.Is(err, errcode_dep.ErrMapped):
		return "mapped"
	}
	return "internal"
}

// Serve exercises the dependency so the import is used.
func Serve() error { return errcode_dep.Boom(true) }

// Package errcode_dep exports sentinels that importing packages must map to
// wire codes (ErrQuiet opts out).
package errcode_dep

import "errors"

// ErrBoom is surfaced to clients and needs a wire code downstream.
var ErrBoom = errors.New("boom")

// ErrMapped is surfaced and mapped downstream.
var ErrMapped = errors.New("mapped")

// ErrQuiet never crosses the API boundary.
var ErrQuiet = errors.New("quiet") //rlc:errcode-exempt

// errInternal is unexported: not part of the cross-package contract.
var errInternal = errors.New("internal")

// Boom exercises the sentinels so the package typechecks cleanly.
func Boom(b bool) error {
	if b {
		return ErrBoom
	}
	return errInternal
}

// Package viewescape_a seeds zero-copy view escapes for the viewescape
// analyzer: stores to fields, globals, elements, channel sends, returns from
// unannotated functions — plus the clean idioms (scoped use, //rlc:view
// propagation, //rlc:viewowner adoption, copy-before-return).
package viewescape_a

type snap struct{ data []int32 }

// i32s returns a zero-copy view of the snapshot payload.
//
//rlc:view
func (s *snap) i32s() []int32 { return s.data }

type holder struct{ kept []int32 }

var global []int32

func storeField(s *snap, h *holder) {
	h.kept = s.i32s() // want `zero-copy view from i32s stored in a struct field`
}

func storeGlobal(s *snap) {
	global = s.i32s() // want `zero-copy view from i32s stored in package-level variable global`
}

func storeElement(s *snap, all [][]int32) {
	all[0] = s.i32s() // want `zero-copy view from i32s stored in a slice or map element`
}

func sendOnChannel(s *snap, ch chan []int32) {
	ch <- s.i32s() // want `zero-copy view from i32s sent on a channel`
}

func returned(s *snap) []int32 {
	return s.i32s() // want `zero-copy view from i32s returned from a function not annotated //rlc:view`
}

func inCompositeLit(s *snap) {
	pairs := [][]int32{
		s.i32s(), // want `zero-copy view from i32s stored in a composite literal`
	}
	_ = pairs
}

// storeThenClear shows why flow-insensitive flagging is right: the store is
// visible to other goroutines before the clear.
func storeThenClear(s *snap, h *holder) {
	h.kept = s.i32s() // want `zero-copy view from i32s stored in a struct field`
	h.kept = nil
}

func taintThroughSlicing(s *snap) []int32 {
	v := s.i32s()
	w := v[1:]
	return w // want `zero-copy view from i32s returned from a function not annotated`
}

func okScopedUse(s *snap) int32 {
	v := s.i32s()
	var sum int32
	for _, x := range v {
		sum += x
	}
	return sum
}

// okViewPropagation may return the borrow: it is itself a view accessor.
//
//rlc:view
func okViewPropagation(s *snap) []int32 {
	return s.i32s()
}

// okAdopt retains views because it owns the mapping's lifetime.
//
//rlc:viewowner
func okAdopt(s *snap, h *holder) {
	h.kept = s.i32s()
}

func okCopyBeforeReturn(s *snap) []int32 {
	v := s.i32s()
	v = append([]int32(nil), v...)
	return v
}

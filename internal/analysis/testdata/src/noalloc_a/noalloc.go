// Package noalloc_a seeds allocating constructs inside //rlc:noalloc
// functions, the call-site flagging of allocating callees, and the
// //rlc:allocok line waiver.
package noalloc_a

import "sync/atomic"

// sum is a clean hot loop.
//
//rlc:noalloc
func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

//rlc:noalloc
func badMake(n int) []int {
	return make([]int, n) // want `make allocates`
}

//rlc:noalloc
func badNew() *int {
	return new(int) // want `new allocates`
}

//rlc:noalloc
func badAppend(xs []int, v int) []int {
	return append(xs, v) // want `append may grow and allocate`
}

//rlc:noalloc
func badClosure() func() int {
	return func() int { return 1 } // want `function literal allocates a closure`
}

//rlc:noalloc
func badGo() {
	go sum(nil) // want `go statement allocates a goroutine`
}

//rlc:noalloc
func badConcat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//rlc:noalloc
func badMapLit() map[int]int {
	return map[int]int{} // want `map literal allocates`
}

//rlc:noalloc
func badSliceLit() []int {
	return []int{1, 2} // want `slice literal allocates`
}

type pair struct{ a, b int }

//rlc:noalloc
func badAddrComposite() *pair {
	return &pair{1, 2} // want `address of composite literal allocates`
}

//rlc:noalloc
func badConv(s string) []byte {
	return []byte(s) // want `conversion string -> \[\]byte allocates`
}

//rlc:noalloc
func badBoxReturn(v int) any {
	return v // want `return value boxed into interface`
}

func sink(v any) {}

//rlc:noalloc
func badBoxArg(x int) {
	sink(x) // want `argument boxed into interface`
}

// helperAlloc is NOT annotated; callers under //rlc:noalloc are flagged at
// the call site.
func helperAlloc(n int) []int {
	return make([]int, n)
}

//rlc:noalloc
func badAllocatingCallee(n int) []int {
	return helperAlloc(n) // want `calls noalloc_a.helperAlloc which allocates \(make allocates`
}

type doer interface{ do() }

//rlc:noalloc
func badInterfaceCall(d doer) {
	d.do() // want `allocation unknowable`
}

//rlc:noalloc
func badFuncValueCall(f func()) {
	f() // want `call through a function value: allocation unknowable`
}

//rlc:noalloc
func okWaivedColdPath(n int) []int {
	//rlc:allocok cold error path, measured off the hot loop
	return make([]int, n)
}

//rlc:noalloc
func okCallsNoalloc(xs []int) int {
	return sum(xs)
}

//rlc:noalloc
func okAtomics(p *atomic.Int64) int64 {
	return p.Load()
}

//rlc:noalloc
func okBuiltins(xs []int, dst []int) int {
	n := copy(dst, xs)
	return n + len(xs) + cap(dst)
}

type empty struct{}

type marker interface{ mark() }

func (empty) mark() {}

// Zero-size values box to the runtime's shared zerobase — no allocation —
// so handing an empty struct across an interface boundary is permitted.
//
//rlc:noalloc
func okZeroSizeBox() marker {
	return empty{}
}

//rlc:noalloc
func badNonZeroBox(n int) any {
	return n // want `boxed into interface`
}

// Package errcode_a seeds an unmapped sentinel for the errcode analyzer:
// the //rlc:errcode mapping function covers errMapped and errCompared but
// not errUnmapped; errExempt opts out explicitly.
package errcode_a

import "errors"

var (
	errMapped   = errors.New("mapped")
	errCompared = errors.New("compared")
	errUnmapped = errors.New("unmapped") // want `error sentinel errUnmapped is not mapped to a machine-readable code in errorCode`
	errExempt   = errors.New("exempt")   //rlc:errcode-exempt
)

// errorCode maps error sentinels to machine-readable wire codes.
//
//rlc:errcode
func errorCode(err error) string {
	switch {
	case errors.Is(err, errMapped):
		return "mapped"
	case err == errCompared:
		return "compared"
	}
	return "internal"
}

// Package pinrelease_loop seeds loop-shaped pin lifecycle cases: deferred
// release inside a loop (accumulates pins), release of an outer pin inside a
// loop (double release after one iteration), and the two clean idioms —
// per-iteration acquire/release and extracting the body into a closure.
package pinrelease_loop

type state struct{ refs int }

// release drops one reference.
//
//rlc:release
func (s *state) release() {}

type store struct{ cur *state }

// acquire pins the current state.
//
//rlc:acquire
func (s *store) acquire() *state { return s.cur }

func work() error { return nil }

func deferInLoop(s *store) {
	for i := 0; i < 3; i++ {
		st := s.acquire()
		defer st.release() // want `deferred release of pin "st" inside a loop runs only at function exit`
		work()
	}
}

func releaseOfOuterPinInLoop(s *store) {
	st := s.acquire()
	for i := 0; i < 3; i++ {
		st.release() // want `pin "st" acquired outside this loop is released inside it: double release after one iteration`
	}
} // want `pin "st" \(acquired at line \d+\) is not released on this path to function exit: leak`

func okPerIterationRelease(s *store) {
	for i := 0; i < 3; i++ {
		st := s.acquire()
		st.release()
	}
}

func okLoopBodyExtracted(s *store) {
	for i := 0; i < 3; i++ {
		func() {
			st := s.acquire()
			defer st.release()
			work()
		}()
	}
}

// releaseHelper is the deferred-cleanup-helper idiom: the caller hands the
// pin over, so its local tracking ends at the defer site.
func releaseHelper(st *state) {
	if st != nil {
		st.release()
	}
}

func okHelperTransfer(s *store) {
	st := s.acquire()
	defer releaseHelper(st)
	work()
}

package analysis

import (
	"go/ast"
	"go/types"
)

// ViewEscape enforces the borrow discipline of zero-copy snapshot views:
// a slice produced by an //rlc:view accessor aliases mmap'd memory that is
// only valid while the producing snapshot's generation is pinned, so it
// must stay within the scope that produced it. Storing one into a struct
// field, global, slice/map element, or composite literal, sending it on a
// channel, or returning it from an unannotated function lets it outlive the
// pin — a use-after-unmap once the generation is retired.
//
// Two annotations shape the rules: a function annotated //rlc:view may
// return a view (the borrow propagates to its caller, which is checked in
// turn), and a function annotated //rlc:viewowner may retain views because
// it manages the mapping's lifetime (the snapshot adoption path).
var ViewEscape = &Analyzer{
	Name: "viewescape",
	Doc: "check that zero-copy //rlc:view slices are never stored, sent, or " +
		"returned past the pinned scope that produced them",
	Run: runViewEscape,
}

func runViewEscape(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			dirs := pass.Prog.Directives().Of(pass.Pkg.Info.Defs[fn.Name])
			if dirs&dirViewOwner != 0 {
				continue // blessed lifetime owner
			}
			(&viewWalker{
				pass:     pass,
				info:     pass.Pkg.Info,
				mayYield: dirs&dirView != 0,
				tainted:  make(map[*types.Var]string),
			}).walk(fn)
		}
	}
	return nil
}

type viewWalker struct {
	pass *Pass
	info *types.Info
	// mayYield marks an //rlc:view function: returning a borrow is its
	// contract, not an escape.
	mayYield bool
	// tainted maps local variables to the name of the view accessor whose
	// borrow they hold.
	tainted map[*types.Var]string
}

func (w *viewWalker) walk(fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			w.assign(n)
		case *ast.SendStmt:
			if src, ok := w.viewSource(n.Value); ok {
				w.pass.Reportf(n.Value.Pos(), "zero-copy view from %s sent on a channel: the borrow escapes the pinned scope", src)
			}
		case *ast.ReturnStmt:
			if w.mayYield {
				return true
			}
			for _, res := range n.Results {
				if src, ok := w.viewSource(res); ok {
					w.pass.Reportf(res.Pos(), "zero-copy view from %s returned from a function not annotated //rlc:view: the borrow outlives the pinned scope", src)
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				val := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					val = kv.Value
				}
				if src, ok := w.viewSource(val); ok {
					w.pass.Reportf(val.Pos(), "zero-copy view from %s stored in a composite literal: the borrow escapes the pinned scope", src)
				}
			}
		}
		return true
	})
}

// assign records taint for plain local bindings and flags stores that let a
// view outlive its frame.
func (w *viewWalker) assign(n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return // view accessors are single-valued; multi-value RHS carries no borrow
	}
	for i, rhs := range n.Rhs {
		src, isView := w.viewSource(rhs)
		if !isView {
			// Overwriting a tainted variable with a clean value clears it.
			if v := localVar(w.info, n.Lhs[i]); v != nil {
				delete(w.tainted, v)
			}
			continue
		}
		lhs := ast.Unparen(n.Lhs[i])
		if v := localVar(w.info, lhs); v != nil {
			if v.Parent() != nil && v.Parent().Parent() == types.Universe {
				// Package-scope variable: the store is global.
				w.pass.Reportf(lhs.Pos(), "zero-copy view from %s stored in package-level variable %s: the borrow escapes the pinned scope", src, v.Name())
				continue
			}
			w.tainted[v] = src
			continue
		}
		switch lhs.(type) {
		case *ast.SelectorExpr:
			w.pass.Reportf(lhs.Pos(), "zero-copy view from %s stored in a struct field: the borrow escapes the pinned scope", src)
		case *ast.IndexExpr:
			w.pass.Reportf(lhs.Pos(), "zero-copy view from %s stored in a slice or map element: the borrow escapes the pinned scope", src)
		case *ast.StarExpr:
			w.pass.Reportf(lhs.Pos(), "zero-copy view from %s stored through a pointer: the borrow escapes the pinned scope", src)
		}
	}
}

// viewSource reports whether expr carries a view borrow and names its
// producer. Borrows propagate through parens, slicing, and tainted locals.
func (w *viewWalker) viewSource(expr ast.Expr) (string, bool) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		if obj := calleeOf(w.info, e); obj != nil {
			if w.pass.Prog.Directives().Of(obj)&dirView != 0 {
				return obj.Name(), true
			}
		}
	case *ast.Ident:
		if v, ok := w.info.Uses[e].(*types.Var); ok {
			if src, ok := w.tainted[v]; ok {
				return src, true
			}
		}
	case *ast.SliceExpr:
		return w.viewSource(e.X)
	}
	return "", false
}

package analysis

import "testing"

// TestLoadModule type-checks the whole module (and its stdlib dependency
// closure) from source — the foundation every analyzer stands on.
func TestLoadModule(t *testing.T) {
	prog, err := Load(repoRoot(t), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Targets) < 10 {
		t.Fatalf("expected the full module as targets, got %d packages", len(prog.Targets))
	}
	for _, p := range prog.Targets {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
		if p.Info == nil || p.Types == nil {
			t.Errorf("%s: missing type information", p.Path)
		}
	}
}

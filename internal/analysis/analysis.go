package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker. The shape deliberately mirrors
// golang.org/x/tools/go/analysis so the suite could be rebased onto the real
// framework mechanically if the module ever grows the dependency.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI flags.
	Name string
	// Doc is the one-paragraph description `rlcvet -list` prints.
	Doc string
	// Run analyzes one package and reports findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package under analysis.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the whole loaded program: every package with source in the
	// analysis universe, for cross-package lookups (callee bodies,
	// annotations, sentinel scopes).
	Prog *Program
	// Pkg is the package being analyzed.
	Pkg *Package
	// Fset positions every node of every package in Prog.
	Fset *token.FileSet
	// Report delivers one finding.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the analyzer that produced it, and
// the human-readable message.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (fixture packages use their testdata-relative
	// path).
	Path string
	// Name is the package name.
	Name string
	// Files are the parsed source files (comments retained — the directive
	// parser needs them).
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the full go/types fact maps for Files.
	Info *types.Info
	// Standard marks a GOROOT package (type-checked for import resolution
	// only, never analyzed).
	Standard bool
	// Target marks a package matched by the load patterns (analyzed, not
	// just loaded as a dependency).
	Target bool
	// TypeErrors collects type-checker complaints; analyzers still run on
	// packages that loaded with errors only when the driver opts in.
	TypeErrors []error
}

// Program is the closed analysis universe: every package reachable from the
// load patterns, type-checked in dependency order, plus the annotation index
// built over all packages that have source.
type Program struct {
	Fset     *token.FileSet
	Packages map[string]*Package // keyed by Package.Path
	// Targets are the pattern-matched packages, in load order.
	Targets []*Package

	// Unit marks a single-package load driven by `go vet -vettool`, where
	// dependencies exist as export data only. Checks that need callee or
	// cross-package source (noalloc callee verdicts, errcode's imported
	// sentinel sweep) degrade to same-package facts instead of reporting
	// everything outside the universe as unknowable; the standalone
	// whole-program mode remains the authoritative CI gate.
	Unit bool

	directives *directiveIndex
}

// SourcePackage returns the loaded package with source for path, nil if the
// path is unknown or was imported from export data only.
func (prog *Program) SourcePackage(path string) *Package {
	p := prog.Packages[path]
	if p == nil || len(p.Files) == 0 {
		return nil
	}
	return p
}

// PackageOf returns the loaded package that declared obj, nil for builtins
// and objects whose package has no source in the universe.
func (prog *Program) PackageOf(obj types.Object) *Package {
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	return prog.SourcePackage(obj.Pkg().Path())
}

// FuncDeclOf returns the source declaration of fn, nil when the body is not
// part of the universe (standard library, export-data import, interface
// method).
func (prog *Program) FuncDeclOf(fn *types.Func) *ast.FuncDecl {
	pkg := prog.PackageOf(fn)
	if pkg == nil {
		return nil
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// Run executes analyzers over every target package and returns the findings
// sorted by position.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Targets {
			pass := &Pass{
				Analyzer: a,
				Prog:     prog,
				Pkg:      pkg,
				Fset:     prog.Fset,
				Report: func(d Diagnostic) {
					// The suite enforces production-code invariants; test
					// files (loaded in unit mode, where go vet hands over
					// the test variant of a package) may hold pins across
					// assertions or allocate freely.
					if strings.HasSuffix(prog.Fset.Position(d.Pos).Filename, "_test.go") {
						return
					}
					diags = append(diags, d)
				},
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{PinRelease, ViewEscape, NoAlloc, ErrCode}
}

// ByName resolves one analyzer, nil if unknown.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

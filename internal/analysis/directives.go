package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// dirSet is the bitset of //rlc: directives attached to one declaration.
type dirSet uint

const (
	// dirNoAlloc marks a function that must not allocate (noalloc analyzer).
	dirNoAlloc dirSet = 1 << iota
	// dirView marks a function whose result slices borrow mmap'd memory
	// (viewescape analyzer); returning a borrow from a view function
	// propagates the borrow to the caller instead of escaping.
	dirView
	// dirViewOwner marks a function blessed to retain views because it
	// manages the mapping's lifetime (snapshot adoption).
	dirViewOwner
	// dirAcquire marks a function returning an RCU pin (pinrelease).
	dirAcquire
	// dirRelease marks the method that drops an RCU pin (pinrelease).
	dirRelease
	// dirErrCode marks the sentinel-to-wire-code mapping function whose
	// exhaustiveness the errcode analyzer enforces.
	dirErrCode
	// dirErrCodeExempt marks an error sentinel that deliberately carries no
	// wire code.
	dirErrCodeExempt
)

// directiveNames maps the spelling after "//rlc:" to its bit.
var directiveNames = map[string]dirSet{
	"noalloc":        dirNoAlloc,
	"view":           dirView,
	"viewowner":      dirViewOwner,
	"acquire":        dirAcquire,
	"release":        dirRelease,
	"errcode":        dirErrCode,
	"errcode-exempt": dirErrCodeExempt,
}

// directiveIndex resolves declarations to their directives across the whole
// program, plus the per-file //rlc:allocok waiver lines.
type directiveIndex struct {
	objs map[types.Object]dirSet
	// allocok maps filename -> set of waived lines. A waiver comment on
	// line N silences noalloc findings on lines N and N+1, so it works both
	// trailing a statement and on its own line above one.
	allocok map[string]map[int]bool
}

// Directives builds (once) and returns the program-wide directive index.
func (prog *Program) Directives() *directiveIndex {
	if prog.directives != nil {
		return prog.directives
	}
	idx := &directiveIndex{
		objs:    make(map[types.Object]dirSet),
		allocok: make(map[string]map[int]bool),
	}
	for _, pkg := range prog.Packages {
		if pkg.Standard || len(pkg.Files) == 0 {
			continue
		}
		for _, f := range pkg.Files {
			idx.collectFile(prog, pkg, f)
		}
	}
	prog.directives = idx
	return idx
}

// Of returns the directives attached to obj's declaration.
func (idx *directiveIndex) Of(obj types.Object) dirSet {
	if obj == nil {
		return 0
	}
	return idx.objs[obj]
}

// AllocOK reports whether a noalloc finding at file:line is waived.
func (idx *directiveIndex) AllocOK(file string, line int) bool {
	return idx.allocok[file][line]
}

func (idx *directiveIndex) collectFile(prog *Program, pkg *Package, f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, "//rlc:allocok") {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			lines := idx.allocok[pos.Filename]
			if lines == nil {
				lines = make(map[int]bool)
				idx.allocok[pos.Filename] = lines
			}
			lines[pos.Line] = true
			lines[pos.Line+1] = true
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if set := directivesIn(d.Doc); set != 0 {
				if obj := pkg.Info.Defs[d.Name]; obj != nil {
					idx.objs[obj] |= set
				}
			}
		case *ast.GenDecl:
			declSet := directivesIn(d.Doc)
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				set := declSet | directivesIn(vs.Doc) | directivesIn(vs.Comment)
				if set == 0 {
					continue
				}
				for _, name := range vs.Names {
					if obj := pkg.Info.Defs[name]; obj != nil {
						idx.objs[obj] |= set
					}
				}
			}
		}
	}
}

// directivesIn parses every //rlc:<name> line of a comment group.
// //rlc:allocok is positional, not declarative, and is handled separately.
func directivesIn(cg *ast.CommentGroup) dirSet {
	if cg == nil {
		return 0
	}
	var set dirSet
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//rlc:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		set |= directiveNames[name]
	}
	return set
}

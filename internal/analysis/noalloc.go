package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
)

// NoAlloc enforces //rlc:noalloc: the annotated function's body must not
// perform any heap-allocating operation. Flagged constructs: make, new,
// append (which may grow), function literals, slice/map composite literals,
// &composite, string concatenation, string<->[]byte/[]rune conversions,
// go statements, boxing a concrete value into an interface, and calls to
// callees that themselves allocate. Callees with source in the analysis
// universe are checked recursively and the finding is reported at the call
// site; callees without source (interface methods, func values) are flagged
// as unknowable unless allowlisted.
//
// Individual lines can be waived with `//rlc:allocok <reason>` — the waiver
// covers its own line and the next, for cold error paths inside hot
// functions.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc: "check that functions annotated //rlc:noalloc contain no allocating " +
		"operations, recursively through callees with known bodies",
	Run: runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	ac := &allocChecker{
		pass: pass,
		dirs: pass.Prog.Directives(),
		memo: make(map[types.Object]*allocVerdict),
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := pass.Pkg.Info.Defs[fn.Name]
			if ac.dirs.Of(obj)&dirNoAlloc == 0 {
				continue
			}
			ac.checkFunc(pass.Pkg, obj.(*types.Func), fn.Body, func(pos token.Pos, msg string) {
				p := pass.Fset.Position(pos)
				if ac.dirs.AllocOK(p.Filename, p.Line) {
					return
				}
				pass.Reportf(pos, "%s in //rlc:noalloc function %s", msg, fn.Name.Name)
			})
		}
	}
	return nil
}

// allocVerdict memoizes whether a callee's body allocates.
type allocVerdict struct {
	done bool
	bad  bool
	what string // first allocating construct found
}

type allocChecker struct {
	pass *Pass
	dirs *directiveIndex
	memo map[types.Object]*allocVerdict
}

// checkFunc walks one function body and reports every allocating construct.
// pkg is the package that owns the body (callees may live outside pass.Pkg);
// fn supplies the result types for return-boxing checks.
func (ac *allocChecker) checkFunc(pkg *Package, fn *types.Func, body *ast.BlockStmt, report func(token.Pos, string)) {
	info := pkg.Info
	var results *types.Tuple
	if sig, ok := fn.Type().(*types.Signature); ok {
		results = sig.Results()
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "function literal allocates a closure")
			return false // its body runs under the closure's own budget
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
			return false
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.Types[n.X].Type) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			ac.call(pkg, n, report)
			// Arguments were already considered by the call handler for
			// boxing; keep walking them for nested constructs.
		case *ast.AssignStmt:
			ac.boxingInAssign(info, n, report)
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				break
			}
			for i, res := range n.Results {
				if boxes(info, res, results.At(i).Type()) {
					report(res.Pos(), fmt.Sprintf("return value boxed into interface %s", results.At(i).Type()))
				}
			}
		}
		return true
	})
}

// call classifies one call expression: conversions, builtins, allowlisted
// callees, recursively-checked source callees, and unknowable callees.
func (ac *allocChecker) call(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	info := pkg.Info
	if isConversion(info, call) {
		to := info.Types[call.Fun].Type
		from := info.Types[call.Args[0]].Type
		if allocatingConversion(from, to) {
			report(call.Pos(), fmt.Sprintf("conversion %s -> %s allocates", from, to))
		}
		return
	}
	obj := calleeOf(info, call)
	switch callee := obj.(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			report(call.Pos(), "append may grow and allocate")
		}
		// len, cap, copy, delete, clear, min, max, panic, real, imag: free.
		return
	case *types.Func:
		if ac.dirs.Of(callee)&dirNoAlloc != 0 {
			return // checked under its own annotation
		}
		if allowlistedCallee(callee) {
			return
		}
		ac.boxingInCall(info, call, callee, report)
		if v := ac.verdictOf(callee); v != nil && v.bad {
			report(call.Pos(), fmt.Sprintf("calls %s which allocates (%s)", calleeLabel(callee), v.what))
		} else if v == nil && !ac.pass.Prog.Unit {
			// In unit mode dependency bodies are export data only, so an
			// unavailable body is the norm, not a finding; the standalone
			// whole-program run is where this check has teeth.
			report(call.Pos(), fmt.Sprintf("calls %s whose body is outside the analysis universe: allocation unknowable", calleeLabel(callee)))
		}
		return
	default:
		report(call.Pos(), "call through a function value: allocation unknowable")
		return
	}
}

// verdictOf recursively decides whether fn's body allocates, memoized.
// Returns nil when the body is unavailable. Recursion cycles resolve to the
// in-progress (clean-so-far) verdict.
func (ac *allocChecker) verdictOf(fn *types.Func) *allocVerdict {
	if v, ok := ac.memo[fn]; ok {
		return v
	}
	decl := ac.pass.Prog.FuncDeclOf(fn)
	if decl == nil || decl.Body == nil {
		ac.memo[fn] = nil
		return nil
	}
	pkg := ac.pass.Prog.PackageOf(fn)
	v := &allocVerdict{}
	ac.memo[fn] = v // pre-publish for cycles
	ac.checkFunc(pkg, fn, decl.Body, func(pos token.Pos, msg string) {
		p := ac.pass.Fset.Position(pos)
		if ac.dirs.AllocOK(p.Filename, p.Line) {
			return
		}
		if !v.bad {
			v.bad = true
			v.what = fmt.Sprintf("%s at %s:%d", msg, p.Filename, p.Line)
		}
	})
	v.done = true
	return v
}

// boxingInCall flags concrete arguments passed to interface parameters.
func (ac *allocChecker) boxingInCall(info *types.Info, call *ast.CallExpr, callee *types.Func, report func(token.Pos, string)) {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(info, arg, pt) {
			report(arg.Pos(), fmt.Sprintf("argument boxed into interface %s", pt))
		}
	}
}

// boxingInAssign flags concrete values assigned into interface-typed
// variables.
func (ac *allocChecker) boxingInAssign(info *types.Info, n *ast.AssignStmt, report func(token.Pos, string)) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		lt := info.Types[n.Lhs[i]].Type
		if lt == nil && n.Tok == token.DEFINE {
			continue // inferred type equals RHS type: no boxing
		}
		if boxes(info, rhs, lt) {
			report(rhs.Pos(), fmt.Sprintf("value boxed into interface %s", lt))
		}
	}
}

// boxes reports whether storing expr into a destination of type dst converts
// a concrete value to an interface.
func boxes(info *types.Info, expr ast.Expr, dst types.Type) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() {
		return false
	}
	if _, ok := tv.Type.Underlying().(*types.Interface); ok {
		return false // interface-to-interface: no box
	}
	if _, ok := tv.Type.Underlying().(*types.Pointer); ok {
		return false // pointers fit an iface word without allocating
	}
	// Constant small values (untyped bool/int results of comparisons, etc.)
	// still box, but a zero-size value does not: the runtime backs every
	// zero-size box with the shared zerobase allocation, so e.g. boxing
	// context.backgroundCtx{} into context.Context is free.
	if stdSizes.Sizeof(tv.Type) == 0 {
		return false
	}
	return true
}

// stdSizes approximates the gc compiler's layout for the boxing check; only
// "is it zero-size" is asked of it, which every target answers identically.
var stdSizes = types.SizesFor("gc", runtime.GOARCH)

// allocatingConversion reports whether from -> to copies into fresh memory.
func allocatingConversion(from, to types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// allowlistedCallee lists callees known not to allocate even though their
// bodies are outside the recursive check (runtime-implemented, or clean on
// the paths this module exercises).
func allowlistedCallee(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "sync/atomic":
		return true
	case "runtime":
		return fn.Name() == "GOMAXPROCS" || fn.Name() == "Gosched" || fn.Name() == "KeepAlive"
	case "sync":
		return fn.Name() == "Lock" || fn.Name() == "Unlock" ||
			fn.Name() == "RLock" || fn.Name() == "RUnlock" ||
			fn.Name() == "TryLock" || fn.Name() == "Load" || fn.Name() == "Store"
	case "context":
		return fn.Name() == "Err" || fn.Name() == "Done"
	case "errors":
		return fn.Name() == "Is"
	case "math/bits":
		return true
	case "unsafe":
		return true
	}
	return false
}

// calleeLabel renders a callee as package.Func or (pkg.Recv).Method.
func calleeLabel(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", sig.Recv().Type(), fn.Name())
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

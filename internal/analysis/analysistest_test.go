package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// loadFixture parses and type-checks testdata/src/<name> packages into a
// Program, in the order given (earlier packages may be imported by later
// ones under their bare name). Standard-library imports resolve from GOROOT
// source.
func loadFixture(t *testing.T, names ...string) *Program {
	t.Helper()
	prog := &Program{
		Fset:     token.NewFileSet(),
		Packages: make(map[string]*Package),
	}
	stdlib := sourceImporter(prog.Fset)
	for _, name := range names {
		dir := filepath.Join("testdata", "src", name)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("fixture %s: %v", name, err)
		}
		var files []*ast.File
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parse fixture %s: %v", e.Name(), err)
			}
			files = append(files, f)
		}
		imp := func(path string) *types.Package {
			if dep := prog.Packages[path]; dep != nil {
				return dep.Types
			}
			if p, err := stdlib.Import(path); err == nil {
				return p
			}
			return nil
		}
		tpkg, info, errs := typecheck(prog.Fset, name, files, importerFunc(imp))
		if len(errs) > 0 {
			t.Fatalf("typecheck fixture %s: %v", name, errs[0])
		}
		pkg := &Package{Path: name, Name: name, Files: files, Types: tpkg, Info: info, Target: true}
		prog.Packages[name] = pkg
		prog.Targets = append(prog.Targets, pkg)
	}
	return prog
}

// expectation is one `// want "regex"` comment: a diagnostic must match it
// at the same file and line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// wantRE matches one pattern after `// want`: either a double-quoted Go
// string or a backquoted raw string.
var wantRE = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// collectWants scans every fixture file for `// want "..." ["..."]...`
// comments.
func collectWants(t *testing.T, prog *Program) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					const marker = "// want "
					i := strings.Index(c.Text, marker)
					if i < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[i+len(marker):], -1) {
						pat := m[1] // backquoted: raw
						if pat == "" {
							var err error
							if pat, err = strconv.Unquote(m[0]); err != nil {
								t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, m[0], err)
							}
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	return wants
}

// runFixture loads the named fixture packages, runs one analyzer, and
// matches every diagnostic against the `// want` expectations (and vice
// versa), reporting any mismatch.
func runFixture(t *testing.T, a *Analyzer, names ...string) {
	t.Helper()
	prog := loadFixture(t, names...)
	diags, err := prog.Run([]*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	wants := collectWants(t, prog)
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.met || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
	if t.Failed() {
		for _, d := range diags {
			pos := prog.Fset.Position(d.Pos)
			t.Logf("diagnostic: %s:%d: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}

// TestFixtureWantSyntax guards the harness itself: a want comment with a bad
// regexp must fail fast rather than silently match nothing.
func TestFixtureWantSyntax(t *testing.T) {
	if wantRE.FindString(`"a\"b"`) != `"a\"b"` {
		t.Fatal("wantRE does not handle escaped quotes")
	}
	if _, err := strconv.Unquote(wantRE.FindString(fmt.Sprintf("%q", `pin "x"`))); err != nil {
		t.Fatalf("unquote round-trip: %v", err)
	}
}

package analysis

import "testing"

func TestPinRelease(t *testing.T) {
	runFixture(t, PinRelease, "pinrelease_a")
}

func TestPinReleaseLoops(t *testing.T) {
	runFixture(t, PinRelease, "pinrelease_loop")
}

func TestViewEscape(t *testing.T) {
	runFixture(t, ViewEscape, "viewescape_a")
}

func TestNoAlloc(t *testing.T) {
	runFixture(t, NoAlloc, "noalloc_a")
}

func TestErrCode(t *testing.T) {
	runFixture(t, ErrCode, "errcode_a")
}

func TestErrCodeCrossPackage(t *testing.T) {
	runFixture(t, ErrCode, "errcode_dep", "errcode_srv")
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) should be nil")
	}
}

package analysis

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves the object a call expression invokes: the *types.Func
// for static calls and interface method calls, the *types.Builtin for
// builtins, nil for calls through function-typed values.
func calleeOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return info.Uses[id] // generic function instantiation
		}
	case *ast.IndexListExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			return info.Uses[id]
		}
	}
	return nil
}

// localVar resolves expr to the local variable it names, nil for anything
// that is not a plain (possibly parenthesized) identifier for a *types.Var.
func localVar(info *types.Info, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		v, _ = info.Defs[id].(*types.Var)
	}
	return v
}

// isNilIdent reports whether expr is the predeclared nil.
func isNilIdent(info *types.Info, expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load enumerates patterns (e.g. "./...") with the go command from dir and
// type-checks every reachable package from source, dependencies first, into
// one Program. Cgo is disabled for the enumeration so every package resolves
// to pure-Go files the type checker can consume; the module has no cgo, so
// analysis results are unaffected.
//
// Standard-library dependencies are type-checked from GOROOT source purely
// to resolve imports; only pattern-matched packages become analysis targets.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var metas []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("load %s: %s", lp.ImportPath, lp.Error.Err)
		}
		metas = append(metas, &lp)
	}

	prog := &Program{
		Fset:     token.NewFileSet(),
		Packages: make(map[string]*Package),
	}
	// -deps emits dependencies before dependents, so one forward pass
	// type-checks everything with all imports already resolved.
	for _, lp := range metas {
		pkg, err := typecheckListed(prog, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages[lp.ImportPath] = pkg
		if !lp.DepOnly {
			pkg.Target = true
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	return prog, nil
}

// typecheckListed parses and type-checks one `go list` entry against the
// packages already resolved into prog.
func typecheckListed(prog *Program, lp *listedPackage) (*Package, error) {
	pkg := &Package{
		Path:     lp.ImportPath,
		Name:     lp.Name,
		Standard: lp.Standard,
	}
	if lp.ImportPath == "unsafe" {
		pkg.Types = types.Unsafe
		return pkg, nil
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", filepath.Join(lp.Dir, name), err)
		}
		files = append(files, f)
	}
	pkg.Files = files
	imp := func(path string) *types.Package {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		if dep := prog.Packages[path]; dep != nil {
			return dep.Types
		}
		return nil
	}
	tpkg, info, errs := typecheck(prog.Fset, lp.ImportPath, files, importerFunc(imp))
	pkg.Types, pkg.Info, pkg.TypeErrors = tpkg, info, errs
	// Dependency-only packages (notably GOROOT internals) may carry benign
	// source-typecheck noise; a package we are asked to analyze must be
	// clean or the findings would be meaningless.
	if !lp.DepOnly && len(errs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %v (and %d more)", lp.ImportPath, errs[0], len(errs)-1)
	}
	return pkg, nil
}

// importerFunc adapts a lookup function to types.Importer.
type importerFunc func(path string) *types.Package

func (f importerFunc) Import(path string) (*types.Package, error) {
	if p := f(path); p != nil {
		return p, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}

// typecheck runs go/types over files with full fact maps, collecting rather
// than aborting on errors.
func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, []error) {
	var errs []error
	conf := types.Config{
		Importer:                 imp,
		FakeImportC:              true,
		Error:                    func(err error) { errs = append(errs, err) },
		Sizes:                    types.SizesFor("gc", runtime.GOARCH),
		DisableUnusedImportCheck: true,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	return tpkg, info, errs
}

// sourceImporter returns a fallback importer that compiles stdlib packages
// from GOROOT source on demand. Fixture loading uses it for the few standard
// imports test fixtures need; Load resolves everything through go list
// instead.
func sourceImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "source", nil)
}

// NewProgram returns an empty Program ready for explicit package loading —
// the `go vet -vettool` unit-checking mode, where the build system hands the
// driver one package at a time with export data for its dependencies.
func NewProgram() *Program {
	return &Program{
		Fset:     token.NewFileSet(),
		Packages: make(map[string]*Package),
	}
}

// LoadPackage parses and type-checks one package from explicit file names,
// resolving imports through imp (typically export data supplied by the build
// system), and registers it as an analysis target. Cross-package annotation
// visibility is limited to packages with source in prog, so unit-mode runs
// see a subset of what whole-program Load sees.
func (prog *Program) LoadPackage(path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(prog.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	tpkg, info, errs := typecheck(prog.Fset, path, files, imp)
	pkg := &Package{Path: path, Name: tpkg.Name(), Files: files, Types: tpkg, Info: info, Target: true, TypeErrors: errs}
	if len(errs) > 0 {
		return pkg, fmt.Errorf("typecheck %s: %v", path, errs[0])
	}
	prog.Packages[path] = pkg
	prog.Targets = append(prog.Targets, pkg)
	return pkg, nil
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PinRelease enforces RCU pin/release pairing: every value produced by an
// //rlc:acquire function must be dropped by exactly one //rlc:release call
// on every control-flow path out of the acquiring function — including the
// panic edges of intervening calls, which only a deferred release covers.
//
// The rules, per acquired pin:
//
//   - returning (or falling off the end, or panicking) while the pin is
//     held and no release is deferred is a leak;
//   - releasing twice — explicitly after an explicit release, explicitly
//     after a deferred one, or deferring two releases — is a double release;
//   - an explicit (non-deferred) release that has any function call between
//     acquire and release leaks on that call's panic edge and is flagged:
//     scope the pin with `defer` in a small helper instead;
//   - a deferred release registered inside a loop only runs at function
//     exit, so per-iteration pins accumulate — flagged;
//   - passing the pin to another function, returning it, or storing it
//     transfers ownership and ends local tracking (the `if st == nil`
//     guard idiom is understood: the nil branch holds no pin).
var PinRelease = &Analyzer{
	Name: "pinrelease",
	Doc: "check that every //rlc:acquire pin is released exactly once on all " +
		"control-flow paths, deferred across any call that could panic",
	Run: runPinRelease,
}

func runPinRelease(pass *Pass) error {
	dirs := pass.Prog.Directives()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					// Skip the release/acquire primitives themselves: their
					// bodies manipulate refcounts below the pin abstraction.
					if obj := pass.Pkg.Info.Defs[fn.Name]; obj != nil && dirs.Of(obj)&(dirAcquire|dirRelease) != 0 {
						return false
					}
					newPinWalker(pass).walkFunc(fn.Body)
				}
				return false // walkFunc descends into nested FuncLits itself
			}
			return true
		})
	}
	return nil
}

// pinMask is the set of states a pin may be in on the paths reaching a
// program point.
type pinMask uint8

const (
	pinNil         pinMask = 1 << iota // acquire returned nil on this path
	pinHeld                            // held, release not yet arranged
	pinDeferred                        // a deferred release covers every exit
	pinReleased                        // explicitly released
	pinTransferred                     // ownership handed to another function
)

// pin is one tracked acquire-call result.
type pin struct {
	name        string    // variable name, for messages
	acquirePos  token.Pos // the acquire call
	acquireLine int
	loopDepth   int // loop nesting at the acquire site
	// riskyCalls counts calls evaluated while the pin was held with no
	// deferred release: each one is a panic edge the pin leaks on.
	riskyCalls int
}

// pinState maps every live pin to its path-merged state mask.
type pinState map[*pin]pinMask

func cloneState(st pinState) pinState {
	out := make(pinState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

type pinWalker struct {
	pass      *Pass
	info      *types.Info
	dirs      *directiveIndex
	binding   map[*types.Var]*pin // current variable -> pin aliases
	loopDepth int
}

func newPinWalker(pass *Pass) *pinWalker {
	return &pinWalker{
		pass:    pass,
		info:    pass.Pkg.Info,
		dirs:    pass.Prog.Directives(),
		binding: make(map[*types.Var]*pin),
	}
}

// walkFunc analyzes one function body in isolation.
func (w *pinWalker) walkFunc(body *ast.BlockStmt) {
	st := make(pinState)
	terminated := w.stmts(body.List, st)
	if !terminated {
		w.checkExit(st, body.Rbrace, "function exit")
	}
}

// checkExit reports every pin still (possibly) held at an exit point.
func (w *pinWalker) checkExit(st pinState, pos token.Pos, where string) {
	for p, mask := range st {
		if mask&pinHeld != 0 {
			w.pass.Reportf(pos, "pin %q (acquired at line %d) is not released on this path to %s: leak",
				p.name, p.acquireLine, where)
			st[p] = mask &^ pinHeld // one report per escape route, not per later return
		}
	}
}

func (w *pinWalker) stmts(list []ast.Stmt, st pinState) (terminated bool) {
	for _, s := range list {
		if terminated {
			return true // unreachable code: stop tracking
		}
		terminated = w.stmt(s, st)
	}
	return terminated
}

func (w *pinWalker) stmt(s ast.Stmt, st pinState) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.assign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.scanExpr(val, st)
					}
				}
			}
		}
	case *ast.ExprStmt:
		w.exprStmt(s.X, st)
	case *ast.DeferStmt:
		w.deferStmt(s, st)
	case *ast.GoStmt:
		// A goroutine capturing or receiving the pin owns it now.
		w.transferAll(s.Call, st)
		w.scanExpr(s.Call, st)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			w.scanExpr(res, st)
			if p := w.pinOf(res); p != nil {
				st[p] = pinTransferred // caller inherits the pin
			}
		}
		w.checkExit(st, s.Pos(), "return")
		return true
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, st)
		}
		w.loopDepth++
		body := cloneState(st)
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
		w.loopDepth--
		mergeState(st, body)
	case *ast.RangeStmt:
		w.scanExpr(s.X, st)
		w.loopDepth++
		body := cloneState(st)
		w.stmts(s.Body.List, body)
		w.loopDepth--
		mergeState(st, body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, st)
		}
		return w.caseBodies(s.Body, st, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, st)
		}
		return w.caseBodies(s.Body, st, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		return w.caseBodies(s.Body, st, false)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave this path; the pin either stays live in
		// the enclosing loop state (already merged) or reaches a return that
		// performs its own check.
		return true
	case *ast.SendStmt:
		w.scanExpr(s.Value, st)
		if p := w.pinOf(s.Value); p != nil {
			st[p] = pinTransferred
		}
	case *ast.IncDecStmt:
		w.scanExpr(s.X, st)
	}
	return false
}

// assign handles pin creation (v := acquire()), aliasing, and stores.
func (w *pinWalker) assign(s *ast.AssignStmt, st pinState) {
	for _, rhs := range s.Rhs {
		w.scanExpr(rhs, st)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			lhsVar := localVar(w.info, s.Lhs[i])
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && w.isAcquire(call) {
				p := &pin{
					name:        exprName(s.Lhs[i]),
					acquirePos:  call.Pos(),
					acquireLine: w.pass.Fset.Position(call.Pos()).Line,
					loopDepth:   w.loopDepth,
				}
				if lhsVar != nil {
					if old := w.binding[lhsVar]; old != nil && st[old]&pinHeld != 0 {
						w.pass.Reportf(call.Pos(), "pin %q reassigned while still held: previous pin (line %d) leaks",
							p.name, old.acquireLine)
						st[old] &^= pinHeld
					}
					w.binding[lhsVar] = p
					st[p] = pinHeld
				} else {
					// Stored straight into a field/global/...: transferred.
					_ = p
				}
				continue
			}
			// Alias: w := v keeps both names on one pin.
			if p := w.pinOf(rhs); p != nil {
				if lhsVar != nil {
					w.binding[lhsVar] = p
				} else {
					st[p] = pinTransferred // stored out of the local frame
				}
			}
		}
	} else {
		// v, ok := f() style with a pin on the right, or pins stored into
		// multi-assign targets: treat any pin operand as transferred.
		for _, rhs := range s.Rhs {
			if p := w.pinOf(rhs); p != nil {
				st[p] = pinTransferred
			}
		}
	}
}

// exprStmt handles a statement-level expression: the release call itself,
// an acquire whose result is dropped, and risky-call accounting.
func (w *pinWalker) exprStmt(x ast.Expr, st pinState) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		w.scanExpr(x, st)
		return
	}
	if p := w.releaseTarget(call); p != nil {
		w.scanCallArgs(call, st)
		w.release(p, call.Pos(), st)
		return
	}
	if w.isAcquire(call) {
		w.pass.Reportf(call.Pos(), "result of acquire is dropped: the pin can never be released")
		w.scanCallArgs(call, st)
		return
	}
	w.scanExpr(x, st)
}

// release transitions p at an explicit (non-deferred) release site.
func (w *pinWalker) release(p *pin, pos token.Pos, st pinState) {
	mask := st[p]
	switch {
	case mask&pinReleased != 0:
		w.pass.Reportf(pos, "pin %q (acquired at line %d) released twice on this path: double release", p.name, p.acquireLine)
	case mask&pinDeferred != 0:
		w.pass.Reportf(pos, "pin %q (acquired at line %d) released explicitly after a deferred release: double release", p.name, p.acquireLine)
	case p.loopDepth < w.loopDepth:
		w.pass.Reportf(pos, "pin %q acquired outside this loop is released inside it: double release after one iteration", p.name)
	case mask&pinHeld != 0 && p.riskyCalls > 0:
		w.pass.Reportf(pos, "pin %q (acquired at line %d) released without defer across %d intervening call(s): a panic in any of them leaks the pin — scope the pin with `defer` in a helper",
			p.name, p.acquireLine, p.riskyCalls)
	}
	st[p] = (mask &^ pinHeld) | pinReleased
}

// deferStmt handles `defer v.release()` and deferred closures releasing v.
func (w *pinWalker) deferStmt(s *ast.DeferStmt, st pinState) {
	w.scanCallArgs(s.Call, st)
	target := w.releaseTarget(s.Call)
	if target == nil {
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			target = w.releasedInLit(lit)
		}
	}
	if target == nil {
		// Deferring any other call transfers a pin argument (common pattern:
		// defer cleanup(st)); the deferred call runs on every exit.
		w.transferAll(s.Call, st)
		return
	}
	mask := st[target]
	switch {
	case mask&pinDeferred != 0:
		w.pass.Reportf(s.Pos(), "pin %q (acquired at line %d) has two deferred releases: double release", target.name, target.acquireLine)
	case mask&pinReleased != 0:
		w.pass.Reportf(s.Pos(), "pin %q (acquired at line %d) already released before this deferred release: double release", target.name, target.acquireLine)
	case w.loopDepth > target.loopDepth:
		w.pass.Reportf(s.Pos(), "pin %q acquired outside this loop gets a deferred release inside it: one release per iteration for a single pin", target.name)
	case w.loopDepth > 0:
		w.pass.Reportf(s.Pos(), "deferred release of pin %q inside a loop runs only at function exit: pins accumulate across iterations — extract the loop body into a function", target.name)
	}
	st[target] = (mask &^ pinHeld) | pinDeferred
}

// releasedInLit scans a deferred closure body for a release call on a
// tracked pin (the `defer func() { st.release() }()` idiom, possibly
// guarded).
func (w *pinWalker) releasedInLit(lit *ast.FuncLit) *pin {
	var found *pin
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && found == nil {
			if p := w.releaseTarget(call); p != nil {
				found = p
			}
		}
		return found == nil
	})
	return found
}

// ifStmt splits the state per branch, applying the `if v == nil` guard
// idiom, and merges the surviving branches.
func (w *pinWalker) ifStmt(s *ast.IfStmt, st pinState) bool {
	if s.Init != nil {
		w.stmt(s.Init, st)
	}
	w.scanExpr(s.Cond, st)

	thenSt := cloneState(st)
	elseSt := cloneState(st)
	if p, isEq := w.nilGuard(s.Cond); p != nil {
		if isEq { // if v == nil: the then-branch holds no pin
			thenSt[p] = pinNil
			elseSt[p] &^= pinNil
		} else { // if v != nil: the else/fallthrough path holds no pin
			elseSt[p] = pinNil
			thenSt[p] &^= pinNil
		}
	}
	thenTerm := w.stmts(s.Body.List, thenSt)
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.stmt(s.Else, elseSt)
	}
	for p := range st {
		delete(st, p)
	}
	if !thenTerm {
		mergeState(st, thenSt)
	}
	if !elseTerm {
		mergeState(st, elseSt)
	}
	return thenTerm && elseTerm
}

// caseBodies walks every case clause of a switch/select on a cloned state
// and merges the survivors. Without a default case execution can skip every
// clause, so the incoming state is merged back too.
func (w *pinWalker) caseBodies(body *ast.BlockStmt, st pinState, exhaustive bool) bool {
	base := cloneState(st)
	for p := range st {
		delete(st, p)
	}
	allTerm := true
	for _, clause := range body.List {
		var list []ast.Stmt
		caseSt := cloneState(base)
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, caseSt)
			}
			list = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				w.stmt(c.Comm, caseSt)
			}
			list = c.Body
		}
		if term := w.stmts(list, caseSt); !term {
			mergeState(st, caseSt)
			allTerm = false
		}
	}
	if !exhaustive {
		mergeState(st, base)
		allTerm = false
	}
	return allTerm && len(body.List) > 0
}

// scanExpr accounts risky calls and ownership transfers inside an arbitrary
// expression evaluated while pins may be held.
func (w *pinWalker) scanExpr(x ast.Expr, st pinState) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isConversion(w.info, n) {
				return true
			}
			if w.releaseTarget(n) != nil {
				// Release in expression position is handled at statement
				// level; inside larger expressions it is effectively a
				// statement too (e.g. comma contexts don't exist in Go).
				return true
			}
			w.transferAll(n, st)
			if !w.isSafeCall(n) {
				w.countRisky(st)
			}
			return true
		case *ast.FuncLit:
			// Capturing a held pin in a closure hands it off; the closure
			// body is analyzed as its own scope.
			w.captureTransfer(n, st)
			newPinWalker(w.pass).walkFunc(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if p := w.pinOf(n.X); p != nil {
					st[p] = pinTransferred
				}
			}
		}
		return true
	})
}

// scanCallArgs scans only the arguments of call (not the call itself) —
// used when the call is a release and must not count as risky.
func (w *pinWalker) scanCallArgs(call *ast.CallExpr, st pinState) {
	for _, arg := range call.Args {
		w.scanExpr(arg, st)
	}
}

// transferAll marks every pin passed directly as an argument as transferred.
func (w *pinWalker) transferAll(call *ast.CallExpr, st pinState) {
	for _, arg := range call.Args {
		if p := w.pinOf(arg); p != nil {
			st[p] = pinTransferred
		}
	}
}

// captureTransfer transfers pins whose variables a closure references.
func (w *pinWalker) captureTransfer(lit *ast.FuncLit, st pinState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.info.Uses[id].(*types.Var); ok {
				if p := w.binding[v]; p != nil {
					if st[p]&pinHeld != 0 {
						st[p] = pinTransferred
					}
				}
			}
		}
		return true
	})
}

// countRisky charges one possibly-panicking call to every pin currently
// held without a deferred release.
func (w *pinWalker) countRisky(st pinState) {
	for p, mask := range st {
		if mask&pinHeld != 0 && mask&pinDeferred == 0 {
			p.riskyCalls++
		}
	}
}

// isSafeCall reports calls that cannot panic in any way that matters for
// pin accounting: builtins like len/cap and the release primitive itself.
func (w *pinWalker) isSafeCall(call *ast.CallExpr) bool {
	if obj := calleeOf(w.info, call); obj != nil {
		if _, ok := obj.(*types.Builtin); ok {
			return true
		}
	}
	return false
}

// nilGuard matches `v == nil` / `v != nil` over a tracked pin variable.
func (w *pinWalker) nilGuard(cond ast.Expr) (*pin, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := be.X, be.Y
	if isNilIdent(w.info, x) {
		x, y = y, x
	}
	if !isNilIdent(w.info, y) {
		return nil, false
	}
	if p := w.pinOf(x); p != nil {
		return p, be.Op == token.EQL
	}
	return nil, false
}

// pinOf resolves expr to the pin its variable is bound to, if any.
func (w *pinWalker) pinOf(expr ast.Expr) *pin {
	v := localVar(w.info, expr)
	if v == nil {
		return nil
	}
	return w.binding[v]
}

// isAcquire reports whether call invokes an //rlc:acquire function.
func (w *pinWalker) isAcquire(call *ast.CallExpr) bool {
	obj := calleeOf(w.info, call)
	return obj != nil && w.dirs.Of(obj)&dirAcquire != 0
}

// releaseTarget returns the tracked pin a call releases, nil when the call
// is not a release on a tracked pin variable.
func (w *pinWalker) releaseTarget(call *ast.CallExpr) *pin {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := w.info.Uses[sel.Sel]
	if obj == nil || w.dirs.Of(obj)&dirRelease == 0 {
		return nil
	}
	return w.pinOf(sel.X)
}

func exprName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "pin"
}

func mergeState(dst, src pinState) {
	for p, m := range src {
		dst[p] |= m
	}
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

package analysis

import (
	"path/filepath"
	"testing"
)

// repoRoot locates the module root from the test's working directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCode enforces exhaustiveness of the sentinel-to-wire-code mapping: the
// function annotated //rlc:errcode must test (via errors.Is or direct ==
// comparison) every error sentinel the package surfaces. The required set is
//
//   - every package-level error-typed variable of the mapping function's own
//     package, and
//   - every exported package-level `Err*` error variable of the non-stdlib
//     packages it imports,
//
// minus sentinels annotated //rlc:errcode-exempt. A sentinel missing from
// the mapping would reach clients as a catch-all internal error with no
// machine-readable code.
var ErrCode = &Analyzer{
	Name: "errcode",
	Doc: "check that the //rlc:errcode mapping function handles every error " +
		"sentinel surfaced by its package and its non-stdlib imports",
	Run: runErrCode,
}

func runErrCode(pass *Pass) error {
	dirs := pass.Prog.Directives()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if dirs.Of(pass.Pkg.Info.Defs[fn.Name])&dirErrCode == 0 {
				continue
			}
			checkErrCodeFunc(pass, fn)
		}
	}
	return nil
}

func checkErrCodeFunc(pass *Pass, fn *ast.FuncDecl) {
	info := pass.Pkg.Info
	dirs := pass.Prog.Directives()

	// Sentinels the mapping function already tests.
	mapped := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee, ok := calleeOf(info, n).(*types.Func); ok &&
				callee.Pkg() != nil && callee.Pkg().Path() == "errors" && callee.Name() == "Is" &&
				len(n.Args) == 2 {
				if v := sentinelOf(info, n.Args[1]); v != nil {
					mapped[v] = true
				}
			}
		case *ast.BinaryExpr:
			// Direct comparison `err == ErrX` counts as a mapping too.
			if v := sentinelOf(info, n.X); v != nil {
				mapped[v] = true
			}
			if v := sentinelOf(info, n.Y); v != nil {
				mapped[v] = true
			}
		}
		return true
	})

	report := func(v *types.Var, qualified string, samePkg bool) {
		if dirs.Of(v)&dirErrCodeExempt != 0 || mapped[v] {
			return
		}
		if samePkg {
			pass.Reportf(v.Pos(), "error sentinel %s is not mapped to a machine-readable code in %s (add an errors.Is case or annotate //rlc:errcode-exempt)", qualified, fn.Name.Name)
		} else {
			pass.Reportf(fn.Pos(), "error sentinel %s is not mapped to a machine-readable code in %s (add an errors.Is case or annotate //rlc:errcode-exempt)", qualified, fn.Name.Name)
		}
	}

	// Required set 1: every package-level error variable of this package.
	for _, v := range sentinelVars(pass.Pkg.Types, false) {
		report(v, v.Name(), true)
	}
	// Required set 2: exported Err* sentinels of imported source packages.
	for _, imp := range pass.Pkg.Types.Imports() {
		dep := pass.Prog.SourcePackage(imp.Path())
		if dep == nil || dep.Standard {
			continue
		}
		for _, v := range sentinelVars(imp, true) {
			report(v, imp.Name()+"."+v.Name(), false)
		}
	}
}

// sentinelVars returns the package-level error-typed variables of pkg, in
// declaration order. When exportedErrOnly is set, only exported variables
// named Err* qualify (the cross-package contract).
func sentinelVars(pkg *types.Package, exportedErrOnly bool) []*types.Var {
	scope := pkg.Scope()
	var out []*types.Var
	for _, name := range scope.Names() {
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !isErrorType(v.Type()) {
			continue
		}
		if exportedErrOnly && (!v.Exported() || !strings.HasPrefix(v.Name(), "Err")) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// sentinelOf resolves expr to a package-level error variable, nil otherwise.
func sentinelOf(info *types.Info, expr ast.Expr) *types.Var {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	v, ok := obj.(*types.Var)
	if !ok || !isErrorType(v.Type()) {
		return nil
	}
	if v.Parent() == nil || v.Parent().Parent() != types.Universe {
		return nil // not package scope
	}
	return v
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// Package analysis is the repo's static-analysis suite: four custom
// analyzers that machine-check the invariants the concurrent serving stack
// rests on, plus the self-contained framework that runs them (the container
// deliberately carries no module dependencies, so the framework mirrors the
// golang.org/x/tools/go/analysis API shape on the standard library alone —
// go/ast + go/types over packages enumerated with `go list -json -deps`).
//
// The analyzers, surfaced through cmd/rlcvet (standalone or as
// `go vet -vettool`):
//
//   - pinrelease: every RCU pin taken with an //rlc:acquire function is
//     paired with exactly one //rlc:release on every control-flow path,
//     including panic edges — leaks, double releases, and defer-in-loop
//     pin pile-ups are vet errors.
//   - viewescape: zero-copy slices produced by //rlc:view accessors are
//     borrows of mmap'd memory; storing one to a struct field, global,
//     channel, or returning it from an unannotated function is a vet error.
//   - noalloc: functions annotated //rlc:noalloc must contain no allocating
//     operations — no make/new, growing append, interface boxing, closure,
//     or string concatenation — and may only call callees that are
//     themselves annotated, allowlisted, or proven allocation-free;
//     deliberate cold-path allocations carry an //rlc:allocok waiver.
//   - errcode: every typed error sentinel surfaced by the serving layer
//     must be mapped to a machine-readable wire code in the function
//     annotated //rlc:errcode; adding a sentinel without a code is a vet
//     error (exempt a sentinel with //rlc:errcode-exempt).
//
// Annotations are ordinary //rlc:<name> directive comments on the
// declaration they govern, so the invariant travels with the code it
// protects and the analyzers need no hard-coded symbol lists.
package analysis

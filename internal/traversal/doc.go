// Package traversal implements the online-traversal baselines of the paper
// (Section III-B and VI-a): breadth-first and bidirectional breadth-first
// searches over the product of the graph and a constraint NFA. These are the
// "BFS" and "BiBFS" competitors of the experimental section.
//
// An Evaluator owns reusable scratch space (epoch-stamped visited arrays and
// queues), so evaluating the paper's 1000-query workloads does not reallocate
// per query.
package traversal

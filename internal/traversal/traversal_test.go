package traversal

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// bruteRLC answers (s, t, L+) by exhaustive product-graph reachability over
// (vertex, phase) pairs — an independent oracle with a different state
// representation than the NFA-based evaluators.
func bruteRLC(g *graph.Graph, s, t graph.Vertex, l labelseq.Seq) bool {
	n := g.NumVertices()
	m := len(l)
	seen := make([]bool, n*m)
	var stack []int
	push := func(v graph.Vertex, phase int) {
		id := int(v)*m + phase
		if !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	// phase = number of labels consumed mod m; accepting arrival at t has
	// phase 0 after >= 1 edge.
	dsts, lbls := g.OutEdges(s)
	for i := range dsts {
		if lbls[i] == l[0] {
			if m == 1 && dsts[i] == t {
				return true
			}
			push(dsts[i], 1%m)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v, phase := graph.Vertex(id/m), id%m
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			if lbls[i] != l[phase] {
				continue
			}
			np := (phase + 1) % m
			if np == 0 && dsts[i] == t {
				return true
			}
			push(dsts[i], np)
		}
	}
	return false
}

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

// allPrimitive enumerates the primitive sequences over numLabels labels with
// length up to k.
func allPrimitive(numLabels, k int) []labelseq.Seq {
	var out []labelseq.Seq
	var gen func(prefix labelseq.Seq)
	gen = func(prefix labelseq.Seq) {
		if len(prefix) > 0 && labelseq.IsPrimitive(prefix) {
			out = append(out, prefix.Clone())
		}
		if len(prefix) == k {
			return
		}
		for l := 0; l < numLabels; l++ {
			gen(append(prefix, labelseq.Label(l)))
		}
	}
	gen(labelseq.Seq{})
	return out
}

func TestBFSOnFig1PaperQueries(t *testing.T) {
	g := graph.Fig1()
	v := func(name string) graph.Vertex {
		id, ok := g.VertexByName(name)
		if !ok {
			t.Fatalf("vertex %s missing", name)
		}
		return id
	}
	l := func(name string) graph.Label {
		id, ok := g.LabelByName(name)
		if !ok {
			t.Fatalf("label %s missing", name)
		}
		return id
	}
	e := NewEvaluator(g)

	// Q1(A14, A19, (debits, credits)+) = true (Example 1).
	q1, err := automaton.NewPlus(labelseq.Seq{l("debits"), l("credits")}, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if !e.BFS(v("A14"), v("A19"), q1) {
		t.Error("Q1(A14, A19, (debits credits)+) should be true")
	}
	if !e.BiBFS(v("A14"), v("A19"), q1) {
		t.Error("BiBFS disagrees on Q1")
	}

	// Q2(P10, P13, (knows, knows, worksFor)+) = false (Example 1).
	q2, err := automaton.NewPlus(labelseq.Seq{l("knows"), l("knows"), l("worksFor")}, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if e.BFS(v("P10"), v("P13"), q2) {
		t.Error("Q2(P10, P13, (knows knows worksFor)+) should be false")
	}
	if e.BiBFS(v("P10"), v("P13"), q2) {
		t.Error("BiBFS disagrees on Q2")
	}

	// S2(P12, P16) = {(knows), (knows worksFor)} (Section III-C).
	knows, kw := labelseq.Seq{l("knows")}, labelseq.Seq{l("knows"), l("worksFor")}
	for _, c := range []struct {
		l    labelseq.Seq
		want bool
	}{
		{knows, true},
		{kw, true},
		{labelseq.Seq{l("worksFor")}, false},
		{labelseq.Seq{l("worksFor"), l("knows")}, false},
	} {
		nfa, err := automaton.NewPlus(c.l, g.NumLabels())
		if err != nil {
			t.Fatal(err)
		}
		if got := e.BFS(v("P12"), v("P16"), nfa); got != c.want {
			t.Errorf("(P12, P16, %v+) = %v, want %v", c.l, got, c.want)
		}
	}
}

func TestBFSOnFig2PaperQueries(t *testing.T) {
	g := graph.Fig2()
	e := NewEvaluator(g)
	v := func(name string) graph.Vertex {
		id, ok := g.VertexByName(name)
		if !ok {
			t.Fatalf("vertex %s missing", name)
		}
		return id
	}
	// Example 4: Q1(v3, v6, (l2,l1)+) = true, Q2(v1, v2, (l2,l1)+) = true,
	// Q3(v1, v3, (l1)+) = false.
	cases := []struct {
		s, t graph.Vertex
		l    labelseq.Seq
		want bool
	}{
		{v("v3"), v("v6"), labelseq.Seq{1, 0}, true},
		{v("v1"), v("v2"), labelseq.Seq{1, 0}, true},
		{v("v1"), v("v3"), labelseq.Seq{0}, false},
		{v("v1"), v("v3"), labelseq.Seq{1}, true}, // v1 -l2-> v3
	}
	for _, c := range cases {
		nfa, err := automaton.NewPlus(c.l, g.NumLabels())
		if err != nil {
			t.Fatal(err)
		}
		if got := e.BFS(c.s, c.t, nfa); got != c.want {
			t.Errorf("BFS(%d, %d, %v+) = %v, want %v", c.s, c.t, c.l, got, c.want)
		}
		if got := e.BiBFS(c.s, c.t, nfa); got != c.want {
			t.Errorf("BiBFS(%d, %d, %v+) = %v, want %v", c.s, c.t, c.l, got, c.want)
		}
	}
}

// TestEvaluatorsAgreeWithBruteForce is the cornerstone equivalence test:
// BFS, BiBFS, DFS and the phase-based brute oracle must agree on every
// query of every random graph.
func TestEvaluatorsAgreeWithBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(30))
	constraints := allPrimitive(3, 3)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(8)
		g := randomGraph(r, n, 3, n*2)
		e := NewEvaluator(g)
		for _, l := range constraints {
			nfa, err := automaton.NewPlus(l, 3)
			if err != nil {
				t.Fatal(err)
			}
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					want := bruteRLC(g, s, tt, l)
					if got := e.BFS(s, tt, nfa); got != want {
						t.Fatalf("trial %d: BFS(%d,%d,%v+)=%v, brute=%v", trial, s, tt, l, got, want)
					}
					if got := e.BiBFS(s, tt, nfa); got != want {
						t.Fatalf("trial %d: BiBFS(%d,%d,%v+)=%v, brute=%v", trial, s, tt, l, got, want)
					}
					if got := e.DFS(s, tt, nfa); got != want {
						t.Fatalf("trial %d: DFS(%d,%d,%v+)=%v, brute=%v", trial, s, tt, l, got, want)
					}
				}
			}
		}
	}
}

func TestDFSOnFig2(t *testing.T) {
	g := graph.Fig2()
	e := NewEvaluator(g)
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	nfa, err := automaton.NewPlus(labelseq.Seq{1, 0}, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if !e.DFS(v("v3"), v("v6"), nfa) {
		t.Error("DFS misses Q1(v3, v6, (l2 l1)+)")
	}
	one, err := automaton.NewPlus(labelseq.Seq{0}, g.NumLabels())
	if err != nil {
		t.Fatal(err)
	}
	if e.DFS(v("v1"), v("v3"), one) {
		t.Error("DFS claims Q3(v1, v3, l1+)")
	}
}

func TestSelfLoopAndSelfQuery(t *testing.T) {
	// v0 has an l0 self loop; (v0, v0, l0+) is true, (v1, v1, l0+) false.
	g := graph.FromEdges(2, 1, []graph.Edge{{Src: 0, Dst: 0, Label: 0}, {Src: 0, Dst: 1, Label: 0}})
	e := NewEvaluator(g)
	nfa, err := automaton.NewPlus(labelseq.Seq{0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !e.BFS(0, 0, nfa) || !e.BiBFS(0, 0, nfa) {
		t.Error("(v0, v0, l0+) must be true via the self loop")
	}
	if e.BFS(1, 1, nfa) || e.BiBFS(1, 1, nfa) {
		t.Error("(v1, v1, l0+) must be false: no empty-word acceptance")
	}
}

func TestExtendedQueryQ4Style(t *testing.T) {
	// Chain 0 -a-> 1 -a-> 2 -b-> 3; a+ b+ holds from 0 to 3, a+ alone not.
	g := graph.FromEdges(4, 2, []graph.Edge{
		{Src: 0, Dst: 1, Label: 0}, {Src: 1, Dst: 2, Label: 0}, {Src: 2, Dst: 3, Label: 1},
	})
	e := NewEvaluator(g)
	q4, err := automaton.Compile(automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !e.BFS(0, 3, q4) || !e.BiBFS(0, 3, q4) {
		t.Error("a+ b+ from 0 to 3 should hold")
	}
	if e.BFS(0, 2, q4) || e.BiBFS(0, 2, q4) {
		t.Error("a+ b+ from 0 to 2 should not hold (no b consumed)")
	}
}

func TestReachableFrom(t *testing.T) {
	g := graph.Fig2()
	e := NewEvaluator(g)
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	nfa, err := automaton.NewPlus(labelseq.Seq{1, 0}, g.NumLabels()) // (l2,l1)+
	if err != nil {
		t.Fatal(err)
	}
	got := e.ReachableFrom(v("v3"), nfa)
	// From v3 via (l2,l1)+: v3-l2->v4-l1->v1 and further powers.
	want := map[graph.Vertex]bool{}
	for tt := graph.Vertex(0); int(tt) < g.NumVertices(); tt++ {
		if e.BFS(v("v3"), tt, nfa) {
			want[tt] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ReachableFrom size = %d, want %d (%v)", len(got), len(want), got)
	}
	for _, u := range got {
		if !want[u] {
			t.Errorf("ReachableFrom returned %d which BFS rejects", u)
		}
	}
	// Ascending order contract.
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Error("ReachableFrom not sorted ascending")
		}
	}
}

func TestConvenienceWrappers(t *testing.T) {
	g := graph.Fig2()
	ok, err := EvalRLC(g, 2, 5, labelseq.Seq{1, 0})
	if err != nil || !ok {
		t.Errorf("EvalRLC = %v, %v", ok, err)
	}
	ok, err = EvalRLCBi(g, 2, 5, labelseq.Seq{1, 0})
	if err != nil || !ok {
		t.Errorf("EvalRLCBi = %v, %v", ok, err)
	}
	if _, err := EvalRLC(g, 0, 1, labelseq.Seq{99}); err == nil {
		t.Error("out-of-universe label should error")
	}
}

func TestEvaluatorReuseAcrossQueries(t *testing.T) {
	// Stamped visited arrays must not leak state between queries.
	g := graph.Fig2()
	e := NewEvaluator(g)
	nfa, _ := automaton.NewPlus(labelseq.Seq{0}, g.NumLabels())
	first := e.BFS(0, 1, nfa) // v1 -l1-> v2: true
	for i := 0; i < 100; i++ {
		if got := e.BFS(0, 1, nfa); got != first {
			t.Fatalf("iteration %d: answer flipped to %v", i, got)
		}
	}
	if e.LastVisited == 0 {
		t.Error("LastVisited should be positive after a query")
	}
}

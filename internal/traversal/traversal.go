package traversal

import (
	"math/bits"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// node is a product-graph node: graph vertex x NFA state.
type node struct {
	v graph.Vertex
	q automaton.State
}

// Evaluator evaluates path queries by online traversal. It is not safe for
// concurrent use; create one per goroutine.
type Evaluator struct {
	g *graph.Graph

	// Epoch-stamped visited marks, indexed v*numStates+q. A slot is
	// visited in the current query iff it holds the current stamp.
	stamp    uint32
	fwdSeen  []uint32
	bwdSeen  []uint32
	frontier []node
	next     []node

	// LastVisited reports how many product nodes the previous call
	// explored — useful when comparing traversal effort to index lookups.
	LastVisited int
}

// NewEvaluator returns an evaluator over g.
func NewEvaluator(g *graph.Graph) *Evaluator {
	return &Evaluator{g: g}
}

func (e *Evaluator) reset(numStates int, needBwd bool) {
	need := e.g.NumVertices() * numStates
	if len(e.fwdSeen) < need {
		e.fwdSeen = make([]uint32, need)
		e.bwdSeen = make([]uint32, need)
		e.stamp = 0
	}
	e.stamp++
	if e.stamp == 0 { // wrapped: clear and restart
		for i := range e.fwdSeen {
			e.fwdSeen[i] = 0
			e.bwdSeen[i] = 0
		}
		e.stamp = 1
	}
	_ = needBwd
	e.LastVisited = 0
}

// BFS reports whether some path from s to t matches the automaton, using a
// forward NFA-guided breadth-first search.
func (e *Evaluator) BFS(s, t graph.Vertex, nfa *automaton.NFA) bool {
	ns := nfa.NumStates()
	e.reset(ns, false)
	accept := nfa.Accept()

	e.frontier = e.frontier[:0]
	e.mark(e.fwdSeen, ns, node{s, 0})
	e.frontier = append(e.frontier, node{s, 0})

	for len(e.frontier) > 0 {
		e.next = e.next[:0]
		for _, nd := range e.frontier {
			dsts, lbls := e.g.OutEdges(nd.v)
			for i := range dsts {
				targets := nfa.Step(nd.q, lbls[i])
				for m := targets; m != 0; m &= m - 1 {
					q := automaton.State(trailing(m))
					nn := node{dsts[i], q}
					if e.seen(e.fwdSeen, ns, nn) {
						continue
					}
					if nn.v == t && q == accept {
						return true
					}
					e.mark(e.fwdSeen, ns, nn)
					e.next = append(e.next, nn)
				}
			}
		}
		e.frontier, e.next = e.next, e.frontier
	}
	return false
}

// BiBFS reports whether some path from s to t matches the automaton, using
// a bidirectional NFA-guided breadth-first search that always expands the
// smaller frontier.
func (e *Evaluator) BiBFS(s, t graph.Vertex, nfa *automaton.NFA) bool {
	ns := nfa.NumStates()
	e.reset(ns, true)
	rev := nfa.Reverse()

	// Backward frontier nodes and marks both use ORIGINAL state ids, so a
	// meet is a simple same-slot test; expandBackward translates to the
	// reverse automaton's ids only when stepping.
	fwd := []node{{s, 0}}
	bwd := []node{{t, nfa.Accept()}}
	e.mark(e.fwdSeen, ns, node{s, 0})
	e.mark(e.bwdSeen, ns, node{t, nfa.Accept()})

	// The start product node can itself be a meet only if s == t and the
	// automaton accepts the empty word — our expressions never do (every
	// segment consumes at least one label), so no special case is needed.

	for len(fwd) > 0 && len(bwd) > 0 {
		if len(fwd) <= len(bwd) {
			var met bool
			fwd, met = e.expandForward(fwd, nfa, ns)
			if met {
				return true
			}
		} else {
			var met bool
			bwd, met = e.expandBackward(bwd, nfa, rev, ns)
			if met {
				return true
			}
		}
	}
	return false
}

func (e *Evaluator) expandForward(frontier []node, nfa *automaton.NFA, ns int) ([]node, bool) {
	var next []node
	for _, nd := range frontier {
		dsts, lbls := e.g.OutEdges(nd.v)
		for i := range dsts {
			targets := nfa.Step(nd.q, lbls[i])
			for m := targets; m != 0; m &= m - 1 {
				nn := node{dsts[i], automaton.State(trailing(m))}
				if e.seen(e.fwdSeen, ns, nn) {
					continue
				}
				if e.seen(e.bwdSeen, ns, nn) {
					return nil, true
				}
				e.mark(e.fwdSeen, ns, nn)
				next = append(next, nn)
			}
		}
	}
	return next, false
}

func (e *Evaluator) expandBackward(frontier []node, nfa *automaton.NFA, rev *automaton.NFA, ns int) ([]node, bool) {
	var next []node
	for _, nd := range frontier {
		// nd.q is an ORIGINAL state id; the reverse automaton steps on
		// the corresponding reverse id.
		rq := nfa.ReverseState(nd.q)
		srcs, lbls := e.g.InEdges(nd.v)
		for i := range srcs {
			targets := rev.Step(rq, lbls[i])
			for m := targets; m != 0; m &= m - 1 {
				orig := nfa.ReverseState(automaton.State(trailing(m)))
				nn := node{srcs[i], orig}
				if e.seen(e.bwdSeen, ns, nn) {
					continue
				}
				if e.seen(e.fwdSeen, ns, nn) {
					return nil, true
				}
				e.mark(e.bwdSeen, ns, nn)
				next = append(next, nn)
			}
		}
	}
	return next, false
}

// DFS reports whether some path from s to t matches the automaton, using a
// depth-first product search. The paper notes DFS as the BFS alternative
// with the same complexity but worse practical behaviour than BiBFS
// (Section VI-a); it is provided for completeness and as another oracle for
// the test suite.
func (e *Evaluator) DFS(s, t graph.Vertex, nfa *automaton.NFA) bool {
	ns := nfa.NumStates()
	e.reset(ns, false)
	accept := nfa.Accept()

	stack := e.frontier[:0]
	start := node{s, 0}
	e.mark(e.fwdSeen, ns, start)
	stack = append(stack, start)
	for len(stack) > 0 {
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		dsts, lbls := e.g.OutEdges(nd.v)
		for i := range dsts {
			targets := nfa.Step(nd.q, lbls[i])
			for m := targets; m != 0; m &= m - 1 {
				q := automaton.State(trailing(m))
				nn := node{dsts[i], q}
				if e.seen(e.fwdSeen, ns, nn) {
					continue
				}
				if nn.v == t && q == accept {
					e.frontier = stack
					return true
				}
				e.mark(e.fwdSeen, ns, nn)
				stack = append(stack, nn)
			}
		}
	}
	e.frontier = stack
	return false
}

// ReachableFrom returns every vertex t such that some path from s to t
// matches the automaton, in ascending vertex order. Workload generation uses
// it to mine true queries.
func (e *Evaluator) ReachableFrom(s graph.Vertex, nfa *automaton.NFA) []graph.Vertex {
	return e.ReachableFromMany([]graph.Vertex{s}, nfa)
}

// ReachableFromMany is the multi-source variant of ReachableFrom: vertices
// reachable from ANY of the starts by an accepted path, ascending. The
// hybrid evaluator uses it to push whole frontiers through one constraint
// segment.
func (e *Evaluator) ReachableFromMany(starts []graph.Vertex, nfa *automaton.NFA) []graph.Vertex {
	var out []graph.Vertex
	e.ReachableFromManyFunc(starts, nfa, func(v graph.Vertex) bool {
		out = append(out, v)
		return false
	})
	sortVertices(out)
	return out
}

// ReachableFromManyFunc streams the accepting vertices to visit as the
// search discovers them (each vertex once, in discovery order). A true
// return from visit stops the search early — the hook that lets index-
// assisted evaluation of extended queries exit on the first hit.
func (e *Evaluator) ReachableFromManyFunc(starts []graph.Vertex, nfa *automaton.NFA, visit func(graph.Vertex) bool) {
	e.closureFunc(starts, nfa, false, visit)
}

// ReachableIntoManyFunc is the backward mirror: it streams every vertex x
// such that some accepted path leads from x into one of the targets. The
// hybrid evaluator expands the rarer segment of a two-segment query
// backward with it.
func (e *Evaluator) ReachableIntoManyFunc(targets []graph.Vertex, nfa *automaton.NFA, visit func(graph.Vertex) bool) {
	e.closureFunc(targets, nfa, true, visit)
}

func (e *Evaluator) closureFunc(starts []graph.Vertex, nfa *automaton.NFA, backward bool, visit func(graph.Vertex) bool) {
	ns := nfa.NumStates()
	e.reset(ns, false)
	step := nfa
	if backward {
		step = nfa.Reverse()
	}
	accept := step.Accept()

	reached := make(map[graph.Vertex]bool)
	frontier := make([]node, 0, len(starts))
	for _, s := range starts {
		nd := node{s, 0}
		if e.seen(e.fwdSeen, ns, nd) {
			continue
		}
		e.mark(e.fwdSeen, ns, nd)
		frontier = append(frontier, nd)
	}
	for len(frontier) > 0 {
		var next []node
		for _, nd := range frontier {
			var nbrs []graph.Vertex
			var lbls []labelseq.Label
			if backward {
				nbrs, lbls = e.g.InEdges(nd.v)
			} else {
				nbrs, lbls = e.g.OutEdges(nd.v)
			}
			for i := range nbrs {
				targets := step.Step(nd.q, lbls[i])
				for m := targets; m != 0; m &= m - 1 {
					q := automaton.State(trailing(m))
					nn := node{nbrs[i], q}
					if e.seen(e.fwdSeen, ns, nn) {
						continue
					}
					e.mark(e.fwdSeen, ns, nn)
					if q == accept && !reached[nn.v] {
						reached[nn.v] = true
						if visit(nn.v) {
							return
						}
					}
					next = append(next, nn)
				}
			}
		}
		frontier = next
	}
}

func (e *Evaluator) mark(seen []uint32, ns int, nd node) {
	seen[int(nd.v)*ns+int(nd.q)] = e.stamp
	e.LastVisited++
}

func (e *Evaluator) seen(seen []uint32, ns int, nd node) bool {
	return seen[int(nd.v)*ns+int(nd.q)] == e.stamp
}

// EvalRLC answers the RLC query (s, t, L+) by forward BFS. It is a
// convenience wrapper; workload loops should compile the NFA once.
func EvalRLC(g *graph.Graph, s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	nfa, err := automaton.NewPlus(l, g.NumLabels())
	if err != nil {
		return false, err
	}
	return NewEvaluator(g).BFS(s, t, nfa), nil
}

// EvalRLCBi answers the RLC query (s, t, L+) by bidirectional BFS.
func EvalRLCBi(g *graph.Graph, s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	nfa, err := automaton.NewPlus(l, g.NumLabels())
	if err != nil {
		return false, err
	}
	return NewEvaluator(g).BiBFS(s, t, nfa), nil
}

func trailing(x uint64) int { return bits.TrailingZeros64(x) }

func sortVertices(vs []graph.Vertex) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

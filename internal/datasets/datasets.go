package datasets

import (
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Dataset couples a Table III profile with its paper-reported statistics.
type Dataset struct {
	gen.Profile
	// PaperIndexSeconds and PaperIndexMB are the RLC-index numbers the
	// paper reports in Table IV (k = 2), rendered by the table4
	// experiment to place our measurements next to the originals.
	PaperIndexSeconds float64
	PaperIndexMB      float64
}

// All returns the thirteen datasets in Table III order (sorted by |E|).
func All() []Dataset {
	return []Dataset{
		{Profile: gen.Profile{Name: "AD", Vertices: 6_000, Edges: 51_000, Labels: 3, Loops: 4_000, Tri: 98_000, Skewed: true}, PaperIndexSeconds: 0.7, PaperIndexMB: 1.9},
		{Profile: gen.Profile{Name: "EP", Vertices: 75_000, Edges: 508_000, Labels: 8, Loops: 0, Tri: 1_600_000, Skewed: true}, PaperIndexSeconds: 22.6, PaperIndexMB: 29.3},
		{Profile: gen.Profile{Name: "TW", Vertices: 465_000, Edges: 834_000, Labels: 8, Loops: 0, Tri: 38_000, Skewed: true}, PaperIndexSeconds: 8.1, PaperIndexMB: 93.5},
		{Profile: gen.Profile{Name: "WN", Vertices: 325_000, Edges: 1_400_000, Labels: 8, Loops: 27_000, Tri: 8_900_000, Skewed: true}, PaperIndexSeconds: 33.1, PaperIndexMB: 122.6},
		{Profile: gen.Profile{Name: "WS", Vertices: 281_000, Edges: 2_000_000, Labels: 8, Loops: 0, Tri: 11_000_000, Skewed: true}, PaperIndexSeconds: 53.5, PaperIndexMB: 173.9},
		{Profile: gen.Profile{Name: "WG", Vertices: 875_000, Edges: 5_000_000, Labels: 8, Loops: 0, Tri: 13_000_000, Skewed: true}, PaperIndexSeconds: 101.3, PaperIndexMB: 403.6},
		{Profile: gen.Profile{Name: "WT", Vertices: 2_300_000, Edges: 5_000_000, Labels: 8, Loops: 0, Tri: 9_000_000, Skewed: true}, PaperIndexSeconds: 812.9, PaperIndexMB: 607.1},
		{Profile: gen.Profile{Name: "WB", Vertices: 685_000, Edges: 7_000_000, Labels: 8, Loops: 0, Tri: 64_000_000, Skewed: true}, PaperIndexSeconds: 167.1, PaperIndexMB: 474.2},
		{Profile: gen.Profile{Name: "WH", Vertices: 1_700_000, Edges: 28_500_000, Labels: 8, Loops: 4_000, Tri: 52_000_000, Skewed: true}, PaperIndexSeconds: 3707.2, PaperIndexMB: 1319.1},
		{Profile: gen.Profile{Name: "PR", Vertices: 1_600_000, Edges: 30_600_000, Labels: 8, Loops: 0, Tri: 32_000_000, Skewed: true}, PaperIndexSeconds: 3104.1, PaperIndexMB: 1212.6},
		{Profile: gen.Profile{Name: "SO", Vertices: 2_600_000, Edges: 63_400_000, Labels: 3, Loops: 15_000_000, Tri: 114_000_000, Skewed: true}, PaperIndexSeconds: 57072.5, PaperIndexMB: 844.2},
		{Profile: gen.Profile{Name: "LJ", Vertices: 4_800_000, Edges: 68_900_000, Labels: 50, Loops: 0, Tri: 285_000_000, Skewed: true}, PaperIndexSeconds: 18240.9, PaperIndexMB: 6248.1},
		{Profile: gen.Profile{Name: "WF", Vertices: 3_300_000, Edges: 123_700_000, Labels: 25, Loops: 19_000, Tri: 30_000_000_000, Skewed: true}, PaperIndexSeconds: 51338.7, PaperIndexMB: 6467.9},
	}
}

// ByName returns the dataset with the given Table III abbreviation.
func ByName(name string) (Dataset, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q (want one of AD..WF)", name)
}

// ReplicaVertices returns the vertex count of a replica at the given scale,
// floored so the smallest datasets stay meaningful and capped by the
// original size.
func (d Dataset) ReplicaVertices(scale float64) int {
	v := int(float64(d.Vertices) * scale)
	const floor = 600
	if v < floor {
		v = floor
	}
	if v > d.Vertices {
		v = d.Vertices
	}
	return v
}

// Replica generates the scaled synthetic stand-in for the dataset.
// Replicas are deterministic: the seed derives from the dataset name.
func (d Dataset) Replica(scale float64) (*graph.Graph, error) {
	seed := int64(0)
	for _, c := range d.Name {
		seed = seed*131 + int64(c)
	}
	return d.Generate(d.ReplicaVertices(scale), seed)
}

// Package datasets registers profile replicas of the 13 real-world graphs
// of Table III. The originals come from SNAP and KONECT and cannot be
// fetched in this offline reproduction, so each is replaced by a synthetic
// replica that preserves the characteristics the paper identifies as the
// index's cost drivers: |V|:|E| ratio (average degree), label-set size,
// degree skew, self-loop density and triangle density. The profile fields live in internal/gen.Profile.
package datasets

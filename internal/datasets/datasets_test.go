package datasets

import (
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
)

func TestAllThirteen(t *testing.T) {
	all := All()
	if len(all) != 13 {
		t.Fatalf("expected 13 datasets, got %d", len(all))
	}
	names := map[string]bool{}
	prevEdges := 0
	for _, d := range all {
		if names[d.Name] {
			t.Errorf("duplicate dataset %s", d.Name)
		}
		names[d.Name] = true
		if d.Edges < prevEdges {
			t.Errorf("datasets not sorted by |E|: %s", d.Name)
		}
		prevEdges = d.Edges
		if d.Vertices <= 0 || d.Edges <= 0 || d.Labels <= 0 {
			t.Errorf("dataset %s has empty shape", d.Name)
		}
	}
	for _, want := range []string{"AD", "WN", "TW", "WG", "SO", "LJ", "WF"} {
		if !names[want] {
			t.Errorf("dataset %s missing", want)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("WN")
	if err != nil {
		t.Fatal(err)
	}
	if d.Vertices != 325_000 || d.Labels != 8 {
		t.Errorf("WN profile wrong: %+v", d.Profile)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name must fail")
	}
}

func TestReplicaVerticesScaling(t *testing.T) {
	d, _ := ByName("AD")
	if v := d.ReplicaVertices(10); v != d.Vertices {
		t.Errorf("scale > 1 should cap at original size, got %d", v)
	}
	if v := d.ReplicaVertices(0.000001); v != 600 {
		t.Errorf("tiny scale should floor at 600, got %d", v)
	}
	wf, _ := ByName("WF")
	if v := wf.ReplicaVertices(0.01); v != 33_000 {
		t.Errorf("1%% of WF = %d, want 33000", v)
	}
}

// TestReplicaPreservesShape verifies the characteristics the substitution
// promises to preserve (see the package comment).
func TestReplicaPreservesShape(t *testing.T) {
	for _, name := range []string{"AD", "TW", "SO"} {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g, err := d.Replica(0.002)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumLabels() != d.Labels {
			t.Errorf("%s: labels %d, want %d", name, g.NumLabels(), d.Labels)
		}
		wantDeg := d.AvgDegree()
		gotDeg := float64(g.NumEdges()) / float64(g.NumVertices())
		if gotDeg < wantDeg/3 || gotDeg > wantDeg*3 {
			t.Errorf("%s: avg degree %.1f too far from original %.1f", name, gotDeg, wantDeg)
		}
		// Loop-heavy profiles must have loops; loop-free must not.
		loops := graph.SelfLoopCount(g)
		if d.Loops > 0 && loops == 0 {
			t.Errorf("%s: loop-heavy original produced loop-free replica", name)
		}
		if d.Loops == 0 && loops > 0 {
			t.Errorf("%s: loop-free original produced %d loops", name, loops)
		}
	}
}

func TestReplicaDeterminism(t *testing.T) {
	d, _ := ByName("AD")
	a, err := d.Replica(0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Replica(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("replica edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("replica not deterministic")
		}
	}
}

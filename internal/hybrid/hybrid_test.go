package hybrid

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestHybridQ4Basics(t *testing.T) {
	// Chain 0 -a-> 1 -a-> 2 -b-> 3.
	g := graph.FromEdges(4, 2, []graph.Edge{
		{Src: 0, Dst: 1, Label: 0}, {Src: 1, Dst: 2, Label: 0}, {Src: 2, Dst: 3, Label: 1},
	})
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := New(ix)
	q4 := automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1})
	ok, err := h.Eval(0, 3, q4)
	if err != nil || !ok {
		t.Errorf("a+ b+ from 0 to 3 = %v, %v; want true", ok, err)
	}
	ok, err = h.Eval(0, 2, q4)
	if err != nil || ok {
		t.Errorf("a+ b+ from 0 to 2 = %v, %v; want false", ok, err)
	}
	// Single segment goes through the index directly.
	ok, err = h.Eval(0, 2, automaton.Plus(labelseq.Seq{0}))
	if err != nil || !ok {
		t.Errorf("a+ from 0 to 2 = %v, %v; want true", ok, err)
	}
}

// TestHybridAgreesWithTraversal: the hybrid evaluator and plain NFA BFS
// must agree on single-, two- and three-segment plus expressions.
func TestHybridAgreesWithTraversal(t *testing.T) {
	r := rand.New(rand.NewSource(400))
	exprs := []automaton.Expr{
		automaton.Plus(labelseq.Seq{0}),
		automaton.Plus(labelseq.Seq{0, 1}),
		automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}),
		automaton.ConcatPlus(labelseq.Seq{1}, labelseq.Seq{0}),
		automaton.ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{1}),
		automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}, labelseq.Seq{0}),
	}
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(10)
		g := randomGraph(r, n, 2, 3*n)
		ix, err := core.Build(g, core.Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		h := New(ix)
		ev := traversal.NewEvaluator(g)
		for _, expr := range exprs {
			nfa, err := automaton.Compile(expr, g.NumLabels())
			if err != nil {
				t.Fatal(err)
			}
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					want := ev.BFS(s, tt, nfa)
					got, err := h.Eval(s, tt, expr)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d hybrid(%d,%d,%v) = %v, BFS = %v\nedges %v",
							trial, s, tt, expr, got, want, g.Edges())
					}
				}
			}
		}
	}
}

// TestHybridFallsBackBeyondK: a constraint longer than the index's k must
// still be answered (via online traversal).
func TestHybridFallsBackBeyondK(t *testing.T) {
	g := graph.FromEdges(4, 3, []graph.Edge{
		{Src: 0, Dst: 1, Label: 0}, {Src: 1, Dst: 2, Label: 1}, {Src: 2, Dst: 3, Label: 2},
	})
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := New(ix)
	ok, err := h.Eval(0, 3, automaton.Plus(labelseq.Seq{0, 1, 2}))
	if err != nil || !ok {
		t.Errorf("(a b c)+ beyond k = %v, %v; want true via fallback", ok, err)
	}
}

func TestHybridErrors(t *testing.T) {
	ix, err := core.Build(graph.Fig2(), core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := New(ix)
	if _, err := h.Eval(0, 1, automaton.Expr{}); err == nil {
		t.Error("empty expression must fail")
	}
	noPlus := automaton.Expr{Segments: []automaton.Segment{{Labels: labelseq.Seq{0}}}}
	if _, err := h.Eval(0, 1, noPlus); err == nil {
		t.Error("plus-less segment must fail")
	}
}

// Package hybrid combines the RLC index with online traversal to evaluate
// the extended reachability queries of Section VI-C — constraints such as
// Q4 = a+ ∘ b+ that concatenate several Kleene-plus segments. The paper
// evaluates these "in combination with an online traversal to continuously
// check whether intermediately visited vertices can satisfy the path
// constraint": the leading segments are expanded online, and the final
// segment is answered by index lookups from each frontier vertex, which is
// where the index's speed-up comes from.
package hybrid

package hybrid

import (
	"context"
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// Evaluator answers plus-segment path expressions over one graph using its
// RLC index. Not safe for concurrent use.
type Evaluator struct {
	ix        *core.Index
	ev        *traversal.Evaluator
	labelFreq []int64 // lazily counted out-edge labels, for direction choice
}

// New returns a hybrid evaluator over the index's graph.
func New(ix *core.Index) *Evaluator {
	return &Evaluator{ix: ix, ev: traversal.NewEvaluator(ix.Graph())}
}

// Eval answers (s, t, e). Every segment must carry the Kleene plus — the
// query class of Section VI-C. Single-segment expressions that the index
// supports directly become one lookup; multi-segment expressions traverse
// the leading segments online and answer the final segment from the index.
func (h *Evaluator) Eval(s, t graph.Vertex, e automaton.Expr) (bool, error) {
	return h.EvalCtx(context.Background(), s, t, e)
}

// QueryRLC answers the single-constraint query (s, t, l+), satisfying the
// facade's Querier interface: the index answers when l is in its class, an
// NFA-guided traversal otherwise.
func (h *Evaluator) QueryRLC(ctx context.Context, s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	return h.EvalCtx(ctx, s, t, automaton.Plus(l))
}

// EvalCtx is Eval under a context. Cancellation is observed at segment
// granularity: the context is consulted before each online segment
// expansion (the unbounded-cost steps), not inside a single traversal, so a
// cancelled multi-segment query stops before its next frontier expansion.
func (h *Evaluator) EvalCtx(ctx context.Context, s, t graph.Vertex, e automaton.Expr) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if len(e.Segments) == 0 {
		return false, fmt.Errorf("hybrid: empty expression")
	}
	for _, seg := range e.Segments {
		if !seg.Plus {
			return false, fmt.Errorf("hybrid: segment %v lacks the Kleene plus; only plus-segment expressions are supported", seg.Labels)
		}
		if len(seg.Labels) == 0 {
			return false, fmt.Errorf("hybrid: empty segment")
		}
	}

	if len(e.Segments) == 1 {
		return h.answerSegment(s, t, e.Segments[0].Labels)
	}

	// Two-segment expressions (the Q4 shape) choose the cheaper direction:
	// expand the segment touching fewer edges online and answer the other
	// with one probe per discovered vertex.
	if len(e.Segments) == 2 && h.segmentCost(e.Segments[1].Labels) < h.segmentCost(e.Segments[0].Labels) {
		if ok, handled, err := h.evalBackward(s, t, e.Segments[0].Labels, e.Segments[1].Labels); handled {
			return ok, err
		}
	}

	// Expand all but the last two segments online into full closures.
	frontier := []graph.Vertex{s}
	for _, seg := range e.Segments[:len(e.Segments)-2] {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		nfa, err := automaton.NewPlus(seg.Labels, h.ix.Graph().NumLabels())
		if err != nil {
			return false, fmt.Errorf("hybrid: %w", err)
		}
		frontier = h.ev.ReachableFromMany(frontier, nfa)
		if len(frontier) == 0 {
			return false, nil
		}
	}

	// Penultimate segment: expand online, probing each discovered vertex
	// against the precomputed target side of the final segment and exiting
	// on the first hit — the "continuously check intermediately visited
	// vertices" strategy of Section VI-C.
	if err := ctx.Err(); err != nil {
		return false, err
	}
	last := e.Segments[len(e.Segments)-1].Labels
	penult := e.Segments[len(e.Segments)-2].Labels
	nfa, err := automaton.NewPlus(penult, h.ix.Graph().NumLabels())
	if err != nil {
		return false, fmt.Errorf("hybrid: %w", err)
	}
	probe, slowPath, err := h.probeFor(t, last)
	if err != nil {
		return false, err
	}
	found := false
	var probeErr error
	h.ev.ReachableFromManyFunc(frontier, nfa, func(x graph.Vertex) bool {
		var ok bool
		if probe != nil {
			ok = probe.Reaches(x)
		} else {
			ok, probeErr = slowPath(x)
			if probeErr != nil {
				return true
			}
		}
		if ok {
			found = true
			return true
		}
		return false
	})
	if probeErr != nil {
		return false, probeErr
	}
	return found, nil
}

// segmentCost estimates the edges an online expansion of seg+ touches: the
// total frequency of the segment's labels. Label frequencies are counted
// once per evaluator.
func (h *Evaluator) segmentCost(seg labelseq.Seq) int64 {
	if h.labelFreq == nil {
		g := h.ix.Graph()
		h.labelFreq = make([]int64, g.NumLabels())
		for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
			_, lbls := g.OutEdges(v)
			for _, l := range lbls {
				h.labelFreq[l]++
			}
		}
	}
	var cost int64
	for _, l := range seg {
		if int(l) < len(h.labelFreq) {
			cost += h.labelFreq[l]
		}
	}
	return cost
}

// evalBackward answers (s, t, first+ ∘ last+) by expanding last+ backward
// from t and probing each discovered vertex x for Query(s, x, first+).
// handled is false when the first segment is outside the index's class, in
// which case the caller falls back to the forward strategy.
func (h *Evaluator) evalBackward(s, t graph.Vertex, first, last labelseq.Seq) (ok, handled bool, err error) {
	if len(first) > h.ix.K() || !labelseq.IsPrimitive(first) {
		return false, false, nil
	}
	probe, perr := h.ix.NewSourceProbe(s, first)
	if perr != nil {
		return false, true, fmt.Errorf("hybrid: %w", perr)
	}
	nfa, nerr := automaton.NewPlus(last, h.ix.Graph().NumLabels())
	if nerr != nil {
		return false, true, fmt.Errorf("hybrid: %w", nerr)
	}
	found := false
	h.ev.ReachableIntoManyFunc([]graph.Vertex{t}, nfa, func(x graph.Vertex) bool {
		if probe.Reaches(x) {
			found = true
			return true
		}
		return false
	})
	return found, true, nil
}

// probeFor prepares the fast per-source test for (·, t, l+): an index
// TargetProbe when the constraint is within the index's class, otherwise a
// traversal-backed fallback. Exactly one of the two returns is non-nil.
func (h *Evaluator) probeFor(t graph.Vertex, l labelseq.Seq) (*core.TargetProbe, func(graph.Vertex) (bool, error), error) {
	if len(l) <= h.ix.K() && labelseq.IsPrimitive(l) {
		probe, err := h.ix.NewTargetProbe(t, l)
		if err != nil {
			return nil, nil, fmt.Errorf("hybrid: %w", err)
		}
		return probe, nil, nil
	}
	fallbackNFA, err := automaton.NewPlus(l, h.ix.Graph().NumLabels())
	if err != nil {
		return nil, nil, fmt.Errorf("hybrid: %w", err)
	}
	ev := traversal.NewEvaluator(h.ix.Graph())
	return nil, func(x graph.Vertex) (bool, error) {
		return ev.BFS(x, t, fallbackNFA), nil
	}, nil
}

// answerSegment evaluates (x, t, l+) through the index when the constraint
// is within the index's supported class, falling back to online traversal
// otherwise (e.g. l longer than the index's k).
func (h *Evaluator) answerSegment(x, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if len(l) <= h.ix.K() && labelseq.IsPrimitive(l) {
		return h.ix.Query(x, t, l)
	}
	nfa, err := automaton.NewPlus(l, h.ix.Graph().NumLabels())
	if err != nil {
		return false, fmt.Errorf("hybrid: %w", err)
	}
	return h.ev.BFS(x, t, nfa), nil
}

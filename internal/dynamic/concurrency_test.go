package dynamic

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

// TestQueryNeverFoldsInline is the latency regression pin for the old
// behavior where crossing the rebuild threshold made the NEXT QUERY fold and
// rebuild inline on the caller's goroutine. It wedges the fold path (by
// holding foldMu, which every fold must take) and proves that queries keep
// completing promptly while the journal sits far past the threshold — i.e.
// Query costs O(delta search), never O(rebuild).
func TestQueryNeverFoldsInline(t *testing.T) {
	r := rand.New(rand.NewSource(700))
	g := randomGraph(r, 50, 2, 200)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Block every fold before it can start rebuilding.
	d.foldMu.Lock()
	for i := 0; i < 40; i++ { // 10x past the threshold
		if err := d.AddEdge(graph.Vertex(r.Intn(50)), graph.Label(r.Intn(2)), graph.Vertex(r.Intn(50))); err != nil {
			t.Fatal(err)
		}
	}
	if d.JournalLen() < 40 {
		t.Fatalf("journal = %d, want all 40 pending while folds are blocked", d.JournalLen())
	}

	// Queries must complete while the fold is wedged. If Query performed or
	// waited for the rebuild, this goroutine would block on foldMu forever
	// and the deadline below would fire.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := graph.Vertex(r.Intn(50))
			tt := graph.Vertex(r.Intn(50))
			if _, err := d.Query(s, tt, labelseq.Seq{0, 1}); err != nil {
				t.Errorf("query under wedged fold: %v", err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("queries blocked behind the fold path: Query must be O(delta search), never O(rebuild)")
	}

	// Release the fold and let it drain: the journal folds in background.
	d.foldMu.Unlock()
	d.Quiesce()
	if d.JournalLen() >= 4 {
		t.Errorf("journal = %d after quiesce, want < threshold", d.JournalLen())
	}
	if d.Epoch() == 0 {
		t.Error("background fold never ran after release")
	}
}

// TestConcurrentAddQueryFold is the -race soak: readers query while a writer
// inserts and background folds rebuild and swap epochs underneath them.
// Exactness is checked two ways — monotonicity during the run (an answer
// that was once true can never become false: the graph only grows), and
// full agreement with online traversal over the final union after the dust
// settles.
func TestConcurrentAddQueryFold(t *testing.T) {
	r := rand.New(rand.NewSource(701))
	const (
		n       = 120
		labels  = 2
		inserts = 400
		readers = 4
	)
	g := randomGraph(r, n, labels, 3*n)
	var folds atomic.Uint64
	d, err := Build(g, Options{
		IndexOptions:     core.Options{K: 2},
		RebuildThreshold: 100,
		OnFold: func(st FoldStats) {
			if st.Err != nil {
				t.Errorf("fold failed: %v", st.Err)
			}
			folds.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A fixed query pool every reader cycles through, tracking per-query
	// monotonicity.
	type poolQuery struct {
		s, t graph.Vertex
		l    labelseq.Seq
	}
	pool := make([]poolQuery, 64)
	constraints := []labelseq.Seq{{0}, {1}, {0, 1}, {1, 0}}
	for i := range pool {
		pool[i] = poolQuery{
			s: graph.Vertex(r.Intn(n)),
			t: graph.Vertex(r.Intn(n)),
			l: constraints[r.Intn(len(constraints))],
		}
	}

	edges := make([]graph.Edge, inserts)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:   graph.Vertex(r.Intn(n)),
			Dst:   graph.Vertex(r.Intn(n)),
			Label: graph.Label(r.Intn(labels)),
		}
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			seenTrue := make([]bool, len(pool))
			rr := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				i := rr.Intn(len(pool))
				q := pool[i]
				got, err := d.Query(q.s, q.t, q.l)
				if err != nil {
					t.Errorf("concurrent query: %v", err)
					return
				}
				if seenTrue[i] && !got {
					t.Errorf("monotonicity violated: (%d,%d,%v+) was true, now false", q.s, q.t, q.l)
					return
				}
				if got {
					seenTrue[i] = true
				}
			}
		}(int64(800 + w))
	}

	for _, e := range edges {
		if err := d.AddEdge(e.Src, e.Label, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	// Let readers overlap the tail of the fold churn, then stop them.
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()
	d.Quiesce()

	if folds.Load() == 0 {
		t.Error("soak never crossed a fold epoch")
	}

	// Final exactness: delta answers equal traversal over the final union.
	union := d.Graph()
	for _, q := range pool {
		want, err := traversal.EvalRLC(union, q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		got, err := d.Query(q.s, q.t, q.l)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("final: delta(%d,%d,%v+) = %v, traversal = %v", q.s, q.t, q.l, got, want)
		}
	}
}

// TestEpochEquivalenceOracle folds repeatedly and, at every epoch (before
// and after each fold), requires the delta answers to agree with an index
// rebuilt from scratch over the same union — the "delta == from-scratch"
// oracle across the whole epoch lifecycle.
func TestEpochEquivalenceOracle(t *testing.T) {
	r := rand.New(rand.NewSource(702))
	const n, labels = 12, 2
	g := randomGraph(r, n, labels, 18)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}

	checkEpoch := func(stage string) {
		t.Helper()
		union := d.Graph()
		fresh, err := core.Build(union, core.Options{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, l := range core.PrimitiveConstraints(labels, 2) {
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					got, err := d.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					want, err := fresh.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%s (epoch %d, journal %d): delta(%d,%d,%v+) = %v, from-scratch rebuild = %v",
							stage, d.Epoch(), d.JournalLen(), s, tt, l, got, want)
					}
				}
			}
		}
	}

	checkEpoch("initial")
	for round := 0; round < 4; round++ {
		for i := 0; i < 5+r.Intn(6); i++ {
			if err := d.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(labels)), graph.Vertex(r.Intn(n))); err != nil {
				t.Fatal(err)
			}
		}
		checkEpoch("pre-fold")
		if err := d.Rebuild(); err != nil {
			t.Fatal(err)
		}
		if d.JournalLen() != 0 {
			t.Fatalf("round %d: journal = %d after fold", round, d.JournalLen())
		}
		if got := d.Epoch(); got != uint64(round+1) {
			t.Fatalf("round %d: epoch = %d", round, got)
		}
		checkEpoch("post-fold")
	}
}

// TestEvalExprOverUnion checks the generic NFA evaluation (the serving
// path for constraints outside the index class while the journal is
// non-empty) against plain traversal over the materialized union.
func TestEvalExprOverUnion(t *testing.T) {
	r := rand.New(rand.NewSource(703))
	g := randomGraph(r, 30, 3, 90)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if err := d.AddEdge(graph.Vertex(r.Intn(30)), graph.Label(r.Intn(3)), graph.Vertex(r.Intn(30))); err != nil {
			t.Fatal(err)
		}
	}
	union := d.Graph()
	exprs := []automaton.Expr{
		automaton.Plus(labelseq.Seq{0}),
		automaton.Plus(labelseq.Seq{0, 1, 2}), // beyond k=2: outside the index class
		automaton.Plus(labelseq.Seq{1, 1}),    // non-primitive single segment
		automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}),
		automaton.ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{2}),
	}
	ev := traversal.NewEvaluator(union)
	for i := 0; i < 400; i++ {
		s := graph.Vertex(r.Intn(30))
		tt := graph.Vertex(r.Intn(30))
		e := exprs[r.Intn(len(exprs))]
		got, err := d.EvalExpr(s, tt, e)
		if err != nil {
			t.Fatal(err)
		}
		nfa, err := automaton.Compile(e, union.NumLabels())
		if err != nil {
			t.Fatal(err)
		}
		if want := ev.BFS(s, tt, nfa); got != want {
			t.Fatalf("EvalExpr(%d,%d,%v) = %v, union BFS = %v", s, tt, e, got, want)
		}
	}
	if _, err := d.EvalExpr(-1, 0, exprs[0]); err == nil {
		t.Error("out-of-range source must fail")
	}
}

// TestAddEdgesBatchAtomic: an invalid edge anywhere in the batch rejects the
// whole batch, and a valid batch becomes visible in one publish.
func TestAddEdgesBatchAtomic(t *testing.T) {
	g := graph.FromEdges(4, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	err = d.AddEdges([]graph.Edge{
		{Src: 1, Dst: 2, Label: 1},
		{Src: 2, Dst: 9, Label: 0}, // out of range
	})
	if err == nil {
		t.Fatal("batch with an invalid edge must fail")
	}
	if d.JournalLen() != 0 {
		t.Fatalf("failed batch left %d journal edges", d.JournalLen())
	}
	if err := d.AddEdges([]graph.Edge{{Src: 1, Dst: 2, Label: 1}, {Src: 2, Dst: 3, Label: 0}}); err != nil {
		t.Fatal(err)
	}
	if d.JournalLen() != 2 {
		t.Fatalf("journal = %d, want 2", d.JournalLen())
	}
	ok, err := d.Query(0, 2, labelseq.Seq{0, 1})
	if err != nil || !ok {
		t.Fatalf("query through batch edges = %v, %v; want true", ok, err)
	}
}

// TestNewWithJournal: seeding a fresh DeltaGraph with carried-over edges is
// equivalent to inserting them, and invalid seeds are rejected.
func TestNewWithJournal(t *testing.T) {
	g := graph.FromEdges(4, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewWithJournal(g, ix, Options{RebuildThreshold: -1}, []graph.Edge{{Src: 1, Dst: 2, Label: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if d.JournalLen() != 1 {
		t.Fatalf("journal = %d, want 1", d.JournalLen())
	}
	ok, err := d.Query(0, 2, labelseq.Seq{0, 1})
	if err != nil || !ok {
		t.Fatalf("seeded query = %v, %v; want true", ok, err)
	}
	if _, err := NewWithJournal(g, ix, Options{}, []graph.Edge{{Src: 0, Dst: 7, Label: 0}}); err == nil {
		t.Error("invalid seeded edge must fail")
	}
}

// TestSealBoundary drives the journal across several segment seals and
// verifies answers keep agreeing with traversal at every size — the sealed
// adjacency and the unsealed tail must compose seamlessly.
func TestSealBoundary(t *testing.T) {
	r := rand.New(rand.NewSource(704))
	const n = 40
	g := randomGraph(r, n, 2, 60)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	l := labelseq.Seq{0, 1}
	for i := 0; i < 3*segmentSize+5; i++ {
		if err := d.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(2)), graph.Vertex(r.Intn(n))); err != nil {
			t.Fatal(err)
		}
		if i%7 != 0 {
			continue
		}
		union := d.Graph()
		for j := 0; j < 10; j++ {
			s := graph.Vertex(r.Intn(n))
			tt := graph.Vertex(r.Intn(n))
			want, err := traversal.EvalRLC(union, s, tt, l)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d.Query(s, tt, l)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("journal %d: delta(%d,%d,%v+) = %v, traversal = %v", d.JournalLen(), s, tt, l, got, want)
			}
		}
	}
}

// TestQueryRLCCancellation: a canceled context aborts the delta search with
// the context's error instead of running the product BFS to completion.
func TestQueryRLCCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(705))
	g := randomGraph(r, 40, 2, 80)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := d.AddEdge(graph.Vertex(r.Intn(40)), graph.Label(r.Intn(2)), graph.Vertex(r.Intn(40))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Find a query the base index answers false so the delta search runs
	// (the fast path returns before ever looking at the context).
	for s := graph.Vertex(0); int(s) < 40; s++ {
		for tt := graph.Vertex(0); int(tt) < 40; tt++ {
			if ok, _ := d.cur.Load().ix.Query(s, tt, labelseq.Seq{0, 1}); ok {
				continue
			}
			if _, err := d.QueryRLC(ctx, s, tt, labelseq.Seq{0, 1}); err != context.Canceled {
				t.Fatalf("QueryRLC under canceled ctx: err = %v, want context.Canceled", err)
			}
			if _, err := d.EvalExprCtx(ctx, s, tt, automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1})); err != context.Canceled {
				t.Fatalf("EvalExprCtx under canceled ctx: err = %v, want context.Canceled", err)
			}
			return
		}
	}
	t.Skip("no base-false query found")
}

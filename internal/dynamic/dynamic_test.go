package dynamic

import (
	"bytes"
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestInsertMakesQueryTrue(t *testing.T) {
	// Base: 0 -a-> 1, 2 -b-> 3. No (a b)+ path 0 -> 3 until 1 -b-> ...
	g := graph.FromEdges(4, 2, []graph.Edge{
		{Src: 0, Dst: 1, Label: 0},
		{Src: 2, Dst: 3, Label: 1},
	})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	l := labelseq.Seq{0, 1}
	ok, err := d.Query(0, 3, l)
	if err != nil || ok {
		t.Fatalf("before insert: %v, %v; want false", ok, err)
	}
	// Inserting 1 -b-> 0 and 0 -a-> 2... simpler: 1 -b-> t' where the
	// path 0 -a-> 1 -b-> 3 becomes (a b)^1.
	if err := d.AddEdge(1, 1, 3); err != nil {
		t.Fatal(err)
	}
	ok, err = d.Query(0, 3, l)
	if err != nil || !ok {
		t.Fatalf("after insert: %v, %v; want true", ok, err)
	}
	if d.JournalLen() != 1 {
		t.Errorf("journal length = %d", d.JournalLen())
	}
}

// TestDeltaEquivalence is the cornerstone: after random insertions, every
// query over the delta graph must agree with online traversal over the
// union graph — and with an index freshly rebuilt over the union.
func TestDeltaEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(600))
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(8)
		labels := 1 + r.Intn(3)
		g := randomGraph(r, n, labels, 1+r.Intn(2*n))
		k := 1 + r.Intn(2)
		d, err := Build(g, Options{IndexOptions: core.Options{K: k}, RebuildThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		// Insert a batch of random edges.
		for i := 0; i < 1+r.Intn(6); i++ {
			if err := d.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(labels)), graph.Vertex(r.Intn(n))); err != nil {
				t.Fatal(err)
			}
		}
		union := d.Graph()
		rebuilt, err := core.Build(union, core.Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		ev := traversal.NewEvaluator(union)
		for _, l := range core.PrimitiveConstraints(labels, k) {
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					want, err := traversal.EvalRLC(union, s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					got, err := d.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("trial %d: delta Query(%d,%d,%v+) = %v, union traversal = %v\nbase %v\njournal %d",
							trial, s, tt, l, got, want, g.Edges(), d.JournalLen())
					}
					fresh, err := rebuilt.Query(s, tt, l)
					if err != nil {
						t.Fatal(err)
					}
					if fresh != want {
						t.Fatalf("trial %d: rebuilt index disagrees with traversal", trial)
					}
				}
			}
		}
		_ = ev
	}
}

// TestRebuildFoldsJournal: after Rebuild the journal empties, queries stay
// correct, and the base index alone answers everything.
func TestRebuildFoldsJournal(t *testing.T) {
	r := rand.New(rand.NewSource(601))
	g := randomGraph(r, 10, 2, 20)
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := d.AddEdge(graph.Vertex(r.Intn(10)), graph.Label(r.Intn(2)), graph.Vertex(r.Intn(10))); err != nil {
			t.Fatal(err)
		}
	}
	union := d.Graph()
	if err := d.Rebuild(); err != nil {
		t.Fatal(err)
	}
	if d.JournalLen() != 0 {
		t.Fatalf("journal not folded: %d", d.JournalLen())
	}
	for _, l := range core.PrimitiveConstraints(2, 2) {
		for s := graph.Vertex(0); int(s) < 10; s++ {
			for tt := graph.Vertex(0); int(tt) < 10; tt++ {
				want, err := traversal.EvalRLC(union, s, tt, l)
				if err != nil {
					t.Fatal(err)
				}
				got, err := d.Query(s, tt, l)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("post-rebuild Query(%d,%d,%v+) = %v, want %v", s, tt, l, got, want)
				}
			}
		}
	}
}

// TestAutoRebuildThreshold: crossing the threshold triggers a BACKGROUND
// fold; after quiescing, the journal is empty and the epoch advanced.
func TestAutoRebuildThreshold(t *testing.T) {
	g := graph.FromEdges(4, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}, RebuildThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := d.AddEdge(1, 1, graph.Vertex(i%4)); err != nil {
			t.Fatal(err)
		}
	}
	d.Quiesce()
	if d.JournalLen() != 0 {
		t.Errorf("threshold rebuild did not trigger: journal = %d", d.JournalLen())
	}
	if d.Epoch() == 0 {
		t.Error("epoch did not advance after a background fold")
	}
	// Queries over the folded graph answer from the new base alone.
	ok, err := d.Query(0, 1, labelseq.Seq{0})
	if err != nil || !ok {
		t.Fatalf("post-fold query = %v, %v; want true", ok, err)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := graph.FromEdges(3, 2, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddEdge(0, 0, 99); err == nil {
		t.Error("out-of-range destination must fail")
	}
	if err := d.AddEdge(-1, 0, 1); err == nil {
		t.Error("negative source must fail")
	}
	if err := d.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range label must fail")
	}
	if err := d.RemoveEdge(0, 0, 1); err == nil {
		t.Error("deletions must be rejected")
	}
}

// TestChainThroughMultipleNewEdges: a witness that needs several journal
// edges at once.
func TestChainThroughMultipleNewEdges(t *testing.T) {
	g := graph.FromEdges(6, 1, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 1}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []graph.Edge{
		{Src: 1, Dst: 2, Label: 0},
		{Src: 2, Dst: 3, Label: 0},
		{Src: 3, Dst: 4, Label: 0},
	} {
		if err := d.AddEdge(e.Src, e.Label, e.Dst); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := d.Query(0, 4, labelseq.Seq{0})
	if err != nil || !ok {
		t.Fatalf("chain through 3 new edges = %v, %v; want true", ok, err)
	}
	ok, err = d.Query(0, 5, labelseq.Seq{0})
	if err != nil || ok {
		t.Fatalf("unreachable vertex = %v, %v; want false", ok, err)
	}
}

// TestProbeCacheInvalidation: a cached probe must not leak stale answers
// across insertions.
func TestProbeCacheInvalidation(t *testing.T) {
	g := graph.FromEdges(4, 1, []graph.Edge{{Src: 0, Dst: 1, Label: 0}})
	d, err := Build(g, Options{IndexOptions: core.Options{K: 1}, RebuildThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	l := labelseq.Seq{0}
	if ok, _ := d.Query(0, 3, l); ok {
		t.Fatal("0 should not reach 3 yet")
	}
	if err := d.AddEdge(1, 0, 3); err != nil {
		t.Fatal(err)
	}
	ok, err := d.Query(0, 3, l)
	if err != nil || !ok {
		t.Fatalf("after insert: %v, %v; want true", ok, err)
	}
}

// TestParallelRebuildMatchesSequential: a fold-and-rebuild with parallel
// IndexOptions.BuildWorkers produces exactly the index a sequential rebuild
// produces — the DeltaGraph surface of the deterministic parallel build.
func TestParallelRebuildMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(602))
	g := randomGraph(r, 60, 3, 240)
	edges := make([]graph.Edge, 12)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:   graph.Vertex(r.Intn(60)),
			Dst:   graph.Vertex(r.Intn(60)),
			Label: graph.Label(r.Intn(3)),
		}
	}

	rebuild := func(workers int) *core.Index {
		t.Helper()
		d, err := Build(g, Options{
			IndexOptions:     core.Options{K: 2, BuildWorkers: workers},
			RebuildThreshold: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range edges {
			if err := d.AddEdge(e.Src, e.Label, e.Dst); err != nil {
				t.Fatal(err)
			}
		}
		if err := d.Rebuild(); err != nil {
			t.Fatal(err)
		}
		return d.Index()
	}

	var seqBytes, parBytes bytes.Buffer
	if err := rebuild(1).Write(&seqBytes); err != nil {
		t.Fatal(err)
	}
	if err := rebuild(4).Write(&parBytes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes.Bytes(), parBytes.Bytes()) {
		t.Error("parallel fold-and-rebuild serialized differently from sequential rebuild")
	}
}

// Package dynamic extends the (static) RLC index to graphs that receive
// edge insertions — the dynamic setting the paper explicitly leaves open
// ("a static and centralized graph", Section II; streaming evaluation is
// cited as orthogonal work).
//
// A DeltaGraph overlays a journal of inserted edges on an indexed base
// graph. Queries stay exact:
//
//  1. If the base index answers true, the answer is true (insertions only
//     add paths, never remove them).
//  2. Otherwise a product BFS runs over the UNION graph (base + journal),
//     accelerated by the base index: whenever the search crosses a period
//     boundary at a vertex x, one probe answers whether x reaches the
//     target through base edges alone — so any witness path decomposes
//     into a traversed prefix (which may use new edges) and an indexed
//     suffix, and true answers return as soon as the prefix is found.
//
// # Concurrency: the epoch pipeline
//
// A DeltaGraph is an RCU-style epoch structure. All state a reader touches
// lives in one immutable view — base graph, base index, a frozen journal
// prefix, a copy-on-write union adjacency for the sealed part of the
// journal, and a probe cache — published through a single atomic pointer.
// Any number of goroutines Query without taking a lock while one writer
// appends: inserts extend the shared journal only at positions no published
// view can read, seal full segments into a fresh adjacency map (shared
// per-vertex slices are copied, never extended in place), and publish a
// successor view. The whole structure is -race-clean by construction.
//
// Amortization: when the journal grows past RebuildThreshold edges, the
// insert that crossed the line triggers a BACKGROUND fold — never the query
// path, and never inline on the inserting caller beyond a compare-and-swap.
// The folder materializes the union, rebuilds the index (honoring
// Options.IndexOptions.BuildWorkers; the parallel build is deterministic,
// so the rebuilt index is byte-identical to a sequential rebuild's), and
// installs the next epoch with any concurrently inserted edges carried
// over. Queries pinned to the old epoch keep answering exactly against the
// same edge set throughout; Rebuild folds synchronously and Quiesce waits
// for an in-flight background fold.
//
// The serving layer (internal/server) drives the same epoch machinery
// itself — FoldInput, JournalTail, NewWithJournal — because its folds also
// write v2 snapshot bundles and hot-swap server generations. Deletions are
// not supported (they can invalidate arbitrary entries); delete-heavy
// workloads should rebuild, exactly as the paper's static setting implies.
package dynamic

// Package dynamic extends the (static) RLC index to graphs that receive
// edge insertions — the dynamic setting the paper explicitly leaves open
// ("a static and centralized graph", Section II; streaming evaluation is
// cited as orthogonal work).
//
// A DeltaGraph overlays a journal of inserted edges on an indexed base
// graph. Queries stay exact:
//
//  1. If the base index answers true, the answer is true (insertions only
//     add paths, never remove them).
//  2. Otherwise a product BFS runs over the UNION graph (base + journal),
//     accelerated by the base index: whenever the search crosses a period
//     boundary at a vertex x, one probe answers whether x reaches the
//     target through base edges alone — so any witness path decomposes
//     into a traversed prefix (which may use new edges) and an indexed
//     suffix, and true answers return as soon as the prefix is found.
//
// Amortization: when the journal grows past RebuildThreshold edges, the
// next query folds the journal into the base and rebuilds the index. The
// rebuild honors Options.IndexOptions.BuildWorkers, so fold-and-rebuild
// runs on the parallel construction path by default (BuildWorkers zero
// means GOMAXPROCS) — and, because the parallel build is deterministic,
// the rebuilt index is identical to a sequential rebuild's. Deletions are
// not supported (they can invalidate arbitrary entries); delete-heavy
// workloads should rebuild, exactly as the paper's static setting implies.
package dynamic

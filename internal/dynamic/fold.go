package dynamic

import (
	"sync"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// unionGraph materializes base plus the given journal edges as a fresh
// immutable graph (duplicates collapse in the builder). Display names carry
// over so folded graphs keep resolving named queries.
func unionGraph(base *graph.Graph, journal []graph.Edge) *graph.Graph {
	b := graph.NewBuilder(base.NumVertices(), base.NumLabels())
	b.SetVertexNames(base.VertexNames())
	b.SetLabelNames(base.LabelNames())
	for _, e := range base.Edges() {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	for _, e := range journal {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	return b.Build()
}

// FoldInput materializes the union of the current base and journal, and
// reports how many journal edges it covers. The serving layer builds (and
// bundles) the next epoch's index from it, then installs the result with
// JournalTail(folded) carried over — the two halves of a fold it performs
// itself because it also writes snapshots and swaps server generations.
func (d *DeltaGraph) FoldInput() (union *graph.Graph, folded int) {
	v := d.cur.Load()
	return unionGraph(v.base, v.journal[:v.jlen]), v.jlen
}

// JournalTail copies the journal edges from position from (a folded count
// previously returned by FoldInput) to the current end — the un-folded
// inserts a new epoch must carry over.
func (d *DeltaGraph) JournalTail(from int) []graph.Edge {
	v := d.cur.Load()
	if from >= v.jlen {
		return nil
	}
	tail := make([]graph.Edge, v.jlen-from)
	copy(tail, v.journal[from:v.jlen])
	return tail
}

// Rebuild folds the journal into the base graph and rebuilds the index,
// synchronously. Concurrent queries keep answering (exactly) against the
// old epoch until the new one is installed; concurrent inserts land in the
// journal and survive the fold.
func (d *DeltaGraph) Rebuild() error {
	return d.foldOnce()
}

// Quiesce blocks until no background fold is running. It does not prevent
// new folds from starting (a concurrent writer can re-cross the threshold);
// call it when the writers are done, e.g. before asserting on JournalLen in
// tests or before shutdown.
func (d *DeltaGraph) Quiesce() {
	for {
		d.foldCtl.Lock()
		running, done := d.foldRunning, d.foldDone
		d.foldCtl.Unlock()
		if !running {
			return
		}
		<-done
	}
}

// maybeTriggerFold starts one background fold goroutine when the journal
// crosses the threshold. Insert callers never fold inline — they only flip
// a flag and return — and at most one folder runs at a time; it keeps
// folding until the journal is back under the threshold or a rebuild fails.
func (d *DeltaGraph) maybeTriggerFold(jlen int) {
	thr := d.opts.RebuildThreshold
	if thr <= 0 || jlen < thr {
		return
	}
	d.foldCtl.Lock()
	if d.foldRunning {
		d.foldCtl.Unlock()
		return
	}
	d.foldRunning = true
	done := make(chan struct{})
	d.foldDone = done
	d.foldCtl.Unlock()
	go func() {
		defer func() {
			d.foldCtl.Lock()
			d.foldRunning = false
			d.foldCtl.Unlock()
			close(done)
		}()
		for d.cur.Load().jlen >= thr {
			if err := d.foldOnce(); err != nil {
				return
			}
		}
	}()
}

// foldOnce performs one complete fold: materialize the union, rebuild the
// index (the long part — no locks held that the write path needs for more
// than the final install), and atomically install the new epoch with any
// concurrently inserted edges carried over.
func (d *DeltaGraph) foldOnce() error {
	d.foldMu.Lock()
	defer d.foldMu.Unlock()
	start := time.Now()
	union, folded := d.FoldInput()
	if folded == 0 {
		return nil
	}
	ix, err := core.Build(union, d.opts.IndexOptions)
	if err != nil {
		if d.opts.OnFold != nil {
			d.opts.OnFold(FoldStats{Epoch: d.Epoch(), Folded: 0, Journal: d.JournalLen(), Duration: time.Since(start), Err: err})
		}
		return err
	}
	st := d.install(union, ix, folded)
	st.Duration = time.Since(start)
	if d.opts.OnFold != nil {
		d.opts.OnFold(st)
	}
	return nil
}

// install publishes a new epoch: base becomes the folded graph with its
// fresh index, and the journal keeps only the edges inserted after the fold
// began. One atomic pointer store; readers pinned to the old view keep an
// exact (base ∪ journal) snapshot of the same edge set.
func (d *DeltaGraph) install(base *graph.Graph, ix *core.Index, folded int) FoldStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.cur.Load()
	leftover := make([]graph.Edge, v.jlen-folded)
	copy(leftover, v.journal[folded:v.jlen])
	nv := &view{
		epoch:   v.epoch + 1,
		base:    base,
		ix:      ix,
		journal: leftover,
		jlen:    len(leftover),
		adj:     map[graph.Vertex][]graph.Edge{},
		probes:  &sync.Map{},
	}
	if nv.jlen > 0 {
		nv.seal()
	}
	d.cur.Store(nv)
	return FoldStats{Epoch: nv.epoch, Folded: folded, Journal: nv.jlen}
}

package dynamic

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TestSealBoundaryDeterministic walks the seal watermark across the
// segment boundary explicitly: just under (31 edges stay unsealed),
// exactly at (32 seals the whole run), just over (a 1-edge tail stays
// unsealed until a forced Seal), and a batch whose tail lands past the
// boundary (sealed in one piece).
func TestSealBoundaryDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	g := randomGraph(r, 32, 2, 40)
	d, err := Build(g, Options{RebuildThreshold: -1, IndexOptions: core.Options{K: 2}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(n int) []graph.Edge {
		edges := make([]graph.Edge, n)
		for i := range edges {
			edges[i] = graph.Edge{
				Src:   graph.Vertex(r.Intn(32)),
				Dst:   graph.Vertex(r.Intn(32)),
				Label: graph.Label(r.Intn(2)),
			}
		}
		return edges
	}

	// Just under the boundary: nothing seals, nothing exports.
	if err := d.AddEdges(mk(segmentSize - 1)); err != nil {
		t.Fatal(err)
	}
	if got := d.SealedLen(); got != 0 {
		t.Fatalf("sealed after %d edges = %d, want 0", segmentSize-1, got)
	}
	if got := d.ExportSealed(0); got != nil {
		t.Fatalf("exported %d unsealed edges", len(got))
	}

	// Exactly at the boundary: the full run seals and exports once.
	if err := d.AddEdges(mk(1)); err != nil {
		t.Fatal(err)
	}
	if got := d.SealedLen(); got != segmentSize {
		t.Fatalf("sealed at boundary = %d, want %d", got, segmentSize)
	}
	if got := len(d.ExportSealed(0)); got != segmentSize {
		t.Fatalf("exported %d edges, want %d", got, segmentSize)
	}

	// Just over: the 1-edge tail stays unsealed...
	if err := d.AddEdges(mk(1)); err != nil {
		t.Fatal(err)
	}
	if got := d.SealedLen(); got != segmentSize {
		t.Fatalf("sealed after tail edge = %d, want %d", got, segmentSize)
	}
	if got := d.ExportSealed(segmentSize); got != nil {
		t.Fatalf("exported %d edges past the watermark", len(got))
	}
	// ...until a forced Seal flushes it.
	d.Seal()
	if got := d.SealedLen(); got != segmentSize+1 {
		t.Fatalf("sealed after Seal = %d, want %d", got, segmentSize+1)
	}
	if got := len(d.ExportSealed(segmentSize)); got != 1 {
		t.Fatalf("exported %d flushed edges, want 1", got)
	}
	d.Seal() // idempotent on an empty tail
	if got := d.SealedLen(); got != segmentSize+1 {
		t.Fatalf("sealed after no-op Seal = %d, want %d", got, segmentSize+1)
	}

	// A batch whose tail crosses the boundary seals in one piece.
	if err := d.AddEdges(mk(segmentSize + 2)); err != nil {
		t.Fatal(err)
	}
	if got, want := d.SealedLen(), 2*segmentSize+3; got != want {
		t.Fatalf("sealed after crossing batch = %d, want %d", got, want)
	}
}

// TestSealBoundaryConcurrentExport is the satellite race test: a writer
// appends batches sized to land exactly at, just under, and just over the
// segment seal boundary while a concurrent exporter drains sealed
// segments. The exporter asserts that (a) no edge is ever exported before
// its batch sealed — every export cursor lands on a batch-boundary prefix
// sum, because seals only happen at publish points — (b) no edge is
// exported twice or out of order (content must replay the planned stream
// exactly), and (c) after a final flush the exporter has everything.
// Run under -race this also proves the export path is safe against the
// writer and concurrent readers.
func TestSealBoundaryConcurrentExport(t *testing.T) {
	const rounds = 30
	r := rand.New(rand.NewSource(42))
	g := randomGraph(r, 64, 2, 80)
	d, err := Build(g, Options{RebuildThreshold: -1, IndexOptions: core.Options{K: 2}})
	if err != nil {
		t.Fatal(err)
	}

	// Batch sizes exercise every boundary relation: exact multiples of the
	// segment size, one under, one over, and tiny trickles.
	sizes := []int{segmentSize, segmentSize - 1, 1, segmentSize + 1, 2, segmentSize, 1, segmentSize - 1}
	var (
		plan       []graph.Edge
		boundaries = map[int]bool{0: true}
	)
	total := 0
	for i := 0; i < rounds; i++ {
		n := sizes[i%len(sizes)]
		for j := 0; j < n; j++ {
			plan = append(plan, graph.Edge{
				Src:   graph.Vertex(r.Intn(64)),
				Dst:   graph.Vertex(r.Intn(64)),
				Label: graph.Label(r.Intn(2)),
			})
		}
		total += n
		boundaries[total] = true
	}

	var (
		wg         sync.WaitGroup
		writerDone atomic.Bool
		exported   []graph.Edge
	)
	wg.Add(2)
	// Exporter: drain sealed segments as they appear.
	go func() {
		defer wg.Done()
		cursor := 0
		for {
			batch := d.ExportSealed(cursor)
			if len(batch) == 0 {
				if writerDone.Load() {
					// One final pass after the writer's last flush.
					if tail := d.ExportSealed(cursor); len(tail) > 0 {
						if !boundaries[cursor] {
							t.Errorf("export cursor %d is not a batch boundary", cursor)
						}
						exported = append(exported, tail...)
					}
					return
				}
				time.Sleep(20 * time.Microsecond)
				continue
			}
			if !boundaries[cursor] {
				t.Errorf("export cursor %d is not a batch boundary: unsealed or torn export", cursor)
				return
			}
			exported = append(exported, batch...)
			cursor += len(batch)
		}
	}()
	// Concurrent readers keep the lock-free query path busy during seals.
	stopReads := make(chan struct{})
	var rwg sync.WaitGroup
	for i := 0; i < 2; i++ {
		rwg.Add(1)
		go func(seed int64) {
			defer rwg.Done()
			rr := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopReads:
					return
				default:
				}
				s := graph.Vertex(rr.Intn(64))
				u := graph.Vertex(rr.Intn(64))
				if _, err := d.Query(s, u, labelseq.Seq{0, 1}); err != nil {
					t.Errorf("query during seals: %v", err)
					return
				}
			}
		}(int64(100 + i))
	}
	// Writer: append the planned batches with a tiny cadence so seals
	// interleave with exports.
	go func() {
		defer wg.Done()
		off := 0
		for i := 0; i < rounds; i++ {
			n := sizes[i%len(sizes)]
			if err := d.AddEdges(plan[off : off+n]); err != nil {
				t.Errorf("append batch %d: %v", i, err)
				return
			}
			off += n
			time.Sleep(50 * time.Microsecond)
		}
		d.Seal() // flush the final partial tail for the exporter
		writerDone.Store(true)
	}()
	wg.Wait()
	close(stopReads)
	rwg.Wait()

	if len(exported) != total {
		t.Fatalf("exported %d edges, want %d", len(exported), total)
	}
	for i := range exported {
		if exported[i] != plan[i] {
			t.Fatalf("exported edge %d = %+v, want %+v (duplicate, gap, or reorder)", i, exported[i], plan[i])
		}
	}
	if got := d.SealedLen(); got != total {
		t.Fatalf("final sealed watermark = %d, want %d", got, total)
	}
}

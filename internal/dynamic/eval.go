package dynamic

import (
	"context"
	"fmt"
	"math/bits"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// deltaQuery searches the union graph (base ∪ journal) for a witness of
// (s, t, L+): a product BFS over (vertex, phase) that consults the base
// index at every period boundary. The probe makes true answers terminate at
// the first boundary vertex whose indexed suffix completes the path. Union
// adjacency is composed on the fly — base CSR, sealed copy-on-write map,
// then a linear scan of the one unsealed journal segment — so the search
// touches no lock and no memory another goroutine may write. ctx is
// checked once per BFS level.
func (v *view) deltaQuery(ctx context.Context, s, t graph.Vertex, l labelseq.Seq, probe *core.TargetProbe) (bool, error) {
	m := len(l)
	seen := make([]bool, v.base.NumVertices()*m)

	// Seed: s at phase 0. A boundary probe at the seed is exactly the
	// base-index query the caller already ran, so skip it.
	frontier := []int64{int64(s) * int64(m)}
	seen[frontier[0]] = true

	var next []int64
	// step expands one product edge; it reports true when the target is
	// reached on a period boundary or the base index completes the path.
	step := func(phase int, expected graph.Label, y graph.Vertex, lb graph.Label) bool {
		if lb != expected {
			return false
		}
		np := (phase + 1) % m
		// Arriving at the target on a period boundary completes the
		// path. Checked before the seen-skip: when s == t the accept
		// state coincides with the pre-marked seed.
		if np == 0 && y == t {
			return true
		}
		id := int64(y)*int64(m) + int64(np)
		if seen[id] {
			return false
		}
		seen[id] = true
		// Period boundary: the traversed prefix is L^j; the path
		// completes if the BASE index carries a suffix from y. (Seen
		// boundary nodes were probed on first visit; the seed needs no
		// probe — it equals the caller's base query.)
		if np == 0 && probe.Reaches(y) {
			return true
		}
		next = append(next, id)
		return false
	}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		next = next[:0]
		for _, node := range frontier {
			u := graph.Vertex(node / int64(m))
			phase := int(node % int64(m))
			expected := l[phase]
			dsts, lbls := v.base.OutEdges(u)
			for i := range dsts {
				if step(phase, expected, dsts[i], lbls[i]) {
					return true, nil
				}
			}
			for _, e := range v.adj[u] {
				if step(phase, expected, e.Dst, e.Label) {
					return true, nil
				}
			}
			for _, e := range v.journal[v.sealed:v.jlen] {
				if e.Src == u && step(phase, expected, e.Dst, e.Label) {
					return true, nil
				}
			}
		}
		frontier, next = next, frontier
	}
	return false, nil
}

// EvalExpr answers an arbitrary path expression (any concatenation of plus
// segments, including constraints outside the index's class) over the
// current union graph, exactly, by an NFA-guided product BFS. It carries no
// index acceleration — the serving layer routes here only when the journal
// is non-empty and the expression falls outside the single-L+ index class —
// but like Query it is lock-free and safe for any number of concurrent
// callers.
func (d *DeltaGraph) EvalExpr(s, t graph.Vertex, e automaton.Expr) (bool, error) {
	return d.EvalExprCtx(context.Background(), s, t, e)
}

// EvalExprCtx is EvalExpr under a context, checked once per BFS level.
func (d *DeltaGraph) EvalExprCtx(ctx context.Context, s, t graph.Vertex, e automaton.Expr) (bool, error) {
	v := d.cur.Load()
	n := graph.Vertex(v.base.NumVertices())
	if s < 0 || s >= n || t < 0 || t >= n {
		return false, fmt.Errorf("%w: query (%d, %d) outside [0, %d)", core.ErrVertexRange, s, t, n)
	}
	nfa, err := automaton.Compile(e, v.base.NumLabels())
	if err != nil {
		return false, err
	}
	return v.evalNFA(ctx, s, t, nfa)
}

// evalNFA is a forward NFA-guided BFS over the union adjacency — the
// traversal package's BFS re-based onto the lock-free view. Expressions
// never accept the empty word (every plus segment consumes at least one
// label), so the seed is never accepting.
func (v *view) evalNFA(ctx context.Context, s, t graph.Vertex, nfa *automaton.NFA) (bool, error) {
	ns := nfa.NumStates()
	accept := nfa.Accept()
	seen := make([]bool, v.base.NumVertices()*ns)

	type node struct {
		v graph.Vertex
		q automaton.State
	}
	frontier := []node{{s, 0}}
	seen[int(s)*ns] = true

	var next []node
	step := func(q automaton.State, y graph.Vertex, lb graph.Label) bool {
		for m := nfa.Step(q, lb); m != 0; m &= m - 1 {
			nq := automaton.State(trailingZeros(m))
			id := int(y)*ns + int(nq)
			if seen[id] {
				continue
			}
			if y == t && nq == accept {
				return true
			}
			seen[id] = true
			next = append(next, node{y, nq})
		}
		return false
	}

	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		next = next[:0]
		for _, nd := range frontier {
			dsts, lbls := v.base.OutEdges(nd.v)
			for i := range dsts {
				if step(nd.q, dsts[i], lbls[i]) {
					return true, nil
				}
			}
			for _, e := range v.adj[nd.v] {
				if step(nd.q, e.Dst, e.Label) {
					return true, nil
				}
			}
			for _, e := range v.journal[v.sealed:v.jlen] {
				if e.Src == nd.v && step(nd.q, e.Dst, e.Label) {
					return true, nil
				}
			}
		}
		frontier, next = next, frontier
	}
	return false, nil
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

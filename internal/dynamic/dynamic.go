package dynamic

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// DefaultRebuildThreshold is the journal size that triggers an automatic
// background fold-and-rebuild.
const DefaultRebuildThreshold = 1024

// segmentSize is how many journal edges accumulate before the writer seals
// them into the copy-on-write adjacency map. Readers scan at most one
// unsealed segment linearly per visited vertex, so the constant bounds the
// per-vertex overhead of the delta search while keeping the per-insert
// sealing cost amortized O(1).
const segmentSize = 32

// ErrDeletionsUnsupported is returned by RemoveEdge.
var ErrDeletionsUnsupported = errors.New("dynamic: edge deletions require a rebuild; the RLC index is insert-only incremental")

// FoldStats describes one completed fold-and-rebuild.
type FoldStats struct {
	// Epoch is the epoch the fold produced (first fold: 1).
	Epoch uint64
	// Folded is the number of journal edges folded into the new base.
	Folded int
	// Journal is the number of un-folded edges carried into the new epoch
	// (edges inserted while the rebuild ran).
	Journal int
	// Duration is the wall time of the fold, including the index build.
	Duration time.Duration
	// Err is non-nil when the rebuild failed; the previous epoch keeps
	// serving and the journal keeps growing.
	Err error
}

// Options configures a DeltaGraph.
type Options struct {
	// RebuildThreshold is the journal size at which an insert triggers a
	// background fold-and-rebuild. Zero means DefaultRebuildThreshold;
	// negative disables automatic rebuilds (the caller folds explicitly
	// with Rebuild, as the serving layer does).
	RebuildThreshold int
	// IndexOptions configures (re)builds of the base index.
	IndexOptions core.Options
	// OnFold, when non-nil, is called after every completed fold — the
	// background ones and explicit Rebuild calls — including failed ones
	// (Err set). It runs on the folding goroutine; keep it quick.
	OnFold func(FoldStats)
}

// view is one immutable epoch of the delta graph: a base graph with its
// index, plus the journal prefix this view can see. Readers load the current
// view with one atomic pointer load and then touch nothing mutable — the
// journal prefix [:jlen] is frozen (the writer only ever appends at >= jlen
// of the newest view), adj is never mutated after publication, and probes is
// a concurrent map of immutable values.
type view struct {
	epoch uint64
	base  *graph.Graph
	ix    *core.Index

	// journal is the shared append-only edge log; this view reads only
	// journal[:jlen]. The writer may append at index jlen of the NEWEST
	// view (a slot no published view can read), then publish a successor
	// view with a larger jlen — the atomic pointer store orders the write
	// before any read.
	journal []graph.Edge
	jlen    int

	// adj is the copy-on-write union adjacency for the sealed journal
	// prefix [:sealed]: src -> its journal out-edges. Edges in
	// journal[sealed:jlen] (at most one unsealed segment) are found by a
	// linear tail scan instead.
	adj    map[graph.Vertex][]graph.Edge
	sealed int

	// probes caches target probes per (t, constraint). A probe reflects
	// only the base index, which is immutable for the whole epoch, so the
	// cache needs no invalidation on inserts — the delta search handles
	// journal paths itself — and is shared by every view of the epoch.
	probes *sync.Map
}

type probeKey struct {
	t          graph.Vertex
	constraint string
}

// DeltaGraph is an RLC-indexed graph that accepts edge insertions while
// answering queries exactly. It is safe for concurrent use: any number of
// goroutines may Query (the read path takes no locks) while others insert,
// and a background goroutine folds the journal into a rebuilt base index
// once it crosses Options.RebuildThreshold — queries never block on, or
// perform, a rebuild.
type DeltaGraph struct {
	opts Options

	// mu serializes writers (AddEdge/AddEdges) and epoch installs. The
	// read path never takes it.
	mu  sync.Mutex
	cur atomic.Pointer[view]

	// foldMu serializes folds (background and explicit Rebuild). foldCtl
	// guards the background-folder bookkeeping: foldRunning dedups folder
	// goroutines, and foldDone is closed when the current folder exits —
	// what Quiesce waits on. (A plain channel instead of a WaitGroup: a
	// reused WaitGroup would race a new folder's Add against a parked
	// Quiesce Wait.)
	foldMu      sync.Mutex
	foldCtl     sync.Mutex
	foldRunning bool
	foldDone    chan struct{}
}

// New wraps an already-indexed graph. The index must have been built over g.
func New(g *graph.Graph, ix *core.Index, opts Options) *DeltaGraph {
	if opts.RebuildThreshold == 0 {
		opts.RebuildThreshold = DefaultRebuildThreshold
	}
	if opts.IndexOptions == (core.Options{}) {
		// Unconfigured folds inherit the wrapped index's build options (k,
		// packed form, size budget), so every rebuilt epoch keeps the base
		// index's representation — in particular a size-budgeted base stays
		// within its MaxIndexBytes across folds.
		opts.IndexOptions = ix.BuildOptions()
	}
	d := &DeltaGraph{opts: opts}
	d.cur.Store(&view{base: g, ix: ix, adj: map[graph.Vertex][]graph.Edge{}, probes: &sync.Map{}})
	return d
}

// NewWithJournal wraps an indexed graph and seeds the journal with edges not
// yet folded into it — how the serving layer carries un-folded inserts from
// a retired epoch into the one built from a fresh snapshot. Every edge is
// validated against g like an AddEdge.
func NewWithJournal(g *graph.Graph, ix *core.Index, opts Options, journal []graph.Edge) (*DeltaGraph, error) {
	d := New(g, ix, opts)
	if err := d.AddEdges(journal); err != nil {
		return nil, err
	}
	return d, nil
}

// Build indexes g and wraps it in one step.
func Build(g *graph.Graph, opts Options) (*DeltaGraph, error) {
	ix, err := core.Build(g, opts.IndexOptions)
	if err != nil {
		return nil, err
	}
	return New(g, ix, opts), nil
}

// Graph materializes the current union graph (base + journal). Unlike the
// read path it allocates; it exists for folds, tests, and inspection.
func (d *DeltaGraph) Graph() *graph.Graph {
	v := d.cur.Load()
	return unionGraph(v.base, v.journal[:v.jlen])
}

// Index returns the current epoch's base index. It reflects the base graph
// only; use Query for answers that include journal edges.
func (d *DeltaGraph) Index() *core.Index { return d.cur.Load().ix }

// JournalLen returns the number of edges awaiting a fold.
func (d *DeltaGraph) JournalLen() int { return d.cur.Load().jlen }

// Epoch returns how many folds have completed (0 for the initial base).
func (d *DeltaGraph) Epoch() uint64 { return d.cur.Load().epoch }

// validateEdge checks an insert against the fixed vertex/label universe,
// wrapping the index's typed sentinels so callers (and HTTP clients, via the
// serving layer's error codes) classify failures without parsing text.
func validateEdge(g *graph.Graph, src graph.Vertex, label graph.Label, dst graph.Vertex) error {
	n := graph.Vertex(g.NumVertices())
	if src < 0 || src >= n {
		return fmt.Errorf("%w: source %d out of range [0, %d)", core.ErrVertexRange, src, n)
	}
	if dst < 0 || dst >= n {
		return fmt.Errorf("%w: destination %d out of range [0, %d)", core.ErrVertexRange, dst, n)
	}
	if label < 0 || int(label) >= g.NumLabels() {
		return fmt.Errorf("%w: label %d outside the base label set of %d", core.ErrUnknownLabel, label, g.NumLabels())
	}
	return nil
}

// AddEdge inserts a directed labeled edge. Vertices and labels beyond the
// base graph's range are rejected with errors wrapping ErrVertexRange /
// ErrUnknownLabel — grow the graph and rebuild for schema changes. Duplicate
// edges are accepted and deduplicated at fold time.
func (d *DeltaGraph) AddEdge(src graph.Vertex, label graph.Label, dst graph.Vertex) error {
	return d.AddEdges([]graph.Edge{{Src: src, Dst: dst, Label: label}})
}

// AddEdges inserts a batch atomically: either every edge validates and the
// batch becomes visible to readers in one publish, or none of it does.
func (d *DeltaGraph) AddEdges(edges []graph.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	d.mu.Lock()
	v := d.cur.Load()
	for _, e := range edges {
		if err := validateEdge(v.base, e.Src, e.Label, e.Dst); err != nil {
			d.mu.Unlock()
			return err
		}
	}
	nv := v.appendEdges(edges)
	d.cur.Store(nv)
	jlen := nv.jlen
	d.mu.Unlock()
	d.maybeTriggerFold(jlen)
	return nil
}

// appendEdges extends the journal by edges and returns the successor view,
// sealing full segments into a fresh copy-on-write adjacency map. Called
// with d.mu held; the receiver stays untouched.
func (v *view) appendEdges(edges []graph.Edge) *view {
	nv := &view{
		epoch:   v.epoch,
		base:    v.base,
		ix:      v.ix,
		journal: append(v.journal[:v.jlen], edges...),
		jlen:    v.jlen + len(edges),
		adj:     v.adj,
		sealed:  v.sealed,
		probes:  v.probes,
	}
	if nv.jlen-nv.sealed >= segmentSize {
		nv.seal()
	}
	return nv
}

// seal folds journal[sealed:jlen] into a fresh adjacency map. Shared
// per-vertex slices are copied in full before extension, so no memory
// reachable from an older view is ever written.
func (v *view) seal() {
	adj := make(map[graph.Vertex][]graph.Edge, len(v.adj)+8)
	for src, es := range v.adj {
		adj[src] = es
	}
	added := make(map[graph.Vertex]int, 8)
	for _, e := range v.journal[v.sealed:v.jlen] {
		added[e.Src]++
	}
	for src, k := range added {
		old := adj[src]
		ne := make([]graph.Edge, len(old), len(old)+k)
		copy(ne, old)
		adj[src] = ne
	}
	for _, e := range v.journal[v.sealed:v.jlen] {
		adj[e.Src] = append(adj[e.Src], e)
	}
	v.adj = adj
	v.sealed = v.jlen
}

// SealedLen returns the sealed journal watermark: every edge in
// journal[:SealedLen()] has been folded into the copy-on-write adjacency
// and frozen for good. Only sealed edges are exported for replication —
// the watermark never moves backwards within an epoch, so an exporter that
// advances a cursor by what ExportSealed returned can never ship an edge
// twice or ship one the writer could still be arranging.
func (d *DeltaGraph) SealedLen() int { return d.cur.Load().sealed }

// ExportSealed copies the sealed journal run [from, SealedLen()) — the
// replication export hook. from must be a cursor previously advanced by
// this method (or 0); a cursor beyond the sealed watermark returns nil.
// The copy is taken from one immutable view, so it is safe against
// concurrent writers and folds; the caller advances its cursor by
// len(result).
func (d *DeltaGraph) ExportSealed(from int) []graph.Edge {
	v := d.cur.Load()
	if from < 0 || from >= v.sealed {
		return nil
	}
	out := make([]graph.Edge, v.sealed-from)
	copy(out, v.journal[from:v.sealed])
	return out
}

// Seal forces the unsealed journal tail into the sealed region, publishing
// a successor view. Replication uses it to flush edges that have not yet
// crossed the segment boundary on their own: a trickle of inserts below
// segmentSize would otherwise sit unexported forever. It is a write-path
// operation (serialized with inserts); readers are unaffected.
func (d *DeltaGraph) Seal() {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := d.cur.Load()
	if v.sealed == v.jlen {
		return
	}
	nv := &view{
		epoch:   v.epoch,
		base:    v.base,
		ix:      v.ix,
		journal: v.journal,
		jlen:    v.jlen,
		adj:     v.adj,
		sealed:  v.sealed,
		probes:  v.probes,
	}
	nv.seal()
	d.cur.Store(nv)
}

// RemoveEdge always fails: see ErrDeletionsUnsupported.
func (d *DeltaGraph) RemoveEdge(src graph.Vertex, label graph.Label, dst graph.Vertex) error {
	return ErrDeletionsUnsupported
}

// Query answers the RLC query (s, t, L+) over the current epoch's graph
// (base plus journal), exactly. The read path is lock-free: it pins one
// immutable view, tries the base index (sound, because insertions only add
// paths), and only on a miss runs the index-accelerated delta search. It
// never performs or waits for a rebuild.
func (d *DeltaGraph) Query(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	return d.QueryRLC(context.Background(), s, t, l)
}

// QueryRLC is Query under a context (the facade's Querier interface):
// cancellation and deadlines are checked once per BFS level of the delta
// search, so an abandoned request cannot pin a generation for a whole
// product traversal.
func (d *DeltaGraph) QueryRLC(ctx context.Context, s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	v := d.cur.Load()
	ok, err := v.ix.Query(s, t, l)
	if err != nil || ok {
		return ok, err
	}
	if v.jlen == 0 {
		return false, nil
	}
	probe, err := v.probeFor(t, l)
	if err != nil {
		return false, err
	}
	return v.deltaQuery(ctx, s, t, l, probe)
}

func (v *view) probeFor(t graph.Vertex, l labelseq.Seq) (*core.TargetProbe, error) {
	key := probeKey{t: t, constraint: l.String()}
	if p, ok := v.probes.Load(key); ok {
		return p.(*core.TargetProbe), nil
	}
	p, err := v.ix.NewTargetProbe(t, l)
	if err != nil {
		return nil, err
	}
	actual, _ := v.probes.LoadOrStore(key, p)
	return actual.(*core.TargetProbe), nil
}

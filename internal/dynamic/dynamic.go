package dynamic

import (
	"errors"
	"fmt"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// DefaultRebuildThreshold is the journal size that triggers an automatic
// fold-and-rebuild.
const DefaultRebuildThreshold = 1024

// ErrDeletionsUnsupported is returned by RemoveEdge.
var ErrDeletionsUnsupported = errors.New("dynamic: edge deletions require a rebuild; the RLC index is insert-only incremental")

// Options configures a DeltaGraph.
type Options struct {
	// RebuildThreshold is the journal size that triggers a rebuild on the
	// next query. Zero means DefaultRebuildThreshold; negative disables
	// automatic rebuilds.
	RebuildThreshold int
	// IndexOptions configures (re)builds of the base index.
	IndexOptions core.Options
}

// DeltaGraph is an RLC-indexed graph that accepts edge insertions.
// Not safe for concurrent use.
type DeltaGraph struct {
	opts Options

	base  *graph.Graph
	index *core.Index

	// journal holds edges not yet folded into the base.
	journal []graph.Edge
	// union is the base plus the journal, rebuilt lazily after inserts.
	union      *graph.Graph
	unionStale bool

	// probes caches target probes per (target, constraint) for the
	// current journal generation.
	probes map[probeKey]*core.TargetProbe
}

type probeKey struct {
	t          graph.Vertex
	constraint string
}

// New wraps an already-indexed graph. The index must have been built over
// g.
func New(g *graph.Graph, ix *core.Index, opts Options) *DeltaGraph {
	if opts.RebuildThreshold == 0 {
		opts.RebuildThreshold = DefaultRebuildThreshold
	}
	return &DeltaGraph{
		opts:   opts,
		base:   g,
		index:  ix,
		union:  g,
		probes: make(map[probeKey]*core.TargetProbe),
	}
}

// Build indexes g and wraps it in one step.
func Build(g *graph.Graph, opts Options) (*DeltaGraph, error) {
	ix, err := core.Build(g, opts.IndexOptions)
	if err != nil {
		return nil, err
	}
	return New(g, ix, opts), nil
}

// Graph returns the current union graph (base + journal).
func (d *DeltaGraph) Graph() *graph.Graph {
	d.refreshUnion()
	return d.union
}

// Index returns the base index. It reflects the base graph only; use Query
// for answers that include journal edges.
func (d *DeltaGraph) Index() *core.Index { return d.index }

// JournalLen returns the number of edges awaiting a fold.
func (d *DeltaGraph) JournalLen() int { return len(d.journal) }

// AddEdge inserts a directed labeled edge. Vertices beyond the base
// graph's range are rejected — grow the graph and rebuild for schema
// changes. Duplicate edges are accepted and deduplicated at fold time.
func (d *DeltaGraph) AddEdge(src graph.Vertex, label graph.Label, dst graph.Vertex) error {
	n := graph.Vertex(d.base.NumVertices())
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return fmt.Errorf("dynamic: vertex out of range [0, %d)", n)
	}
	if label < 0 || int(label) >= d.base.NumLabels() {
		return fmt.Errorf("dynamic: label %d outside the base label set of %d", label, d.base.NumLabels())
	}
	d.journal = append(d.journal, graph.Edge{Src: src, Dst: dst, Label: label})
	d.unionStale = true
	clear(d.probes)
	return nil
}

// RemoveEdge always fails: see ErrDeletionsUnsupported.
func (d *DeltaGraph) RemoveEdge(src graph.Vertex, label graph.Label, dst graph.Vertex) error {
	return ErrDeletionsUnsupported
}

// Rebuild folds the journal into the base graph and rebuilds the index.
func (d *DeltaGraph) Rebuild() error {
	if len(d.journal) == 0 {
		return nil
	}
	d.refreshUnion()
	ix, err := core.Build(d.union, d.opts.IndexOptions)
	if err != nil {
		return err
	}
	d.base = d.union
	d.index = ix
	d.journal = nil
	clear(d.probes)
	return nil
}

func (d *DeltaGraph) refreshUnion() {
	if !d.unionStale {
		return
	}
	b := graph.NewBuilder(d.base.NumVertices(), d.base.NumLabels())
	for _, e := range d.base.Edges() {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	for _, e := range d.journal {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	d.union = b.Build()
	d.unionStale = false
}

// Query answers the RLC query (s, t, L+) over the current graph (base plus
// journal), exactly.
func (d *DeltaGraph) Query(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	if d.opts.RebuildThreshold > 0 && len(d.journal) >= d.opts.RebuildThreshold {
		if err := d.Rebuild(); err != nil {
			return false, err
		}
	}
	// Fast path: the base index alone. Sound because insertions only add
	// paths.
	ok, err := d.index.Query(s, t, l)
	if err != nil || ok {
		return ok, err
	}
	if len(d.journal) == 0 {
		return false, nil
	}
	return d.deltaQuery(s, t, l)
}

// deltaQuery searches the union graph for a witness that uses at least one
// journal edge... in fact for any witness: a product BFS over (vertex,
// phase) that consults the base index at every period boundary. The probe
// makes true answers terminate at the first boundary vertex whose indexed
// suffix completes the path.
func (d *DeltaGraph) deltaQuery(s, t graph.Vertex, l labelseq.Seq) (bool, error) {
	d.refreshUnion()
	probe, err := d.probeFor(t, l)
	if err != nil {
		return false, err
	}
	g := d.union
	m := len(l)
	seen := make([]bool, g.NumVertices()*m)

	// Seed: s at phase 0. A boundary probe at the seed is exactly the
	// base-index query the caller already ran, so skip it.
	frontier := []int64{int64(s) * int64(m)}
	seen[frontier[0]] = true

	for len(frontier) > 0 {
		var next []int64
		for _, node := range frontier {
			v := graph.Vertex(node / int64(m))
			phase := int(node % int64(m))
			expected := l[phase]
			dsts, lbls := g.OutEdges(v)
			np := (phase + 1) % m
			for i := range dsts {
				if lbls[i] != expected {
					continue
				}
				y := dsts[i]
				np0 := np == 0
				// Arriving at the target on a period boundary completes
				// the path. Checked before the seen-skip: when s == t the
				// accept state coincides with the pre-marked seed.
				if np0 && y == t {
					return true, nil
				}
				id := int64(y)*int64(m) + int64(np)
				if seen[id] {
					continue
				}
				seen[id] = true
				// Period boundary: the traversed prefix is L^j; the path
				// completes if the BASE index carries a suffix from y.
				// (Seen boundary nodes were probed on first visit; the
				// seed needs no probe — it equals the caller's base
				// query.)
				if np0 && probe.Reaches(y) {
					return true, nil
				}
				next = append(next, id)
			}
		}
		frontier = next
	}
	return false, nil
}

func (d *DeltaGraph) probeFor(t graph.Vertex, l labelseq.Seq) (*core.TargetProbe, error) {
	key := probeKey{t: t, constraint: l.String()}
	if p, ok := d.probes[key]; ok {
		return p, nil
	}
	p, err := d.index.NewTargetProbe(t, l)
	if err != nil {
		return nil, err
	}
	d.probes[key] = p
	return p, nil
}

package graph

import (
	"fmt"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// Label re-exports the label type used across the module.
type Label = labelseq.Label

// Vertex identifies a vertex by its dense 0-based id.
type Vertex = int32

// Edge is a single directed labeled edge.
type Edge struct {
	Src   Vertex
	Dst   Vertex
	Label Label
}

// Graph is an immutable edge-labeled directed graph in CSR form.
// Construct one with a Builder, a generator, or a loader.
type Graph struct {
	n         int
	numLabels int

	// Out-adjacency: edges leaving v are outDst[outOff[v]:outOff[v+1]]
	// with labels outLbl at the same positions, sorted by (dst, label).
	outOff []int64
	outDst []Vertex
	outLbl []Label

	// In-adjacency, symmetric to out, sorted by (src, label).
	inOff []int64
	inSrc []Vertex
	inLbl []Label

	// Optional display names; nil when not set.
	vertexNames []string
	labelNames  []string
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| after duplicate removal.
func (g *Graph) NumEdges() int { return len(g.outDst) }

// NumLabels returns |L|, the size of the label set.
func (g *Graph) NumLabels() int { return g.numLabels }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v Vertex) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the number of edges entering v.
func (g *Graph) InDegree(v Vertex) int { return int(g.inOff[v+1] - g.inOff[v]) }

// OutEdges returns the targets and labels of edges leaving v. The returned
// slices are views into the graph and must not be mutated.
func (g *Graph) OutEdges(v Vertex) ([]Vertex, []Label) {
	lo, hi := g.outOff[v], g.outOff[v+1]
	return g.outDst[lo:hi], g.outLbl[lo:hi]
}

// InEdges returns the sources and labels of edges entering v. The returned
// slices are views into the graph and must not be mutated.
func (g *Graph) InEdges(v Vertex) ([]Vertex, []Label) {
	lo, hi := g.inOff[v], g.inOff[v+1]
	return g.inSrc[lo:hi], g.inLbl[lo:hi]
}

// HasEdge reports whether the edge (src, label, dst) exists.
func (g *Graph) HasEdge(src Vertex, label Label, dst Vertex) bool {
	dsts, lbls := g.OutEdges(src)
	// Out-edges are sorted by (dst, label): binary search the dst run.
	i := sort.Search(len(dsts), func(i int) bool {
		return dsts[i] > dst || (dsts[i] == dst && lbls[i] >= label)
	})
	return i < len(dsts) && dsts[i] == dst && lbls[i] == label
}

// Edges returns all edges in (src, dst, label) order. It allocates a fresh
// slice on every call.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.NumEdges())
	for v := Vertex(0); int(v) < g.n; v++ {
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			out = append(out, Edge{Src: v, Dst: dsts[i], Label: lbls[i]})
		}
	}
	return out
}

// VertexName returns the display name of v, or its numeric id when names
// were not provided.
func (g *Graph) VertexName(v Vertex) string {
	if g.vertexNames != nil && int(v) < len(g.vertexNames) && g.vertexNames[v] != "" {
		return g.vertexNames[v]
	}
	return fmt.Sprintf("v%d", v)
}

// LabelName returns the display name of l, or "l<i>" when names were not
// provided.
func (g *Graph) LabelName(l Label) string {
	if g.labelNames != nil && int(l) < len(g.labelNames) && g.labelNames[l] != "" {
		return g.labelNames[l]
	}
	return fmt.Sprintf("l%d", l)
}

// LabelNames returns the label display names (possibly nil).
func (g *Graph) LabelNames() []string { return g.labelNames }

// VertexByName returns the vertex with the given display name. It is a
// linear scan intended for examples and tests, not hot paths.
func (g *Graph) VertexByName(name string) (Vertex, bool) {
	for i, n := range g.vertexNames {
		if n == name {
			return Vertex(i), true
		}
	}
	return -1, false
}

// LabelByName returns the label with the given display name.
func (g *Graph) LabelByName(name string) (Label, bool) {
	for i, n := range g.labelNames {
		if n == name {
			return Label(i), true
		}
	}
	return labelseq.NoLabel, false
}

// MemoryBytes returns an estimate of the resident size of the CSR arrays,
// used when reporting graph footprints in benchmarks.
func (g *Graph) MemoryBytes() int64 {
	edges := int64(g.NumEdges())
	offs := int64(g.n+1) * 2 * 8
	return offs + edges*2*(4+4)
}

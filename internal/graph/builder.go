package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates labeled edges and produces an immutable Graph.
// The zero value is not usable; construct with NewBuilder.
type Builder struct {
	n         int
	numLabels int
	edges     []Edge

	vertexNames []string
	labelNames  []string
}

// NewBuilder returns a builder for a graph with n vertices and numLabels
// labels. Both may grow implicitly when AddEdge sees larger ids.
func NewBuilder(n, numLabels int) *Builder {
	return &Builder{n: n, numLabels: numLabels}
}

// SetVertexNames attaches display names (index = vertex id).
func (b *Builder) SetVertexNames(names []string) { b.vertexNames = names }

// SetLabelNames attaches display names (index = label id).
func (b *Builder) SetLabelNames(names []string) { b.labelNames = names }

// AddEdge records the directed edge (src, label, dst). Vertex and label
// universes grow as needed. Negative ids panic.
func (b *Builder) AddEdge(src Vertex, label Label, dst Vertex) {
	if src < 0 || dst < 0 || label < 0 {
		panic(fmt.Sprintf("graph: AddEdge(%d, %d, %d): negative id", src, label, dst))
	}
	if int(src) >= b.n {
		b.n = int(src) + 1
	}
	if int(dst) >= b.n {
		b.n = int(dst) + 1
	}
	if int(label) >= b.numLabels {
		b.numLabels = int(label) + 1
	}
	b.edges = append(b.edges, Edge{Src: src, Dst: dst, Label: label})
}

// NumEdges returns the number of edges recorded so far (duplicates
// included).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build sorts, deduplicates and freezes the edges into a Graph. The builder
// remains usable; calling Build again reflects any edges added since.
func (b *Builder) Build() *Graph {
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		if edges[i].Dst != edges[j].Dst {
			return edges[i].Dst < edges[j].Dst
		}
		return edges[i].Label < edges[j].Label
	})
	// Remove exact duplicates.
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e == edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup

	g := &Graph{
		n:           b.n,
		numLabels:   b.numLabels,
		vertexNames: b.vertexNames,
		labelNames:  b.labelNames,
	}
	m := len(edges)
	g.outOff = make([]int64, g.n+1)
	g.outDst = make([]Vertex, m)
	g.outLbl = make([]Label, m)
	g.inOff = make([]int64, g.n+1)
	g.inSrc = make([]Vertex, m)
	g.inLbl = make([]Label, m)

	for _, e := range edges {
		g.outOff[e.Src+1]++
		g.inOff[e.Dst+1]++
	}
	for v := 0; v < g.n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	// Edges are sorted by (src, dst, label), so the out arrays fill in
	// order; the in arrays need a cursor per vertex.
	cursor := make([]int64, g.n)
	copy(cursor, g.inOff[:g.n])
	for i, e := range edges {
		g.outDst[i] = e.Dst
		g.outLbl[i] = e.Label
		c := cursor[e.Dst]
		g.inSrc[c] = e.Src
		g.inLbl[c] = e.Label
		cursor[e.Dst] = c + 1
	}
	// Each in-adjacency run holds a fixed dst and receives edges in the
	// global (src, dst, label) order, so it is already sorted by
	// (src, label); no re-sort needed.
	return g
}

// FromEdges is a convenience constructor used by tests and generators.
func FromEdges(n, numLabels int, edges []Edge) *Graph {
	b := NewBuilder(n, numLabels)
	for _, e := range edges {
		b.AddEdge(e.Src, e.Label, e.Dst)
	}
	return b.Build()
}

package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

// rawEdges is the quick-generated input shape: a bounded edge list encoded
// as byte triples.
type rawEdges []byte

func (r rawEdges) graph() *Graph {
	b := NewBuilder(16, 4)
	for i := 0; i+2 < len(r); i += 3 {
		b.AddEdge(Vertex(r[i]%16), Label(r[i+1]%4), Vertex(r[i+2]%16))
	}
	return b.Build()
}

// TestQuickBuilderInvariants checks structural invariants of the CSR for
// arbitrary edge lists: degree sums equal the edge count on both sides,
// adjacency stays sorted, and HasEdge agrees with the edge enumeration.
func TestQuickBuilderInvariants(t *testing.T) {
	f := func(raw rawEdges) bool {
		g := raw.graph()
		sumOut, sumIn := 0, 0
		for v := Vertex(0); int(v) < g.NumVertices(); v++ {
			sumOut += g.OutDegree(v)
			sumIn += g.InDegree(v)
			dsts, lbls := g.OutEdges(v)
			for i := 1; i < len(dsts); i++ {
				if dsts[i-1] > dsts[i] || (dsts[i-1] == dsts[i] && lbls[i-1] >= lbls[i]) {
					return false
				}
			}
		}
		if sumOut != g.NumEdges() || sumIn != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !g.HasEdge(e.Src, e.Label, e.Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickTextRoundTrip: writing and re-reading any generated graph
// preserves the edge set.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(raw rawEdges) bool {
		g := raw.graph()
		if g.NumEdges() == 0 {
			return true
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !back.HasEdge(e.Src, e.Label, e.Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

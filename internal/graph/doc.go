// Package graph implements the edge-labeled directed graph substrate of the
// RLC index: a compact CSR (compressed sparse row) representation with both
// out- and in-adjacency, a text loader/writer, and the graph statistics the
// paper reports (self-loop count, triangle count, degrees).
//
// A graph G = (V, E, L) has vertices 0..NumVertices()-1, labels
// 0..NumLabels()-1 and directed labeled edges (src, label, dst). Parallel
// edges with distinct labels are allowed; exact duplicate edges are removed
// at build time.
package graph

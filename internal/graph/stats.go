package graph

import "sort"

// Stats summarizes the characteristics the paper reports per dataset in
// Table III.
type Stats struct {
	Vertices  int
	Edges     int
	Labels    int
	Loops     int // cycles of length 1 (self loops)
	Triangles int // directed cycles of length 3
	AvgDegree float64
	MaxOutDeg int
	MaxInDeg  int
}

// ComputeStats derives Table-III style statistics. The triangle count is
// exact and counts directed 3-cycles (u -> v -> w -> u), each once.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Vertices: g.NumVertices(),
		Edges:    g.NumEdges(),
		Labels:   g.NumLabels(),
	}
	if s.Vertices > 0 {
		s.AvgDegree = float64(s.Edges) / float64(s.Vertices)
	}
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := g.InDegree(v); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	s.Loops = SelfLoopCount(g)
	s.Triangles = TriangleCount(g)
	return s
}

// SelfLoopCount returns the number of distinct (vertex, label) self loops.
func SelfLoopCount(g *Graph) int {
	count := 0
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		dsts, _ := g.OutEdges(v)
		for _, d := range dsts {
			if d == v {
				count++
			}
		}
	}
	return count
}

// TriangleCount returns the number of directed 3-cycles u -> v -> w -> u on
// the label-stripped graph (parallel edges collapse), counting each cycle
// once. Labels are ignored, matching how Table III characterizes cyclicity.
func TriangleCount(g *Graph) int {
	n := g.NumVertices()
	// Distinct out- and in-neighbor lists (labels stripped), sorted.
	out := make([][]Vertex, n)
	in := make([][]Vertex, n)
	for v := Vertex(0); int(v) < n; v++ {
		out[v] = distinctNeighbors(g.OutEdges(v))
		in[v] = distinctNeighbors(g.InEdges(v))
	}
	// A directed triangle u->v->w->u is found once per edge; intersecting
	// out(v) with in(u) counts w candidates. Each cycle is seen from each
	// of its three edges, so divide by 3.
	total := 0
	for u := Vertex(0); int(u) < n; u++ {
		for _, v := range out[u] {
			if v == u {
				continue
			}
			total += intersectionSizeExcluding(out[v], in[u], u, v)
		}
	}
	return total / 3
}

func distinctNeighbors(vs []Vertex, _ []Label) []Vertex {
	if len(vs) == 0 {
		return nil
	}
	// vs is sorted already (CSR invariant); collapse runs.
	out := make([]Vertex, 0, len(vs))
	for i, v := range vs {
		if i > 0 && v == out[len(out)-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

// intersectionSizeExcluding counts elements common to the sorted slices a
// and b, skipping the vertices x and y (the triangle endpoints themselves,
// which would otherwise count 2-cycles and loops).
func intersectionSizeExcluding(a, b []Vertex, x, y Vertex) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] != x && a[i] != y {
				count++
			}
			i++
			j++
		}
	}
	return count
}

// DegreeProduct returns (|out(v)|+1) * (|in(v)|+1), the IN-OUT ordering key
// of Section V-B.
func DegreeProduct(g *Graph, v Vertex) int64 {
	return int64(g.OutDegree(v)+1) * int64(g.InDegree(v)+1)
}

// OrderByDegreeProduct returns the vertices sorted by DegreeProduct
// descending (ties broken by vertex id ascending, for determinism). The
// position of a vertex in this order is its access id minus one.
func OrderByDegreeProduct(g *Graph) []Vertex {
	order := make([]Vertex, g.NumVertices())
	keys := make([]int64, g.NumVertices())
	for i := range order {
		order[i] = Vertex(i)
		keys[i] = DegreeProduct(g, Vertex(i))
	}
	sort.SliceStable(order, func(i, j int) bool {
		if keys[order[i]] != keys[order[j]] {
			return keys[order[i]] > keys[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

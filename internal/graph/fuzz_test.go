package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the graph loader: arbitrary text either fails cleanly or
// yields a graph that survives a write/read round trip.
func FuzzRead(f *testing.F) {
	f.Add("0 1 0\n1 2 1\n")
	f.Add("# comment\nA B knows\nB C knows\n")
	f.Add("")
	f.Add("1 2\n")
	f.Add("x y z w\n")
	f.Add("-1 0 0\n")
	f.Add("999999 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("accepted graph fails to write: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed edge count %d -> %d", g.NumEdges(), back.NumEdges())
		}
	})
}

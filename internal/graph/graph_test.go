package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddEdge(0, 0, 1)
	b.AddEdge(1, 1, 2)
	b.AddEdge(0, 0, 1) // duplicate, must be dropped
	b.AddEdge(0, 1, 1) // parallel edge, distinct label, must stay
	g := b.Build()

	if g.NumVertices() != 3 || g.NumLabels() != 2 {
		t.Fatalf("got %d vertices, %d labels", g.NumVertices(), g.NumLabels())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3 (duplicate removed)", g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(1) != 2 {
		t.Errorf("degrees wrong: out(0)=%d in(1)=%d", g.OutDegree(0), g.InDegree(1))
	}
	if !g.HasEdge(0, 0, 1) || !g.HasEdge(0, 1, 1) || !g.HasEdge(1, 1, 2) {
		t.Error("HasEdge missing an inserted edge")
	}
	if g.HasEdge(0, 0, 2) || g.HasEdge(2, 0, 0) {
		t.Error("HasEdge found a phantom edge")
	}
}

func TestBuilderGrowsUniverse(t *testing.T) {
	b := NewBuilder(0, 0)
	b.AddEdge(5, 3, 7)
	g := b.Build()
	if g.NumVertices() != 8 || g.NumLabels() != 4 {
		t.Errorf("universe = %d vertices, %d labels; want 8, 4", g.NumVertices(), g.NumLabels())
	}
}

func TestBuilderPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative vertex id")
		}
	}()
	NewBuilder(1, 1).AddEdge(-1, 0, 0)
}

func TestAdjacencySorted(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	b := NewBuilder(20, 4)
	for i := 0; i < 300; i++ {
		b.AddEdge(Vertex(r.Intn(20)), Label(r.Intn(4)), Vertex(r.Intn(20)))
	}
	g := b.Build()
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		dsts, lbls := g.OutEdges(v)
		if !sort.SliceIsSorted(dsts, func(i, j int) bool {
			return dsts[i] < dsts[j] || (dsts[i] == dsts[j] && lbls[i] < lbls[j])
		}) {
			t.Fatalf("out-adjacency of %d not sorted", v)
		}
		srcs, ilbls := g.InEdges(v)
		if !sort.SliceIsSorted(srcs, func(i, j int) bool {
			return srcs[i] < srcs[j] || (srcs[i] == srcs[j] && ilbls[i] < ilbls[j])
		}) {
			t.Fatalf("in-adjacency of %d not sorted", v)
		}
	}
}

func TestInOutConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	b := NewBuilder(15, 3)
	for i := 0; i < 200; i++ {
		b.AddEdge(Vertex(r.Intn(15)), Label(r.Intn(3)), Vertex(r.Intn(15)))
	}
	g := b.Build()
	type edge struct {
		s, d Vertex
		l    Label
	}
	fromOut := map[edge]bool{}
	fromIn := map[edge]bool{}
	sumOut, sumIn := 0, 0
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			fromOut[edge{v, dsts[i], lbls[i]}] = true
		}
		srcs, ilbls := g.InEdges(v)
		for i := range srcs {
			fromIn[edge{srcs[i], v, ilbls[i]}] = true
		}
		sumOut += g.OutDegree(v)
		sumIn += g.InDegree(v)
	}
	if sumOut != g.NumEdges() || sumIn != g.NumEdges() {
		t.Errorf("degree sums: out=%d in=%d edges=%d", sumOut, sumIn, g.NumEdges())
	}
	if len(fromOut) != len(fromIn) {
		t.Fatalf("edge sets differ in size: %d vs %d", len(fromOut), len(fromIn))
	}
	for e := range fromOut {
		if !fromIn[e] {
			t.Fatalf("edge %v in out-adjacency but not in-adjacency", e)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := Fig2()
	edges := g.Edges()
	if len(edges) != g.NumEdges() {
		t.Fatalf("Edges() returned %d, want %d", len(edges), g.NumEdges())
	}
	g2 := FromEdges(g.NumVertices(), g.NumLabels(), edges)
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("rebuild changed edge count: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range edges {
		if !g2.HasEdge(e.Src, e.Label, e.Dst) {
			t.Errorf("edge %v lost in rebuild", e)
		}
	}
}

func TestTextIORoundTripNumeric(t *testing.T) {
	g := FromEdges(4, 3, []Edge{
		{0, 1, 0}, {1, 2, 1}, {2, 3, 2}, {3, 0, 0}, {1, 1, 2},
	})
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(e.Src, e.Label, e.Dst) {
			t.Errorf("edge %v lost in text round trip", e)
		}
	}
}

func TestTextIORoundTripNamed(t *testing.T) {
	g := Fig1()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() || g2.NumLabels() != g.NumLabels() {
		t.Fatalf("round trip shape mismatch")
	}
	// Every named edge must survive, independent of id assignment.
	p10, ok := g2.VertexByName("P10")
	if !ok {
		t.Fatal("P10 lost")
	}
	knows, ok := g2.LabelByName("knows")
	if !ok {
		t.Fatal("knows lost")
	}
	p11, _ := g2.VertexByName("P11")
	if !g2.HasEdge(p10, knows, p11) {
		t.Error("edge P10-knows->P11 lost")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("1 2\n")); err == nil {
		t.Error("expected error for 2-field line")
	}
	if _, err := Read(strings.NewReader("1 2 3 4\n")); err == nil {
		t.Error("expected error for 4-field line")
	}
	if _, err := Read(strings.NewReader("-1 2 0\n")); err == nil {
		t.Error("expected error for negative numeric id")
	}
	g, err := Read(strings.NewReader("# comment only\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Error("comment-only file should produce empty graph")
	}
}

func TestNames(t *testing.T) {
	g := Fig1()
	if g.VertexName(0) != "P10" {
		t.Errorf("VertexName(0) = %q", g.VertexName(0))
	}
	if g.LabelName(0) != "knows" {
		t.Errorf("LabelName(0) = %q", g.LabelName(0))
	}
	if _, ok := g.VertexByName("nope"); ok {
		t.Error("VertexByName should miss")
	}
	if _, ok := g.LabelByName("nope"); ok {
		t.Error("LabelByName should miss")
	}
	anon := FromEdges(2, 1, []Edge{{0, 1, 0}})
	if anon.VertexName(1) != "v1" || anon.LabelName(0) != "l0" {
		t.Errorf("fallback names wrong: %q %q", anon.VertexName(1), anon.LabelName(0))
	}
}

func TestFig1Shape(t *testing.T) {
	g := Fig1()
	if g.NumVertices() != 10 || g.NumEdges() != 14 || g.NumLabels() != 5 {
		t.Fatalf("Fig1 shape: %d vertices, %d edges, %d labels", g.NumVertices(), g.NumEdges(), g.NumLabels())
	}
	// Label multiset from the figure: knows x6, worksFor x2, holds x2,
	// debits x2, credits x2.
	counts := map[string]int{}
	for _, e := range g.Edges() {
		counts[g.LabelName(e.Label)]++
	}
	want := map[string]int{"knows": 6, "worksFor": 2, "holds": 2, "debits": 2, "credits": 2}
	for k, v := range want {
		if counts[k] != v {
			t.Errorf("label %s count = %d, want %d", k, counts[k], v)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	g := Fig2()
	if g.NumVertices() != 6 || g.NumEdges() != 11 || g.NumLabels() != 3 {
		t.Fatalf("Fig2 shape: %d vertices, %d edges, %d labels", g.NumVertices(), g.NumEdges(), g.NumLabels())
	}
}

// TestFig2AccessOrder verifies our reconstruction against the paper: the
// IN-OUT order of Figure 2 must be (v1, v3, v2, v4, v5, v6) — stated
// explicitly in Section V-B.
func TestFig2AccessOrder(t *testing.T) {
	g := Fig2()
	order := OrderByDegreeProduct(g)
	want := []string{"v1", "v3", "v2", "v4", "v5", "v6"}
	for i, v := range order {
		if g.VertexName(v) != want[i] {
			t.Fatalf("access order[%d] = %s, want %s (full order: %v)", i, g.VertexName(v), want[i], order)
		}
	}
}

func TestMemoryBytesPositive(t *testing.T) {
	if Fig2().MemoryBytes() <= 0 {
		t.Error("MemoryBytes should be positive")
	}
}

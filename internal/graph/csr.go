package graph

import (
	"fmt"
)

// CSR exposes the graph's raw adjacency arrays. The slices are views into
// the graph (or, for an adopted graph, into a snapshot mapping) and must not
// be mutated. The snapshot writer serializes them verbatim; AdoptCSR is the
// inverse.
type CSR struct {
	// Out-adjacency: edges leaving v are OutDst[OutOff[v]:OutOff[v+1]] with
	// labels OutLbl at the same positions, sorted by (dst, label).
	OutOff []int64
	OutDst []Vertex
	OutLbl []Label
	// In-adjacency, symmetric, sorted by (src, label).
	InOff []int64
	InSrc []Vertex
	InLbl []Label
}

// RawCSR returns views of the graph's CSR arrays.
func (g *Graph) RawCSR() CSR {
	return CSR{
		OutOff: g.outOff, OutDst: g.outDst, OutLbl: g.outLbl,
		InOff: g.inOff, InSrc: g.inSrc, InLbl: g.inLbl,
	}
}

// VertexNames returns the vertex display names (possibly nil), index =
// vertex id.
func (g *Graph) VertexNames() []string { return g.vertexNames }

// AdoptCSR wraps pre-built CSR arrays in a Graph without copying them — the
// zero-copy open path of snapshot bundles. It validates everything needed
// for the Graph's accessors and the traversal evaluators to be memory-safe
// on untrusted input: offset arrays must be exact closed prefix sums over
// the edge arrays, and every vertex and label value must be in range. It
// does not re-check the (dst, label) sort order inside adjacency runs —
// HasEdge's binary search would degrade to a wrong answer, not a crash — so
// integrity-sensitive callers should also verify the bundle checksums.
//
// The arrays must stay valid and unmodified for the life of the Graph.
func AdoptCSR(n, numLabels int, csr CSR, vertexNames, labelNames []string) (*Graph, error) {
	if n < 0 || numLabels < 0 {
		return nil, fmt.Errorf("graph: adopt: negative shape n=%d numLabels=%d", n, numLabels)
	}
	m := len(csr.OutDst)
	if len(csr.InSrc) != m {
		return nil, fmt.Errorf("graph: adopt: %d out-edges but %d in-edges", m, len(csr.InSrc))
	}
	if err := checkOffsets("out", csr.OutOff, n, m); err != nil {
		return nil, err
	}
	if err := checkOffsets("in", csr.InOff, n, m); err != nil {
		return nil, err
	}
	if len(csr.OutLbl) != m || len(csr.InLbl) != m {
		return nil, fmt.Errorf("graph: adopt: label arrays sized %d/%d for %d edges",
			len(csr.OutLbl), len(csr.InLbl), m)
	}
	if err := checkIDs("out dst", csr.OutDst, n); err != nil {
		return nil, err
	}
	if err := checkIDs("in src", csr.InSrc, n); err != nil {
		return nil, err
	}
	if err := checkIDs("out label", csr.OutLbl, numLabels); err != nil {
		return nil, err
	}
	if err := checkIDs("in label", csr.InLbl, numLabels); err != nil {
		return nil, err
	}
	if vertexNames != nil && len(vertexNames) != n {
		return nil, fmt.Errorf("graph: adopt: %d vertex names for %d vertices", len(vertexNames), n)
	}
	if labelNames != nil && len(labelNames) != numLabels {
		return nil, fmt.Errorf("graph: adopt: %d label names for %d labels", len(labelNames), numLabels)
	}
	return &Graph{
		n:         n,
		numLabels: numLabels,
		outOff:    csr.OutOff, outDst: csr.OutDst, outLbl: csr.OutLbl,
		inOff: csr.InOff, inSrc: csr.InSrc, inLbl: csr.InLbl,
		vertexNames: vertexNames,
		labelNames:  labelNames,
	}, nil
}

// checkOffsets validates one direction's offset array: length n+1, starting
// at 0, ending at m, non-decreasing throughout.
func checkOffsets(side string, off []int64, n, m int) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: adopt: %s offsets sized %d for %d vertices", side, len(off), n)
	}
	if off[0] != 0 || off[n] != int64(m) {
		return fmt.Errorf("graph: adopt: %s offsets span [%d, %d], want [0, %d]", side, off[0], off[n], m)
	}
	for v := 0; v < n; v++ {
		if off[v] > off[v+1] {
			return fmt.Errorf("graph: adopt: %s offsets decrease at vertex %d", side, v)
		}
	}
	return nil
}

// checkIDs validates that every value of a vertex or label array lies in
// [0, bound).
func checkIDs[T ~int32](what string, ids []T, bound int) error {
	for i, v := range ids {
		if v < 0 || int(v) >= bound {
			return fmt.Errorf("graph: adopt: %s[%d] = %d out of range [0, %d)", what, i, v, bound)
		}
	}
	return nil
}

// Fingerprint identifies the graph an index was built from: the shape
// triple plus an order-independent-of-nothing content hash — FNV-1a over
// every (src, dst, label) in the canonical CSR order. Two graphs with equal
// fingerprints hold exactly the same edge set with the same dense ids.
// Snapshot bundles embed it so a loaded index can never be silently bound
// to the wrong graph.
type Fingerprint struct {
	N         int
	M         int
	NumLabels int
	EdgeHash  uint64
}

// String renders the fingerprint for error messages.
func (fp Fingerprint) String() string {
	return fmt.Sprintf("n=%d m=%d labels=%d edgehash=%016x", fp.N, fp.M, fp.NumLabels, fp.EdgeHash)
}

// Compact renders the fingerprint as a single space-free token
// ("n.m.labels.edgehash"), the form the replication protocol puts in HTTP
// headers and /healthz so two processes can compare served bundles without
// parsing prose. It is injective over the struct, so equal tokens mean
// equal fingerprints.
func (fp Fingerprint) Compact() string {
	return fmt.Sprintf("%d.%d.%d.%016x", fp.N, fp.M, fp.NumLabels, fp.EdgeHash)
}

// Fingerprint computes the graph's fingerprint. O(m), allocation-free.
func (g *Graph) Fingerprint() Fingerprint {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint32) {
		h = (h ^ uint64(v&0xff)) * prime64
		h = (h ^ uint64(v>>8&0xff)) * prime64
		h = (h ^ uint64(v>>16&0xff)) * prime64
		h = (h ^ uint64(v>>24)) * prime64
	}
	for v := Vertex(0); int(v) < g.n; v++ {
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			mix(uint32(v))
			mix(uint32(dsts[i]))
			mix(uint32(lbls[i]))
		}
	}
	return Fingerprint{N: g.n, M: g.NumEdges(), NumLabels: g.numLabels, EdgeHash: h}
}

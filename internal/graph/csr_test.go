package graph

import (
	"strings"
	"testing"
)

func TestAdoptCSRRoundTrip(t *testing.T) {
	g := Fig2()
	csr := g.RawCSR()
	adopted, err := AdoptCSR(g.NumVertices(), g.NumLabels(), csr, g.VertexNames(), g.LabelNames())
	if err != nil {
		t.Fatal(err)
	}
	if adopted.NumVertices() != g.NumVertices() || adopted.NumEdges() != g.NumEdges() ||
		adopted.NumLabels() != g.NumLabels() {
		t.Fatalf("adopted shape %d/%d/%d != %d/%d/%d",
			adopted.NumVertices(), adopted.NumEdges(), adopted.NumLabels(),
			g.NumVertices(), g.NumEdges(), g.NumLabels())
	}
	for _, e := range g.Edges() {
		if !adopted.HasEdge(e.Src, e.Label, e.Dst) {
			t.Fatalf("adopted graph lost edge %v", e)
		}
	}
	if adopted.Fingerprint() != g.Fingerprint() {
		t.Fatalf("adopted fingerprint %v != %v", adopted.Fingerprint(), g.Fingerprint())
	}
	if got, want := adopted.VertexName(0), g.VertexName(0); got != want {
		t.Fatalf("adopted vertex name %q != %q", got, want)
	}
}

func TestAdoptCSRRejectsCorruptArrays(t *testing.T) {
	g := Fig2()
	n, L := g.NumVertices(), g.NumLabels()
	cases := []struct {
		name   string
		mutate func(c *CSR) (n, L int)
		errSub string
	}{
		{"out-off-short", func(c *CSR) (int, int) { c.OutOff = c.OutOff[:n]; return n, L }, "offsets sized"},
		{"out-off-decreasing", func(c *CSR) (int, int) {
			off := append([]int64(nil), c.OutOff...)
			off[1], off[2] = off[2]+1, off[1]
			off[n] = int64(len(c.OutDst))
			off[0] = 0
			c.OutOff = off
			return n, L
		}, "decrease"},
		{"in-off-bad-end", func(c *CSR) (int, int) {
			off := append([]int64(nil), c.InOff...)
			off[n]++
			c.InOff = off
			return n, L
		}, "span"},
		{"dst-out-of-range", func(c *CSR) (int, int) {
			dst := append([]Vertex(nil), c.OutDst...)
			dst[0] = Vertex(n)
			c.OutDst = dst
			return n, L
		}, "out of range"},
		{"label-out-of-range", func(c *CSR) (int, int) {
			lbl := append([]Label(nil), c.InLbl...)
			lbl[0] = -1
			c.InLbl = lbl
			return n, L
		}, "out of range"},
		{"edge-count-mismatch", func(c *CSR) (int, int) {
			c.InSrc = c.InSrc[:len(c.InSrc)-1]
			return n, L
		}, "in-edges"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			csr := g.RawCSR()
			nn, ll := tc.mutate(&csr)
			_, err := AdoptCSR(nn, ll, csr, nil, nil)
			if err == nil {
				t.Fatal("corrupt CSR accepted")
			}
			if !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("error %q lacks %q", err, tc.errSub)
			}
		})
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	a := FromEdges(3, 2, []Edge{{0, 1, 0}, {1, 2, 1}})
	same := FromEdges(3, 2, []Edge{{1, 2, 1}, {0, 1, 0}})
	if a.Fingerprint() != same.Fingerprint() {
		t.Fatal("fingerprint depends on insertion order")
	}
	difLabel := FromEdges(3, 2, []Edge{{0, 1, 1}, {1, 2, 1}})
	if a.Fingerprint() == difLabel.Fingerprint() {
		t.Fatal("fingerprint blind to label change")
	}
	difEdge := FromEdges(3, 2, []Edge{{0, 1, 0}, {2, 1, 1}})
	if a.Fingerprint() == difEdge.Fingerprint() {
		t.Fatal("fingerprint blind to edge change")
	}
	moreV := FromEdges(4, 2, []Edge{{0, 1, 0}, {1, 2, 1}})
	if a.Fingerprint() == moreV.Fingerprint() {
		t.Fatal("fingerprint blind to vertex count")
	}
}

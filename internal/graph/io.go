package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// The text format is one edge per line: "src dst label", whitespace
// separated. Lines starting with '#' and blank lines are ignored. Tokens may
// be arbitrary strings; numeric tokens are used as ids directly when every
// token in the file is numeric, otherwise tokens are interned in first-seen
// order and the display names recorded on the graph.

// Read parses the text edge-list format from r.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	type rawEdge struct{ src, dst, lbl string }
	var raw []rawEdge
	numeric := true
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 3 fields \"src dst label\", got %d", lineNo, len(fields))
		}
		for _, f := range fields {
			if _, err := strconv.Atoi(f); err != nil {
				numeric = false
			}
		}
		raw = append(raw, rawEdge{fields[0], fields[1], fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}

	b := NewBuilder(0, 0)
	if numeric {
		for _, e := range raw {
			src, _ := strconv.Atoi(e.src)
			dst, _ := strconv.Atoi(e.dst)
			lbl, _ := strconv.Atoi(e.lbl)
			if src < 0 || dst < 0 || lbl < 0 {
				return nil, fmt.Errorf("graph: negative id in edge %s %s %s", e.src, e.dst, e.lbl)
			}
			if int64(src) > math.MaxInt32 || int64(dst) > math.MaxInt32 || int64(lbl) > math.MaxInt32 {
				return nil, fmt.Errorf("graph: id beyond the dense int32 space in edge %s %s %s", e.src, e.dst, e.lbl)
			}
			b.AddEdge(Vertex(src), Label(lbl), Vertex(dst))
		}
		return b.Build(), nil
	}

	vids := make(map[string]Vertex)
	lids := make(map[string]Label)
	var vnames, lnames []string
	vertex := func(tok string) Vertex {
		if id, ok := vids[tok]; ok {
			return id
		}
		id := Vertex(len(vnames))
		vids[tok] = id
		vnames = append(vnames, tok)
		return id
	}
	label := func(tok string) Label {
		if id, ok := lids[tok]; ok {
			return id
		}
		id := Label(len(lnames))
		lids[tok] = id
		lnames = append(lnames, tok)
		return id
	}
	for _, e := range raw {
		b.AddEdge(vertex(e.src), label(e.lbl), vertex(e.dst))
	}
	b.SetVertexNames(vnames)
	b.SetLabelNames(lnames)
	return b.Build(), nil
}

// Write renders g in the text edge-list format, using display names when the
// graph has them.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vertices, %d edges, %d labels\n", g.NumVertices(), g.NumEdges(), g.NumLabels())
	named := g.vertexNames != nil || g.labelNames != nil
	for v := Vertex(0); int(v) < g.NumVertices(); v++ {
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			if named {
				fmt.Fprintf(bw, "%s %s %s\n", g.VertexName(v), g.VertexName(dsts[i]), g.LabelName(lbls[i]))
			} else {
				fmt.Fprintf(bw, "%d %d %d\n", v, dsts[i], lbls[i])
			}
		}
	}
	return bw.Flush()
}

// LoadFile reads a graph from the text file at path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// SaveFile writes a graph to the text file at path.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package graph

// This file reconstructs the paper's two running-example graphs. They are
// used as test fixtures throughout the module and by the example programs.

// Fig1 returns the social/professional/financial network of Figure 1.
// The edge set is reconstructed from the paper's Examples 1-3:
//   - the fraud path (A14, debits, E15, credits, A17, debits, E18, credits, A19),
//   - the path (P10, knows, P11, worksFor, P12, knows, P13, worksFor, P16),
//   - the two all-knows paths P10 -> P16 of lengths 3 and 4,
//   - S2(P12,P16) = {(knows), (knows,worksFor)},
//   - Example 2's four depth-4 sequences from P11 back to P12,
//   - Q2(P10, P13, (knows,knows,worksFor)+) = false.
func Fig1() *Graph {
	b := NewBuilder(0, 0)
	names := []string{"P10", "P11", "P12", "P13", "A14", "E15", "P16", "A17", "E18", "A19"}
	idx := map[string]Vertex{}
	for i, n := range names {
		idx[n] = Vertex(i)
	}
	labels := []string{"knows", "worksFor", "holds", "debits", "credits"}
	lidx := map[string]Label{}
	for i, n := range labels {
		lidx[n] = Label(i)
	}
	add := func(src, lbl, dst string) { b.AddEdge(idx[src], lidx[lbl], idx[dst]) }

	add("P10", "knows", "P11")
	add("P11", "knows", "P12")
	add("P11", "worksFor", "P12")
	add("P12", "knows", "P13")
	add("P12", "knows", "P16")
	add("P13", "knows", "P11")
	add("P13", "knows", "P16")
	add("P13", "worksFor", "P16")
	add("P11", "holds", "A14")
	add("P16", "holds", "A19")
	add("A14", "debits", "E15")
	add("E15", "credits", "A17")
	add("A17", "debits", "E18")
	add("E18", "credits", "A19")

	b.SetVertexNames(names)
	b.SetLabelNames(labels)
	return b.Build()
}

// Fig2 returns the running-example graph of Figure 2 (Examples 4-6,
// Table II). The 11 edges are reconstructed from the examples; the
// reconstruction reproduces the paper's IN-OUT access order
// (v1, v3, v2, v4, v5, v6) exactly. Vertex vN of the paper is vertex N-1
// here (display names preserve the paper's numbering).
func Fig2() *Graph {
	b := NewBuilder(6, 3)
	const (
		v1 = Vertex(0)
		v2 = Vertex(1)
		v3 = Vertex(2)
		v4 = Vertex(3)
		v5 = Vertex(4)
		v6 = Vertex(5)
	)
	const (
		l1 = Label(0)
		l2 = Label(1)
		l3 = Label(2)
	)
	b.AddEdge(v1, l2, v3)
	b.AddEdge(v1, l1, v2)
	b.AddEdge(v2, l2, v5)
	b.AddEdge(v2, l1, v5)
	b.AddEdge(v3, l2, v4)
	b.AddEdge(v3, l2, v1)
	b.AddEdge(v3, l1, v6)
	b.AddEdge(v3, l1, v2)
	b.AddEdge(v4, l1, v1)
	b.AddEdge(v4, l3, v6)
	b.AddEdge(v5, l1, v1)

	b.SetVertexNames([]string{"v1", "v2", "v3", "v4", "v5", "v6"})
	b.SetLabelNames([]string{"l1", "l2", "l3"})
	return b.Build()
}

package graph

import (
	"math/rand"
	"testing"
)

// triangleBrute counts directed 3-cycles by cubic enumeration over the
// label-stripped edge set.
func triangleBrute(g *Graph) int {
	n := g.NumVertices()
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range g.Edges() {
		adj[e.Src][e.Dst] = true
	}
	count := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || !adj[u][v] {
				continue
			}
			for w := 0; w < n; w++ {
				if w == u || w == v {
					continue
				}
				if adj[v][w] && adj[w][u] {
					count++
				}
			}
		}
	}
	return count / 3
}

func TestSelfLoopCount(t *testing.T) {
	g := FromEdges(3, 2, []Edge{
		{0, 0, 0}, {0, 0, 1}, {1, 1, 1}, {1, 2, 0}, {2, 2, 0}, {2, 2, 1},
	})
	// Self loops: (0,0,l0), (0,0,l1), (1,1,l1), (2,2,l0), (2,2,l1).
	if got := SelfLoopCount(g); got != 5 {
		t.Errorf("SelfLoopCount = %d, want 5", got)
	}
}

func TestTriangleCountKnown(t *testing.T) {
	// Single directed triangle 0->1->2->0.
	g := FromEdges(3, 1, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})
	if got := TriangleCount(g); got != 1 {
		t.Errorf("TriangleCount(triangle) = %d, want 1", got)
	}
	// A 2-cycle plus loops: zero triangles.
	g = FromEdges(2, 1, []Edge{{0, 1, 0}, {1, 0, 0}, {0, 0, 0}})
	if got := TriangleCount(g); got != 0 {
		t.Errorf("TriangleCount(2-cycle) = %d, want 0", got)
	}
	// Parallel labels must not double count.
	g = FromEdges(3, 2, []Edge{{0, 1, 0}, {0, 1, 1}, {1, 2, 0}, {2, 0, 0}})
	if got := TriangleCount(g); got != 1 {
		t.Errorf("TriangleCount(parallel) = %d, want 1", got)
	}
}

func TestTriangleCountMatchesBrute(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 4 + r.Intn(10)
		b := NewBuilder(n, 2)
		for i := 0; i < n*3; i++ {
			b.AddEdge(Vertex(r.Intn(n)), Label(r.Intn(2)), Vertex(r.Intn(n)))
		}
		g := b.Build()
		got, want := TriangleCount(g), triangleBrute(g)
		if got != want {
			t.Fatalf("trial %d: TriangleCount = %d, brute = %d", trial, got, want)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := FromEdges(3, 2, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 0, 1}, {0, 0, 0}})
	s := ComputeStats(g)
	if s.Vertices != 3 || s.Edges != 4 || s.Labels != 2 {
		t.Errorf("stats shape: %+v", s)
	}
	if s.Loops != 1 {
		t.Errorf("Loops = %d, want 1", s.Loops)
	}
	if s.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1", s.Triangles)
	}
	if s.AvgDegree < 1.33 || s.AvgDegree > 1.34 {
		t.Errorf("AvgDegree = %f", s.AvgDegree)
	}
	if s.MaxOutDeg != 2 {
		t.Errorf("MaxOutDeg = %d, want 2", s.MaxOutDeg)
	}
}

func TestDegreeProduct(t *testing.T) {
	g := Fig2()
	v1, _ := g.VertexByName("v1")
	if got := DegreeProduct(g, v1); got != 12 {
		t.Errorf("DegreeProduct(v1) = %d, want 12 (out 2, in 3)", got)
	}
	v6, _ := g.VertexByName("v6")
	if got := DegreeProduct(g, v6); got != 3 {
		t.Errorf("DegreeProduct(v6) = %d, want 3 (out 0, in 2)", got)
	}
}

func TestOrderDeterministicTies(t *testing.T) {
	// All four vertices have degree product 2: ids must break the ties.
	g := FromEdges(4, 1, []Edge{{0, 1, 0}, {2, 3, 0}})
	order := OrderByDegreeProduct(g)
	for i, v := range order {
		if int(v) != i {
			t.Fatalf("tie break not by id: %v", order)
		}
	}
}

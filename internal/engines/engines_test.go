package engines

import (
	"math/rand"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
)

func allEngines(g *graph.Graph) []Engine {
	return []Engine{NewSys1(g), NewSys2(g), NewVirtuosoLike(g)}
}

func randomGraph(r *rand.Rand, n, numLabels, edges int) *graph.Graph {
	b := graph.NewBuilder(n, numLabels)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(r.Intn(n)), graph.Label(r.Intn(numLabels)), graph.Vertex(r.Intn(n)))
	}
	return b.Build()
}

func TestEnginesOnFig2(t *testing.T) {
	g := graph.Fig2()
	v := func(name string) graph.Vertex { id, _ := g.VertexByName(name); return id }
	for _, e := range allEngines(g) {
		// Example 4: Q1 true, Q3 false.
		got, err := e.Eval(v("v3"), v("v6"), automaton.Plus(labelseq.Seq{1, 0}))
		if err != nil || !got {
			t.Errorf("%s: Q1 = %v, %v; want true", e.Name(), got, err)
		}
		got, err = e.Eval(v("v1"), v("v3"), automaton.Plus(labelseq.Seq{0}))
		if err != nil || got {
			t.Errorf("%s: Q3 = %v, %v; want false", e.Name(), got, err)
		}
	}
}

// TestEnginesAgreeWithTraversal: every engine must match BFS on RLC
// constraints and on the multi-segment extended constraints of Table V.
func TestEnginesAgreeWithTraversal(t *testing.T) {
	r := rand.New(rand.NewSource(300))
	exprs := []automaton.Expr{
		automaton.Plus(labelseq.Seq{0}),
		automaton.Plus(labelseq.Seq{1}),
		automaton.Plus(labelseq.Seq{0, 1}),
		automaton.Plus(labelseq.Seq{1, 0, 0}),
		automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}),                                            // Q4 a+ b+
		automaton.ConcatPlus(labelseq.Seq{0, 1}, labelseq.Seq{1}),                                         // (a b)+ b+
		{Segments: []automaton.Segment{{Labels: labelseq.Seq{0}}, {Labels: labelseq.Seq{1}, Plus: true}}}, // a b+
	}
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(10)
		g := randomGraph(r, n, 2, 3*n)
		ev := traversal.NewEvaluator(g)
		engines := allEngines(g)
		for _, expr := range exprs {
			nfa, err := automaton.Compile(expr, g.NumLabels())
			if err != nil {
				t.Fatal(err)
			}
			for s := graph.Vertex(0); int(s) < n; s++ {
				for tt := graph.Vertex(0); int(tt) < n; tt++ {
					want := ev.BFS(s, tt, nfa)
					for _, e := range engines {
						got, err := e.Eval(s, tt, expr)
						if err != nil {
							t.Fatal(err)
						}
						if got != want {
							t.Fatalf("trial %d %s(%d,%d,%v) = %v, BFS = %v\nedges %v",
								trial, e.Name(), s, tt, expr, got, want, g.Edges())
						}
					}
				}
			}
		}
	}
}

func TestEnginesOnBAGraph(t *testing.T) {
	g, err := gen.BA(150, 3, 4, 55)
	if err != nil {
		t.Fatal(err)
	}
	ev := traversal.NewEvaluator(g)
	r := rand.New(rand.NewSource(301))
	exprs := []automaton.Expr{
		automaton.Plus(labelseq.Seq{0}),
		automaton.Plus(labelseq.Seq{0, 1}),
		automaton.ConcatPlus(labelseq.Seq{0}, labelseq.Seq{1}),
	}
	for _, e := range allEngines(g) {
		for i := 0; i < 150; i++ {
			s := graph.Vertex(r.Intn(150))
			tt := graph.Vertex(r.Intn(150))
			expr := exprs[r.Intn(len(exprs))]
			nfa, err := automaton.Compile(expr, g.NumLabels())
			if err != nil {
				t.Fatal(err)
			}
			want := ev.BFS(s, tt, nfa)
			got, err := e.Eval(s, tt, expr)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s(%d,%d,%v) = %v, BFS = %v", e.Name(), s, tt, expr, got, want)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	g := graph.Fig2()
	for _, e := range allEngines(g) {
		if _, err := e.Eval(0, 1, automaton.Expr{}); err == nil {
			t.Errorf("%s: empty expression must fail", e.Name())
		}
		if _, err := e.Eval(0, 1, automaton.Plus(labelseq.Seq{99})); err == nil {
			t.Errorf("%s: out-of-range label must fail", e.Name())
		}
	}
}

func TestEngineNames(t *testing.T) {
	g := graph.Fig2()
	want := map[string]bool{"Sys1": true, "Sys2": true, "VirtuosoLike": true}
	for _, e := range allEngines(g) {
		if !want[e.Name()] {
			t.Errorf("unexpected engine name %q", e.Name())
		}
	}
}

// Package engines implements three from-scratch query engines standing in
// for the mainstream systems of Table V (two anonymized commercial engines
// and Virtuoso; an offline reproduction cannot ship the real systems, so faithful evaluation-strategy stand-ins take their place). Each reproduces one of
// the evaluation strategies production systems use for regular path
// queries:
//
//   - Sys1: tuple-at-a-time navigational evaluation — an automaton-guided
//     DFS interpreter with per-query plan setup and hash-based visited
//     tracking.
//   - Sys2: set-at-a-time Volcano-style evaluation — breadth-wise expansion
//     operators that materialize, sort and deduplicate a frontier per step.
//   - VirtuosoLike: relational evaluation over a label-partitioned sorted
//     edge table, computing recursion by semi-naive fixpoint joins.
//
// All three are exact (they agree with online traversal on every query);
// what differs — and what Table V measures — is the constant-factor and
// asymptotic cost of their strategies against one RLC-index lookup.
package engines

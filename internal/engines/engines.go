package engines

import (
	"fmt"
	"sort"

	"github.com/g-rpqs/rlc-go/internal/automaton"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Engine evaluates reachability queries with regular path constraints.
type Engine interface {
	// Name identifies the engine in benchmark output.
	Name() string
	// Eval reports whether a path from s to t matches the expression.
	Eval(s, t graph.Vertex, e automaton.Expr) (bool, error)
}

// --- Sys1: navigational tuple-at-a-time DFS -----------------------------

type sys1 struct {
	g *graph.Graph
}

// NewSys1 returns the tuple-at-a-time navigational engine.
func NewSys1(g *graph.Graph) Engine { return &sys1{g: g} }

func (e *sys1) Name() string { return "Sys1" }

func (e *sys1) Eval(s, t graph.Vertex, expr automaton.Expr) (bool, error) {
	// Per-query plan setup: the automaton is compiled on every call, as a
	// query interpreter would.
	nfa, err := automaton.Compile(expr, e.g.NumLabels())
	if err != nil {
		return false, fmt.Errorf("sys1: %w", err)
	}
	ns := int64(nfa.NumStates())
	accept := nfa.Accept()
	visited := make(map[int64]struct{})
	stack := []int64{int64(s) * ns} // product node v*ns + q, start state 0
	visited[stack[0]] = struct{}{}

	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := graph.Vertex(node / ns)
		q := automaton.State(node % ns)
		dsts, lbls := e.g.OutEdges(v)
		for i := range dsts {
			targets := nfa.Step(q, lbls[i])
			for m := targets; m != 0; m &= m - 1 {
				nq := automaton.State(tz(m))
				if dsts[i] == t && nq == accept {
					return true, nil
				}
				key := int64(dsts[i])*ns + int64(nq)
				if _, dup := visited[key]; dup {
					continue
				}
				visited[key] = struct{}{}
				stack = append(stack, key)
			}
		}
	}
	return false, nil
}

// --- Sys2: Volcano-style set-at-a-time expansion -------------------------

type sys2 struct {
	g *graph.Graph
}

// NewSys2 returns the set-at-a-time Volcano-style engine.
func NewSys2(g *graph.Graph) Engine { return &sys2{g: g} }

func (e *sys2) Name() string { return "Sys2" }

func (e *sys2) Eval(s, t graph.Vertex, expr automaton.Expr) (bool, error) {
	nfa, err := automaton.Compile(expr, e.g.NumLabels())
	if err != nil {
		return false, fmt.Errorf("sys2: %w", err)
	}
	ns := int64(nfa.NumStates())
	acceptNode := int64(t)*ns + int64(nfa.Accept())

	seen := []int64{int64(s) * ns} // sorted materialized set of product nodes
	frontier := []int64{int64(s) * ns}

	for len(frontier) > 0 {
		// Expansion operator: materialize all successors of the frontier.
		var next []int64
		for _, node := range frontier {
			v := graph.Vertex(node / ns)
			q := automaton.State(node % ns)
			dsts, lbls := e.g.OutEdges(v)
			for i := range dsts {
				targets := nfa.Step(q, lbls[i])
				for m := targets; m != 0; m &= m - 1 {
					next = append(next, int64(dsts[i])*ns+int64(tz(m)))
				}
			}
		}
		// Dedup operator: sort and collapse the batch.
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		next = dedupSorted(next)
		// Anti-join against everything seen so far.
		next = diffSorted(next, seen)
		for _, node := range next {
			if node == acceptNode {
				return true, nil
			}
		}
		// Union operator: merge the new batch into the seen relation.
		seen = unionSorted(seen, next)
		frontier = next
	}
	return false, nil
}

// --- VirtuosoLike: relational semi-naive fixpoint -------------------------

type virtuoso struct {
	g *graph.Graph
	// byLabel[l] holds the edges with label l sorted by src — the
	// label-partitioned column layout.
	byLabel [][]edgeRow
}

type edgeRow struct {
	src, dst graph.Vertex
}

// NewVirtuosoLike returns the relational fixpoint engine. Construction
// builds the label-partitioned edge table (data loading, not query time).
func NewVirtuosoLike(g *graph.Graph) Engine {
	e := &virtuoso{g: g, byLabel: make([][]edgeRow, g.NumLabels())}
	for v := graph.Vertex(0); int(v) < g.NumVertices(); v++ {
		dsts, lbls := g.OutEdges(v)
		for i := range dsts {
			e.byLabel[lbls[i]] = append(e.byLabel[lbls[i]], edgeRow{src: v, dst: dsts[i]})
		}
	}
	for l := range e.byLabel {
		rows := e.byLabel[l]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].src != rows[j].src {
				return rows[i].src < rows[j].src
			}
			return rows[i].dst < rows[j].dst
		})
	}
	return e
}

func (e *virtuoso) Name() string { return "VirtuosoLike" }

func (e *virtuoso) Eval(s, t graph.Vertex, expr automaton.Expr) (bool, error) {
	if len(expr.Segments) == 0 {
		return false, fmt.Errorf("virtuoso: empty expression")
	}
	frontier := []graph.Vertex{s}
	for _, seg := range expr.Segments {
		for _, l := range seg.Labels {
			if l < 0 || int(l) >= len(e.byLabel) {
				return false, fmt.Errorf("virtuoso: label %d out of range", l)
			}
		}
		if seg.Plus {
			frontier = e.fixpoint(frontier, seg.Labels)
		} else {
			frontier = e.joinChain(frontier, seg.Labels)
		}
		if len(frontier) == 0 {
			return false, nil
		}
	}
	i := sort.Search(len(frontier), func(i int) bool { return frontier[i] >= t })
	return i < len(frontier) && frontier[i] == t, nil
}

// joinChain applies one join per label in sequence: the relational plan for
// a fixed concatenation.
func (e *virtuoso) joinChain(in []graph.Vertex, labels []graph.Label) []graph.Vertex {
	cur := in
	for _, l := range labels {
		var next []graph.Vertex
		rows := e.byLabel[l]
		for _, v := range cur {
			i := sort.Search(len(rows), func(i int) bool { return rows[i].src >= v })
			for ; i < len(rows) && rows[i].src == v; i++ {
				next = append(next, rows[i].dst)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		next = dedupVerts(next)
		cur = next
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// fixpoint computes the vertices reachable from the seeds by one or more
// L-periods, by semi-naive iteration: each round joins only the delta of
// the previous round through the |L|-join chain.
func (e *virtuoso) fixpoint(seeds []graph.Vertex, labels []graph.Label) []graph.Vertex {
	var reached []graph.Vertex // sorted accumulated boundary set
	delta := seeds
	for len(delta) > 0 {
		next := e.joinChain(delta, labels)
		next = diffVerts(next, reached)
		reached = unionVerts(reached, next)
		delta = next
	}
	return reached
}

// --- sorted-slice set algebra ---------------------------------------------

func tz(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

func dedupSorted(a []int64) []int64 {
	out := a[:0]
	for i, v := range a {
		if i > 0 && v == a[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func diffSorted(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b):
			out = append(out, a[i])
			i++
		case i >= len(a):
			out = append(out, b[j])
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func dedupVerts(a []graph.Vertex) []graph.Vertex {
	out := a[:0]
	for i, v := range a {
		if i > 0 && v == a[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}

func diffVerts(a, b []graph.Vertex) []graph.Vertex {
	var out []graph.Vertex
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

func unionVerts(a, b []graph.Vertex) []graph.Vertex {
	out := make([]graph.Vertex, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b):
			out = append(out, a[i])
			i++
		case i >= len(a):
			out = append(out, b[j])
			j++
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

package server

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errComputePanicked is what coalesced waiters receive when the flight
// leader's computation panicked: the panic itself propagates only on the
// leader (where net/http's handler recovery can report it), but the waiters
// must still be unblocked with a failure.
var errComputePanicked = errors.New("server: query computation panicked")

// cacheKey identifies one query result: the resolved endpoint ids plus the
// constraint in one of two encodings. The hot single-L+ path packs the label
// sequence into code (base numLabels+1, first label most significant — the
// labelseq.Code scheme) so a key costs no allocation; expressions that don't
// fit that encoding (multi-segment, or too long for 63 bits) carry the
// canonical text of the parsed expression instead, with code 0. The two
// ranges cannot collide: every packed nonempty sequence has code >= 1, and
// expr keys always have code 0. Keying on the parsed form means "(l0 l1)+",
// "l0 l1", and a named spelling of the same labels share one cache slot.
type cacheKey struct {
	s, t int32
	code uint64
	expr string
}

// CacheStats is a point-in-time snapshot of the result cache's counters.
type CacheStats struct {
	// Hits counts lookups answered from a resident entry.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to compute the answer.
	Misses int64 `json:"misses"`
	// Coalesced counts lookups that arrived while an identical miss was
	// already computing and waited for its result instead of recomputing
	// (singleflight deduplication). They are neither hits nor misses.
	Coalesced int64 `json:"coalesced"`
	// Evictions counts entries displaced by the LRU policy.
	Evictions int64 `json:"evictions"`
	// Entries is the number of currently resident results.
	Entries int64 `json:"entries"`
	// Capacity is the configured maximum number of resident results
	// (0 when the cache is disabled).
	Capacity int64 `json:"capacity"`
}

// HitRate is Hits / (Hits + Misses + Coalesced), or 0 before any lookup.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses + c.Coalesced
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// flight is one in-progress computation other goroutines can wait on. ver is
// the write version the computation started at: callers at a newer version
// must not coalesce onto it (its result may predate their writes).
type flight struct {
	done chan struct{}
	val  bool
	err  error
	ver  uint64
}

// lruNode is one resident entry in a shard's intrusive LRU list. Nodes are
// index-linked into the shard's node slice so a full shard is one allocation
// block instead of a pointer web. ver stamps the write version the value was
// computed at (see the validity rule in do).
type lruNode struct {
	key        cacheKey
	val        bool
	ver        uint64
	prev, next int32
}

// cacheShard is an independently locked LRU over its slice of the key space.
type cacheShard struct {
	mu      sync.Mutex
	table   map[cacheKey]int32 // key -> node index
	nodes   []lruNode
	head    int32 // most recently used; -1 when empty
	tail    int32 // least recently used; -1 when empty
	cap     int
	flights map[cacheKey]*flight
}

// cache is the sharded LRU result cache with singleflight deduplication that
// fronts the index on the serving path. Shard count is a power of two so key
// hashes map to shards with a mask.
type cache struct {
	shards []cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
	capacity  int64
}

// newCache sizes a cache for totalEntries split over shards (shards already
// a power of two from Options). Shard count is halved until every shard
// holds at least one entry, and the remainder is spread over the leading
// shards, so the per-shard capacities sum to exactly totalEntries — the
// Capacity that CacheStats reports is the hard resident bound.
func newCache(totalEntries, shards int) *cache {
	for shards > 1 && shards > totalEntries {
		shards >>= 1
	}
	c := &cache{
		shards:   make([]cacheShard, shards),
		capacity: int64(totalEntries),
	}
	per, extra := totalEntries/shards, totalEntries%shards
	for i := range c.shards {
		sh := &c.shards[i]
		sh.cap = per
		if i < extra {
			sh.cap++
		}
		sh.table = make(map[cacheKey]int32, sh.cap)
		sh.flights = make(map[cacheKey]*flight)
		sh.head, sh.tail = -1, -1
	}
	return c
}

// shardFor mixes the key into a shard index. The hot path (code keys) is a
// handful of multiply-xor steps; string keys add an FNV pass over the text.
func (c *cache) shardFor(k cacheKey) *cacheShard {
	h := uint64(uint32(k.s))<<32 | uint64(uint32(k.t))
	h ^= k.code * 0x9e3779b97f4a7c15
	for i := 0; i < len(k.expr); i++ {
		h = (h ^ uint64(k.expr[i])) * 1099511628211
	}
	h = (h ^ (h >> 33)) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return &c.shards[h&uint64(len(c.shards)-1)]
}

// do returns the cached answer for k, or computes it exactly once across all
// concurrent callers. cached reports whether the answer came from a resident
// entry; coalesced callers report cached=false (they waited for the compute).
// Errors are broadcast to coalesced waiters but never cached: a failing
// compute (e.g. a transient condition) must not poison the key.
//
// ver is the caller's write version (the serving generation's insert counter
// at request start; constantly 0 on immutable servers). Validity exploits
// that the write path is insert-only — edges are only ever added, deletions
// are rejected — so reachability answers within a generation are monotone:
// a cached TRUE can never be invalidated by a write and is served at any
// version, while a cached FALSE may have been flipped by a later insert and
// is served only at the exact version it was computed at. One insert thus
// logically invalidates every negative entry at once without touching them;
// stale negatives are refreshed in place on their next miss.
func (c *cache) do(k cacheKey, ver uint64, compute func() (bool, error)) (val bool, cached bool, err error) {
	sh := c.shardFor(k)

	sh.mu.Lock()
	if idx, ok := sh.table[k]; ok {
		n := &sh.nodes[idx]
		if n.val || n.ver == ver {
			sh.moveToFront(idx)
			val = n.val
			sh.mu.Unlock()
			c.hits.Add(1)
			return val, true, nil
		}
		// Stale FALSE: fall through and recompute (refreshing the entry).
	}
	if fl, ok := sh.flights[k]; ok && fl.ver == ver {
		sh.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		return fl.val, false, fl.err
	}
	// No flight at this version. A resident flight from an older version
	// may return an answer that predates this caller's writes, so it is
	// not joined — a replacement flight at the current version takes its
	// map slot instead (finish only deletes the entry it still owns), and
	// later same-version callers coalesce onto the replacement rather than
	// stampeding. The two finishes race benignly: both stamp their own
	// version, and TRUE wins by monotonicity either way.
	fl := &flight{done: make(chan struct{}), ver: ver}
	sh.flights[k] = fl
	sh.mu.Unlock()
	c.misses.Add(1)

	// The flight MUST resolve even if compute panics — otherwise the key
	// is wedged forever: every later request would block on fl.done. The
	// deferred path fails the flight and lets the panic propagate.
	finish := func() {
		sh.mu.Lock()
		if sh.flights[k] == fl {
			delete(sh.flights, k)
		}
		if fl.err == nil {
			c.account(sh.insert(k, fl.ver, fl.val))
		}
		sh.mu.Unlock()
		close(fl.done)
	}
	panicked := true
	defer func() {
		if panicked {
			fl.val, fl.err = false, errComputePanicked
			finish()
		}
	}()
	fl.val, fl.err = compute()
	panicked = false
	finish()
	return fl.val, false, fl.err
}

// account applies one insert outcome to the shared counters.
func (c *cache) account(added, evicted bool) {
	if added {
		c.entries.Add(1)
	}
	if evicted {
		c.evictions.Add(1)
	}
}

// hitProbe is the allocation-free fast path in front of do: a pure resident
// lookup that counts only hits. A probe failure is not yet a miss — the
// caller falls through to do, which counts the miss (or coalesces onto a
// flight) after building the detached context and compute closure that the
// hit path never pays for.
//
//rlc:noalloc
func (c *cache) hitProbe(k cacheKey, ver uint64) (val, ok bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	idx, ok := sh.table[k]
	if ok {
		n := &sh.nodes[idx]
		if n.val || n.ver == ver {
			sh.moveToFront(idx)
			val = n.val
		} else {
			ok = false // stale FALSE: recompute via do
		}
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return val, ok
}

// get is a pure lookup (no singleflight, no insert); the batch path uses it
// to peel resident answers off a request before fanning the rest out. It
// applies the same monotone validity rule as do.
func (c *cache) get(k cacheKey, ver uint64) (val bool, ok bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	idx, ok := sh.table[k]
	if ok {
		n := &sh.nodes[idx]
		if n.val || n.ver == ver {
			sh.moveToFront(idx)
			val = n.val
		} else {
			ok = false
		}
	}
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return val, ok
}

// put inserts a computed answer, evicting the shard's LRU entry when full.
func (c *cache) put(k cacheKey, ver uint64, val bool) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	added, evicted := sh.insert(k, ver, val)
	sh.mu.Unlock()
	c.account(added, evicted)
}

// stats snapshots the counters. Counters are read individually without a
// global lock, so a snapshot taken under load is approximate — fine for
// monitoring, which is its only use.
func (c *cache) stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Capacity:  c.capacity,
	}
}

// insert adds or refreshes k under the shard lock. added reports a net new
// resident entry, evicted that the LRU tail was displaced to make room.
// Re-inserting a resident key (two batch misses racing, or a stale negative
// being refreshed) just updates its value, version, and recency — a TRUE
// never regresses to FALSE because computes observing the insert run at a
// version at least as new.
func (sh *cacheShard) insert(k cacheKey, ver uint64, val bool) (added, evicted bool) {
	if idx, ok := sh.table[k]; ok {
		n := &sh.nodes[idx]
		if !n.val || val {
			n.val, n.ver = val, ver
		}
		sh.moveToFront(idx)
		return false, false
	}
	var idx int32
	switch {
	case len(sh.nodes) < sh.cap:
		sh.nodes = append(sh.nodes, lruNode{})
		idx = int32(len(sh.nodes) - 1)
		added = true
	default:
		// Full: recycle the LRU tail in place (entry count unchanged).
		idx = sh.tail
		sh.unlink(idx)
		delete(sh.table, sh.nodes[idx].key)
		evicted = true
	}
	sh.nodes[idx] = lruNode{key: k, val: val, ver: ver, prev: -1, next: -1}
	sh.table[k] = idx
	sh.pushFront(idx)
	return added, evicted
}

func (sh *cacheShard) moveToFront(idx int32) {
	if sh.head == idx {
		return
	}
	sh.unlink(idx)
	sh.pushFront(idx)
}

func (sh *cacheShard) pushFront(idx int32) {
	n := &sh.nodes[idx]
	n.prev = -1
	n.next = sh.head
	if sh.head >= 0 {
		sh.nodes[sh.head].prev = idx
	}
	sh.head = idx
	if sh.tail < 0 {
		sh.tail = idx
	}
}

func (sh *cacheShard) unlink(idx int32) {
	n := &sh.nodes[idx]
	if n.prev >= 0 {
		sh.nodes[n.prev].next = n.next
	} else {
		sh.head = n.next
	}
	if n.next >= 0 {
		sh.nodes[n.next].prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = -1, -1
}

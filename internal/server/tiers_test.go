package server

import (
	"fmt"
	"net/http"
	"sort"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// tieredTestGraph returns a graph dense enough for tiering to pay: the
// builder refuses to tier graphs whose entry lists are cheaper than the
// per-vertex filter floor (graph.Fig2 is one), so the tier-facing server
// tests need real list volume. Names follow the v%d/l%d fixture convention
// so the mutable-update paths work unchanged.
func tieredTestGraph() *graph.Graph {
	const n, labels, edges = 48, 3, 220
	b := graph.NewBuilder(n, labels)
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("v%d", i+1)
	}
	b.SetVertexNames(names)
	b.SetLabelNames([]string{"l1", "l2", "l3"})
	seed := uint64(41)
	next := func(m int) int {
		seed = seed*6364136223846793005 + 1442695040888963407
		return int((seed >> 33) % uint64(m))
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.Vertex(next(n)), graph.Label(next(labels)), graph.Vertex(next(n)))
	}
	return b.Build()
}

func buildTieredIndex(t *testing.T, g *graph.Graph, budget int64) *core.Index {
	t.Helper()
	ix, err := core.Build(g, core.Options{K: 2, MaxIndexBytes: budget})
	if err != nil {
		t.Fatalf("build tiered index: %v", err)
	}
	if !ix.Tiered() {
		t.Fatalf("budget %d did not tier the index", budget)
	}
	return ix
}

// TestStatsTierShape pins the /stats "tiers" contract: the exact key set
// dashboards scrape, the configured budget, and hit counters that move under
// query traffic and cover it. An untiered server must omit the section
// entirely.
func TestStatsTierShape(t *testing.T) {
	g := tieredTestGraph()
	ix := buildTieredIndex(t, g, 1)
	full := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})

	queries := 0
	for s := 0; s < g.NumVertices(); s++ {
		for d := 0; d < g.NumVertices(); d++ {
			var resp queryResponse
			if code := getJSON(t, queryURL(hts.URL, fmt.Sprint(s), fmt.Sprint(d), "l1"), &resp); code != http.StatusOK {
				t.Fatalf("(%d,%d): status %d", s, d, code)
			}
			want, err := full.Query(graph.Vertex(s), graph.Vertex(d), labelseq.Seq{0})
			if err != nil {
				t.Fatal(err)
			}
			if resp.Reachable != want {
				t.Fatalf("(%d,%d,l1): tiered server says %v, unbudgeted index says %v", s, d, resp.Reachable, want)
			}
			queries++
		}
	}

	var m map[string]any
	getJSON(t, hts.URL+"/stats", &m)
	sec, ok := m["tiers"].(map[string]any)
	if !ok {
		t.Fatalf("/stats has no tiers section: %v", m)
	}
	var keys []string
	for k := range sec {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"bloom_bits_per_filter", "budget", "demoted_vertices", "exact_hits",
		"filter_bytes", "filter_definite", "filter_maybe", "retained_vertices", "union_sets"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("tiers keys drifted:\n got %v\nwant %v", keys, want)
	}
	if sec["budget"] != float64(1) {
		t.Fatalf("budget = %v, want 1", sec["budget"])
	}
	if got := sec["retained_vertices"].(float64) + sec["demoted_vertices"].(float64); got != float64(g.NumVertices()) {
		t.Fatalf("tier split sums to %v of %d vertices", got, g.NumVertices())
	}
	decided := sec["exact_hits"].(float64) + sec["filter_definite"].(float64) + sec["filter_maybe"].(float64)
	if decided != float64(queries) {
		t.Fatalf("tier counters sum to %v, served %d queries", decided, queries)
	}
	if sec["filter_definite"].(float64) == 0 {
		t.Fatal("filter tier decided nothing on an all-demoted index")
	}

	_, plain := newTestServer(t, full, Options{})
	m = nil
	getJSON(t, plain.URL+"/stats", &m)
	if _, present := m["tiers"]; present {
		t.Fatal("untiered /stats carries a tiers section")
	}
}

// TestHealthzTierBudget extends the healthz shape pin to a tiered server:
// the index_budget key appears with the configured budget, and only then.
func TestHealthzTierBudget(t *testing.T) {
	g := tieredTestGraph()
	_, hts := newTestServer(t, buildTieredIndex(t, g, 1), Options{})
	var m map[string]any
	getJSON(t, hts.URL+"/healthz", &m)
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	want := []string{"bundle_fingerprint", "generation", "index_budget", "journal_seq", "role", "status"}
	if fmt.Sprint(keys) != fmt.Sprint(want) {
		t.Fatalf("tiered healthz keys drifted:\n got %v\nwant %v", keys, want)
	}
	if m["index_budget"] != float64(1) {
		t.Fatalf("index_budget = %v, want 1", m["index_budget"])
	}

	_, plain := newTestServer(t, buildIndex(t, g), Options{})
	m = nil
	getJSON(t, plain.URL+"/healthz", &m)
	if _, present := m["index_budget"]; present {
		t.Fatal("untiered healthz carries index_budget")
	}
}

// TestMutableTieredFoldKeepsBudget: a mutable server over a size-budgeted
// index folds its journal into a rebuilt epoch that keeps the budget (and so
// stays tiered), because folds inherit the base index's BuildOptions.
func TestMutableTieredFoldKeepsBudget(t *testing.T) {
	g := tieredTestGraph()
	ix := buildTieredIndex(t, g, 1)
	s, hts := newTestServer(t, ix, Options{Mutable: true, RebuildThreshold: -1})

	var up UpdateResult
	if code := postJSON(t, hts.URL+"/update", `{"s":"v1","l":"l1","t":"v4"}`, &up); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if _, err := s.Rebuild(); err != nil {
		t.Fatalf("fold: %v", err)
	}

	var m map[string]any
	getJSON(t, hts.URL+"/stats", &m)
	sec, ok := m["tiers"].(map[string]any)
	if !ok {
		t.Fatalf("post-fold /stats lost the tiers section: %v", m["tiers"])
	}
	if sec["budget"] != float64(1) {
		t.Fatalf("post-fold budget = %v, want 1", sec["budget"])
	}
	var hz map[string]any
	getJSON(t, hts.URL+"/healthz", &hz)
	if hz["index_budget"] != float64(1) {
		t.Fatalf("post-fold index_budget = %v, want 1", hz["index_budget"])
	}
}

package server

import (
	"math"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket i counts
// observations in [2^(i-1), 2^i) microseconds (bucket 0 is < 1µs), so the
// range reaches 2^30 µs ≈ 18 minutes — far past any request this server
// should ever serve.
const histBuckets = 31

// histogram is a lock-free log2 latency histogram. Recording is one atomic
// add per observation plus a CAS loop for the running max; snapshots read the
// counters without stopping writers, so a snapshot under load is a close
// approximation, which is all /stats needs.
type histogram struct {
	count   atomic.Int64
	errors  atomic.Int64
	sumUS   atomic.Int64
	maxUS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// observe records one request's latency; failed reports a request answered
// with an error status (it is still timed — slow failures matter).
func (h *histogram) observe(d time.Duration, failed bool) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	if failed {
		h.errors.Add(1)
	}
	h.sumUS.Add(us)
	for {
		old := h.maxUS.Load()
		if us <= old || h.maxUS.CompareAndSwap(old, us) {
			break
		}
	}
	h.buckets[bucketOf(us)].Add(1)
}

// bucketOf maps a microsecond latency to its log2 bucket.
func bucketOf(us int64) int {
	b := 0
	for us > 0 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// EndpointStats is the /stats rendering of one endpoint's histogram.
type EndpointStats struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	// MeanMicros/P50/P90/P99 are derived from the log2 buckets, so the
	// quantiles are upper bounds with at most 2x resolution.
	MeanMicros float64 `json:"mean_us"`
	P50Micros  float64 `json:"p50_us"`
	P90Micros  float64 `json:"p90_us"`
	P99Micros  float64 `json:"p99_us"`
	MaxMicros  int64   `json:"max_us"`
}

// snapshot derives the reported statistics from the live counters.
func (h *histogram) snapshot() EndpointStats {
	st := EndpointStats{
		Count:     h.count.Load(),
		Errors:    h.errors.Load(),
		MaxMicros: h.maxUS.Load(),
	}
	if st.Count == 0 {
		return st
	}
	st.MeanMicros = float64(h.sumUS.Load()) / float64(st.Count)

	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return st
	}
	st.P50Micros = quantile(counts[:], total, 0.50)
	st.P90Micros = quantile(counts[:], total, 0.90)
	st.P99Micros = quantile(counts[:], total, 0.99)
	return st
}

// quantile returns the upper bound of the bucket holding the q-quantile.
func quantile(counts []int64, total int64, q float64) float64 {
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= target {
			if i == 0 {
				return 1
			}
			return math.Pow(2, float64(i))
		}
	}
	return math.Pow(2, float64(len(counts)))
}

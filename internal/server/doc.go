// Package server is the long-running query-serving layer over an RLC index:
// an HTTP/JSON surface that composes everything on the read path — the CSR
// index (internal/core), the concurrent batch worker pool
// (Index.QueryBatchInto), and the hybrid evaluator fallback for expressions
// outside the index's L+ class (internal/hybrid) — and, when configured
// mutable, the write path of the read/write epoch pipeline (the delta
// overlay of internal/dynamic plus background fold-and-rebuild):
//
//	GET  /query?s=&t=&l=   one query; l is any expression the CLIs accept
//	POST /batch            many (s, t, L+) queries fanned over the pool
//	POST /update           mutable: insert edges (single or atomic batch)
//	POST /rebuild          mutable: fold the journal into a rebuilt base
//	POST /reload           immutable snapshot servers: hot-swap the bundle
//	GET  /stats            cache counters, latency histograms, index stats,
//	                       write-path epoch/journal
//	GET  /healthz          liveness, generation, epoch/journal when mutable
//
// Every serving generation — index, graph, result cache, hybrid pool, delta
// overlay, backing snapshot mapping — lives in one RCU state (store.go)
// each request pins for its lifetime, so reloads AND the write path's
// background folds swap generations with zero downtime and exact answers
// throughout (mutable.go drives the fold: build base ∪ journal, optionally
// write + verify a fresh v2 bundle, carry un-folded edges over, swap).
//
// In front of the index sits a sharded LRU result cache (cache.go): lookups
// hash to one of a power-of-two number of independently locked shards, each
// an intrusive-list LRU over a flat node slice. Concurrent identical misses
// are deduplicated singleflight-style — the first caller computes, the rest
// wait on its in-flight handle — so a thundering herd on one hot query costs
// one index probe. Over an immutable generation answers never go stale; on
// mutable servers entries are version-stamped by the insert counter, and
// insert-only monotonicity (deletions are rejected) means cached TRUEs stay
// valid across writes while FALSEs revalidate — one insert logically
// invalidates every negative entry without touching memory.
//
// Latency is tracked per endpoint in lock-free log2-bucket histograms
// (metrics.go); /stats reports mean, p50/p90/p99 upper bounds, and max in
// microseconds.
//
// The Server is wrapped by the rlc facade (rlc.NewServer) and the rlcserve
// command, which adds flag parsing, on-the-fly index construction,
// signal-driven graceful shutdown, SIGHUP reloads, and SIGUSR1 folds.
package server

// Package server is the long-running query-serving layer over an RLC index:
// an HTTP/JSON surface that composes everything on the read path — the CSR
// index (internal/core), the concurrent batch worker pool
// (Index.QueryBatchInto), and the hybrid evaluator fallback for expressions
// outside the index's L+ class (internal/hybrid) — behind four endpoints:
//
//	GET  /query?s=&t=&l=   one query; l is any expression the CLIs accept
//	POST /batch            many (s, t, L+) queries fanned over the pool
//	GET  /stats            cache counters, latency histograms, index stats
//	GET  /healthz          liveness
//
// In front of the index sits a sharded LRU result cache (cache.go): lookups
// hash to one of a power-of-two number of independently locked shards, each
// an intrusive-list LRU over a flat node slice. Concurrent identical misses
// are deduplicated singleflight-style — the first caller computes, the rest
// wait on its in-flight handle — so a thundering herd on one hot query costs
// one index probe. Query answers over an immutable index never go stale,
// which is what makes an unbounded-TTL LRU sound here; the dynamic layer
// (internal/dynamic) would need invalidation and deliberately sits outside
// this server.
//
// Latency is tracked per endpoint in lock-free log2-bucket histograms
// (metrics.go); /stats reports mean, p50/p90/p99 upper bounds, and max in
// microseconds.
//
// The Server is wrapped by the rlc facade (rlc.NewServer) and the rlcserve
// command, which adds flag parsing, on-the-fly index construction, and
// signal-driven graceful shutdown.
package server

package server

import (
	"io"
	"sync"
	"sync/atomic"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/dynamic"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
)

// state is one immutable serving generation: an index, its graph, the
// per-generation result cache and hybrid-evaluator pool, the delta overlay
// accepting writes against this base (mutable servers only), and — when the
// generation came from a snapshot bundle — the mapping that backs it all.
// Everything that must change together on a hot reload lives here, so a
// query pins one coherent generation for its whole lifetime and can never
// observe a new index through an old cache (or vice versa). The overlay
// belongs to the generation because its lock-free readers hold references
// into the base index: pinning the generation is what keeps a mid-query
// hot swap from unmapping the snapshot under the delta search.
type state struct {
	ix     *core.Index
	g      *graph.Graph
	src    io.Closer // backing snapshot to retire with the state; nil for heap-built indexes
	cache  *cache    // nil when disabled
	build  *core.BuildStats
	gen    uint64
	source string // human-readable origin for /stats

	// epoch and seqBase place this generation on the replication timeline:
	// epoch counts completed folds (leader-side or adopted), and seqBase is
	// the global insert sequence already folded into this generation's
	// base. Journal position j of this generation's overlay is global
	// sequence seqBase+j, so the mapping is immutable per generation — a
	// reader that pinned the state can translate without racing a fold.
	epoch   uint64
	seqBase uint64

	// fp fingerprints the base graph this generation serves: the bundle's
	// embedded fingerprint when snapshot-backed, recomputed once otherwise.
	// Replication handshakes and /healthz compare it across processes.
	fp graph.Fingerprint

	// delta is the write overlay for this generation's base (nil on
	// immutable servers). A fold builds the next generation's base from
	// base ∪ journal and seeds a fresh overlay with the un-folded tail.
	delta *dynamic.DeltaGraph

	// ver points at the store-wide insert counter; cache entries are
	// stamped with it so one insert logically invalidates every negative
	// entry (see cache.do). Always 0 on immutable servers.
	ver *atomic.Uint64

	// hybrids pools hybrid evaluators: they carry per-traversal scratch
	// sized by the graph and are not safe for concurrent use.
	hybrids sync.Pool

	// refs is the RCU reference count: one reference is held by the Store
	// while the state is current, plus one per in-flight query. The backing
	// snapshot is closed only when the state has been retired AND the count
	// reaches zero — i.e. after the last in-flight query drains.
	refs      atomic.Int64
	retired   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// release drops one pin on this generation; the last release after
// retirement closes the backing snapshot.
//
//rlc:release
func (st *state) release() {
	if st.refs.Add(-1) == 0 && st.retired.Load() {
		st.close()
	}
}

func (st *state) close() {
	st.closeOnce.Do(func() {
		if st.src != nil {
			st.closeErr = st.src.Close()
		}
	})
}

// Store holds the currently served state and swaps it atomically — the
// RCU-style hot-reload primitive behind rlcserve's SIGHUP / POST /reload.
// Readers pin a generation with acquire and never block writers; Swap
// publishes a new generation with one atomic pointer store and retires the
// old one only after its in-flight readers drain. Queries therefore never
// error, block, or see a torn index during a swap.
type Store struct {
	opts   Options // sizing for per-generation caches
	cur    atomic.Pointer[state]
	mu     sync.Mutex // serializes swaps
	gen    uint64     // last generation handed out; guarded by mu
	closed bool       // guarded by mu; a closed store stays closed

	// writes counts accepted edge inserts across all generations — the
	// version source for cache stamping. Monotone for the store's life, so
	// stamps never collide across epochs.
	writes atomic.Uint64
}

// NewStore returns a store serving ix (a heap-built index, generation 1).
func NewStore(ix *core.Index, opts Options) *Store {
	s := &Store{opts: opts.withDefaults()}
	s.install(s.newState(ix, nil, opts.BuildStats, "built in-process", s.newDelta(ix, nil), 0, 0))
	return s
}

// NewStoreFromSnapshot returns a store serving an open snapshot bundle.
// The store takes ownership: the snapshot is closed when its generation is
// retired (by a later Swap) or by Close.
func NewStoreFromSnapshot(snap *core.Snapshot, opts Options) *Store {
	s := &Store{opts: opts.withDefaults()}
	s.install(s.newState(snap.Index(), snap, nil, snapshotSource(snap), s.newDelta(snap.Index(), nil), 0, 0))
	return s
}

// newDelta builds the write overlay for a generation around ix, seeded with
// journal (un-folded edges carried over from the previous epoch). Returns
// nil on immutable stores. The overlay's own automatic rebuild is disabled:
// the serving layer folds, because its folds also write bundles and swap
// generations.
func (s *Store) newDelta(ix *core.Index, journal []graph.Edge) *dynamic.DeltaGraph {
	if !s.opts.Mutable {
		return nil
	}
	d, err := dynamic.NewWithJournal(ix.Graph(), ix, dynamic.Options{RebuildThreshold: -1}, journal)
	if err != nil {
		// Carried-over edges were validated against the same vertex/label
		// universe when first accepted; a fold never shrinks it.
		panic("server: carried-over journal failed revalidation: " + err.Error())
	}
	return d
}

func snapshotSource(snap *core.Snapshot) string {
	if p := snap.Path(); p != "" {
		return "snapshot " + p
	}
	return "snapshot (in-memory)"
}

// newState assembles a generation around ix with a fresh cache and hybrid
// pool. A fresh cache is not an optimization detail: results cached against
// the old index may be wrong for the new one, so cache lifetime is bounded
// by generation lifetime.
func (s *Store) newState(ix *core.Index, src io.Closer, build *core.BuildStats, source string, delta *dynamic.DeltaGraph, epoch, seqBase uint64) *state {
	st := &state{
		ix:      ix,
		g:       ix.Graph(),
		src:     src,
		build:   build,
		source:  source,
		delta:   delta,
		ver:     &s.writes,
		epoch:   epoch,
		seqBase: seqBase,
	}
	// Prefer the fingerprint embedded in a snapshot's meta (O(1)); compute
	// it once for heap-built bases. Either way every pinned reader sees a
	// stable identity for the generation's base graph.
	if snap, ok := src.(*core.Snapshot); ok {
		st.fp = snap.Fingerprint()
	} else {
		st.fp = st.g.Fingerprint()
	}
	if s.opts.CacheEntries > 0 {
		st.cache = newCache(s.opts.CacheEntries, s.opts.CacheShards)
	}
	st.hybrids.New = func() any { return hybrid.New(ix) }
	st.refs.Store(1) // the Store's own reference while current
	return st
}

// install publishes st as the next generation and retires the previous
// one. A swap that races with (or follows) Close does not resurrect the
// store: the incoming state is retired on the spot instead — its backing
// snapshot closes immediately — and the store stays closed.
func (s *Store) install(st *state) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		st.retired.Store(true)
		st.release()
		return
	}
	s.gen++
	st.gen = s.gen
	old := s.cur.Swap(st)
	s.mu.Unlock()
	if old != nil {
		old.retired.Store(true)
		old.release() // drop the Store's reference; closes once readers drain
	}
}

// acquire pins the current generation for one query. The post-increment
// re-check closes the swap race: if the state was swapped out between the
// load and the increment, the reference is dropped and the load retried, so
// a pinned state is always safe to read until release — its backing mapping
// cannot be unmapped while the pin is held. Returns nil after Close.
//
//rlc:acquire
func (s *Store) acquire() *state {
	for {
		st := s.cur.Load()
		if st == nil {
			return nil
		}
		st.refs.Add(1)
		if s.cur.Load() == st {
			return st
		}
		st.release()
	}
}

// SwapIndex atomically replaces the served index with a heap-built one.
// The replication timeline resets: an externally supplied index starts a
// fresh lineage at epoch 0, sequence 0.
func (s *Store) SwapIndex(ix *core.Index) {
	s.install(s.newState(ix, nil, nil, "built in-process", s.newDelta(ix, nil), 0, 0))
}

// SwapSnapshot atomically replaces the served generation with an open
// snapshot bundle, taking ownership of it. The previous generation's
// backing snapshot (if any) is closed only after its last in-flight query
// finishes. Callers should Verify the snapshot before handing it over —
// the swap itself is deliberately unconditional, so policy stays with the
// caller (rlcserve verifies; a trusted pipeline may skip it).
func (s *Store) SwapSnapshot(snap *core.Snapshot) {
	s.install(s.newState(snap.Index(), snap, nil, snapshotSource(snap), s.newDelta(snap.Index(), nil), 0, 0))
}

// SwapFolded publishes a post-fold generation: the index rebuilt over
// base ∪ journal (optionally backed by a freshly written snapshot bundle,
// which the store takes ownership of) and a delta overlay seeded with the
// un-folded journal tail. epoch and seqBase place the new generation on
// the replication timeline (the fold that produced it advanced both). It
// rides the same drain path as SwapSnapshot: queries pinned to the
// pre-fold generation finish against it — overlay, cache, mapping and all
// — before its snapshot is released.
func (s *Store) SwapFolded(ix *core.Index, src io.Closer, journal []graph.Edge, source string, epoch, seqBase uint64) {
	s.install(s.newState(ix, src, nil, source, s.newDelta(ix, journal), epoch, seqBase))
}

// Index returns the currently served index without pinning it — for
// inspection and tests. Queries must go through acquire/release instead.
func (s *Store) Index() *core.Index {
	if st := s.cur.Load(); st != nil {
		return st.ix
	}
	return nil
}

// Generation returns the monotonically increasing generation counter of
// the current state (1 for the initial state, +1 per swap), 0 after Close.
func (s *Store) Generation() uint64 {
	if st := s.cur.Load(); st != nil {
		return st.gen
	}
	return 0
}

// Close retires the current generation; subsequent acquires fail and
// further queries are rejected. If no query is in flight the backing
// snapshot is closed before Close returns (and its error reported);
// otherwise the last draining query closes it asynchronously.
func (s *Store) Close() error {
	s.mu.Lock()
	s.closed = true
	old := s.cur.Swap(nil)
	s.mu.Unlock()
	if old == nil {
		return nil
	}
	old.retired.Store(true)
	// Inline release so the close-and-report path runs only when this call
	// observed the count hit zero — reading closeErr is then race-free.
	if old.refs.Add(-1) == 0 {
		old.close()
		return old.closeErr
	}
	return nil
}

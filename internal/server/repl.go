package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/graph"
)

// Replication coordinate headers. Query and update responses carry the
// serving generation's (epoch, seq) so routers can hand clients a
// consistency token; the repl endpoints use the full set as their
// handshake. Names are pre-canonicalized to net/http's MIME form.
const (
	// HeaderEpoch is the serving epoch (completed folds) of the generation
	// that produced the response.
	HeaderEpoch = "X-Rlc-Epoch"
	// HeaderSeq is the global insert sequence the response covers: for
	// queries, a floor captured before the answer was computed (the answer
	// reflects at least this much of the log); for updates, the sequence
	// after the batch landed (a token at least as new as the write).
	HeaderSeq = "X-Rlc-Seq"
	// HeaderSeqBase is the sequence already folded into the serving base —
	// a follower whose cursor is below it must cut over to the bundle.
	HeaderSeqBase = "X-Rlc-Seq-Base"
	// HeaderFingerprint is the compact fingerprint of the serving base
	// graph (graph.Fingerprint.Compact).
	HeaderFingerprint = "X-Rlc-Fingerprint"
)

// Replication failure sentinels. They classify segment-export misses so
// the cluster layer (and its HTTP surface) can react mechanically: a
// cursor under the folded base means "fetch the bundle", one past the log
// means "foreign or restarted log".
var (
	// errSeqFolded rejects a segment export whose cursor precedes the
	// serving base: those edges were folded into the bundle.
	errSeqFolded = errors.New("server: requested sequence was folded into the base bundle; cut over via the bundle endpoint")
	// errSeqAhead rejects a segment export whose cursor is past the end of
	// the log — the requester replicated a different (or restarted) log.
	errSeqAhead = errors.New("server: requested sequence is beyond the end of the log; follower and leader histories diverge")
	// errEpochGone rejects a bundle request for an epoch the server no
	// longer (or does not yet) serve.
	errEpochGone = errors.New("server: requested epoch is not the serving epoch")
	// errNotLeader rejects client-originated HTTP writes on a follower,
	// whose graph may change only through the replication apply path.
	errNotLeader = errors.New("server: this replica is a follower; send writes to the leader")
)

// ReplState places one pinned serving generation on the replication
// timeline. All fields are read from a single generation, so they are
// mutually consistent even while folds and inserts race.
type ReplState struct {
	// Role echoes Options.Role ("standalone" when unset).
	Role string `json:"role"`
	// Generation is the store generation (process-local, resets on restart).
	Generation uint64 `json:"generation"`
	// Epoch counts completed folds (leader-side or adopted from a leader).
	Epoch uint64 `json:"epoch"`
	// SeqBase is the global insert sequence folded into the serving base.
	SeqBase uint64 `json:"seq_base"`
	// SealedSeq is the highest sequence available for segment export.
	SealedSeq uint64 `json:"sealed_seq"`
	// Seq is the global insert sequence applied so far (base + journal).
	Seq uint64 `json:"seq"`
	// Fingerprint is the compact fingerprint of the serving base graph.
	Fingerprint string `json:"fingerprint"`
	// BundleBytes is the byte size of the serving bundle when it is known
	// without serializing (snapshot-backed generations), else 0.
	BundleBytes int64 `json:"bundle_bytes,omitempty"`
}

// role resolves the reported role, defaulting to "standalone".
func (o Options) role() string {
	if o.Role == "" {
		return "standalone"
	}
	return o.Role
}

// seqNow is the global insert sequence this generation has applied so far:
// the folded base plus the overlay journal. Monotone across the lineage —
// folds move edges from journal to base without changing the sum.
func (st *state) seqNow() uint64 {
	if st.delta != nil {
		return st.seqBase + uint64(st.delta.JournalLen())
	}
	return st.seqBase
}

// replHeaders stamps a response with the pinned generation's replication
// coordinates. The caller captures seq at the response's linearization
// point: before computing an answer (a freshness floor the answer is
// guaranteed to reflect), after appending a batch (a token covering the
// write). Must run before the status line is written.
func replHeaders(w http.ResponseWriter, st *state, seq uint64) {
	h := w.Header()
	h.Set(HeaderEpoch, strconv.FormatUint(st.epoch, 10))
	h.Set(HeaderSeq, strconv.FormatUint(seq, 10))
}

// limitBody caps r.Body at Options.MaxBodyBytes; reads past the cap fail
// with *http.MaxBytesError, which the JSON handlers surface as HTTP 413
// with code "body_too_large".
func (s *Server) limitBody(w http.ResponseWriter, r *http.Request) {
	if s.opts.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	}
}

// replState reads the replication coordinates of one pinned generation.
func (s *Server) replState(st *state) ReplState {
	rs := ReplState{
		Role:        s.opts.role(),
		Generation:  st.gen,
		Epoch:       st.epoch,
		SeqBase:     st.seqBase,
		SealedSeq:   st.seqBase,
		Seq:         st.seqBase,
		Fingerprint: st.fp.Compact(),
	}
	if st.delta != nil {
		rs.SealedSeq = st.seqBase + uint64(st.delta.SealedLen())
		rs.Seq = st.seqBase + uint64(st.delta.JournalLen())
	}
	if snap, ok := st.src.(*core.Snapshot); ok {
		rs.BundleBytes = snap.SizeBytes()
	}
	return rs
}

// ReplState snapshots the current generation's replication coordinates
// (the zero value after Close).
func (s *Server) ReplState() ReplState {
	st := s.store.acquire()
	if st == nil {
		return ReplState{}
	}
	defer st.release()
	return s.replState(st)
}

// ExportSealed copies sealed journal edges starting at global sequence
// from, together with the coordinates they were read under. When flush is
// set and nothing is sealed past the cursor but unsealed inserts are
// pending, the journal tail is force-sealed first — the leader's long-poll
// path uses it so a trickle of writes below the segment size still
// replicates promptly. A cursor below the folded base fails with the
// behind-bundle sentinel (the caller must cut over via BundleReader); one
// past the log fails as a foreign log.
func (s *Server) ExportSealed(from uint64, flush bool) ([]graph.Edge, ReplState, error) {
	if !s.opts.Mutable {
		return nil, ReplState{}, errNotMutable
	}
	st := s.store.acquire()
	if st == nil {
		return nil, ReplState{}, errServerClosed
	}
	defer st.release()
	rs := s.replState(st)
	if from < rs.SeqBase {
		return nil, rs, fmt.Errorf("%w (cursor %d, base %d)", errSeqFolded, from, rs.SeqBase)
	}
	if from > rs.Seq {
		return nil, rs, fmt.Errorf("%w (cursor %d, log end %d)", errSeqAhead, from, rs.Seq)
	}
	local := int(from - rs.SeqBase)
	edges := st.delta.ExportSealed(local)
	if len(edges) == 0 && flush && st.delta.JournalLen() > local {
		st.delta.Seal()
		edges = st.delta.ExportSealed(local)
		rs.SealedSeq = rs.SeqBase + uint64(st.delta.SealedLen())
	}
	return edges, rs, nil
}

// pinnedBundle streams a snapshot-backed generation's raw bundle bytes
// while holding the generation pinned; Close releases the pin, which is
// what keeps the mapping alive for the whole transfer.
type pinnedBundle struct {
	r  *bytes.Reader
	st *state
}

func (b *pinnedBundle) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *pinnedBundle) Close() error {
	if b.st != nil {
		b.st.release()
		b.st = nil
	}
	return nil
}

// BundleReader opens a byte stream of the serving base bundle for epoch
// cutover, verifying the caller's expected epoch against the pinned
// generation (a fold racing the request fails it cleanly instead of
// shipping a surprise epoch). Snapshot-backed generations stream the
// already-checksummed mapping zero-copy under a pin that the returned
// Close releases; heap-built bases are serialized on the fly. The stream
// never includes journal edges — those ship as segments.
func (s *Server) BundleReader(wantEpoch uint64) (io.ReadCloser, ReplState, error) {
	st := s.store.acquire()
	if st == nil {
		return nil, ReplState{}, errServerClosed
	}
	rs := s.replState(st)
	if rs.Epoch != wantEpoch {
		st.release()
		return nil, rs, fmt.Errorf("%w (requested %d, serving %d)", errEpochGone, wantEpoch, rs.Epoch)
	}
	if snap, ok := st.src.(*core.Snapshot); ok {
		// Ownership of the pin transfers to the reader; Close releases it.
		return &pinnedBundle{r: bytes.NewReader(snap.Bytes()), st: st}, rs, nil
	}
	var buf bytes.Buffer
	err := st.ix.WriteSnapshot(&buf)
	st.release()
	if err != nil {
		return nil, rs, fmt.Errorf("server: serialize bundle: %w", err)
	}
	rs.BundleBytes = int64(buf.Len())
	return io.NopCloser(bytes.NewReader(buf.Bytes())), rs, nil
}

// AdoptFolded installs an externally produced fold epoch: a verified
// snapshot bundle (ownership transfers to the store) plus the journal tail
// to carry over — how a replication follower cuts over to the leader's
// freshly folded bundle through the exact drain path local folds use.
// epoch and seqBase are the leader's coordinates for the bundle; the
// caller has already checked the fingerprint handshake and run
// Snapshot.Verify. Writers pause only for the swap itself.
func (s *Server) AdoptFolded(snap *core.Snapshot, tail []graph.Edge, epoch, seqBase uint64, source string) error {
	if !s.opts.Mutable {
		return errNotMutable
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	if s.store.Generation() == 0 {
		// Closed store: SwapFolded would retire (and close) the incoming
		// snapshot, but tell the caller adoption did not happen.
		snap.Close()
		return errServerClosed
	}
	s.store.SwapFolded(snap.Index(), snap, tail, source, epoch, seqBase)
	s.epoch.Store(epoch)
	return nil
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/g-rpqs/rlc-go/internal/core"
	"github.com/g-rpqs/rlc-go/internal/gen"
	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/hybrid"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
	"github.com/g-rpqs/rlc-go/internal/traversal"
	"github.com/g-rpqs/rlc-go/internal/workload"
)

func buildIndex(t *testing.T, g *graph.Graph) *core.Index {
	t.Helper()
	ix, err := core.Build(g, core.Options{K: 2})
	if err != nil {
		t.Fatalf("build index: %v", err)
	}
	return ix
}

func newTestServer(t *testing.T, ix *core.Index, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(ix, opts)
	hts := httptest.NewServer(s.Handler())
	t.Cleanup(hts.Close)
	return s, hts
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return resp.StatusCode
}

func queryURL(base string, s, tk, l string) string {
	return base + "/query?s=" + url.QueryEscape(s) + "&t=" + url.QueryEscape(tk) + "&l=" + url.QueryEscape(l)
}

// TestQueryEndpointMatchesIndex is the acceptance gate for GET /query: over
// every (s, t) pair of the Fig. 2 graph and a spread of constraints, the
// HTTP answer must equal Index.Query — twice, so the second (cached) pass is
// also checked against the index.
func TestQueryEndpointMatchesIndex(t *testing.T) {
	g := graph.Fig2()
	ix := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})

	constraints := []struct {
		text string
		seq  labelseq.Seq
	}{
		{"l1", labelseq.Seq{0}},
		{"l2", labelseq.Seq{1}},
		{"l3", labelseq.Seq{2}},
		{"l1 l2", labelseq.Seq{0, 1}},
		{"(l2 l1)+", labelseq.Seq{1, 0}},
	}
	for pass := 0; pass < 2; pass++ {
		wantCached := pass == 1
		for s := 0; s < g.NumVertices(); s++ {
			for dst := 0; dst < g.NumVertices(); dst++ {
				for _, c := range constraints {
					want, err := ix.Query(graph.Vertex(s), graph.Vertex(dst), c.seq)
					if err != nil {
						t.Fatalf("index query (%d,%d,%v): %v", s, dst, c.seq, err)
					}
					var resp queryResponse
					code := getJSON(t, queryURL(hts.URL, fmt.Sprint(s), fmt.Sprint(dst), c.text), &resp)
					if code != http.StatusOK {
						t.Fatalf("(%d,%d,%q): status %d", s, dst, c.text, code)
					}
					if resp.Reachable != want {
						t.Fatalf("(%d,%d,%q): HTTP says %v, index says %v", s, dst, c.text, resp.Reachable, want)
					}
					if resp.Cached != wantCached {
						t.Fatalf("(%d,%d,%q) pass %d: cached=%v, want %v", s, dst, c.text, pass, resp.Cached, wantCached)
					}
				}
			}
		}
	}
}

// TestQueryByName resolves display-name vertices the way the examples do.
func TestQueryByName(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{})
	var resp queryResponse
	if code := getJSON(t, queryURL(hts.URL, "v3", "v6", "l1+"), &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !resp.Reachable {
		t.Fatal("(v3, v6, l1+) should be reachable")
	}
}

// TestQueryMultiSegment routes non-L+ expressions through the hybrid
// evaluator and must agree with a directly constructed one.
func TestQueryMultiSegment(t *testing.T) {
	g := graph.Fig2()
	ix := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})
	h := hybrid.New(ix)

	expr := "l1+ l2+"
	st := New(ix, Options{}).store.acquire()
	parsed, err := st.parseExpr(expr)
	st.release()
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	for s := 0; s < g.NumVertices(); s++ {
		for dst := 0; dst < g.NumVertices(); dst++ {
			want, err := h.Eval(graph.Vertex(s), graph.Vertex(dst), parsed)
			if err != nil {
				t.Fatalf("hybrid (%d,%d): %v", s, dst, err)
			}
			var resp queryResponse
			if code := getJSON(t, queryURL(hts.URL, fmt.Sprint(s), fmt.Sprint(dst), expr), &resp); code != http.StatusOK {
				t.Fatalf("(%d,%d,%q): status %d", s, dst, expr, code)
			}
			if resp.Reachable != want {
				t.Fatalf("(%d,%d,%q): HTTP says %v, hybrid says %v", s, dst, expr, resp.Reachable, want)
			}
		}
	}
}

func TestQueryValidation(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{})
	cases := []struct {
		name string
		url  string
		code int
	}{
		{"missing params", hts.URL + "/query?s=0", http.StatusBadRequest},
		{"unknown vertex name", queryURL(hts.URL, "nope", "0", "l1"), http.StatusBadRequest},
		{"vertex out of range", queryURL(hts.URL, "0", "99", "l1"), http.StatusBadRequest},
		{"unknown label", queryURL(hts.URL, "0", "1", "zz"), http.StatusBadRequest},
		{"empty expression", queryURL(hts.URL, "0", "1", " "), http.StatusBadRequest},
		{"plus-less segment in multi-segment expr", queryURL(hts.URL, "0", "1", "l1+ l2"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		var e errorResponse
		if code := getJSON(t, c.url, &e); code != c.code {
			t.Errorf("%s: status %d, want %d", c.name, code, c.code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
}

// TestQueryNonMRFallsBack: a non-minimum-repeat constraint like (l1 l1)+ is
// outside the index's class — Index.Query rejects it — but the serving layer
// answers it anyway through the hybrid/traversal fallback, matching the BFS
// baseline.
func TestQueryNonMRFallsBack(t *testing.T) {
	g := graph.Fig2()
	ix := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})
	if _, err := ix.Query(0, 1, labelseq.Seq{0, 0}); err == nil {
		t.Fatal("index should reject the non-MR constraint (l1 l1)")
	}
	for s := 0; s < g.NumVertices(); s++ {
		for dst := 0; dst < g.NumVertices(); dst++ {
			want, err := traversal.EvalRLC(g, graph.Vertex(s), graph.Vertex(dst), labelseq.Seq{0, 0})
			if err != nil {
				t.Fatalf("bfs (%d,%d): %v", s, dst, err)
			}
			var resp queryResponse
			if code := getJSON(t, queryURL(hts.URL, fmt.Sprint(s), fmt.Sprint(dst), "l1 l1"), &resp); code != http.StatusOK {
				t.Fatalf("(%d,%d): status %d", s, dst, code)
			}
			if resp.Reachable != want {
				t.Fatalf("(%d,%d,(l1 l1)+): HTTP says %v, BFS says %v", s, dst, resp.Reachable, want)
			}
		}
	}
}

func postBatch(t *testing.T, base string, body string) (int, batchResponse, string) {
	t.Helper()
	resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /batch: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var br batchResponse
	if err := json.Unmarshal(raw, &br); err != nil {
		t.Fatalf("decode %q: %v", raw, err)
	}
	return resp.StatusCode, br, string(raw)
}

// TestBatchMatchesQueryBatch is the acceptance gate for POST /batch: over a
// generated ER graph and workload, the endpoint's answers must be identical,
// position for position, to Index.QueryBatch — on the cold pass and again on
// the fully cached pass.
func TestBatchMatchesQueryBatch(t *testing.T) {
	g, err := gen.ER(400, 1600, 4, 11)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	w, err := workload.Generate(g, workload.Options{NumTrue: 60, NumFalse: 60, ConcatLen: 2, Seed: 5})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	ix := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})

	qs := w.All()
	batch := make([]core.BatchQuery, len(qs))
	var body bytes.Buffer
	body.WriteString(`{"queries":[`)
	for i, q := range qs {
		batch[i] = core.BatchQuery{S: q.S, T: q.T, L: q.L}
		if i > 0 {
			body.WriteByte(',')
		}
		toks := make([]string, len(q.L))
		for j, l := range q.L {
			toks[j] = fmt.Sprintf("l%d", l)
		}
		fmt.Fprintf(&body, `{"s":%d,"t":%d,"l":"%s"}`, q.S, q.T, strings.Join(toks, " "))
	}
	body.WriteString(`]}`)
	want := ix.QueryBatch(batch, 2)

	for pass := 0; pass < 2; pass++ {
		code, br, raw := postBatch(t, hts.URL, body.String())
		if code != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, code, raw)
		}
		if len(br.Results) != len(want) || br.Count != len(want) {
			t.Fatalf("pass %d: got %d results for %d queries", pass, len(br.Results), len(want))
		}
		for i, res := range br.Results {
			if res.Error != "" || want[i].Err != nil {
				t.Fatalf("pass %d: query %d: unexpected error state (%q, %v)", pass, i, res.Error, want[i].Err)
			}
			if res.Reachable != want[i].Reachable {
				t.Fatalf("pass %d: query %d: HTTP %v, QueryBatch %v", pass, i, res.Reachable, want[i].Reachable)
			}
		}
		if pass == 1 && br.Cached != len(want) {
			t.Fatalf("cached pass answered %d of %d from cache", br.Cached, len(want))
		}
	}
}

// TestBatchGoldenResponse pins the exact response body of POST /batch on the
// Fig. 2 graph — field names, error strings, ordering, and cache counts —
// with only the micros timing normalized to 0.
func TestBatchGoldenResponse(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{})

	req := `{"queries":[
		{"s":0,"t":4,"l":"l1 l2"},
		{"s":"v3","t":"v6","l":"l1"},
		{"s":1,"t":0,"l":"l2"},
		{"s":0,"t":3,"l":"l1 l1"},
		{"s":0,"t":99,"l":"l1"},
		{"s":0,"t":5,"l":"l1+ l2+"}
	]}`
	const goldenCold = `{"cached":0,"count":6,"micros":0,"results":[` +
		`{"reachable":true},` +
		`{"reachable":true},` +
		`{"reachable":false},` +
		`{"code":"not_minimum_repeat","error":"rlc: query constraint is not a minimum repeat (L != MR(L)); the even-path fragment is out of scope: (l0,l0)","reachable":false},` +
		`{"code":"vertex_range","error":"t: rlc: vertex id out of range: vertex 99 out of range [0, 6)","reachable":false},` +
		`{"error":"l: batch queries need a single L+ segment; use GET /query for multi-segment expressions","reachable":false}]}`
	// The warm pass answers all three valid queries from the cache.
	goldenWarm := strings.Replace(goldenCold, `"cached":0`, `"cached":3`, 1)

	for pass, golden := range []string{goldenCold, goldenWarm} {
		code, _, raw := postBatch(t, hts.URL, req)
		if code != http.StatusOK {
			t.Fatalf("pass %d: status %d: %s", pass, code, raw)
		}
		if got := normalizeMicros(t, raw); got != golden {
			t.Fatalf("pass %d: response drifted from golden.\ngot:  %s\nwant: %s", pass, got, golden)
		}
	}
}

// normalizeMicros zeroes the timing field and re-marshals with sorted keys.
func normalizeMicros(t *testing.T, raw string) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(raw), &m); err != nil {
		t.Fatalf("unmarshal %q: %v", raw, err)
	}
	if _, ok := m["micros"]; !ok {
		t.Fatalf("response %q lacks micros", raw)
	}
	m["micros"] = 0
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	return string(out)
}

func TestBatchValidation(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{MaxBatch: 2})
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed JSON", `{"queries":`, http.StatusBadRequest},
		{"unknown field", `{"nope":1,"queries":[{"s":0,"t":1,"l":"l1"}]}`, http.StatusBadRequest},
		{"empty batch", `{"queries":[]}`, http.StatusBadRequest},
		{"over limit", `{"queries":[{"s":0,"t":1,"l":"l1"},{"s":0,"t":2,"l":"l1"},{"s":0,"t":3,"l":"l1"}]}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, err := http.Post(hts.URL+"/batch", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}
}

func TestHealthz(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{})
	resp, err := http.Get(hts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Status     string `json:"status"`
		Generation uint64 `json:"generation"`
		Epoch      *int   `json:"epoch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Generation != 1 {
		t.Fatalf("healthz: %d %+v (%v)", resp.StatusCode, hz, err)
	}
	if hz.Epoch != nil {
		t.Fatalf("immutable server reported a write-path epoch: %+v", hz)
	}
}

func TestStatsEndpoint(t *testing.T) {
	g := graph.Fig2()
	ix := buildIndex(t, g)
	_, hts := newTestServer(t, ix, Options{})

	// Two identical queries: one miss, one hit.
	var qr queryResponse
	getJSON(t, queryURL(hts.URL, "0", "4", "l1 l2"), &qr)
	getJSON(t, queryURL(hts.URL, "0", "4", "l1 l2"), &qr)

	var st statsResponse
	if code := getJSON(t, hts.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Cache == nil || st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache stats: %+v", st.Cache)
	}
	if st.Index.Entries != ix.Stats().Entries || st.Index.K != 2 {
		t.Fatalf("index stats drifted: %+v", st.Index)
	}
	q := st.Endpoints["query"]
	if q.Count != 2 || q.Errors != 0 || q.MaxMicros <= 0 {
		t.Fatalf("query endpoint stats: %+v", q)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime %v", st.UptimeSeconds)
	}
}

// TestCacheDisabled covers the CacheEntries < 0 serving mode: every answer
// recomputes, nothing reports cached, and /stats omits the cache block.
func TestCacheDisabled(t *testing.T) {
	g := graph.Fig2()
	_, hts := newTestServer(t, buildIndex(t, g), Options{CacheEntries: -1})
	var qr queryResponse
	for i := 0; i < 2; i++ {
		getJSON(t, queryURL(hts.URL, "0", "4", "l1 l2"), &qr)
		if qr.Cached {
			t.Fatal("cache disabled but response says cached")
		}
	}
	var st statsResponse
	getJSON(t, hts.URL+"/stats", &st)
	if st.Cache != nil {
		t.Fatalf("cache stats present with cache disabled: %+v", st.Cache)
	}
}

// TestGracefulShutdownUnderLoad drives concurrent query traffic at a real
// listener, shuts the server down mid-stream, and requires (a) Shutdown
// returns without error inside its budget, (b) every request that completed
// before shutdown began succeeded, and (c) Serve reports the clean
// http.ErrServerClosed.
func TestGracefulShutdownUnderLoad(t *testing.T) {
	g, err := gen.ER(300, 1200, 4, 3)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	s := New(buildIndex(t, g), Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	const clients = 8
	var (
		completed    atomic.Int64
		shuttingDown atomic.Bool
		wg           sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; ; i++ {
				u := queryURL(base, fmt.Sprint((c*37+i)%300), fmt.Sprint((c*91+i*13)%300), "l0 l1")
				resp, err := client.Get(u)
				if err != nil {
					if !shuttingDown.Load() {
						t.Errorf("client %d failed before shutdown: %v", c, err)
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				code := resp.StatusCode
				resp.Body.Close()
				if code != http.StatusOK {
					t.Errorf("client %d: status %d", c, code)
					return
				}
				completed.Add(1)
			}
		}(c)
	}

	// Let real load build up before pulling the plug.
	deadline := time.Now().Add(10 * time.Second)
	for completed.Load() < 200 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if completed.Load() == 0 {
		t.Fatal("no requests completed before shutdown")
	}

	shuttingDown.Store(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain cleanly: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	t.Logf("served %d requests before graceful shutdown", completed.Load())
}

package server

import (
	"context"
	"testing"

	"github.com/g-rpqs/rlc-go/internal/graph"
	"github.com/g-rpqs/rlc-go/internal/labelseq"
)

// TestAnswerRLCHitAllocFree pins the serving layer's cache-hit contract —
// the runtime counterpart of the //rlc:noalloc annotation on answerRLC: once
// a single-segment answer is resident, repeating the query costs one
// packed-key probe and zero heap allocations (no canonical-expression
// string, no detached context, no compute closure).
func TestAnswerRLCHitAllocFree(t *testing.T) {
	ix := buildIndex(t, graph.Fig2())
	s := New(ix, Options{})
	defer s.Close()

	ctx := context.Background()
	l := labelseq.Seq{0, 1}
	if _, _, err := s.AnswerRLC(ctx, 0, 2, l); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	if _, cached, err := s.AnswerRLC(ctx, 0, 2, l); err != nil || !cached {
		t.Fatalf("second call: cached=%v err=%v, want a cache hit", cached, err)
	}
	avg := testing.AllocsPerRun(200, func() {
		_, cached, err := s.AnswerRLC(ctx, 0, 2, l)
		if err != nil || !cached {
			panic("expected a resident cache hit")
		}
	})
	if avg != 0 {
		t.Errorf("AnswerRLC cache hit: %.1f allocs/op, want 0", avg)
	}
}
